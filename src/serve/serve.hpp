#pragma once
// amdrel_serve — a long-lived compile service wrapping the Fig. 11 flow.
//
// The daemon accepts jobs over a newline-delimited JSON line protocol on
// a TCP socket (one request per line, one reply per line; DESIGN.md
// §13.3). Each job is a flow::JobSpec executed as a flow::FlowSession on
// the repo's ThreadPool behind a three-level priority queue with
// admission control: submits beyond `max_queue` waiting jobs are
// rejected with a machine-readable reason instead of queueing unbounded.
//
// Concurrent jobs share the process-wide read-only caches: the
// elaborated architecture (keyed on the job's DUTYS text, parsed once)
// and the deduplicated RR pattern templates
// (route::RrPatternTemplates::shared). Everything else a session touches
// is session-local, so jobs are bit-identical to standalone runs of the
// same spec — the soak test in tests/serve_test.cpp asserts exactly
// that across ≥64 concurrent jobs.
//
// Lifecycle: cancel() is cooperative (FlowSession::cancel at the next
// stage/iteration boundary); shutdown(drain=true) — also triggered by
// SIGTERM in run_server — stops accepting connections and submits,
// finishes every queued and running job, then joins all threads.
// shutdown(drain=false) additionally cancels whatever is queued or
// in flight first.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flow/jobspec.hpp"
#include "flow/session.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace amdrel::serve {

struct ServeOptions {
  int port = 0;        ///< TCP port to listen on; 0 = ephemeral (tests)
  int workers = 0;     ///< concurrent flow sessions (0 = hw concurrency)
  int max_queue = 64;  ///< admission control: max *waiting* jobs
};

/// Lifecycle of a submitted job.
enum class JobState : int {
  kQueued = 0,  ///< waiting in the priority queue
  kRunning,     ///< a worker is executing the FlowSession
  kDone,        ///< ran to spec.until; result available
  kFailed,      ///< a stage threw; error (+ failing stage) recorded
  kCancelled,   ///< cancelled while queued or mid-run
};
const char* job_state_name(JobState state);
bool job_state_terminal(JobState state);

/// One submitted job. All mutable fields are guarded by `mu`; `done_cv`
/// fires on every state change (the blocking `result` wait uses it).
struct Job {
  std::int64_t id = 0;
  flow::JobSpec spec;

  std::mutex mu;
  std::condition_variable done_cv;
  JobState state = JobState::kQueued;
  std::unique_ptr<flow::FlowSession> session;  ///< non-null while running
  util::Json result = util::Json::make_object();  ///< terminal payload
  std::string error;         ///< kFailed: the stage exception message
  std::string failed_stage;  ///< kFailed: machine-readable stage name
  double wall_s = 0.0;       ///< run wall time (0 until terminal)
  bool cancel_requested = false;
};

/// The embeddable server (tests construct it directly on port 0;
/// amdrel_serve wraps it in run_server with signal handling).
class Server {
 public:
  explicit Server(const ServeOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor and worker pool. Throws
  /// Error when the port cannot be bound.
  void start();
  /// The bound port (after start; the actual port when options.port = 0).
  int port() const { return port_; }

  /// Stops accepting connections and submits; waits for queued+running
  /// jobs (drain=true) or cancels them first (drain=false); joins every
  /// thread. Idempotent, callable from any thread — including a
  /// connection thread via the `shutdown` command, which defers to the
  /// owner through shutdown_requested().
  void shutdown(bool drain = true);

  /// True once a `shutdown` protocol command or request_shutdown() has
  /// fired; run_server waits on this. `drain_out` receives the requested
  /// mode when non-null.
  bool shutdown_requested(bool* drain_out = nullptr) const;
  void request_shutdown(bool drain);
  /// Blocks until shutdown_requested() (used by run_server; woken by the
  /// protocol command or request_shutdown from a signal watcher).
  void wait_shutdown_requested();

  /// Stop admitting new jobs (submits reject with reason "draining");
  /// running and queued jobs are unaffected.
  void drain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // ---- introspection (tests / the metrics command) ----
  int queue_depth() const;
  std::int64_t jobs_submitted() const;
  std::int64_t jobs_finished() const;  ///< done + failed + cancelled

  /// Direct (in-process) submit of an already-parsed spec — the same
  /// admission path the protocol uses. Returns the job id, or throws
  /// Error with the rejection reason.
  std::int64_t submit(const flow::JobSpec& spec);
  std::shared_ptr<Job> find_job(std::int64_t id) const;
  /// Requests cooperative cancellation; returns the state observed.
  JobState cancel_job(std::int64_t id);

 private:
  void accept_loop();
  void connection_loop(int fd);
  void worker_loop();
  void run_job(const std::shared_ptr<Job>& job);
  std::shared_ptr<Job> pop_job();

  std::string handle_line(const std::string& line);
  util::Json cmd_submit(const util::Json& req);
  util::Json cmd_status(const util::Json& req);
  util::Json cmd_result(const util::Json& req);
  util::Json cmd_cancel(const util::Json& req);
  util::Json cmd_metrics() const;

  ServeOptions options_;
  /// Atomic: shutdown() closes + clears it while accept_loop reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // Job table + priority queue (one deque per JobPriority, popped
  // high→low, FIFO within a level).
  mutable std::mutex jobs_mu_;
  std::condition_variable queue_cv_;
  std::map<std::int64_t, std::shared_ptr<Job>> jobs_;
  std::deque<std::shared_ptr<Job>> queue_[3];
  std::int64_t next_id_ = 1;
  std::int64_t finished_ = 0;
  bool queue_stopped_ = false;

  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
  mutable std::mutex conns_mu_;
  std::vector<std::pair<int, std::thread>> conns_;

  mutable std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool shutdown_drain_ = true;
};

/// The amdrel_serve main loop: start, wait for SIGTERM/SIGINT or a
/// `shutdown` command, drain, exit 0. Prints the bound port on stdout
/// ("listening on <port>") so scripts can scrape it.
int run_server(const ServeOptions& options);

}  // namespace amdrel::serve

#pragma once
// amdrel_serve — a long-lived compile service wrapping the Fig. 11 flow.
//
// The daemon accepts jobs over a newline-delimited JSON line protocol on
// a TCP socket (one request per line, one reply per line; DESIGN.md
// §13.3). Each job is a flow::JobSpec executed as a flow::FlowSession on
// the repo's ThreadPool behind a three-level priority queue with
// admission control: submits beyond `max_queue` waiting jobs are
// rejected with a machine-readable reason instead of queueing unbounded.
//
// Concurrent jobs share the process-wide read-only caches: the
// elaborated architecture (keyed on the job's DUTYS text, parsed once)
// and the deduplicated RR pattern templates
// (route::RrPatternTemplates::shared). Everything else a session touches
// is session-local, so jobs are bit-identical to standalone runs of the
// same spec — the soak test in tests/serve_test.cpp asserts exactly
// that across ≥64 concurrent jobs.
//
// Observability (DESIGN.md §13.3): every job records submitted/started/
// terminal timestamps; queue-wait and run-latency land in the PR-5
// metrics registry histograms (serve.queue_wait_s / serve.run_wall_s)
// alongside per-state and per-priority queue gauges. Structured daemon
// events (admission, rejection, state transitions, cancels, slow-job
// watchdog firings) accumulate in a bounded ring queryable via the
// `events` command; `stats` is the one-call operational summary. With
// ServeOptions::trace_dir set, each job runs under its own
// obs::TraceContext spooling `<trace_dir>/job-<id>.jsonl` tagged with
// trace id "job-<id>" (fetched over the wire with `trace`), and
// `metrics` additionally serves Prometheus text exposition with
// {"format":"prometheus"}.
//
// Lifecycle: cancel() is cooperative (FlowSession::cancel at the next
// stage/iteration boundary); shutdown(drain=true) — also triggered by
// SIGTERM in run_server — stops accepting connections and submits,
// finishes every queued and running job, then joins all threads.
// shutdown(drain=false) additionally cancels whatever is queued or
// in flight first.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flow/jobspec.hpp"
#include "flow/session.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace amdrel::serve {

struct ServeOptions {
  int port = 0;        ///< TCP port to listen on; 0 = ephemeral (tests)
  int workers = 0;     ///< concurrent flow sessions (0 = hw concurrency)
  int max_queue = 64;  ///< admission control: max *waiting* jobs
  /// Per-job trace spool directory (must exist). Empty = per-job tracing
  /// off. Each job writes `<trace_dir>/job-<id>.jsonl` under its own
  /// obs::TraceContext with trace id "job-<id>".
  std::string trace_dir;
  /// Ring-buffer capacity of the `events` command (oldest dropped).
  int event_buffer = 256;
  /// Slow-job watchdog: a running job that exceeds this wall time fires
  /// one `slow_job` daemon event and bumps serve.slow_jobs. 0 = off.
  double slow_job_s = 60.0;
};

/// Lifecycle of a submitted job.
enum class JobState : int {
  kQueued = 0,  ///< waiting in the priority queue
  kRunning,     ///< a worker is executing the FlowSession
  kDone,        ///< ran to spec.until; result available
  kFailed,      ///< a stage threw; error (+ failing stage) recorded
  kCancelled,   ///< cancelled while queued or mid-run
};
const char* job_state_name(JobState state);
bool job_state_terminal(JobState state);

/// One submitted job. All mutable fields are guarded by `mu`; `done_cv`
/// fires on every state change (the blocking `result` wait uses it).
struct Job {
  std::int64_t id = 0;
  flow::JobSpec spec;

  std::mutex mu;
  std::condition_variable done_cv;
  JobState state = JobState::kQueued;
  std::unique_ptr<flow::FlowSession> session;  ///< non-null while running
  util::Json result = util::Json::make_object();  ///< terminal payload
  std::string error;         ///< kFailed: the stage exception message
  std::string failed_stage;  ///< kFailed: machine-readable stage name
  std::chrono::steady_clock::time_point submitted_tp{};  ///< admission
  std::chrono::steady_clock::time_point started_tp{};    ///< run start
  /// Submission → run start (or → cancel for jobs cancelled while
  /// queued). Negative while still waiting in the queue.
  double queue_wait_s = -1.0;
  /// Run wall time. 0 until terminal — and explicitly 0 for a job
  /// cancelled while queued (it left the queue having run for 0s; the
  /// wait it did accumulate is queue_wait_s).
  double wall_s = 0.0;
  std::string trace_path;    ///< per-job spool file ("" = tracing off)
  bool cancel_requested = false;
  bool slow_reported = false;  ///< watchdog fired for this job already
};

/// One structured daemon event for the bounded `events` ring: admission,
/// rejection, state transitions, cancels, watchdog firings. `t_s` is
/// seconds since Server::start().
struct DaemonEvent {
  std::int64_t seq = 0;   ///< monotone from 1; gaps = ring overflow
  double t_s = 0.0;
  std::string kind;       ///< submitted|rejected|started|done|failed|
                          ///< cancelled|cancel_requested|slow_job|...
  std::int64_t job_id = 0;  ///< 0 when not job-specific (rejections)
  std::string detail;     ///< human-readable context ("" if none)
};

/// The embeddable server (tests construct it directly on port 0;
/// amdrel_serve wraps it in run_server with signal handling).
class Server {
 public:
  explicit Server(const ServeOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor and worker pool. Throws
  /// Error when the port cannot be bound.
  void start();
  /// The bound port (after start; the actual port when options.port = 0).
  int port() const { return port_; }

  /// Stops accepting connections and submits; waits for queued+running
  /// jobs (drain=true) or cancels them first (drain=false); joins every
  /// thread. Idempotent, callable from any thread — including a
  /// connection thread via the `shutdown` command, which defers to the
  /// owner through shutdown_requested().
  void shutdown(bool drain = true);

  /// True once a `shutdown` protocol command or request_shutdown() has
  /// fired; run_server waits on this. `drain_out` receives the requested
  /// mode when non-null.
  bool shutdown_requested(bool* drain_out = nullptr) const;
  void request_shutdown(bool drain);
  /// Blocks until shutdown_requested() (used by run_server; woken by the
  /// protocol command or request_shutdown from a signal watcher).
  void wait_shutdown_requested();

  /// Stop admitting new jobs (submits reject with reason "draining");
  /// running and queued jobs are unaffected.
  void drain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // ---- introspection (tests / the metrics command) ----
  int queue_depth() const;
  std::int64_t jobs_submitted() const;
  std::int64_t jobs_finished() const;  ///< done + failed + cancelled
  /// Ring-buffer events with seq > `after_seq`, oldest first, at most
  /// `limit` (≤0: no cap beyond the ring itself).
  std::vector<DaemonEvent> events_after(std::int64_t after_seq,
                                        int limit = 0) const;

  /// Direct (in-process) submit of an already-parsed spec — the same
  /// admission path the protocol uses. Returns the job id, or throws
  /// Error with the rejection reason.
  std::int64_t submit(const flow::JobSpec& spec);
  std::shared_ptr<Job> find_job(std::int64_t id) const;
  /// Requests cooperative cancellation; returns the state observed.
  JobState cancel_job(std::int64_t id);

 private:
  void accept_loop();
  void connection_loop(int fd);
  void worker_loop();
  void run_job(const std::shared_ptr<Job>& job);
  std::shared_ptr<Job> pop_job();
  void watchdog_loop();
  /// Appends to the bounded event ring (oldest dropped) and stamps seq.
  void push_event(const char* kind, std::int64_t job_id,
                  std::string detail = "");
  /// Refreshes the serve.queue_depth* / serve.jobs_running gauges.
  void update_gauges();
  double uptime_s() const;

  std::string handle_line(const std::string& line);
  util::Json cmd_submit(const util::Json& req);
  util::Json cmd_status(const util::Json& req);
  util::Json cmd_result(const util::Json& req);
  util::Json cmd_cancel(const util::Json& req);
  util::Json cmd_metrics(const util::Json& req) const;
  util::Json cmd_stats() const;
  util::Json cmd_events(const util::Json& req) const;
  util::Json cmd_trace(const util::Json& req) const;

  ServeOptions options_;
  /// Atomic: shutdown() closes + clears it while accept_loop reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  int workers_ = 0;  ///< resolved worker count (after start)
  std::chrono::steady_clock::time_point start_tp_{};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // Job table + priority queue (one deque per JobPriority, popped
  // high→low, FIFO within a level).
  mutable std::mutex jobs_mu_;
  std::condition_variable queue_cv_;
  std::map<std::int64_t, std::shared_ptr<Job>> jobs_;
  std::deque<std::shared_ptr<Job>> queue_[3];
  std::int64_t next_id_ = 1;
  std::int64_t finished_ = 0;
  int running_ = 0;  ///< jobs currently in kRunning (guarded by jobs_mu_)
  bool queue_stopped_ = false;

  // Bounded daemon-event ring (its own lock: pushed under job->mu from
  // cancel paths, so it must never wrap back to jobs_mu_ or job->mu).
  mutable std::mutex events_mu_;
  std::deque<DaemonEvent> events_;
  std::int64_t next_event_seq_ = 1;
  std::int64_t events_dropped_ = 0;

  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
  mutable std::mutex conns_mu_;
  std::vector<std::pair<int, std::thread>> conns_;

  std::thread watchdog_;
  mutable std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  mutable std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool shutdown_drain_ = true;
};

/// The amdrel_serve main loop: start, wait for SIGTERM/SIGINT or a
/// `shutdown` command, drain, exit 0. Prints the bound port on stdout
/// ("listening on <port>") so scripts can scrape it.
int run_server(const ServeOptions& options);

}  // namespace amdrel::serve

#include "serve/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "arch/arch.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::serve {

namespace {

using std::chrono::steady_clock;

/// Cap on one request line — inline VHDL/BLIF text lives in the line.
constexpr std::size_t kMaxLine = 16u << 20;

/// Process-wide cache of elaborated architectures, keyed on the exact
/// DUTYS text. Read_arch_string is deterministic, so every job with the
/// same arch text shares one parsed copy instead of re-elaborating per
/// job (the RR-side sharing lives in route::RrPatternTemplates).
const arch::ArchSpec& cached_arch(const std::string& text) {
  static std::mutex mu;
  static auto* cache = new std::unordered_map<std::string, arch::ArchSpec>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(text);
  if (it == cache->end()) {
    it = cache->emplace(text, arch::read_arch_string(text)).first;
  }
  return it->second;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

util::Json error_reply(const std::string& message,
                       const std::string& reason = "") {
  util::Json obj = util::Json::make_object();
  obj.set("ok", false);
  obj.set("error", message);
  if (!reason.empty()) obj.set("reason", reason);
  return obj;
}

std::int64_t req_job_id(const util::Json& req) {
  const util::Json* id = req.get("id");
  if (id == nullptr) throw Error("missing 'id'");
  return id->as_int();
}

double seconds_between(steady_clock::time_point a, steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// One histogram from the registry snapshot as a JSON summary object
/// (zeros when the histogram was never registered). Registry metrics are
/// process-global, so in a multi-server process these aggregate across
/// every Server instance.
util::Json histogram_json(const obs::MetricsSnapshot& snap,
                          const std::string& name) {
  util::Json out = util::Json::make_object();
  for (const auto& h : snap.histograms) {
    if (h.name != name) continue;
    out.set("count", static_cast<std::int64_t>(h.count));
    out.set("sum", h.sum);
    out.set("min", h.min);
    out.set("max", h.max);
    out.set("p50", h.p50);
    out.set("p95", h.p95);
    return out;
  }
  out.set("count", static_cast<std::int64_t>(0));
  return out;
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool job_state_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

Server::Server(const ServeOptions& options) : options_(options) {
  if (options_.max_queue < 1) options_.max_queue = 1;
  if (options_.event_buffer < 1) options_.event_buffer = 1;
}

Server::~Server() { shutdown(false); }

void Server::start() {
  AMDREL_CHECK_MSG(!started_.exchange(true), "server already started");
  start_tp_ = steady_clock::now();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(strprintf("serve: cannot listen on port %d", options_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  int workers = options_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers < 1) workers = 1;
  }
  workers_ = workers;
  pool_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool_->submit([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  if (options_.slow_job_s > 0.0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket gone
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.emplace_back(fd, std::thread([this, fd] { connection_loop(fd); }));
  }
}

void Server::connection_loop(int fd) {
  std::string buf;
  char chunk[65536];
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!send_all(fd, handle_line(line))) break;
      continue;
    }
    if (buf.size() > kMaxLine) {
      send_all(fd, error_reply("request line too long", "overflow").dump() +
                       "\n");
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF / error / shutdown kick
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
}

std::string Server::handle_line(const std::string& line) {
  util::Json reply;
  try {
    const util::Json req = util::parse_json(line);
    if (!req.is_object()) throw Error("expected a JSON object");
    const util::Json* cmd = req.get("cmd");
    if (cmd == nullptr) throw Error("missing 'cmd'");
    const std::string name = cmd->as_string();
    if (name == "ping") {
      reply = util::Json::make_object();
      reply.set("ok", true);
      reply.set("reply", "pong");
    } else if (name == "submit") {
      reply = cmd_submit(req);
    } else if (name == "status") {
      reply = cmd_status(req);
    } else if (name == "result") {
      reply = cmd_result(req);
    } else if (name == "cancel") {
      reply = cmd_cancel(req);
    } else if (name == "metrics") {
      reply = cmd_metrics(req);
    } else if (name == "stats") {
      reply = cmd_stats();
    } else if (name == "events") {
      reply = cmd_events(req);
    } else if (name == "trace") {
      reply = cmd_trace(req);
    } else if (name == "drain") {
      drain();
      reply = util::Json::make_object();
      reply.set("ok", true);
      reply.set("draining", true);
      reply.set("queue_depth", queue_depth());
    } else if (name == "shutdown") {
      const util::Json* d = req.get("drain");
      request_shutdown(d == nullptr || d->as_bool());
      reply = util::Json::make_object();
      reply.set("ok", true);
      reply.set("shutting_down", true);
    } else {
      throw Error("unknown command '" + name + "'");
    }
  } catch (const std::exception& e) {
    // Malformed requests answer with an error reply on the same line —
    // the connection stays usable (protocol test: garbage must not take
    // the daemon down).
    reply = error_reply(e.what(), "bad_request");
  }
  return reply.dump() + "\n";
}

void Server::push_event(const char* kind, std::int64_t job_id,
                        std::string detail) {
  std::lock_guard<std::mutex> lock(events_mu_);
  DaemonEvent e;
  e.seq = next_event_seq_++;
  e.t_s = uptime_s();
  e.kind = kind;
  e.job_id = job_id;
  e.detail = std::move(detail);
  events_.push_back(std::move(e));
  const auto cap = static_cast<std::size_t>(options_.event_buffer);
  while (events_.size() > cap) {
    events_.pop_front();
    ++events_dropped_;
  }
}

std::vector<DaemonEvent> Server::events_after(std::int64_t after_seq,
                                              int limit) const {
  std::lock_guard<std::mutex> lock(events_mu_);
  std::vector<DaemonEvent> out;
  for (const DaemonEvent& e : events_) {
    if (e.seq <= after_seq) continue;
    out.push_back(e);
    // Oldest-first page of `limit`: the client advances `after` to the
    // last seq it saw, so a capped reply never skips events.
    if (limit > 0 && static_cast<int>(out.size()) >= limit) break;
  }
  return out;
}

void Server::update_gauges() {
  static obs::Gauge& g_depth = obs::gauge("serve.queue_depth");
  static obs::Gauge& g_low = obs::gauge("serve.queue_depth_low");
  static obs::Gauge& g_normal = obs::gauge("serve.queue_depth_normal");
  static obs::Gauge& g_high = obs::gauge("serve.queue_depth_high");
  static obs::Gauge& g_running = obs::gauge("serve.jobs_running");
  int depth[3];
  int running;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (int p = 0; p < 3; ++p) depth[p] = static_cast<int>(queue_[p].size());
    running = running_;
  }
  g_low.set(depth[0]);
  g_normal.set(depth[1]);
  g_high.set(depth[2]);
  g_depth.set(depth[0] + depth[1] + depth[2]);
  g_running.set(running);
}

double Server::uptime_s() const {
  if (start_tp_ == steady_clock::time_point{}) return 0.0;
  return seconds_between(start_tp_, steady_clock::now());
}

std::int64_t Server::submit(const flow::JobSpec& spec) {
  static obs::Counter& c_submitted = obs::counter("serve.jobs_submitted");
  static obs::Counter& c_rejected = obs::counter("serve.jobs_rejected");
  if (!spec.runnable()) {
    c_rejected.add(1);
    push_event("rejected", 0, "bad_job: missing source");
    throw Error("job spec: missing 'source'");
  }
  if (draining() || stopping_.load(std::memory_order_acquire)) {
    c_rejected.add(1);
    push_event("rejected", 0, "draining");
    throw Error("server is draining; submit rejected");
  }
  auto job = std::make_shared<Job>();
  job->spec = spec;
  job->submitted_tp = steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    int waiting = 0;
    for (const auto& q : queue_) waiting += static_cast<int>(q.size());
    if (waiting >= options_.max_queue) {
      c_rejected.add(1);
      push_event("rejected", 0,
                 strprintf("queue_full (%d waiting)", waiting));
      throw Error(strprintf("queue full (%d waiting jobs); retry later",
                            waiting));
    }
    job->id = next_id_++;
    jobs_[job->id] = job;
    queue_[static_cast<int>(spec.priority)].push_back(job);
  }
  c_submitted.add(1);
  push_event("submitted", job->id,
             spec.label.empty()
                 ? std::string(flow::job_priority_name(spec.priority))
                 : spec.label + " " + flow::job_priority_name(spec.priority));
  update_gauges();
  queue_cv_.notify_one();
  return job->id;
}

std::shared_ptr<Job> Server::find_job(std::int64_t id) const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

JobState Server::cancel_job(std::int64_t id) {
  static obs::Counter& c_cancelled = obs::counter("serve.jobs_cancelled");
  static obs::Histogram& h_wait = obs::histogram("serve.queue_wait_s");
  const std::shared_ptr<Job> job = find_job(id);
  if (!job) throw Error(strprintf("no such job %lld",
                                  static_cast<long long>(id)));
  JobState observed;
  bool cancelled_queued = false;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->cancel_requested = true;
    if (job->state == JobState::kQueued) {
      // Still waiting: cancel immediately; pop_job discards it later.
      // The job leaves the queue having run for 0 seconds — report that
      // explicitly (wall_s = 0, a terminal value) and close out the
      // queue wait it did accumulate.
      job->state = JobState::kCancelled;
      job->queue_wait_s =
          seconds_between(job->submitted_tp, steady_clock::now());
      job->wall_s = 0.0;
      {
        std::lock_guard<std::mutex> jl(jobs_mu_);
        ++finished_;
      }
      c_cancelled.add(1);
      h_wait.observe(job->queue_wait_s);
      cancelled_queued = true;
      job->done_cv.notify_all();
    } else if (job->state == JobState::kRunning && job->session) {
      job->session->cancel();  // cooperative; worker observes + finalizes
    }
    observed = job->state;
  }
  push_event("cancel_requested", id);
  if (cancelled_queued) {
    push_event("cancelled", id, "while queued");
    update_gauges();
  }
  return observed;
}

std::shared_ptr<Job> Server::pop_job() {
  std::unique_lock<std::mutex> lock(jobs_mu_);
  for (;;) {
    for (int p = 2; p >= 0; --p) {  // high → low, FIFO within a level
      auto& q = queue_[p];
      while (!q.empty()) {
        std::shared_ptr<Job> job = q.front();
        q.pop_front();
        return job;
      }
    }
    if (queue_stopped_) return nullptr;
    queue_cv_.wait(lock);
  }
}

void Server::worker_loop() {
  while (std::shared_ptr<Job> job = pop_job()) {
    run_job(job);
  }
}

void Server::run_job(const std::shared_ptr<Job>& job) {
  static obs::Counter& c_done = obs::counter("serve.jobs_done");
  static obs::Counter& c_failed = obs::counter("serve.jobs_failed");
  static obs::Counter& c_cancelled = obs::counter("serve.jobs_cancelled");
  static obs::Histogram& h_wait = obs::histogram("serve.queue_wait_s");
  static obs::Histogram& h_run = obs::histogram("serve.run_wall_s");

  flow::JobSpec spec;
  double queue_wait_s = 0.0;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    job->state = JobState::kRunning;
    job->started_tp = steady_clock::now();
    job->queue_wait_s = seconds_between(job->submitted_tp, job->started_tp);
    queue_wait_s = job->queue_wait_s;
    spec = job->spec;
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    ++running_;
  }
  h_wait.observe(queue_wait_s);
  push_event("started", job->id, strprintf("waited %.3fs", queue_wait_s));
  update_gauges();

  JobState final_state = JobState::kFailed;
  std::string error, failed_stage;
  util::Json result = util::Json::make_object();
  double wall_s = 0.0;
  {
    // Per-job trace spool: with trace_dir set, everything this job emits
    // while running — stage spans, kernel points — lands in its own
    // JSONL file under an obs::TraceContext tagged "job-<id>", wrapped
    // in one serve.job root span. The scope closes (ending the span and
    // flushing+closing the spool) before the terminal state is
    // committed, so a `trace` fetch after `result` sees a complete file.
    std::unique_ptr<obs::JsonlSink> spool;
    std::unique_ptr<obs::TraceContext> trace_ctx;
    if (!options_.trace_dir.empty()) {
      const std::string trace_id =
          strprintf("job-%lld", static_cast<long long>(job->id));
      const std::string path =
          options_.trace_dir + "/" + trace_id + ".jsonl";
      try {
        spool = std::make_unique<obs::JsonlSink>(path);
        trace_ctx = std::make_unique<obs::TraceContext>(spool.get(), trace_id);
        std::lock_guard<std::mutex> lock(job->mu);
        job->trace_path = path;
      } catch (const std::exception& e) {
        spool.reset();
        push_event("trace_error", job->id, e.what());
      }
    }
    obs::ScopedContext trace_scope(trace_ctx.get());
    const auto t0 = steady_clock::now();
    obs::Span job_span("serve.job", t0);
    job_span.metric("job_id", static_cast<double>(job->id));
    job_span.metric("priority",
                    static_cast<double>(static_cast<int>(spec.priority)));
    try {
      if (!spec.arch_text.empty()) {
        // Shared read-only cache: parse each distinct DUTYS text once.
        spec.options.arch = cached_arch(spec.arch_text);
        spec.arch_text.clear();
      }
      auto session = std::make_unique<flow::FlowSession>(spec);
      flow::FlowSession* raw = session.get();
      // The session carries the job's trace context onto whichever
      // thread runs it (this one) — redundant with trace_scope here,
      // but it is the contract resume-style callers rely on.
      raw->set_trace_context(trace_ctx.get());
      {
        std::lock_guard<std::mutex> lock(job->mu);
        job->session = std::move(session);
        // A cancel that arrived between admission and here must not be
        // lost: re-arm it on the live session.
        if (job->cancel_requested) raw->cancel();
      }
      const flow::SessionState state = raw->run_until(spec.until);
      result = flow::job_result_to_json(spec, raw->result());
      final_state = state == flow::SessionState::kCancelled
                        ? JobState::kCancelled
                        : JobState::kDone;
    } catch (const flow::StageInfeasibleError& e) {
      error = e.what();
      failed_stage = flow::stage_name(e.stage());
    } catch (const flow::StageError& e) {
      error = e.what();
      failed_stage = flow::stage_name(e.stage());
    } catch (const std::exception& e) {
      error = e.what();
    }
    const auto t1 = steady_clock::now();
    wall_s = seconds_between(t0, t1);
    job_span.freeze_duration(t1);
    job_span.metric("queue_wait_s", queue_wait_s);
    job_span.metric("wall_s", wall_s);
  }

  std::string terminal_detail = failed_stage;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->wall_s = wall_s;
    job->session.reset();  // free the artifacts; the JSON payload remains
    job->state = final_state;
    job->result = std::move(result);
    job->error = std::move(error);
    job->failed_stage = std::move(failed_stage);
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    ++finished_;
    --running_;
  }
  h_run.observe(wall_s);
  switch (final_state) {
    case JobState::kDone: c_done.add(1); break;
    case JobState::kCancelled: c_cancelled.add(1); break;
    default: c_failed.add(1); break;
  }
  push_event(job_state_name(final_state), job->id,
             std::move(terminal_detail));
  update_gauges();
  job->done_cv.notify_all();
}

void Server::watchdog_loop() {
  static obs::Counter& c_slow = obs::counter("serve.slow_jobs");
  const auto period = std::chrono::duration_cast<steady_clock::duration>(
      std::chrono::duration<double>(
          std::max(0.005, options_.slow_job_s / 4.0)));
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, period);
    if (watchdog_stop_) break;
    lock.unlock();
    std::vector<std::shared_ptr<Job>> snapshot;
    {
      std::lock_guard<std::mutex> jl(jobs_mu_);
      snapshot.reserve(jobs_.size());
      for (const auto& [id, job] : jobs_) snapshot.push_back(job);
    }
    const auto now = steady_clock::now();
    for (const std::shared_ptr<Job>& job : snapshot) {
      double elapsed = 0.0;
      bool fire = false;
      {
        std::lock_guard<std::mutex> jm(job->mu);
        if (job->state == JobState::kRunning && !job->slow_reported) {
          elapsed = seconds_between(job->started_tp, now);
          if (elapsed > options_.slow_job_s) {
            job->slow_reported = true;
            fire = true;
          }
        }
      }
      if (fire) {
        c_slow.add(1);
        push_event("slow_job", job->id,
                   strprintf("running %.1fs (threshold %.1fs)", elapsed,
                             options_.slow_job_s));
      }
    }
    lock.lock();
  }
}

util::Json Server::cmd_submit(const util::Json& req) {
  const util::Json* job_json = req.get("job");
  if (job_json == nullptr) throw Error("missing 'job'");
  flow::JobSpec spec;
  try {
    spec = flow::job_spec_from_json(*job_json);
  } catch (const std::exception& e) {
    // The request line was valid JSON; the job description is what's
    // broken (unknown key, bad value, missing source).
    return error_reply(e.what(), "bad_job");
  }
  std::int64_t id = 0;
  try {
    id = submit(spec);
  } catch (const Error& e) {
    const std::string what = e.what();
    const std::string reason =
        what.find("queue full") != std::string::npos ? "queue_full"
        : what.find("draining") != std::string::npos ? "draining"
                                                     : "bad_job";
    return error_reply(what, reason);
  }
  util::Json reply = util::Json::make_object();
  reply.set("ok", true);
  reply.set("id", id);
  if (!spec.label.empty()) reply.set("label", spec.label);
  reply.set("state", job_state_name(JobState::kQueued));
  reply.set("queue_depth", queue_depth());
  return reply;
}

util::Json Server::cmd_status(const util::Json& req) {
  const std::shared_ptr<Job> job = find_job(req_job_id(req));
  if (!job) return error_reply("no such job", "not_found");
  util::Json reply = util::Json::make_object();
  reply.set("ok", true);
  reply.set("id", job->id);
  std::lock_guard<std::mutex> lock(job->mu);
  if (!job->spec.label.empty()) reply.set("label", job->spec.label);
  reply.set("state", job_state_name(job->state));
  if (job->queue_wait_s >= 0.0) {
    reply.set("queue_wait_s", util::Json::make_number(job->queue_wait_s));
  }
  if (job->state == JobState::kRunning && job->session) {
    const auto next = job->session->next_stage();
    if (next) reply.set("stage", flow::stage_name(*next));
  }
  if (job->state == JobState::kRunning) {
    // Live run wall time so far (wall_s stays the terminal value).
    reply.set("run_wall_s",
              util::Json::make_number(
                  seconds_between(job->started_tp, steady_clock::now())));
  }
  if (!job->error.empty()) reply.set("error", job->error);
  if (!job->failed_stage.empty()) reply.set("stage", job->failed_stage);
  if (job_state_terminal(job->state)) {
    reply.set("wall_s", util::Json::make_number(job->wall_s));
    reply.set("run_wall_s", util::Json::make_number(job->wall_s));
  }
  return reply;
}

util::Json Server::cmd_result(const util::Json& req) {
  const std::shared_ptr<Job> job = find_job(req_job_id(req));
  if (!job) return error_reply("no such job", "not_found");
  const util::Json* wait = req.get("wait");
  const util::Json* timeout = req.get("timeout_s");
  const double timeout_s =
      timeout != nullptr ? timeout->as_number() : 600.0;

  std::unique_lock<std::mutex> lock(job->mu);
  if (wait != nullptr && wait->as_bool()) {
    const auto deadline =
        steady_clock::now() +
        std::chrono::duration_cast<steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    while (!job_state_terminal(job->state)) {
      if (job->done_cv.wait_until(lock, deadline) ==
          std::cv_status::timeout &&
          !job_state_terminal(job->state)) {
        util::Json reply = error_reply("timed out waiting", "timeout");
        reply.set("state", job_state_name(job->state));
        return reply;
      }
    }
  }
  if (!job_state_terminal(job->state)) {
    util::Json reply =
        error_reply("job not finished", "not_finished");
    reply.set("state", job_state_name(job->state));
    return reply;
  }
  util::Json reply = util::Json::make_object();
  reply.set("ok", true);
  reply.set("id", job->id);
  reply.set("state", job_state_name(job->state));
  reply.set("wall_s", util::Json::make_number(job->wall_s));
  reply.set("run_wall_s", util::Json::make_number(job->wall_s));
  if (job->queue_wait_s >= 0.0) {
    reply.set("queue_wait_s", util::Json::make_number(job->queue_wait_s));
  }
  if (!job->error.empty()) reply.set("error", job->error);
  if (!job->failed_stage.empty()) reply.set("stage", job->failed_stage);
  reply.set("result", job->result);
  return reply;
}

util::Json Server::cmd_cancel(const util::Json& req) {
  const std::int64_t id = req_job_id(req);
  util::Json reply = util::Json::make_object();
  try {
    const JobState state = cancel_job(id);
    reply.set("ok", true);
    reply.set("id", id);
    reply.set("state", job_state_name(state));
  } catch (const Error& e) {
    return error_reply(e.what(), "not_found");
  }
  return reply;
}

util::Json Server::cmd_metrics(const util::Json& req) const {
  const util::Json* fmt = req.get("format");
  if (fmt != nullptr && fmt->as_string() == "prometheus") {
    // Prometheus text exposition of the registry (DESIGN.md §13.3).
    // Refresh the serve gauges first so scrape-time queue depths are
    // current even if no job transitioned recently.
    const_cast<Server*>(this)->update_gauges();
    util::Json reply = util::Json::make_object();
    reply.set("ok", true);
    reply.set("format", "prometheus");
    reply.set("text", obs::snapshot_metrics().to_prometheus());
    return reply;
  }

  util::Json reply = util::Json::make_object();
  reply.set("ok", true);
  // The PR-5 registry snapshot, embedded as an object.
  reply.set("metrics", util::parse_json(obs::snapshot_metrics().to_json()));

  util::Json server = util::Json::make_object();
  server.set("queue_depth", queue_depth());
  server.set("jobs_submitted", jobs_submitted());
  server.set("jobs_finished", jobs_finished());
  server.set("draining", draining());
  server.set("uptime_s", util::Json::make_number(uptime_s()));
  reply.set("server", std::move(server));

  // Per-job summaries; terminal jobs carry their StageMetrics payload.
  util::Json jobs = util::Json::make_array();
  std::vector<std::shared_ptr<Job>> snapshot;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    snapshot.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) snapshot.push_back(job);
  }
  for (const std::shared_ptr<Job>& job : snapshot) {
    std::lock_guard<std::mutex> lock(job->mu);
    util::Json j = util::Json::make_object();
    j.set("id", job->id);
    if (!job->spec.label.empty()) j.set("label", job->spec.label);
    j.set("priority", flow::job_priority_name(job->spec.priority));
    j.set("state", job_state_name(job->state));
    if (job->queue_wait_s >= 0.0) {
      j.set("queue_wait_s", util::Json::make_number(job->queue_wait_s));
    }
    if (job_state_terminal(job->state)) {
      j.set("wall_s", util::Json::make_number(job->wall_s));
      const util::Json* stages = job->result.get("stages");
      if (stages != nullptr) j.set("stages", *stages);
    }
    jobs.push_back(std::move(j));
  }
  reply.set("jobs", std::move(jobs));
  return reply;
}

util::Json Server::cmd_stats() const {
  util::Json reply = util::Json::make_object();
  reply.set("ok", true);
  reply.set("uptime_s", util::Json::make_number(uptime_s()));
  reply.set("workers", workers_);
  reply.set("max_queue", options_.max_queue);
  reply.set("draining", draining());
  reply.set("trace_dir", options_.trace_dir);
  reply.set("slow_job_s", util::Json::make_number(options_.slow_job_s));

  std::vector<std::shared_ptr<Job>> snapshot;
  std::int64_t submitted = 0, finished = 0;
  int depth[3], running = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (int p = 0; p < 3; ++p) depth[p] = static_cast<int>(queue_[p].size());
    running = running_;
    submitted = next_id_ - 1;
    finished = finished_;
    snapshot.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) snapshot.push_back(job);
  }
  util::Json queue = util::Json::make_object();
  queue.set("low", depth[0]);
  queue.set("normal", depth[1]);
  queue.set("high", depth[2]);
  queue.set("total", depth[0] + depth[1] + depth[2]);
  reply.set("queue_depth", std::move(queue));

  // Per-state census over the whole job table.
  std::int64_t by_state[5] = {0, 0, 0, 0, 0};
  for (const std::shared_ptr<Job>& job : snapshot) {
    std::lock_guard<std::mutex> lock(job->mu);
    ++by_state[static_cast<int>(job->state)];
  }
  util::Json jobs = util::Json::make_object();
  jobs.set("submitted", submitted);
  jobs.set("finished", finished);
  jobs.set("running", running);
  for (int s = 0; s < 5; ++s) {
    jobs.set(job_state_name(static_cast<JobState>(s)), by_state[s]);
  }
  reply.set("jobs", std::move(jobs));

  // Latency distributions from the registry (process-global: in a
  // multi-server test binary these aggregate across all instances).
  const obs::MetricsSnapshot snap = obs::snapshot_metrics();
  reply.set("queue_wait_s", histogram_json(snap, "serve.queue_wait_s"));
  reply.set("run_wall_s", histogram_json(snap, "serve.run_wall_s"));
  reply.set("slow_jobs",
            static_cast<std::int64_t>(snap.counter("serve.slow_jobs")));
  reply.set("jobs_rejected",
            static_cast<std::int64_t>(snap.counter("serve.jobs_rejected")));

  {
    std::lock_guard<std::mutex> lock(events_mu_);
    util::Json events = util::Json::make_object();
    events.set("buffered", static_cast<std::int64_t>(events_.size()));
    events.set("next_seq", next_event_seq_);
    events.set("dropped", events_dropped_);
    reply.set("events", std::move(events));
  }
  return reply;
}

util::Json Server::cmd_events(const util::Json& req) const {
  std::int64_t after = 0;
  int limit = 100;
  if (const util::Json* a = req.get("after")) after = a->as_int();
  if (const util::Json* l = req.get("limit")) {
    limit = static_cast<int>(l->as_int());
  }
  const std::vector<DaemonEvent> events = events_after(after, limit);
  util::Json reply = util::Json::make_object();
  reply.set("ok", true);
  util::Json arr = util::Json::make_array();
  std::int64_t last_seq = after;
  for (const DaemonEvent& e : events) {
    util::Json j = util::Json::make_object();
    j.set("seq", e.seq);
    j.set("t_s", util::Json::make_number(e.t_s));
    j.set("kind", e.kind);
    if (e.job_id != 0) j.set("id", e.job_id);
    if (!e.detail.empty()) j.set("detail", e.detail);
    arr.push_back(std::move(j));
    last_seq = e.seq;
  }
  reply.set("events", std::move(arr));
  // Resume cursor for the next poll; `dropped` > 0 flags ring overflow
  // (a client that fell behind lost the difference).
  reply.set("next_after", last_seq);
  {
    std::lock_guard<std::mutex> lock(events_mu_);
    reply.set("dropped", events_dropped_);
  }
  return reply;
}

util::Json Server::cmd_trace(const util::Json& req) const {
  const std::shared_ptr<Job> job = find_job(req_job_id(req));
  if (!job) return error_reply("no such job", "not_found");
  std::string path;
  JobState state;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    path = job->trace_path;
    state = job->state;
  }
  if (path.empty()) {
    return error_reply(
        "per-job tracing disabled (start the daemon with --trace-dir)",
        "no_trace");
  }
  std::ifstream in(path);
  if (!in) return error_reply("trace file unreadable: " + path, "no_trace");
  std::ostringstream ss;
  ss << in.rdbuf();
  util::Json reply = util::Json::make_object();
  reply.set("ok", true);
  reply.set("id", job->id);
  reply.set("state", job_state_name(state));
  reply.set("path", path);
  // False while the job still runs: the spool is open and buffered, so
  // the JSONL below may end mid-line (the analyzer skips such tails).
  reply.set("complete", job_state_terminal(state));
  reply.set("trace_jsonl", ss.str());
  return reply;
}

int Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  int waiting = 0;
  for (const auto& q : queue_) waiting += static_cast<int>(q.size());
  return waiting;
}

std::int64_t Server::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return next_id_ - 1;
}

std::int64_t Server::jobs_finished() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return finished_;
}

bool Server::shutdown_requested(bool* drain_out) const {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (drain_out != nullptr) *drain_out = shutdown_drain_;
  return shutdown_requested_;
}

void Server::request_shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
    shutdown_drain_ = drain;
  }
  shutdown_cv_.notify_all();
}

void Server::wait_shutdown_requested() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::shutdown(bool drain) {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true)) return;  // idempotent
  stopping_.store(true, std::memory_order_release);
  draining_.store(true, std::memory_order_release);

  // Stop the acceptor: closing the listen socket unblocks accept().
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (acceptor_.joinable()) acceptor_.join();

  if (!drain) {
    // Cancel everything still pending; workers then finish fast.
    std::vector<std::int64_t> ids;
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      for (const auto& [id, job] : jobs_) ids.push_back(id);
    }
    for (const std::int64_t id : ids) {
      try {
        cancel_job(id);
      } catch (const Error&) {
      }
    }
  }

  // Drain-and-stop the worker pool: pop_job returns null once the queue
  // is empty and stopped, so every queued job still runs first.
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    queue_stopped_ = true;
  }
  queue_cv_.notify_all();
  if (pool_) {
    pool_->wait();
    pool_.reset();
  }

  // The watchdog keeps scanning through the drain (slow jobs still fire
  // events); stop it once the workers are done.
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();

  // Kick and join the connection threads (blocking recv gets EOF; any
  // result-wait already saw its job reach a terminal state above).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [fd, thread] : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  for (;;) {
    std::pair<int, std::thread> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.back());
      conns_.pop_back();
    }
    if (conn.second.joinable()) conn.second.join();
  }
}

namespace {
volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }
}  // namespace

int run_server(const ServeOptions& options) {
  Server server(options);
  server.start();
  std::printf("listening on %d\n", server.port());
  std::fflush(stdout);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  // Wait for SIGTERM/SIGINT or a `shutdown` protocol command. The
  // signal handler only flips a flag, so poll it alongside the
  // command-driven condition.
  bool drain = true;
  while (!g_signal && !server.shutdown_requested(&drain)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "amdrel_serve: draining (%lld jobs submitted)...\n",
               static_cast<long long>(server.jobs_submitted()));
  server.shutdown(drain);
  std::fprintf(stderr, "amdrel_serve: done (%lld jobs finished)\n",
               static_cast<long long>(server.jobs_finished()));
  return 0;
}

}  // namespace amdrel::serve

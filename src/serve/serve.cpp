#include "serve/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "arch/arch.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::serve {

namespace {

using std::chrono::steady_clock;

/// Cap on one request line — inline VHDL/BLIF text lives in the line.
constexpr std::size_t kMaxLine = 16u << 20;

/// Process-wide cache of elaborated architectures, keyed on the exact
/// DUTYS text. Read_arch_string is deterministic, so every job with the
/// same arch text shares one parsed copy instead of re-elaborating per
/// job (the RR-side sharing lives in route::RrPatternTemplates).
const arch::ArchSpec& cached_arch(const std::string& text) {
  static std::mutex mu;
  static auto* cache = new std::unordered_map<std::string, arch::ArchSpec>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(text);
  if (it == cache->end()) {
    it = cache->emplace(text, arch::read_arch_string(text)).first;
  }
  return it->second;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

util::Json error_reply(const std::string& message,
                       const std::string& reason = "") {
  util::Json obj = util::Json::make_object();
  obj.set("ok", false);
  obj.set("error", message);
  if (!reason.empty()) obj.set("reason", reason);
  return obj;
}

std::int64_t req_job_id(const util::Json& req) {
  const util::Json* id = req.get("id");
  if (id == nullptr) throw Error("missing 'id'");
  return id->as_int();
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool job_state_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

Server::Server(const ServeOptions& options) : options_(options) {
  if (options_.max_queue < 1) options_.max_queue = 1;
}

Server::~Server() { shutdown(false); }

void Server::start() {
  AMDREL_CHECK_MSG(!started_.exchange(true), "server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(strprintf("serve: cannot listen on port %d", options_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  int workers = options_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers < 1) workers = 1;
  }
  pool_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool_->submit([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket gone
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.emplace_back(fd, std::thread([this, fd] { connection_loop(fd); }));
  }
}

void Server::connection_loop(int fd) {
  std::string buf;
  char chunk[65536];
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!send_all(fd, handle_line(line))) break;
      continue;
    }
    if (buf.size() > kMaxLine) {
      send_all(fd, error_reply("request line too long", "overflow").dump() +
                       "\n");
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF / error / shutdown kick
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
}

std::string Server::handle_line(const std::string& line) {
  util::Json reply;
  try {
    const util::Json req = util::parse_json(line);
    if (!req.is_object()) throw Error("expected a JSON object");
    const util::Json* cmd = req.get("cmd");
    if (cmd == nullptr) throw Error("missing 'cmd'");
    const std::string name = cmd->as_string();
    if (name == "ping") {
      reply = util::Json::make_object();
      reply.set("ok", true);
      reply.set("reply", "pong");
    } else if (name == "submit") {
      reply = cmd_submit(req);
    } else if (name == "status") {
      reply = cmd_status(req);
    } else if (name == "result") {
      reply = cmd_result(req);
    } else if (name == "cancel") {
      reply = cmd_cancel(req);
    } else if (name == "metrics") {
      reply = cmd_metrics();
    } else if (name == "drain") {
      drain();
      reply = util::Json::make_object();
      reply.set("ok", true);
      reply.set("draining", true);
      reply.set("queue_depth", queue_depth());
    } else if (name == "shutdown") {
      const util::Json* d = req.get("drain");
      request_shutdown(d == nullptr || d->as_bool());
      reply = util::Json::make_object();
      reply.set("ok", true);
      reply.set("shutting_down", true);
    } else {
      throw Error("unknown command '" + name + "'");
    }
  } catch (const std::exception& e) {
    // Malformed requests answer with an error reply on the same line —
    // the connection stays usable (protocol test: garbage must not take
    // the daemon down).
    reply = error_reply(e.what(), "bad_request");
  }
  return reply.dump() + "\n";
}

std::int64_t Server::submit(const flow::JobSpec& spec) {
  static obs::Counter& c_submitted = obs::counter("serve.jobs_submitted");
  static obs::Counter& c_rejected = obs::counter("serve.jobs_rejected");
  if (!spec.runnable()) {
    c_rejected.add(1);
    throw Error("job spec: missing 'source'");
  }
  if (draining() || stopping_.load(std::memory_order_acquire)) {
    c_rejected.add(1);
    throw Error("server is draining; submit rejected");
  }
  auto job = std::make_shared<Job>();
  job->spec = spec;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    int waiting = 0;
    for (const auto& q : queue_) waiting += static_cast<int>(q.size());
    if (waiting >= options_.max_queue) {
      c_rejected.add(1);
      throw Error(strprintf("queue full (%d waiting jobs); retry later",
                            waiting));
    }
    job->id = next_id_++;
    jobs_[job->id] = job;
    queue_[static_cast<int>(spec.priority)].push_back(job);
  }
  c_submitted.add(1);
  queue_cv_.notify_one();
  return job->id;
}

std::shared_ptr<Job> Server::find_job(std::int64_t id) const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

JobState Server::cancel_job(std::int64_t id) {
  static obs::Counter& c_cancelled = obs::counter("serve.jobs_cancelled");
  const std::shared_ptr<Job> job = find_job(id);
  if (!job) throw Error(strprintf("no such job %lld",
                                  static_cast<long long>(id)));
  std::lock_guard<std::mutex> lock(job->mu);
  job->cancel_requested = true;
  if (job->state == JobState::kQueued) {
    // Still waiting: cancel immediately; pop_job discards it later.
    job->state = JobState::kCancelled;
    {
      std::lock_guard<std::mutex> jl(jobs_mu_);
      ++finished_;
    }
    c_cancelled.add(1);
    job->done_cv.notify_all();
  } else if (job->state == JobState::kRunning && job->session) {
    job->session->cancel();  // cooperative; worker observes + finalizes
  }
  return job->state;
}

std::shared_ptr<Job> Server::pop_job() {
  std::unique_lock<std::mutex> lock(jobs_mu_);
  for (;;) {
    for (int p = 2; p >= 0; --p) {  // high → low, FIFO within a level
      auto& q = queue_[p];
      while (!q.empty()) {
        std::shared_ptr<Job> job = q.front();
        q.pop_front();
        return job;
      }
    }
    if (queue_stopped_) return nullptr;
    queue_cv_.wait(lock);
  }
}

void Server::worker_loop() {
  while (std::shared_ptr<Job> job = pop_job()) {
    run_job(job);
  }
}

void Server::run_job(const std::shared_ptr<Job>& job) {
  static obs::Counter& c_done = obs::counter("serve.jobs_done");
  static obs::Counter& c_failed = obs::counter("serve.jobs_failed");
  static obs::Counter& c_cancelled = obs::counter("serve.jobs_cancelled");

  flow::JobSpec spec;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    job->state = JobState::kRunning;
    spec = job->spec;
  }

  JobState final_state = JobState::kFailed;
  std::string error, failed_stage;
  util::Json result = util::Json::make_object();
  const auto t0 = steady_clock::now();
  try {
    if (!spec.arch_text.empty()) {
      // Shared read-only cache: parse each distinct DUTYS text once.
      spec.options.arch = cached_arch(spec.arch_text);
      spec.arch_text.clear();
    }
    auto session = std::make_unique<flow::FlowSession>(spec);
    flow::FlowSession* raw = session.get();
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->session = std::move(session);
      // A cancel that arrived between admission and here must not be
      // lost: re-arm it on the live session.
      if (job->cancel_requested) raw->cancel();
    }
    const flow::SessionState state = raw->run_until(spec.until);
    result = flow::job_result_to_json(spec, raw->result());
    final_state = state == flow::SessionState::kCancelled
                      ? JobState::kCancelled
                      : JobState::kDone;
  } catch (const flow::StageInfeasibleError& e) {
    error = e.what();
    failed_stage = flow::stage_name(e.stage());
  } catch (const flow::StageError& e) {
    error = e.what();
    failed_stage = flow::stage_name(e.stage());
  } catch (const std::exception& e) {
    error = e.what();
  }

  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->wall_s =
        std::chrono::duration<double>(steady_clock::now() - t0).count();
    job->session.reset();  // free the artifacts; the JSON payload remains
    job->state = final_state;
    job->result = std::move(result);
    job->error = std::move(error);
    job->failed_stage = std::move(failed_stage);
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    ++finished_;
  }
  switch (final_state) {
    case JobState::kDone: c_done.add(1); break;
    case JobState::kCancelled: c_cancelled.add(1); break;
    default: c_failed.add(1); break;
  }
  job->done_cv.notify_all();
}

util::Json Server::cmd_submit(const util::Json& req) {
  const util::Json* job_json = req.get("job");
  if (job_json == nullptr) throw Error("missing 'job'");
  flow::JobSpec spec;
  try {
    spec = flow::job_spec_from_json(*job_json);
  } catch (const std::exception& e) {
    // The request line was valid JSON; the job description is what's
    // broken (unknown key, bad value, missing source).
    return error_reply(e.what(), "bad_job");
  }
  std::int64_t id = 0;
  try {
    id = submit(spec);
  } catch (const Error& e) {
    const std::string what = e.what();
    const std::string reason =
        what.find("queue full") != std::string::npos ? "queue_full"
        : what.find("draining") != std::string::npos ? "draining"
                                                     : "bad_job";
    return error_reply(what, reason);
  }
  util::Json reply = util::Json::make_object();
  reply.set("ok", true);
  reply.set("id", id);
  if (!spec.label.empty()) reply.set("label", spec.label);
  reply.set("state", job_state_name(JobState::kQueued));
  reply.set("queue_depth", queue_depth());
  return reply;
}

util::Json Server::cmd_status(const util::Json& req) {
  const std::shared_ptr<Job> job = find_job(req_job_id(req));
  if (!job) return error_reply("no such job", "not_found");
  util::Json reply = util::Json::make_object();
  reply.set("ok", true);
  reply.set("id", job->id);
  std::lock_guard<std::mutex> lock(job->mu);
  if (!job->spec.label.empty()) reply.set("label", job->spec.label);
  reply.set("state", job_state_name(job->state));
  if (job->state == JobState::kRunning && job->session) {
    const auto next = job->session->next_stage();
    if (next) reply.set("stage", flow::stage_name(*next));
  }
  if (!job->error.empty()) reply.set("error", job->error);
  if (!job->failed_stage.empty()) reply.set("stage", job->failed_stage);
  if (job_state_terminal(job->state)) {
    reply.set("wall_s", util::Json::make_number(job->wall_s));
  }
  return reply;
}

util::Json Server::cmd_result(const util::Json& req) {
  const std::shared_ptr<Job> job = find_job(req_job_id(req));
  if (!job) return error_reply("no such job", "not_found");
  const util::Json* wait = req.get("wait");
  const util::Json* timeout = req.get("timeout_s");
  const double timeout_s =
      timeout != nullptr ? timeout->as_number() : 600.0;

  std::unique_lock<std::mutex> lock(job->mu);
  if (wait != nullptr && wait->as_bool()) {
    const auto deadline =
        steady_clock::now() +
        std::chrono::duration_cast<steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    while (!job_state_terminal(job->state)) {
      if (job->done_cv.wait_until(lock, deadline) ==
          std::cv_status::timeout &&
          !job_state_terminal(job->state)) {
        util::Json reply = error_reply("timed out waiting", "timeout");
        reply.set("state", job_state_name(job->state));
        return reply;
      }
    }
  }
  if (!job_state_terminal(job->state)) {
    util::Json reply =
        error_reply("job not finished", "not_finished");
    reply.set("state", job_state_name(job->state));
    return reply;
  }
  util::Json reply = util::Json::make_object();
  reply.set("ok", true);
  reply.set("id", job->id);
  reply.set("state", job_state_name(job->state));
  reply.set("wall_s", util::Json::make_number(job->wall_s));
  if (!job->error.empty()) reply.set("error", job->error);
  if (!job->failed_stage.empty()) reply.set("stage", job->failed_stage);
  reply.set("result", job->result);
  return reply;
}

util::Json Server::cmd_cancel(const util::Json& req) {
  const std::int64_t id = req_job_id(req);
  util::Json reply = util::Json::make_object();
  try {
    const JobState state = cancel_job(id);
    reply.set("ok", true);
    reply.set("id", id);
    reply.set("state", job_state_name(state));
  } catch (const Error& e) {
    return error_reply(e.what(), "not_found");
  }
  return reply;
}

util::Json Server::cmd_metrics() const {
  util::Json reply = util::Json::make_object();
  reply.set("ok", true);
  // The PR-5 registry snapshot, embedded as an object.
  reply.set("metrics", util::parse_json(obs::snapshot_metrics().to_json()));

  util::Json server = util::Json::make_object();
  server.set("queue_depth", queue_depth());
  server.set("jobs_submitted", jobs_submitted());
  server.set("jobs_finished", jobs_finished());
  server.set("draining", draining());
  reply.set("server", std::move(server));

  // Per-job summaries; terminal jobs carry their StageMetrics payload.
  util::Json jobs = util::Json::make_array();
  std::vector<std::shared_ptr<Job>> snapshot;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    snapshot.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) snapshot.push_back(job);
  }
  for (const std::shared_ptr<Job>& job : snapshot) {
    std::lock_guard<std::mutex> lock(job->mu);
    util::Json j = util::Json::make_object();
    j.set("id", job->id);
    if (!job->spec.label.empty()) j.set("label", job->spec.label);
    j.set("priority", flow::job_priority_name(job->spec.priority));
    j.set("state", job_state_name(job->state));
    if (job_state_terminal(job->state)) {
      j.set("wall_s", util::Json::make_number(job->wall_s));
      const util::Json* stages = job->result.get("stages");
      if (stages != nullptr) j.set("stages", *stages);
    }
    jobs.push_back(std::move(j));
  }
  reply.set("jobs", std::move(jobs));
  return reply;
}

int Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  int waiting = 0;
  for (const auto& q : queue_) waiting += static_cast<int>(q.size());
  return waiting;
}

std::int64_t Server::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return next_id_ - 1;
}

std::int64_t Server::jobs_finished() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return finished_;
}

bool Server::shutdown_requested(bool* drain_out) const {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (drain_out != nullptr) *drain_out = shutdown_drain_;
  return shutdown_requested_;
}

void Server::request_shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
    shutdown_drain_ = drain;
  }
  shutdown_cv_.notify_all();
}

void Server::wait_shutdown_requested() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::shutdown(bool drain) {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true)) return;  // idempotent
  stopping_.store(true, std::memory_order_release);
  draining_.store(true, std::memory_order_release);

  // Stop the acceptor: closing the listen socket unblocks accept().
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (acceptor_.joinable()) acceptor_.join();

  if (!drain) {
    // Cancel everything still pending; workers then finish fast.
    std::vector<std::int64_t> ids;
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      for (const auto& [id, job] : jobs_) ids.push_back(id);
    }
    for (const std::int64_t id : ids) {
      try {
        cancel_job(id);
      } catch (const Error&) {
      }
    }
  }

  // Drain-and-stop the worker pool: pop_job returns null once the queue
  // is empty and stopped, so every queued job still runs first.
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    queue_stopped_ = true;
  }
  queue_cv_.notify_all();
  if (pool_) {
    pool_->wait();
    pool_.reset();
  }

  // Kick and join the connection threads (blocking recv gets EOF; any
  // result-wait already saw its job reach a terminal state above).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [fd, thread] : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  for (;;) {
    std::pair<int, std::thread> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.back());
      conns_.pop_back();
    }
    if (conn.second.joinable()) conn.second.join();
  }
}

namespace {
volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }
}  // namespace

int run_server(const ServeOptions& options) {
  Server server(options);
  server.start();
  std::printf("listening on %d\n", server.port());
  std::fflush(stdout);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  // Wait for SIGTERM/SIGINT or a `shutdown` protocol command. The
  // signal handler only flips a flag, so poll it alongside the
  // command-driven condition.
  bool drain = true;
  while (!g_signal && !server.shutdown_requested(&drain)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "amdrel_serve: draining (%lld jobs submitted)...\n",
               static_cast<long long>(server.jobs_submitted()));
  server.shutdown(drain);
  std::fprintf(stderr, "amdrel_serve: done (%lld jobs finished)\n",
               static_cast<long long>(server.jobs_finished()));
  return 0;
}

}  // namespace amdrel::serve

#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::obs {

namespace detail {
namespace {

/// Name → slot tables plus every shard ever created. Shards are owned
/// here and never destroyed (a dead thread's counts must stay visible);
/// exiting threads park theirs on a free list for reuse, which keeps the
/// shard population bounded by peak thread concurrency.
class Registry {
 public:
  static Registry& instance() {
    static Registry* r = new Registry();  // leaked: outlives TLS dtors
    return *r;
  }

  Counter& get_counter(const char* name) {
    return get_slot(name, counters_, counter_names_, kMaxCounters, "counter");
  }
  Gauge& get_gauge(const char* name) {
    Gauge& g =
        get_slot(name, gauges_, gauge_names_, kMaxGauges, "gauge");
    return g;
  }
  Histogram& get_histogram(const char* name) {
    return get_slot(name, histograms_, hist_names_, kMaxHistograms,
                    "histogram");
  }

  Shard* acquire_shard() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_shards_.empty()) {
      Shard* s = free_shards_.back();
      free_shards_.pop_back();
      return s;
    }
    shards_.push_back(std::make_unique<Shard>());
    return shards_.back().get();
  }

  void park_shard(Shard* shard) {
    std::lock_guard<std::mutex> lock(mu_);
    free_shards_.push_back(shard);
  }

  void set_gauge(int id, double v) {
    gauge_values_[id].store(std::bit_cast<std::uint64_t>(v),
                            std::memory_order_relaxed);
  }

  MetricsSnapshot snapshot();
  void reset();

 private:
  Registry() = default;

  template <typename T>
  T& get_slot(const char* name, std::vector<std::unique_ptr<T>>& slots,
              std::map<std::string, int>& names, int cap, const char* kind) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = names.find(name);
    if (it != names.end()) return *slots[static_cast<std::size_t>(it->second)];
    const int id = static_cast<int>(slots.size());
    AMDREL_CHECK_MSG(id < cap, std::string("metrics registry: too many ") +
                                   kind + "s (cap " + std::to_string(cap) +
                                   ")");
    names.emplace(name, id);
    slots.push_back(std::unique_ptr<T>(MetricMaker::make<T>(id)));
    return *slots.back();
  }

  std::mutex mu_;
  std::map<std::string, int> counter_names_;
  std::map<std::string, int> gauge_names_;
  std::map<std::string, int> hist_names_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Shard*> free_shards_;
  std::atomic<std::uint64_t> gauge_values_[kMaxGauges] = {};
};

double bits_to_double(std::uint64_t bits) {
  return std::bit_cast<double>(bits);
}

/// Lower edge of histogram bucket b (see kHistBuckets in metrics.hpp).
double bucket_floor(int b) { return std::ldexp(1.0, b - 32); }

int bucket_of(double v) {
  if (!(v > 0.0)) return 0;  // zero/negative/NaN observations park in b0
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  return std::clamp(exp + 31, 0, kHistBuckets - 1);
}

/// Quantile from merged buckets: walk to the bucket holding the q-th
/// observation and interpolate linearly inside it.
double bucket_quantile(const std::uint64_t* buckets, std::uint64_t count,
                       double q, double vmin, double vmax) {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (int b = 0; b < kHistBuckets; ++b) {
    const double n = static_cast<double>(buckets[b]);
    if (n == 0.0) continue;
    if (cum + n >= target) {
      const double lo = b == 0 ? 0.0 : bucket_floor(b);
      const double hi = bucket_floor(b + 1);
      const double frac = std::clamp((target - cum) / n, 0.0, 1.0);
      return std::clamp(lo + frac * (hi - lo), vmin, vmax);
    }
    cum += n;
  }
  return vmax;
}

MetricsSnapshot Registry::snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, id] : counter_names_) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[id].load(std::memory_order_relaxed);
    }
    snap.counters.push_back({name, total});
  }
  for (const auto& [name, id] : gauge_names_) {
    snap.gauges.push_back(
        {name, bits_to_double(
                   gauge_values_[id].load(std::memory_order_relaxed))});
  }
  for (const auto& [name, id] : hist_names_) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    std::uint64_t buckets[kHistBuckets] = {};
    bool any = false;
    for (const auto& shard : shards_) {
      const auto& hs = shard->hists[id];
      const std::uint64_t c = hs.count.load(std::memory_order_relaxed);
      if (c == 0) continue;
      h.count += c;
      h.sum += bits_to_double(hs.sum_bits.load(std::memory_order_relaxed));
      const double mn =
          bits_to_double(hs.min_bits.load(std::memory_order_relaxed));
      const double mx =
          bits_to_double(hs.max_bits.load(std::memory_order_relaxed));
      h.min = any ? std::min(h.min, mn) : mn;
      h.max = any ? std::max(h.max, mx) : mx;
      any = true;
      for (int b = 0; b < kHistBuckets; ++b) {
        buckets[b] += hs.buckets[b].load(std::memory_order_relaxed);
      }
    }
    h.p50 = bucket_quantile(buckets, h.count, 0.50, h.min, h.max);
    h.p95 = bucket_quantile(buckets, h.count, 0.95, h.min, h.max);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->hists) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.sum_bits.store(0, std::memory_order_relaxed);
      h.min_bits.store(0, std::memory_order_relaxed);
      h.max_bits.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauge_values_) g.store(0, std::memory_order_relaxed);
}

/// Owns this thread's shard binding; parks the shard for reuse when the
/// thread exits (values survive — the shard stays in the registry).
struct ShardHandle {
  Shard* shard = nullptr;
  ~ShardHandle() {
    if (shard != nullptr) Registry::instance().park_shard(shard);
  }
};

}  // namespace

Shard& local_shard() {
  thread_local ShardHandle tls;
  if (tls.shard == nullptr) tls.shard = Registry::instance().acquire_shard();
  return *tls.shard;
}

}  // namespace detail

void Gauge::set(double v) { detail::Registry::instance().set_gauge(id_, v); }

void Histogram::observe(double v) {
  auto& h = detail::local_shard().hists[id_];
  const std::uint64_t c = h.count.load(std::memory_order_relaxed);
  detail::shard_add(h.buckets[detail::bucket_of(v)], 1);
  h.sum_bits.store(
      std::bit_cast<std::uint64_t>(
          std::bit_cast<double>(h.sum_bits.load(std::memory_order_relaxed)) +
          v),
      std::memory_order_relaxed);
  if (c == 0 ||
      v < std::bit_cast<double>(h.min_bits.load(std::memory_order_relaxed))) {
    h.min_bits.store(std::bit_cast<std::uint64_t>(v),
                     std::memory_order_relaxed);
  }
  if (c == 0 ||
      v > std::bit_cast<double>(h.max_bits.load(std::memory_order_relaxed))) {
    h.max_bits.store(std::bit_cast<std::uint64_t>(v),
                     std::memory_order_relaxed);
  }
  h.count.store(c + 1, std::memory_order_relaxed);
}

Counter& counter(const char* name) {
  return detail::Registry::instance().get_counter(name);
}
Gauge& gauge(const char* name) {
  return detail::Registry::instance().get_gauge(name);
}
Histogram& histogram(const char* name) {
  return detail::Registry::instance().get_histogram(name);
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += strprintf("%s\"%s\":%llu", i > 0 ? "," : "",
                     counters[i].name.c_str(),
                     static_cast<unsigned long long>(counters[i].value));
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += strprintf("%s\"%s\":%.9g", i > 0 ? "," : "",
                     gauges[i].name.c_str(), gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out += strprintf(
        "%s\"%s\":{\"count\":%llu,\"sum\":%.9g,\"min\":%.9g,\"max\":%.9g,"
        "\"p50\":%.9g,\"p95\":%.9g}",
        i > 0 ? "," : "", h.name.c_str(),
        static_cast<unsigned long long>(h.count), h.sum, h.min, h.max, h.p50,
        h.p95);
  }
  out += "}}";
  return out;
}

namespace {

/// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are
/// dotted lowercase identifiers, so mangling is dots→underscores plus a
/// defensive sweep for anything else.
std::string prom_name(const std::string& name) {
  std::string out = "amdrel_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& c : counters) {
    const std::string n = prom_name(c.name);
    out += strprintf("# TYPE %s counter\n%s %llu\n", n.c_str(), n.c_str(),
                     static_cast<unsigned long long>(c.value));
  }
  for (const auto& g : gauges) {
    const std::string n = prom_name(g.name);
    out += strprintf("# TYPE %s gauge\n%s %.9g\n", n.c_str(), n.c_str(),
                     g.value);
  }
  for (const auto& h : histograms) {
    const std::string n = prom_name(h.name);
    out += strprintf("# TYPE %s summary\n", n.c_str());
    out += strprintf("%s{quantile=\"0.5\"} %.9g\n", n.c_str(), h.p50);
    out += strprintf("%s{quantile=\"0.95\"} %.9g\n", n.c_str(), h.p95);
    out += strprintf("%s_sum %.9g\n", n.c_str(), h.sum);
    out += strprintf("%s_count %llu\n", n.c_str(),
                     static_cast<unsigned long long>(h.count));
  }
  return out;
}

MetricsSnapshot snapshot_metrics() {
  return detail::Registry::instance().snapshot();
}

void reset_metrics() { detail::Registry::instance().reset(); }

void write_metrics_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot open metrics file: " + path);
  const std::string json = snapshot_metrics().to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace amdrel::obs

#pragma once
// Always-on metrics registry: counters, gauges and histograms that every
// tool of the flow bumps unconditionally (no sink required, unlike the
// trace spans in obs.hpp). The registry is the QoR ledger of a run — cut
// enumerations from the LUT mapper, absorption/rejection counts from the
// packer, PathFinder iterations and rip-ups, SPICE NR statistics — and a
// snapshot of it rides along with every bench/CLI invocation (--metrics)
// and inside each FlowSession stage's StageMetrics.
//
// Concurrency design (DESIGN.md §8): writes go to per-thread shards with
// relaxed atomics, so the min-W probe waves and the bench ThreadPool
// sweeps can increment the same counter from many workers with no
// contention and no locks. Each shard slot has a single writer (its
// owning thread); the atomics exist so a snapshot from another thread
// reads torn-free values. snapshot_metrics() merges all shards that ever
// existed — a thread that exits parks its shard on a free list for reuse
// (counts are monotonic, so reuse without reset is correct) and the
// values it accumulated stay visible.
//
// Cost: an increment is one thread-local lookup plus a relaxed
// load+store. Call sites in hot kernels still batch into plain locals and
// add once per phase; the measured overhead of the always-on registry
// with no snapshot taken is within noise on cad_pnr_bench and flow_qor.
//
// Registration (obs::counter/gauge/histogram) takes a mutex and must be
// cached at the call site:
//
//   static obs::Counter& c = obs::counter("map.cut_enumerations");
//   c.add(n);
//
// Metric names must be string literals (the registry stores the pointer).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace amdrel::obs {

namespace detail {

inline constexpr int kMaxCounters = 256;
inline constexpr int kMaxHistograms = 64;
inline constexpr int kMaxGauges = 64;
/// Power-of-two histogram buckets: bucket b counts values in
/// [2^(b-32), 2^(b-31)), covering ~2.3e-10 .. 4.3e9 with b 0..63.
inline constexpr int kHistBuckets = 64;

/// Per-thread slab of metric slots. Single writer (the owning thread);
/// relaxed atomics make cross-thread snapshot reads defined. Fixed-size
/// so a snapshot never races a reallocation.
struct Shard {
  std::atomic<std::uint64_t> counters[kMaxCounters];
  struct Hist {
    std::atomic<std::uint64_t> buckets[kHistBuckets];
    std::atomic<std::uint64_t> count;
    std::atomic<std::uint64_t> sum_bits;  ///< double bit pattern
    std::atomic<std::uint64_t> min_bits;  ///< valid when count > 0
    std::atomic<std::uint64_t> max_bits;
  };
  Hist hists[kMaxHistograms];
};

Shard& local_shard();

/// Factory granting the registry (an implementation detail of
/// metrics.cpp) access to the private metric constructors.
struct MetricMaker {
  template <typename T>
  static T* make(int id) {
    return new T(id);
  }
};

/// Single-writer accumulate: safe because only the owning thread writes
/// this slot; the atomic makes the concurrent snapshot read torn-free.
inline void shard_add(std::atomic<std::uint64_t>& slot, std::uint64_t n) {
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

}  // namespace detail

/// Monotonic event count, sharded per thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    detail::shard_add(detail::local_shard().counters[id_], n);
  }
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend struct detail::MetricMaker;
  explicit Counter(int id) : id_(id) {}
  int id_;
};

/// Last-write-wins instantaneous value (not sharded: a gauge has no
/// meaningful per-thread merge, so it is one relaxed global slot).
class Gauge {
 public:
  void set(double v);
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend struct detail::MetricMaker;
  explicit Gauge(int id) : id_(id) {}
  int id_;
};

/// Distribution of observed values, sharded per thread; the snapshot
/// reports count/sum/min/max exactly and p50/p95 from power-of-two
/// buckets (interpolated, so quantiles are approximate within a bucket).
class Histogram {
 public:
  void observe(double v);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend struct detail::MetricMaker;
  explicit Histogram(int id) : id_(id) {}
  int id_;
};

/// Looks up (or registers on first use) a metric. `name` must be a string
/// literal or otherwise outlive the process. Takes a lock — cache the
/// returned reference in a function-local static at the call site.
Counter& counter(const char* name);
Gauge& gauge(const char* name);
Histogram& histogram(const char* name);

/// Point-in-time merged view of every registered metric, name-sorted.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;  ///< bucket-interpolated
    double p95 = 0.0;  ///< bucket-interpolated
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Counter value by name (0 when absent) — the delta-friendly accessor
  /// FlowSession uses to fold per-stage counter deltas into StageMetrics.
  std::uint64_t counter(const std::string& name) const;

  /// One JSON object (schema in DESIGN.md §8):
  ///   {"counters":{"map.cut_enumerations":123,...},
  ///    "gauges":{"route.channel_width":12,...},
  ///    "histograms":{"spice.step_s":{"count":9,"sum":...,"min":...,
  ///                                  "max":...,"p50":...,"p95":...}}}
  std::string to_json() const;

  /// Prometheus text exposition (version 0.0.4): counters and gauges as
  /// their native types, histograms as summaries (p50/p95 quantile
  /// samples plus _sum/_count). Names are mangled to the Prometheus
  /// charset — dots become underscores — and prefixed with "amdrel_",
  /// e.g. `route.pathfinder_iters` → `amdrel_route_pathfinder_iters`.
  /// Served by the daemon's `metrics` command with
  /// {"format":"prometheus"} (DESIGN.md §13.3).
  std::string to_prometheus() const;
};

/// Merges all shards. Counters registered but never bumped report 0.
MetricsSnapshot snapshot_metrics();

/// Zeroes every shard slot and gauge. Only meaningful while no other
/// thread is incrementing (tests and bench warm-up); concurrent writers
/// may resurrect pre-reset values.
void reset_metrics();

/// Writes snapshot_metrics().to_json() plus a trailing newline to `path`.
/// Throws amdrel::Error when the file cannot be written.
void write_metrics_file(const std::string& path);

}  // namespace amdrel::obs

#pragma once
// Observability: RAII trace spans and point events with a pluggable sink.
//
// Every tool of the flow emits structured events through this module —
// per-stage spans from the flow driver, NR/bypass/refactorization counts
// from the SPICE engine, anneal temperature stats from the placer, and
// PathFinder iteration / min-W probe verdicts from the router. The design
// constraints (DESIGN.md §8):
//
//  * Near-zero overhead when no sink is attached: an emission site costs
//    one thread-local read plus one relaxed atomic load, and a disabled
//    Span never reads the clock.
//  * Sinks can be fed from worker threads (the min-W probe waves run
//    PathFinder on a thread pool), so the provided sinks serialize
//    internally. Event names and metric keys are static strings.
//  * The sink is not owned by the registry and must outlive every span
//    begun while it was attached (ScopedSink enforces this for the
//    CLI/bench pattern of one sink per process run).
//
// Job-scoped tracing (DESIGN.md §8.1): a TraceContext installed on a
// thread via ScopedContext overrides the process-global sink for every
// span/point begun on that thread, stamps each event with the context's
// trace id, and restarts the trace clock at the context's epoch. The
// compile daemon uses one context per job so that 64-way concurrent jobs
// each spool their own attributable JSONL trace; standalone CLI runs
// never install a context and keep the global-sink behavior unchanged.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace amdrel::obs {

struct Metric {
  const char* key;
  double value;
};

/// One trace record as delivered to the sink. `t_s` is seconds since the
/// sink was attached (or since the trace context's epoch); `dur_s` is
/// meaningful only for kSpanEnd. `id` is a process-unique span id (0 for
/// points), `parent` the id of the innermost span open on the emitting
/// thread when the event began (0 = root), and `trace` the owning
/// TraceContext's trace id (null when emitted under the global sink).
/// The metrics pointer is valid only for the duration of the on_event
/// call; `trace` is valid for the lifetime of the owning context.
struct Event {
  enum class Kind { kSpanBegin, kSpanEnd, kPoint };
  Kind kind = Kind::kPoint;
  const char* name = "";
  double t_s = 0.0;
  double dur_s = 0.0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  const char* trace = nullptr;
  const Metric* metrics = nullptr;
  std::size_t n_metrics = 0;
};

/// Receives every event emitted while attached. Implementations must be
/// safe to call from multiple threads concurrently.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& event) = 0;
};

/// A job-scoped trace destination: a sink plus the trace id stamped on
/// every event and the instant that is t=0 for the context's clock. Not
/// owned by the registry; must outlive every span begun under it. A
/// context with a null sink *suppresses* tracing on its thread even when
/// a global sink is attached (a job that opted out of tracing must not
/// leak its spans into another job's — or the process's — trace).
struct TraceContext {
  Sink* sink = nullptr;  ///< receives this context's events
  std::string trace_id;  ///< stamped as the "trace" field on every event
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();  ///< t=0 for this context

  TraceContext() = default;
  TraceContext(Sink* sink_in, std::string trace_id_in)
      : sink(sink_in), trace_id(std::move(trace_id_in)) {}
};

namespace detail {
extern std::atomic<Sink*> g_sink;
/// The context installed on this thread (null = fall back to g_sink).
extern thread_local const TraceContext* t_context;
/// Id of the innermost span currently open on this thread (0 = none);
/// the parent-linkage source for new spans and points.
extern thread_local std::uint64_t t_open_span;
/// Allocates a process-unique nonzero span id.
std::uint64_t next_span_id();
/// Seconds since the current sink was attached.
double trace_now_s();
double since_attach_s(std::chrono::steady_clock::time_point tp);
/// Seconds since `ctx`'s epoch (or since the global attach when null).
double since_s(const TraceContext* ctx,
               std::chrono::steady_clock::time_point tp);
/// The sink emission on this thread goes to: the installed context's
/// sink when a context is present, else the process-global sink.
inline Sink* current_sink() {
  const TraceContext* ctx = t_context;
  if (ctx != nullptr) return ctx->sink;
  return g_sink.load(std::memory_order_relaxed);
}
/// Atomically detaches `expected` if it is the installed sink (a
/// compare-exchange, so a concurrently installed replacement is never
/// clobbered). Returns true when this call performed the detach.
bool detach_sink(Sink* expected);
}  // namespace detail

/// Attaches `sink` (not owned; nullptr detaches). The trace clock restarts
/// at zero on every attach.
void set_sink(Sink* sink);
Sink* sink();

/// The trace context installed on the calling thread (null if none).
inline const TraceContext* context() { return detail::t_context; }

/// True when the calling thread's events would reach a sink. Use to gate
/// emission work that is more than a couple of counter increments (e.g.
/// per-iteration points).
inline bool enabled() { return detail::current_sink() != nullptr; }

/// Emits a point event. The metric list is evaluated by the caller, so
/// guard computed metrics with `if (obs::enabled())` at hot sites.
void point(const char* name, std::initializer_list<Metric> metrics);

/// Installs a TraceContext on the calling thread for the guard's
/// lifetime; restores the previous context (and the previous open-span
/// linkage, so nested contexts cannot corrupt the outer parent chain) on
/// destruction. A null context is a no-op guard, so callers can pass
/// through an optional context unconditionally — and so is re-installing
/// the context already current: the parent chain keeps running, so a
/// daemon wrapping a job in its own root span still sees the stages the
/// inner FlowSession guard emits as children of that root. Not movable:
/// the guard must be destroyed on the thread that created it.
class ScopedContext {
 public:
  ScopedContext() = default;
  explicit ScopedContext(const TraceContext* ctx) {
    if (ctx == nullptr || ctx == detail::t_context) return;
    prev_ = detail::t_context;
    prev_open_ = detail::t_open_span;
    detail::t_context = ctx;
    detail::t_open_span = 0;
    active_ = true;
  }
  ~ScopedContext() {
    if (active_) {
      detail::t_context = prev_;
      detail::t_open_span = prev_open_;
    }
  }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  const TraceContext* prev_ = nullptr;
  std::uint64_t prev_open_ = 0;
  bool active_ = false;
};

/// RAII span: emits kSpanBegin at construction and kSpanEnd (with the
/// accumulated metrics and wall duration) at destruction. When no sink is
/// reachable at construction (neither a thread context nor the global
/// sink) the span is fully inert. An active span carries a process-unique
/// id and records the enclosing open span on its thread as `parent`.
///
/// Movable (so helpers can construct and return a span) but not
/// copyable: the move transfers ownership of the pending end event and
/// deactivates the source, so exactly one kSpanEnd is emitted per begun
/// span. Move-assigning over an active span ends it first. Parent
/// linkage is thread-local: a span should be finished on the thread that
/// began it — finishing elsewhere still emits a correct end event but
/// skips the open-span restore, so subsequent spans on the *beginning*
/// thread may link to an already-closed parent (the analyzer tolerates
/// this; pool-offloaded work should begin its own spans instead).
class Span {
 public:
  explicit Span(const char* name)
      : Span(name, std::chrono::steady_clock::now()) {}

  /// Starts the span at a caller-supplied instant. For callers that time
  /// the region themselves (the flow driver measures each stage's wall
  /// clock independently of tracing), passing the same timestamps to the
  /// span via this constructor and freeze_duration() makes the reported
  /// span duration exactly equal the caller's measurement — otherwise
  /// the begin-event sink I/O sits inside the span's duration.
  Span(const char* name, std::chrono::steady_clock::time_point start)
      : ctx_(detail::t_context),
        sink_(ctx_ != nullptr
                  ? ctx_->sink
                  : detail::g_sink.load(std::memory_order_relaxed)),
        name_(name) {
    if (sink_ == nullptr) return;
    start_ = start;
    id_ = detail::next_span_id();
    parent_ = detail::t_open_span;
    detail::t_open_span = id_;
    Event e;
    e.kind = Event::Kind::kSpanBegin;
    e.name = name_;
    e.t_s = detail::since_s(ctx_, start_);
    e.id = id_;
    e.parent = parent_;
    if (ctx_ != nullptr) e.trace = ctx_->trace_id.c_str();
    sink_->on_event(e);
  }
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept
      : ctx_(other.ctx_),
        sink_(other.sink_),
        name_(other.name_),
        start_(other.start_),
        end_(other.end_),
        id_(other.id_),
        parent_(other.parent_),
        metrics_(std::move(other.metrics_)) {
    other.sink_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      const std::uint64_t old_id = id_;
      const std::uint64_t old_parent = parent_;
      finish();
      ctx_ = other.ctx_;
      sink_ = other.sink_;
      name_ = other.name_;
      start_ = other.start_;
      end_ = other.end_;
      id_ = other.id_;
      parent_ = other.parent_;
      metrics_ = std::move(other.metrics_);
      other.sink_ = nullptr;
      // The overwritten span just closed out of LIFO order: if the
      // adopted span was its direct child, retarget the restore at the
      // closed span's own parent so the thread's open-span chain never
      // resurrects a finished id.
      if (parent_ == old_id) parent_ = old_parent;
    }
    return *this;
  }

  /// Attaches a metric to the span-end event. No-op when disabled.
  void metric(const char* key, double value) {
    if (sink_ != nullptr) metrics_.push_back(Metric{key, value});
  }

  /// Freezes the span's end instant at `end` (default: now). Metrics may
  /// still be attached afterwards; the end event emitted at destruction
  /// reports the frozen duration. Lets a caller that measures the region
  /// itself exclude post-region work (metric folding, registry snapshots)
  /// from the reported duration. No-op when disabled or already frozen.
  void freeze_duration(std::chrono::steady_clock::time_point end =
                           std::chrono::steady_clock::now()) {
    if (sink_ != nullptr && end_ == std::chrono::steady_clock::time_point{})
      end_ = end;
  }
  bool active() const { return sink_ != nullptr; }
  /// The span's process-unique id (0 when inert).
  std::uint64_t id() const { return sink_ != nullptr ? id_ : 0; }

 private:
  /// Emits the pending kSpanEnd (if active) and deactivates the span.
  void finish();

  const TraceContext* ctx_ = nullptr;
  Sink* sink_;
  const char* name_;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point end_{};
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::vector<Metric> metrics_;
};

/// JSON-lines sink: one object per event, flat schema (DESIGN.md §8):
///   {"type":"begin","name":"flow.place","t":0.012,"id":3,"parent":1}
///   {"type":"span","name":"flow.place","t":0.012,"dur":0.51,"id":3,
///    "parent":1,"metrics":{"wall_s":0.51,"peak_rss_kb":14336}}
///   {"type":"point","name":"route.minw_probe","t":0.71,"parent":3,
///    "metrics":{"width":12,"success":1}}
/// `id`/`parent` are omitted when zero and `trace` when unset, so traces
/// written by older builds (or by the global sink outside any context)
/// stay parseable by the same analyzer.
class JsonlSink : public Sink {
 public:
  /// Opens `path` for writing (truncates). Throws amdrel::Error on failure.
  ///
  /// `flush_each` trades throughput for durability: when set, every line
  /// is fflush()ed as it is written, so the trace of a crashed or killed
  /// run is complete up to the last event (at the cost of one syscall per
  /// event — noticeable on point-heavy traces like per-temperature anneal
  /// stats). Default off: events sit in the stdio buffer and a SIGKILL
  /// can lose the tail, but a normal exit (including after an exception)
  /// flushes everything in the destructor.
  explicit JsonlSink(const std::string& path, bool flush_each = false);
  ~JsonlSink() override;
  void on_event(const Event& event) override;

 private:
  std::mutex mu_;
  std::FILE* file_;
  bool flush_each_;
};

/// Human-readable progress sink: one line per span begin/end and point,
/// indented by span depth, written to `out` (default stderr).
class TextSink : public Sink {
 public:
  explicit TextSink(std::FILE* out = stderr);
  void on_event(const Event& event) override;

 private:
  std::mutex mu_;
  std::FILE* out_;
  int depth_ = 0;
};

/// Owns a sink and keeps it attached for the guard's lifetime — the
/// one-sink-per-run pattern of the CLI and bench drivers. A default-
/// constructed guard is a no-op, so `auto g = install_trace(args);` works
/// whether or not tracing was requested.
class ScopedSink {
 public:
  ScopedSink() = default;
  explicit ScopedSink(std::unique_ptr<Sink> sink) : sink_(std::move(sink)) {
    set_sink(sink_.get());
  }
  ScopedSink(ScopedSink&& other) noexcept : sink_(std::move(other.sink_)) {}
  ScopedSink& operator=(ScopedSink&& other) noexcept {
    if (this != &other) {
      release();
      sink_ = std::move(other.sink_);
    }
    return *this;
  }
  ~ScopedSink() { release(); }

 private:
  void release() {
    // Detach-if-ours must be one atomic step (compare-exchange, not a
    // sink()==ours check followed by set_sink(nullptr)): if the global
    // sink was replaced in between — e.g. by the right-hand side of a
    // move-assignment installing its own sink first — a check-then-set
    // would stomp the replacement with nullptr. Either way the old sink
    // is guaranteed detached before it is destroyed.
    if (sink_ != nullptr) detail::detach_sink(sink_.get());
    sink_.reset();
  }
  std::unique_ptr<Sink> sink_;
};

/// Peak resident set size of this process in kilobytes (0 if unknown).
/// Monotone over the process lifetime, so per-stage samples read as
/// "peak RSS so far".
long peak_rss_kb();

}  // namespace amdrel::obs

#pragma once
// Observability: RAII trace spans and point events with a pluggable sink.
//
// Every tool of the flow emits structured events through this module —
// per-stage spans from the flow driver, NR/bypass/refactorization counts
// from the SPICE engine, anneal temperature stats from the placer, and
// PathFinder iteration / min-W probe verdicts from the router. The design
// constraints (DESIGN.md §8):
//
//  * Near-zero overhead when no sink is attached: an emission site costs
//    one relaxed atomic load, and a disabled Span never reads the clock.
//  * Sinks can be fed from worker threads (the min-W probe waves run
//    PathFinder on a thread pool), so the provided sinks serialize
//    internally. Event names and metric keys are static strings.
//  * The sink is not owned by the registry and must outlive every span
//    begun while it was attached (ScopedSink enforces this for the
//    CLI/bench pattern of one sink per process run).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace amdrel::obs {

struct Metric {
  const char* key;
  double value;
};

/// One trace record as delivered to the sink. `t_s` is seconds since the
/// sink was attached; `dur_s` is meaningful only for kSpanEnd. The metrics
/// pointer is valid only for the duration of the on_event call.
struct Event {
  enum class Kind { kSpanBegin, kSpanEnd, kPoint };
  Kind kind = Kind::kPoint;
  const char* name = "";
  double t_s = 0.0;
  double dur_s = 0.0;
  const Metric* metrics = nullptr;
  std::size_t n_metrics = 0;
};

/// Receives every event emitted while attached. Implementations must be
/// safe to call from multiple threads concurrently.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& event) = 0;
};

namespace detail {
extern std::atomic<Sink*> g_sink;
/// Seconds since the current sink was attached.
double trace_now_s();
double since_attach_s(std::chrono::steady_clock::time_point tp);
/// Atomically detaches `expected` if it is the installed sink (a
/// compare-exchange, so a concurrently installed replacement is never
/// clobbered). Returns true when this call performed the detach.
bool detach_sink(Sink* expected);
}  // namespace detail

/// Attaches `sink` (not owned; nullptr detaches). The trace clock restarts
/// at zero on every attach.
void set_sink(Sink* sink);
Sink* sink();

/// True when a sink is attached. Use to gate emission work that is more
/// than a couple of counter increments (e.g. per-iteration points).
inline bool enabled() {
  return detail::g_sink.load(std::memory_order_relaxed) != nullptr;
}

/// Emits a point event. The metric list is evaluated by the caller, so
/// guard computed metrics with `if (obs::enabled())` at hot sites.
void point(const char* name, std::initializer_list<Metric> metrics);

/// RAII span: emits kSpanBegin at construction and kSpanEnd (with the
/// accumulated metrics and wall duration) at destruction. When no sink is
/// attached at construction the span is fully inert.
///
/// Movable (so helpers can construct and return a span) but not
/// copyable: the move transfers ownership of the pending end event and
/// deactivates the source, so exactly one kSpanEnd is emitted per begun
/// span. Move-assigning over an active span ends it first.
class Span {
 public:
  explicit Span(const char* name)
      : Span(name, std::chrono::steady_clock::now()) {}

  /// Starts the span at a caller-supplied instant. For callers that time
  /// the region themselves (the flow driver measures each stage's wall
  /// clock independently of tracing), passing the same timestamps to the
  /// span via this constructor and freeze_duration() makes the reported
  /// span duration exactly equal the caller's measurement — otherwise
  /// the begin-event sink I/O sits inside the span's duration.
  Span(const char* name, std::chrono::steady_clock::time_point start)
      : sink_(detail::g_sink.load(std::memory_order_relaxed)), name_(name) {
    if (sink_ == nullptr) return;
    start_ = start;
    Event e;
    e.kind = Event::Kind::kSpanBegin;
    e.name = name_;
    e.t_s = detail::since_attach_s(start_);
    sink_->on_event(e);
  }
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept
      : sink_(other.sink_),
        name_(other.name_),
        start_(other.start_),
        end_(other.end_),
        metrics_(std::move(other.metrics_)) {
    other.sink_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      sink_ = other.sink_;
      name_ = other.name_;
      start_ = other.start_;
      end_ = other.end_;
      metrics_ = std::move(other.metrics_);
      other.sink_ = nullptr;
    }
    return *this;
  }

  /// Attaches a metric to the span-end event. No-op when disabled.
  void metric(const char* key, double value) {
    if (sink_ != nullptr) metrics_.push_back(Metric{key, value});
  }

  /// Freezes the span's end instant at `end` (default: now). Metrics may
  /// still be attached afterwards; the end event emitted at destruction
  /// reports the frozen duration. Lets a caller that measures the region
  /// itself exclude post-region work (metric folding, registry snapshots)
  /// from the reported duration. No-op when disabled or already frozen.
  void freeze_duration(std::chrono::steady_clock::time_point end =
                           std::chrono::steady_clock::now()) {
    if (sink_ != nullptr && end_ == std::chrono::steady_clock::time_point{})
      end_ = end;
  }
  bool active() const { return sink_ != nullptr; }

 private:
  /// Emits the pending kSpanEnd (if active) and deactivates the span.
  void finish();

  Sink* sink_;
  const char* name_;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point end_{};
  std::vector<Metric> metrics_;
};

/// JSON-lines sink: one object per event, flat schema (DESIGN.md §8):
///   {"type":"begin","name":"flow.place","t":0.012}
///   {"type":"span","name":"flow.place","t":0.012,"dur":0.51,
///    "metrics":{"wall_s":0.51,"peak_rss_kb":14336}}
///   {"type":"point","name":"route.minw_probe","t":0.71,
///    "metrics":{"width":12,"success":1}}
class JsonlSink : public Sink {
 public:
  /// Opens `path` for writing (truncates). Throws amdrel::Error on failure.
  ///
  /// `flush_each` trades throughput for durability: when set, every line
  /// is fflush()ed as it is written, so the trace of a crashed or killed
  /// run is complete up to the last event (at the cost of one syscall per
  /// event — noticeable on point-heavy traces like per-temperature anneal
  /// stats). Default off: events sit in the stdio buffer and a SIGKILL
  /// can lose the tail, but a normal exit (including after an exception)
  /// flushes everything in the destructor.
  explicit JsonlSink(const std::string& path, bool flush_each = false);
  ~JsonlSink() override;
  void on_event(const Event& event) override;

 private:
  std::mutex mu_;
  std::FILE* file_;
  bool flush_each_;
};

/// Human-readable progress sink: one line per span begin/end and point,
/// indented by span depth, written to `out` (default stderr).
class TextSink : public Sink {
 public:
  explicit TextSink(std::FILE* out = stderr);
  void on_event(const Event& event) override;

 private:
  std::mutex mu_;
  std::FILE* out_;
  int depth_ = 0;
};

/// Owns a sink and keeps it attached for the guard's lifetime — the
/// one-sink-per-run pattern of the CLI and bench drivers. A default-
/// constructed guard is a no-op, so `auto g = install_trace(args);` works
/// whether or not tracing was requested.
class ScopedSink {
 public:
  ScopedSink() = default;
  explicit ScopedSink(std::unique_ptr<Sink> sink) : sink_(std::move(sink)) {
    set_sink(sink_.get());
  }
  ScopedSink(ScopedSink&& other) noexcept : sink_(std::move(other.sink_)) {}
  ScopedSink& operator=(ScopedSink&& other) noexcept {
    if (this != &other) {
      release();
      sink_ = std::move(other.sink_);
    }
    return *this;
  }
  ~ScopedSink() { release(); }

 private:
  void release() {
    // Detach-if-ours must be one atomic step (compare-exchange, not a
    // sink()==ours check followed by set_sink(nullptr)): if the global
    // sink was replaced in between — e.g. by the right-hand side of a
    // move-assignment installing its own sink first — a check-then-set
    // would stomp the replacement with nullptr. Either way the old sink
    // is guaranteed detached before it is destroyed.
    if (sink_ != nullptr) detail::detach_sink(sink_.get());
    sink_.reset();
  }
  std::unique_ptr<Sink> sink_;
};

/// Peak resident set size of this process in kilobytes (0 if unknown).
/// Monotone over the process lifetime, so per-stage samples read as
/// "peak RSS so far".
long peak_rss_kb();

}  // namespace amdrel::obs

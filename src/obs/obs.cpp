#include "obs/obs.hpp"

#include <sys/resource.h>

#include "util/error.hpp"

namespace amdrel::obs {

namespace detail {

std::atomic<Sink*> g_sink{nullptr};
thread_local const TraceContext* t_context = nullptr;
thread_local std::uint64_t t_open_span = 0;

namespace {
std::chrono::steady_clock::time_point g_epoch = std::chrono::steady_clock::now();
std::atomic<std::uint64_t> g_next_span_id{1};
}  // namespace

std::uint64_t next_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

double since_attach_s(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration<double>(tp - g_epoch).count();
}

double since_s(const TraceContext* ctx,
               std::chrono::steady_clock::time_point tp) {
  if (ctx != nullptr)
    return std::chrono::duration<double>(tp - ctx->epoch).count();
  return since_attach_s(tp);
}

double trace_now_s() {
  return since_attach_s(std::chrono::steady_clock::now());
}

void reset_epoch() { g_epoch = std::chrono::steady_clock::now(); }

bool detach_sink(Sink* expected) {
  return g_sink.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
}

}  // namespace detail

void set_sink(Sink* sink) {
  if (sink != nullptr) detail::reset_epoch();
  detail::g_sink.store(sink, std::memory_order_release);
}

Sink* sink() { return detail::g_sink.load(std::memory_order_acquire); }

void point(const char* name, std::initializer_list<Metric> metrics) {
  const TraceContext* ctx = detail::t_context;
  Sink* s = ctx != nullptr ? ctx->sink
                           : detail::g_sink.load(std::memory_order_relaxed);
  if (s == nullptr) return;
  Event e;
  e.kind = Event::Kind::kPoint;
  e.name = name;
  e.t_s = detail::since_s(ctx, std::chrono::steady_clock::now());
  e.parent = detail::t_open_span;
  if (ctx != nullptr) e.trace = ctx->trace_id.c_str();
  e.metrics = metrics.begin();
  e.n_metrics = metrics.size();
  s->on_event(e);
}

void Span::finish() {
  if (sink_ == nullptr) return;
  // Pop this span from the thread's open-span chain — but only if it is
  // still the innermost one *on this thread*. A span finished on another
  // thread, or after its ScopedContext already restored the chain, must
  // not clobber that thread's unrelated linkage.
  if (detail::t_open_span == id_) detail::t_open_span = parent_;
  const auto end = end_ != std::chrono::steady_clock::time_point{}
                       ? end_
                       : std::chrono::steady_clock::now();
  Event e;
  e.kind = Event::Kind::kSpanEnd;
  e.name = name_;
  e.t_s = detail::since_s(ctx_, start_);
  e.dur_s = std::chrono::duration<double>(end - start_).count();
  e.id = id_;
  e.parent = parent_;
  if (ctx_ != nullptr) e.trace = ctx_->trace_id.c_str();
  e.metrics = metrics_.data();
  e.n_metrics = metrics_.size();
  sink_->on_event(e);
  sink_ = nullptr;
}

namespace {

const char* kind_label(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kSpanBegin: return "begin";
    case Event::Kind::kSpanEnd: return "span";
    case Event::Kind::kPoint: return "point";
  }
  return "?";
}

}  // namespace

JsonlSink::JsonlSink(const std::string& path, bool flush_each)
    : file_(std::fopen(path.c_str(), "w")), flush_each_(flush_each) {
  if (file_ == nullptr) throw Error("cannot open trace file: " + path);
}

JsonlSink::~JsonlSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlSink::on_event(const Event& e) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(file_, "{\"type\":\"%s\",\"name\":\"%s\",\"t\":%.9g",
               kind_label(e.kind), e.name, e.t_s);
  if (e.kind == Event::Kind::kSpanEnd) {
    std::fprintf(file_, ",\"dur\":%.9g", e.dur_s);
  }
  if (e.id != 0) {
    std::fprintf(file_, ",\"id\":%llu", (unsigned long long)e.id);
  }
  if (e.parent != 0) {
    std::fprintf(file_, ",\"parent\":%llu", (unsigned long long)e.parent);
  }
  if (e.trace != nullptr && e.trace[0] != '\0') {
    // Trace ids are caller-controlled short tokens ("job-17"); they must
    // not contain JSON-significant characters.
    std::fprintf(file_, ",\"trace\":\"%s\"", e.trace);
  }
  if (e.n_metrics > 0) {
    std::fprintf(file_, ",\"metrics\":{");
    for (std::size_t i = 0; i < e.n_metrics; ++i) {
      std::fprintf(file_, "%s\"%s\":%.9g", i > 0 ? "," : "",
                   e.metrics[i].key, e.metrics[i].value);
    }
    std::fprintf(file_, "}");
  }
  std::fprintf(file_, "}\n");
  if (flush_each_) std::fflush(file_);
}

TextSink::TextSink(std::FILE* out) : out_(out) {}

void TextSink::on_event(const Event& e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (e.kind == Event::Kind::kSpanEnd && depth_ > 0) --depth_;
  std::fprintf(out_, "[%8.3fs] %*s", e.t_s, 2 * depth_, "");
  switch (e.kind) {
    case Event::Kind::kSpanBegin:
      std::fprintf(out_, "> %s", e.name);
      ++depth_;
      break;
    case Event::Kind::kSpanEnd:
      std::fprintf(out_, "< %s (%.3fs)", e.name, e.dur_s);
      break;
    case Event::Kind::kPoint:
      std::fprintf(out_, ". %s", e.name);
      break;
  }
  for (std::size_t i = 0; i < e.n_metrics; ++i) {
    std::fprintf(out_, " %s=%.6g", e.metrics[i].key, e.metrics[i].value);
  }
  std::fprintf(out_, "\n");
  std::fflush(out_);
}

long peak_rss_kb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // Linux: kilobytes
}

}  // namespace amdrel::obs

#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::obs {

namespace {

/// Cursor over one JSONL line. The trace schema is flat — string and
/// number values plus one optional single-level "metrics" object — so
/// this stays a few screens instead of a JSON library.
class LineCursor {
 public:
  explicit LineCursor(const std::string& s) : s_(s) {}

  bool lit(char c) {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] != c) return false;
    ++i_;
    return true;
  }

  bool string(std::string* out) {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    out->clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) ++i_;  // keep escaped char
      out->push_back(s_[i_++]);
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }

  bool number(double* out) {
    skip_ws();
    const char* start = s_.c_str() + i_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    i_ += static_cast<std::size_t>(end - start);
    *out = v;
    return true;
  }

  bool at_end() {
    skip_ws();
    return i_ >= s_.size();
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  const std::string& s_;
  std::size_t i_ = 0;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Exact quantile over a sorted sample (nearest-rank).
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

struct AggBuild {
  bool is_span = false;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double self_s = 0.0;
  std::vector<double> durations;
  std::map<std::string, double> metric_sums;
};

void walk_span(const SpanNode& node, std::map<std::string, AggBuild>* aggs,
               FlowQorSummary* qor) {
  AggBuild& a = (*aggs)[node.name];
  a.is_span = true;
  ++a.count;
  a.total_s += node.dur_s;
  a.durations.push_back(node.dur_s);
  double child_s = 0.0;
  for (const SpanNode& c : node.children) child_s += c.dur_s;
  a.self_s += std::max(0.0, node.dur_s - child_s);
  auto metric = [&node](const char* key) -> const double* {
    for (const auto& [k, v] : node.metrics) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  for (const auto& [k, v] : node.metrics) a.metric_sums[k] += v;

  // Flow QoR: stage walls from the flow.<stage> spans, headline numbers
  // from the metrics FlowSession attaches to them (session.cpp).
  if (node.name.rfind("flow.", 0) == 0) {
    const std::string stage = node.name.substr(5);
    StageWall& w = qor->stages[stage];
    ++w.runs;
    w.wall_s += node.dur_s;
    qor->total_wall_s += node.dur_s;
    if (stage == "bitgen") ++qor->flows;
    if (const double* v = metric("channel_width")) {
      qor->channel_width_max = std::max(qor->channel_width_max, *v);
    }
    if (const double* v = metric("wire_nodes")) qor->wire_nodes += *v;
    if (const double* v = metric("luts")) qor->luts += *v;
    if (const double* v = metric("clbs")) qor->clbs += *v;
    if (const double* v = metric("config_bits")) qor->config_bits += *v;
    if (const double* v = metric("bitstream_bytes")) {
      qor->bitstream_bytes += *v;
    }
    if (const double* v = metric("critical_path_ns")) {
      qor->critical_path_ns_max = std::max(qor->critical_path_ns_max, *v);
    }
    if (const double* v = metric("power_mw")) qor->power_mw += *v;
  }

  for (const SpanNode& c : node.children) walk_span(c, aggs, qor);
}

}  // namespace

bool parse_trace_line(const std::string& line, TraceEvent* out) {
  LineCursor c(line);
  if (!c.lit('{')) return false;
  *out = TraceEvent{};
  bool have_type = false;
  bool first = true;
  while (true) {
    if (c.lit('}')) break;
    if (!first && !c.lit(',')) return false;
    first = false;
    std::string key;
    if (!c.string(&key) || !c.lit(':')) return false;
    if (key == "type") {
      std::string type;
      if (!c.string(&type)) return false;
      if (type == "begin") {
        out->kind = TraceEvent::Kind::kBegin;
      } else if (type == "span") {
        out->kind = TraceEvent::Kind::kEnd;
      } else if (type == "point") {
        out->kind = TraceEvent::Kind::kPoint;
      } else {
        return false;
      }
      have_type = true;
    } else if (key == "name") {
      if (!c.string(&out->name)) return false;
    } else if (key == "t") {
      if (!c.number(&out->t_s)) return false;
    } else if (key == "dur") {
      if (!c.number(&out->dur_s)) return false;
    } else if (key == "id") {
      double v = 0.0;
      if (!c.number(&v) || v < 0) return false;
      out->id = static_cast<std::uint64_t>(v);
    } else if (key == "parent") {
      double v = 0.0;
      if (!c.number(&v) || v < 0) return false;
      out->parent = static_cast<std::uint64_t>(v);
    } else if (key == "trace") {
      if (!c.string(&out->trace)) return false;
    } else if (key == "metrics") {
      if (!c.lit('{')) return false;
      if (!c.lit('}')) {
        while (true) {
          std::string mkey;
          double mval = 0.0;
          if (!c.string(&mkey) || !c.lit(':') || !c.number(&mval)) {
            return false;
          }
          out->metrics.emplace_back(std::move(mkey), mval);
          if (c.lit(',')) continue;
          if (c.lit('}')) break;
          return false;
        }
      }
    } else {
      return false;  // unknown key: not a trace line
    }
  }
  return have_type && !out->name.empty() && c.at_end();
}

TraceReport analyze_trace(std::istream& in) {
  TraceReport report;
  // Id-carrying spans pair begin↔end by id and parent by the recorded
  // parent id — exact even when 64 jobs interleave in one stream.
  std::map<std::uint64_t, SpanNode> open_by_id;
  std::map<std::uint64_t, std::uint64_t> parent_by_id;
  // Id-less (legacy) spans fall back to the nearest-open-name stack.
  std::vector<SpanNode> stack;
  std::set<std::string> trace_ids;
  std::map<std::string, AggBuild> aggs;

  std::string line;
  TraceEvent e;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!parse_trace_line(line, &e)) {
      ++report.skipped_lines;
      continue;
    }
    ++report.events;
    report.trace_dur_s = std::max(report.trace_dur_s, e.t_s + e.dur_s);
    if (!e.trace.empty()) trace_ids.insert(e.trace);
    switch (e.kind) {
      case TraceEvent::Kind::kBegin: {
        SpanNode node;
        node.name = std::move(e.name);
        node.t_s = e.t_s;
        node.id = e.id;
        node.trace = std::move(e.trace);
        if (e.id != 0) {
          parent_by_id[e.id] = e.parent;
          open_by_id[e.id] = std::move(node);
        } else {
          stack.push_back(std::move(node));
        }
        break;
      }
      case TraceEvent::Kind::kEnd: {
        if (e.id != 0) {
          auto it = open_by_id.find(e.id);
          if (it == open_by_id.end()) {
            ++report.unmatched_ends;
            break;
          }
          SpanNode node = std::move(it->second);
          const std::uint64_t parent = parent_by_id[e.id];
          open_by_id.erase(it);
          parent_by_id.erase(e.id);
          node.dur_s = e.dur_s;
          node.metrics = std::move(e.metrics);
          // Attach under the parent if it is still open; a parent that
          // already closed (cross-thread finish) makes this a root.
          auto pit = parent != 0 ? open_by_id.find(parent)
                                 : open_by_id.end();
          if (pit != open_by_id.end()) {
            pit->second.children.push_back(std::move(node));
          } else {
            report.roots.push_back(std::move(node));
          }
          break;
        }
        // Close the nearest open span with this name (concurrent spans
        // interleave; see the header caveat).
        std::size_t i = stack.size();
        while (i > 0 && stack[i - 1].name != e.name) --i;
        if (i == 0) {
          ++report.unmatched_ends;
          break;
        }
        SpanNode node = std::move(stack[i - 1]);
        stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i - 1));
        node.dur_s = e.dur_s;
        node.metrics = std::move(e.metrics);
        if (i - 1 > 0) {
          stack[i - 2].children.push_back(std::move(node));
        } else {
          report.roots.push_back(std::move(node));
        }
        break;
      }
      case TraceEvent::Kind::kPoint: {
        AggBuild& a = aggs[e.name];
        a.is_span = false;
        ++a.count;
        for (const auto& [k, v] : e.metrics) a.metric_sums[k] += v;
        break;
      }
    }
  }
  // Crash tail: spans begun but never ended. Promote their finished
  // children so completed work still reports, and drop the open shells.
  // Ids are allocated at begin, so a child's id always exceeds its
  // parent's — walking descending ids handles children before parents.
  while (!open_by_id.empty()) {
    auto it = std::prev(open_by_id.end());
    SpanNode open = std::move(it->second);
    const std::uint64_t parent = parent_by_id[it->first];
    parent_by_id.erase(it->first);
    open_by_id.erase(it);
    auto pit =
        parent != 0 ? open_by_id.find(parent) : open_by_id.end();
    auto& dest =
        pit != open_by_id.end() ? pit->second.children : report.roots;
    for (SpanNode& c : open.children) dest.push_back(std::move(c));
  }
  while (!stack.empty()) {
    SpanNode open = std::move(stack.back());
    stack.pop_back();
    auto& dest = stack.empty() ? report.roots : stack.back().children;
    for (SpanNode& c : open.children) dest.push_back(std::move(c));
  }
  report.traces = trace_ids.size();

  for (const SpanNode& root : report.roots) {
    walk_span(root, &aggs, &report.qor);
  }

  for (auto& [name, a] : aggs) {
    NameAggregate agg;
    agg.name = name;
    agg.is_span = a.is_span;
    agg.count = a.count;
    agg.total_s = a.total_s;
    agg.self_s = a.self_s;
    std::sort(a.durations.begin(), a.durations.end());
    agg.p50_s = quantile(a.durations, 0.50);
    agg.p95_s = quantile(a.durations, 0.95);
    agg.metric_sums = std::move(a.metric_sums);
    report.aggregates.push_back(std::move(agg));
  }
  std::sort(report.aggregates.begin(), report.aggregates.end(),
            [](const NameAggregate& x, const NameAggregate& y) {
              if (x.total_s != y.total_s) return x.total_s > y.total_s;
              return x.name < y.name;
            });
  return report;
}

TraceReport analyze_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open trace file: " + path);
  return analyze_trace(in);
}

std::string TraceReport::to_text() const {
  std::string out = strprintf(
      "trace report: %llu events, %.3f s traced "
      "(%llu unparseable lines, %llu unmatched span ends)\n",
      static_cast<unsigned long long>(events), trace_dur_s,
      static_cast<unsigned long long>(skipped_lines),
      static_cast<unsigned long long>(unmatched_ends));
  if (traces > 0) {
    out += strprintf("  %llu distinct trace id%s%s\n",
                     static_cast<unsigned long long>(traces),
                     traces == 1 ? "" : "s",
                     traces > 1 ? " (multi-job trace)" : "");
  }
  out += "\n";
  out += strprintf("  %-28s %-5s %8s %10s %10s %10s %10s\n", "name", "kind",
                   "count", "total_s", "self_s", "p50_s", "p95_s");
  for (const auto& a : aggregates) {
    if (a.is_span) {
      out += strprintf("  %-28s %-5s %8llu %10.4f %10.4f %10.4f %10.4f\n",
                       a.name.c_str(), "span",
                       static_cast<unsigned long long>(a.count), a.total_s,
                       a.self_s, a.p50_s, a.p95_s);
    } else {
      out += strprintf("  %-28s %-5s %8llu %10s %10s %10s %10s\n",
                       a.name.c_str(), "point",
                       static_cast<unsigned long long>(a.count), "-", "-",
                       "-", "-");
    }
  }
  if (qor.stages.empty()) return out;

  out += strprintf("\nflow QoR summary (%llu completed flows):\n",
                   static_cast<unsigned long long>(qor.flows));
  out += "  stage walls:";
  // Pipeline order, not map order.
  static const char* kOrder[] = {"synth", "map",    "pack",  "place",
                                 "route", "power", "bitgen"};
  bool any = false;
  for (const char* stage : kOrder) {
    auto it = qor.stages.find(stage);
    if (it == qor.stages.end()) continue;
    out += strprintf("%s %s %.3fs", any ? "," : "", stage,
                     it->second.wall_s);
    any = true;
  }
  out += strprintf("  (total %.3fs)\n", qor.total_wall_s);
  out += strprintf("  channel width (max)   %.0f\n", qor.channel_width_max);
  out += strprintf("  routed wire nodes     %.0f\n", qor.wire_nodes);
  out += strprintf("  LUTs                  %.0f\n", qor.luts);
  out += strprintf("  CLBs                  %.0f\n", qor.clbs);
  out += strprintf("  config bits           %.0f\n", qor.config_bits);
  out += strprintf("  bitstream bytes       %.0f\n", qor.bitstream_bytes);
  out += strprintf("  critical path (max)   %.3f ns\n",
                   qor.critical_path_ns_max);
  out += strprintf("  power (sum)           %.3f mW\n", qor.power_mw);
  return out;
}

std::string TraceReport::to_json() const {
  std::string out = strprintf(
      "{\"events\":%llu,\"skipped_lines\":%llu,\"unmatched_ends\":%llu,"
      "\"traces\":%llu,\"trace_dur_s\":%.9g,\"names\":[",
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(skipped_lines),
      static_cast<unsigned long long>(unmatched_ends),
      static_cast<unsigned long long>(traces), trace_dur_s);
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    const auto& a = aggregates[i];
    out += strprintf(
        "%s{\"name\":\"%s\",\"kind\":\"%s\",\"count\":%llu,"
        "\"total_s\":%.9g,\"self_s\":%.9g,\"p50_s\":%.9g,\"p95_s\":%.9g,"
        "\"metrics\":{",
        i > 0 ? "," : "", json_escape(a.name).c_str(),
        a.is_span ? "span" : "point",
        static_cast<unsigned long long>(a.count), a.total_s, a.self_s,
        a.p50_s, a.p95_s);
    bool first = true;
    for (const auto& [k, v] : a.metric_sums) {
      out += strprintf("%s\"%s\":%.9g", first ? "" : ",",
                       json_escape(k).c_str(), v);
      first = false;
    }
    out += "}}";
  }
  out += strprintf(
      "],\"flow_qor\":{\"flows\":%llu,\"total_wall_s\":%.9g,\"stages\":{",
      static_cast<unsigned long long>(qor.flows), qor.total_wall_s);
  bool first = true;
  for (const auto& [stage, w] : qor.stages) {
    out += strprintf("%s\"%s\":{\"runs\":%llu,\"wall_s\":%.9g}",
                     first ? "" : ",", json_escape(stage).c_str(),
                     static_cast<unsigned long long>(w.runs), w.wall_s);
    first = false;
  }
  out += strprintf(
      "},\"channel_width_max\":%.9g,\"wire_nodes\":%.9g,\"luts\":%.9g,"
      "\"clbs\":%.9g,\"config_bits\":%.9g,\"bitstream_bytes\":%.9g,"
      "\"critical_path_ns_max\":%.9g,\"power_mw\":%.9g}}",
      qor.channel_width_max, qor.wire_nodes, qor.luts, qor.clbs,
      qor.config_bits, qor.bitstream_bytes, qor.critical_path_ns_max,
      qor.power_mw);
  return out;
}

}  // namespace amdrel::obs

#pragma once
// Trace analyzer: the consumer side of the obs event stream. Parses a
// JSONL trace (the schema JsonlSink writes; DESIGN.md §8) into a span
// tree and reduces it to
//
//  * per-name aggregates — count, total and self wall time (self =
//    duration minus in-tree children), exact p50/p95 over span
//    durations, and the sum of every metric key, for spans and points
//    alike;
//  * a flow QoR summary — per-stage wall time from the flow.<stage>
//    spans plus the headline QoR numbers the paper reports (channel
//    width, routed wire nodes, LUTs, CLBs, config bits, critical path,
//    power), read from the span metrics FlowSession attaches.
//
// Surfaced as `amdrel_cli trace-report <trace.jsonl> [--json]`; the same
// analysis backs tests that cross-check span durations against the
// session's own StageMetrics.
//
// Span pairing: events that carry span ids (every trace written since
// the schema gained "id"/"parent"/"trace") are paired begin↔end by id
// and parented by the recorded parent id, so interleaved multi-job
// traces — e.g. a daemon spooling 64 concurrent jobs into one file, or
// several per-job spools concatenated for a fleet-wide view — produce
// exact trees. Id-less events (old traces) fall back to pairing with
// the nearest open span of the same name, whose parentage — and
// therefore the *self* time of whatever span they landed under — is
// approximate in concurrent sections. Totals, counts and quantiles are
// exact under either pairing.

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace amdrel::obs {

/// One parsed trace event (a "begin"/"span" pair becomes one SpanNode).
struct TraceEvent {
  enum class Kind { kBegin, kEnd, kPoint };
  Kind kind = Kind::kPoint;
  std::string name;
  double t_s = 0.0;
  double dur_s = 0.0;
  std::uint64_t id = 0;      ///< span id (0: id-less legacy event)
  std::uint64_t parent = 0;  ///< enclosing span id (0: root)
  std::string trace;         ///< owning trace id ("" outside a context)
  std::vector<std::pair<std::string, double>> metrics;
};

/// Parses one JSONL trace line. Returns false (and leaves *out
/// unspecified) for lines that are not valid trace events — callers skip
/// those, so a trace truncated by a crash still analyzes.
bool parse_trace_line(const std::string& line, TraceEvent* out);

/// A completed span with its nested children (tree order = trace order).
struct SpanNode {
  std::string name;
  double t_s = 0.0;
  double dur_s = 0.0;
  std::uint64_t id = 0;  ///< span id (0 for id-less legacy traces)
  std::string trace;     ///< trace id this span was emitted under
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<SpanNode> children;
};

/// Aggregate over every span/point sharing a name.
struct NameAggregate {
  std::string name;
  bool is_span = false;    ///< false: point events
  std::uint64_t count = 0;
  double total_s = 0.0;    ///< sum of span durations (0 for points)
  double self_s = 0.0;     ///< total minus time inside child spans
  double p50_s = 0.0;      ///< exact median span duration
  double p95_s = 0.0;      ///< exact 95th-percentile span duration
  std::map<std::string, double> metric_sums;
};

/// Wall time of one flow stage summed across every flow in the trace.
struct StageWall {
  std::uint64_t runs = 0;
  double wall_s = 0.0;
};

/// Headline QoR record of the traced flows (see class comment).
struct FlowQorSummary {
  std::uint64_t flows = 0;  ///< completed flows (= flow.bitgen spans)
  std::map<std::string, StageWall> stages;  ///< keyed by stage name
  double total_wall_s = 0.0;                ///< sum over stage walls
  double channel_width_max = 0.0;
  double wire_nodes = 0.0;     ///< summed over flows
  double luts = 0.0;           ///< summed over flows
  double clbs = 0.0;           ///< summed over flows
  double config_bits = 0.0;    ///< summed over flows
  double bitstream_bytes = 0.0;
  double critical_path_ns_max = 0.0;
  double power_mw = 0.0;       ///< summed over flows
};

struct TraceReport {
  std::uint64_t events = 0;        ///< parsed events
  std::uint64_t skipped_lines = 0; ///< unparseable lines (crash tails)
  std::uint64_t unmatched_ends = 0;///< span ends with no open begin
  std::uint64_t traces = 0;        ///< distinct trace ids seen (0: none)
  double trace_dur_s = 0.0;        ///< max event timestamp (+dur)
  std::vector<SpanNode> roots;     ///< top-level spans, trace order
  std::vector<NameAggregate> aggregates;  ///< sorted by total_s desc
  FlowQorSummary qor;

  std::string to_text() const;
  std::string to_json() const;  ///< one JSON object (DESIGN.md §8)
};

/// Analyzes a trace from a stream / a file on disk. The file variant
/// throws amdrel::Error when the file cannot be opened.
TraceReport analyze_trace(std::istream& in);
TraceReport analyze_trace_file(const std::string& path);

}  // namespace amdrel::obs

#pragma once
// DIVINER — behavioural VHDL synthesis to a gate-level Network.
//
// Supported subset (documented in DESIGN.md): entities with std_logic /
// std_logic_vector ports, architectures with signal declarations,
// concurrent / conditional / selected assignments, combinational and
// clocked processes (rising_edge or clk'event and clk='1', optional
// reset branch), direct entity instantiation (flattened), operators
// and/or/xor/nand/nor/xnor/not, & (concat), +/- (unsigned ripple),
// comparisons, static indexing/slicing, (others => ...) aggregates.
//
// The reset branch of a clocked process is synthesized synchronously
// (D-input mux), with the latch initial state taken from constant reset
// values — the standard academic simplification; the paper's fabric has a
// global asynchronous clear at the CLB level.

#include <string>

#include "netlist/network.hpp"
#include "vhdl/ast.hpp"

namespace amdrel::vhdl {

/// Elaborates and synthesizes `top` (entity name; case-insensitive).
/// Vector ports expand to one netlist signal per bit, named `port_i`.
netlist::Network synthesize(const DesignFile& design, const std::string& top);

/// Convenience: parse + synthesize in one step.
netlist::Network synthesize_vhdl(const std::string& source,
                                 const std::string& top,
                                 const std::string& filename = "<vhdl>");

}  // namespace amdrel::vhdl

#pragma once
// Recursive-descent parser for the synthesizable VHDL-93 subset
// (the paper's "VHDL Parser" flow stage: syntax checking + AST).

#include <string>

#include "vhdl/ast.hpp"

namespace amdrel::vhdl {

/// Parses a full design file; throws ParseError with file/line context on
/// anything outside the supported subset.
DesignFile parse_vhdl(const std::string& source,
                      const std::string& filename = "<vhdl>");

DesignFile parse_vhdl_file(const std::string& path);

}  // namespace amdrel::vhdl

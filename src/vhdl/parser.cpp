#include "vhdl/parser.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "vhdl/lexer.hpp"

namespace amdrel::vhdl {

const Entity* DesignFile::find_entity(const std::string& name) const {
  for (const auto& e : entities) {
    if (iequals(e.name, name)) return &e;
  }
  return nullptr;
}

const Architecture* DesignFile::find_architecture(
    const std::string& entity) const {
  for (const auto& a : architectures) {
    if (iequals(a.entity_name, entity)) return &a;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string file)
      : tokens_(std::move(tokens)), file_(std::move(file)) {}

  DesignFile parse_design_file() {
    DesignFile df;
    for (;;) {
      skip_context_clauses();
      if (at_eof()) break;
      if (peek_kw("entity")) {
        df.entities.push_back(parse_entity());
      } else if (peek_kw("architecture")) {
        df.architectures.push_back(parse_architecture());
      } else {
        fail("expected 'entity' or 'architecture'");
      }
    }
    return df;
  }

 private:
  // ------------------------------------------------------------- helpers --
  const Token& cur() const { return tokens_[pos_]; }
  const Token& next(int off = 1) const {
    std::size_t p = pos_ + static_cast<std::size_t>(off);
    return p < tokens_.size() ? tokens_[p] : tokens_.back();
  }
  bool at_eof() const { return cur().kind == TokenKind::kEof; }
  void advance() {
    if (!at_eof()) ++pos_;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(file_, cur().line,
                     msg + " (got '" + cur().text + "')");
  }

  bool peek_kw(const std::string& kw, int off = 0) const {
    const Token& t = next(off);
    return t.kind == TokenKind::kIdentifier && t.text == kw;
  }
  bool peek_sym(const std::string& s, int off = 0) const {
    const Token& t = next(off);
    return t.kind == TokenKind::kSymbol && t.text == s;
  }

  void expect_kw(const std::string& kw) {
    if (!peek_kw(kw)) fail("expected '" + kw + "'");
    advance();
  }
  void expect_sym(const std::string& s) {
    if (!peek_sym(s)) fail("expected '" + s + "'");
    advance();
  }
  std::string expect_identifier(const char* what) {
    if (cur().kind != TokenKind::kIdentifier) fail(std::string("expected ") + what);
    std::string name = cur().text;
    advance();
    return name;
  }
  /// Accepts a keyword or consumes nothing; returns whether consumed.
  bool accept_kw(const std::string& kw) {
    if (peek_kw(kw)) {
      advance();
      return true;
    }
    return false;
  }
  bool accept_sym(const std::string& s) {
    if (peek_sym(s)) {
      advance();
      return true;
    }
    return false;
  }

  void skip_context_clauses() {
    // library X; / use X.Y.all;
    for (;;) {
      if (peek_kw("library") || peek_kw("use")) {
        while (!at_eof() && !peek_sym(";")) advance();
        expect_sym(";");
      } else {
        return;
      }
    }
  }

  // ---------------------------------------------------------------- types --
  TypeRef parse_type() {
    TypeRef t;
    std::string type_name = expect_identifier("type name");
    if (type_name == "std_logic" || type_name == "std_ulogic" ||
        type_name == "bit") {
      t.is_vector = false;
      return t;
    }
    if (type_name == "std_logic_vector" || type_name == "std_ulogic_vector" ||
        type_name == "bit_vector" || type_name == "unsigned" ||
        type_name == "signed") {
      t.is_vector = true;
      expect_sym("(");
      t.left = parse_static_int();
      if (accept_kw("downto")) {
        t.downto = true;
      } else if (accept_kw("to")) {
        t.downto = false;
      } else {
        fail("expected 'downto' or 'to'");
      }
      t.right = parse_static_int();
      expect_sym(")");
      if (t.width() <= 0) fail("vector has non-positive width");
      return t;
    }
    fail("unsupported type '" + type_name + "' (subset: std_logic[_vector])");
  }

  long long parse_static_int() {
    bool neg = accept_sym("-");
    if (cur().kind != TokenKind::kInteger) fail("expected integer");
    long long v = std::stoll(cur().text);
    advance();
    return neg ? -v : v;
  }

  // --------------------------------------------------------------- entity --
  Entity parse_entity() {
    Entity e;
    e.line = cur().line;
    expect_kw("entity");
    e.name = expect_identifier("entity name");
    expect_kw("is");
    if (accept_kw("generic")) {
      fail("generics are not supported in this subset");
    }
    if (accept_kw("port")) {
      expect_sym("(");
      for (;;) {
        // name {, name} : in|out type
        std::vector<std::string> names;
        names.push_back(expect_identifier("port name"));
        while (accept_sym(",")) names.push_back(expect_identifier("port name"));
        expect_sym(":");
        bool is_input;
        if (accept_kw("in")) {
          is_input = true;
        } else if (accept_kw("out")) {
          is_input = false;
        } else if (peek_kw("inout") || peek_kw("buffer")) {
          fail("inout/buffer ports are not supported");
        } else {
          fail("expected port direction");
        }
        TypeRef type = parse_type();
        for (const auto& n : names) {
          e.ports.push_back(Port{n, is_input, type, cur().line});
        }
        if (accept_sym(";")) continue;
        expect_sym(")");
        break;
      }
      expect_sym(";");
    }
    expect_kw("end");
    accept_kw("entity");
    if (cur().kind == TokenKind::kIdentifier) advance();  // optional name
    expect_sym(";");
    return e;
  }

  // --------------------------------------------------------- architecture --
  Architecture parse_architecture() {
    Architecture a;
    a.line = cur().line;
    expect_kw("architecture");
    a.name = expect_identifier("architecture name");
    expect_kw("of");
    a.entity_name = expect_identifier("entity name");
    expect_kw("is");
    // Declarations.
    while (!peek_kw("begin")) {
      if (accept_kw("signal")) {
        std::vector<std::string> names;
        names.push_back(expect_identifier("signal name"));
        while (accept_sym(",")) names.push_back(expect_identifier("signal name"));
        expect_sym(":");
        TypeRef t = parse_type();
        if (accept_sym(":=")) {
          // Default value ignored for synthesis (registers use reset logic).
          skip_to_semicolon();
        }
        expect_sym(";");
        for (const auto& n : names) {
          a.signals.push_back(SignalDecl{n, t, cur().line});
        }
      } else if (peek_kw("component")) {
        skip_component_declaration();
      } else if (peek_kw("constant") || peek_kw("type") ||
                 peek_kw("attribute")) {
        fail("declaration kind not supported in subset: " + cur().text);
      } else {
        fail("unexpected token in architecture declarations");
      }
    }
    expect_kw("begin");
    while (!peek_kw("end")) {
      a.body.push_back(parse_concurrent());
    }
    expect_kw("end");
    accept_kw("architecture");
    if (cur().kind == TokenKind::kIdentifier) advance();
    expect_sym(";");
    return a;
  }

  void skip_to_semicolon() {
    while (!at_eof() && !peek_sym(";")) advance();
  }

  void skip_component_declaration() {
    expect_kw("component");
    while (!at_eof() && !(peek_kw("end") && peek_kw("component", 1))) advance();
    expect_kw("end");
    expect_kw("component");
    if (cur().kind == TokenKind::kIdentifier) advance();
    expect_sym(";");
  }

  // ------------------------------------------------ concurrent statements --
  Concurrent parse_concurrent() {
    Concurrent c;
    c.line = cur().line;

    // Optional label: ident ':' (not followed by a type keyword... labels
    // precede process/instances; signal assignments can also be labelled).
    if (cur().kind == TokenKind::kIdentifier && peek_sym(":", 1)) {
      // Distinguish "label : process" / "label : entity" / "label : comp
      // port map" from nothing else; VHDL requires labels on instances.
      c.label = cur().text;
      advance();
      advance();  // ':'
    }

    if (peek_kw("process")) {
      parse_process(c);
      return c;
    }
    if (peek_kw("entity") || (cur().kind == TokenKind::kIdentifier &&
                              (peek_kw("port", 1) || peek_kw("generic", 1)))) {
      parse_instance(c);
      return c;
    }
    if (peek_kw("with")) {
      parse_selected_assign(c);
      return c;
    }
    // Plain or conditional signal assignment.
    parse_signal_assign(c);
    return c;
  }

  void parse_process(Concurrent& c) {
    c.kind = ConcurrentKind::kProcess;
    expect_kw("process");
    if (accept_sym("(")) {
      for (;;) {
        c.sensitivity.push_back(expect_identifier("sensitivity signal"));
        if (accept_sym(",")) continue;
        expect_sym(")");
        break;
      }
    }
    accept_kw("is");
    if (peek_kw("variable")) fail("process variables are not supported");
    expect_kw("begin");
    while (!peek_kw("end")) {
      c.body.push_back(parse_statement());
    }
    expect_kw("end");
    expect_kw("process");
    if (cur().kind == TokenKind::kIdentifier) advance();
    expect_sym(";");
  }

  void parse_instance(Concurrent& c) {
    c.kind = ConcurrentKind::kInstance;
    if (c.label.empty()) fail("instances require a label");
    if (accept_kw("entity")) {
      // entity work.foo or entity foo
      std::string lib_or_name = expect_identifier("entity name");
      if (accept_sym(".")) {
        c.entity_name = expect_identifier("entity name");
      } else {
        c.entity_name = lib_or_name;
      }
    } else {
      c.entity_name = expect_identifier("component name");
    }
    if (accept_kw("generic")) fail("generic maps are not supported");
    expect_kw("port");
    expect_kw("map");
    expect_sym("(");
    for (;;) {
      std::string formal = expect_identifier("formal port name");
      expect_sym("=>");
      if (peek_kw("open")) {
        advance();
        c.port_map.push_back({formal, nullptr});
      } else {
        c.port_map.push_back({formal, parse_expression()});
      }
      if (accept_sym(",")) continue;
      expect_sym(")");
      break;
    }
    expect_sym(";");
  }

  void parse_selected_assign(Concurrent& c) {
    c.kind = ConcurrentKind::kSelected;
    expect_kw("with");
    c.selector = parse_expression();
    expect_kw("select");
    c.target = parse_name_expression();
    expect_sym("<=");
    for (;;) {
      SelectedChoice choice;
      choice.value = parse_expression();
      expect_kw("when");
      if (accept_kw("others")) {
        // empty choices = others
      } else {
        choice.choices.push_back(parse_expression());
        while (accept_sym("|")) choice.choices.push_back(parse_expression());
      }
      c.selected.push_back(std::move(choice));
      if (accept_sym(",")) continue;
      expect_sym(";");
      break;
    }
  }

  void parse_signal_assign(Concurrent& c) {
    c.target = parse_name_expression();
    expect_sym("<=");
    ExprPtr first = parse_expression();
    if (peek_kw("when")) {
      c.kind = ConcurrentKind::kConditional;
      advance();
      ConditionalChoice cc;
      cc.value = std::move(first);
      cc.condition = parse_expression();
      c.conditional.push_back(std::move(cc));
      while (accept_kw("else")) {
        ConditionalChoice alt;
        alt.value = parse_expression();
        if (accept_kw("when")) {
          alt.condition = parse_expression();
          c.conditional.push_back(std::move(alt));
        } else {
          c.conditional.push_back(std::move(alt));
          break;
        }
      }
      expect_sym(";");
    } else {
      c.kind = ConcurrentKind::kAssign;
      c.value = std::move(first);
      expect_sym(";");
    }
  }

  // ---------------------------------------------------------- statements --
  StmtPtr parse_statement() {
    if (peek_kw("if")) return parse_if();
    if (peek_kw("case")) return parse_case();
    if (peek_kw("null")) {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kNull;
      s->line = cur().line;
      advance();
      expect_sym(";");
      return s;
    }
    // Signal assignment.
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kAssign;
    s->line = cur().line;
    s->target = parse_name_expression();
    if (peek_sym(":=")) fail("variables are not supported; use signals");
    expect_sym("<=");
    s->value = parse_expression();
    expect_sym(";");
    return s;
  }

  StmtPtr parse_if() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kIf;
    s->line = cur().line;
    expect_kw("if");
    IfBranch first;
    first.condition = parse_expression();
    expect_kw("then");
    while (!peek_kw("elsif") && !peek_kw("else") && !peek_kw("end")) {
      first.body.push_back(parse_statement());
    }
    s->branches.push_back(std::move(first));
    while (accept_kw("elsif")) {
      IfBranch b;
      b.condition = parse_expression();
      expect_kw("then");
      while (!peek_kw("elsif") && !peek_kw("else") && !peek_kw("end")) {
        b.body.push_back(parse_statement());
      }
      s->branches.push_back(std::move(b));
    }
    if (accept_kw("else")) {
      IfBranch b;  // no condition
      while (!peek_kw("end")) b.body.push_back(parse_statement());
      s->branches.push_back(std::move(b));
    }
    expect_kw("end");
    expect_kw("if");
    expect_sym(";");
    return s;
  }

  StmtPtr parse_case() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kCase;
    s->line = cur().line;
    expect_kw("case");
    s->selector = parse_expression();
    expect_kw("is");
    while (accept_kw("when")) {
      CaseArm arm;
      if (accept_kw("others")) {
        // empty = others
      } else {
        arm.choices.push_back(parse_expression());
        while (accept_sym("|")) arm.choices.push_back(parse_expression());
      }
      expect_sym("=>");
      while (!peek_kw("when") && !peek_kw("end")) {
        arm.body.push_back(parse_statement());
      }
      s->arms.push_back(std::move(arm));
    }
    expect_kw("end");
    expect_kw("case");
    expect_sym(";");
    return s;
  }

  // --------------------------------------------------------- expressions --
  // Precedence (loosest to tightest): logical (and/or/xor/nand/nor/xnor),
  // relational (= /= < <= > >=), additive (+ - &), multiplicative (* /),
  // unary (not -), primary.
  ExprPtr parse_expression() { return parse_logical(); }

  bool peek_logical_op() const {
    return peek_kw("and") || peek_kw("or") || peek_kw("xor") ||
           peek_kw("nand") || peek_kw("nor") || peek_kw("xnor");
  }

  ExprPtr parse_logical() {
    ExprPtr lhs = parse_relational();
    while (peek_logical_op()) {
      std::string op = cur().text;
      int line = cur().line;
      advance();
      ExprPtr rhs = parse_relational();
      auto e = Expr::make(ExprKind::kBinary, line);
      e->name = op;
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  bool peek_relational_op() const {
    return peek_sym("=") || peek_sym("/=") || peek_sym("<") ||
           peek_sym(">") || peek_sym("<=") || peek_sym(">=");
  }

  ExprPtr parse_relational() {
    ExprPtr lhs = parse_additive();
    if (peek_relational_op()) {
      std::string op = cur().text;
      int line = cur().line;
      advance();
      ExprPtr rhs = parse_additive();
      auto e = Expr::make(ExprKind::kBinary, line);
      e->name = op;
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(rhs));
      return e;
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (peek_sym("+") || peek_sym("-") || peek_sym("&")) {
      std::string op = cur().text;
      int line = cur().line;
      advance();
      ExprPtr rhs = parse_multiplicative();
      auto e = Expr::make(ExprKind::kBinary, line);
      e->name = op;
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (peek_sym("*") || peek_sym("/")) {
      std::string op = cur().text;
      int line = cur().line;
      advance();
      ExprPtr rhs = parse_unary();
      auto e = Expr::make(ExprKind::kBinary, line);
      e->name = op;
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (peek_kw("not")) {
      int line = cur().line;
      advance();
      auto e = Expr::make(ExprKind::kUnary, line);
      e->name = "not";
      e->args.push_back(parse_unary());
      return e;
    }
    if (peek_sym("-")) {
      int line = cur().line;
      advance();
      auto e = Expr::make(ExprKind::kUnary, line);
      e->name = "-";
      e->args.push_back(parse_unary());
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const int line = cur().line;
    if (accept_sym("(")) {
      // Parenthesized expression or (others => 'x') aggregate.
      if (peek_kw("others")) {
        advance();
        expect_sym("=>");
        if (cur().kind != TokenKind::kCharLit) fail("expected '0' or '1'");
        auto e = Expr::make(ExprKind::kOthers, line);
        e->text = cur().text;
        advance();
        expect_sym(")");
        return e;
      }
      ExprPtr inner = parse_expression();
      expect_sym(")");
      return inner;
    }
    if (cur().kind == TokenKind::kCharLit) {
      auto e = Expr::make(ExprKind::kCharLit, line);
      e->text = cur().text;
      advance();
      return e;
    }
    if (cur().kind == TokenKind::kStringLit) {
      auto e = Expr::make(ExprKind::kStringLit, line);
      e->text = cur().text;
      advance();
      return e;
    }
    if (cur().kind == TokenKind::kInteger) {
      auto e = Expr::make(ExprKind::kIntLit, line);
      e->value = std::stoll(cur().text);
      advance();
      return e;
    }
    if (cur().kind == TokenKind::kIdentifier) {
      return parse_name_expression();
    }
    fail("expected expression");
  }

  /// Parses name / name(expr) / name(hi downto lo) / name'attr / call(args).
  ExprPtr parse_name_expression() {
    const int line = cur().line;
    std::string name = expect_identifier("name");
    // conv_integer / to_integer style casts collapse to their argument.
    ExprPtr result;
    if (accept_sym("(")) {
      // Could be index, slice, or a call with one argument.
      ExprPtr first = parse_expression();
      if (accept_kw("downto") || peek_kw("to")) {
        bool down = true;
        if (peek_kw("to")) {
          advance();
          down = false;
        }
        ExprPtr second = parse_expression();
        expect_sym(")");
        auto e = Expr::make(ExprKind::kSlice, line);
        e->name = name;
        e->downto = down;
        e->args.push_back(std::move(first));
        e->args.push_back(std::move(second));
        result = std::move(e);
      } else {
        expect_sym(")");
        if (name == "rising_edge" || name == "falling_edge" ||
            name == "to_integer" || name == "unsigned" || name == "signed" ||
            name == "std_logic_vector" || name == "conv_integer") {
          auto e = Expr::make(ExprKind::kCall, line);
          e->name = name;
          e->args.push_back(std::move(first));
          result = std::move(e);
        } else {
          auto e = Expr::make(ExprKind::kIndex, line);
          e->name = name;
          e->args.push_back(std::move(first));
          result = std::move(e);
        }
      }
    } else {
      auto e = Expr::make(ExprKind::kName, line);
      e->name = name;
      result = std::move(e);
    }
    // Attribute.
    if (peek_sym("'") && next(1).kind == TokenKind::kIdentifier) {
      advance();
      std::string attr = expect_identifier("attribute");
      auto e = Expr::make(ExprKind::kAttribute, line);
      e->name = attr;
      e->args.push_back(std::move(result));
      return e;
    }
    return result;
  }

  std::vector<Token> tokens_;
  std::string file_;
  std::size_t pos_ = 0;
};

}  // namespace

DesignFile parse_vhdl(const std::string& source, const std::string& filename) {
  Parser parser(lex_vhdl(source, filename), filename);
  return parser.parse_design_file();
}

DesignFile parse_vhdl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open VHDL file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_vhdl(ss.str(), path);
}

}  // namespace amdrel::vhdl

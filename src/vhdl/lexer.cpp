#include "vhdl/lexer.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::vhdl {

std::vector<Token> lex_vhdl(const std::string& source,
                            const std::string& filename) {
  std::vector<Token> tokens;
  int line = 1, col = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto peek = [&](std::size_t off = 0) -> char {
    return (i + off < n) ? source[i + off] : '\0';
  };
  auto advance = [&]() {
    if (source[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  };
  auto push = [&](TokenKind kind, std::string text, int l, int c) {
    tokens.push_back(Token{kind, std::move(text), l, c});
  };

  while (i < n) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // Comment: -- to end of line.
    if (c == '-' && peek(1) == '-') {
      while (i < n && peek() != '\n') advance();
      continue;
    }
    const int tl = line, tc = col;
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c))) {
      std::string id;
      while (i < n && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_')) {
        id.push_back(peek());
        advance();
      }
      push(TokenKind::kIdentifier, to_lower(id), tl, tc);
      continue;
    }
    // Integer literal.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      while (i < n && (std::isdigit(static_cast<unsigned char>(peek())) ||
                       peek() == '_')) {
        if (peek() != '_') num.push_back(peek());
        advance();
      }
      push(TokenKind::kInteger, num, tl, tc);
      continue;
    }
    // Character literal '0' — but also the tick in foo'event. A char
    // literal is ' <one char> '; otherwise it's the attribute tick.
    if (c == '\'') {
      if (i + 2 < n && source[i + 2] == '\'') {
        std::string text(1, source[i + 1]);
        advance();
        advance();
        advance();
        push(TokenKind::kCharLit, text, tl, tc);
        continue;
      }
      advance();
      push(TokenKind::kSymbol, "'", tl, tc);
      continue;
    }
    // String literal.
    if (c == '"') {
      advance();
      std::string text;
      while (i < n && peek() != '"') {
        text.push_back(peek());
        advance();
      }
      if (i >= n) throw ParseError(filename, tl, "unterminated string literal");
      advance();  // closing quote
      push(TokenKind::kStringLit, text, tl, tc);
      continue;
    }
    // Multi-char symbols.
    auto two = std::string(1, c) + peek(1);
    if (two == "<=" || two == "=>" || two == ":=" || two == "/=" ||
        two == ">=" || two == "**") {
      advance();
      advance();
      push(TokenKind::kSymbol, two, tl, tc);
      continue;
    }
    // Single-char symbols.
    static const std::string kSingles = "()+-*/;,:.&=<>|";
    if (kSingles.find(c) != std::string::npos) {
      advance();
      push(TokenKind::kSymbol, std::string(1, c), tl, tc);
      continue;
    }
    throw ParseError(filename, tl,
                     strprintf("unexpected character '%c'", c));
  }
  tokens.push_back(Token{TokenKind::kEof, "", line, col});
  return tokens;
}

}  // namespace amdrel::vhdl

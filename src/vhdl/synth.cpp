#include "vhdl/synth.hpp"

#include <map>
#include <optional>
#include <set>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "vhdl/parser.hpp"

namespace amdrel::vhdl {
namespace {

using netlist::kNoSignal;
using netlist::LatchInit;
using netlist::Network;
using netlist::SignalId;
using netlist::TruthTable;

[[noreturn]] void synth_fail(int line, const std::string& msg) {
  throw ParseError("<vhdl>", line, msg);
}

// A single bit value: either a constant or a netlist signal.
struct Bit {
  bool is_const = false;
  bool const_val = false;
  SignalId sig = kNoSignal;

  static Bit constant(bool v) { return Bit{true, v, kNoSignal}; }
  static Bit signal(SignalId s) { return Bit{false, false, s}; }
  bool operator==(const Bit& o) const {
    return is_const == o.is_const && const_val == o.const_val && sig == o.sig;
  }
};

// An evaluated expression: a bit vector (LSB first) and/or an integer.
struct Value {
  std::vector<Bit> bits;
  bool is_int = false;
  long long int_val = 0;

  int width() const { return static_cast<int>(bits.size()); }
};

/// Builds gates with structural hashing and constant folding.
class GateBuilder {
 public:
  explicit GateBuilder(Network& net) : net_(&net) {}

  SignalId fresh(const std::string& hint) {
    for (;;) {
      std::string name = hint + "_n" + std::to_string(counter_++);
      if (net_->find_signal(name) == kNoSignal) return net_->add_signal(name);
    }
  }

  /// Materializes a Bit as a signal (constants become constant gates).
  SignalId materialize(const Bit& b) {
    if (!b.is_const) return b.sig;
    SignalId& cached = b.const_val ? const1_ : const0_;
    if (cached == kNoSignal) {
      cached = fresh(b.const_val ? "const1" : "const0");
      net_->add_gate("c" + std::to_string(counter_++),
                     TruthTable::constant(b.const_val), {}, cached);
    }
    return cached;
  }

  /// Emits (or reuses) a gate computing `table` over `ins`; returns the
  /// output bit. Performs constant folding and single-input simplification.
  Bit make(TruthTable table, std::vector<Bit> ins) {
    // Fold constant inputs.
    for (int i = static_cast<int>(ins.size()) - 1; i >= 0; --i) {
      if (ins[static_cast<std::size_t>(i)].is_const) {
        table = table.cofactor(i, ins[static_cast<std::size_t>(i)].const_val);
        ins.erase(ins.begin() + i);
      }
    }
    // Drop non-supporting inputs.
    for (int i = static_cast<int>(ins.size()) - 1; i >= 0; --i) {
      if (!table.depends_on(i)) {
        table = table.cofactor(i, false);
        ins.erase(ins.begin() + i);
      }
    }
    if (table.n_inputs() == 0) return Bit::constant(table.constant_value());
    if (table == TruthTable::identity()) return ins[0];

    // Structural hash.
    std::string key = table.to_hex();
    for (const Bit& b : ins) key += "," + std::to_string(b.sig);
    auto it = strash_.find(key);
    if (it != strash_.end()) return Bit::signal(it->second);

    std::vector<SignalId> sig_ins;
    sig_ins.reserve(ins.size());
    for (const Bit& b : ins) sig_ins.push_back(b.sig);
    SignalId out = fresh("n");
    net_->add_gate("g" + std::to_string(counter_++), std::move(table),
                   std::move(sig_ins), out);
    strash_.emplace(std::move(key), out);
    return Bit::signal(out);
  }

  Bit b_not(Bit a) {
    if (a.is_const) return Bit::constant(!a.const_val);
    return make(TruthTable::inverter(), {a});
  }
  Bit b_and(Bit a, Bit b) { return make(TruthTable::and_n(2), {a, b}); }
  Bit b_or(Bit a, Bit b) { return make(TruthTable::or_n(2), {a, b}); }
  Bit b_xor(Bit a, Bit b) { return make(TruthTable::xor_n(2), {a, b}); }
  /// sel ? b : a
  Bit b_mux(Bit sel, Bit a, Bit b) {
    if (sel.is_const) return sel.const_val ? b : a;
    if (a == b) return a;
    return make(TruthTable::mux2(), {sel, a, b});
  }

  /// Drives existing signal `target` with bit `v` (identity/constant gate).
  void drive(SignalId target, const Bit& v, int line) {
    (void)line;
    if (v.is_const) {
      net_->add_gate("drv" + std::to_string(counter_++),
                     TruthTable::constant(v.const_val), {}, target);
    } else {
      net_->add_gate("drv" + std::to_string(counter_++),
                     TruthTable::identity(), {v.sig}, target);
    }
  }

 private:
  Network* net_;
  int counter_ = 0;
  SignalId const0_ = kNoSignal;
  SignalId const1_ = kNoSignal;
  std::map<std::string, SignalId> strash_;
};

// A VHDL signal bound to netlist signals (one per bit, LSB first) plus its
// declared type (for index arithmetic).
struct BoundSignal {
  TypeRef type;
  std::vector<SignalId> bits;  // LSB first
  bool is_port_input = false;
};

using Env = std::map<std::string, BoundSignal>;

/// Per-process symbolic state: target name → per-bit pending assignment.
using AssignMap = std::map<std::string, std::vector<std::optional<Bit>>>;

class Elaborator {
 public:
  Elaborator(const DesignFile& design, Network& net)
      : design_(&design), net_(net), gb_(net) {}

  void elaborate_top(const std::string& top) {
    const Entity* ent = design_->find_entity(to_lower(top));
    if (ent == nullptr) throw Error("top entity not found: " + top);
    const Architecture* arch = design_->find_architecture(ent->name);
    if (arch == nullptr) {
      throw Error("no architecture for entity: " + ent->name);
    }
    net_.set_name(ent->name);

    Env env;
    for (const Port& p : ent->ports) {
      if (p.type.is_vector && !p.type.downto) {
        synth_fail(p.line, "only 'downto' vector ranges are supported");
      }
      BoundSignal bs;
      bs.type = p.type;
      bs.is_port_input = p.is_input;
      for (int i = 0; i < p.type.width(); ++i) {
        std::string name =
            p.type.is_vector ? p.name + "_" + std::to_string(i) : p.name;
        bs.bits.push_back(net_.add_signal(name));
      }
      if (p.is_input) {
        for (SignalId s : bs.bits) net_.add_input(s);
      }
      env.emplace(p.name, std::move(bs));
    }
    elaborate_architecture(*arch, env, "");
    for (const Port& p : ent->ports) {
      if (p.is_input) continue;
      for (SignalId s : env.at(p.name).bits) net_.add_output(s);
    }
  }

 private:
  // ----------------------------------------------------------- elaborate --
  void elaborate_architecture(const Architecture& arch, Env& env,
                              const std::string& prefix) {
    for (const SignalDecl& d : arch.signals) {
      if (env.count(d.name)) {
        synth_fail(d.line, "signal shadows a port: " + d.name);
      }
      if (d.type.is_vector && !d.type.downto) {
        synth_fail(d.line, "only 'downto' vector ranges are supported");
      }
      BoundSignal bs;
      bs.type = d.type;
      for (int i = 0; i < d.type.width(); ++i) {
        std::string name = prefix + d.name +
                           (d.type.is_vector ? "_" + std::to_string(i) : "");
        // Uniquify against anything already present.
        while (net_.find_signal(name) != kNoSignal) name += "_x";
        bs.bits.push_back(net_.add_signal(name));
      }
      env.emplace(d.name, std::move(bs));
    }
    for (const Concurrent& c : arch.body) {
      switch (c.kind) {
        case ConcurrentKind::kAssign:
          do_concurrent_assign(c, env);
          break;
        case ConcurrentKind::kConditional:
          do_conditional_assign(c, env);
          break;
        case ConcurrentKind::kSelected:
          do_selected_assign(c, env);
          break;
        case ConcurrentKind::kProcess:
          do_process(c, env, prefix);
          break;
        case ConcurrentKind::kInstance:
          do_instance(c, env, prefix);
          break;
      }
    }
  }

  // Target reference: the netlist signals being assigned.
  std::vector<SignalId> eval_target(const Expr& target, const Env& env) {
    if (target.kind == ExprKind::kName) {
      auto it = env.find(target.name);
      if (it == env.end()) {
        synth_fail(target.line, "unknown signal: " + target.name);
      }
      if (it->second.is_port_input) {
        synth_fail(target.line, "cannot assign to input port: " + target.name);
      }
      return it->second.bits;
    }
    if (target.kind == ExprKind::kIndex) {
      auto it = env.find(target.name);
      if (it == env.end()) {
        synth_fail(target.line, "unknown signal: " + target.name);
      }
      long long idx = eval_static_int(*target.args[0], env);
      return {bit_at(it->second, idx, target.line)};
    }
    if (target.kind == ExprKind::kSlice) {
      auto it = env.find(target.name);
      if (it == env.end()) {
        synth_fail(target.line, "unknown signal: " + target.name);
      }
      long long a = eval_static_int(*target.args[0], env);
      long long b = eval_static_int(*target.args[1], env);
      return slice_of(it->second, a, b, target.line);
    }
    synth_fail(target.line, "unsupported assignment target");
  }

  SignalId bit_at(const BoundSignal& bs, long long idx, int line) {
    if (!bs.type.is_vector) synth_fail(line, "indexing a scalar signal");
    long long off = bs.type.downto ? idx - bs.type.right : idx - bs.type.left;
    if (off < 0 || off >= static_cast<long long>(bs.bits.size())) {
      synth_fail(line, strprintf("index %lld out of range", idx));
    }
    return bs.bits[static_cast<std::size_t>(off)];
  }

  std::vector<SignalId> slice_of(const BoundSignal& bs, long long a,
                                 long long b, int line) {
    // a..b given in declaration order (hi downto lo, or lo to hi).
    std::vector<SignalId> out;
    if (bs.type.downto) {
      for (long long i = b; i <= a; ++i) out.push_back(bit_at(bs, i, line));
    } else {
      for (long long i = a; i <= b; ++i) out.push_back(bit_at(bs, i, line));
    }
    if (out.empty()) synth_fail(line, "empty slice");
    return out;
  }

  long long eval_static_int(const Expr& e, const Env& env) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return e.value;
      case ExprKind::kBinary: {
        long long a = eval_static_int(*e.args[0], env);
        long long b = eval_static_int(*e.args[1], env);
        if (e.name == "+") return a + b;
        if (e.name == "-") return a - b;
        if (e.name == "*") return a * b;
        synth_fail(e.line, "unsupported static operator: " + e.name);
      }
      case ExprKind::kUnary:
        if (e.name == "-") return -eval_static_int(*e.args[0], env);
        synth_fail(e.line, "unsupported static operator");
      default:
        synth_fail(e.line, "expected a static integer expression");
    }
  }

  // ------------------------------------------------- expression evaluation --
  // `local` carries in-process assigned values (combinational processes read
  // their own updates); null for contexts that read committed signals only.
  Value eval(const Expr& e, const Env& env, const AssignMap* local) {
    switch (e.kind) {
      case ExprKind::kCharLit: {
        if (e.text == "0" || e.text == "1") {
          Value v;
          v.bits.push_back(Bit::constant(e.text == "1"));
          return v;
        }
        synth_fail(e.line, "unsupported std_logic literal '" + e.text + "'");
      }
      case ExprKind::kStringLit: {
        Value v;
        for (auto it = e.text.rbegin(); it != e.text.rend(); ++it) {
          if (*it != '0' && *it != '1') {
            synth_fail(e.line, "unsupported vector literal");
          }
          v.bits.push_back(Bit::constant(*it == '1'));
        }
        return v;
      }
      case ExprKind::kIntLit: {
        Value v;
        v.is_int = true;
        v.int_val = e.value;
        return v;
      }
      case ExprKind::kOthers:
        synth_fail(e.line, "(others => ...) is only allowed as a full "
                           "assignment right-hand side");
      case ExprKind::kName:
        return read_signal(e.name, env, local, e.line);
      case ExprKind::kIndex: {
        Value whole = read_signal(e.name, env, local, e.line);
        auto it = env.find(e.name);
        long long idx = eval_static_int(*e.args[0], env);
        const auto& t = it->second.type;
        long long off = t.downto ? idx - t.right : idx - t.left;
        if (off < 0 || off >= whole.width()) {
          synth_fail(e.line, "index out of range");
        }
        Value v;
        v.bits.push_back(whole.bits[static_cast<std::size_t>(off)]);
        return v;
      }
      case ExprKind::kSlice: {
        Value whole = read_signal(e.name, env, local, e.line);
        auto it = env.find(e.name);
        const auto& t = it->second.type;
        long long a = eval_static_int(*e.args[0], env);
        long long b = eval_static_int(*e.args[1], env);
        Value v;
        if (t.downto) {
          for (long long i = b; i <= a; ++i) {
            long long off = i - t.right;
            if (off < 0 || off >= whole.width()) {
              synth_fail(e.line, "slice out of range");
            }
            v.bits.push_back(whole.bits[static_cast<std::size_t>(off)]);
          }
        } else {
          for (long long i = a; i <= b; ++i) {
            long long off = i - t.left;
            if (off < 0 || off >= whole.width()) {
              synth_fail(e.line, "slice out of range");
            }
            v.bits.push_back(whole.bits[static_cast<std::size_t>(off)]);
          }
        }
        return v;
      }
      case ExprKind::kCall: {
        if (e.name == "rising_edge" || e.name == "falling_edge") {
          synth_fail(e.line,
                     "rising_edge is only supported as a clocked-process "
                     "condition");
        }
        // Type conversions collapse to their argument.
        return eval(*e.args[0], env, local);
      }
      case ExprKind::kAttribute:
        synth_fail(e.line, "attribute '" + e.name +
                               "' only supported in clock conditions");
      case ExprKind::kUnary: {
        Value a = eval(*e.args[0], env, local);
        if (e.name == "not") {
          require_bits(a, e.line);
          Value v;
          for (const Bit& b : a.bits) v.bits.push_back(gb_.b_not(b));
          return v;
        }
        synth_fail(e.line, "unsupported unary operator: " + e.name);
      }
      case ExprKind::kBinary:
        return eval_binary(e, env, local);
    }
    synth_fail(e.line, "unsupported expression");
  }

  void require_bits(const Value& v, int line) {
    if (v.is_int || v.bits.empty()) {
      synth_fail(line, "expected a std_logic value here");
    }
  }

  /// Converts an integer literal to constant bits of the given width.
  Value int_to_bits(long long value, int width, int line) {
    if (value < 0) synth_fail(line, "negative literals are not supported");
    Value v;
    for (int i = 0; i < width; ++i) {
      v.bits.push_back(Bit::constant((value >> i) & 1));
    }
    if (width < 63 && (value >> width) != 0) {
      synth_fail(line, strprintf("literal %lld does not fit in %d bits",
                                 value, width));
    }
    return v;
  }

  /// Harmonizes the widths of two operands (int literals adapt).
  void harmonize(Value& a, Value& b, int line) {
    if (a.is_int && b.is_int) synth_fail(line, "two integer operands");
    if (a.is_int) a = int_to_bits(a.int_val, b.width(), line);
    if (b.is_int) b = int_to_bits(b.int_val, a.width(), line);
    if (a.width() != b.width()) {
      synth_fail(line, strprintf("width mismatch: %d vs %d", a.width(),
                                 b.width()));
    }
  }

  Value eval_binary(const Expr& e, const Env& env, const AssignMap* local) {
    const std::string& op = e.name;
    // Concatenation: RHS of '&' is the low part in VHDL.
    if (op == "&") {
      Value a = eval(*e.args[0], env, local);
      Value b = eval(*e.args[1], env, local);
      require_bits(a, e.line);
      require_bits(b, e.line);
      Value v;
      v.bits = b.bits;
      v.bits.insert(v.bits.end(), a.bits.begin(), a.bits.end());
      return v;
    }

    Value a = eval(*e.args[0], env, local);
    Value b = eval(*e.args[1], env, local);

    if (op == "and" || op == "or" || op == "xor" || op == "nand" ||
        op == "nor" || op == "xnor") {
      require_bits(a, e.line);
      require_bits(b, e.line);
      if (a.width() != b.width()) synth_fail(e.line, "width mismatch");
      Value v;
      for (int i = 0; i < a.width(); ++i) {
        Bit x = a.bits[static_cast<std::size_t>(i)];
        Bit y = b.bits[static_cast<std::size_t>(i)];
        Bit r;
        if (op == "and") r = gb_.b_and(x, y);
        else if (op == "or") r = gb_.b_or(x, y);
        else if (op == "xor") r = gb_.b_xor(x, y);
        else if (op == "nand") r = gb_.b_not(gb_.b_and(x, y));
        else if (op == "nor") r = gb_.b_not(gb_.b_or(x, y));
        else r = gb_.b_not(gb_.b_xor(x, y));
        v.bits.push_back(r);
      }
      return v;
    }

    if (op == "+" || op == "-") {
      harmonize(a, b, e.line);
      Value v;
      Bit carry = Bit::constant(op == "-");  // borrow via two's complement
      for (int i = 0; i < a.width(); ++i) {
        Bit x = a.bits[static_cast<std::size_t>(i)];
        Bit y = b.bits[static_cast<std::size_t>(i)];
        if (op == "-") y = gb_.b_not(y);
        Bit sum = gb_.b_xor(gb_.b_xor(x, y), carry);
        Bit c1 = gb_.b_and(x, y);
        Bit c2 = gb_.b_and(gb_.b_xor(x, y), carry);
        carry = gb_.b_or(c1, c2);
        v.bits.push_back(sum);
      }
      return v;
    }

    if (op == "=" || op == "/=" || op == "<" || op == "<=" || op == ">" ||
        op == ">=") {
      harmonize(a, b, e.line);
      Value v;
      if (op == "=" || op == "/=") {
        Bit eq = Bit::constant(true);
        for (int i = 0; i < a.width(); ++i) {
          Bit same = gb_.b_not(gb_.b_xor(a.bits[static_cast<std::size_t>(i)],
                                         b.bits[static_cast<std::size_t>(i)]));
          eq = gb_.b_and(eq, same);
        }
        v.bits.push_back(op == "=" ? eq : gb_.b_not(eq));
        return v;
      }
      // Unsigned magnitude compare: a < b.
      Bit lt = Bit::constant(false);
      Bit eq = Bit::constant(true);
      for (int i = a.width() - 1; i >= 0; --i) {
        Bit x = a.bits[static_cast<std::size_t>(i)];
        Bit y = b.bits[static_cast<std::size_t>(i)];
        Bit xi_lt = gb_.b_and(gb_.b_not(x), y);
        lt = gb_.b_or(lt, gb_.b_and(eq, xi_lt));
        eq = gb_.b_and(eq, gb_.b_not(gb_.b_xor(x, y)));
      }
      Bit result;
      if (op == "<") result = lt;
      else if (op == ">=") result = gb_.b_not(lt);
      else if (op == ">") result = gb_.b_and(gb_.b_not(lt), gb_.b_not(eq));
      else result = gb_.b_or(lt, eq);  // <=
      v.bits.push_back(result);
      return v;
    }

    synth_fail(e.line, "unsupported operator: " + op);
  }

  Value read_signal(const std::string& name, const Env& env,
                    const AssignMap* local, int line) {
    auto it = env.find(name);
    if (it == env.end()) synth_fail(line, "unknown signal: " + name);
    Value v;
    const auto& bits = it->second.bits;
    const std::vector<std::optional<Bit>>* pending = nullptr;
    if (local != nullptr) {
      auto lit = local->find(name);
      if (lit != local->end()) pending = &lit->second;
    }
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (pending != nullptr && i < pending->size() &&
          (*pending)[i].has_value()) {
        v.bits.push_back((*pending)[i].value());
      } else {
        v.bits.push_back(Bit::signal(bits[i]));
      }
    }
    return v;
  }

  /// Single-bit boolean from a condition expression.
  Bit eval_condition(const Expr& e, const Env& env, const AssignMap* local) {
    Value v = eval(e, env, local);
    require_bits(v, e.line);
    if (v.width() != 1) synth_fail(e.line, "condition must be 1 bit");
    return v.bits[0];
  }

  /// Evaluates the RHS of an assignment, resolving (others=>) against the
  /// target width and width-adapting integer literals.
  std::vector<Bit> eval_rhs(const Expr& value, int target_width,
                            const Env& env, const AssignMap* local) {
    if (value.kind == ExprKind::kOthers) {
      return std::vector<Bit>(static_cast<std::size_t>(target_width),
                              Bit::constant(value.text == "1"));
    }
    Value v = eval(value, env, local);
    if (v.is_int) v = int_to_bits(v.int_val, target_width, value.line);
    if (v.width() != target_width) {
      synth_fail(value.line,
                 strprintf("assignment width mismatch: %d-bit value to "
                           "%d-bit target",
                           v.width(), target_width));
    }
    return v.bits;
  }

  // ------------------------------------------------ concurrent statements --
  void do_concurrent_assign(const Concurrent& c, Env& env) {
    std::vector<SignalId> targets = eval_target(*c.target, env);
    std::vector<Bit> bits =
        eval_rhs(*c.value, static_cast<int>(targets.size()), env, nullptr);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      gb_.drive(targets[i], bits[i], c.line);
    }
  }

  void do_conditional_assign(const Concurrent& c, Env& env) {
    std::vector<SignalId> targets = eval_target(*c.target, env);
    const int w = static_cast<int>(targets.size());
    // Build from the tail (unconditional else) backwards.
    std::vector<Bit> result;
    bool have_result = false;
    for (auto it = c.conditional.rbegin(); it != c.conditional.rend(); ++it) {
      std::vector<Bit> v = eval_rhs(*it->value, w, env, nullptr);
      if (it->condition == nullptr) {
        result = std::move(v);
        have_result = true;
      } else {
        if (!have_result) {
          synth_fail(c.line,
                     "conditional assignment needs a final unconditional "
                     "else");
        }
        Bit cond = eval_condition(*it->condition, env, nullptr);
        for (int i = 0; i < w; ++i) {
          result[static_cast<std::size_t>(i)] =
              gb_.b_mux(cond, result[static_cast<std::size_t>(i)],
                        v[static_cast<std::size_t>(i)]);
        }
      }
    }
    for (std::size_t i = 0; i < targets.size(); ++i) {
      gb_.drive(targets[i], result[i], c.line);
    }
  }

  void do_selected_assign(const Concurrent& c, Env& env) {
    std::vector<SignalId> targets = eval_target(*c.target, env);
    const int w = static_cast<int>(targets.size());
    Value sel = eval(*c.selector, env, nullptr);
    require_bits(sel, c.line);

    std::vector<Bit> result;
    bool have_result = false;
    // Process in reverse; "others" (empty choices) acts as the base.
    for (auto it = c.selected.rbegin(); it != c.selected.rend(); ++it) {
      std::vector<Bit> v = eval_rhs(*it->value, w, env, nullptr);
      if (it->choices.empty()) {
        result = std::move(v);
        have_result = true;
        continue;
      }
      if (!have_result) {
        synth_fail(c.line, "selected assignment needs a 'when others'");
      }
      Bit match = Bit::constant(false);
      for (const auto& choice : it->choices) {
        match = gb_.b_or(match, selector_equals(sel, *choice, env));
      }
      for (int i = 0; i < w; ++i) {
        result[static_cast<std::size_t>(i)] =
            gb_.b_mux(match, result[static_cast<std::size_t>(i)],
                      v[static_cast<std::size_t>(i)]);
      }
    }
    for (std::size_t i = 0; i < targets.size(); ++i) {
      gb_.drive(targets[i], result[i], c.line);
    }
  }

  Bit selector_equals(const Value& sel, const Expr& choice, const Env& env) {
    Value cv = eval(choice, env, nullptr);
    Value sel_copy = sel;
    harmonize(sel_copy, cv, choice.line);
    Bit eq = Bit::constant(true);
    for (int i = 0; i < sel_copy.width(); ++i) {
      eq = gb_.b_and(eq, gb_.b_not(gb_.b_xor(
                             sel_copy.bits[static_cast<std::size_t>(i)],
                             cv.bits[static_cast<std::size_t>(i)])));
    }
    return eq;
  }

  // --------------------------------------------------------- instances --
  void do_instance(const Concurrent& c, Env& env, const std::string& prefix) {
    const Entity* ent = design_->find_entity(c.entity_name);
    if (ent == nullptr) {
      synth_fail(c.line, "unknown entity: " + c.entity_name);
    }
    const Architecture* arch = design_->find_architecture(ent->name);
    if (arch == nullptr) {
      synth_fail(c.line, "no architecture for entity: " + ent->name);
    }
    if (++instance_depth_ > 64) {
      synth_fail(c.line, "instantiation recursion too deep");
    }

    Env child_env;
    for (const Port& p : ent->ports) {
      const Expr* actual = nullptr;
      for (const auto& [formal, expr] : c.port_map) {
        if (formal == p.name) {
          actual = expr.get();
          break;
        }
      }
      BoundSignal bs;
      bs.type = p.type;
      if (p.is_input) {
        if (actual == nullptr) {
          synth_fail(c.line, "input port not mapped: " + p.name);
        }
        // Evaluate the actual in the parent and materialize as signals.
        std::vector<Bit> bits =
            eval_rhs(*actual, p.type.width(), env, nullptr);
        for (const Bit& b : bits) bs.bits.push_back(gb_.materialize(b));
        // Inside the child these are read-only.
        bs.is_port_input = true;
      } else {
        if (actual == nullptr) {
          // open: fresh dangling signals.
          for (int i = 0; i < p.type.width(); ++i) {
            bs.bits.push_back(gb_.fresh(prefix + c.label + "_" + p.name));
          }
        } else {
          bs.bits = eval_target(*actual, env);
          if (static_cast<int>(bs.bits.size()) != p.type.width()) {
            synth_fail(c.line, "port width mismatch on " + p.name);
          }
        }
      }
      child_env.emplace(p.name, std::move(bs));
    }
    elaborate_architecture(*arch, child_env, prefix + c.label + "_");
    --instance_depth_;
  }

  // --------------------------------------------------------- processes --
  bool is_edge_condition(const Expr& e, std::string* clock_name) {
    // rising_edge(clk)
    if (e.kind == ExprKind::kCall && e.name == "rising_edge" &&
        e.args.size() == 1 && e.args[0]->kind == ExprKind::kName) {
      *clock_name = e.args[0]->name;
      return true;
    }
    // clk'event and clk = '1'
    if (e.kind == ExprKind::kBinary && e.name == "and") {
      const Expr* ev = nullptr;
      const Expr* cmp = nullptr;
      if (e.args[0]->kind == ExprKind::kAttribute) {
        ev = e.args[0].get();
        cmp = e.args[1].get();
      } else if (e.args[1]->kind == ExprKind::kAttribute) {
        ev = e.args[1].get();
        cmp = e.args[0].get();
      }
      if (ev != nullptr && ev->name == "event" &&
          ev->args[0]->kind == ExprKind::kName && cmp != nullptr &&
          cmp->kind == ExprKind::kBinary && cmp->name == "=" &&
          cmp->args[0]->kind == ExprKind::kName &&
          cmp->args[1]->kind == ExprKind::kCharLit &&
          cmp->args[1]->text == "1" &&
          cmp->args[0]->name == ev->args[0]->name) {
        *clock_name = ev->args[0]->name;
        return true;
      }
    }
    return false;
  }

  void do_process(const Concurrent& c, Env& env, const std::string& prefix) {
    (void)prefix;
    // Clocked-process pattern: the body is a single if statement whose
    // first or second branch condition is a clock edge.
    if (c.body.size() == 1 && c.body[0]->kind == StmtKind::kIf) {
      const Stmt& s = *c.body[0];
      std::string clock;
      // Pattern A: if rising_edge(clk) then ... end if;
      if (!s.branches.empty() && s.branches[0].condition != nullptr &&
          is_edge_condition(*s.branches[0].condition, &clock)) {
        if (s.branches.size() > 1) {
          synth_fail(s.line, "else branch after a clock edge is not "
                             "synthesizable");
        }
        synth_clocked(c, env, clock, /*reset_cond=*/nullptr,
                      /*reset_body=*/nullptr, &s.branches[0].body);
        return;
      }
      // Pattern B: if <reset> then ... elsif rising_edge(clk) then ... end if
      if (s.branches.size() == 2 && s.branches[0].condition != nullptr &&
          s.branches[1].condition != nullptr &&
          is_edge_condition(*s.branches[1].condition, &clock)) {
        synth_clocked(c, env, clock, s.branches[0].condition.get(),
                      &s.branches[0].body, &s.branches[1].body);
        return;
      }
    }
    synth_combinational(c, env);
  }

  AssignMap exec_block(const std::vector<StmtPtr>& stmts, const Env& env,
                       AssignMap current, bool reads_see_updates) {
    for (const StmtPtr& sp : stmts) {
      const Stmt& s = *sp;
      const AssignMap* local = reads_see_updates ? &current : nullptr;
      switch (s.kind) {
        case StmtKind::kNull:
          break;
        case StmtKind::kAssign: {
          apply_assign(s, env, current, local);
          break;
        }
        case StmtKind::kIf: {
          current = exec_if(s, env, std::move(current), reads_see_updates);
          break;
        }
        case StmtKind::kCase: {
          current = exec_case(s, env, std::move(current), reads_see_updates);
          break;
        }
      }
    }
    return current;
  }

  void apply_assign(const Stmt& s, const Env& env, AssignMap& current,
                    const AssignMap* local) {
    // Identify target signal + bit range.
    const Expr& t = *s.target;
    std::string name;
    long long lo_off = 0;
    int width = 0;
    auto it = env.end();
    if (t.kind == ExprKind::kName) {
      name = t.name;
      it = const_cast<Env&>(env).find(name);
      if (it == env.end()) synth_fail(t.line, "unknown signal: " + name);
      width = static_cast<int>(it->second.bits.size());
      lo_off = 0;
    } else if (t.kind == ExprKind::kIndex) {
      name = t.name;
      it = const_cast<Env&>(env).find(name);
      if (it == env.end()) synth_fail(t.line, "unknown signal: " + name);
      long long idx = eval_static_int(*t.args[0], env);
      const auto& ty = it->second.type;
      lo_off = ty.downto ? idx - ty.right : idx - ty.left;
      width = 1;
    } else if (t.kind == ExprKind::kSlice) {
      name = t.name;
      it = const_cast<Env&>(env).find(name);
      if (it == env.end()) synth_fail(t.line, "unknown signal: " + name);
      long long a = eval_static_int(*t.args[0], env);
      long long b = eval_static_int(*t.args[1], env);
      const auto& ty = it->second.type;
      long long lo = ty.downto ? b : a;
      lo_off = ty.downto ? lo - ty.right : lo - ty.left;
      width = static_cast<int>(ty.downto ? a - b + 1 : b - a + 1);
    } else {
      synth_fail(t.line, "unsupported assignment target");
    }
    if (it->second.is_port_input) {
      synth_fail(t.line, "cannot assign to input port: " + name);
    }
    if (lo_off < 0 ||
        lo_off + width > static_cast<long long>(it->second.bits.size())) {
      synth_fail(t.line, "assignment range out of bounds");
    }

    std::vector<Bit> bits = eval_rhs(*s.value, width, env, local);
    auto& slot = current[name];
    if (slot.empty()) slot.resize(it->second.bits.size());
    for (int i = 0; i < width; ++i) {
      slot[static_cast<std::size_t>(lo_off + i)] =
          bits[static_cast<std::size_t>(i)];
    }
  }

  AssignMap exec_if(const Stmt& s, const Env& env, AssignMap current,
                    bool reads_see_updates) {
    // Build else-first, then fold branches from the back.
    // result = branch0.cond ? exec(branch0) : (branch1.cond ? ... : base)
    const AssignMap* local = reads_see_updates ? &current : nullptr;
    std::vector<Bit> conds;
    std::vector<AssignMap> results;
    bool has_else = false;
    AssignMap else_map = current;
    for (const IfBranch& b : s.branches) {
      if (b.condition == nullptr) {
        has_else = true;
        else_map = exec_block(b.body, env, current, reads_see_updates);
      } else {
        conds.push_back(eval_condition(*b.condition, env, local));
        results.push_back(exec_block(b.body, env, current, reads_see_updates));
      }
    }
    (void)has_else;
    AssignMap merged = std::move(else_map);
    for (int i = static_cast<int>(conds.size()) - 1; i >= 0; --i) {
      merged = merge_assign_maps(conds[static_cast<std::size_t>(i)],
                                 results[static_cast<std::size_t>(i)], merged,
                                 env, s.line);
    }
    return merged;
  }

  AssignMap exec_case(const Stmt& s, const Env& env, AssignMap current,
                      bool reads_see_updates) {
    const AssignMap* local = reads_see_updates ? &current : nullptr;
    Value sel = eval(*s.selector, env, local);
    require_bits(sel, s.line);

    AssignMap merged = current;
    bool saw_others = false;
    std::vector<std::pair<Bit, AssignMap>> arms;
    for (const CaseArm& arm : s.arms) {
      AssignMap r = exec_block(arm.body, env, current, reads_see_updates);
      if (arm.choices.empty()) {
        saw_others = true;
        merged = std::move(r);
      } else {
        Bit match = Bit::constant(false);
        for (const auto& choice : arm.choices) {
          match = gb_.b_or(match, selector_equals(sel, *choice, env));
        }
        arms.push_back({match, std::move(r)});
      }
    }
    (void)saw_others;
    for (int i = static_cast<int>(arms.size()) - 1; i >= 0; --i) {
      merged = merge_assign_maps(arms[static_cast<std::size_t>(i)].first,
                                 arms[static_cast<std::size_t>(i)].second,
                                 merged, env, s.line);
    }
    return merged;
  }

  /// merged = cond ? then_map : else_map, per target bit. A bit assigned on
  /// one side only falls back to that side's base (the other side's value
  /// or "keep", represented by nullopt → resolved by the caller).
  AssignMap merge_assign_maps(Bit cond, const AssignMap& then_map,
                              const AssignMap& else_map, const Env& env,
                              int line) {
    AssignMap out;
    auto names = std::map<std::string, bool>();
    for (const auto& [n, v] : then_map) names[n] = true;
    for (const auto& [n, v] : else_map) names[n] = true;
    for (const auto& [name, unused] : names) {
      (void)unused;
      auto ti = then_map.find(name);
      auto ei = else_map.find(name);
      std::size_t width = env.at(name).bits.size();
      std::vector<std::optional<Bit>> merged(width);
      for (std::size_t i = 0; i < width; ++i) {
        std::optional<Bit> tv =
            ti != then_map.end() && i < ti->second.size() ? ti->second[i]
                                                          : std::nullopt;
        std::optional<Bit> ev =
            ei != else_map.end() && i < ei->second.size() ? ei->second[i]
                                                          : std::nullopt;
        if (!tv.has_value() && !ev.has_value()) {
          continue;
        }
        if (tv.has_value() && ev.has_value()) {
          merged[i] = gb_.b_mux(cond, *ev, *tv);
        } else if (tv.has_value()) {
          // Assigned only when cond: the else path keeps the old value —
          // a latch in combinational context, handled at finalization by
          // requiring full assignment; in clocked context "keep" means the
          // register holds, so feed back Q.
          merged[i] = gb_.b_mux(cond, Bit::signal(env.at(name).bits[i]), *tv);
          partial_targets_.insert(name + "#" + std::to_string(i));
          (void)line;
        } else {
          merged[i] = gb_.b_mux(cond, *ev, Bit::signal(env.at(name).bits[i]));
          partial_targets_.insert(name + "#" + std::to_string(i));
        }
      }
      out[name] = std::move(merged);
    }
    return out;
  }

  void synth_clocked(const Concurrent& c, Env& env, const std::string& clock,
                     const Expr* reset_cond,
                     const std::vector<StmtPtr>* reset_body,
                     const std::vector<StmtPtr>* body) {
    auto clk_it = env.find(clock);
    if (clk_it == env.end()) synth_fail(c.line, "unknown clock: " + clock);
    SignalId clk_sig = clk_it->second.bits[0];

    partial_targets_.clear();
    AssignMap next =
        exec_block(*body, env, AssignMap{}, /*reads_see_updates=*/false);

    // Reset values (must be constants) applied as a synchronous mux +
    // latch init.
    AssignMap reset_map;
    Bit rst = Bit::constant(false);
    if (reset_cond != nullptr) {
      rst = eval_condition(*reset_cond, env, nullptr);
      reset_map = exec_block(*reset_body, env, AssignMap{},
                             /*reads_see_updates=*/false);
    }

    for (auto& [name, bits] : next) {
      const BoundSignal& bs = env.at(name);
      for (std::size_t i = 0; i < bits.size(); ++i) {
        if (!bits[i].has_value()) continue;  // bit never assigned: no FF
        SignalId q = bs.bits[i];
        Bit d = *bits[i];
        LatchInit init = LatchInit::kZero;
        if (reset_cond != nullptr) {
          auto ri = reset_map.find(name);
          if (ri != reset_map.end() && i < ri->second.size() &&
              ri->second[i].has_value()) {
            const Bit& rv = *ri->second[i];
            if (!rv.is_const) {
              synth_fail(c.line, "reset value must be constant for " + name);
            }
            init = rv.const_val ? LatchInit::kOne : LatchInit::kZero;
            d = gb_.b_mux(rst, d, rv);
          }
        }
        // New intermediate D signal; the latch drives q.
        SignalId d_sig = gb_.materialize(d);
        net_.add_latch(name + "_" + std::to_string(i) + "_ff", d_sig, q,
                       clk_sig, init);
      }
    }
    // Registers assigned only in the reset branch but not in the body.
    if (reset_cond != nullptr) {
      for (auto& [name, bits] : reset_map) {
        if (next.count(name)) continue;
        const BoundSignal& bs = env.at(name);
        for (std::size_t i = 0; i < bits.size(); ++i) {
          if (!bits[i].has_value()) continue;
          const Bit& rv = *bits[i];
          if (!rv.is_const) synth_fail(c.line, "reset value must be constant");
          SignalId q = bs.bits[i];
          Bit d = gb_.b_mux(rst, Bit::signal(q), rv);
          net_.add_latch(name + "_" + std::to_string(i) + "_ff",
                         gb_.materialize(d), q, clk_sig,
                         rv.const_val ? LatchInit::kOne : LatchInit::kZero);
        }
      }
    }
  }

  void synth_combinational(const Concurrent& c, Env& env) {
    partial_targets_.clear();
    AssignMap result =
        exec_block(c.body, env, AssignMap{}, /*reads_see_updates=*/true);
    for (auto& [name, bits] : result) {
      const BoundSignal& bs = env.at(name);
      for (std::size_t i = 0; i < bits.size(); ++i) {
        if (!bits[i].has_value()) continue;
        if (partial_targets_.count(name + "#" + std::to_string(i))) {
          synth_fail(c.line,
                     "signal '" + name + "' is not assigned on every path "
                     "of a combinational process (latch inference is not "
                     "supported)");
        }
        gb_.drive(bs.bits[i], *bits[i], c.line);
      }
    }
  }

  const DesignFile* design_;
  Network& net_;
  GateBuilder gb_;
  int instance_depth_ = 0;
  std::set<std::string> partial_targets_;
};

}  // namespace

Network synthesize(const DesignFile& design, const std::string& top) {
  obs::Span span("vhdl.synth");
  Network net;
  Elaborator elab(design, net);
  elab.elaborate_top(top);
  net.validate();
  static obs::Counter& c_gates = obs::counter("vhdl.gates");
  static obs::Counter& c_latches = obs::counter("vhdl.latches");
  c_gates.add(net.gates().size());
  c_latches.add(net.latches().size());
  if (span.active()) {
    span.metric("gates", static_cast<double>(net.gates().size()));
    span.metric("latches", static_cast<double>(net.latches().size()));
  }
  return net;
}

Network synthesize_vhdl(const std::string& source, const std::string& top,
                        const std::string& filename) {
  DesignFile df = parse_vhdl(source, filename);
  return synthesize(df, top);
}

}  // namespace amdrel::vhdl

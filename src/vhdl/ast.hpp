#pragma once
// AST for the synthesizable VHDL-93 subset (see DESIGN.md §10 for scope).

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace amdrel::vhdl {

// ------------------------------------------------------------ expressions --

enum class ExprKind {
  kName,        // identifier
  kIndex,       // name(expr)
  kSlice,       // name(hi downto lo) / name(lo to hi)
  kCharLit,     // '0' / '1'
  kStringLit,   // "0101"
  kIntLit,      // 42
  kUnary,       // not / - (op in `name`)
  kBinary,      // and or xor nand nor xnor = /= < <= > >= + - & * (op in `name`)
  kCall,        // rising_edge(clk), falling_edge(clk)
  kAttribute,   // clk'event
  kOthers,      // (others => '0'/'1'), literal bit in `text`
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  int line = 0;
  std::string name;            // identifier / operator / function / attribute
  std::string text;            // char or string literal value
  long long value = 0;         // integer literal
  bool downto = true;          // slice direction
  std::vector<ExprPtr> args;   // operands

  static ExprPtr make(ExprKind kind, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = line;
    return e;
  }
};

// ------------------------------------------------------------- statements --

enum class StmtKind { kAssign, kIf, kCase, kNull };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct IfBranch {
  ExprPtr condition;            // null for the final else
  std::vector<StmtPtr> body;
};

struct CaseArm {
  std::vector<ExprPtr> choices;  // empty = others
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  // kAssign
  ExprPtr target;
  ExprPtr value;
  // kIf
  std::vector<IfBranch> branches;  // first has condition; trailing may be else
  // kCase
  ExprPtr selector;
  std::vector<CaseArm> arms;
};

// ------------------------------------------------------------ declarations --

struct TypeRef {
  bool is_vector = false;
  // Bounds are integer literals in the subset.
  long long left = 0, right = 0;
  bool downto = true;
  int width() const {
    if (!is_vector) return 1;
    return static_cast<int>(downto ? left - right + 1 : right - left + 1);
  }
};

struct Port {
  std::string name;
  bool is_input = true;
  TypeRef type;
  int line = 0;
};

struct SignalDecl {
  std::string name;
  TypeRef type;
  int line = 0;
};

/// One concurrent statement in an architecture body.
enum class ConcurrentKind { kAssign, kConditional, kSelected, kProcess,
                            kInstance };

struct ConditionalChoice {
  ExprPtr value;
  ExprPtr condition;  // null for the trailing unconditional else
};

struct SelectedChoice {
  std::vector<ExprPtr> choices;  // empty = others
  ExprPtr value;
};

struct Concurrent {
  ConcurrentKind kind;
  int line = 0;
  std::string label;

  // kAssign / kConditional / kSelected
  ExprPtr target;
  ExprPtr value;                               // kAssign
  std::vector<ConditionalChoice> conditional;  // kConditional
  ExprPtr selector;                            // kSelected
  std::vector<SelectedChoice> selected;        // kSelected

  // kProcess
  std::vector<std::string> sensitivity;
  std::vector<StmtPtr> body;

  // kInstance
  std::string entity_name;
  std::vector<std::pair<std::string, ExprPtr>> port_map;  // formal → actual
};

struct Entity {
  std::string name;
  std::vector<Port> ports;
  int line = 0;
};

struct Architecture {
  std::string name;
  std::string entity_name;
  std::vector<SignalDecl> signals;
  std::vector<Concurrent> body;
  int line = 0;
};

struct DesignFile {
  std::vector<Entity> entities;
  std::vector<Architecture> architectures;

  const Entity* find_entity(const std::string& name) const;
  const Architecture* find_architecture(const std::string& entity) const;
};

}  // namespace amdrel::vhdl

#pragma once
// VHDL-93 subset lexer.
//
// Produces a token stream with source locations; identifiers are stored
// lower-cased (VHDL is case-insensitive) with the original spelling kept
// for error messages.

#include <string>
#include <vector>

namespace amdrel::vhdl {

enum class TokenKind {
  kIdentifier,   // foo, rising_edge (keywords are identifiers classified later)
  kInteger,      // 42
  kCharLit,      // '0' '1'
  kStringLit,    // "0101"
  kSymbol,       // punctuation / operators: ( ) ; , : . & ' <= => := = /= < > >= + - * / |
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;   ///< lower-cased for identifiers; raw for others
  int line;
  int column;
};

/// Tokenizes `source`; throws ParseError on malformed input.
std::vector<Token> lex_vhdl(const std::string& source,
                            const std::string& filename = "<vhdl>");

}  // namespace amdrel::vhdl

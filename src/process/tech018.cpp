#include "process/tech018.hpp"

#include "util/error.hpp"

namespace amdrel::process {

double Tech018::transistor_area_um2(double w_um) const {
  AMDREL_CHECK(w_um > 0);
  // Gate area plus two diffusion regions of length ~0.48 µm (contacted),
  // matching the VPR "minimum-width transistor area" style of accounting.
  const double diff_len = 0.48;
  return w_um * (l_min_um + 2.0 * diff_len);
}

WireModel Tech018::wire(WireWidth w, WireSpacing s) const {
  const double width =
      (w == WireWidth::kMinimum) ? m3_width_min_um : 2.0 * m3_width_min_um;
  const double spacing =
      (s == WireSpacing::kMinimum) ? m3_spacing_min_um : 2.0 * m3_spacing_min_um;

  WireModel m{};
  m.r_per_um = m3_sheet_ohm / width;
  // Lateral coupling falls off roughly inversely with spacing; two neighbours.
  const double couple =
      2.0 * m3_c_couple_min * (m3_spacing_min_um / spacing);
  m.c_per_um = m3_c_area * width + 2.0 * m3_c_fringe + couple;
  m.pitch_um = width + spacing;
  return m;
}

double Tech018::gate_cap(const MosfetParams& p, double w_um) const {
  const double w_m = w_um * 1e-6;
  const double l_m = l_min_um * 1e-6;
  return p.cox_area * w_m * l_m + 2.0 * p.c_overlap * w_m;
}

double Tech018::junction_cap(const MosfetParams& p, double w_um) const {
  return p.c_junction * (w_um * 1e-6);
}

const Tech018& default_tech() {
  static const Tech018 tech{};
  return tech;
}

}  // namespace amdrel::process

#pragma once
// Generic 0.18 µm CMOS process description.
//
// Substitutes for the STM 0.18 µm 6-metal PDK the paper used (DESIGN.md §1).
// Values are public-knowledge "generic 0.18 µm" numbers: they reproduce the
// relative energy/delay/area behaviour the paper's explorations depend on,
// not STM-confidential absolutes.

namespace amdrel::process {

/// MOSFET level-1 (Shichman–Hodges) parameters for one device polarity.
struct MosfetParams {
  double vth;        ///< threshold voltage [V] (negative for PMOS)
  double kp;         ///< transconductance µCox [A/V^2]
  double lambda;     ///< channel-length modulation [1/V]
  double cox_area;   ///< gate-oxide capacitance [F/m^2]
  double c_overlap;  ///< gate-source/drain overlap cap [F/m of width]
  double c_junction; ///< source/drain junction cap [F/m of width]
  double i_leak;     ///< subthreshold leakage at W=Wmin [A]
};

/// Interconnect wire geometry options explored in the paper (Figs 8–10).
enum class WireWidth { kMinimum, kDouble };
enum class WireSpacing { kMinimum, kDouble };

/// Per-unit-length electricals of a metal-3 route.
struct WireModel {
  double r_per_um;  ///< resistance [ohm/µm]
  double c_per_um;  ///< total capacitance to neighbours+ground [F/µm]
  double pitch_um;  ///< width + spacing [µm] (area model)
};

/// The process container; defaults model a generic 6-metal 0.18 µm node.
struct Tech018 {
  double vdd = 1.8;              ///< supply [V]
  double l_min_um = 0.18;        ///< minimum drawn channel length [µm]
  double w_min_um = 0.28;        ///< minimum contacted width [µm] (paper §3.3.2)
  double temp_c = 25.0;

  MosfetParams nmos{
      /*vth=*/0.45, /*kp=*/170e-6, /*lambda=*/0.08,
      /*cox_area=*/8.4e-3, /*c_overlap=*/3.6e-10, /*c_junction=*/4.5e-10,
      /*i_leak=*/20e-12};
  MosfetParams pmos{
      /*vth=*/-0.45, /*kp=*/58e-6, /*lambda=*/0.10,
      /*cox_area=*/8.4e-3, /*c_overlap=*/3.6e-10, /*c_junction=*/5.0e-10,
      /*i_leak=*/10e-12};

  // Metal-3 baseline geometry (chosen by the paper for its low capacitance).
  double m3_width_min_um = 0.28;
  double m3_spacing_min_um = 0.28;
  double m3_sheet_ohm = 0.075;     ///< sheet resistance [ohm/sq]
  double m3_c_area = 0.040e-15;    ///< area cap [F/µm^2] (to layers above/below)
  double m3_c_fringe = 0.020e-15;  ///< fringe cap [F/µm per edge]
  double m3_c_couple_min = 0.080e-15;  ///< coupling at min spacing [F/µm per side]

  /// Physical span of one CLB tile (logical length 1 wire) [µm].
  /// Sized for the paper's N=5, K=4 cluster in 0.18 µm.
  double clb_tile_span_um = 120.0;

  /// Layout area of a transistor of width w (µm), VPR minimum-width-area
  /// style metric [µm^2]. Includes diffusion contacts.
  double transistor_area_um2(double w_um) const;

  /// Wire electricals for a geometry option.
  WireModel wire(WireWidth w, WireSpacing s) const;

  /// Gate capacitance of a device of width w_um, length l_min [F].
  double gate_cap(const MosfetParams& p, double w_um) const;

  /// Junction (drain or source) capacitance of a device of width w_um [F].
  double junction_cap(const MosfetParams& p, double w_um) const;
};

/// The framework-wide default process instance.
const Tech018& default_tech();

}  // namespace amdrel::process

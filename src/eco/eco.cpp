#include "eco/eco.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "synth/opt.hpp"
#include "util/error.hpp"

namespace amdrel::eco {

namespace {

using netlist::kNoSignal;
using netlist::Network;
using netlist::SignalId;

void throw_if_cancelled(const EcoOptions& options) {
  if (options.route.cancel != nullptr &&
      options.route.cancel->load(std::memory_order_acquire)) {
    throw CancelledError("ECO recompile cancelled");
  }
}

std::set<std::string> signal_names(const Network& net,
                                   const std::vector<SignalId>& sigs) {
  std::set<std::string> out;
  for (SignalId s : sigs) out.insert(net.signal_name(s));
  return out;
}

std::vector<std::string> fanin_names(const Network& net,
                                     const netlist::Gate& g) {
  std::vector<std::string> out;
  out.reserve(g.inputs.size());
  for (SignalId s : g.inputs) out.push_back(net.signal_name(s));
  return out;
}

/// LUT levels on the longest PI/FF → PO/FF path of a mapped network.
int lut_depth(const Network& net) {
  std::vector<int> level(static_cast<std::size_t>(net.num_signals()), 0);
  int depth = 0;
  for (int gi : net.topo_order()) {
    const netlist::Gate& g = net.gates()[static_cast<std::size_t>(gi)];
    int lv = 0;
    for (SignalId s : g.inputs) {
      lv = std::max(lv, level[static_cast<std::size_t>(s)]);
    }
    level[static_cast<std::size_t>(g.output)] = lv + 1;
    depth = std::max(depth, lv + 1);
  }
  return depth;
}

// ---------------------------------------------------------------------------
// Stage 2 of the ECO pipeline: patch-based incremental LUT mapping.
//
// A base-mapped LUT implements its output as a fixed function of its leaf
// signals; that implementation stays correct in the edited design as long
// as no cell in its *local cone* — the entry gates between its leaves and
// its output — changed. Upstream edits only change leaf values, which
// composition handles, so a LUT is dirty only when a dirty entry gate sits
// inside its own cone.
//
// The pre-map rewrite (synth::propagate_constants) renames every internal
// signal it emits to "<hint>_r<n>", where the hint is the name of the
// source signal the gate descends from (itself possibly decorated by an
// earlier rewrite pass). Stripping "_r<digits>" suffixes therefore recovers
// the entry-network signal behind a mapped-space name; the resolution is
// only trusted when exactly one strip depth names an entry signal.
class OriginResolver {
 public:
  explicit OriginResolver(const Network& entry) : entry_(&entry) {}

  /// Entry-network name behind a mapped-space name, or "" when it cannot
  /// be recovered unambiguously.
  const std::string& resolve(const std::string& name) {
    auto it = memo_.find(name);
    if (it != memo_.end()) return it->second;
    std::string hit;
    int hits = 0;
    std::string probe = name;
    for (;;) {
      if (entry_->find_signal(probe) != kNoSignal) {
        hit = probe;
        ++hits;
      }
      const std::size_t pos = probe.rfind("_r");
      if (pos == std::string::npos || pos + 2 >= probe.size()) break;
      bool digits = true;
      for (std::size_t i = pos + 2; i < probe.size(); ++i) {
        digits = digits && std::isdigit(static_cast<unsigned char>(probe[i]));
      }
      if (!digits) break;
      probe.erase(pos);
    }
    if (hits != 1) hit.clear();
    return memo_.emplace(name, std::move(hit)).first->second;
  }

 private:
  const Network* entry_;
  std::map<std::string, std::string> memo_;
};

/// Per-LUT cone verdict against the base entry network.
struct LutCone {
  bool clean = false;     ///< local cone free of dirty entry gates
  bool is_const = false;  ///< 0-input LUT: no cone, trivially clean
  SignalId out_entry = kNoSignal;    ///< resolved origin (kNoSignal: none)
  std::vector<SignalId> leaf_entry;  ///< parallel to the LUT's inputs
};

std::unique_ptr<Network> try_patch_map(const Network& edited,
                                       const Network& base_entry,
                                       const Network& base_mapped,
                                       const NetlistDiff& diff,
                                       const synth::LutMapOptions& lopt,
                                       int* luts_reused) {
  // Dirty entry gates: removed, retuned or rewired base cells.
  std::vector<char> gate_dirty(base_entry.gates().size(), 0);
  auto mark = [&](const std::string& name) {
    const SignalId s = base_entry.find_signal(name);
    if (s == kNoSignal) return;
    const int gi = base_entry.driver_gate(s);
    if (gi >= 0) gate_dirty[static_cast<std::size_t>(gi)] = 1;
  };
  for (const std::string& n : diff.removed) mark(n);
  for (const std::string& n : diff.retuned) mark(n);
  for (const std::string& n : diff.rewired) mark(n);

  // Classify each base LUT by walking its local cone in the raw entry
  // network from its resolved output origin down to its resolved leaves.
  // The pre-map optimizations only ever remove entry edges, so the raw
  // cone over-approximates the gates whose functions the LUT's table
  // absorbed — a folded-away constant driver is still reached and its
  // dirt detected. Unresolvable signals leave the LUT conservatively
  // un-clean.
  OriginResolver origin(base_entry);
  std::vector<LutCone> cones(base_mapped.gates().size());
  {
    std::vector<int> visited_epoch(base_entry.gates().size(), -1);
    std::vector<int> stack;
    for (std::size_t mi = 0; mi < base_mapped.gates().size(); ++mi) {
      const netlist::Gate& lut = base_mapped.gates()[mi];
      LutCone& cone = cones[mi];
      // A zero-input LUT is a constant the optimizer folded out of base
      // logic; its cone is the ENTIRE fanin of its origin (walked below
      // with an empty leaf set) — an edit anywhere in the folded logic
      // invalidates the constant.
      if (lut.inputs.empty()) cone.is_const = true;
      const std::string& out_name =
          origin.resolve(base_mapped.signal_name(lut.output));
      if (out_name.empty()) continue;
      cone.out_entry = base_entry.find_signal(out_name);
      bool ok = true;
      for (SignalId in : lut.inputs) {
        const std::string& leaf_name =
            origin.resolve(base_mapped.signal_name(in));
        if (leaf_name.empty()) {
          ok = false;
          break;
        }
        cone.leaf_entry.push_back(base_entry.find_signal(leaf_name));
      }
      const int root_gate = base_entry.driver_gate(cone.out_entry);
      if (!ok || root_gate < 0) {
        cone.out_entry = kNoSignal;
        cone.leaf_entry.clear();
        continue;
      }
      const std::set<SignalId> leaves(cone.leaf_entry.begin(),
                                      cone.leaf_entry.end());
      stack.clear();
      stack.push_back(root_gate);
      visited_epoch[static_cast<std::size_t>(root_gate)] =
          static_cast<int>(mi);
      bool clean = true;
      while (!stack.empty() && clean) {
        const int gi = stack.back();
        stack.pop_back();
        if (gate_dirty[static_cast<std::size_t>(gi)]) {
          clean = false;
          break;
        }
        for (SignalId in : base_entry.gates()[static_cast<std::size_t>(gi)]
                               .inputs) {
          if (leaves.count(in)) continue;
          const int di = base_entry.driver_gate(in);
          if (di < 0 ||
              visited_epoch[static_cast<std::size_t>(di)] ==
                  static_cast<int>(mi)) {
            continue;  // leaf, PI, FF output, or already walked
          }
          visited_epoch[static_cast<std::size_t>(di)] = static_cast<int>(mi);
          stack.push_back(di);
        }
      }
      cone.clean = clean;
    }
  }

  const std::set<std::string> edited_pis = signal_names(edited, edited.inputs());
  std::set<std::string> edited_ffs;
  for (const netlist::Latch& l : edited.latches()) {
    edited_ffs.insert(edited.signal_name(l.q));
  }

  // Exact path for structure-preserving edits (truth-table retunes only):
  // copy the base mapping wholesale and recompute just the dirty LUTs'
  // tables by evaluating the edited cone over each LUT's leaves. The
  // result is structurally identical to the base, so packing, placement
  // and routing reuse is total. Bails to the general patch when an edited
  // cone no longer folds to the old leaf cut.
  if (diff.removed.empty() && diff.rewired.empty() && diff.added.empty()) {
    auto exact = [&]() -> std::unique_ptr<Network> {
      std::vector<netlist::TruthTable> tables;
      tables.reserve(base_mapped.gates().size());
      int reused = 0;
      for (std::size_t mi = 0; mi < base_mapped.gates().size(); ++mi) {
        const netlist::Gate& lut = base_mapped.gates()[mi];
        const LutCone& cone = cones[mi];
        if (cone.clean) {
          tables.push_back(lut.table);
          ++reused;
          continue;
        }
        if (cone.out_entry == kNoSignal) return nullptr;
        std::map<SignalId, int> leaf_pos;  // edited signal → LUT input
        for (std::size_t i = 0; i < cone.leaf_entry.size(); ++i) {
          const SignalId es = edited.find_signal(
              base_entry.signal_name(cone.leaf_entry[i]));
          if (es == kNoSignal ||
              !leaf_pos.emplace(es, static_cast<int>(i)).second) {
            return nullptr;
          }
        }
        const SignalId eo =
            edited.find_signal(base_entry.signal_name(cone.out_entry));
        if (eo == kNoSignal) return nullptr;
        // Non-leaf terminals the raw edited cone can reach (the base
        // mapper pruned leaves its table ignored; constant folding cut
        // others): treat them as free variables and accept the recompute
        // only when the edited function is independent of all of them.
        std::map<SignalId, int> free_pos;
        std::uint64_t xrow = 0;
        const auto evaluate = [&](std::uint64_t row) -> int {
          std::map<SignalId, int> memo;
          const std::function<int(SignalId)> eval = [&](SignalId s) -> int {
            const auto lp = leaf_pos.find(s);
            if (lp != leaf_pos.end()) {
              return static_cast<int>((row >> lp->second) & 1u);
            }
            const auto mm = memo.find(s);
            if (mm != memo.end()) return mm->second;
            int v;
            const int gi = edited.driver_gate(s);
            if (gi < 0) {
              const auto fp =
                  free_pos.emplace(s, static_cast<int>(free_pos.size()));
              v = static_cast<int>((xrow >> fp.first->second) & 1u);
            } else {
              const netlist::Gate& g =
                  edited.gates()[static_cast<std::size_t>(gi)];
              std::uint64_t idx = 0;
              for (std::size_t i = 0; i < g.inputs.size(); ++i) {
                idx |= static_cast<std::uint64_t>(eval(g.inputs[i]) & 1)
                       << i;
              }
              v = g.table.eval(idx) ? 1 : 0;
            }
            memo.emplace(s, v);
            return v;
          };
          return eval(eo);
        };
        evaluate(0);  // inputs evaluate eagerly: one pass finds every free
        if (free_pos.size() > 8) return nullptr;  // cone blew up; re-map
        netlist::TruthTable table(static_cast<int>(lut.inputs.size()));
        for (std::uint64_t row = 0; row < table.n_rows(); ++row) {
          xrow = 0;
          const int v = evaluate(row);
          for (xrow = 1; xrow < (1ull << free_pos.size()); ++xrow) {
            if (evaluate(row) != v) return nullptr;  // real new dependence
          }
          table.set(row, v == 1);
        }
        tables.push_back(std::move(table));
      }

      auto mapped = std::make_unique<Network>(edited.name());
      for (SignalId s : edited.inputs()) {
        mapped->add_input(mapped->get_or_add_signal(edited.signal_name(s)));
      }
      for (std::size_t mi = 0; mi < base_mapped.gates().size(); ++mi) {
        const netlist::Gate& g = base_mapped.gates()[mi];
        std::vector<SignalId> ins;
        ins.reserve(g.inputs.size());
        for (SignalId in : g.inputs) {
          ins.push_back(
              mapped->get_or_add_signal(base_mapped.signal_name(in)));
        }
        mapped->add_gate(g.name, tables[mi], std::move(ins),
                         mapped->get_or_add_signal(
                             base_mapped.signal_name(g.output)));
      }
      for (const netlist::Latch& l : edited.latches()) {
        mapped->add_latch(
            l.name, mapped->get_or_add_signal(edited.signal_name(l.d)),
            mapped->get_or_add_signal(edited.signal_name(l.q)),
            l.clock != kNoSignal
                ? mapped->get_or_add_signal(edited.signal_name(l.clock))
                : kNoSignal,
            l.init);
      }
      for (SignalId s : edited.outputs()) {
        mapped->add_output(mapped->get_or_add_signal(edited.signal_name(s)));
      }
      try {
        mapped->validate();
      } catch (const Error&) {
        return nullptr;
      }
      *luts_reused = reused;
      return mapped;
    }();
    if (exact != nullptr) return exact;
  }

  // General patch. Clean LUTs are reachable two ways: by their mapped-
  // space output name (as leaves of other copied LUTs) and by their
  // entry-network origin (as fanins of re-mapped edited gates); keep an
  // index for each. When one origin has several clean representatives the
  // pinned one (mapped name == origin) wins for the origin index — every
  // clean representative computes the same edited-valid function, so the
  // choice only affects reuse, not correctness.
  std::map<std::string, int> clean_lut;      // mapped output name → LUT
  std::map<std::string, int> clean_by_orig;  // entry origin name → LUT
  for (std::size_t mi = 0; mi < base_mapped.gates().size(); ++mi) {
    if (!cones[mi].clean) continue;
    const std::string& mname =
        base_mapped.signal_name(base_mapped.gates()[mi].output);
    clean_lut[mname] = static_cast<int>(mi);
    if (cones[mi].is_const) continue;
    const std::string oname = base_entry.signal_name(cones[mi].out_entry);
    const auto [it, inserted] =
        clean_by_orig.emplace(oname, static_cast<int>(mi));
    if (!inserted && mname == oname) it->second = static_cast<int>(mi);
  }

  // Backward need-traversal from everything the design must drive: POs,
  // FF D inputs and FF clocks. A clean LUT satisfies a need and pushes
  // its leaves; a dirty signal descends through the edited network,
  // collecting the gates the patch must re-map. Dirty signals needed
  // *externally* (by a PO, FF or clean-LUT leaf, rather than only inside
  // the dirty region) become the patch's outputs. The traversal runs in
  // two name spaces — mapped names below copied LUTs, entry/edited names
  // below patched gates — bridged by in_alias (patched gates consuming a
  // copied LUT's origin read its mapped signal) and need_alias (a patched
  // signal also drives the mapped-space aliases copied LUTs expect).
  struct Item {
    std::string name;
    bool mapped_space;
    bool external;
  };
  std::vector<Item> work;
  for (SignalId s : edited.outputs()) {
    work.push_back({edited.signal_name(s), false, true});
  }
  for (const netlist::Latch& l : edited.latches()) {
    work.push_back({edited.signal_name(l.d), false, true});
    if (l.clock != kNoSignal) {
      work.push_back({edited.signal_name(l.clock), false, true});
    }
  }
  enum Cls { kAvail, kCopied, kDirty };
  std::map<std::string, Cls> cls;  // edited-space classification
  std::set<std::string> mapped_seen;
  std::set<int> copy_luts;           // base_mapped gate indices to copy
  std::set<int> patch_gates;         // edited gate indices to re-map
  std::set<std::string> patch_outs;  // externally needed dirty signals
  std::map<std::string, std::string> in_alias;  // edited → mapped name
  std::map<std::string, std::set<std::string>> need_alias;
  const auto push_copied_leaves = [&](int mi) {
    for (SignalId in :
         base_mapped.gates()[static_cast<std::size_t>(mi)].inputs) {
      work.push_back({base_mapped.signal_name(in), true, true});
    }
  };
  while (!work.empty()) {
    const Item item = work.back();
    work.pop_back();
    if (item.mapped_space) {
      if (!mapped_seen.insert(item.name).second) continue;
      if (edited_pis.count(item.name) || edited_ffs.count(item.name)) {
        continue;
      }
      if (const auto lt = clean_lut.find(item.name); lt != clean_lut.end()) {
        copy_luts.insert(lt->second);
        push_copied_leaves(lt->second);
        continue;
      }
      // Dirty mapped-space leaf: the patch must re-drive its origin and
      // alias it back under the mapped name the copied consumers use.
      const std::string& o = origin.resolve(item.name);
      if (o.empty()) return nullptr;
      if (o != item.name) need_alias[o].insert(item.name);
      work.push_back({o, false, true});
      continue;
    }
    auto it = cls.find(item.name);
    if (it == cls.end()) {
      Cls c;
      if (edited_pis.count(item.name) || edited_ffs.count(item.name)) {
        c = kAvail;
      } else if (const auto ct = clean_by_orig.find(item.name);
                 ct != clean_by_orig.end()) {
        c = kCopied;
        in_alias[item.name] = base_mapped.signal_name(
            base_mapped.gates()[static_cast<std::size_t>(ct->second)].output);
        copy_luts.insert(ct->second);
        push_copied_leaves(ct->second);
      } else {
        c = kDirty;
        const SignalId es = edited.find_signal(item.name);
        if (es == kNoSignal) return nullptr;  // base-only signal needed
        const int gi = edited.driver_gate(es);
        if (gi < 0) return nullptr;  // undriven non-PI (e.g. FF removed)
        patch_gates.insert(gi);
        for (SignalId in :
             edited.gates()[static_cast<std::size_t>(gi)].inputs) {
          work.push_back({edited.signal_name(in), false, false});
        }
      }
      it = cls.emplace(item.name, c).first;
    }
    if (it->second == kDirty && item.external) patch_outs.insert(item.name);
  }
  // A mapped-space alias whose origin turned out clean or available means
  // the origin resolution contradicted the cone verdicts — bail out.
  for (const auto& [o, aliases] : need_alias) {
    (void)aliases;
    if (cls.at(o) != kDirty) return nullptr;
  }

  // Extract the dirty sub-network from the edited design and re-map it.
  Network sub("eco_patch");
  synth::LutMapStats sub_stats;
  Network sub_mapped("eco_patch_mapped");
  if (!patch_gates.empty()) {
    std::set<std::string> sub_inputs;
    for (int gi : patch_gates) {
      for (SignalId in :
           edited.gates()[static_cast<std::size_t>(gi)].inputs) {
        const std::string& name = edited.signal_name(in);
        if (cls.at(name) != kDirty) sub_inputs.insert(name);
      }
    }
    for (const std::string& name : sub_inputs) {
      sub.add_input(sub.get_or_add_signal(name));
    }
    for (int gi : patch_gates) {  // std::set: ascending, deterministic
      const netlist::Gate& g = edited.gates()[static_cast<std::size_t>(gi)];
      std::vector<SignalId> ins;
      ins.reserve(g.inputs.size());
      for (SignalId in : g.inputs) {
        ins.push_back(sub.get_or_add_signal(edited.signal_name(in)));
      }
      sub.add_gate(g.name, g.table, std::move(ins),
                   sub.get_or_add_signal(edited.signal_name(g.output)));
    }
    for (const std::string& name : patch_outs) {
      sub.add_output(sub.get_or_add_signal(name));
    }
    try {
      sub.validate();
      sub_mapped = synth::map_to_luts(sub, lopt, &sub_stats);
    } catch (const Error&) {
      return nullptr;
    }
  }

  // Assemble: edited IO and FFs, copied clean cones (mapped names), the
  // re-mapped patch (edited names, bridged through the alias maps).
  auto mapped = std::make_unique<Network>(edited.name());
  std::set<std::string> driven;
  for (SignalId s : edited.inputs()) {
    mapped->add_input(mapped->get_or_add_signal(edited.signal_name(s)));
    driven.insert(edited.signal_name(s));
  }
  for (int gi : copy_luts) {
    const netlist::Gate& g =
        base_mapped.gates()[static_cast<std::size_t>(gi)];
    const std::string& out = base_mapped.signal_name(g.output);
    if (!driven.insert(out).second) return nullptr;
    std::vector<SignalId> ins;
    ins.reserve(g.inputs.size());
    for (SignalId in : g.inputs) {
      ins.push_back(mapped->get_or_add_signal(base_mapped.signal_name(in)));
    }
    mapped->add_gate(g.name, g.table, std::move(ins),
                     mapped->get_or_add_signal(out));
  }
  const auto patch_in_name = [&](const std::string& n) -> const std::string& {
    const auto it = in_alias.find(n);
    return it != in_alias.end() ? it->second : n;
  };
  for (const netlist::Gate& g : sub_mapped.gates()) {
    const std::string& out = sub_mapped.signal_name(g.output);
    if (!driven.insert(out).second) return nullptr;
    std::vector<SignalId> ins;
    ins.reserve(g.inputs.size());
    for (SignalId in : g.inputs) {
      ins.push_back(mapped->get_or_add_signal(
          patch_in_name(sub_mapped.signal_name(in))));
    }
    mapped->add_gate(g.name, g.table, std::move(ins),
                     mapped->get_or_add_signal(out));
    if (const auto na = need_alias.find(out); na != need_alias.end()) {
      for (const std::string& alias : na->second) {
        if (!driven.insert(alias).second) return nullptr;
        mapped->add_gate("eco_alias_" + alias,
                         netlist::TruthTable::identity(),
                         {mapped->get_or_add_signal(out)},
                         mapped->get_or_add_signal(alias));
      }
    }
  }
  for (const netlist::Latch& l : edited.latches()) {
    if (!driven.insert(edited.signal_name(l.q)).second) return nullptr;
    mapped->add_latch(
        l.name, mapped->get_or_add_signal(edited.signal_name(l.d)),
        mapped->get_or_add_signal(edited.signal_name(l.q)),
        l.clock != kNoSignal
            ? mapped->get_or_add_signal(edited.signal_name(l.clock))
            : kNoSignal,
        l.init);
  }
  // A required edited-space signal whose clean representative lives under
  // a decorated mapped name needs a buffer back to the pinned name.
  const auto ensure_driven = [&](const std::string& o) {
    if (driven.count(o)) return;
    const auto ia = in_alias.find(o);
    if (ia == in_alias.end()) return;  // validate reports it
    driven.insert(o);
    mapped->add_gate("eco_pin_" + o, netlist::TruthTable::identity(),
                     {mapped->get_or_add_signal(ia->second)},
                     mapped->get_or_add_signal(o));
  };
  for (SignalId s : edited.outputs()) ensure_driven(edited.signal_name(s));
  for (const netlist::Latch& l : edited.latches()) {
    ensure_driven(edited.signal_name(l.d));
    if (l.clock != kNoSignal) ensure_driven(edited.signal_name(l.clock));
  }
  for (SignalId s : edited.outputs()) {
    mapped->add_output(mapped->get_or_add_signal(edited.signal_name(s)));
  }
  try {
    mapped->validate();
  } catch (const Error&) {
    return nullptr;
  }
  *luts_reused = static_cast<int>(copy_luts.size());
  return mapped;
}

/// The from-scratch mapping stage, byte-identical to the full flow's.
std::unique_ptr<Network> full_remap(const Network& edited,
                                    const synth::LutMapOptions& lopt,
                                    synth::LutMapStats* stats) {
  Network opt = synth::propagate_constants(edited);
  synth::sweep_dead_logic(opt);
  return std::make_unique<Network>(synth::map_to_luts(opt, lopt, stats));
}

// ---------------------------------------------------------------------------
// Stage 4: placement transfer. Matched blocks (clusters via surviving
// pack hints, pads by name) take their previous locations and are locked;
// the rest get free slots in deterministic scan order.
// ---------------------------------------------------------------------------
bool transfer_placement(const place::Placement& base_pl,
                        place::Placement& pl,
                        const std::vector<int>& hint_cluster,
                        std::vector<int>* old_to_new,
                        std::vector<char>* movable) {
  // A grown grid (the edit pushed the cluster count past a square
  // boundary) still transfers: every old CLB coordinate stays legal and
  // pads keep their correspondence, though pads on edges that moved lose
  // their locations (and any route through them fails the per-edge seed
  // checks). Only a SHRUNK grid aborts the transfer.
  if (pl.nx() < base_pl.nx() || pl.ny() < base_pl.ny()) return false;
  const auto& old_blocks = base_pl.blocks();
  const auto& new_blocks = pl.blocks();
  old_to_new->assign(old_blocks.size(), -1);
  movable->assign(new_blocks.size(), 1);
  for (std::size_t ci = 0; ci < hint_cluster.size(); ++ci) {
    const int nc = hint_cluster[ci];
    if (nc < 0) continue;
    (*old_to_new)[static_cast<std::size_t>(
        base_pl.block_of_cluster(static_cast<int>(ci)))] =
        pl.block_of_cluster(nc);
  }
  for (std::size_t ob = 0; ob < old_blocks.size(); ++ob) {
    if (old_blocks[ob].kind == place::BlockKind::kClb) continue;
    const int nb = pl.block_by_name(old_blocks[ob].name);
    if (nb >= 0 && new_blocks[static_cast<std::size_t>(nb)].kind ==
                       old_blocks[ob].kind) {
      (*old_to_new)[ob] = nb;
    }
  }

  auto key = [](const place::Loc& l) {
    return std::tuple<int, int, int>(l.x, l.y, l.sub);
  };
  std::set<std::tuple<int, int, int>> io_ok;
  for (const place::Loc& l : pl.legal_io_locs()) io_ok.insert(key(l));
  std::set<std::tuple<int, int, int>> used;
  for (std::size_t ob = 0; ob < old_blocks.size(); ++ob) {
    const int nb = (*old_to_new)[ob];
    if (nb < 0) continue;
    const place::Loc& loc = base_pl.location(static_cast<int>(ob));
    if (old_blocks[ob].kind != place::BlockKind::kClb &&
        !io_ok.count(key(loc))) {
      continue;  // pad edge moved with the grid: re-place this pad
    }
    pl.set_location(nb, loc);
    used.insert(key(loc));
    (*movable)[static_cast<std::size_t>(nb)] = 0;
  }
  const std::vector<place::Loc> clb_locs = pl.legal_clb_locs();
  const std::vector<place::Loc> io_locs = pl.legal_io_locs();
  std::size_t clb_i = 0;
  std::size_t io_i = 0;
  for (std::size_t nb = 0; nb < new_blocks.size(); ++nb) {
    if (!(*movable)[nb]) continue;
    const bool is_clb = new_blocks[nb].kind == place::BlockKind::kClb;
    const std::vector<place::Loc>& locs = is_clb ? clb_locs : io_locs;
    std::size_t& i = is_clb ? clb_i : io_i;
    while (i < locs.size() && used.count(key(locs[i]))) ++i;
    if (i >= locs.size()) return false;  // no free slot of this kind
    pl.set_location(static_cast<int>(nb), locs[i]);
    used.insert(key(locs[i]));
  }
  pl.validate();
  return true;
}

// ---------------------------------------------------------------------------
// Stage 5: route-seed translation. Same grid and channel width mean wire
// node ids are identical between the base and new RR graphs; pin/sink
// nodes are translated through the block correspondence. A net seeds only
// if its name, its translated source/sink blocks and every tree edge
// survive intact in the new graph.
// ---------------------------------------------------------------------------
int translate_seeds(const place::Placement& base_pl,
                    const place::Placement& pl, const route::RrGraph& base_rr,
                    const route::RrGraph& rr,
                    const route::RouteResult& base_routing,
                    const std::vector<int>& old_to_new,
                    std::vector<route::NetRoute>* seeds,
                    std::vector<char>* dirty) {
  seeds->assign(pl.nets().size(), route::NetRoute{});
  dirty->assign(pl.nets().size(), 1);

  std::map<std::string, int> base_net_by_name;
  for (std::size_t ni = 0; ni < base_pl.nets().size(); ++ni) {
    base_net_by_name[base_pl.packed().network().signal_name(
        base_pl.nets()[ni].signal)] = static_cast<int>(ni);
  }
  // Wires are matched by structural position (chan ids shift when the
  // grid grows), pins through the block correspondence — both answered
  // by the new graph's id arithmetic, with no node table to build.
  auto xlat = [&](int oid) -> int {
    const route::RrNode n = base_rr.node_info(oid);
    if (n.type == route::RrType::kChanX || n.type == route::RrType::kChanY) {
      return rr.find_chan(n.type, n.x, n.y, n.track);
    }
    const int nb = old_to_new[static_cast<std::size_t>(n.block)];
    if (nb < 0) return -1;
    return rr.find_block_node(nb, n.type, n.pin);
  };
  auto has_edge = [&](int from, int to) { return rr.has_edge(from, to); };

  int n_seeded = 0;
  for (std::size_t ni = 0; ni < pl.nets().size(); ++ni) {
    const place::Placement::Net& net = pl.nets()[ni];
    const auto it = base_net_by_name.find(
        pl.packed().network().signal_name(net.signal));
    if (it == base_net_by_name.end()) continue;
    const place::Placement::Net& bnet =
        base_pl.nets()[static_cast<std::size_t>(it->second)];
    // Source and sink blocks must correspond exactly (an unmatched block
    // never translates, so nets touching moved logic stay dirty).
    if (old_to_new[static_cast<std::size_t>(bnet.source)] != net.source)
      continue;
    std::vector<int> bsinks;
    bsinks.reserve(bnet.sinks.size());
    bool ok = true;
    for (int b : bnet.sinks) {
      const int nb = old_to_new[static_cast<std::size_t>(b)];
      if (nb < 0) {
        ok = false;
        break;
      }
      bsinks.push_back(nb);
    }
    if (!ok || bsinks.size() != net.sinks.size()) continue;
    std::vector<int> nsinks = net.sinks;
    std::sort(bsinks.begin(), bsinks.end());
    std::sort(nsinks.begin(), nsinks.end());
    if (bsinks != nsinks) continue;

    const route::NetRoute& old_route =
        base_routing.routes[static_cast<std::size_t>(it->second)];
    if (old_route.nodes.empty()) continue;
    route::NetRoute tr;
    tr.nodes.reserve(old_route.nodes.size());
    tr.parent = old_route.parent;
    for (int oid : old_route.nodes) {
      const int nid = xlat(oid);
      if (nid < 0) {
        ok = false;
        break;
      }
      tr.nodes.push_back(nid);
    }
    if (!ok) continue;
    int root = -1;
    for (std::size_t i = 0; i < tr.nodes.size() && ok; ++i) {
      const int p = tr.parent[i];
      if (p < 0) {
        root = tr.nodes[i];
      } else if (!has_edge(tr.nodes[static_cast<std::size_t>(p)],
                           tr.nodes[i])) {
        ok = false;
      }
    }
    if (!ok || root != rr.opin_of_net(static_cast<int>(ni))) continue;
    const std::set<int> in_tree(tr.nodes.begin(), tr.nodes.end());
    for (int sink : rr.sinks_of_net(static_cast<int>(ni))) {
      if (!in_tree.count(sink)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    (*seeds)[ni] = std::move(tr);
    (*dirty)[ni] = 0;
    ++n_seeded;
  }
  return n_seeded;
}

}  // namespace

NetlistDiff diff_networks(const Network& base, const Network& edited) {
  NetlistDiff d;
  d.base_cells =
      static_cast<int>(base.gates().size() + base.latches().size());
  d.edited_cells =
      static_cast<int>(edited.gates().size() + edited.latches().size());
  d.io_changed =
      signal_names(base, base.inputs()) != signal_names(edited, edited.inputs()) ||
      signal_names(base, base.outputs()) != signal_names(edited, edited.outputs());

  std::map<std::string, int> base_gates;
  std::map<std::string, int> edited_gates;
  for (std::size_t gi = 0; gi < base.gates().size(); ++gi) {
    base_gates[base.signal_name(base.gates()[gi].output)] =
        static_cast<int>(gi);
  }
  for (std::size_t gi = 0; gi < edited.gates().size(); ++gi) {
    edited_gates[edited.signal_name(edited.gates()[gi].output)] =
        static_cast<int>(gi);
  }
  for (const auto& [name, bi] : base_gates) {
    const auto it = edited_gates.find(name);
    if (it == edited_gates.end()) {
      d.removed.push_back(name);
      continue;
    }
    const netlist::Gate& bg = base.gates()[static_cast<std::size_t>(bi)];
    const netlist::Gate& eg =
        edited.gates()[static_cast<std::size_t>(it->second)];
    if (fanin_names(base, bg) != fanin_names(edited, eg)) {
      d.rewired.push_back(name);
    } else if (!(bg.table == eg.table)) {
      d.retuned.push_back(name);
    } else {
      ++d.matched_clean;
    }
  }
  for (const auto& [name, gi] : edited_gates) {
    (void)gi;
    if (!base_gates.count(name)) d.added.push_back(name);
  }

  std::map<std::string, int> base_ffs;
  std::map<std::string, int> edited_ffs;
  for (std::size_t li = 0; li < base.latches().size(); ++li) {
    base_ffs[base.signal_name(base.latches()[li].q)] = static_cast<int>(li);
  }
  for (std::size_t li = 0; li < edited.latches().size(); ++li) {
    edited_ffs[edited.signal_name(edited.latches()[li].q)] =
        static_cast<int>(li);
  }
  auto latch_sig = [](const Network& n, const netlist::Latch& l) {
    return std::tuple<std::string, std::string, int>(
        n.signal_name(l.d),
        l.clock != kNoSignal ? n.signal_name(l.clock) : std::string(),
        static_cast<int>(l.init));
  };
  for (const auto& [name, bi] : base_ffs) {
    const auto it = edited_ffs.find(name);
    if (it == edited_ffs.end()) {
      d.removed.push_back(name);
      continue;
    }
    const netlist::Latch& bl = base.latches()[static_cast<std::size_t>(bi)];
    const netlist::Latch& el =
        edited.latches()[static_cast<std::size_t>(it->second)];
    if (latch_sig(base, bl) != latch_sig(edited, el)) {
      d.rewired.push_back(name);
    } else {
      ++d.matched_clean;
    }
  }
  for (const auto& [name, li] : edited_ffs) {
    (void)li;
    if (!base_ffs.count(name)) d.added.push_back(name);
  }
  return d;
}

EcoResult recompile(const Network& edited, const Network& base_entry,
                    const Network& base_mapped,
                    const pack::PackedNetlist& base_packed,
                    const place::Placement& base_placement,
                    const route::RrGraph& base_rr,
                    const route::RouteResult& base_routing, int base_width,
                    const arch::ArchSpec& arch, const EcoOptions& options) {
  static obs::Counter& c_runs = obs::counter("eco.runs");
  static obs::Counter& c_cells = obs::counter("eco.cells");
  static obs::Counter& c_dirty = obs::counter("eco.dirty_cells");
  static obs::Counter& c_luts_reused = obs::counter("eco.luts_reused");
  static obs::Counter& c_clusters_reused = obs::counter("eco.clusters_reused");
  static obs::Counter& c_blocks_matched = obs::counter("eco.blocks_matched");
  static obs::Counter& c_nets_seeded = obs::counter("eco.nets_seeded");
  static obs::Counter& c_nets_rerouted = obs::counter("eco.nets_rerouted");
  static obs::Counter& c_fallbacks = obs::counter("eco.fallbacks");
  c_runs.add(1);

  obs::Span root("eco.recompile");
  EcoResult r;
  EcoStats& st = r.stats;

  // --- 1. diff ---
  {
    obs::Span span("eco.diff");
    st.entry_diff = diff_networks(base_entry, edited);
    if (span.active()) {
      span.metric("dirty_cells", st.entry_diff.dirty_cells());
      span.metric("dirty_pct", st.entry_diff.dirty_pct() * 100.0);
    }
  }
  c_cells.add(static_cast<std::uint64_t>(st.entry_diff.edited_cells));
  c_dirty.add(static_cast<std::uint64_t>(st.entry_diff.dirty_cells()));
  throw_if_cancelled(options);

  // --- 2. map (patch-based, falling back to from-scratch) ---
  {
    obs::Span span("eco.map");
    if (!st.entry_diff.io_changed &&
        st.entry_diff.dirty_pct() <= options.max_dirty_fraction) {
      r.mapped = try_patch_map(edited, base_entry, base_mapped, st.entry_diff,
                               options.lutmap, &st.luts_reused);
    }
    if (r.mapped != nullptr) {
      st.incremental_map = true;
      r.map_stats.luts = static_cast<int>(r.mapped->gates().size());
      r.map_stats.depth = lut_depth(*r.mapped);
    } else {
      st.luts_reused = 0;
      ++st.fallbacks;
      r.mapped = full_remap(edited, options.lutmap, &r.map_stats);
    }
    st.luts_total = static_cast<int>(r.mapped->gates().size());
    if (span.active()) {
      span.metric("luts", st.luts_total);
      span.metric("luts_reused", st.luts_reused);
      span.metric("incremental", st.incremental_map ? 1.0 : 0.0);
    }
  }
  c_luts_reused.add(static_cast<std::uint64_t>(st.luts_reused));
  throw_if_cancelled(options);

  // --- 3. pack with reuse hints ---
  {
    obs::Span span("eco.pack");
    pack::PackHints hints;
    const Network& bm = base_packed.network();
    hints.clusters.reserve(base_packed.clusters().size());
    for (const pack::Cluster& c : base_packed.clusters()) {
      std::vector<std::string> names;
      names.reserve(c.bles.size());
      for (int bi : c.bles) {
        names.push_back(
            bm.signal_name(base_packed.bles()[static_cast<std::size_t>(bi)].output));
      }
      hints.clusters.push_back(std::move(names));
    }
    r.packed = std::make_unique<pack::PackedNetlist>(*r.mapped, arch, hints);
    st.clusters_total = static_cast<int>(r.packed->clusters().size());
    for (int ci : r.packed->hint_cluster()) {
      if (ci >= 0) ++st.clusters_reused;
    }
    if (span.active()) {
      span.metric("clusters", st.clusters_total);
      span.metric("clusters_reused", st.clusters_reused);
    }
  }
  c_clusters_reused.add(static_cast<std::uint64_t>(st.clusters_reused));
  throw_if_cancelled(options);

  // --- 4. locked placement + bounded local re-anneal ---
  std::vector<int> old_to_new;
  {
    obs::Span span("eco.place");
    r.placement =
        std::make_unique<place::Placement>(*r.packed, arch, options.seed);
    std::vector<char> movable;
    st.placement_transferred = transfer_placement(
        base_placement, *r.placement, r.packed->hint_cluster(), &old_to_new,
        &movable);
    st.blocks_total = static_cast<int>(r.placement->blocks().size());
    place::Placement::AnnealOptions popt;
    popt.seed = options.seed;
    if (st.placement_transferred) {
      for (char m : movable) {
        if (!m) ++st.blocks_matched;
      }
      popt.inner_num = options.reanneal_inner;
      popt.movable = &movable;
      popt.rlim_max = options.reanneal_radius;
      r.place_stats = r.placement->anneal(popt);
    } else {
      // Grid changed (or nothing matched): place from scratch.
      old_to_new.assign(base_placement.blocks().size(), -1);
      ++st.fallbacks;
      r.place_stats = r.placement->anneal(popt);
    }
    if (span.active()) {
      span.metric("blocks", st.blocks_total);
      span.metric("blocks_matched", st.blocks_matched);
      span.metric("place_cost", r.place_stats.final_cost);
    }
  }
  c_blocks_matched.add(static_cast<std::uint64_t>(st.blocks_matched));
  throw_if_cancelled(options);

  // --- 5. seeded reroute ---
  {
    obs::Span span("eco.route");
    route::RouteOptions ropt = options.route;
    r.channel_width = base_width;
    r.rr_graph = std::make_unique<route::RrGraph>(*r.placement, arch,
                                                  base_width, ropt.rr);
    st.nets_total = static_cast<int>(r.placement->nets().size());
    std::vector<route::NetRoute> seeds;
    std::vector<char> dirty;
    if (st.placement_transferred && base_width == base_rr.channel_width()) {
      st.nets_seeded =
          translate_seeds(base_placement, *r.placement, base_rr, *r.rr_graph,
                          base_routing, old_to_new, &seeds, &dirty);
    } else {
      seeds.assign(static_cast<std::size_t>(st.nets_total), route::NetRoute{});
      dirty.assign(static_cast<std::size_t>(st.nets_total), 1);
    }
    r.routing = route::route_seeded(*r.rr_graph, *r.placement, seeds, dirty,
                                    ropt);
    st.route_seeded = r.routing.success && st.nets_seeded > 0;
    if (!r.routing.success) {
      // Seeds poisoned the search or the design no longer fits: retry
      // cold at the base width, then fall back to the full min-W search.
      ++st.fallbacks;
      r.routing = route::route_all(*r.rr_graph, *r.placement, ropt);
      if (!r.routing.success) {
        ++st.fallbacks;
        route::RouteResult routing;
        r.channel_width = route::minimum_channel_width(
            *r.placement, arch, &routing, ropt);
        AMDREL_CHECK_MSG(r.channel_width > 0, "ECO design is unroutable");
        r.rr_graph = std::make_unique<route::RrGraph>(
            *r.placement, arch, r.channel_width, ropt.rr);
        r.routing = std::move(routing);
      }
    }
    st.nets_rerouted = r.routing.nets_rerouted;
    st.channel_width = r.channel_width;
    route::verify_routing(*r.rr_graph, *r.placement, r.routing);
    if (span.active()) {
      span.metric("nets", st.nets_total);
      span.metric("nets_seeded", st.nets_seeded);
      span.metric("nets_rerouted", st.nets_rerouted);
      span.metric("channel_width", st.channel_width);
    }
  }
  c_nets_seeded.add(static_cast<std::uint64_t>(st.nets_seeded));
  c_nets_rerouted.add(static_cast<std::uint64_t>(st.nets_rerouted));
  throw_if_cancelled(options);

  // --- 6. full analysis + bitstream recompute (no stale data) ---
  {
    obs::Span span("eco.analysis");
    r.power = power::estimate_power(*r.packed, *r.placement, *r.rr_graph,
                                    r.routing, arch, options.power);
    r.timing = timing::analyze_timing(*r.packed, *r.placement, *r.rr_graph,
                                      r.routing, arch);
  }
  {
    obs::Span span("eco.bitgen");
    r.bitstream = bitgen::generate_bitstream(*r.packed, *r.placement,
                                             *r.rr_graph, r.routing, arch);
    r.bitstream_bytes = bitgen::serialize(r.bitstream);
  }
  c_fallbacks.add(static_cast<std::uint64_t>(st.fallbacks));
  if (root.active()) {
    root.metric("dirty_pct", st.entry_diff.dirty_pct() * 100.0);
    root.metric("reuse_ratio", st.reuse_ratio());
    root.metric("fallbacks", st.fallbacks);
  }
  return r;
}

}  // namespace amdrel::eco

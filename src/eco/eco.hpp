#pragma once
// ECO (engineering-change-order) incremental recompilation.
//
// Interactive iteration edits a few cells of an already-compiled design;
// recompiling from scratch repeats the whole Fig. 11 back end even though
// almost every artifact is still valid. This module re-enters the flow
// mid-pipeline instead:
//
//   1. diff      — structural netlist diff against the previous entry
//                  network (cells keyed by output signal name).
//   2. map       — patch-based LUT mapping: LUT cones untouched by the
//                  edit are copied verbatim from the previous mapped
//                  network; only the dirty sub-network is re-mapped.
//   3. pack      — T-VPack with reuse hints: untouched CLBs are recreated
//                  with their previous BLE slot order (pack::PackHints).
//   4. place     — matched blocks keep their previous locations and are
//                  locked; only new/changed blocks move, in a bounded
//                  local re-anneal (radius-limited window).
//   5. route     — previous net trees are translated onto the new RR
//                  graph and committed as seeds; PathFinder rips up and
//                  reroutes only nets incident to changed blocks
//                  (route::route_seeded).
//   6. analysis  — power, timing and the bitstream are recomputed in
//                  full (linear passes; no stale data survives).
//
// Every reuse decision is conservative: any anomaly (changed IO, a
// too-large edit, a hint or seed that no longer fits) falls back to the
// corresponding from-scratch stage, so the result is always a complete,
// verifiable compile. The safety net is formal: callers are expected to
// prove the ECO bitstream equivalent to the edited netlist with
// src/verify (FlowSession::resume_with_edit does this automatically).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "bitgen/bitstream.hpp"
#include "netlist/network.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "power/power.hpp"
#include "route/pathfinder.hpp"
#include "route/rr_graph.hpp"
#include "synth/lutmap.hpp"
#include "timing/timing.hpp"

namespace amdrel::eco {

/// Structural diff between two entry networks. Combinational cells are
/// keyed by output signal name, latches by Q signal name; a matched cell
/// whose function or fanin list changed is "retuned"/"rewired".
struct NetlistDiff {
  std::vector<std::string> retuned;  ///< same fanins, different table
  std::vector<std::string> rewired;  ///< different fanin signals
  std::vector<std::string> added;    ///< cells only in the edited network
  std::vector<std::string> removed;  ///< cells only in the base network
  bool io_changed = false;           ///< PI or PO name sets differ
  int base_cells = 0;                ///< gates + latches in base
  int edited_cells = 0;              ///< gates + latches in edited
  int matched_clean = 0;             ///< cells identical on both sides

  /// Cells whose implementation must change (everything except clean).
  int dirty_cells() const {
    return static_cast<int>(retuned.size() + rewired.size() + added.size() +
                            removed.size());
  }
  bool identical() const { return dirty_cells() == 0 && !io_changed; }
  /// Dirty fraction of the larger side, 0..1.
  double dirty_pct() const {
    const int n = base_cells > edited_cells ? base_cells : edited_cells;
    return n > 0 ? static_cast<double>(dirty_cells()) / n : 0.0;
  }
};

NetlistDiff diff_networks(const netlist::Network& base,
                          const netlist::Network& edited);

struct EcoOptions {
  std::uint64_t seed = 1;
  /// Bounded local re-anneal over the unlocked blocks: moves per block
  /// per temperature, and the cap on the annealer's move-radius window.
  double reanneal_inner = 10.0;
  double reanneal_radius = 5.0;
  /// Edits dirtying more than this fraction of the design skip the
  /// patch-based mapper and recompile the netlist from scratch (the
  /// pack/place/route reuse still applies to whatever survives).
  double max_dirty_fraction = 0.5;
  synth::LutMapOptions lutmap;
  /// Router options for the seeded reroute (carries the cancel flag).
  route::RouteOptions route;
  power::PowerOptions power;
};

/// What was reused vs. recomputed, for reporting and the QoR gate.
struct EcoStats {
  NetlistDiff entry_diff;
  bool incremental_map = false;  ///< patch fast path (false = full remap)
  int luts_total = 0;
  int luts_reused = 0;           ///< clean LUT cones copied verbatim
  int clusters_total = 0;
  int clusters_reused = 0;       ///< pack hints that survived
  int blocks_total = 0;
  int blocks_matched = 0;        ///< blocks keeping their old location
  bool placement_transferred = false;
  int nets_total = 0;
  int nets_seeded = 0;           ///< route trees committed as seeds
  int nets_rerouted = 0;         ///< nets the router actually rebuilt
  bool route_seeded = false;     ///< seeded route succeeded as-is
  int channel_width = 0;
  int fallbacks = 0;             ///< stage-level from-scratch fallbacks

  /// Fraction of reusable artifacts actually reused, 0..1 (LUTs,
  /// clusters, block locations and net routes, equally weighted by item).
  double reuse_ratio() const {
    const int total = luts_total + clusters_total + blocks_total + nets_total;
    const int reused =
        luts_reused + clusters_reused + blocks_matched + nets_seeded;
    return total > 0 ? static_cast<double>(reused) / total : 0.0;
  }
};

/// A complete recompiled implementation (same shape as the back half of
/// flow::FlowResult). Heap-held artifacts for address stability: packed
/// references mapped, placement references packed, rr_graph references
/// placement.
struct EcoResult {
  std::unique_ptr<netlist::Network> mapped;
  synth::LutMapStats map_stats;
  std::unique_ptr<pack::PackedNetlist> packed;
  std::unique_ptr<place::Placement> placement;
  place::Placement::AnnealStats place_stats;
  std::unique_ptr<route::RrGraph> rr_graph;
  route::RouteResult routing;
  int channel_width = 0;
  power::PowerReport power;
  timing::TimingReport timing;
  bitgen::Bitstream bitstream;
  std::vector<std::uint8_t> bitstream_bytes;
  EcoStats stats;
};

/// Recompiles `edited` incrementally against a completed base compile.
/// `base_entry`/`base_mapped` are the base flow's synthesized and mapped
/// networks; the remaining arguments are its implementation artifacts.
/// Throws CancelledError if options.route.cancel trips; the base
/// artifacts are never modified.
EcoResult recompile(const netlist::Network& edited,
                    const netlist::Network& base_entry,
                    const netlist::Network& base_mapped,
                    const pack::PackedNetlist& base_packed,
                    const place::Placement& base_placement,
                    const route::RrGraph& base_rr,
                    const route::RouteResult& base_routing, int base_width,
                    const arch::ArchSpec& arch, const EcoOptions& options = {});

}  // namespace amdrel::eco

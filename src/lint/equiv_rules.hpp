#pragma once
// Formal equivalence checks surfaced as lint diagnostics (EQ0xx).
//
// The verify subsystem returns one structured EquivResult per proof; this
// adapter runs the random-vector and/or SAT-based checks on a pair of
// networks and translates every adverse outcome into the lint report
// vocabulary, so `amdrel_cli lint A B` and CI gates can treat a broken
// stage hand-off like any other rule violation: EQ001 miter satisfiable
// (with the minimized counterexample in the message), EQ002 proof
// inconclusive, EQ003 interface mismatch, EQ004 register matching
// failure, EQ005 random-vector divergence.

#include "lint/lint.hpp"
#include "netlist/network.hpp"
#include "verify/equiv.hpp"

namespace amdrel::lint {

struct EquivCheckOptions {
  bool run_random = true;  ///< netlist::check_equivalence random vectors
  bool run_formal = true;  ///< verify::prove_equivalence SAT proof
  int random_runs = 4;
  int random_cycles = 48;
  verify::EquivOptions formal;  ///< seed / budgets for the SAT proof
};

/// Checks `a` against `b` per `options`, appending EQ diagnostics to
/// `report` for every adverse finding (an equivalent pair adds nothing).
/// Returns the formal EquivResult when run_formal is set; otherwise a
/// synthesized result reflecting the random check alone (kNotEquivalent
/// on divergence, kUnknown when vectors agree — agreement is not proof).
verify::EquivResult check_equivalence_pair(const netlist::Network& a,
                                           const netlist::Network& b,
                                           const EquivCheckOptions& options,
                                           Report* report);

}  // namespace amdrel::lint

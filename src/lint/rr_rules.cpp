#include "lint/rr_rules.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>

#include "util/strings.hpp"

namespace amdrel::lint {

namespace {

using route::RrNode;
using route::RrType;

const char* type_name(RrType t) {
  switch (t) {
    case RrType::kOpin: return "OPIN";
    case RrType::kIpin: return "IPIN";
    case RrType::kSink: return "SINK";
    case RrType::kChanX: return "CHANX";
    case RrType::kChanY: return "CHANY";
  }
  return "?";
}

bool is_wire(RrType t) { return t == RrType::kChanX || t == RrType::kChanY; }

std::string node_desc(const std::vector<RrNode>& nodes, int id) {
  const RrNode& n = nodes[static_cast<std::size_t>(id)];
  return strprintf("rr node %d (%s at %d,%d%s)", id, type_name(n.type), n.x,
                   n.y,
                   n.track >= 0 ? (" track " + std::to_string(n.track)).c_str()
                                : "");
}

// RR005: edges must target real nodes, never self-loop, never repeat.
void check_edges(const std::vector<RrNode>& nodes, Report* report) {
  const int n = static_cast<int>(nodes.size());
  // Duplicate detection via a stamp array instead of a per-node set: one
  // allocation for the whole graph, O(1) per edge.
  std::vector<int> seen_stamp(static_cast<std::size_t>(n), -1);
  for (int id = 0; id < n; ++id) {
    const RrNode& node = nodes[static_cast<std::size_t>(id)];
    for (int to : node.out_edges) {
      if (to < 0 || to >= n) {
        report->add(rules::kRrInvalidEdge, node_desc(nodes, id),
                    strprintf("edge to nonexistent node %d", to));
        continue;
      }
      if (to == id) {
        report->add(rules::kRrInvalidEdge, node_desc(nodes, id),
                    "self-loop edge");
        continue;
      }
      if (seen_stamp[static_cast<std::size_t>(to)] == id) {
        report->add(rules::kRrInvalidEdge, node_desc(nodes, id),
                    strprintf("duplicate edge to node %d", to));
      }
      seen_stamp[static_cast<std::size_t>(to)] = id;
    }
  }
}

// RR001: every IPIN/SINK/wire must be enterable; only OPINs are roots.
void check_unreachable(const std::vector<RrNode>& nodes, Report* report) {
  const int n = static_cast<int>(nodes.size());
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (const RrNode& node : nodes) {
    for (int to : node.out_edges) {
      if (to >= 0 && to < n) ++indegree[static_cast<std::size_t>(to)];
    }
  }
  for (int id = 0; id < n; ++id) {
    if (nodes[static_cast<std::size_t>(id)].type == RrType::kOpin) continue;
    if (indegree[static_cast<std::size_t>(id)] == 0) {
      report->add(rules::kRrUnreachable, node_desc(nodes, id),
                  "no incoming edge; unusable by any route");
    }
  }
}

// RR002: each channel segment location must hold exactly W tracks with
// track indices 0..W-1.
void check_channel_width(const std::vector<RrNode>& nodes, int channel_width,
                         Report* report) {
  // One (position, track) key per wire, then a sort: duplicates and
  // per-position track counts fall out of one linear scan, with no
  // map-of-sets allocation churn on the hot path.
  std::vector<std::uint64_t> keys;  // (type, x, y) << 16 | track
  keys.reserve(nodes.size());
  auto pos_of = [](std::uint64_t key) {
    return std::make_tuple(static_cast<int>(key >> 48),
                           static_cast<int>((key >> 32) & 0xffff),
                           static_cast<int>((key >> 16) & 0xffff));
  };
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const RrNode& node = nodes[id];
    if (!is_wire(node.type)) continue;
    if (node.track < 0 || node.track >= channel_width) {
      report->add(rules::kRrChannelWidth, node_desc(nodes, static_cast<int>(id)),
                  strprintf("track index %d outside [0, W=%d)", node.track,
                            channel_width));
      continue;
    }
    keys.push_back((static_cast<std::uint64_t>(node.type) << 48) |
                   (static_cast<std::uint64_t>(node.x) << 32) |
                   (static_cast<std::uint64_t>(node.y) << 16) |
                   static_cast<std::uint64_t>(node.track));
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size();) {
    const std::uint64_t pos = keys[i] >> 16;
    int tracks = 0;
    for (; i < keys.size() && (keys[i] >> 16) == pos; ++i) {
      ++tracks;
      if (i + 1 < keys.size() && keys[i + 1] == keys[i]) {
        report->add(rules::kRrChannelWidth,
                    strprintf("%s channel at %d,%d track %d",
                              static_cast<int>(keys[i] >> 48) ==
                                      static_cast<int>(RrType::kChanX)
                                  ? "CHANX"
                                  : "CHANY",
                              static_cast<int>((keys[i] >> 32) & 0xffff),
                              static_cast<int>((keys[i] >> 16) & 0xffff),
                              static_cast<int>(keys[i] & 0xffff)),
                    "duplicate wire for this channel position and track");
        for (; i + 1 < keys.size() && keys[i + 1] == keys[i]; ++i) {
        }
      }
    }
    if (tracks != channel_width) {
      const auto [t, x, y] = pos_of(keys[i - 1]);
      report->add(
          rules::kRrChannelWidth,
          strprintf("%s channel at %d,%d",
                    t == static_cast<int>(RrType::kChanX) ? "CHANX" : "CHANY",
                    x, y),
          strprintf("%d track(s) present, W=%d declared", tracks,
                    channel_width));
    }
  }
}

// RR003: switch-box pass transistors are bidirectional — a wire-wire
// edge recorded one way only means the generator forgot the return
// direction (the router would then find paths hardware cannot realize).
// RR004: a wire with no outgoing switch is dead capacitance.
void check_wires(const std::vector<RrNode>& nodes, Report* report) {
  const int n = static_cast<int>(nodes.size());
  // Sorted edge list + binary search for the return direction: flat
  // memory instead of a hash set sized like the whole switch fabric.
  std::vector<std::uint64_t> wire_edges;
  auto key = [](int a, int b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  };
  for (int id = 0; id < n; ++id) {
    const RrNode& node = nodes[static_cast<std::size_t>(id)];
    if (!is_wire(node.type)) continue;
    if (node.out_edges.empty()) {
      report->add(rules::kRrZeroFanoutWire, node_desc(nodes, id),
                  "wire has no outgoing switch");
    }
    for (int to : node.out_edges) {
      if (to >= 0 && to < n && is_wire(nodes[static_cast<std::size_t>(to)].type)) {
        wire_edges.push_back(key(id, to));
      }
    }
  }
  std::sort(wire_edges.begin(), wire_edges.end());
  wire_edges.erase(std::unique(wire_edges.begin(), wire_edges.end()),
                   wire_edges.end());
  for (std::uint64_t k : wire_edges) {
    const int a = static_cast<int>(k >> 32);
    const int b = static_cast<int>(k & 0xffffffffu);
    if (!std::binary_search(wire_edges.begin(), wire_edges.end(),
                            key(b, a))) {
      report->add(rules::kRrAsymmetricSwitch, node_desc(nodes, a),
                  strprintf("switch to node %d has no return direction", b));
    }
  }
}

}  // namespace

void lint_rr_nodes(const std::vector<RrNode>& nodes, int channel_width,
                   Report* report) {
  check_edges(nodes, report);
  check_unreachable(nodes, report);
  check_channel_width(nodes, channel_width, report);
  check_wires(nodes, report);
}

void lint_rr_graph(const route::RrGraph& graph, Report* report) {
  lint_rr_nodes(graph.nodes(), graph.channel_width(), report);
}

}  // namespace amdrel::lint

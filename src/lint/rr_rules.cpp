#include "lint/rr_rules.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>

#include "util/strings.hpp"

namespace amdrel::lint {

namespace {

using route::RrNode;
using route::RrType;

const char* type_name(RrType t) {
  switch (t) {
    case RrType::kOpin: return "OPIN";
    case RrType::kIpin: return "IPIN";
    case RrType::kSink: return "SINK";
    case RrType::kChanX: return "CHANX";
    case RrType::kChanY: return "CHANY";
  }
  return "?";
}

bool is_wire(RrType t) { return t == RrType::kChanX || t == RrType::kChanY; }

std::string node_desc(const std::vector<RrNode>& nodes, int id) {
  const RrNode& n = nodes[static_cast<std::size_t>(id)];
  return strprintf("rr node %d (%s at %d,%d%s)", id, type_name(n.type), n.x,
                   n.y,
                   n.track >= 0 ? (" track " + std::to_string(n.track)).c_str()
                                : "");
}

// RR005: edges must target real nodes, never self-loop, never repeat.
void check_edges(const std::vector<RrNode>& nodes, Report* report) {
  const int n = static_cast<int>(nodes.size());
  for (int id = 0; id < n; ++id) {
    const RrNode& node = nodes[static_cast<std::size_t>(id)];
    std::set<int> seen;
    for (int to : node.out_edges) {
      if (to < 0 || to >= n) {
        report->add(rules::kRrInvalidEdge, node_desc(nodes, id),
                    strprintf("edge to nonexistent node %d", to));
        continue;
      }
      if (to == id) {
        report->add(rules::kRrInvalidEdge, node_desc(nodes, id),
                    "self-loop edge");
        continue;
      }
      if (!seen.insert(to).second) {
        report->add(rules::kRrInvalidEdge, node_desc(nodes, id),
                    strprintf("duplicate edge to node %d", to));
      }
    }
  }
}

// RR001: every IPIN/SINK/wire must be enterable; only OPINs are roots.
void check_unreachable(const std::vector<RrNode>& nodes, Report* report) {
  const int n = static_cast<int>(nodes.size());
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (const RrNode& node : nodes) {
    for (int to : node.out_edges) {
      if (to >= 0 && to < n) ++indegree[static_cast<std::size_t>(to)];
    }
  }
  for (int id = 0; id < n; ++id) {
    if (nodes[static_cast<std::size_t>(id)].type == RrType::kOpin) continue;
    if (indegree[static_cast<std::size_t>(id)] == 0) {
      report->add(rules::kRrUnreachable, node_desc(nodes, id),
                  "no incoming edge; unusable by any route");
    }
  }
}

// RR002: each channel segment location must hold exactly W tracks with
// track indices 0..W-1.
void check_channel_width(const std::vector<RrNode>& nodes, int channel_width,
                         Report* report) {
  // (type, x, y) -> set of track indices present.
  std::map<std::tuple<int, int, int>, std::set<int>> channels;
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const RrNode& node = nodes[id];
    if (!is_wire(node.type)) continue;
    if (node.track < 0 || node.track >= channel_width) {
      report->add(rules::kRrChannelWidth, node_desc(nodes, static_cast<int>(id)),
                  strprintf("track index %d outside [0, W=%d)", node.track,
                            channel_width));
      continue;
    }
    auto key = std::make_tuple(static_cast<int>(node.type), node.x, node.y);
    if (!channels[key].insert(node.track).second) {
      report->add(rules::kRrChannelWidth, node_desc(nodes, static_cast<int>(id)),
                  "duplicate wire for this channel position and track");
    }
  }
  for (const auto& [key, tracks] : channels) {
    if (static_cast<int>(tracks.size()) != channel_width) {
      report->add(
          rules::kRrChannelWidth,
          strprintf("%s channel at %d,%d",
                    std::get<0>(key) == static_cast<int>(RrType::kChanX)
                        ? "CHANX"
                        : "CHANY",
                    std::get<1>(key), std::get<2>(key)),
          strprintf("%d track(s) present, W=%d declared",
                    static_cast<int>(tracks.size()), channel_width));
    }
  }
}

// RR003: switch-box pass transistors are bidirectional — a wire-wire
// edge recorded one way only means the generator forgot the return
// direction (the router would then find paths hardware cannot realize).
// RR004: a wire with no outgoing switch is dead capacitance.
void check_wires(const std::vector<RrNode>& nodes, Report* report) {
  const int n = static_cast<int>(nodes.size());
  std::unordered_set<std::uint64_t> wire_edges;
  auto key = [](int a, int b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  };
  for (int id = 0; id < n; ++id) {
    const RrNode& node = nodes[static_cast<std::size_t>(id)];
    if (!is_wire(node.type)) continue;
    if (node.out_edges.empty()) {
      report->add(rules::kRrZeroFanoutWire, node_desc(nodes, id),
                  "wire has no outgoing switch");
    }
    for (int to : node.out_edges) {
      if (to >= 0 && to < n && is_wire(nodes[static_cast<std::size_t>(to)].type)) {
        wire_edges.insert(key(id, to));
      }
    }
  }
  for (std::uint64_t k : wire_edges) {
    const int a = static_cast<int>(k >> 32);
    const int b = static_cast<int>(k & 0xffffffffu);
    if (!wire_edges.count(key(b, a))) {
      report->add(rules::kRrAsymmetricSwitch, node_desc(nodes, a),
                  strprintf("switch to node %d has no return direction", b));
    }
  }
}

}  // namespace

void lint_rr_nodes(const std::vector<RrNode>& nodes, int channel_width,
                   Report* report) {
  check_edges(nodes, report);
  check_unreachable(nodes, report);
  check_channel_width(nodes, channel_width, report);
  check_wires(nodes, report);
}

void lint_rr_graph(const route::RrGraph& graph, Report* report) {
  lint_rr_nodes(graph.nodes(), graph.channel_width(), report);
}

}  // namespace amdrel::lint

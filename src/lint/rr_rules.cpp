#include "lint/rr_rules.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>

#include "util/strings.hpp"

namespace amdrel::lint {

namespace {

using route::RrNode;
using route::RrType;

const char* type_name(RrType t) {
  switch (t) {
    case RrType::kOpin: return "OPIN";
    case RrType::kIpin: return "IPIN";
    case RrType::kSink: return "SINK";
    case RrType::kChanX: return "CHANX";
    case RrType::kChanY: return "CHANY";
  }
  return "?";
}

bool is_wire(RrType t) { return t == RrType::kChanX || t == RrType::kChanY; }

std::string node_desc(const std::vector<RrNode>& nodes, int id) {
  const RrNode& n = nodes[static_cast<std::size_t>(id)];
  return strprintf("rr node %d (%s at %d,%d%s)", id, type_name(n.type), n.x,
                   n.y,
                   n.track >= 0 ? (" track " + std::to_string(n.track)).c_str()
                                : "");
}

// RR005: edges must target real nodes, never self-loop, never repeat.
void check_edges(const std::vector<RrNode>& nodes, Report* report) {
  const int n = static_cast<int>(nodes.size());
  // Duplicate detection via a stamp array instead of a per-node set: one
  // allocation for the whole graph, O(1) per edge.
  std::vector<int> seen_stamp(static_cast<std::size_t>(n), -1);
  for (int id = 0; id < n; ++id) {
    const RrNode& node = nodes[static_cast<std::size_t>(id)];
    for (int to : node.out_edges) {
      if (to < 0 || to >= n) {
        report->add(rules::kRrInvalidEdge, node_desc(nodes, id),
                    strprintf("edge to nonexistent node %d", to));
        continue;
      }
      if (to == id) {
        report->add(rules::kRrInvalidEdge, node_desc(nodes, id),
                    "self-loop edge");
        continue;
      }
      if (seen_stamp[static_cast<std::size_t>(to)] == id) {
        report->add(rules::kRrInvalidEdge, node_desc(nodes, id),
                    strprintf("duplicate edge to node %d", to));
      }
      seen_stamp[static_cast<std::size_t>(to)] = id;
    }
  }
}

// RR001: every IPIN/SINK/wire must be enterable; only OPINs are roots.
void check_unreachable(const std::vector<RrNode>& nodes, Report* report) {
  const int n = static_cast<int>(nodes.size());
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (const RrNode& node : nodes) {
    for (int to : node.out_edges) {
      if (to >= 0 && to < n) ++indegree[static_cast<std::size_t>(to)];
    }
  }
  for (int id = 0; id < n; ++id) {
    if (nodes[static_cast<std::size_t>(id)].type == RrType::kOpin) continue;
    if (indegree[static_cast<std::size_t>(id)] == 0) {
      report->add(rules::kRrUnreachable, node_desc(nodes, id),
                  "no incoming edge; unusable by any route");
    }
  }
}

// RR002: each channel segment location must hold exactly W tracks with
// track indices 0..W-1.
void check_channel_width(const std::vector<RrNode>& nodes, int channel_width,
                         Report* report) {
  // One (position, track) key per wire, then a sort: duplicates and
  // per-position track counts fall out of one linear scan, with no
  // map-of-sets allocation churn on the hot path.
  std::vector<std::uint64_t> keys;  // (type, x, y) << 16 | track
  keys.reserve(nodes.size());
  auto pos_of = [](std::uint64_t key) {
    return std::make_tuple(static_cast<int>(key >> 48),
                           static_cast<int>((key >> 32) & 0xffff),
                           static_cast<int>((key >> 16) & 0xffff));
  };
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const RrNode& node = nodes[id];
    if (!is_wire(node.type)) continue;
    if (node.track < 0 || node.track >= channel_width) {
      report->add(rules::kRrChannelWidth, node_desc(nodes, static_cast<int>(id)),
                  strprintf("track index %d outside [0, W=%d)", node.track,
                            channel_width));
      continue;
    }
    keys.push_back((static_cast<std::uint64_t>(node.type) << 48) |
                   (static_cast<std::uint64_t>(node.x) << 32) |
                   (static_cast<std::uint64_t>(node.y) << 16) |
                   static_cast<std::uint64_t>(node.track));
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size();) {
    const std::uint64_t pos = keys[i] >> 16;
    int tracks = 0;
    for (; i < keys.size() && (keys[i] >> 16) == pos; ++i) {
      ++tracks;
      if (i + 1 < keys.size() && keys[i + 1] == keys[i]) {
        report->add(rules::kRrChannelWidth,
                    strprintf("%s channel at %d,%d track %d",
                              static_cast<int>(keys[i] >> 48) ==
                                      static_cast<int>(RrType::kChanX)
                                  ? "CHANX"
                                  : "CHANY",
                              static_cast<int>((keys[i] >> 32) & 0xffff),
                              static_cast<int>((keys[i] >> 16) & 0xffff),
                              static_cast<int>(keys[i] & 0xffff)),
                    "duplicate wire for this channel position and track");
        for (; i + 1 < keys.size() && keys[i + 1] == keys[i]; ++i) {
        }
      }
    }
    if (tracks != channel_width) {
      const auto [t, x, y] = pos_of(keys[i - 1]);
      report->add(
          rules::kRrChannelWidth,
          strprintf("%s channel at %d,%d",
                    t == static_cast<int>(RrType::kChanX) ? "CHANX" : "CHANY",
                    x, y),
          strprintf("%d track(s) present, W=%d declared", tracks,
                    channel_width));
    }
  }
}

// RR003: switch-box pass transistors are bidirectional — a wire-wire
// edge recorded one way only means the generator forgot the return
// direction (the router would then find paths hardware cannot realize).
// RR004: a wire with no outgoing switch is dead capacitance.
void check_wires(const std::vector<RrNode>& nodes, Report* report) {
  const int n = static_cast<int>(nodes.size());
  // Sorted edge list + binary search for the return direction: flat
  // memory instead of a hash set sized like the whole switch fabric.
  std::vector<std::uint64_t> wire_edges;
  auto key = [](int a, int b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  };
  for (int id = 0; id < n; ++id) {
    const RrNode& node = nodes[static_cast<std::size_t>(id)];
    if (!is_wire(node.type)) continue;
    if (node.out_edges.empty()) {
      report->add(rules::kRrZeroFanoutWire, node_desc(nodes, id),
                  "wire has no outgoing switch");
    }
    for (int to : node.out_edges) {
      if (to >= 0 && to < n && is_wire(nodes[static_cast<std::size_t>(to)].type)) {
        wire_edges.push_back(key(id, to));
      }
    }
  }
  std::sort(wire_edges.begin(), wire_edges.end());
  wire_edges.erase(std::unique(wire_edges.begin(), wire_edges.end()),
                   wire_edges.end());
  for (std::uint64_t k : wire_edges) {
    const int a = static_cast<int>(k >> 32);
    const int b = static_cast<int>(k & 0xffffffffu);
    if (!std::binary_search(wire_edges.begin(), wire_edges.end(),
                            key(b, a))) {
      report->add(rules::kRrAsymmetricSwitch, node_desc(nodes, a),
                  strprintf("switch to node %d has no return direction", b));
    }
  }
}

std::string id_desc(const route::RrGraph& g, int id) {
  const RrNode n = g.node_info(id);
  return strprintf("rr node %d (%s at %d,%d%s)", id, type_name(n.type), n.x,
                   n.y,
                   n.track >= 0 ? (" track " + std::to_string(n.track)).c_str()
                                : "");
}

// Low edge / high edge / one interior representative of an axis range —
// the three boundary classes a wire coordinate can fall into.
void axis_reps(int lo, int hi, std::vector<int>* out) {
  out->push_back(lo);
  if (hi > lo) out->push_back(hi);
  if (hi - lo > 1) out->push_back(lo + 1);
}

// Dedup-mode lint: the fabric is stamped from O(1) unique tile patterns,
// so each rule is checked once per pattern representative (every wire
// boundary class × sampled tracks, every block) plus arithmetic
// invariants of the stamping itself, instead of materializing and
// walking every node of a possibly giant graph.
void lint_rr_dedup(const route::RrGraph& g, Report* report) {
  const int W = g.channel_width();
  const int n = g.num_nodes();
  std::vector<int> ts{0};
  if (W > 1) ts.push_back(W - 1);
  if (W > 2) ts.push_back(W / 2);

  std::vector<int> edges;  // scratch, refilled per node
  auto check_node_edges = [&](int id, bool wire) {
    edges.clear();
    g.append_out_edges(id, &edges);
    if (wire && edges.empty()) {
      report->add(rules::kRrZeroFanoutWire, id_desc(g, id),
                  "wire has no outgoing switch");
    }
    std::set<int> seen;
    for (int to : edges) {
      if (to < 0 || to >= n) {
        report->add(rules::kRrInvalidEdge, id_desc(g, id),
                    strprintf("edge to nonexistent node %d", to));
        continue;
      }
      if (to == id) {
        report->add(rules::kRrInvalidEdge, id_desc(g, id), "self-loop edge");
        continue;
      }
      if (!seen.insert(to).second) {
        report->add(rules::kRrInvalidEdge, id_desc(g, id),
                    strprintf("duplicate edge to node %d", to));
      }
      if (wire && is_wire(g.node_type(to)) && !g.has_edge(to, id)) {
        report->add(rules::kRrAsymmetricSwitch, id_desc(g, id),
                    strprintf("switch to node %d has no return direction", to));
      }
    }
  };

  // RR002..RR005 on wires, one representative position per boundary
  // class on each axis.
  std::vector<int> xs, ys;
  for (int horiz = 1; horiz >= 0; --horiz) {
    const RrType type = horiz ? RrType::kChanX : RrType::kChanY;
    xs.clear();
    ys.clear();
    if (horiz) {
      axis_reps(1, g.nx(), &xs);
      axis_reps(0, g.ny(), &ys);
    } else {
      axis_reps(0, g.nx(), &xs);
      axis_reps(1, g.ny(), &ys);
    }
    for (int x : xs) {
      for (int y : ys) {
        // RR002: the id arithmetic yields exactly W tracks per position.
        if (g.find_chan(type, x, y, 0) < 0 ||
            g.find_chan(type, x, y, W - 1) < 0 ||
            g.find_chan(type, x, y, W) >= 0) {
          report->add(rules::kRrChannelWidth,
                      strprintf("%s channel at %d,%d",
                                horiz ? "CHANX" : "CHANY", x, y),
                      strprintf("track id space is not exactly W=%d", W));
        }
        for (int t : ts) {
          const int id = g.find_chan(type, x, y, t);
          if (id < 0) continue;
          const RrNode info = g.node_info(id);
          if (info.type != type || info.x != x || info.y != y ||
              info.track != t) {
            report->add(rules::kRrChannelWidth, id_desc(g, id),
                        strprintf("stamped attributes disagree with id "
                                  "arithmetic for (%d,%d) track %d",
                                  x, y, t));
          }
          check_node_edges(id, /*wire=*/true);
        }
      }
    }
  }

  // Block pins/sinks: edge validity for every block, plus RR001
  // reachability via the tap pattern — once for a representative CLB
  // (all CLB tiles share the interior pattern) and per output pad.
  bool clb_checked = false;
  int id = g.wire_count();
  while (id < n) {
    const int b = g.node_block(id);
    int sink = -1;
    std::vector<int> ipins, opins;
    for (; id < n && g.node_block(id) == b; ++id) {
      switch (g.node_type(id)) {
        case RrType::kSink: sink = id; break;
        case RrType::kIpin: ipins.push_back(id); break;
        case RrType::kOpin: opins.push_back(id); break;
        default:
          report->add(rules::kRrInvalidEdge, id_desc(g, id),
                      "wire node stamped inside a block id range");
          break;
      }
    }
    for (int nid : opins) {
      check_node_edges(nid, /*wire=*/false);
      for (int to : edges) {
        if (to >= 0 && to < n && !is_wire(g.node_type(to))) {
          report->add(rules::kRrInvalidEdge, id_desc(g, nid),
                      strprintf("output pin drives non-wire node %d", to));
        }
      }
    }
    for (int nid : ipins) {
      check_node_edges(nid, /*wire=*/false);
      if (sink < 0 || std::find(edges.begin(), edges.end(), sink) ==
                          edges.end()) {
        report->add(rules::kRrInvalidEdge, id_desc(g, nid),
                    "input pin does not feed its block's sink");
      }
    }
    const bool is_clb = sink >= 0 && !opins.empty();
    if (is_clb && !clb_checked) {
      clb_checked = true;
      const int x = g.node_x(sink), y = g.node_y(sink);
      // The four channel segments bordering a core tile.
      const RrType side_type[4] = {RrType::kChanX, RrType::kChanX,
                                   RrType::kChanY, RrType::kChanY};
      const int side_x[4] = {x, x, x - 1, x};
      const int side_y[4] = {y - 1, y, y, y};
      std::set<int> tapped;
      for (int s = 0; s < 4; ++s) {
        for (int t = 0; t < W; ++t) {
          const int w = g.find_chan(side_type[s], side_x[s], side_y[s], t);
          if (w < 0) continue;
          edges.clear();
          g.append_out_edges(w, &edges);
          for (int to : edges) {
            if (to >= g.wire_count() && to < n && g.node_block(to) == b) {
              tapped.insert(to);
            }
          }
        }
      }
      for (int nid : ipins) {
        if (!tapped.count(nid)) {
          report->add(rules::kRrUnreachable, id_desc(g, nid),
                      "no incoming edge; unusable by any route");
        }
      }
    }
    if (sink >= 0 && opins.empty() && !ipins.empty()) {
      // Output pad: its IPIN must be tapped from the perimeter channel.
      const int ip = ipins[0];
      const int x = g.node_x(ip), y = g.node_y(ip);
      RrType type;
      int wx, wy;
      if (y == 0) {
        type = RrType::kChanX, wx = x, wy = 0;
      } else if (y == g.ny() + 1) {
        type = RrType::kChanX, wx = x, wy = g.ny();
      } else if (x == 0) {
        type = RrType::kChanY, wx = 0, wy = y;
      } else {
        type = RrType::kChanY, wx = g.nx(), wy = y;
      }
      bool reachable = false;
      for (int t = 0; t < W && !reachable; ++t) {
        const int w = g.find_chan(type, wx, wy, t);
        reachable = w >= 0 && g.has_edge(w, ip);
      }
      if (!reachable) {
        report->add(rules::kRrUnreachable, id_desc(g, ip),
                    "no incoming edge; unusable by any route");
      }
    }
  }
}

}  // namespace

void lint_rr_nodes(const std::vector<RrNode>& nodes, int channel_width,
                   Report* report) {
  check_edges(nodes, report);
  check_unreachable(nodes, report);
  check_channel_width(nodes, channel_width, report);
  check_wires(nodes, report);
}

void lint_rr_graph(const route::RrGraph& graph, Report* report) {
  if (graph.dedup()) {
    lint_rr_dedup(graph, report);
    return;
  }
  lint_rr_nodes(graph.nodes(), graph.channel_width(), report);
}

}  // namespace amdrel::lint

#pragma once
// Cross-stage lint & invariant-checker engine.
//
// Every CAD stage hands the next a structured artifact (netlist, packed
// netlist, placement, RR graph, routing, bitstream); a mis-formed hand-off
// otherwise only surfaces as a wrong number several stages downstream.
// This engine gives all checkers a common vocabulary: registered rules
// with stable IDs, diagnostics with severities and design-object
// locations, and text / JSON report emitters. The rule families live in
// netlist_rules.hpp (BLIF/network hygiene), rr_rules.hpp (architecture /
// routing-resource graph) and flow_rules.hpp (post-stage invariants).

#include <string>
#include <string_view>
#include <vector>

namespace amdrel::lint {

enum class Severity { kInfo, kWarning, kError };

/// "info" / "warning" / "error".
const char* severity_name(Severity s);

/// Stable rule identifiers. Tests and tooling match on these exact
/// strings; never renumber an existing rule.
namespace rules {
// --- netlist family (NL0xx) ---
inline constexpr const char* kCombCycle = "NL001";
inline constexpr const char* kMultiDriven = "NL002";
inline constexpr const char* kUndrivenSignal = "NL003";
inline constexpr const char* kDanglingOutput = "NL004";
inline constexpr const char* kConstantLut = "NL005";
inline constexpr const char* kDuplicateLut = "NL006";
inline constexpr const char* kClockSanity = "NL007";
inline constexpr const char* kUnusedInput = "NL008";
// --- architecture / RR-graph family (RR0xx) ---
inline constexpr const char* kRrUnreachable = "RR001";
inline constexpr const char* kRrChannelWidth = "RR002";
inline constexpr const char* kRrAsymmetricSwitch = "RR003";
inline constexpr const char* kRrZeroFanoutWire = "RR004";
inline constexpr const char* kRrInvalidEdge = "RR005";
// --- flow invariant family (FLxxx; x = stage) ---
inline constexpr const char* kPackClusterSize = "FL101";
inline constexpr const char* kPackClusterInputs = "FL102";
inline constexpr const char* kPackClusterClock = "FL103";
inline constexpr const char* kPackCoverage = "FL104";
inline constexpr const char* kPlaceOverlap = "FL201";
inline constexpr const char* kPlaceOffGrid = "FL202";
inline constexpr const char* kRouteOveruse = "FL301";
inline constexpr const char* kRouteDisconnected = "FL302";
inline constexpr const char* kRouteBadEdge = "FL303";
inline constexpr const char* kBitgenRoundtrip = "FL401";
inline constexpr const char* kBitgenMalformed = "FL402";
// --- formal equivalence family (EQ0xx) ---
inline constexpr const char* kEqMiterSat = "EQ001";
inline constexpr const char* kEqInconclusive = "EQ002";
inline constexpr const char* kEqInterface = "EQ003";
inline constexpr const char* kEqRegisterMatch = "EQ004";
inline constexpr const char* kEqRandomMismatch = "EQ005";
}  // namespace rules

/// One registered rule: identity, default severity, one-line summary.
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* family;   ///< "netlist" | "rr-graph" | "flow" | "equiv"
  const char* summary;
};

/// All registered rules (stable order: netlist, rr-graph, flow).
const std::vector<RuleInfo>& rule_registry();
/// Registry entry for `id`, nullptr if unknown.
const RuleInfo* find_rule(std::string_view id);

/// One finding: which rule fired, on which design object, and where in
/// the flow. `object` names the offending entity ("signal y", "cluster
/// 3", "rr node 1207"); `stage` is the flow stage or artifact linted.
struct Diagnostic {
  std::string rule;
  Severity severity = Severity::kWarning;
  std::string object;
  std::string message;
  std::string stage;
};

/// Collects diagnostics across checkers. Per-rule output is capped so a
/// systemic defect (e.g. every wire unreachable) cannot flood the report;
/// the counts are always exact.
class Report {
 public:
  /// Diagnostics of one rule kept verbatim before suppression kicks in.
  static constexpr int kMaxPerRule = 100;

  /// Stage label stamped onto subsequently added diagnostics.
  void set_stage(std::string stage) { stage_ = std::move(stage); }
  const std::string& stage() const { return stage_; }

  /// Adds a finding for a registered rule (default severity from the
  /// registry). `rule` must exist in rule_registry().
  void add(std::string_view rule, std::string object, std::string message);
  /// Adds a fully specified diagnostic (stage is stamped if empty).
  void add(Diagnostic d);
  void merge(const Report& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  int count(Severity s) const;
  int count_rule(std::string_view rule) const;
  bool has_errors() const { return count(Severity::kError) > 0; }
  /// True if any diagnostic of `rule` was recorded.
  bool fired(std::string_view rule) const { return count_rule(rule) > 0; }

  /// Human-readable report: one line per diagnostic plus a summary line.
  std::string to_text() const;
  /// Machine-readable report: {"diagnostics":[...],"counts":{...}}.
  std::string to_json() const;

 private:
  std::string stage_;
  std::vector<Diagnostic> diags_;
  // rule id -> total findings (including suppressed ones).
  std::vector<std::pair<std::string, int>> rule_counts_;
  int& rule_count(std::string_view rule);
};

}  // namespace amdrel::lint

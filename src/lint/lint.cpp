#include "lint/lint.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::lint {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kRegistry = {
      // netlist
      {rules::kCombCycle, Severity::kError, "netlist",
       "combinational cycle through LUTs/gates"},
      {rules::kMultiDriven, Severity::kError, "netlist",
       "signal driven by more than one source"},
      {rules::kUndrivenSignal, Severity::kError, "netlist",
       "used signal has no driver (floating input)"},
      {rules::kDanglingOutput, Severity::kWarning, "netlist",
       "driven signal has no reader and is not a primary output"},
      {rules::kConstantLut, Severity::kWarning, "netlist",
       "LUT is constant or ignores one of its connected inputs"},
      {rules::kDuplicateLut, Severity::kWarning, "netlist",
       "two LUTs compute the same function of the same inputs"},
      {rules::kClockSanity, Severity::kWarning, "netlist",
       "clock gated by logic, used as data, or multiple clock domains"},
      {rules::kUnusedInput, Severity::kInfo, "netlist",
       "primary input drives nothing"},
      // rr-graph
      {rules::kRrUnreachable, Severity::kWarning, "rr-graph",
       "non-source RR node has no incoming edge"},
      {rules::kRrChannelWidth, Severity::kError, "rr-graph",
       "channel track count or track index inconsistent with W"},
      {rules::kRrAsymmetricSwitch, Severity::kWarning, "rr-graph",
       "wire-wire switch present in one direction only"},
      {rules::kRrZeroFanoutWire, Severity::kWarning, "rr-graph",
       "channel wire with no outgoing switch"},
      {rules::kRrInvalidEdge, Severity::kError, "rr-graph",
       "edge to a nonexistent node, self-loop, or duplicate edge"},
      // flow invariants
      {rules::kPackClusterSize, Severity::kError, "flow",
       "cluster holds more than N BLEs"},
      {rules::kPackClusterInputs, Severity::kError, "flow",
       "cluster uses more than I external inputs"},
      {rules::kPackClusterClock, Severity::kError, "flow",
       "cluster mixes more than one clock"},
      {rules::kPackCoverage, Severity::kError, "flow",
       "LUT, FF or BLE not packed exactly once"},
      {rules::kPlaceOverlap, Severity::kError, "flow",
       "two blocks placed at the same location"},
      {rules::kPlaceOffGrid, Severity::kError, "flow",
       "block placed outside its legal region"},
      {rules::kRouteOveruse, Severity::kError, "flow",
       "RR node used beyond its capacity"},
      {rules::kRouteDisconnected, Severity::kError, "flow",
       "net route is not a connected source-to-sinks tree"},
      {rules::kRouteBadEdge, Severity::kError, "flow",
       "net route uses an edge absent from the RR graph"},
      {rules::kBitgenRoundtrip, Severity::kError, "flow",
       "bitstream does not decode back to the routed configuration"},
      {rules::kBitgenMalformed, Severity::kError, "flow",
       "bitstream fails to deserialize or is internally inconsistent"},
      // formal equivalence
      {rules::kEqMiterSat, Severity::kError, "equiv",
       "formal miter satisfiable: designs provably differ"},
      {rules::kEqInconclusive, Severity::kWarning, "equiv",
       "equivalence proof inconclusive within the solver budget"},
      {rules::kEqInterface, Severity::kError, "equiv",
       "primary input/output interfaces do not match"},
      {rules::kEqRegisterMatch, Severity::kError, "equiv",
       "registers cannot be matched across the two designs"},
      {rules::kEqRandomMismatch, Severity::kError, "equiv",
       "random simulation vectors produce diverging outputs"},
  };
  return kRegistry;
}

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& r : rule_registry()) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

int& Report::rule_count(std::string_view rule) {
  for (auto& [id, n] : rule_counts_) {
    if (id == rule) return n;
  }
  rule_counts_.emplace_back(std::string(rule), 0);
  return rule_counts_.back().second;
}

void Report::add(std::string_view rule, std::string object,
                 std::string message) {
  const RuleInfo* info = find_rule(rule);
  AMDREL_CHECK_MSG(info != nullptr,
                   "unregistered lint rule: " + std::string(rule));
  Diagnostic d;
  d.rule = info->id;
  d.severity = info->severity;
  d.object = std::move(object);
  d.message = std::move(message);
  add(std::move(d));
}

void Report::add(Diagnostic d) {
  if (d.stage.empty()) d.stage = stage_;
  int& n = rule_count(d.rule);
  ++n;
  if (n > kMaxPerRule) return;  // counted, not stored
  if (n == kMaxPerRule) {
    d.message += " [further findings of this rule suppressed]";
  }
  diags_.push_back(std::move(d));
}

void Report::merge(const Report& other) {
  for (const Diagnostic& d : other.diags_) {
    Diagnostic copy = d;
    int& n = rule_count(copy.rule);
    ++n;
    if (n > kMaxPerRule) continue;
    diags_.push_back(std::move(copy));
  }
}

int Report::count(Severity s) const {
  return static_cast<int>(
      std::count_if(diags_.begin(), diags_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

int Report::count_rule(std::string_view rule) const {
  for (const auto& [id, n] : rule_counts_) {
    if (id == rule) return n;
  }
  return 0;
}

std::string Report::to_text() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << severity_name(d.severity) << " [" << d.rule << "]";
    if (!d.stage.empty()) os << " (" << d.stage << ")";
    if (!d.object.empty()) os << " " << d.object << ":";
    os << " " << d.message << "\n";
  }
  os << strprintf("%d error(s), %d warning(s), %d note(s)\n",
                  count(Severity::kError), count(Severity::kWarning),
                  count(Severity::kInfo));
  return os.str();
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << strprintf("\\u%04x", c);
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i) os << ",";
    os << "{\"rule\":";
    json_escape(os, d.rule);
    os << ",\"severity\":\"" << severity_name(d.severity) << "\",\"object\":";
    json_escape(os, d.object);
    os << ",\"message\":";
    json_escape(os, d.message);
    os << ",\"stage\":";
    json_escape(os, d.stage);
    os << "}";
  }
  os << "],\"counts\":{\"error\":" << count(Severity::kError)
     << ",\"warning\":" << count(Severity::kWarning)
     << ",\"info\":" << count(Severity::kInfo) << "}}";
  return os.str();
}

}  // namespace amdrel::lint

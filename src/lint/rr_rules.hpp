#pragma once
// Architecture / routing-resource-graph lint: structural health of the
// RR graph DUTYS+VPR hand the router. Catches generator bugs (a channel
// with the wrong track count, a pass-transistor switch recorded in one
// direction only, wires no switch can reach) before the router turns
// them into mysterious unroutability or optimistic channel widths.
//
// Rules: RR001 unreachable node, RR002 channel-width inconsistency,
// RR003 asymmetric wire-wire switch, RR004 zero-fanout wire, RR005
// invalid edge.

#include <vector>

#include "lint/lint.hpp"
#include "route/rr_graph.hpp"

namespace amdrel::lint {

/// Lints a raw RR node list against the declared channel width. Exposed
/// separately from the RrGraph overload so tests can seed defects.
void lint_rr_nodes(const std::vector<route::RrNode>& nodes, int channel_width,
                   Report* report);

/// Runs the full RR rule family on a built graph.
void lint_rr_graph(const route::RrGraph& graph, Report* report);

}  // namespace amdrel::lint

#include "lint/netlist_rules.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/strings.hpp"

namespace amdrel::lint {

namespace {

using netlist::Gate;
using netlist::Latch;
using netlist::Network;
using netlist::SignalId;

std::string sig(const Network& net, SignalId s) {
  return "signal '" + net.signal_name(s) + "'";
}

/// Counts drivers of every signal (PIs, gate outputs, latch Qs).
std::vector<int> driver_counts(const Network& net) {
  std::vector<int> drivers(static_cast<std::size_t>(net.num_signals()), 0);
  for (SignalId s : net.inputs()) ++drivers[static_cast<std::size_t>(s)];
  for (const Gate& g : net.gates()) {
    ++drivers[static_cast<std::size_t>(g.output)];
  }
  for (const Latch& l : net.latches()) ++drivers[static_cast<std::size_t>(l.q)];
  return drivers;
}

/// Counts readers of every signal (gate inputs, latch D/clock, POs).
std::vector<int> reader_counts(const Network& net) {
  std::vector<int> readers(static_cast<std::size_t>(net.num_signals()), 0);
  for (const Gate& g : net.gates()) {
    for (SignalId in : g.inputs) ++readers[static_cast<std::size_t>(in)];
  }
  for (const Latch& l : net.latches()) {
    ++readers[static_cast<std::size_t>(l.d)];
    if (l.clock != netlist::kNoSignal) {
      ++readers[static_cast<std::size_t>(l.clock)];
    }
  }
  for (SignalId s : net.outputs()) ++readers[static_cast<std::size_t>(s)];
  return readers;
}

// NL002: a signal with more than one driver.
void check_multi_driven(const Network& net, const std::vector<int>& drivers,
                        Report* report) {
  for (SignalId s = 0; s < net.num_signals(); ++s) {
    const int n = drivers[static_cast<std::size_t>(s)];
    if (n > 1) {
      report->add(rules::kMultiDriven, sig(net, s),
                  strprintf("driven by %d sources", n));
    }
  }
}

// NL003: a signal read by a gate/latch/PO but never driven.
void check_undriven(const Network& net, const std::vector<int>& drivers,
                    Report* report) {
  auto driven = [&](SignalId s) {
    return drivers[static_cast<std::size_t>(s)] > 0;
  };
  std::set<SignalId> flagged;  // one diagnostic per signal, first use named
  auto flag = [&](SignalId s, const std::string& use) {
    if (!flagged.insert(s).second) return;
    report->add(rules::kUndrivenSignal, sig(net, s), "floating: " + use);
  };
  for (const Gate& g : net.gates()) {
    for (SignalId in : g.inputs) {
      if (!driven(in)) flag(in, "input of gate '" + g.name + "'");
    }
  }
  for (const Latch& l : net.latches()) {
    if (!driven(l.d)) flag(l.d, "D of latch '" + l.name + "'");
    if (l.clock != netlist::kNoSignal && !driven(l.clock)) {
      flag(l.clock, "clock of latch '" + l.name + "'");
    }
  }
  for (SignalId s : net.outputs()) {
    if (!driven(s)) flag(s, "primary output");
  }
}

// NL004 / NL008: driven-but-unread signals; unread primary inputs.
void check_dangling(const Network& net, const std::vector<int>& readers,
                    Report* report) {
  std::set<SignalId> pis(net.inputs().begin(), net.inputs().end());
  auto unread = [&](SignalId s) {
    return readers[static_cast<std::size_t>(s)] == 0 && !net.is_output(s);
  };
  for (SignalId s : net.inputs()) {
    if (unread(s)) {
      report->add(rules::kUnusedInput, sig(net, s),
                  "primary input drives nothing");
    }
  }
  for (const Gate& g : net.gates()) {
    if (unread(g.output) && !pis.count(g.output)) {
      report->add(rules::kDanglingOutput, sig(net, g.output),
                  "output of gate '" + g.name + "' is never read");
    }
  }
  for (const Latch& l : net.latches()) {
    if (unread(l.q) && !pis.count(l.q)) {
      report->add(rules::kDanglingOutput, sig(net, l.q),
                  "Q of latch '" + l.name + "' is never read");
    }
  }
}

// NL001: combinational cycles among gates. Kahn peeling; the residual
// gates are exactly the cycle members (plus logic fed only by cycles).
void check_cycles(const Network& net, Report* report) {
  const auto& gates = net.gates();
  const int n = static_cast<int>(gates.size());
  std::vector<int> gate_of_signal(static_cast<std::size_t>(net.num_signals()),
                                  -1);
  for (int g = 0; g < n; ++g) {
    gate_of_signal[static_cast<std::size_t>(
        gates[static_cast<std::size_t>(g)].output)] = g;
  }
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> fanout(static_cast<std::size_t>(n));
  for (int g = 0; g < n; ++g) {
    for (SignalId in : gates[static_cast<std::size_t>(g)].inputs) {
      const int src = gate_of_signal[static_cast<std::size_t>(in)];
      if (src >= 0 && src != g) {
        fanout[static_cast<std::size_t>(src)].push_back(g);
        ++indegree[static_cast<std::size_t>(g)];
      } else if (src == g) {
        // direct self-loop: g's output feeds its own input
        ++indegree[static_cast<std::size_t>(g)];
      }
    }
  }
  std::vector<int> ready;
  for (int g = 0; g < n; ++g) {
    if (indegree[static_cast<std::size_t>(g)] == 0) ready.push_back(g);
  }
  int peeled = 0;
  while (!ready.empty()) {
    const int g = ready.back();
    ready.pop_back();
    ++peeled;
    for (int next : fanout[static_cast<std::size_t>(g)]) {
      if (--indegree[static_cast<std::size_t>(next)] == 0) {
        ready.push_back(next);
      }
    }
  }
  if (peeled == n) return;
  // Name the residual gates (bounded — the report caps per-rule output,
  // but keep the single summary diagnostic readable).
  std::string members;
  int listed = 0;
  for (int g = 0; g < n && listed < 8; ++g) {
    if (indegree[static_cast<std::size_t>(g)] > 0) {
      if (listed) members += ", ";
      members += "'" + gates[static_cast<std::size_t>(g)].name + "'";
      ++listed;
    }
  }
  if (n - peeled > listed) members += ", ...";
  report->add(rules::kCombCycle, "network '" + net.name() + "'",
              strprintf("%d gate(s) on combinational cycles: ", n - peeled) +
                  members);
}

// NL005: constant truth tables, and connected inputs the table ignores.
void check_constant_luts(const Network& net, Report* report) {
  for (const Gate& g : net.gates()) {
    if (g.table.n_inputs() > 0 && g.table.is_constant()) {
      report->add(rules::kConstantLut, "gate '" + g.name + "'",
                  strprintf("output is constant %d despite %d input(s)",
                            g.table.constant_value() ? 1 : 0,
                            g.table.n_inputs()));
      continue;
    }
    for (int i = 0; i < g.table.n_inputs(); ++i) {
      if (!g.table.depends_on(i)) {
        report->add(
            rules::kConstantLut, "gate '" + g.name + "'",
            strprintf("ignores connected input %d (%s)", i,
                      net.signal_name(g.inputs[static_cast<std::size_t>(i)])
                          .c_str()));
      }
    }
  }
}

// NL006: structurally identical LUTs (same table, same input signals).
void check_duplicate_luts(const Network& net, Report* report) {
  std::map<std::string, const Gate*> seen;
  for (const Gate& g : net.gates()) {
    std::string key = g.table.to_hex();
    for (SignalId in : g.inputs) key += "," + std::to_string(in);
    auto [it, inserted] = seen.emplace(std::move(key), &g);
    if (!inserted) {
      report->add(rules::kDuplicateLut, "gate '" + g.name + "'",
                  "computes the same function of the same inputs as gate '" +
                      it->second->name + "'");
    }
  }
}

// NL007: clock-domain sanity. The fabric registers everything on one
// global clock; flag gated clocks, clocks used as data, and multi-clock
// networks early (they would otherwise die in packing or silently lose
// the paper's single-clock assumption).
void check_clocks(const Network& net, Report* report) {
  std::set<SignalId> clocks;
  for (const Latch& l : net.latches()) {
    if (l.clock != netlist::kNoSignal) clocks.insert(l.clock);
  }
  if (clocks.empty()) return;
  for (SignalId c : clocks) {
    if (net.driver_gate(c) >= 0) {
      report->add(rules::kClockSanity, sig(net, c),
                  "clock is driven by combinational logic (gated clock)");
    } else if (net.driver_latch(c) >= 0) {
      report->add(rules::kClockSanity, sig(net, c),
                  "clock is driven by a latch (derived clock)");
    }
    for (const Gate& g : net.gates()) {
      for (SignalId in : g.inputs) {
        if (in == c) {
          report->add(rules::kClockSanity, sig(net, c),
                      "clock also feeds data input of gate '" + g.name + "'");
          break;
        }
      }
    }
  }
  if (clocks.size() > 1) {
    std::string names;
    for (SignalId c : clocks) {
      if (!names.empty()) names += ", ";
      names += "'" + net.signal_name(c) + "'";
    }
    report->add(rules::kClockSanity, "network '" + net.name() + "'",
                strprintf("%d clock domains (%s); the fabric provides a "
                          "single global clock",
                          static_cast<int>(clocks.size()), names.c_str()));
  }
}

}  // namespace

void lint_network(const netlist::Network& network, Report* report) {
  const std::vector<int> drivers = driver_counts(network);
  const std::vector<int> readers = reader_counts(network);
  check_multi_driven(network, drivers, report);
  check_undriven(network, drivers, report);
  check_dangling(network, readers, report);
  check_cycles(network, report);
  check_constant_luts(network, report);
  check_duplicate_luts(network, report);
  check_clocks(network, report);
}

}  // namespace amdrel::lint

#pragma once
// Netlist lint: structural hygiene of a gate-level network (any stage:
// synthesized, SIS-optimized or K-LUT mapped). Unlike Network::validate()
// these checks never throw — a defective netlist yields a complete list
// of diagnostics, so a broken DIVINER/DRUID hand-off reports every
// problem at once instead of dying on the first.
//
// Rules: NL001 combinational cycle, NL002 multi-driven net, NL003
// undriven (floating) input, NL004 dangling output, NL005 constant /
// input-insensitive LUT, NL006 duplicate LUT, NL007 clock-domain sanity,
// NL008 unused primary input.

#include "lint/lint.hpp"
#include "netlist/network.hpp"

namespace amdrel::lint {

/// Runs the full netlist rule family; appends to `report`.
void lint_network(const netlist::Network& network, Report* report);

}  // namespace amdrel::lint

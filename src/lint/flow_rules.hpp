#pragma once
// Flow invariant checks — the post-stage barriers of the CAD pipeline.
// Each stage of Fig. 11 (T-VPack packing, VPR place, VPR route, DAGGER
// bitgen) gets a checker that re-derives the legality conditions of its
// artifact and reports violations instead of throwing, so `flow` can
// stop at the first broken hand-off with a complete diagnosis.
//
// Rules: FL1xx post-pack, FL2xx post-place, FL3xx post-route, FL4xx
// post-bitgen (serialize/decode roundtrip).

#include <cstdint>
#include <vector>

#include "bitgen/bitstream.hpp"
#include "lint/lint.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/pathfinder.hpp"
#include "route/rr_graph.hpp"

namespace amdrel::lint {

/// Post-pack: every cluster within N/I/one-clock, every LUT/FF/BLE
/// packed exactly once.
void check_post_pack(const pack::PackedNetlist& packed, Report* report);

/// Post-place: all blocks on legal locations, no two blocks co-located.
void check_post_place(const place::Placement& placement, Report* report);

/// Post-route: every net a connected OPIN-rooted tree over real RR
/// edges reaching all sinks; no RR node beyond capacity.
void check_post_route(const route::RrGraph& graph,
                      const route::RouteResult& routing, Report* report);

/// Post-bitgen: the serialized bitstream deserializes and decodes back
/// to a netlist sequentially equivalent to the mapped design.
void check_post_bitgen(const std::vector<std::uint8_t>& bytes,
                       const netlist::Network& mapped, Report* report);

}  // namespace amdrel::lint

#include "lint/flow_rules.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "netlist/simulate.hpp"
#include "util/strings.hpp"

namespace amdrel::lint {

namespace {

using place::BlockKind;
using place::Loc;

std::string cluster_desc(std::size_t ci) {
  return strprintf("cluster %d", static_cast<int>(ci));
}

}  // namespace

void check_post_pack(const pack::PackedNetlist& packed, Report* report) {
  const netlist::Network& net = packed.network();
  const arch::ArchSpec& spec = packed.spec();

  std::vector<int> gate_seen(net.gates().size(), 0);
  std::vector<int> latch_seen(net.latches().size(), 0);
  for (std::size_t bi = 0; bi < packed.bles().size(); ++bi) {
    const pack::Ble& b = packed.bles()[bi];
    if (b.lut_gate >= 0) ++gate_seen[static_cast<std::size_t>(b.lut_gate)];
    if (b.latch >= 0) ++latch_seen[static_cast<std::size_t>(b.latch)];
    if (b.lut_gate < 0 && b.latch < 0) {
      report->add(rules::kPackCoverage, strprintf("BLE %d", (int)bi),
                  "empty BLE (no LUT and no FF)");
    }
    if (static_cast<int>(b.inputs.size()) > spec.k) {
      report->add(rules::kPackCoverage, strprintf("BLE %d", (int)bi),
                  strprintf("%d inputs exceed K=%d",
                            static_cast<int>(b.inputs.size()), spec.k));
    }
  }
  for (std::size_t g = 0; g < gate_seen.size(); ++g) {
    if (gate_seen[g] != 1) {
      report->add(rules::kPackCoverage,
                  "gate '" + net.gates()[g].name + "'",
                  strprintf("packed into %d BLE(s), expected 1", gate_seen[g]));
    }
  }
  for (std::size_t l = 0; l < latch_seen.size(); ++l) {
    if (latch_seen[l] != 1) {
      report->add(rules::kPackCoverage,
                  "latch '" + net.latches()[l].name + "'",
                  strprintf("packed into %d BLE(s), expected 1",
                            latch_seen[l]));
    }
  }

  std::vector<int> ble_seen(packed.bles().size(), 0);
  for (std::size_t ci = 0; ci < packed.clusters().size(); ++ci) {
    const pack::Cluster& c = packed.clusters()[ci];
    if (static_cast<int>(c.bles.size()) > spec.n) {
      report->add(rules::kPackClusterSize, cluster_desc(ci),
                  strprintf("%d BLEs exceed N=%d",
                            static_cast<int>(c.bles.size()), spec.n));
    }
    if (static_cast<int>(c.input_signals.size()) > spec.cluster_inputs()) {
      report->add(rules::kPackClusterInputs, cluster_desc(ci),
                  strprintf("%d external inputs exceed I=%d",
                            static_cast<int>(c.input_signals.size()),
                            spec.cluster_inputs()));
    }
    std::set<netlist::SignalId> clocks;
    for (int bi : c.bles) {
      ++ble_seen[static_cast<std::size_t>(bi)];
      const pack::Ble& b = packed.bles()[static_cast<std::size_t>(bi)];
      if (b.clock != netlist::kNoSignal) clocks.insert(b.clock);
    }
    if (clocks.size() > 1) {
      report->add(rules::kPackClusterClock, cluster_desc(ci),
                  strprintf("%d distinct clocks in one cluster",
                            static_cast<int>(clocks.size())));
    }
  }
  for (std::size_t bi = 0; bi < ble_seen.size(); ++bi) {
    if (ble_seen[bi] != 1) {
      report->add(rules::kPackCoverage, strprintf("BLE %d", (int)bi),
                  strprintf("clustered %d time(s), expected 1", ble_seen[bi]));
    }
  }
}

void check_post_place(const place::Placement& placement, Report* report) {
  const int nx = placement.nx(), ny = placement.ny();
  const int io_per_tile = placement.spec().io_per_tile;
  std::set<std::tuple<int, int, int>> used;
  for (std::size_t b = 0; b < placement.blocks().size(); ++b) {
    const place::Block& blk = placement.blocks()[b];
    const Loc& l = placement.location(static_cast<int>(b));
    if (blk.kind == BlockKind::kClb) {
      if (l.x < 1 || l.x > nx || l.y < 1 || l.y > ny) {
        report->add(rules::kPlaceOffGrid, "block '" + blk.name + "'",
                    strprintf("CLB at (%d,%d) outside the %dx%d core", l.x,
                              l.y, nx, ny));
      }
    } else {
      const bool on_ring =
          (l.x == 0 || l.x == nx + 1) != (l.y == 0 || l.y == ny + 1);
      if (!on_ring) {
        report->add(rules::kPlaceOffGrid, "block '" + blk.name + "'",
                    strprintf("IO pad at (%d,%d) not on the perimeter ring",
                              l.x, l.y));
      }
      if (l.sub < 0 || l.sub >= io_per_tile) {
        report->add(rules::kPlaceOffGrid, "block '" + blk.name + "'",
                    strprintf("pad sub-slot %d outside [0,%d)", l.sub,
                              io_per_tile));
      }
    }
    if (!used.insert(std::make_tuple(l.x, l.y, l.sub)).second) {
      report->add(rules::kPlaceOverlap, "block '" + blk.name + "'",
                  strprintf("location (%d,%d) slot %d already occupied", l.x,
                            l.y, l.sub));
    }
  }
}

void check_post_route(const route::RrGraph& graph,
                      const route::RouteResult& routing, Report* report) {
  const int n_nodes = graph.num_nodes();
  std::vector<int> occupancy(static_cast<std::size_t>(n_nodes), 0);
  for (std::size_t ni = 0; ni < routing.routes.size(); ++ni) {
    const route::NetRoute& r = routing.routes[ni];
    const auto& sinks = graph.sinks_of_net(static_cast<int>(ni));
    const std::string net = strprintf("net %d", static_cast<int>(ni));
    if (sinks.empty()) continue;  // clock/degenerate nets are not routed
    if (r.nodes.empty()) {
      report->add(rules::kRouteDisconnected, net, "net has no route");
      continue;
    }
    bool structure_ok = r.parent.size() == r.nodes.size();
    if (!structure_ok) {
      report->add(rules::kRouteDisconnected, net,
                  "route tree nodes/parents size mismatch");
    } else if (r.parent[0] != -1) {
      structure_ok = false;
      report->add(rules::kRouteDisconnected, net,
                  "route tree root has a parent");
    }
    if (r.nodes[0] != graph.opin_of_net(static_cast<int>(ni))) {
      report->add(rules::kRouteDisconnected, net,
                  "route tree does not start at the net's OPIN");
    }
    if (structure_ok) {
      for (std::size_t k = 1; k < r.nodes.size(); ++k) {
        const int p = r.parent[k];
        if (p < 0 || p >= static_cast<int>(k + 1)) {
          report->add(rules::kRouteDisconnected, net,
                      strprintf("node %d has invalid parent index %d",
                                static_cast<int>(k), p));
          continue;
        }
        const int from = r.nodes[static_cast<std::size_t>(p)];
        const int to = r.nodes[k];
        if (from < 0 || from >= n_nodes || to < 0 || to >= n_nodes) {
          report->add(rules::kRouteBadEdge, net,
                      "route references a nonexistent RR node");
          continue;
        }
        if (!graph.has_edge(from, to)) {
          report->add(rules::kRouteBadEdge, net,
                      strprintf("edge %d -> %d absent from the RR graph",
                                from, to));
        }
      }
    }
    std::set<int> in_tree(r.nodes.begin(), r.nodes.end());
    for (int s : sinks) {
      if (!in_tree.count(s)) {
        report->add(rules::kRouteDisconnected, net,
                    strprintf("route misses sink node %d", s));
      }
    }
    for (int id : r.nodes) {
      if (id >= 0 && id < n_nodes) ++occupancy[static_cast<std::size_t>(id)];
    }
  }
  for (int id = 0; id < n_nodes; ++id) {
    const int occ = occupancy[static_cast<std::size_t>(id)];
    if (occ <= 1) continue;  // capacity is always >= 1
    const int cap = graph.node_capacity(id);
    if (occ > cap) {
      report->add(rules::kRouteOveruse, strprintf("rr node %d", id),
                  strprintf("occupancy %d exceeds capacity %d", occ, cap));
    }
  }
}

void check_post_bitgen(const std::vector<std::uint8_t>& bytes,
                       const netlist::Network& mapped, Report* report) {
  bitgen::Bitstream reparsed;
  try {
    reparsed = bitgen::deserialize(bytes);
  } catch (const std::exception& e) {
    report->add(rules::kBitgenMalformed, "bitstream",
                std::string("deserialize failed: ") + e.what());
    return;
  }
  netlist::Network fabric;
  try {
    fabric = bitgen::decode_to_network(reparsed);
  } catch (const std::exception& e) {
    report->add(rules::kBitgenMalformed, "bitstream",
                std::string("decode failed: ") + e.what());
    return;
  }
  const auto equiv = netlist::check_equivalence(mapped, fabric, 4, 48);
  if (!equiv.equivalent) {
    report->add(rules::kBitgenRoundtrip, "bitstream",
                "decoded fabric is not equivalent to the mapped netlist: " +
                    equiv.message);
  }
}

}  // namespace amdrel::lint

#include "lint/equiv_rules.hpp"

#include <string>
#include <utility>

#include "netlist/simulate.hpp"

namespace amdrel::lint {

namespace {

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

/// The checker's one-line verdicts are stable API (tests match on them);
/// route each failure class to its EQ rule.
void report_formal(const verify::EquivResult& result, Report* report) {
  switch (result.status) {
    case verify::EquivStatus::kEquivalent:
      return;
    case verify::EquivStatus::kNotEquivalent: {
      if (contains(result.message, "name sets differ")) {
        report->add(rules::kEqInterface, "", result.message);
        return;
      }
      std::string object;
      std::string message = result.message;
      if (result.cex.has_value()) {
        object = result.cex->diverging_output;
        message += "\n" + result.cex->to_text();
      }
      report->add(rules::kEqMiterSat, std::move(object), std::move(message));
      return;
    }
    case verify::EquivStatus::kUnknown:
      if (contains(result.message, "register")) {
        report->add(rules::kEqRegisterMatch, "", result.message);
      } else {
        report->add(rules::kEqInconclusive, "", result.message);
      }
      return;
  }
}

}  // namespace

verify::EquivResult check_equivalence_pair(const netlist::Network& a,
                                           const netlist::Network& b,
                                           const EquivCheckOptions& options,
                                           Report* report) {
  bool random_diverged = false;
  std::string random_message;
  if (options.run_random) {
    const netlist::EquivalenceResult r = netlist::check_equivalence(
        a, b, options.random_runs, options.random_cycles,
        options.formal.seed);
    if (!r.equivalent) {
      random_diverged = true;
      random_message = r.message;
      report->add(rules::kEqRandomMismatch, "", r.message);
    }
  }

  if (options.run_formal) {
    verify::EquivResult result = verify::prove_equivalence(a, b,
                                                           options.formal);
    report_formal(result, report);
    return result;
  }

  // Random-only mode: synthesize a result so callers see one shape.
  verify::EquivResult result;
  if (random_diverged) {
    result.status = verify::EquivStatus::kNotEquivalent;
    result.message = std::move(random_message);
  } else {
    result.status = verify::EquivStatus::kUnknown;
    result.message = options.run_random
                         ? "random vectors agree (no formal proof attempted)"
                         : "no check requested";
  }
  return result;
}

}  // namespace amdrel::lint

#include "synth/lutmap.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "synth/opt.hpp"
#include "util/error.hpp"

namespace amdrel::synth {

using netlist::Gate;
using netlist::kNoSignal;
using netlist::Network;
using netlist::SignalId;
using netlist::TruthTable;

namespace {

/// A K-feasible cut: sorted leaf signals + costs.
struct Cut {
  std::vector<SignalId> leaves;
  int depth = 0;          // LUT depth if this cut is chosen
  double area_flow = 0.0;

  bool operator==(const Cut& o) const { return leaves == o.leaves; }
};

bool cut_better(const Cut& a, const Cut& b) {
  if (a.depth != b.depth) return a.depth < b.depth;
  if (a.area_flow != b.area_flow) return a.area_flow < b.area_flow;
  return a.leaves.size() < b.leaves.size();
}

/// Merges two sorted leaf sets; returns false if the union exceeds k.
bool merge_leaves(const std::vector<SignalId>& a,
                  const std::vector<SignalId>& b, int k,
                  std::vector<SignalId>* out) {
  out->clear();
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    SignalId next;
    if (i < a.size() && (j >= b.size() || a[i] <= b[j])) {
      next = a[i];
      if (j < b.size() && b[j] == next) ++j;
      ++i;
    } else {
      next = b[j];
      ++j;
    }
    out->push_back(next);
    if (static_cast<int>(out->size()) > k) return false;
  }
  return true;
}

}  // namespace

Network map_to_luts(const Network& input, const LutMapOptions& options,
                    LutMapStats* stats) {
  AMDREL_CHECK(options.k >= 2 && options.k <= 8);
  obs::Span span("synth.lutmap");
  std::uint64_t cut_enums = 0;  // merge attempts, batched into the registry
  // Gates wider than K cannot be covered by one LUT; decompose first.
  bool needs_decompose = false;
  for (const auto& g : input.gates()) {
    if (g.table.n_inputs() > 2) {
      needs_decompose = true;
      break;
    }
  }
  Network base = needs_decompose ? decompose_to_2input(input)
                                 : propagate_constants(input);
  const Network& net = base;

  const int n_signals = net.num_signals();
  std::vector<int> driver(static_cast<std::size_t>(n_signals), -1);
  std::vector<int> fanout(static_cast<std::size_t>(n_signals), 0);
  for (std::size_t gi = 0; gi < net.gates().size(); ++gi) {
    driver[static_cast<std::size_t>(net.gates()[gi].output)] =
        static_cast<int>(gi);
    for (SignalId in : net.gates()[gi].inputs) {
      ++fanout[static_cast<std::size_t>(in)];
    }
  }
  for (SignalId s : net.outputs()) ++fanout[static_cast<std::size_t>(s)];
  for (const auto& l : net.latches()) ++fanout[static_cast<std::size_t>(l.d)];

  // Cut sets per signal. Leaves (PI, latch Q) have the trivial cut only.
  std::vector<std::vector<Cut>> cuts(static_cast<std::size_t>(n_signals));
  std::vector<int> best_depth(static_cast<std::size_t>(n_signals), 0);
  std::vector<double> best_af(static_cast<std::size_t>(n_signals), 0.0);

  auto leaf_cut = [](SignalId s) {
    Cut c;
    c.leaves = {s};
    c.depth = 0;
    c.area_flow = 0.0;
    return c;
  };
  for (SignalId s : net.inputs()) {
    cuts[static_cast<std::size_t>(s)] = {leaf_cut(s)};
  }
  for (const auto& l : net.latches()) {
    cuts[static_cast<std::size_t>(l.q)] = {leaf_cut(l.q)};
  }

  auto topo = net.topo_order();
  for (int gi : topo) {
    const Gate& g = net.gates()[static_cast<std::size_t>(gi)];
    const SignalId out = g.output;
    std::vector<Cut> cand;

    auto eval_cut = [&](std::vector<SignalId> leaves) {
      Cut c;
      c.leaves = std::move(leaves);
      c.depth = 1;
      c.area_flow = 1.0;
      for (SignalId leaf : c.leaves) {
        c.depth = std::max(c.depth,
                           best_depth[static_cast<std::size_t>(leaf)] + 1);
        c.area_flow += best_af[static_cast<std::size_t>(leaf)];
      }
      return c;
    };

    if (g.inputs.empty()) {
      // Constant gate: trivially its own LUT.
      cand.push_back(eval_cut({}));
    } else if (g.inputs.size() == 1) {
      for (const Cut& c : cuts[static_cast<std::size_t>(g.inputs[0])]) {
        cand.push_back(eval_cut(c.leaves));
      }
    } else {
      AMDREL_CHECK_MSG(static_cast<int>(g.inputs.size()) <= options.k,
                       "gate wider than K after decomposition");
      // Pairwise merge across all fanins (2-input after decomposition, but
      // support up to K-input gates by folding left).
      std::vector<Cut> acc = cuts[static_cast<std::size_t>(g.inputs[0])];
      for (std::size_t fi = 1; fi < g.inputs.size(); ++fi) {
        std::vector<Cut> next;
        std::vector<SignalId> merged;
        for (const Cut& a : acc) {
          for (const Cut& b :
               cuts[static_cast<std::size_t>(g.inputs[fi])]) {
            ++cut_enums;
            if (!merge_leaves(a.leaves, b.leaves, options.k, &merged)) {
              continue;
            }
            Cut c;
            c.leaves = merged;
            next.push_back(std::move(c));
          }
        }
        acc = std::move(next);
      }
      for (Cut& c : acc) cand.push_back(eval_cut(std::move(c.leaves)));
    }
    // Dedup + keep the best few.
    std::sort(cand.begin(), cand.end(), cut_better);
    std::vector<Cut> kept;
    for (Cut& c : cand) {
      bool dup = false;
      for (const Cut& k : kept) {
        if (k == c) {
          dup = true;
          break;
        }
      }
      if (!dup) kept.push_back(std::move(c));
      if (static_cast<int>(kept.size()) >=
          options.cuts_per_node - 1) {
        break;
      }
    }
    AMDREL_CHECK_MSG(!kept.empty(), "no feasible cut for gate " + g.name);
    best_depth[static_cast<std::size_t>(out)] = kept.front().depth;
    double flow = kept.front().area_flow /
                  std::max(1, fanout[static_cast<std::size_t>(out)]);
    best_af[static_cast<std::size_t>(out)] = flow;
    // The trivial self-cut lets fanouts treat this node as a leaf.
    Cut self;
    self.leaves = {out};
    self.depth = kept.front().depth;
    self.area_flow = flow;
    kept.push_back(std::move(self));
    cuts[static_cast<std::size_t>(out)] = std::move(kept);
  }

  // ---- Truth table extraction per chosen cut. ----
  auto cone_truth = [&](SignalId root, const std::vector<SignalId>& leaves) {
    const int n = static_cast<int>(leaves.size());
    TruthTable t(n);
    // Evaluate the cone for every leaf pattern.
    std::map<SignalId, bool> val;
    // Recursive evaluator with memoization per pattern.
    for (std::uint64_t row = 0; row < t.n_rows(); ++row) {
      val.clear();
      for (int i = 0; i < n; ++i) {
        val[leaves[static_cast<std::size_t>(i)]] = (row >> i) & 1;
      }
      // Iterative DFS evaluation.
      std::vector<SignalId> stack{root};
      while (!stack.empty()) {
        SignalId s = stack.back();
        if (val.count(s)) {
          stack.pop_back();
          continue;
        }
        int d = driver[static_cast<std::size_t>(s)];
        AMDREL_CHECK_MSG(d >= 0, "cone leaf not in cut");
        const Gate& g = net.gates()[static_cast<std::size_t>(d)];
        bool ready = true;
        for (SignalId in : g.inputs) {
          if (!val.count(in)) {
            stack.push_back(in);
            ready = false;
          }
        }
        if (!ready) continue;
        std::uint64_t idx = 0;
        for (std::size_t i = 0; i < g.inputs.size(); ++i) {
          if (val[g.inputs[i]]) idx |= 1ull << i;
        }
        val[s] = g.table.get(idx);
        stack.pop_back();
      }
      t.set(row, val[root]);
    }
    return t;
  };

  // ---- Cover selection: walk back from required signals. ----
  std::vector<char> mapped(static_cast<std::size_t>(n_signals), 0);
  std::vector<SignalId> work;
  auto require_signal = [&](SignalId s) {
    if (driver[static_cast<std::size_t>(s)] < 0) return;  // PI / latch Q
    if (!mapped[static_cast<std::size_t>(s)]) {
      mapped[static_cast<std::size_t>(s)] = 1;
      work.push_back(s);
    }
  };
  for (SignalId s : net.outputs()) require_signal(s);
  for (const auto& l : net.latches()) require_signal(l.d);

  // Chosen LUT per mapped signal: the best non-self cut, with its cone
  // function extracted and leaves the function ignores pruned away (an
  // ignored leaf would waste a cluster input and net fanout, and cones
  // required only through ignored leaves would be mapped dead).
  struct ChosenLut {
    std::vector<SignalId> leaves;
    TruthTable table;
    int depth = 0;
  };
  std::map<SignalId, ChosenLut> chosen;
  while (!work.empty()) {
    SignalId s = work.back();
    work.pop_back();
    const auto& cset = cuts[static_cast<std::size_t>(s)];
    // Pick the best cut that is not the self cut.
    const Cut* pick = nullptr;
    for (const Cut& c : cset) {
      if (c.leaves.size() == 1 && c.leaves[0] == s) continue;
      pick = &c;
      break;
    }
    AMDREL_CHECK_MSG(pick != nullptr, "no cover cut for signal");
    ChosenLut lut;
    lut.table = cone_truth(s, pick->leaves);
    lut.leaves = pick->leaves;
    lut.depth = pick->depth;
    for (int i = static_cast<int>(lut.leaves.size()) - 1; i >= 0; --i) {
      if (!lut.table.depends_on(i)) {
        lut.table = lut.table.cofactor(i, false);
        lut.leaves.erase(lut.leaves.begin() + i);
      }
    }
    for (SignalId leaf : lut.leaves) require_signal(leaf);
    chosen.emplace(s, std::move(lut));
  }

  // ---- Build the output network. ----
  Network out(net.name());
  std::map<std::string, SignalId> name_map;
  auto xfer = [&](SignalId s) {
    const std::string& n = net.signal_name(s);
    auto it = name_map.find(n);
    if (it != name_map.end()) return it->second;
    SignalId ns = out.add_signal(n);
    name_map.emplace(n, ns);
    return ns;
  };
  for (SignalId s : net.inputs()) out.add_input(xfer(s));

  int max_depth = 0;
  for (const auto& [s, lut] : chosen) {
    std::vector<SignalId> ins;
    for (SignalId leaf : lut.leaves) ins.push_back(xfer(leaf));
    out.add_gate("lut_" + net.signal_name(s), lut.table, std::move(ins),
                 xfer(s));
    max_depth = std::max(max_depth, lut.depth);
  }
  for (const auto& l : net.latches()) {
    out.add_latch(l.name, xfer(l.d), xfer(l.q),
                  l.clock == kNoSignal ? kNoSignal : xfer(l.clock), l.init);
  }
  for (SignalId s : net.outputs()) out.add_output(xfer(s));

  if (stats != nullptr) {
    stats->luts = static_cast<int>(out.gates().size());
    stats->depth = max_depth;
  }
  static obs::Counter& c_enums = obs::counter("map.cut_enumerations");
  static obs::Counter& c_luts = obs::counter("map.luts");
  c_enums.add(cut_enums);
  c_luts.add(out.gates().size());
  if (span.active()) {
    span.metric("cut_enumerations", static_cast<double>(cut_enums));
    span.metric("luts", static_cast<double>(out.gates().size()));
    span.metric("depth", max_depth);
  }
  out.validate();
  return out;
}

}  // namespace amdrel::synth

#pragma once
// Logic optimization passes (the SIS role in the paper's flow):
// constant propagation, buffer/inverter absorption, dead-logic sweep and
// Shannon decomposition into ≤2-input gates (preparation for LUT mapping).

#include "netlist/network.hpp"

namespace amdrel::synth {

/// Removes gates whose outputs reach no primary output or latch input.
/// Returns the number of gates removed.
int sweep_dead_logic(netlist::Network& network);

/// Propagates constants, collapses single-input gates (buffers/inverters
/// absorbed into fanouts where possible) and re-hashes structurally
/// identical gates. Produces a fresh network with the same I/O names.
netlist::Network propagate_constants(const netlist::Network& network);

/// Decomposes every gate with more than 2 inputs into 2-input AND/OR/XOR/
/// MUX-free gates via Shannon expansion (with structural hashing).
netlist::Network decompose_to_2input(const netlist::Network& network);

/// Counts literals/gates for QoR reporting.
struct NetworkCost {
  int gates = 0;
  int literals = 0;  ///< sum of gate fanins
  int depth = 0;     ///< logic levels (PI/latch-Q = level 0)
};
NetworkCost network_cost(const netlist::Network& network);

}  // namespace amdrel::synth

#include "synth/opt.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace amdrel::synth {

using netlist::Gate;
using netlist::kNoSignal;
using netlist::Network;
using netlist::SignalId;
using netlist::TruthTable;

namespace {

/// A bit during network rewriting: constant or signal in the NEW network.
struct Bit {
  bool is_const = false;
  bool const_val = false;
  SignalId sig = kNoSignal;
  static Bit constant(bool v) { return {true, v, kNoSignal}; }
  static Bit signal(SignalId s) { return {false, false, s}; }
};

/// Gate emission with folding + structural hashing into a new network.
class Rebuilder {
 public:
  explicit Rebuilder(Network& net) : net_(&net) {}

  Network& net() { return *net_; }

  SignalId fresh(const std::string& hint) {
    // Always decorated: bare original names are reserved for pin_to_name
    // (POs and latch-D signals must keep their names).
    std::string name = hint + "_r" + std::to_string(counter_++);
    while (net_->find_signal(name) != kNoSignal) {
      name = hint + "_r" + std::to_string(counter_++);
    }
    return net_->add_signal(name);
  }

  SignalId materialize(const Bit& b, const std::string& hint) {
    if (!b.is_const) return b.sig;
    SignalId& cached = b.const_val ? const1_ : const0_;
    if (cached == kNoSignal) {
      cached = fresh(b.const_val ? "const1" : "const0");
      net_->add_gate("const" + std::to_string(counter_++),
                     TruthTable::constant(b.const_val), {}, cached);
    }
    (void)hint;
    return cached;
  }

  Bit make(TruthTable table, std::vector<Bit> ins, const std::string& hint) {
    for (int i = static_cast<int>(ins.size()) - 1; i >= 0; --i) {
      if (ins[static_cast<std::size_t>(i)].is_const) {
        table = table.cofactor(i, ins[static_cast<std::size_t>(i)].const_val);
        ins.erase(ins.begin() + i);
      }
    }
    for (int i = static_cast<int>(ins.size()) - 1; i >= 0; --i) {
      if (!table.depends_on(i)) {
        table = table.cofactor(i, false);
        ins.erase(ins.begin() + i);
      }
    }
    if (table.n_inputs() == 0) return Bit::constant(table.constant_value());
    if (table == TruthTable::identity()) return ins[0];

    std::string key = table.to_hex();
    for (const Bit& b : ins) key += "," + std::to_string(b.sig);
    auto it = strash_.find(key);
    if (it != strash_.end()) return Bit::signal(it->second);

    std::vector<SignalId> sig_ins;
    for (const Bit& b : ins) sig_ins.push_back(b.sig);
    SignalId out = fresh(hint);
    net_->add_gate("g" + std::to_string(counter_++), std::move(table),
                   std::move(sig_ins), out);
    strash_.emplace(std::move(key), out);
    return Bit::signal(out);
  }

  /// Forces bit `b` to appear under signal name `name` (for PO/latch-D).
  SignalId pin_to_name(const Bit& b, const std::string& name) {
    if (!b.is_const && b.sig != kNoSignal &&
        net_->signal_name(b.sig) == name) {
      return b.sig;
    }
    SignalId s = net_->find_signal(name);
    if (s == kNoSignal) s = net_->add_signal(name);
    if (b.is_const) {
      net_->add_gate("pin" + std::to_string(counter_++),
                     TruthTable::constant(b.const_val), {}, s);
    } else {
      net_->add_gate("pin" + std::to_string(counter_++),
                     TruthTable::identity(), {b.sig}, s);
    }
    return s;
  }

 private:
  Network* net_;
  int counter_ = 0;
  SignalId const0_ = kNoSignal;
  SignalId const1_ = kNoSignal;
  std::map<std::string, SignalId> strash_;
};

/// Shared rewrite driver: rebuilds `src` gate by gate, transforming each
/// gate's function through `emit` (which may expand it into several gates).
template <typename EmitFn>
Network rewrite_network(const Network& src, EmitFn emit) {
  Network dst(src.name());
  Rebuilder rb(dst);
  std::vector<Bit> value(static_cast<std::size_t>(src.num_signals()));

  for (SignalId s : src.inputs()) {
    SignalId ns = dst.add_signal(src.signal_name(s));
    dst.add_input(ns);
    value[static_cast<std::size_t>(s)] = Bit::signal(ns);
  }
  for (const auto& l : src.latches()) {
    SignalId nq = dst.add_signal(src.signal_name(l.q));
    value[static_cast<std::size_t>(l.q)] = Bit::signal(nq);
  }

  for (int gi : src.topo_order()) {
    const Gate& g = src.gates()[static_cast<std::size_t>(gi)];
    std::vector<Bit> ins;
    ins.reserve(g.inputs.size());
    for (SignalId in : g.inputs) {
      ins.push_back(value[static_cast<std::size_t>(in)]);
    }
    value[static_cast<std::size_t>(g.output)] =
        emit(rb, g.table, std::move(ins), src.signal_name(g.output));
  }

  for (const auto& l : src.latches()) {
    SignalId d =
        rb.pin_to_name(value[static_cast<std::size_t>(l.d)],
                       src.signal_name(l.d));
    SignalId clk = kNoSignal;
    if (l.clock != kNoSignal) {
      const Bit& cb = value[static_cast<std::size_t>(l.clock)];
      clk = rb.materialize(cb, src.signal_name(l.clock));
    }
    dst.add_latch(l.name, d, dst.find_signal(src.signal_name(l.q)), clk,
                  l.init);
  }
  for (SignalId s : src.outputs()) {
    SignalId po = rb.pin_to_name(value[static_cast<std::size_t>(s)],
                                 src.signal_name(s));
    dst.add_output(po);
  }
  return dst;
}

}  // namespace

int sweep_dead_logic(Network& network) {
  // Needed signals: POs, latch D and clocks.
  std::vector<char> needed(static_cast<std::size_t>(network.num_signals()), 0);
  for (SignalId s : network.outputs()) needed[static_cast<std::size_t>(s)] = 1;
  for (const auto& l : network.latches()) {
    needed[static_cast<std::size_t>(l.d)] = 1;
    if (l.clock != kNoSignal) needed[static_cast<std::size_t>(l.clock)] = 1;
  }
  // Walk gates in reverse topological order, marking inputs of needed gates.
  auto topo = network.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Gate& g = network.gates()[static_cast<std::size_t>(*it)];
    if (!needed[static_cast<std::size_t>(g.output)]) continue;
    for (SignalId in : g.inputs) needed[static_cast<std::size_t>(in)] = 1;
  }
  // Rebuild the gate list without dead gates.
  Network fresh(network.name());
  // Cheap approach: rewrite with identity emit, but skip dead gates by
  // filtering before rewrite. Simplest correct path: mark and rebuild via
  // rewrite_network (dead gates are skipped automatically because their
  // outputs feed nothing — the rewrite only materializes reachable logic
  // lazily). rewrite_network walks all gates though; filter here instead.
  int removed = 0;
  std::vector<Gate> kept;
  for (const Gate& g : network.gates()) {
    if (needed[static_cast<std::size_t>(g.output)]) {
      kept.push_back(g);
    } else {
      ++removed;
    }
  }
  if (removed == 0) return 0;
  Network out(network.name());
  std::map<std::string, SignalId> name_map;
  auto xfer = [&](SignalId s) {
    const std::string& n = network.signal_name(s);
    auto it = name_map.find(n);
    if (it != name_map.end()) return it->second;
    SignalId ns = out.add_signal(n);
    name_map.emplace(n, ns);
    return ns;
  };
  for (SignalId s : network.inputs()) out.add_input(xfer(s));
  for (const Gate& g : kept) {
    std::vector<SignalId> ins;
    for (SignalId in : g.inputs) ins.push_back(xfer(in));
    out.add_gate(g.name, g.table, std::move(ins), xfer(g.output));
  }
  for (const auto& l : network.latches()) {
    out.add_latch(l.name, xfer(l.d), xfer(l.q),
                  l.clock == kNoSignal ? kNoSignal : xfer(l.clock), l.init);
  }
  for (SignalId s : network.outputs()) out.add_output(xfer(s));
  network = std::move(out);
  return removed;
}

Network propagate_constants(const Network& network) {
  return rewrite_network(
      network, [](Rebuilder& rb, const TruthTable& table, std::vector<Bit> ins,
                  const std::string& hint) {
        return rb.make(table, std::move(ins), hint);
      });
}

namespace {

/// Emits `table` over `ins` as a tree of ≤2-input gates (Shannon).
Bit shannon(Rebuilder& rb, const TruthTable& table, const std::vector<Bit>& ins,
            const std::string& hint) {
  std::vector<Bit> work = ins;
  TruthTable t = table;
  // Fold constants first so recursion terminates cleanly.
  for (int i = static_cast<int>(work.size()) - 1; i >= 0; --i) {
    if (work[static_cast<std::size_t>(i)].is_const) {
      t = t.cofactor(i, work[static_cast<std::size_t>(i)].const_val);
      work.erase(work.begin() + i);
    }
  }
  for (int i = static_cast<int>(work.size()) - 1; i >= 0; --i) {
    if (!t.depends_on(i)) {
      t = t.cofactor(i, false);
      work.erase(work.begin() + i);
    }
  }
  if (t.n_inputs() <= 2) return rb.make(t, work, hint);

  const int split = t.n_inputs() - 1;
  Bit x = work[static_cast<std::size_t>(split)];
  std::vector<Bit> rest(work.begin(), work.end() - 1);
  Bit f0 = shannon(rb, t.cofactor(split, false), rest, hint);
  Bit f1 = shannon(rb, t.cofactor(split, true), rest, hint);
  // out = (x & f1) | (!x & f0), all 2-input gates.
  Bit a = rb.make(TruthTable::and_n(2), {x, f1}, hint);
  TruthTable andc(2);  // !in0 & in1
  andc.set(0b10, true);
  Bit b = rb.make(andc, {x, f0}, hint);
  return rb.make(TruthTable::or_n(2), {a, b}, hint);
}

}  // namespace

Network decompose_to_2input(const Network& network) {
  return rewrite_network(
      network, [](Rebuilder& rb, const TruthTable& table, std::vector<Bit> ins,
                  const std::string& hint) {
        return shannon(rb, table, ins, hint);
      });
}

NetworkCost network_cost(const Network& network) {
  NetworkCost cost;
  cost.gates = static_cast<int>(network.gates().size());
  std::vector<int> level(static_cast<std::size_t>(network.num_signals()), 0);
  for (int gi : network.topo_order()) {
    const Gate& g = network.gates()[static_cast<std::size_t>(gi)];
    cost.literals += static_cast<int>(g.inputs.size());
    int lvl = 0;
    for (SignalId in : g.inputs) {
      lvl = std::max(lvl, level[static_cast<std::size_t>(in)]);
    }
    level[static_cast<std::size_t>(g.output)] = lvl + 1;
    cost.depth = std::max(cost.depth, lvl + 1);
  }
  return cost;
}

}  // namespace amdrel::synth

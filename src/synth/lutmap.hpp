#pragma once
// Technology mapping to K-input LUTs via priority K-feasible cuts
// (depth-minimizing with area-flow tie-breaking — the role SIS's LUT
// mapping plays in the paper's flow; algorithmically this is the
// cut-based successor of FlowMap).

#include "netlist/network.hpp"

namespace amdrel::synth {

struct LutMapOptions {
  int k = 4;           ///< LUT input count (paper: K=4)
  int cuts_per_node = 8;
};

struct LutMapStats {
  int luts = 0;
  int depth = 0;  ///< LUT levels on the longest PI→PO/FF path
};

/// Maps `network` (any gate sizes; gates wider than 2 inputs are
/// decomposed internally) into a network whose every gate is a ≤K-input
/// LUT. Signal names of PIs, POs and latch outputs are preserved, so the
/// result is name-equivalent to the input.
netlist::Network map_to_luts(const netlist::Network& network,
                             const LutMapOptions& options = {},
                             LutMapStats* stats = nullptr);

}  // namespace amdrel::synth

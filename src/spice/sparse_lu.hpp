#pragma once
// Sparse LU solver for the fixed-structure MNA systems of the transient
// simulator.
//
// The sparsity pattern of an MNA matrix is determined by the circuit
// topology and never changes across Newton iterations or timesteps, so the
// expensive work — choosing a fill-reducing pivot order and computing the
// fill-in pattern — is done once, on the first factorization, and every
// later solve only re-runs the numeric elimination on the frozen pattern
// (the classic SPICE "sparse1.3" / KLU-refactor strategy):
//
//   1. Build phase: the assembler registers every structurally possible
//      (row, col) entry via entry() and receives a stable slot id; stamps
//      are written into the slot-indexed values() array.
//   2. First solve(): pivot-order discovery. Markowitz-ordered Gaussian
//      elimination with threshold partial pivoting picks a row/column
//      permutation that keeps fill-in low while bounding element growth
//      (voltage-source branch rows have structurally zero diagonals, so a
//      purely diagonal pivot order is not an option). The full fill pattern
//      is recorded; structural entries that are numerically zero at
//      discovery time still propagate fill, so the recorded pattern covers
//      every later numeric state.
//   3. Later solve()s: up-looking row refactorization on the frozen
//      pattern + permutation — no pivot search, no allocation. If a pivot
//      collapses numerically (matrix values drifted far from the discovery
//      state), discovery is re-run automatically with the current values.
//
// Complexity per refactor is O(flops of the factorization), typically a few
// nonzeros per row for circuit matrices, versus O(n^3) for the dense LU it
// replaces.

#include <cstddef>
#include <vector>

namespace amdrel::spice {

class SparseLu {
 public:
  explicit SparseLu(int n);

  /// Registers a structural entry (build phase); duplicate (r, c) pairs
  /// return the same slot id. Must not be called after finalize().
  int entry(int r, int c);

  /// Freezes the pattern and allocates the values array.
  void finalize();

  int n() const { return n_; }
  std::size_t nnz() const { return entries_.size(); }
  bool finalized() const { return finalized_; }

  /// Slot-indexed coefficient storage, nnz() long. Assemble by adding into
  /// values()[slot]; clear with assign/copy between solves.
  std::vector<double>& values() { return values_; }

  /// Solves A x = b in place (b becomes x) with the current values.
  /// Returns false if the matrix is numerically singular. Pass
  /// `values_changed = false` when values() is bit-identical to the last
  /// solve to reuse the existing numeric factors (skips refactorization).
  bool solve(std::vector<double>& b, bool values_changed = true);

 private:
  struct Entry {
    int row, col;
  };

  bool discover();  // pivot search + symbolic fill on current values
  bool refactor();  // numeric elimination on the frozen pattern

  int n_;
  bool finalized_ = false;
  bool have_pattern_ = false;
  bool have_factors_ = false;

  // Build-phase structure.
  std::vector<Entry> entries_;
  std::vector<std::vector<std::pair<int, int>>> row_slots_;  // row -> (col, slot)
  std::vector<double> values_;

  // Discovery results (frozen across refactorizations). Patterns and
  // factors are stored CSR-style — flat arrays plus per-row offsets — so
  // the refactorization inner loops stream through contiguous memory.
  std::vector<int> prow_;      // pivot step k -> original row
  std::vector<int> col_step_;  // original col -> pivot step (permuted position)
  // Scatter lists: permuted row k assembles from slots scat_slot_[i] into
  // positions scat_pos_[i] for i in [sptr_[k], sptr_[k+1]). The first
  // contribution to each position is ordered before aptr_[k] and assigns
  // (no prior clear needed); the rest add. Pattern positions no slot maps
  // to (pure fill-in) are zeroed from zpos_[zptr_[k]..zptr_[k+1]).
  std::vector<int> sptr_;
  std::vector<int> aptr_;
  std::vector<int> scat_slot_;
  std::vector<int> scat_pos_;
  std::vector<int> zptr_;
  std::vector<int> zpos_;
  // Frozen pattern per permuted row k: L positions (< k, ascending) in
  // lpat_[lptr_[k]..lptr_[k+1]) and U positions (>= k, ascending, first is
  // the diagonal) in upat_[uptr_[k]..uptr_[k+1]).
  std::vector<int> lptr_, lpat_;
  std::vector<int> uptr_, upat_;

  // Numeric factors, aligned with lpat_/upat_.
  std::vector<double> lval_;
  std::vector<double> uval_;
  std::vector<double> udiag_inv_;

  // Workspaces (allocated once).
  std::vector<double> work_;
  std::vector<double> y_;
};

}  // namespace amdrel::spice

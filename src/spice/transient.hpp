#pragma once
// Transient (and DC operating point) analysis.
//
// Modified nodal analysis with Newton–Raphson per timestep and backward-Euler
// companion models. Accurate enough for relative energy/delay comparisons of
// small digital cells (the paper's use case); see DESIGN.md §1.

#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace amdrel::spice {

/// Sampled node-voltage traces plus per-source energy bookkeeping.
struct TransientResult {
  std::vector<double> time;                        ///< [s], one per sample
  std::vector<std::vector<double>> voltage;        ///< [node][sample]
  std::vector<std::string> source_names;
  std::vector<double> source_energy;               ///< energy delivered [J]
  std::vector<double> source_charge;               ///< charge delivered [C]

  double v(NodeId n, std::size_t sample) const {
    return voltage[static_cast<std::size_t>(n)][sample];
  }

  /// Total energy delivered by sources whose name starts with `prefix`
  /// (e.g. "vdd" to sum all supply rails).
  double energy_from(const std::string& prefix) const;

  /// Times at which node `n` crosses `level` in the given direction.
  /// rising=true counts upward crossings.
  std::vector<double> crossings(NodeId n, double level, bool rising) const;

  /// Propagation delay: first crossing of `out` after time `t_from`.
  /// Returns -1 if the output never crosses.
  double delay_from(double t_from, NodeId out, double level,
                    bool rising) const;
};

struct TransientOptions {
  double t_stop = 10e-9;   ///< [s]
  double dt = 1e-12;       ///< fixed base step [s]
  double nr_tol = 1e-6;    ///< NR convergence |dV| [V]
  int nr_max_iters = 100;
  double gmin = 1e-12;     ///< convergence conductance to ground [S]
  bool record = true;      ///< keep voltage traces (off for energy-only runs)
};

class TransientSim {
 public:
  explicit TransientSim(const Circuit& circuit);

  /// DC operating point with all sources at t=0 value (source stepping used
  /// for convergence). Result stored as initial condition for run().
  void solve_dc();

  /// Runs the transient; implies solve_dc() if not already done.
  TransientResult run(const TransientOptions& options);

 private:
  struct DeviceCaps {  // linearized intrinsic caps of one MOSFET
    double cgs, cgd, cdb, csb;
  };

  void build_static_structure();
  /// One NR solve at the given time with BE companion caps (dt<=0: DC).
  /// Updates x_ in place; returns false on non-convergence.
  bool newton_solve(double t, double dt, const std::vector<double>& x_prev,
                    double source_scale, const TransientOptions& options);

  const Circuit* circuit_;
  int n_nodes_;       // including ground
  int n_vsrc_;
  int n_unknowns_;    // (n_nodes_-1) + n_vsrc_
  std::vector<DeviceCaps> mos_caps_;
  std::vector<double> x_;  // current solution
  bool have_dc_ = false;

  // scratch (reused across steps)
  std::vector<double> mat_;
  std::vector<double> rhs_;
  std::vector<int> perm_;
};

}  // namespace amdrel::spice

#pragma once
// Transient (and DC operating point) analysis.
//
// Modified nodal analysis with Newton–Raphson per timestep and backward-Euler
// companion models. Accurate enough for relative energy/delay comparisons of
// small digital cells (the paper's use case); see DESIGN.md §1.
//
// Two linear-solver backends share the same NR loop:
//  * kSparse (default): the MNA sparsity pattern is built once per circuit,
//    static stamps (resistors, gmin, voltage-source pattern, capacitor
//    companion conductances at the current dt) are cached, and each NR
//    iteration only re-stamps the nonlinear MOSFET entries before a sparse
//    LU factorization that reuses its pivot order across solves
//    (spice/sparse_lu.hpp).
//  * kDense: the original dense O(n³) path, kept as the correctness oracle
//    for the sparse solver and for debugging.

#include <memory>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/sparse_lu.hpp"

namespace amdrel::spice {

/// Sampled node-voltage traces plus per-source energy bookkeeping.
struct TransientResult {
  std::vector<double> time;                        ///< [s], one per sample
  std::vector<std::vector<double>> voltage;        ///< [node][sample]
  std::vector<std::string> source_names;
  std::vector<double> source_energy;               ///< energy delivered [J]
  std::vector<double> source_charge;               ///< charge delivered [C]

  double v(NodeId n, std::size_t sample) const {
    return voltage[static_cast<std::size_t>(n)][sample];
  }

  /// Total energy delivered by sources whose name starts with `prefix`
  /// (e.g. "vdd" to sum all supply rails).
  double energy_from(const std::string& prefix) const;

  /// Times at which node `n` crosses `level` in the given direction.
  /// rising=true counts upward crossings. Samples landing exactly on
  /// `level` count once, when the trace continues through to the far side.
  std::vector<double> crossings(NodeId n, double level, bool rising) const;

  /// Propagation delay: first crossing of `out` after time `t_from`.
  /// Returns -1 if the output never crosses.
  double delay_from(double t_from, NodeId out, double level,
                    bool rising) const;
};

struct TransientOptions {
  double t_stop = 10e-9;   ///< [s]
  double dt = 1e-12;       ///< fixed base step [s]
  double nr_tol = 1e-6;    ///< NR convergence: absolute |dV| floor [V]
  /// NR convergence: relative term, SPICE-style. A node converges when its
  /// correction is below nr_tol + nr_reltol*|v|. The default is 10x tighter
  /// than the Berkeley SPICE RELTOL=1e-3 convention. Set to 0 for the pure
  /// absolute criterion (reference/golden runs).
  double nr_reltol = 1e-4;
  /// Device bypass (sparse backend): a MOSFET whose terminal voltages all
  /// moved less than nr_bypass*(nr_tol + nr_reltol*|v|) since its last
  /// linearization keeps its previous stamps, skipping the device eval and
  /// — when every device bypasses — the refactorization. The introduced
  /// error is bounded by the NR acceptance tolerance, matching the SPICE
  /// BYPASS convention. Set to 0 to disable (reference/golden runs).
  double nr_bypass = 1.0;
  int nr_max_iters = 100;
  double gmin = 1e-12;     ///< convergence conductance to ground [S]
  bool record = true;      ///< keep voltage traces (off for energy-only runs)
};

/// Linear-solver backend for the MNA systems.
enum class MnaSolver { kSparse, kDense };

class TransientSim {
 public:
  explicit TransientSim(const Circuit& circuit,
                        MnaSolver solver = MnaSolver::kSparse);

  /// DC operating point with all sources at t=0 value (source stepping used
  /// for convergence). Result stored as initial condition for run().
  /// NR tolerances (nr_tol / nr_reltol / nr_bypass) are taken from `base`
  /// so a golden-accuracy run() is golden end-to-end; iteration limits and
  /// gmin are managed internally by the continuation schedule.
  void solve_dc(const TransientOptions& base = {});

  /// Runs the transient; implies solve_dc() if not already done.
  TransientResult run(const TransientOptions& options);

  /// Cumulative Newton-Raphson work counters across every solve issued by
  /// this simulator (DC continuation steps included). Exposed for the obs
  /// trace and for benches; incrementing them is a handful of integer adds
  /// per NR iteration, so they are always on.
  struct NrStats {
    long long steps = 0;            ///< accepted NR solves (DC + transient)
    long long nr_iters = 0;         ///< Newton iterations executed
    long long device_bypasses = 0;  ///< MOSFET linearizations skipped
    long long refactorizations = 0; ///< LU factorizations performed
    long long solves = 0;           ///< linear back-substitutions
  };
  const NrStats& nr_stats() const { return nr_stats_; }

 private:
  struct DeviceCaps {  // linearized intrinsic caps of one MOSFET
    double cgs, cgd, cdb, csb;
  };

  // Sparse-backend stamp bookkeeping: slot ids into the SparseLu values
  // array, resolved once during symbolic analysis (-1 where a terminal is
  // ground and the entry does not exist).
  struct QuadSlots {  // two-terminal conductance stamp between nodes a, b
    int aa = -1, bb = -1, ab = -1, ba = -1;
  };
  struct CapStamp {  // capacitor companion: conductance quad + current pair
    NodeId a = kGround, b = kGround;
    double farads = 0.0;
    double geq = 0.0;  // farads/dt at the cached dt (0 for DC)
    QuadSlots q;
  };
  struct MosSlots {  // the 3x2 Jacobian block of one MOSFET
    int dd = -1, ds = -1, dg = -1, ss = -1, sd = -1, sg = -1;
  };
  struct VsrcSlots {  // branch-row pattern of one voltage source
    int row_pos = -1, pos_row = -1, row_neg = -1, neg_row = -1;
  };
  struct MosWork {  // latest linearization of one MOSFET
    NodeId nd = kGround, ns = kGround;
    double sign = 1.0, gds = 0.0, gm = 0.0, ieq = 0.0;
    bool swapped = false;
    // Terminal voltages at the linearization point (bypass reference).
    // Infinity forces a full evaluation on first use.
    double vd = kNever, vg = kNever, vs = kNever;
  };
  static constexpr double kNever = 1e308;
  struct MosParams {  // per-device constants hoisted out of the NR loop
    NodeId drain = kGround, gate = kGround, source = kGround;
    double beta = 0.0, vth = 0.0, lambda = 0.0, sign = 1.0;
  };

  void build_static_structure();
  void build_sparse_pattern();
  /// Re-assembles the cached static stamps for (dt, gmin); dt<=0 means DC
  /// (capacitors open).
  void assemble_static(double dt, double gmin);
  /// One NR solve at the given time with BE companion caps (dt<=0: DC).
  /// Updates x_ in place; returns false on non-convergence. `x_init`, when
  /// given, seeds the NR iterate (predictor); x_ is used otherwise.
  bool newton_solve(double t, double dt, const std::vector<double>& x_prev,
                    double source_scale, const TransientOptions& options,
                    const std::vector<double>* x_init = nullptr);

  const Circuit* circuit_;
  MnaSolver solver_;
  int n_nodes_;       // including ground
  int n_vsrc_;
  int n_unknowns_;    // (n_nodes_-1) + n_vsrc_
  std::vector<DeviceCaps> mos_caps_;
  std::vector<MosParams> mos_params_;
  std::vector<double> x_;  // current solution
  bool have_dc_ = false;

  // Sparse backend: pattern, slot tables, cached static stamps.
  std::unique_ptr<SparseLu> lu_;
  std::vector<int> diag_slots_;                            // per node >= 1
  std::vector<std::pair<QuadSlots, double>> res_stamps_;   // slots, siemens
  std::vector<CapStamp> cap_stamps_;  // linear caps + MOSFET intrinsic caps
  std::vector<MosSlots> mos_slots_;
  std::vector<VsrcSlots> vsrc_slots_;
  std::vector<double> base_values_;
  double cached_dt_ = 0.0;    // 0 = cache empty; DC is cached as -1
  double cached_gmin_ = 0.0;
  // Refactorization elision: lu_->values() currently equals base_values_
  // plus the MOSFET stamps recorded in mos_work_, and the LU factors match.
  bool lu_values_current_ = false;

  // scratch (reused across steps to avoid per-step allocation)
  std::vector<double> mat_;  // dense backend only
  std::vector<double> rhs_;
  std::vector<double> rhs_static_;  // sparse: RHS part fixed within a step
  std::vector<double> dense_a_;
  std::vector<double> x_new_;   // NR iterate
  std::vector<double> x_prev_;  // previous-timestep state
  std::vector<double> x_pred_;  // extrapolated initial guess
  std::vector<MosWork> mos_work_;
  NrStats nr_stats_;
};

}  // namespace amdrel::spice

#include "spice/circuit.hpp"

#include <cmath>

#include "util/error.hpp"

namespace amdrel::spice {

Waveform Waveform::dc(double volts) {
  Waveform w;
  w.kind_ = Kind::kDc;
  w.dc_ = volts;
  return w;
}

Waveform Waveform::pulse(double v0, double v1, double delay, double rise,
                         double fall, double width, double period) {
  AMDREL_CHECK(rise > 0 && fall > 0 && width >= 0 && period > 0);
  AMDREL_CHECK(rise + width + fall <= period);
  Waveform w;
  w.kind_ = Kind::kPulse;
  w.v0_ = v0;
  w.v1_ = v1;
  w.delay_ = delay;
  w.rise_ = rise;
  w.fall_ = fall;
  w.width_ = width;
  w.period_ = period;
  return w;
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
  AMDREL_CHECK(!points.empty());
  for (std::size_t i = 1; i < points.size(); ++i) {
    AMDREL_CHECK_MSG(points[i].first >= points[i - 1].first,
                     "PWL points must be time-sorted");
  }
  Waveform w;
  w.kind_ = Kind::kPwl;
  w.points_ = std::move(points);
  return w;
}

double Waveform::at(double t) const {
  switch (kind_) {
    case Kind::kDc:
      return dc_;
    case Kind::kPulse: {
      if (t < delay_) return v0_;
      double tp = std::fmod(t - delay_, period_);
      if (tp < rise_) return v0_ + (v1_ - v0_) * (tp / rise_);
      tp -= rise_;
      if (tp < width_) return v1_;
      tp -= width_;
      if (tp < fall_) return v1_ + (v0_ - v1_) * (tp / fall_);
      return v0_;
    }
    case Kind::kPwl: {
      if (t <= points_.front().first) return points_.front().second;
      if (t >= points_.back().first) return points_.back().second;
      for (std::size_t i = 1; i < points_.size(); ++i) {
        if (t <= points_[i].first) {
          const auto& [t0, v0] = points_[i - 1];
          const auto& [t1, v1] = points_[i];
          if (t1 == t0) return v1;
          return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
        }
      }
      return points_.back().second;
    }
  }
  return 0.0;
}

Circuit::Circuit(const process::Tech018& tech) : tech_(&tech) {
  names_by_id_.push_back("0");
}

NodeId Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = node_names_.find(name);
  if (it != node_names_.end()) return it->second;
  NodeId id = next_node_++;
  node_names_.emplace(name, id);
  names_by_id_.push_back(name);
  return id;
}

NodeId Circuit::new_node() {
  NodeId id = next_node_++;
  names_by_id_.push_back("$n" + std::to_string(id));
  return id;
}

bool Circuit::has_node(const std::string& name) const {
  return node_names_.count(name) > 0;
}

NodeId Circuit::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = node_names_.find(name);
  AMDREL_CHECK_MSG(it != node_names_.end(), "unknown node: " + name);
  return it->second;
}

std::string Circuit::node_name(NodeId n) const {
  AMDREL_CHECK(n >= 0 && n < next_node_);
  return names_by_id_[static_cast<std::size_t>(n)];
}

void Circuit::add_mosfet(const std::string& name, MosType type, NodeId d,
                         NodeId g, NodeId s, double w_um, double l_um) {
  AMDREL_CHECK(w_um > 0);
  if (l_um <= 0) l_um = tech_->l_min_um;
  mosfets_.push_back(Mosfet{name, type, d, g, s, w_um, l_um});
}

void Circuit::add_resistor(const std::string& name, NodeId a, NodeId b,
                           double ohms) {
  AMDREL_CHECK(ohms > 0);
  resistors_.push_back(Resistor{name, a, b, ohms});
}

void Circuit::add_capacitor(const std::string& name, NodeId a, NodeId b,
                            double farads) {
  AMDREL_CHECK(farads >= 0);
  if (farads == 0) return;
  capacitors_.push_back(Capacitor{name, a, b, farads});
}

void Circuit::add_cap_to_ground(NodeId n, double farads) {
  if (farads <= 0 || n == kGround) return;
  for (auto& c : capacitors_) {
    if (c.a == n && c.b == kGround) {
      c.farads += farads;
      return;
    }
  }
  capacitors_.push_back(
      Capacitor{"cnode" + std::to_string(n), n, kGround, farads});
}

void Circuit::add_vsource(const std::string& name, NodeId pos, NodeId neg,
                          Waveform wave) {
  vsources_.push_back(VSource{name, pos, neg, std::move(wave)});
}

double Circuit::total_transistor_width_um() const {
  double total = 0;
  for (const auto& m : mosfets_) total += m.w_um;
  return total;
}

double Circuit::device_area_um2() const {
  double total = 0;
  for (const auto& m : mosfets_) total += tech_->transistor_area_um2(m.w_um);
  return total;
}

}  // namespace amdrel::spice

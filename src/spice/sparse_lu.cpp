#include "spice/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace amdrel::spice {

namespace {
constexpr double kTiny = 1e-300;       // absolute singularity guard
constexpr double kPivotRel = 1e-3;     // threshold-pivoting tolerance
constexpr double kRepivotRel = 1e-14;  // refactor pivot-collapse guard
}  // namespace

SparseLu::SparseLu(int n) : n_(n) {
  AMDREL_CHECK(n >= 1);
  row_slots_.resize(static_cast<std::size_t>(n));
}

int SparseLu::entry(int r, int c) {
  AMDREL_CHECK(!finalized_);
  AMDREL_CHECK(r >= 0 && r < n_ && c >= 0 && c < n_);
  auto& row = row_slots_[static_cast<std::size_t>(r)];
  for (const auto& [col, slot] : row) {
    if (col == c) return slot;
  }
  const int slot = static_cast<int>(entries_.size());
  entries_.push_back(Entry{r, c});
  row.push_back({c, slot});
  return slot;
}

void SparseLu::finalize() {
  AMDREL_CHECK(!finalized_);
  finalized_ = true;
  values_.assign(entries_.size(), 0.0);
  work_.assign(static_cast<std::size_t>(n_), 0.0);
  y_.assign(static_cast<std::size_t>(n_), 0.0);
}

bool SparseLu::discover() {
  const int n = n_;
  have_pattern_ = false;

  // Working copy of the matrix: per-row column→value maps (original
  // indices). Only run on pattern (re)discovery, so clarity over speed.
  std::vector<std::map<int, double>> rows(static_cast<std::size_t>(n));
  for (std::size_t s = 0; s < entries_.size(); ++s) {
    rows[static_cast<std::size_t>(entries_[s].row)][entries_[s].col] +=
        values_[s];
  }

  std::vector<char> row_active(static_cast<std::size_t>(n), 1);
  std::vector<char> col_active(static_cast<std::size_t>(n), 1);
  std::vector<int> col_count(static_cast<std::size_t>(n), 0);
  for (const auto& row : rows) {
    for (const auto& [c, v] : row) {
      (void)v;
      ++col_count[static_cast<std::size_t>(c)];
    }
  }

  prow_.assign(static_cast<std::size_t>(n), -1);
  col_step_.assign(static_cast<std::size_t>(n), -1);
  std::vector<int> row_step(static_cast<std::size_t>(n), -1);
  // Per original row: L positions (pivot steps that updated it) and, once
  // the row is chosen as pivot, the original columns of its U part.
  std::vector<std::vector<int>> lsteps(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> ucols(static_cast<std::size_t>(n));
  // Column maxima over the active submatrix (threshold pivoting needs them
  // to bound element growth). Computed exactly up front, then maintained as
  // a monotone overestimate during elimination — a too-large maximum only
  // tightens the pivot threshold (never a stability problem), and if it
  // ever rejects every candidate we recompute exactly and retry.
  std::vector<double> colmax(static_cast<std::size_t>(n), 0.0);
  auto exact_colmax = [&]() {
    std::fill(colmax.begin(), colmax.end(), 0.0);
    for (int r = 0; r < n; ++r) {
      if (!row_active[static_cast<std::size_t>(r)]) continue;
      for (const auto& [c, v] : rows[static_cast<std::size_t>(r)]) {
        double& m = colmax[static_cast<std::size_t>(c)];
        m = std::max(m, std::fabs(v));
      }
    }
  };
  exact_colmax();

  // Markowitz pivot: minimize (row_nnz-1)*(col_nnz-1) among entries that
  // pass the relative-magnitude threshold; break ties on magnitude.
  auto find_pivot = [&](int& pr, int& pc) {
    pr = -1;
    pc = -1;
    long long best_score = 0;
    double best_abs = 0.0;
    for (int r = 0; r < n; ++r) {
      if (!row_active[static_cast<std::size_t>(r)]) continue;
      const auto& row = rows[static_cast<std::size_t>(r)];
      const long long nr = static_cast<long long>(row.size());
      for (const auto& [c, v] : row) {
        const double a = std::fabs(v);
        if (a < kTiny || a < kPivotRel * colmax[static_cast<std::size_t>(c)]) {
          continue;
        }
        const long long score =
            (nr - 1) *
            (static_cast<long long>(col_count[static_cast<std::size_t>(c)]) -
             1);
        if (pr < 0 || score < best_score ||
            (score == best_score && a > best_abs)) {
          pr = r;
          pc = c;
          best_score = score;
          best_abs = a;
        }
      }
    }
  };

  for (int k = 0; k < n; ++k) {
    int pr, pc;
    find_pivot(pr, pc);
    if (pr < 0) {
      exact_colmax();
      find_pivot(pr, pc);
    }
    if (pr < 0) return false;  // numerically singular active submatrix

    prow_[static_cast<std::size_t>(k)] = pr;
    row_step[static_cast<std::size_t>(pr)] = k;
    col_step_[static_cast<std::size_t>(pc)] = k;
    row_active[static_cast<std::size_t>(pr)] = 0;
    col_active[static_cast<std::size_t>(pc)] = 0;
    auto& prow = rows[static_cast<std::size_t>(pr)];
    for (const auto& [c, v] : prow) {
      (void)v;
      ucols[static_cast<std::size_t>(pr)].push_back(c);
      --col_count[static_cast<std::size_t>(c)];
    }
    const double piv = prow[pc];

    // Eliminate the pivot column from the remaining active rows. Entries
    // that are numerically zero still propagate STRUCTURAL fill: the frozen
    // pattern must cover every later numeric state (MOSFET stamps are zero
    // in cutoff but become nonzero when the device turns on).
    for (int i = 0; i < n; ++i) {
      if (!row_active[static_cast<std::size_t>(i)]) continue;
      auto& irow = rows[static_cast<std::size_t>(i)];
      auto it = irow.find(pc);
      if (it == irow.end()) continue;
      const double f = it->second / piv;
      irow.erase(it);
      lsteps[static_cast<std::size_t>(i)].push_back(k);
      for (const auto& [c, v] : prow) {
        if (c == pc) continue;
        auto [it2, inserted] = irow.try_emplace(c, 0.0);
        if (inserted) ++col_count[static_cast<std::size_t>(c)];
        it2->second -= f * v;
        double& m = colmax[static_cast<std::size_t>(c)];
        m = std::max(m, std::fabs(it2->second));
      }
    }
  }

  // Freeze the pattern in permuted coordinates, CSR-style.
  lptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  uptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  lpat_.clear();
  upat_.clear();
  udiag_inv_.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<int> pu;
  for (int k = 0; k < n; ++k) {
    const int pr = prow_[static_cast<std::size_t>(k)];
    for (int p : lsteps[static_cast<std::size_t>(pr)]) lpat_.push_back(p);
    pu.clear();
    for (int c : ucols[static_cast<std::size_t>(pr)]) {
      pu.push_back(col_step_[static_cast<std::size_t>(c)]);
    }
    std::sort(pu.begin(), pu.end());
    AMDREL_CHECK(!pu.empty() && pu.front() == k);
    for (int p : pu) upat_.push_back(p);
    lptr_[static_cast<std::size_t>(k) + 1] = static_cast<int>(lpat_.size());
    uptr_[static_cast<std::size_t>(k) + 1] = static_cast<int>(upat_.size());
  }
  lval_.assign(lpat_.size(), 0.0);
  uval_.assign(upat_.size(), 0.0);

  sptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : entries_) {
    ++sptr_[static_cast<std::size_t>(row_step[static_cast<std::size_t>(
                e.row)]) +
            1];
  }
  for (int k = 0; k < n; ++k) {
    sptr_[static_cast<std::size_t>(k) + 1] += sptr_[static_cast<std::size_t>(k)];
  }
  scat_slot_.assign(entries_.size(), 0);
  scat_pos_.assign(entries_.size(), 0);
  std::vector<int> fill = sptr_;
  for (std::size_t s = 0; s < entries_.size(); ++s) {
    const int k = row_step[static_cast<std::size_t>(entries_[s].row)];
    const int at = fill[static_cast<std::size_t>(k)]++;
    scat_slot_[static_cast<std::size_t>(at)] = static_cast<int>(s);
    scat_pos_[static_cast<std::size_t>(at)] =
        col_step_[static_cast<std::size_t>(entries_[s].col)];
  }
  // Reorder each row's scatter list so the first contribution to a position
  // comes first (it assigns, the rest add), and record pattern positions no
  // slot maps to — pure fill-in that must be zeroed before elimination.
  aptr_.assign(static_cast<std::size_t>(n), 0);
  zptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  zpos_.clear();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<int> firsts, rest;
  for (int k = 0; k < n; ++k) {
    const int s0 = sptr_[static_cast<std::size_t>(k)];
    const int s1 = sptr_[static_cast<std::size_t>(k) + 1];
    firsts.clear();
    rest.clear();
    for (int i = s0; i < s1; ++i) {
      const int pos = scat_pos_[static_cast<std::size_t>(i)];
      if (!seen[static_cast<std::size_t>(pos)]) {
        seen[static_cast<std::size_t>(pos)] = 1;
        firsts.push_back(i);
      } else {
        rest.push_back(i);
      }
    }
    std::vector<int> slot_tmp, pos_tmp;
    for (int i : firsts) {
      slot_tmp.push_back(scat_slot_[static_cast<std::size_t>(i)]);
      pos_tmp.push_back(scat_pos_[static_cast<std::size_t>(i)]);
    }
    for (int i : rest) {
      slot_tmp.push_back(scat_slot_[static_cast<std::size_t>(i)]);
      pos_tmp.push_back(scat_pos_[static_cast<std::size_t>(i)]);
    }
    for (int i = s0; i < s1; ++i) {
      scat_slot_[static_cast<std::size_t>(i)] =
          slot_tmp[static_cast<std::size_t>(i - s0)];
      scat_pos_[static_cast<std::size_t>(i)] =
          pos_tmp[static_cast<std::size_t>(i - s0)];
    }
    aptr_[static_cast<std::size_t>(k)] =
        s0 + static_cast<int>(firsts.size());
    for (int i = lptr_[static_cast<std::size_t>(k)];
         i < lptr_[static_cast<std::size_t>(k) + 1]; ++i) {
      if (!seen[static_cast<std::size_t>(lpat_[static_cast<std::size_t>(i)])])
        zpos_.push_back(lpat_[static_cast<std::size_t>(i)]);
    }
    for (int i = uptr_[static_cast<std::size_t>(k)];
         i < uptr_[static_cast<std::size_t>(k) + 1]; ++i) {
      if (!seen[static_cast<std::size_t>(upat_[static_cast<std::size_t>(i)])])
        zpos_.push_back(upat_[static_cast<std::size_t>(i)]);
    }
    zptr_[static_cast<std::size_t>(k) + 1] = static_cast<int>(zpos_.size());
    for (int i = s0; i < s1; ++i)
      seen[static_cast<std::size_t>(scat_pos_[static_cast<std::size_t>(i)])] =
          0;
  }
  have_pattern_ = true;
  return true;
}

bool SparseLu::refactor() {
  const int n = n_;
  double* const work = work_.data();
  const double* const vals = values_.data();
  const int* const lpat = lpat_.data();
  const int* const upat = upat_.data();
  double* const lval = lval_.data();
  double* const uval = uval_.data();
  for (int k = 0; k < n; ++k) {
    const int l0 = lptr_[static_cast<std::size_t>(k)];
    const int l1 = lptr_[static_cast<std::size_t>(k) + 1];
    const int u0 = uptr_[static_cast<std::size_t>(k)];
    const int u1 = uptr_[static_cast<std::size_t>(k) + 1];
    const int s0 = sptr_[static_cast<std::size_t>(k)];
    const int sa = aptr_[static_cast<std::size_t>(k)];
    const int s1 = sptr_[static_cast<std::size_t>(k) + 1];
    for (int i = s0; i < sa; ++i) {
      work[scat_pos_[static_cast<std::size_t>(i)]] =
          vals[scat_slot_[static_cast<std::size_t>(i)]];
    }
    for (int i = sa; i < s1; ++i) {
      work[scat_pos_[static_cast<std::size_t>(i)]] +=
          vals[scat_slot_[static_cast<std::size_t>(i)]];
    }
    for (int i = zptr_[static_cast<std::size_t>(k)];
         i < zptr_[static_cast<std::size_t>(k) + 1]; ++i) {
      work[zpos_[static_cast<std::size_t>(i)]] = 0.0;
    }

    // Up-looking elimination: apply every earlier U row this row depends on.
    for (int i = l0; i < l1; ++i) {
      const int j = lpat[i];
      const double l = work[j] * udiag_inv_[static_cast<std::size_t>(j)];
      lval[i] = l;
      if (l == 0.0) continue;
      const int ju1 = uptr_[static_cast<std::size_t>(j) + 1];
      for (int m = uptr_[static_cast<std::size_t>(j)] + 1; m < ju1; ++m) {
        work[upat[m]] -= l * uval[m];
      }
    }

    double row_max = 0.0;
    for (int i = u0; i < u1; ++i) {
      const double v = work[upat[i]];
      uval[i] = v;
      row_max = std::max(row_max, std::fabs(v));
    }
    // A pivot that collapsed relative to its row means the discovery-time
    // ordering no longer fits the numeric state: trigger re-discovery.
    const double piv = std::fabs(uval[u0]);
    if (piv < kTiny || piv < kRepivotRel * row_max) return false;
    udiag_inv_[static_cast<std::size_t>(k)] = 1.0 / uval[u0];
  }
  return true;
}

bool SparseLu::solve(std::vector<double>& b, bool values_changed) {
  AMDREL_CHECK(finalized_);
  AMDREL_CHECK(b.size() == static_cast<std::size_t>(n_));
  if (!have_pattern_) {
    have_factors_ = false;
    if (!discover() || !refactor()) return false;
    have_factors_ = true;
  } else if (values_changed || !have_factors_) {
    have_factors_ = false;
    if (!refactor()) {
      if (!discover() || !refactor()) return false;
    }
    have_factors_ = true;
  }

  const int n = n_;
  double* const y = y_.data();
  const int* const lpat = lpat_.data();
  const int* const upat = upat_.data();
  const double* const lval = lval_.data();
  const double* const uval = uval_.data();
  // Forward substitution: y = L⁻¹ P b (L unit lower-triangular).
  for (int k = 0; k < n; ++k) {
    double s = b[static_cast<std::size_t>(prow_[static_cast<std::size_t>(k)])];
    const int l1 = lptr_[static_cast<std::size_t>(k) + 1];
    for (int i = lptr_[static_cast<std::size_t>(k)]; i < l1; ++i) {
      s -= lval[i] * y[lpat[i]];
    }
    y[k] = s;
  }
  // Backward substitution, in place on y_.
  for (int k = n - 1; k >= 0; --k) {
    double s = y[k];
    const int u1 = uptr_[static_cast<std::size_t>(k) + 1];
    for (int i = uptr_[static_cast<std::size_t>(k)] + 1; i < u1; ++i) {
      s -= uval[i] * y[upat[i]];
    }
    y[k] = s * udiag_inv_[static_cast<std::size_t>(k)];
  }
  // Undo the column permutation: unknown c lives at position col_step_[c].
  for (int c = 0; c < n; ++c) {
    b[static_cast<std::size_t>(c)] =
        y_[static_cast<std::size_t>(col_step_[static_cast<std::size_t>(c)])];
  }
  return true;
}

}  // namespace amdrel::spice

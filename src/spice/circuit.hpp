#pragma once
// Transistor-level circuit netlist for the analog transient simulator.
//
// Supported devices cover everything the paper's experiments need: level-1
// MOSFETs, linear R and C, and independent voltage sources with DC / pulse /
// piecewise-linear waveforms. Node 0 is ground.

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "process/tech018.hpp"

namespace amdrel::spice {

using NodeId = int;
constexpr NodeId kGround = 0;

/// Piecewise-linear voltage waveform; flat before first / after last point.
class Waveform {
 public:
  static Waveform dc(double volts);
  /// Periodic pulse: v0 → v1 with given delay, rise/fall, width, period.
  static Waveform pulse(double v0, double v1, double delay, double rise,
                        double fall, double width, double period);
  static Waveform pwl(std::vector<std::pair<double, double>> points);

  double at(double t) const;

 private:
  // For pulses we keep parameters (exact periodicity); for PWL the points.
  enum class Kind { kDc, kPulse, kPwl } kind_ = Kind::kDc;
  double dc_ = 0.0;
  double v0_ = 0, v1_ = 0, delay_ = 0, rise_ = 0, fall_ = 0, width_ = 0,
         period_ = 0;
  std::vector<std::pair<double, double>> points_;
};

enum class MosType { kNmos, kPmos };

struct Mosfet {
  std::string name;
  MosType type;
  NodeId drain, gate, source;
  double w_um;  ///< drawn width [µm]
  double l_um;  ///< drawn length [µm]
};

struct Resistor {
  std::string name;
  NodeId a, b;
  double ohms;
};

struct Capacitor {
  std::string name;
  NodeId a, b;
  double farads;
};

struct VSource {
  std::string name;
  NodeId pos, neg;
  Waveform wave;
};

/// A flat transistor-level circuit plus its process binding.
class Circuit {
 public:
  explicit Circuit(const process::Tech018& tech = process::default_tech());

  const process::Tech018& tech() const { return *tech_; }

  /// Returns the node id for `name`, creating it on first use.
  NodeId node(const std::string& name);
  /// Anonymous internal node.
  NodeId new_node();
  bool has_node(const std::string& name) const;
  NodeId find_node(const std::string& name) const;  // throws if absent
  int num_nodes() const { return next_node_; }
  std::string node_name(NodeId n) const;

  void add_mosfet(const std::string& name, MosType type, NodeId d, NodeId g,
                  NodeId s, double w_um, double l_um = 0.0);
  void add_resistor(const std::string& name, NodeId a, NodeId b, double ohms);
  void add_capacitor(const std::string& name, NodeId a, NodeId b,
                     double farads);
  /// Adds to an existing cap between the same ordered pair if present.
  void add_cap_to_ground(NodeId n, double farads);
  void add_vsource(const std::string& name, NodeId pos, NodeId neg,
                   Waveform wave);

  const std::vector<Mosfet>& mosfets() const { return mosfets_; }
  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }

  /// Total drawn transistor width [µm] (area proxy) and device count.
  double total_transistor_width_um() const;

  /// Layout-area estimate of all devices [µm^2] (see Tech018).
  double device_area_um2() const;

 private:
  const process::Tech018* tech_;
  int next_node_ = 1;  // 0 is ground
  std::unordered_map<std::string, NodeId> node_names_;
  std::vector<std::string> names_by_id_;
  std::vector<Mosfet> mosfets_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VSource> vsources_;
};

}  // namespace amdrel::spice

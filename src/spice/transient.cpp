#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace amdrel::spice {
namespace {

/// Level-1 drain current of an NMOS-normalized device (vgs/vds already
/// polarity-adjusted, vds >= 0 after source/drain swap). Returns ids and
/// derivatives w.r.t. vgs and vds.
struct MosEval {
  double ids, gm, gds;
};

MosEval level1(double vgs, double vds, double vth, double beta,
               double lambda) {
  MosEval e{0.0, 0.0, 0.0};
  const double vov = vgs - vth;
  if (vov <= 0) {
    // Cut off. A tiny slope keeps NR matrices non-singular.
    return e;
  }
  const double clm = 1.0 + lambda * vds;
  if (vds < vov) {
    // Triode.
    e.ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
    e.gm = beta * vds * clm;
    e.gds = beta * (vov - vds) * clm +
            beta * (vov * vds - 0.5 * vds * vds) * lambda;
  } else {
    // Saturation.
    e.ids = 0.5 * beta * vov * vov * clm;
    e.gm = beta * vov * clm;
    e.gds = 0.5 * beta * vov * vov * lambda;
  }
  return e;
}

}  // namespace

double TransientResult::energy_from(const std::string& prefix) const {
  double total = 0;
  for (std::size_t i = 0; i < source_names.size(); ++i) {
    if (source_names[i].rfind(prefix, 0) == 0) total += source_energy[i];
  }
  return total;
}

std::vector<double> TransientResult::crossings(NodeId n, double level,
                                               bool rising) const {
  std::vector<double> out;
  const auto& v = voltage[static_cast<std::size_t>(n)];
  for (std::size_t i = 1; i < v.size(); ++i) {
    const bool up = v[i - 1] < level && v[i] >= level;
    const bool down = v[i - 1] > level && v[i] <= level;
    if ((rising && up) || (!rising && down)) {
      const double frac = (level - v[i - 1]) / (v[i] - v[i - 1]);
      out.push_back(time[i - 1] + frac * (time[i] - time[i - 1]));
    }
  }
  return out;
}

double TransientResult::delay_from(double t_from, NodeId out, double level,
                                   bool rising) const {
  for (double t : crossings(out, level, rising)) {
    if (t >= t_from) return t - t_from;
  }
  return -1.0;
}

TransientSim::TransientSim(const Circuit& circuit) : circuit_(&circuit) {
  n_nodes_ = circuit.num_nodes();
  n_vsrc_ = static_cast<int>(circuit.vsources().size());
  n_unknowns_ = (n_nodes_ - 1) + n_vsrc_;
  AMDREL_CHECK_MSG(n_vsrc_ > 0, "circuit has no sources");
  build_static_structure();
  x_.assign(static_cast<std::size_t>(n_unknowns_), 0.0);
  mat_.assign(static_cast<std::size_t>(n_unknowns_) * n_unknowns_, 0.0);
  rhs_.assign(static_cast<std::size_t>(n_unknowns_), 0.0);
  perm_.assign(static_cast<std::size_t>(n_unknowns_), 0);
}

void TransientSim::build_static_structure() {
  const auto& tech = circuit_->tech();
  mos_caps_.clear();
  mos_caps_.reserve(circuit_->mosfets().size());
  for (const auto& m : circuit_->mosfets()) {
    const auto& p = (m.type == MosType::kNmos) ? tech.nmos : tech.pmos;
    const double w_m = m.w_um * 1e-6;
    const double l_m = m.l_um * 1e-6;
    const double c_ox = p.cox_area * w_m * l_m;
    const double c_ov = p.c_overlap * w_m;
    DeviceCaps c{};
    c.cgs = 0.5 * c_ox + c_ov;
    c.cgd = 0.5 * c_ox + c_ov;
    c.cdb = p.c_junction * w_m;
    c.csb = p.c_junction * w_m;
    mos_caps_.push_back(c);
  }
}

namespace {

// Dense LU with partial pivoting; solves in place. Returns false if singular.
bool lu_solve(std::vector<double>& a, std::vector<double>& b,
              std::vector<int>& perm, int n) {
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  auto at = [&](int r, int c) -> double& {
    return a[static_cast<std::size_t>(r) * n + c];
  };
  for (int k = 0; k < n; ++k) {
    int piv = k;
    double best = std::fabs(at(k, k));
    for (int r = k + 1; r < n; ++r) {
      const double v = std::fabs(at(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300) return false;
    if (piv != k) {
      for (int c = 0; c < n; ++c) std::swap(at(k, c), at(piv, c));
      std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(piv)]);
    }
    const double inv = 1.0 / at(k, k);
    for (int r = k + 1; r < n; ++r) {
      const double f = at(r, k) * inv;
      if (f == 0.0) continue;
      at(r, k) = 0.0;
      for (int c = k + 1; c < n; ++c) at(r, c) -= f * at(k, c);
      b[static_cast<std::size_t>(r)] -= f * b[static_cast<std::size_t>(k)];
    }
  }
  for (int r = n - 1; r >= 0; --r) {
    double s = b[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < n; ++c)
      s -= at(r, c) * b[static_cast<std::size_t>(c)];
    b[static_cast<std::size_t>(r)] = s / at(r, r);
  }
  return true;
}

}  // namespace

bool TransientSim::newton_solve(double t, double dt,
                                const std::vector<double>& x_prev,
                                double source_scale,
                                const TransientOptions& options) {
  const int n = n_unknowns_;
  const auto& tech = circuit_->tech();
  const int nv = n_nodes_ - 1;  // voltage unknowns (node i -> index i-1)

  auto vnode = [&](const std::vector<double>& x, NodeId node) -> double {
    return node == kGround ? 0.0 : x[static_cast<std::size_t>(node - 1)];
  };

  std::vector<double> x = x_;
  for (int iter = 0; iter < options.nr_max_iters; ++iter) {
    std::fill(mat_.begin(), mat_.end(), 0.0);
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
    auto A = [&](int r, int c) -> double& {
      return mat_[static_cast<std::size_t>(r) * n + c];
    };
    auto stamp_g = [&](NodeId a, NodeId b, double g) {
      if (a != kGround) A(a - 1, a - 1) += g;
      if (b != kGround) A(b - 1, b - 1) += g;
      if (a != kGround && b != kGround) {
        A(a - 1, b - 1) -= g;
        A(b - 1, a - 1) -= g;
      }
    };
    auto stamp_i = [&](NodeId from, NodeId to, double i) {
      // Current i flowing from `from` to `to` through the device.
      if (from != kGround) rhs_[static_cast<std::size_t>(from - 1)] -= i;
      if (to != kGround) rhs_[static_cast<std::size_t>(to - 1)] += i;
    };

    // gmin to ground at every node.
    for (int node = 1; node < n_nodes_; ++node)
      A(node - 1, node - 1) += options.gmin;

    // Resistors.
    for (const auto& r : circuit_->resistors())
      stamp_g(r.a, r.b, 1.0 / r.ohms);

    // Capacitors (backward Euler companion); dt<=0 means DC: open circuit.
    if (dt > 0) {
      auto stamp_cap = [&](NodeId a, NodeId b, double c) {
        const double geq = c / dt;
        const double vp = vnode(x_prev, a) - vnode(x_prev, b);
        stamp_g(a, b, geq);
        // i_C = geq*(v - vp): companion current source geq*vp from b to a.
        stamp_i(b, a, geq * vp);
      };
      for (const auto& c : circuit_->capacitors()) stamp_cap(c.a, c.b, c.farads);
      const auto& mosfets = circuit_->mosfets();
      for (std::size_t i = 0; i < mosfets.size(); ++i) {
        const auto& m = mosfets[i];
        const auto& dc = mos_caps_[i];
        stamp_cap(m.gate, m.source, dc.cgs);
        stamp_cap(m.gate, m.drain, dc.cgd);
        stamp_cap(m.drain, kGround, dc.cdb);
        stamp_cap(m.source, kGround, dc.csb);
      }
    }

    // MOSFETs (linearized level-1).
    //
    // We evaluate every device as a "normalized NMOS": voltages are
    // multiplied by `sign` (+1 NMOS, −1 PMOS) and source/drain are swapped
    // so the normalized Vds >= 0. Substituting physical voltages back into
    // the normalized linearization shows the conductance stamps are
    // identical to the NMOS case while the equivalent current source picks
    // up a factor `sign`.
    for (const auto& m : circuit_->mosfets()) {
      const auto& p = (m.type == MosType::kNmos) ? tech.nmos : tech.pmos;
      const double beta = p.kp * (m.w_um / m.l_um);
      const double vd = vnode(x, m.drain);
      const double vg = vnode(x, m.gate);
      const double vs = vnode(x, m.source);

      const double sign = (m.type == MosType::kNmos) ? 1.0 : -1.0;
      const bool swapped = (sign * vd) < (sign * vs);
      const NodeId nd = swapped ? m.source : m.drain;
      const NodeId ns = swapped ? m.drain : m.source;
      const double vns = std::min(sign * vd, sign * vs);
      const double vnd = std::max(sign * vd, sign * vs);
      const double vng = sign * vg;

      const double vth = (m.type == MosType::kNmos) ? p.vth : -p.vth;
      const MosEval e = level1(vng - vns, vnd - vns, vth, beta, p.lambda);
      const double ieq = e.ids - e.gm * (vng - vns) - e.gds * (vnd - vns);

      // Physical-voltage linear model: i(nd→ns) = gm·(vg−v(ns)) +
      // gds·(v(nd)−v(ns)) + sign·ieq.
      if (nd != kGround) {
        A(nd - 1, nd - 1) += e.gds;
        if (ns != kGround) A(nd - 1, ns - 1) -= (e.gds + e.gm);
        if (m.gate != kGround) A(nd - 1, m.gate - 1) += e.gm;
      }
      if (ns != kGround) {
        A(ns - 1, ns - 1) += (e.gds + e.gm);
        if (nd != kGround) A(ns - 1, nd - 1) -= e.gds;
        if (m.gate != kGround) A(ns - 1, m.gate - 1) -= e.gm;
      }
      stamp_i(nd, ns, sign * ieq);
    }

    // Voltage sources.
    const auto& vsources = circuit_->vsources();
    for (int k = 0; k < n_vsrc_; ++k) {
      const auto& src = vsources[static_cast<std::size_t>(k)];
      const int row = nv + k;
      const double value = source_scale * src.wave.at(t);
      if (src.pos != kGround) {
        A(row, src.pos - 1) += 1.0;
        A(src.pos - 1, row) += 1.0;
      }
      if (src.neg != kGround) {
        A(row, src.neg - 1) -= 1.0;
        A(src.neg - 1, row) -= 1.0;
      }
      rhs_[static_cast<std::size_t>(row)] = value;
    }

    std::vector<double> sol = rhs_;
    std::vector<double> a = mat_;
    if (!lu_solve(a, sol, perm_, n)) return false;

    // Damped update and convergence check on node voltages. The damping
    // limit tightens as iterations accumulate, which breaks the limit
    // cycles positive-feedback structures (keepers, level restorers) can
    // otherwise fall into.
    const double limit = iter < 40 ? 0.6 : (iter < 80 ? 0.15 : 0.04);
    double max_dv = 0.0;
    for (int i = 0; i < nv; ++i) {
      double dv = sol[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(i)];
      max_dv = std::max(max_dv, std::fabs(dv));
      if (dv > limit) dv = limit;
      if (dv < -limit) dv = -limit;
      x[static_cast<std::size_t>(i)] += dv;
    }
    for (int i = nv; i < n; ++i)
      x[static_cast<std::size_t>(i)] = sol[static_cast<std::size_t>(i)];

    if (max_dv < options.nr_tol) {
      x_ = x;
      return true;
    }
  }
  return false;
}

void TransientSim::solve_dc() {
  TransientOptions options;
  options.nr_max_iters = 400;
  std::vector<double> x_prev = x_;
  // gmin stepping wrapped around source stepping: solve heavily damped
  // first (large conductance to ground everywhere), then relax. Handles
  // floating pass-transistor nodes and ratioed feedback loops.
  options.gmin = 1e-3;
  bool ok = true;
  for (double scale : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    ok = newton_solve(0.0, /*dt=*/-1.0, x_prev, scale, options) && ok;
  }
  for (double gmin : {1e-5, 1e-7, 1e-9, 1e-12}) {
    options.gmin = gmin;
    ok = newton_solve(0.0, /*dt=*/-1.0, x_prev, 1.0, options);
  }
  if (!ok) {
    // Pseudo-transient continuation: positive-feedback structures (keepers,
    // level restorers) can defeat plain NR. Ramp the sources with the real
    // capacitors in place — the circuit then settles physically.
    options.gmin = 1e-9;
    std::fill(x_.begin(), x_.end(), 0.0);
    const double dt = 10e-12;
    const int n_ramp = 200, n_hold = 200;
    ok = true;
    for (int k = 1; k <= n_ramp + n_hold && ok; ++k) {
      const double scale = std::min(1.0, static_cast<double>(k) / n_ramp);
      std::vector<double> xp = x_;
      ok = newton_solve(0.0, dt, xp, scale, options);
    }
    if (ok) {
      // Polish to the true operating point; keep the settled state even if
      // the polish fails (run() continues smoothly from it).
      options.gmin = 1e-12;
      std::vector<double> xp = x_;
      newton_solve(0.0, /*dt=*/-1.0, xp, 1.0, options);
      ok = true;
    }
  }
  AMDREL_CHECK_MSG(ok, "DC operating point failed to converge");
  have_dc_ = true;
}

TransientResult TransientSim::run(const TransientOptions& options) {
  if (!have_dc_) solve_dc();

  TransientResult result;
  const auto& vsources = circuit_->vsources();
  for (const auto& s : vsources) result.source_names.push_back(s.name);
  result.source_energy.assign(vsources.size(), 0.0);
  result.source_charge.assign(vsources.size(), 0.0);
  if (options.record) {
    result.voltage.assign(static_cast<std::size_t>(n_nodes_), {});
  }

  const int nv = n_nodes_ - 1;
  auto record_sample = [&](double t) {
    if (!options.record) return;
    result.time.push_back(t);
    result.voltage[0].push_back(0.0);
    for (int node = 1; node < n_nodes_; ++node) {
      result.voltage[static_cast<std::size_t>(node)].push_back(
          x_[static_cast<std::size_t>(node - 1)]);
    }
  };

  record_sample(0.0);

  const double dt0 = options.dt;
  double t = 0.0;
  while (t < options.t_stop - 0.5 * dt0) {
    const double t_next = t + dt0;
    std::vector<double> x_prev = x_;
    if (!newton_solve(t_next, dt0, x_prev, 1.0, options)) {
      // Retry the step with 8 sub-steps.
      bool ok = true;
      const int sub = 8;
      x_ = x_prev;
      for (int k = 1; k <= sub; ++k) {
        std::vector<double> xp = x_;
        if (!newton_solve(t + dt0 * k / sub, dt0 / sub, xp, 1.0, options)) {
          ok = false;
          break;
        }
        // Accumulate energy for sub-steps.
        for (int s = 0; s < n_vsrc_; ++s) {
          const double i = x_[static_cast<std::size_t>(nv + s)];
          const double v = vsources[static_cast<std::size_t>(s)].wave.at(
              t + dt0 * k / sub);
          result.source_energy[static_cast<std::size_t>(s)] +=
              -v * i * (dt0 / sub);
          result.source_charge[static_cast<std::size_t>(s)] += -i * (dt0 / sub);
        }
      }
      AMDREL_CHECK_MSG(ok, "transient step failed to converge");
      t = t_next;
      record_sample(t);
      continue;
    }
    // MNA convention: branch current flows + → − inside the source, so the
    // current delivered to the circuit from the + terminal is −I.
    for (int s = 0; s < n_vsrc_; ++s) {
      const double i = x_[static_cast<std::size_t>(nv + s)];
      const double v = vsources[static_cast<std::size_t>(s)].wave.at(t_next);
      result.source_energy[static_cast<std::size_t>(s)] += -v * i * dt0;
      result.source_charge[static_cast<std::size_t>(s)] += -i * dt0;
    }
    t = t_next;
    record_sample(t);
  }
  return result;
}

}  // namespace amdrel::spice

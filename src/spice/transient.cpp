#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace amdrel::spice {
namespace {

/// Level-1 drain current of an NMOS-normalized device (vgs/vds already
/// polarity-adjusted, vds >= 0 after source/drain swap). Returns ids and
/// derivatives w.r.t. vgs and vds.
struct MosEval {
  double ids, gm, gds;
};

MosEval level1(double vgs, double vds, double vth, double beta,
               double lambda) {
  MosEval e{0.0, 0.0, 0.0};
  const double vov = vgs - vth;
  if (vov <= 0) {
    // Cut off. A tiny slope keeps NR matrices non-singular.
    return e;
  }
  const double clm = 1.0 + lambda * vds;
  if (vds < vov) {
    // Triode.
    e.ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
    e.gm = beta * vds * clm;
    e.gds = beta * (vov - vds) * clm +
            beta * (vov * vds - 0.5 * vds * vds) * lambda;
  } else {
    // Saturation.
    e.ids = 0.5 * beta * vov * vov * clm;
    e.gm = beta * vov * clm;
    e.gds = 0.5 * beta * vov * vov * lambda;
  }
  return e;
}

}  // namespace

double TransientResult::energy_from(const std::string& prefix) const {
  double total = 0;
  for (std::size_t i = 0; i < source_names.size(); ++i) {
    if (source_names[i].rfind(prefix, 0) == 0) total += source_energy[i];
  }
  return total;
}

std::vector<double> TransientResult::crossings(NodeId n, double level,
                                               bool rising) const {
  std::vector<double> out;
  const auto& v = voltage[static_cast<std::size_t>(n)];
  if (v.empty()) return out;
  // Side of `level` the trace is on: -1 below, +1 above, 0 while it has
  // only touched the level so far. Samples landing exactly on the level
  // produce a crossing once the trace continues through to the other side
  // (a strict previous-sample comparison would miss these), and a
  // touch-and-return produces no crossing in either direction.
  auto side_of = [&](double val) { return val < level ? -1 : (val > level ? 1 : 0); };
  int side = side_of(v[0]);
  double touch_time = time[0];  // crossing time while sitting on the level
  for (std::size_t i = 1; i < v.size(); ++i) {
    const int s = side_of(v[i]);
    if (s == 0) {
      if (v[i - 1] != level) touch_time = time[i];  // just reached the level
      continue;
    }
    if (s != side) {
      double t;
      if (v[i - 1] == level) {
        t = touch_time;
      } else {
        const double frac = (level - v[i - 1]) / (v[i] - v[i - 1]);
        t = time[i - 1] + frac * (time[i] - time[i - 1]);
      }
      if (rising == (s > 0)) out.push_back(t);
    }
    side = s;
  }
  return out;
}

double TransientResult::delay_from(double t_from, NodeId out, double level,
                                   bool rising) const {
  for (double t : crossings(out, level, rising)) {
    if (t >= t_from) return t - t_from;
  }
  return -1.0;
}

TransientSim::TransientSim(const Circuit& circuit, MnaSolver solver)
    : circuit_(&circuit), solver_(solver) {
  n_nodes_ = circuit.num_nodes();
  n_vsrc_ = static_cast<int>(circuit.vsources().size());
  n_unknowns_ = (n_nodes_ - 1) + n_vsrc_;
  AMDREL_CHECK_MSG(n_vsrc_ > 0, "circuit has no sources");
  build_static_structure();
  x_.assign(static_cast<std::size_t>(n_unknowns_), 0.0);
  rhs_.assign(static_cast<std::size_t>(n_unknowns_), 0.0);
  if (solver_ == MnaSolver::kDense) {
    mat_.assign(static_cast<std::size_t>(n_unknowns_) * n_unknowns_, 0.0);
    dense_a_.assign(mat_.size(), 0.0);
  } else {
    build_sparse_pattern();
  }
}

void TransientSim::build_static_structure() {
  const auto& tech = circuit_->tech();
  mos_caps_.clear();
  mos_caps_.reserve(circuit_->mosfets().size());
  for (const auto& m : circuit_->mosfets()) {
    const auto& p = (m.type == MosType::kNmos) ? tech.nmos : tech.pmos;
    const double w_m = m.w_um * 1e-6;
    const double l_m = m.l_um * 1e-6;
    const double c_ox = p.cox_area * w_m * l_m;
    const double c_ov = p.c_overlap * w_m;
    DeviceCaps c{};
    c.cgs = 0.5 * c_ox + c_ov;
    c.cgd = 0.5 * c_ox + c_ov;
    c.cdb = p.c_junction * w_m;
    c.csb = p.c_junction * w_m;
    mos_caps_.push_back(c);
  }
  mos_params_.clear();
  mos_params_.reserve(circuit_->mosfets().size());
  for (const auto& m : circuit_->mosfets()) {
    const bool nmos = (m.type == MosType::kNmos);
    const auto& p = nmos ? tech.nmos : tech.pmos;
    MosParams mp;
    mp.drain = m.drain;
    mp.gate = m.gate;
    mp.source = m.source;
    mp.beta = p.kp * (m.w_um / m.l_um);
    mp.vth = nmos ? p.vth : -p.vth;
    mp.lambda = p.lambda;
    mp.sign = nmos ? 1.0 : -1.0;
    mos_params_.push_back(mp);
  }
}

void TransientSim::build_sparse_pattern() {
  // Symbolic analysis: the MNA structure is fixed across NR iterations and
  // timesteps, so every structurally possible entry is registered once and
  // devices remember their slot ids for O(1) numeric stamping.
  lu_ = std::make_unique<SparseLu>(n_unknowns_);
  const int nv = n_nodes_ - 1;

  auto quad = [&](NodeId a, NodeId b) {
    QuadSlots q;
    if (a != kGround) q.aa = lu_->entry(a - 1, a - 1);
    if (b != kGround) q.bb = lu_->entry(b - 1, b - 1);
    if (a != kGround && b != kGround) {
      q.ab = lu_->entry(a - 1, b - 1);
      q.ba = lu_->entry(b - 1, a - 1);
    }
    return q;
  };
  auto pair_slot = [&](NodeId r, NodeId c) {
    return (r != kGround && c != kGround) ? lu_->entry(r - 1, c - 1) : -1;
  };

  diag_slots_.clear();
  for (int node = 1; node < n_nodes_; ++node) {
    diag_slots_.push_back(lu_->entry(node - 1, node - 1));
  }

  res_stamps_.clear();
  for (const auto& r : circuit_->resistors()) {
    res_stamps_.push_back({quad(r.a, r.b), 1.0 / r.ohms});
  }

  cap_stamps_.clear();
  for (const auto& c : circuit_->capacitors()) {
    cap_stamps_.push_back({c.a, c.b, c.farads, 0.0, quad(c.a, c.b)});
  }
  const auto& mosfets = circuit_->mosfets();
  for (std::size_t i = 0; i < mosfets.size(); ++i) {
    const auto& m = mosfets[i];
    const auto& dc = mos_caps_[i];
    cap_stamps_.push_back(
        {m.gate, m.source, dc.cgs, 0.0, quad(m.gate, m.source)});
    cap_stamps_.push_back(
        {m.gate, m.drain, dc.cgd, 0.0, quad(m.gate, m.drain)});
    cap_stamps_.push_back(
        {m.drain, kGround, dc.cdb, 0.0, quad(m.drain, kGround)});
    cap_stamps_.push_back(
        {m.source, kGround, dc.csb, 0.0, quad(m.source, kGround)});
  }

  mos_slots_.clear();
  for (const auto& m : mosfets) {
    MosSlots s;
    s.dd = pair_slot(m.drain, m.drain);
    s.ds = pair_slot(m.drain, m.source);
    s.dg = pair_slot(m.drain, m.gate);
    s.ss = pair_slot(m.source, m.source);
    s.sd = pair_slot(m.source, m.drain);
    s.sg = pair_slot(m.source, m.gate);
    mos_slots_.push_back(s);
  }

  vsrc_slots_.clear();
  const auto& vsources = circuit_->vsources();
  for (int k = 0; k < n_vsrc_; ++k) {
    const auto& src = vsources[static_cast<std::size_t>(k)];
    const int row = nv + k;
    VsrcSlots s;
    if (src.pos != kGround) {
      s.row_pos = lu_->entry(row, src.pos - 1);
      s.pos_row = lu_->entry(src.pos - 1, row);
    }
    if (src.neg != kGround) {
      s.row_neg = lu_->entry(row, src.neg - 1);
      s.neg_row = lu_->entry(src.neg - 1, row);
    }
    vsrc_slots_.push_back(s);
  }

  lu_->finalize();
  base_values_.assign(lu_->nnz(), 0.0);
  mos_work_.assign(mosfets.size(), MosWork{});
  lu_values_current_ = false;
}

void TransientSim::assemble_static(double dt, double gmin) {
  std::fill(base_values_.begin(), base_values_.end(), 0.0);
  auto add = [&](int slot, double v) {
    if (slot >= 0) base_values_[static_cast<std::size_t>(slot)] += v;
  };
  auto add_quad = [&](const QuadSlots& q, double g) {
    add(q.aa, g);
    add(q.bb, g);
    add(q.ab, -g);
    add(q.ba, -g);
  };

  for (int slot : diag_slots_) add(slot, gmin);
  for (const auto& [q, g] : res_stamps_) add_quad(q, g);
  for (auto& c : cap_stamps_) {
    c.geq = dt > 0 ? c.farads / dt : 0.0;
    if (dt > 0) add_quad(c.q, c.geq);
  }
  for (const auto& s : vsrc_slots_) {
    add(s.row_pos, 1.0);
    add(s.pos_row, 1.0);
    add(s.row_neg, -1.0);
    add(s.neg_row, -1.0);
  }
  // Seed the solver's value array: from here on, restamping only rewrites
  // the MOSFET-touched slots (everything else stays equal to base_values_).
  lu_->values() = base_values_;
  cached_dt_ = dt > 0 ? dt : -1.0;
  cached_gmin_ = gmin;
  lu_values_current_ = false;
}

namespace {

// Dense LU with partial pivoting; solves in place. Returns false if singular.
bool lu_solve(std::vector<double>& a, std::vector<double>& b, int n) {
  auto at = [&](int r, int c) -> double& {
    return a[static_cast<std::size_t>(r) * n + c];
  };
  for (int k = 0; k < n; ++k) {
    int piv = k;
    double best = std::fabs(at(k, k));
    for (int r = k + 1; r < n; ++r) {
      const double v = std::fabs(at(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300) return false;
    if (piv != k) {
      for (int c = 0; c < n; ++c) std::swap(at(k, c), at(piv, c));
      std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(piv)]);
    }
    const double inv = 1.0 / at(k, k);
    for (int r = k + 1; r < n; ++r) {
      const double f = at(r, k) * inv;
      if (f == 0.0) continue;
      at(r, k) = 0.0;
      for (int c = k + 1; c < n; ++c) at(r, c) -= f * at(k, c);
      b[static_cast<std::size_t>(r)] -= f * b[static_cast<std::size_t>(k)];
    }
  }
  for (int r = n - 1; r >= 0; --r) {
    double s = b[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < n; ++c)
      s -= at(r, c) * b[static_cast<std::size_t>(c)];
    b[static_cast<std::size_t>(r)] = s / at(r, r);
  }
  return true;
}

}  // namespace

bool TransientSim::newton_solve(double t, double dt,
                                const std::vector<double>& x_prev,
                                double source_scale,
                                const TransientOptions& options,
                                const std::vector<double>* x_init) {
  const int n = n_unknowns_;
  const int nv = n_nodes_ - 1;  // voltage unknowns (node i -> index i-1)
  const bool sparse = (solver_ == MnaSolver::kSparse);

  auto vnode = [&](const std::vector<double>& x, NodeId node) -> double {
    return node == kGround ? 0.0 : x[static_cast<std::size_t>(node - 1)];
  };
  auto stamp_i = [&](NodeId from, NodeId to, double i) {
    // Current i flowing from `from` to `to` through the device.
    if (from != kGround) rhs_[static_cast<std::size_t>(from - 1)] -= i;
    if (to != kGround) rhs_[static_cast<std::size_t>(to - 1)] += i;
  };

  if (sparse) {
    const double dt_key = dt > 0 ? dt : -1.0;
    if (cached_dt_ != dt_key || cached_gmin_ != options.gmin) {
      assemble_static(dt, options.gmin);
    }
    // The capacitor companion currents (functions of x_prev) and the source
    // rows (functions of t) are fixed within a timestep: build that RHS part
    // once and only add the MOSFET currents per NR iteration.
    rhs_static_.assign(static_cast<std::size_t>(n), 0.0);
    rhs_.swap(rhs_static_);
    if (dt > 0) {
      for (const auto& c : cap_stamps_) {
        const double vp = vnode(x_prev, c.a) - vnode(x_prev, c.b);
        // i_C = geq*(v - vp): companion current source geq*vp from b to a.
        stamp_i(c.b, c.a, c.geq * vp);
      }
    }
    const auto& vsources = circuit_->vsources();
    for (int k = 0; k < n_vsrc_; ++k) {
      rhs_[static_cast<std::size_t>(nv + k)] =
          source_scale * vsources[static_cast<std::size_t>(k)].wave.at(t);
    }
    rhs_.swap(rhs_static_);
  }

  x_new_ = x_init ? *x_init : x_;
  std::vector<double>& x = x_new_;
  bool prev_clamped = false;
  for (int iter = 0; iter < options.nr_max_iters; ++iter) {
    ++nr_stats_.nr_iters;
    auto A = [&](int r, int c) -> double& {
      return mat_[static_cast<std::size_t>(r) * n + c];
    };

    bool mos_changed = !lu_values_current_;
    int n_bypassed = 0;
    if (sparse) {
      // Static stamps come from the cache; only the RHS and (when the
      // linearization moved) the nonlinear MOSFET entries are rebuilt.
      rhs_ = rhs_static_;
    } else {
      std::fill(rhs_.begin(), rhs_.end(), 0.0);
      std::fill(mat_.begin(), mat_.end(), 0.0);
      auto stamp_g = [&](NodeId a, NodeId b, double g) {
        if (a != kGround) A(a - 1, a - 1) += g;
        if (b != kGround) A(b - 1, b - 1) += g;
        if (a != kGround && b != kGround) {
          A(a - 1, b - 1) -= g;
          A(b - 1, a - 1) -= g;
        }
      };

      // gmin to ground at every node.
      for (int node = 1; node < n_nodes_; ++node)
        A(node - 1, node - 1) += options.gmin;

      // Resistors.
      for (const auto& r : circuit_->resistors())
        stamp_g(r.a, r.b, 1.0 / r.ohms);

      // Capacitors (backward Euler companion); dt<=0 means DC: open circuit.
      if (dt > 0) {
        auto stamp_cap = [&](NodeId a, NodeId b, double c) {
          const double geq = c / dt;
          const double vp = vnode(x_prev, a) - vnode(x_prev, b);
          stamp_g(a, b, geq);
          // i_C = geq*(v - vp): companion current source geq*vp from b to a.
          stamp_i(b, a, geq * vp);
        };
        for (const auto& c : circuit_->capacitors())
          stamp_cap(c.a, c.b, c.farads);
        const auto& mosfets = circuit_->mosfets();
        for (std::size_t i = 0; i < mosfets.size(); ++i) {
          const auto& m = mosfets[i];
          const auto& dc = mos_caps_[i];
          stamp_cap(m.gate, m.source, dc.cgs);
          stamp_cap(m.gate, m.drain, dc.cgd);
          stamp_cap(m.drain, kGround, dc.cdb);
          stamp_cap(m.source, kGround, dc.csb);
        }
      }
    }

    // MOSFETs (linearized level-1).
    //
    // We evaluate every device as a "normalized NMOS": voltages are
    // multiplied by `sign` (+1 NMOS, −1 PMOS) and source/drain are swapped
    // so the normalized Vds >= 0. Substituting physical voltages back into
    // the normalized linearization shows the conductance stamps are
    // identical to the NMOS case while the equivalent current source picks
    // up a factor `sign`.
    const auto& mosfets = circuit_->mosfets();
    for (std::size_t mi = 0; mi < mosfets.size(); ++mi) {
      const MosParams& mp = mos_params_[mi];
      const double vd = vnode(x, mp.drain);
      const double vg = vnode(x, mp.gate);
      const double vs = vnode(x, mp.source);

      if (sparse && options.nr_bypass > 0.0) {
        // Device bypass (SPICE BYPASS convention): if every terminal stayed
        // within the NR acceptance tolerance of the linearization point,
        // keep the previous stamps. The induced current error is bounded by
        // gm·tol — the same order the convergence test already accepts.
        MosWork& w = mos_work_[mi];
        // The tolerance scales with the device's largest terminal voltage
        // (not per-terminal): a grounded source pin would otherwise shrink
        // the window to nr_tol and defeat the bypass on every device.
        const double vmax = std::max(
            {std::fabs(vd), std::fabs(vg), std::fabs(vs)});
        const double bt = options.nr_bypass *
                          (options.nr_tol + options.nr_reltol * vmax);
        if (std::fabs(vd - w.vd) <= bt && std::fabs(vg - w.vg) <= bt &&
            std::fabs(vs - w.vs) <= bt) {
          stamp_i(w.nd, w.ns, w.sign * w.ieq);
          ++n_bypassed;
          continue;
        }
      }

      const double sign = mp.sign;
      const bool swapped = (sign * vd) < (sign * vs);
      const NodeId nd = swapped ? mp.source : mp.drain;
      const NodeId ns = swapped ? mp.drain : mp.source;
      const double vns = std::min(sign * vd, sign * vs);
      const double vnd = std::max(sign * vd, sign * vs);
      const double vng = sign * vg;

      const MosEval e =
          level1(vng - vns, vnd - vns, mp.vth, mp.beta, mp.lambda);
      const double ieq = e.ids - e.gm * (vng - vns) - e.gds * (vnd - vns);

      // Physical-voltage linear model: i(nd→ns) = gm·(vg−v(ns)) +
      // gds·(v(nd)−v(ns)) + sign·ieq.
      if (sparse) {
        // Record the linearization. A device whose conductances moved since
        // the last factorization swaps its old stamps for new ones in
        // place (delta stamping) — untouched devices cost nothing, and the
        // refactorization is skipped entirely when no device moved.
        MosWork& w = mos_work_[mi];
        if (w.gds != e.gds || w.gm != e.gm ||
            (w.swapped != swapped && (e.gds != 0.0 || e.gm != 0.0))) {
          mos_changed = true;
          if (lu_values_current_) {
            auto& vals = lu_->values();
            const MosSlots& sl = mos_slots_[mi];
            auto add = [&](int slot, double v) {
              if (slot >= 0) vals[static_cast<std::size_t>(slot)] += v;
            };
            add(w.swapped ? sl.ss : sl.dd, -w.gds);
            add(w.swapped ? sl.sd : sl.ds, w.gds + w.gm);
            add(w.swapped ? sl.sg : sl.dg, -w.gm);
            add(w.swapped ? sl.dd : sl.ss, -(w.gds + w.gm));
            add(w.swapped ? sl.ds : sl.sd, w.gds);
            add(w.swapped ? sl.dg : sl.sg, w.gm);
            add(swapped ? sl.ss : sl.dd, e.gds);
            add(swapped ? sl.sd : sl.ds, -(e.gds + e.gm));
            add(swapped ? sl.sg : sl.dg, e.gm);
            add(swapped ? sl.dd : sl.ss, e.gds + e.gm);
            add(swapped ? sl.ds : sl.sd, -e.gds);
            add(swapped ? sl.dg : sl.sg, -e.gm);
          }
        }
        w = MosWork{nd, ns, sign, e.gds, e.gm, ieq, swapped, vd, vg, vs};
      } else {
        if (nd != kGround) {
          A(nd - 1, nd - 1) += e.gds;
          if (ns != kGround) A(nd - 1, ns - 1) -= (e.gds + e.gm);
          if (mp.gate != kGround) A(nd - 1, mp.gate - 1) += e.gm;
        }
        if (ns != kGround) {
          A(ns - 1, ns - 1) += (e.gds + e.gm);
          if (nd != kGround) A(ns - 1, nd - 1) -= e.gds;
          if (mp.gate != kGround) A(ns - 1, mp.gate - 1) -= e.gm;
        }
      }
      stamp_i(nd, ns, sign * ieq);
    }
    nr_stats_.device_bypasses += n_bypassed;

    // Every device bypassed at iter >= 1 means this linear system is
    // bit-identical to the previous iteration's (same cached stamps, same
    // static RHS, same ieq currents), so its solution is the iterate we
    // already hold — unless damping clamped the previous update. Accept
    // without another factorization/solve.
    if (sparse && iter > 0 && !mos_changed && !prev_clamped &&
        n_bypassed == static_cast<int>(mosfets.size())) {
      ++nr_stats_.steps;
      x_.swap(x_new_);
      return true;
    }

    if (sparse && !lu_values_current_) {
      // Fresh static assembly: values() was just reseeded from base_values_
      // and holds no MOSFET contributions yet — stamp every device once.
      auto& vals = lu_->values();
      auto add = [&](int slot, double v) {
        if (slot >= 0) vals[static_cast<std::size_t>(slot)] += v;
      };
      for (std::size_t mi = 0; mi < mosfets.size(); ++mi) {
        const MosWork& w = mos_work_[mi];
        const MosSlots& s = mos_slots_[mi];
        // Slot selection mirrors the drain/source swap: (nd, ns) indexes
        // the same physical 3x2 block either way round.
        add(w.swapped ? s.ss : s.dd, w.gds);
        add(w.swapped ? s.sd : s.ds, -(w.gds + w.gm));
        add(w.swapped ? s.sg : s.dg, w.gm);
        add(w.swapped ? s.dd : s.ss, w.gds + w.gm);
        add(w.swapped ? s.ds : s.sd, -w.gds);
        add(w.swapped ? s.dg : s.sg, -w.gm);
      }
      lu_values_current_ = true;
    }

    // Voltage sources (sparse path: pattern cached, RHS in rhs_static_).
    if (!sparse) {
      const auto& vsources = circuit_->vsources();
      for (int k = 0; k < n_vsrc_; ++k) {
        const auto& src = vsources[static_cast<std::size_t>(k)];
        const int row = nv + k;
        if (src.pos != kGround) {
          A(row, src.pos - 1) += 1.0;
          A(src.pos - 1, row) += 1.0;
        }
        if (src.neg != kGround) {
          A(row, src.neg - 1) -= 1.0;
          A(src.neg - 1, row) -= 1.0;
        }
        rhs_[static_cast<std::size_t>(row)] = source_scale * src.wave.at(t);
      }
    }

    // Solve in place: rhs_ becomes the solution (it is rebuilt from
    // scratch next iteration anyway).
    ++nr_stats_.solves;
    if (mos_changed || !sparse) ++nr_stats_.refactorizations;
    if (sparse) {
      if (!lu_->solve(rhs_, mos_changed)) return false;
    } else {
      dense_a_ = mat_;
      if (!lu_solve(dense_a_, rhs_, n)) return false;
    }

    // Damped update and convergence check on node voltages. The damping
    // limit tightens as iterations accumulate, which breaks the limit
    // cycles positive-feedback structures (keepers, level restorers) can
    // otherwise fall into.
    const double limit = iter < 40 ? 0.6 : (iter < 80 ? 0.15 : 0.04);
    bool converged = true;
    prev_clamped = false;
    for (int i = 0; i < nv; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      double dv = rhs_[ui] - x[ui];
      // SPICE-style per-node acceptance: absolute floor plus relative term.
      if (std::fabs(dv) >=
          options.nr_tol + options.nr_reltol * std::fabs(rhs_[ui])) {
        converged = false;
      }
      if (dv > limit) { dv = limit; prev_clamped = true; }
      if (dv < -limit) { dv = -limit; prev_clamped = true; }
      x[ui] += dv;
    }
    for (int i = nv; i < n; ++i)
      x[static_cast<std::size_t>(i)] = rhs_[static_cast<std::size_t>(i)];

    if (converged) {
      ++nr_stats_.steps;
      x_.swap(x_new_);
      return true;
    }
  }
  return false;
}

void TransientSim::solve_dc(const TransientOptions& base) {
  TransientOptions options = base;
  options.nr_max_iters = 400;
  std::vector<double> x_prev = x_;
  // gmin stepping wrapped around source stepping: solve heavily damped
  // first (large conductance to ground everywhere), then relax. Handles
  // floating pass-transistor nodes and ratioed feedback loops.
  options.gmin = 1e-3;
  bool ok = true;
  for (double scale : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    ok = newton_solve(0.0, /*dt=*/-1.0, x_prev, scale, options) && ok;
  }
  for (double gmin : {1e-5, 1e-7, 1e-9, 1e-12}) {
    options.gmin = gmin;
    ok = newton_solve(0.0, /*dt=*/-1.0, x_prev, 1.0, options);
  }
  if (!ok) {
    // Pseudo-transient continuation: positive-feedback structures (keepers,
    // level restorers) can defeat plain NR. Ramp the sources with the real
    // capacitors in place — the circuit then settles physically.
    options.gmin = 1e-9;
    std::fill(x_.begin(), x_.end(), 0.0);
    const double dt = 10e-12;
    const int n_ramp = 200, n_hold = 200;
    ok = true;
    for (int k = 1; k <= n_ramp + n_hold && ok; ++k) {
      const double scale = std::min(1.0, static_cast<double>(k) / n_ramp);
      std::vector<double> xp = x_;
      ok = newton_solve(0.0, dt, xp, scale, options);
    }
    if (ok) {
      // Polish to the true operating point; keep the settled state even if
      // the polish fails (run() continues smoothly from it).
      options.gmin = 1e-12;
      std::vector<double> xp = x_;
      newton_solve(0.0, /*dt=*/-1.0, xp, 1.0, options);
      ok = true;
    }
  }
  AMDREL_CHECK_MSG(ok, "DC operating point failed to converge");
  have_dc_ = true;
}

TransientResult TransientSim::run(const TransientOptions& options) {
  obs::Span span("spice.transient");
  const NrStats at_entry = nr_stats_;  // DC work below counts toward the span
  if (!have_dc_) solve_dc(options);

  TransientResult result;
  const auto& vsources = circuit_->vsources();
  for (const auto& s : vsources) result.source_names.push_back(s.name);
  result.source_energy.assign(vsources.size(), 0.0);
  result.source_charge.assign(vsources.size(), 0.0);
  if (options.record) {
    result.voltage.assign(static_cast<std::size_t>(n_nodes_), {});
  }

  const int nv = n_nodes_ - 1;
  auto record_sample = [&](double t) {
    if (!options.record) return;
    result.time.push_back(t);
    result.voltage[0].push_back(0.0);
    for (int node = 1; node < n_nodes_; ++node) {
      result.voltage[static_cast<std::size_t>(node)].push_back(
          x_[static_cast<std::size_t>(node - 1)]);
    }
  };

  record_sample(0.0);

  // Trapezoidal integration of the delivered power/current: the endpoint
  // rectangle rule biases the Table 1–3 energy numbers at coarse dt.
  // MNA convention: branch current flows + → − inside the source, so the
  // current delivered to the circuit from the + terminal is −I.
  std::vector<double> p_prev(vsources.size(), 0.0);
  std::vector<double> i_prev(vsources.size(), 0.0);
  for (int s = 0; s < n_vsrc_; ++s) {
    const double i = -x_[static_cast<std::size_t>(nv + s)];
    p_prev[static_cast<std::size_t>(s)] =
        vsources[static_cast<std::size_t>(s)].wave.at(0.0) * i;
    i_prev[static_cast<std::size_t>(s)] = i;
  }
  auto accumulate = [&](double t_point, double dt_seg) {
    for (int s = 0; s < n_vsrc_; ++s) {
      const double i = -x_[static_cast<std::size_t>(nv + s)];
      const double p =
          vsources[static_cast<std::size_t>(s)].wave.at(t_point) * i;
      result.source_energy[static_cast<std::size_t>(s)] +=
          0.5 * (p_prev[static_cast<std::size_t>(s)] + p) * dt_seg;
      result.source_charge[static_cast<std::size_t>(s)] +=
          0.5 * (i_prev[static_cast<std::size_t>(s)] + i) * dt_seg;
      p_prev[static_cast<std::size_t>(s)] = p;
      i_prev[static_cast<std::size_t>(s)] = i;
    }
  };

  const double dt0 = options.dt;
  double t = 0.0;
  bool have_pred = false;
  while (t < options.t_stop - 0.5 * dt0) {
    const double t_next = t + dt0;
    // Linear predictor: extrapolate the last step's trajectory as the NR
    // seed — on smooth stretches NR then converges in a single iteration.
    if (have_pred) {
      x_pred_.resize(x_.size());
      for (std::size_t i = 0; i < x_.size(); ++i) {
        x_pred_[i] = 2.0 * x_[i] - x_prev_[i];
      }
    }
    x_prev_ = x_;
    if (!newton_solve(t_next, dt0, x_prev_, 1.0, options,
                      have_pred ? &x_pred_ : nullptr)) {
      // Retry the step with 8 sub-steps (x_ is unchanged on failure).
      bool ok = true;
      have_pred = false;
      const int sub = 8;
      for (int k = 1; k <= sub; ++k) {
        x_prev_ = x_;
        if (!newton_solve(t + dt0 * k / sub, dt0 / sub, x_prev_, 1.0,
                          options)) {
          ok = false;
          break;
        }
        accumulate(t + dt0 * k / sub, dt0 / sub);
      }
      AMDREL_CHECK_MSG(ok, "transient step failed to converge");
      t = t_next;
      record_sample(t);
      continue;
    }
    accumulate(t_next, dt0);
    t = t_next;
    record_sample(t);
    have_pred = true;
  }
  if (span.active()) {
    span.metric("steps", static_cast<double>(nr_stats_.steps - at_entry.steps));
    span.metric("nr_iters",
                static_cast<double>(nr_stats_.nr_iters - at_entry.nr_iters));
    span.metric("device_bypasses",
                static_cast<double>(nr_stats_.device_bypasses -
                                    at_entry.device_bypasses));
    span.metric("refactorizations",
                static_cast<double>(nr_stats_.refactorizations -
                                    at_entry.refactorizations));
    span.metric("solves",
                static_cast<double>(nr_stats_.solves - at_entry.solves));
  }
  static obs::Counter& c_steps = obs::counter("spice.nr_steps");
  static obs::Counter& c_iters = obs::counter("spice.nr_iters");
  static obs::Counter& c_solves = obs::counter("spice.solves");
  c_steps.add(static_cast<std::uint64_t>(nr_stats_.steps - at_entry.steps));
  c_iters.add(
      static_cast<std::uint64_t>(nr_stats_.nr_iters - at_entry.nr_iters));
  c_solves.add(
      static_cast<std::uint64_t>(nr_stats_.solves - at_entry.solves));
  return result;
}

}  // namespace amdrel::spice

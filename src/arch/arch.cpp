#include "arch/arch.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::arch {

GridSize size_grid(const ArchSpec& spec, int n_clusters, int n_ios) {
  AMDREL_CHECK(n_clusters >= 0 && n_ios >= 0);
  GridSize g;
  for (int side = 1;; ++side) {
    const int clb_capacity = side * side;
    const int io_capacity = 4 * side * spec.io_per_tile;
    if (clb_capacity >= n_clusters && io_capacity >= n_ios) {
      g.nx = g.ny = side;
      return g;
    }
  }
}

void write_arch(const ArchSpec& spec, std::ostream& out) {
  out << "# DUTYS architecture file — AMDREL island-style FPGA\n";
  out << "name " << spec.name << "\n";
  out << "lut_inputs " << spec.k << "\n";
  out << "cluster_size " << spec.n << "\n";
  out << "gated_clock_ble " << (spec.gated_clock_ble ? 1 : 0) << "\n";
  out << "gated_clock_clb " << (spec.gated_clock_clb ? 1 : 0) << "\n";
  out << "channel_width " << spec.channel_width << "\n";
  out << "segment_length " << spec.segment_length << "\n";
  out << "fs " << spec.fs << "\n";
  out << strprintf("fc_in %.6g\n", spec.fc_in);
  out << strprintf("fc_out %.6g\n", spec.fc_out);
  out << strprintf("switch_width_x %.6g\n", spec.switch_width_x);
  out << "io_per_tile " << spec.io_per_tile << "\n";
  out << strprintf("t_lut %.6g\n", spec.t_lut);
  out << strprintf("t_local_mux %.6g\n", spec.t_local_mux);
  out << strprintf("t_ff_clk_q %.6g\n", spec.t_ff_clk_q);
  out << strprintf("t_ff_setup %.6g\n", spec.t_ff_setup);
  out << strprintf("r_switch %.6g\n", spec.r_switch);
  out << strprintf("c_switch %.6g\n", spec.c_switch);
  out << strprintf("r_wire_tile %.6g\n", spec.r_wire_tile);
  out << strprintf("c_wire_tile %.6g\n", spec.c_wire_tile);
  out << strprintf("t_io %.6g\n", spec.t_io);
}

std::string write_arch_string(const ArchSpec& spec) {
  std::ostringstream out;
  write_arch(spec, out);
  return out.str();
}

void write_arch_file(const ArchSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write arch file: " + path);
  write_arch(spec, out);
}

ArchSpec read_arch(std::istream& in, const std::string& filename) {
  ArchSpec spec;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    auto tokens = split_ws(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 2) {
      throw ParseError(filename, lineno, "expected 'key value'");
    }
    const std::string& key = tokens[0];
    const std::string& val = tokens[1];
    auto as_int = [&]() { return std::stoi(val); };
    auto as_double = [&]() { return std::stod(val); };
    if (key == "name") spec.name = val;
    else if (key == "lut_inputs") spec.k = as_int();
    else if (key == "cluster_size") spec.n = as_int();
    else if (key == "gated_clock_ble") spec.gated_clock_ble = as_int() != 0;
    else if (key == "gated_clock_clb") spec.gated_clock_clb = as_int() != 0;
    else if (key == "channel_width") spec.channel_width = as_int();
    else if (key == "segment_length") spec.segment_length = as_int();
    else if (key == "fs") spec.fs = as_int();
    else if (key == "fc_in") spec.fc_in = as_double();
    else if (key == "fc_out") spec.fc_out = as_double();
    else if (key == "switch_width_x") spec.switch_width_x = as_double();
    else if (key == "io_per_tile") spec.io_per_tile = as_int();
    else if (key == "t_lut") spec.t_lut = as_double();
    else if (key == "t_local_mux") spec.t_local_mux = as_double();
    else if (key == "t_ff_clk_q") spec.t_ff_clk_q = as_double();
    else if (key == "t_ff_setup") spec.t_ff_setup = as_double();
    else if (key == "r_switch") spec.r_switch = as_double();
    else if (key == "c_switch") spec.c_switch = as_double();
    else if (key == "r_wire_tile") spec.r_wire_tile = as_double();
    else if (key == "c_wire_tile") spec.c_wire_tile = as_double();
    else if (key == "t_io") spec.t_io = as_double();
    else throw ParseError(filename, lineno, "unknown key: " + key);
  }
  if (spec.k < 2 || spec.k > 8 || spec.n < 1 || spec.channel_width < 2) {
    throw ParseError(filename, lineno, "architecture out of supported range");
  }
  return spec;
}

ArchSpec read_arch_string(const std::string& text) {
  std::istringstream in(text);
  return read_arch(in);
}

ArchSpec read_arch_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open arch file: " + path);
  return read_arch(in, path);
}

}  // namespace amdrel::arch

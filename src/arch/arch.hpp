#pragma once
// DUTYS — FPGA architecture description for the paper's island-style
// platform, plus the architecture-file generator/parser.
//
// Defaults encode the CLB selected in §3 of the paper: clusters of N=5
// BLEs with K=4 LUTs, I=12 CLB inputs (Eq. 1), fully connected local
// crossbar (17:1 per LUT input), one clock + one asynchronous clear per
// CLB, DETFFs with BLE- and CLB-level clock gating; routing uses
// single-length segments joined by pass transistors of 10× minimum width
// in a disjoint switch box (Fs=3) with Fc=1 connection boxes.

#include <iosfwd>
#include <string>

namespace amdrel::arch {

struct ArchSpec {
  std::string name = "amdrel_clb5_lut4";

  // --- CLB (paper §3.1) ---
  int k = 4;             ///< LUT inputs
  int n = 5;             ///< BLEs per CLB (cluster size)
  bool gated_clock_ble = true;
  bool gated_clock_clb = true;

  /// CLB input count per the paper's Eq. (1): I = (K/2)·(N+1).
  int cluster_inputs() const { return (k / 2) * (n + 1); }
  /// Local crossbar mux width per LUT input: I + N feedbacks → 17:1.
  int local_mux_inputs() const { return cluster_inputs() + n; }

  // --- routing (paper §3.3) ---
  int channel_width = 16;     ///< tracks per channel (W)
  int segment_length = 1;     ///< logical wire length (paper selects 1)
  int fs = 3;                 ///< switch box flexibility (disjoint)
  double fc_in = 1.0;         ///< connection box flexibility, inputs
  double fc_out = 1.0;        ///< connection box flexibility, outputs
  double switch_width_x = 10; ///< routing pass transistor W / Wmin

  // --- IO ---
  int io_per_tile = 2;        ///< pad capacity of one perimeter tile

  // --- timing model (derived from the cells characterization, see
  //     src/cells; values are per the 0.18 µm process substitute) ---
  double t_lut = 0.45e-9;        ///< LUT delay [s]
  double t_local_mux = 0.12e-9;  ///< CLB local crossbar mux [s]
  double t_ff_clk_q = 0.31e-9;   ///< DETFF clock→Q [s] (Llopis1)
  double t_ff_setup = 0.10e-9;   ///< setup time [s]
  double r_switch = 2.8e3 / 10;  ///< routing switch on-resistance [ohm]
  double c_switch = 2.5e-15;     ///< switch junction cap on the wire [F]
  double r_wire_tile = 32.0;     ///< wire resistance per tile span [ohm]
  double c_wire_tile = 18e-15;   ///< wire capacitance per tile span [F]
  double t_io = 0.5e-9;          ///< pad delay [s]
};

/// Computes the smallest square CLB grid (nx == ny) that fits
/// `n_clusters` CLBs and `n_ios` perimeter pads.
struct GridSize {
  int nx = 1;
  int ny = 1;
};
GridSize size_grid(const ArchSpec& spec, int n_clusters, int n_ios);

/// Writes/reads the DUTYS architecture file (a documented key/value
/// format; every field of ArchSpec round-trips).
void write_arch(const ArchSpec& spec, std::ostream& out);
std::string write_arch_string(const ArchSpec& spec);
void write_arch_file(const ArchSpec& spec, const std::string& path);
ArchSpec read_arch(std::istream& in, const std::string& filename = "<arch>");
ArchSpec read_arch_string(const std::string& text);
ArchSpec read_arch_file(const std::string& path);

}  // namespace amdrel::arch

#pragma once
// Plain-text table printer used by the benchmark harnesses to emit the
// paper's tables/figure series in a uniform format.

#include <iosfwd>
#include <string>
#include <vector>

namespace amdrel {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with column alignment; numeric-looking cells right-aligned.
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace amdrel

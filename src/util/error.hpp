#pragma once
// Error handling primitives shared by all AMDREL modules.
//
// The framework uses exceptions for unrecoverable input errors (bad file,
// unsynthesizable VHDL, unroutable design) and assertions (CHECK) for
// internal invariants.

#include <stdexcept>
#include <string>

namespace amdrel {

/// Base class of all errors raised by the framework.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or unsupported input (file format, VHDL subset violation, ...).
class ParseError : public Error {
 public:
  ParseError(std::string file, int line, const std::string& message)
      : Error(file + ":" + std::to_string(line) + ": " + message),
        file_(std::move(file)),
        line_(line) {}

  const std::string& file() const { return file_; }
  int line() const { return line_; }

 private:
  std::string file_;
  int line_;
};

/// A CAD stage could not produce a legal result (e.g. unroutable at the
/// requested channel width, cluster inputs exceeded).
class InfeasibleError : public Error {
 public:
  using Error::Error;
};

/// A long-running kernel observed a cooperative cancellation request (see
/// flow::FlowSession::cancel and route::RouteOptions::cancel) and stopped
/// before producing a result. Callers that own the cancellation flag catch
/// this to wind down cleanly; it never signals a correctness problem.
class CancelledError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

/// Internal invariant check; always enabled (CAD bugs silently corrupt QoR).
#define AMDREL_CHECK(expr)                                                \
  do {                                                                    \
    if (!(expr)) ::amdrel::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define AMDREL_CHECK_MSG(expr, msg)                                       \
  do {                                                                    \
    if (!(expr))                                                          \
      ::amdrel::detail::check_failed(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

}  // namespace amdrel

#include "util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/error.hpp"

namespace amdrel {

std::vector<std::string> split_ws(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t start = i;
    while (i < s.size() && delims.find(s[i]) == std::string_view::npos) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split_char(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

namespace {

[[noreturn]] void throw_parse(std::string_view what, std::string_view kind,
                              std::string_view s) {
  throw Error(std::string(what) + ": expected " + std::string(kind) +
              ", got '" + std::string(s) + "'");
}

}  // namespace

int parse_int(std::string_view s, std::string_view what) {
  const std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (buf.empty() || end != buf.c_str() + buf.size() || errno == ERANGE ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    throw_parse(what, "an integer", s);
  }
  return static_cast<int>(v);
}

std::uint64_t parse_u64(std::string_view s, std::string_view what) {
  const std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (buf.empty() || buf[0] == '-' || end != buf.c_str() + buf.size() ||
      errno == ERANGE) {
    throw_parse(what, "an unsigned integer", s);
  }
  return static_cast<std::uint64_t>(v);
}

double parse_double(std::string_view s, std::string_view what) {
  const std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (buf.empty() || end != buf.c_str() + buf.size() || errno == ERANGE) {
    throw_parse(what, "a number", s);
  }
  return v;
}

}  // namespace amdrel

#pragma once
// Small string helpers used by the file-format parsers and report writers.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace amdrel {

/// Splits on any run of characters in `delims`; no empty tokens.
std::vector<std::string> split_ws(std::string_view s,
                                  std::string_view delims = " \t\r\n");

/// Splits on a single delimiter character, keeping empty fields.
std::vector<std::string> split_char(std::string_view s, char delim);

std::string trim(std::string_view s);
std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive equality (VHDL identifiers are case-insensitive).
bool iequals(std::string_view a, std::string_view b);

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view sep);

/// Checked number parsing for command-line and file inputs: the whole
/// string must be a single number of the requested type, in range.
/// Throws Error("<what>: expected ..., got '<s>'") otherwise — unlike
/// std::stoi and friends, which accept trailing junk and abort the
/// process with an unhandled exception on garbage.
int parse_int(std::string_view s, std::string_view what);
std::uint64_t parse_u64(std::string_view s, std::string_view what);
double parse_double(std::string_view s, std::string_view what);

}  // namespace amdrel

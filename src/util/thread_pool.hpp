#pragma once
// Fixed-size thread pool with a parallel_for helper.
//
// The CAD flow uses it for embarrassingly parallel sweeps (device sizing
// experiments, multi-seed placement, random-vector simulation batches).
// Work items must be independent; exceptions thrown by items are captured
// and rethrown (first one wins) on the calling thread.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace amdrel {

class ThreadPool {
 public:
  /// n_threads == 0 picks hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; wait() joins all outstanding tasks.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks finished; rethrows the first captured
  /// exception, if any.
  void wait();

  /// Runs fn(i) for i in [0, n), distributing across the pool, and waits.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Convenience: one-shot parallel_for on a transient pool sized for the task.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t n_threads = 0);

}  // namespace amdrel

#pragma once
// Minimal leveled logger. All tools write diagnostics through this so the
// flow driver can silence or redirect stage output.

#include <functional>
#include <sstream>
#include <string>

namespace amdrel {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log configuration (process wide; the tools are single-process).
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level);
  static LogLevel level();

  /// Replaces the sink (default: stderr). Passing nullptr restores default.
  static void set_sink(Sink sink);

  static void write(LogLevel level, const std::string& message);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace amdrel

#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace amdrel {
namespace {

std::mutex g_mutex;
LogLevel g_level = LogLevel::kInfo;
Log::Sink g_sink;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_level = level;
}

LogLevel Log::level() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_level;
}

void Log::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace amdrel

#pragma once
// Deterministic PRNG used throughout the CAD flow.
//
// Every stochastic stage (placement annealing, benchmark generation, random
// vector simulation) takes an explicit Rng so runs are reproducible and
// independent streams can be split for parallel work.

#include <cstdint>
#include <vector>

namespace amdrel {

/// xoshiro256** — fast, high-quality, splittable enough for CAD use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli(p).
  bool next_bool(double p = 0.5);

  /// Derives an independent stream (for worker threads / sub-generators).
  Rng split();

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace amdrel

#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::util {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (i_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error(strprintf("JSON parse error at byte %zu: %s", i_,
                          why.c_str()));
  }

  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  bool consume(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(strprintf("expected '%c'", c));
  }

  void expect_word(const char* w) {
    for (const char* p = w; *p != '\0'; ++p) {
      if (i_ >= s_.size() || s_[i_] != *p) fail("invalid literal");
      ++i_;
    }
  }

  Json parse_value() {
    skip_ws();
    if (depth_ > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::make_string(parse_string());
      case 't': expect_word("true"); return Json::make_bool(true);
      case 'f': expect_word("false"); return Json::make_bool(false);
      case 'n': expect_word("null"); return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++depth_;
    expect('{');
    Json obj = Json::make_object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      break;
    }
    --depth_;
    return obj;
  }

  Json parse_array() {
    ++depth_;
    expect('[');
    Json arr = Json::make_array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      break;
    }
    --depth_;
    return arr;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i_ >= s_.size()) fail("unterminated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(parse_hex4(), &out); break;
        default: fail("unknown escape");
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int k = 0; k < 4; ++k) {
      if (i_ >= s_.size()) fail("truncated \\u escape");
      const char c = s_[i_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return v;
  }

  void append_utf8(unsigned cp, std::string* out) {
    // Surrogate pairs: a high surrogate must be followed by \uDC00-DFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (i_ + 1 < s_.size() && s_[i_] == '\\' && s_[i_ + 1] == 'u') {
        i_ += 2;
        const unsigned lo = parse_hex4();
        if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("unpaired surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const char* start = s_.c_str() + i_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start || !std::isfinite(v)) fail("invalid number");
    i_ += static_cast<std::size_t>(end - start);
    return Json::make_number(v);
  }

  static constexpr int kMaxDepth = 64;
  const std::string& s_;
  std::size_t i_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::make_bool(bool b) {
  Json v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Json Json::make_number(double n) {
  Json v;
  v.type_ = Type::kNumber;
  v.num_ = n;
  return v;
}

Json Json::make_string(std::string s) {
  Json v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

Json Json::make_array() {
  Json v;
  v.type_ = Type::kArray;
  return v;
}

Json Json::make_object() {
  Json v;
  v.type_ = Type::kObject;
  return v;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw Error("JSON: expected a boolean");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) throw Error("JSON: expected a number");
  return num_;
}

std::int64_t Json::as_int() const {
  const double v = as_number();
  const auto i = static_cast<std::int64_t>(v);
  if (static_cast<double>(i) != v) {
    throw Error("JSON: expected an integer, got " + strprintf("%g", v));
  }
  return i;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw Error("JSON: expected a string");
  return str_;
}

const std::vector<Json>& Json::as_array() const {
  if (type_ != Type::kArray) throw Error("JSON: expected an array");
  return arr_;
}

const Json* Json::get(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = get(key);
  if (v == nullptr) throw Error("JSON: missing field '" + key + "'");
  return *v;
}

const std::vector<std::string>& Json::keys() const {
  static const std::vector<std::string> kEmpty;
  return type_ == Type::kObject ? obj_keys_ : kEmpty;
}

void Json::push_back(Json v) {
  if (type_ != Type::kArray) throw Error("JSON: push_back on a non-array");
  arr_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  if (type_ != Type::kObject) throw Error("JSON: set on a non-object");
  const auto it = obj_.find(key);
  if (it == obj_.end()) obj_keys_.push_back(key);
  obj_[key] = std::move(v);
}

std::string json_escape_string(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::dump_to(std::string* out) const {
  switch (type_) {
    case Type::kNull: *out += "null"; return;
    case Type::kBool: *out += bool_ ? "true" : "false"; return;
    case Type::kNumber: {
      // Integers (the common case: ids, counts, sizes) print exactly;
      // other values with enough digits to round-trip a double.
      const auto i = static_cast<std::int64_t>(num_);
      if (static_cast<double>(i) == num_) {
        *out += strprintf("%lld", static_cast<long long>(i));
      } else {
        *out += strprintf("%.17g", num_);
      }
      return;
    }
    case Type::kString:
      *out += '"';
      *out += json_escape_string(str_);
      *out += '"';
      return;
    case Type::kArray: {
      *out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) *out += ',';
        arr_[i].dump_to(out);
      }
      *out += ']';
      return;
    }
    case Type::kObject: {
      *out += '{';
      for (std::size_t i = 0; i < obj_keys_.size(); ++i) {
        if (i > 0) *out += ',';
        *out += '"';
        *out += json_escape_string(obj_keys_[i]);
        *out += "\":";
        obj_.at(obj_keys_[i]).dump_to(out);
      }
      *out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(&out);
  return out;
}

Json parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace amdrel::util

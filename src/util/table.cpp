#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace amdrel {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != '%' && c != 'x')
      return false;
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  AMDREL_CHECK_MSG(row.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      std::size_t pad = width[c] - row[c].size();
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace amdrel

#include "util/rng.hpp"

#include "util/error.hpp"

namespace amdrel {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  AMDREL_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::next_int(int lo, int hi) {
  AMDREL_CHECK(lo <= hi);
  return lo + static_cast<int>(next_below(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

}  // namespace amdrel

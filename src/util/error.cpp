#include "util/error.hpp"

#include <sstream>

namespace amdrel::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "internal check failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw Error(os.str());
}

}  // namespace amdrel::detail

#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace amdrel {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunked dynamic scheduling: shared atomic index, one task per worker.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  std::size_t tasks = std::min(n, workers_.size());
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([next, n, &fn] {
      for (;;) {
        std::size_t i = next->fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  wait();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t n_threads) {
  ThreadPool pool(n_threads);
  pool.parallel_for(n, fn);
}

}  // namespace amdrel

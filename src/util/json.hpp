#pragma once
// Minimal JSON document model for the framework's machine interfaces
// (flow::JobSpec and the amdrel_serve line protocol).
//
// The JSONL trace analyzer in obs/report keeps its own flat single-line
// cursor (its schema never nests); this is the general value tree for
// inputs the framework does not control — client requests arriving over
// a socket — so it parses arbitrary nesting, escapes and unicode
// \uXXXX sequences (encoded as UTF-8), and rejects trailing garbage.
// No external dependency: the container images this runs in carry only
// the C++ toolchain.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace amdrel::util {

/// One JSON value. Objects keep insertion order for deterministic
/// round-trips (serve replies are diffed byte-for-byte in tests).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  static Json make_bool(bool b);
  static Json make_number(double v);
  static Json make_string(std::string s);
  static Json make_array();
  static Json make_object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors: throw Error("expected <type>") on mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  ///< number, checked integral + in range
  const std::string& as_string() const;
  const std::vector<Json>& as_array() const;

  /// Object field access. get() returns nullptr when absent (or when
  /// this value is not an object); at() throws Error naming the key.
  const Json* get(const std::string& key) const;
  const Json& at(const std::string& key) const;
  /// Object keys in insertion order (empty for non-objects).
  const std::vector<std::string>& keys() const;

  // -- construction --
  void push_back(Json v);                     ///< array append
  void set(const std::string& key, Json v);   ///< object insert/replace

  // convenience setters for the common scalar cases
  void set(const std::string& key, bool v) { set(key, make_bool(v)); }
  void set(const std::string& key, double v) { set(key, make_number(v)); }
  void set(const std::string& key, int v) {
    set(key, make_number(static_cast<double>(v)));
  }
  void set(const std::string& key, std::int64_t v) {
    set(key, make_number(static_cast<double>(v)));
  }
  void set(const std::string& key, std::uint64_t v) {
    set(key, make_number(static_cast<double>(v)));
  }
  void set(const std::string& key, const char* v) {
    set(key, make_string(v));
  }
  void set(const std::string& key, const std::string& v) {
    set(key, make_string(v));
  }

  /// Compact single-line serialization (no spaces); numbers print with
  /// %.17g precision trimmed to the shortest round-trip form %g gives.
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::string> obj_keys_;
  std::map<std::string, Json> obj_;
  void dump_to(std::string* out) const;
};

/// Parses one complete JSON document; throws Error (with a byte offset)
/// on malformed input or trailing non-whitespace.
Json parse_json(const std::string& text);

/// JSON string escaping of `s` (without the surrounding quotes).
std::string json_escape_string(const std::string& s);

}  // namespace amdrel::util

#include "cells/detff.hpp"

#include "cells/primitives.hpp"
#include "util/error.hpp"

namespace amdrel::cells {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;

const char* detff_name(DetffKind kind) {
  switch (kind) {
    case DetffKind::kChung1: return "Chung 1";
    case DetffKind::kChung2: return "Chung 2";
    case DetffKind::kLlopis1: return "Llopis 1";
    case DetffKind::kLlopis2: return "Llopis 2";
    case DetffKind::kStrollo: return "Strollo";
  }
  return "?";
}

namespace {

/// C²MOS latch-mux DETFF skeleton shared by Llopis 1/2 and Strollo.
///
/// Path A: tsinv(D→mA, en=clk) then tsinv(mA→q, en=clkb)  — samples clk=1.
/// Path B: tsinv(D→mB, en=clkb) then tsinv(mB→q, en=clk)  — samples clk=0.
/// Storage nodes are held by *clocked* feedback tri-states (active only
/// while the forward stage is off), so stored values are never disputed —
/// the structure the published C²MOS DETFFs use. Q itself is driven by
/// exactly one output stage at all times and needs no keeper.
/// `heavy` adds the extra output keeper + buffer stage and wider feedback
/// of the Strollo-style design (its higher-power structure).
DetffPorts build_c2mos(Circuit& c, const std::string& p, NodeId vdd, NodeId d,
                       NodeId clk, NodeId q, TriStateType type, bool heavy,
                       double wn, double wclk = 0.28) {
  NodeId clkb = c.node(p + ".clkb");
  add_inverter(c, p + ".iclk", vdd, clk, clkb, wclk);

  NodeId ma = c.node(p + ".ma");
  NodeId mb = c.node(p + ".mb");
  // In the heavy variant the output stages drive an internal node that is
  // then buffered to q.
  NodeId qi = heavy ? c.node(p + ".qi") : q;

  add_tristate_inverter(c, p + ".tA1", vdd, d, ma, clk, clkb, type, wn);
  add_tristate_inverter(c, p + ".tA2", vdd, ma, qi, clkb, clk, type, wn);
  add_tristate_inverter(c, p + ".tB1", vdd, d, mb, clkb, clk, type, wn);
  add_tristate_inverter(c, p + ".tB2", vdd, mb, qi, clk, clkb, type, wn);

  const double wf = heavy ? 0.42 : 0.28;
  NodeId ma_b = c.node(p + ".ma_b");
  NodeId mb_b = c.node(p + ".mb_b");
  add_inverter(c, p + ".fAi", vdd, ma, ma_b, wf);
  add_tristate_inverter(c, p + ".fA", vdd, ma_b, ma, clkb, clk, type, wf);
  add_inverter(c, p + ".fBi", vdd, mb, mb_b, wf);
  add_tristate_inverter(c, p + ".fB", vdd, mb_b, mb, clk, clkb, type, wf);

  if (heavy) {
    add_keeper(c, p + ".kq", vdd, qi);
    NodeId qb = c.node(p + ".qb");
    add_inverter(c, p + ".obuf1", vdd, qi, qb, 0.42);
    add_inverter(c, p + ".obuf2", vdd, qb, q, 0.56);
  }
  return {d, clk, q};
}

/// Transmission-gate latch-mux DETFF skeleton shared by Chung 1/2 (the two
/// versions differ only in the tri-state inverter type, per the paper's
/// Fig. 3 — exactly like the Llopis pair).
///
/// Latch A: TG(D→aA, on clk=1), inv(aA→mA); latch B mirrored on clk=0.
/// Both latches are made static with clocked tri-state feedback (active
/// when the input TG is off, so storage is never disputed). The output
/// multiplexer is a pair of C²MOS tri-state inverters driving Q directly —
/// the performance-oriented design of the Lo–Chung–Sachdev comparison
/// (bigger devices, faster clock path than the Llopis pair).
DetffPorts build_tg(Circuit& c, const std::string& p, NodeId vdd, NodeId d,
                    NodeId clk, NodeId q, TriStateType type, double wn,
                    double wout, double wclk) {
  NodeId clkb = c.node(p + ".clkb");
  add_inverter(c, p + ".iclk", vdd, clk, clkb, wclk);

  NodeId aa = c.node(p + ".aA");
  NodeId ab = c.node(p + ".aB");
  NodeId ma = c.node(p + ".mA");
  NodeId mb = c.node(p + ".mB");

  add_tgate(c, p + ".tgA", d, aa, clk, clkb, wn);
  add_inverter(c, p + ".invA", vdd, aa, ma, wn);
  add_tgate(c, p + ".tgB", d, ab, clkb, clk, wn);
  add_inverter(c, p + ".invB", vdd, ab, mb, wn);

  add_tristate_inverter(c, p + ".fA", vdd, ma, aa, clkb, clk, type, 0.28);
  add_tristate_inverter(c, p + ".fB", vdd, mb, ab, clk, clkb, type, 0.28);

  // ma/mb are ~D; the C²MOS stage inverts once more → Q = D.
  add_tristate_inverter(c, p + ".muxA", vdd, ma, q, clkb, clk, type, wout);
  add_tristate_inverter(c, p + ".muxB", vdd, mb, q, clk, clkb, type, wout);
  return {d, clk, q};
}

}  // namespace

DetffPorts add_detff(Circuit& c, const std::string& prefix, NodeId vdd,
                     DetffKind kind, NodeId d, NodeId clk, NodeId q) {
  switch (kind) {
    case DetffKind::kChung1:
      // Chung design, first tri-state flavour (clocked devices at the
      // rails).
      return build_tg(c, prefix, vdd, d, clk, q,
                      TriStateType::kClockedAtRails,
                      /*wn=*/0.42, /*wout=*/1.12, /*wclk=*/1.12);
    case DetffKind::kChung2:
      // Chung design, second tri-state flavour (clocked devices at the
      // output; internal nodes precharge while disabled): the fastest
      // variant — lowest E·D product.
      return build_tg(c, prefix, vdd, d, clk, q,
                      TriStateType::kClockedAtOutput,
                      /*wn=*/0.42, /*wout=*/1.12, /*wclk=*/1.12);
    case DetffKind::kLlopis1:
      // Minimum-size C²MOS with clocked devices at the output: the smallest
      // switched capacitance → lowest total energy.
      return build_c2mos(c, prefix, vdd, d, clk, q,
                         TriStateType::kClockedAtOutput,
                         /*heavy=*/false, /*wn=*/0.28);
    case DetffKind::kLlopis2:
      // Same structure, clocked devices at the rails: internal series nodes
      // keep charging/discharging every cycle → slightly more energy.
      return build_c2mos(c, prefix, vdd, d, clk, q,
                         TriStateType::kClockedAtRails,
                         /*heavy=*/false, /*wn=*/0.28);
    case DetffKind::kStrollo:
      return build_c2mos(c, prefix, vdd, d, clk, q,
                         TriStateType::kClockedAtOutput,
                         /*heavy=*/true, /*wn=*/0.28);
  }
  AMDREL_CHECK_MSG(false, "unknown DETFF kind");
  return {};
}

double detff_clock_pin_cap(const Circuit& c, const std::string& prefix,
                           spice::NodeId clk) {
  const auto& tech = c.tech();
  double cap = 0.0;
  for (const auto& m : c.mosfets()) {
    if (m.name.rfind(prefix, 0) != 0) continue;
    if (m.gate != clk) continue;
    const auto& p = (m.type == spice::MosType::kNmos) ? tech.nmos : tech.pmos;
    cap += tech.gate_cap(p, m.w_um);
  }
  return cap;
}

}  // namespace amdrel::cells

#pragma once
// The paper's Fig-7 routing interconnection experiment.
//
// Four logic blocks are connected through a chain of routing wire
// segments joined by routing switches (pass transistors, or pairs of
// tri-state buffers for the §3.3.2 variant), as in the paper's Fig. 7:
// the segment COUNT is fixed by the four CLBs while each segment spans
// `wire_length` tiles, so longer logical wires mean more capacitance per
// switch — which is why the optimal switch width grows with L.
// Each tile loads the wire with the worst-case Fc=1 connection-box switch
// and the CLB-output-pin pass transistor the paper describes; each disjoint
// switch box (Fs=3) adds two off-state switch stubs. The receiver is the
// CLB input buffer.
//
// Reported metrics: propagation delay (driver input → receiver output),
// supply energy for one full output cycle, layout area of the switches and
// wire, and their E·D·A product (the paper's figure-of-merit).

#include "process/tech018.hpp"
#include "spice/circuit.hpp"
#include "spice/transient.hpp"

namespace amdrel::cells {

enum class SwitchStyle { kPassTransistor, kTriStateBuffer };

struct RoutingExptOptions {
  int n_segments = 4;             ///< segments in the chain (Fig 7: 4 CLBs)
  int wire_length = 1;            ///< logical segment length L (1,2,4,8)
  double switch_width_x = 10.0;   ///< routing switch width / minimum width
  process::WireWidth wire_width = process::WireWidth::kMinimum;
  process::WireSpacing wire_spacing = process::WireSpacing::kMinimum;
  SwitchStyle style = SwitchStyle::kPassTransistor;
  double dt = 2e-12;
  double period = 8e-9;           ///< stimulus period [s]
  /// MNA backend (kDense is the correctness oracle, ~5x slower).
  spice::MnaSolver solver = spice::MnaSolver::kSparse;
};

struct RoutingExptResult {
  double delay_s;    ///< worst of rising/falling propagation [s]
  double energy_j;   ///< supply energy per full signal cycle [J]
  double area_um2;   ///< switches (incl. config cells) + wire area
  double eda;        ///< energy · delay · area [J·s·µm²]
};

RoutingExptResult run_routing_experiment(
    const RoutingExptOptions& options,
    const process::Tech018& tech = process::default_tech());

}  // namespace amdrel::cells

#pragma once
// The five double-edge-triggered flip-flop topologies compared in the
// paper's Table 1 (Chung 1/2 after Lo–Chung–Sachdev'02, Llopis 1/2 after
// Peset-Llopis–Sachdev'96, Strollo after Strollo–Napoli–Cimino'00).
//
// All are static latch-mux DETFFs: two level-sensitive paths sample D on
// opposite clock phases, and the output stage always selects the path that
// just became opaque, so Q updates on both clock edges. The variants differ
// in latch style (C²MOS tri-state vs transmission gate), tri-state inverter
// type (Fig. 3) and how storage nodes are kept static (weak keepers vs
// clocked feedback) — exactly the dimensions the cited papers explore.

#include <string>

#include "spice/circuit.hpp"

namespace amdrel::cells {

enum class DetffKind { kChung1, kChung2, kLlopis1, kLlopis2, kStrollo };

const char* detff_name(DetffKind kind);
constexpr DetffKind kAllDetffs[] = {DetffKind::kChung1, DetffKind::kChung2,
                                    DetffKind::kLlopis1, DetffKind::kLlopis2,
                                    DetffKind::kStrollo};

struct DetffPorts {
  spice::NodeId d;
  spice::NodeId clk;
  spice::NodeId q;
};

/// Instantiates a DETFF. The clock received at `clk` is the external pin;
/// complement generation is internal (and charged to the FF's energy).
DetffPorts add_detff(spice::Circuit& c, const std::string& prefix,
                     spice::NodeId vdd, DetffKind kind, spice::NodeId d,
                     spice::NodeId clk, spice::NodeId q);

/// Approximate clock-pin input capacitance [F] (gate caps tied to clk),
/// used by the CLB clock-network experiments and the power model.
double detff_clock_pin_cap(const spice::Circuit& c, const std::string& prefix,
                           spice::NodeId clk);

}  // namespace amdrel::cells

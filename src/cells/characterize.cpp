#include "cells/characterize.hpp"

#include <cmath>
#include <iterator>

#include "cells/detff.hpp"
#include "cells/primitives.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace amdrel::cells {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;
using spice::TransientOptions;
using spice::TransientSim;
using spice::Waveform;

namespace {

/// Clock edge times (mid-swing) for a pulse clock with the given period,
/// first rising edge at period/2. rise/fall are 50 ps.
struct ClockPlan {
  Waveform wave;
  std::vector<double> edges;        ///< mid-swing times, alternating r/f
  std::vector<bool> edge_is_rising;
};

constexpr double kEdgeRamp = 50e-12;

ClockPlan make_clock(double period, int n_cycles, double vdd) {
  ClockPlan plan;
  const double width = period / 2 - kEdgeRamp;
  plan.wave = Waveform::pulse(0, vdd, period / 2, kEdgeRamp, kEdgeRamp, width,
                              period);
  for (int k = 0; k < n_cycles; ++k) {
    const double rise_mid = period / 2 + k * period + kEdgeRamp / 2;
    const double fall_mid =
        period / 2 + k * period + kEdgeRamp + width + kEdgeRamp / 2;
    plan.edges.push_back(rise_mid);
    plan.edge_is_rising.push_back(true);
    plan.edges.push_back(fall_mid);
    plan.edge_is_rising.push_back(false);
  }
  return plan;
}

/// D toggles a quarter period before every clock edge, so each edge captures
/// a fresh value and Q transitions on every edge (the paper's Fig-4 style
/// "all combinations" stimulus).
Waveform make_data(double period, int n_cycles, double vdd) {
  std::vector<std::pair<double, double>> pts;
  pts.push_back({0.0, 0.0});
  double level = 0.0;
  // Edges at period/2 + k*period/2; D toggles at period/4 + k*period/2.
  for (int k = 0; k <= 2 * n_cycles + 1; ++k) {
    const double t = period / 4 + k * (period / 2);
    pts.push_back({t, level});
    level = (level == 0.0) ? vdd : 0.0;
    pts.push_back({t + kEdgeRamp, level});
  }
  return Waveform::pwl(std::move(pts));
}

}  // namespace

DetffMetrics characterize_detff(DetffKind kind,
                                const DetffBenchOptions& options,
                                const process::Tech018& tech) {
  Circuit c(tech);
  const double vdd_v = tech.vdd;
  NodeId vdd = c.node("vdd");
  NodeId clk = c.node("clk");
  NodeId d = c.node("d");
  NodeId q = c.node("q");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(vdd_v));

  ClockPlan clock = make_clock(options.clock_period, options.n_cycles, vdd_v);
  c.add_vsource("vclk", clk, kGround, clock.wave);
  c.add_vsource("vd", d, kGround,
                make_data(options.clock_period, options.n_cycles, vdd_v));

  add_detff(c, "ff", vdd, kind, d, clk, q);
  c.add_capacitor("cload", q, kGround, options.load_fF * 1e-15);

  const int devices = static_cast<int>(c.mosfets().size());
  const double area = c.device_area_um2();

  TransientSim sim(c, options.solver);
  TransientOptions topt;
  topt.t_stop = (options.n_cycles + 0.5) * options.clock_period;
  topt.dt = options.dt;
  auto res = sim.run(topt);

  // Data source sampled value at each edge = expected Q after that edge.
  Waveform dwave = make_data(options.clock_period, options.n_cycles, vdd_v);

  DetffMetrics m{};
  m.kind = kind;
  m.transistors = devices;
  m.area_um2 = area;
  m.energy_j = res.energy_from("vdd");
  m.functional = true;
  m.delay_s = 0.0;

  const double half = options.clock_period / 2;
  for (std::size_t e = 0; e < clock.edges.size(); ++e) {
    const double te = clock.edges[e];
    if (te + half > topt.t_stop) break;
    const double expected = dwave.at(te);
    const bool q_rising = expected > vdd_v / 2;

    // Functional check: Q settled to the captured value before next edge.
    const double t_sample = te + 0.85 * half;
    std::size_t ks = static_cast<std::size_t>(t_sample / topt.dt);
    if (ks >= res.time.size()) ks = res.time.size() - 1;
    const double vq = res.v(q, ks);
    const bool ok = q_rising ? (vq > 0.75 * vdd_v) : (vq < 0.25 * vdd_v);
    if (!ok) m.functional = false;

    // CLK→Q delay for edges where Q changes (it changes on every edge with
    // this stimulus except possibly the very first).
    if (e == 0) continue;
    const double delay = res.delay_from(te, q, vdd_v / 2, q_rising);
    if (delay > 0 && delay < half) m.delay_s = std::max(m.delay_s, delay);
  }
  m.edp = m.energy_j * m.delay_s;
  return m;
}

std::vector<DetffMetrics> characterize_all_detffs(
    const DetffBenchOptions& options, const process::Tech018& tech) {
  std::vector<DetffMetrics> out(std::size(kAllDetffs));
  parallel_for(
      std::size(kAllDetffs),
      [&](std::size_t i) {
        out[i] = characterize_detff(kAllDetffs[i], options, tech);
      },
      static_cast<std::size_t>(options.n_threads));
  return out;
}

namespace {

/// Shared BLE clock-path testbench (Fig 5). `gated` selects NAND vs plain
/// inverter as the final clock stage; returns supply energy per clock cycle.
double ble_clock_energy(bool gated, bool enabled,
                        const DetffBenchOptions& options,
                        const process::Tech018& tech) {
  Circuit c(tech);
  const double vdd_v = tech.vdd;
  NodeId vdd = c.node("vdd");
  NodeId clk = c.node("clk");
  NodeId d = c.node("d");
  NodeId q = c.node("q");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(vdd_v));

  ClockPlan clock = make_clock(options.clock_period, options.n_cycles, vdd_v);
  c.add_vsource("vclk", clk, kGround, clock.wave);
  c.add_vsource("vd", d, kGround,
                make_data(options.clock_period, options.n_cycles, vdd_v));

  // Driver chain (the paper's shaded inverters): isolates the clock source
  // so the final stage's input capacitance is charged from vdd.
  NodeId drv = add_buffer_chain(c, "drv", vdd, clk, 2, 0.28, 2.0);

  NodeId ffclk = c.node("ffclk");
  if (gated) {
    NodeId en = c.node("en");
    c.add_vsource("ven", en, kGround, Waveform::dc(enabled ? vdd_v : 0.0));
    NodeId nand_out = c.node("nand_out");
    add_nand2(c, "gate", vdd, drv, en, nand_out, 0.42);
    add_inverter(c, "gateinv", vdd, nand_out, ffclk, 0.42);
  } else {
    // Matched two-inverter final stage (same polarity as the gated path).
    NodeId inv_out = c.node("inv_out");
    add_inverter(c, "stage", vdd, drv, inv_out, 0.42);
    add_inverter(c, "stageinv", vdd, inv_out, ffclk, 0.42);
  }

  add_detff(c, "ff", vdd, DetffKind::kLlopis1, d, ffclk, q);
  c.add_capacitor("cload", q, kGround, options.load_fF * 1e-15);

  TransientSim sim(c, options.solver);
  TransientOptions topt;
  topt.t_stop = (options.n_cycles + 0.5) * options.clock_period;
  topt.dt = options.dt;
  topt.record = false;
  auto res = sim.run(topt);
  return res.energy_from("vdd") / options.n_cycles;
}

}  // namespace

BleClockEnergy measure_ble_clock_gating(const DetffBenchOptions& options,
                                        const process::Tech018& tech) {
  BleClockEnergy e{};
  double* slots[] = {&e.single_clock_j, &e.gated_enabled_j,
                     &e.gated_disabled_j};
  const bool gated[] = {false, true, true};
  const bool enabled[] = {true, true, false};
  parallel_for(
      3,
      [&](std::size_t i) {
        *slots[i] = ble_clock_energy(gated[i], enabled[i], options, tech);
      },
      static_cast<std::size_t>(options.n_threads));
  return e;
}

namespace {

/// CLB local clock network testbench (Fig 6). Five BLE taps hang on a local
/// clock wire; each tap is a BLE-level gating NAND + inverter driving the
/// FF clock-pin capacitance. `clb_gated` inserts the CLB-level NAND at the
/// root. Returns supply energy per clock cycle.
double clb_clock_energy(bool clb_gated, int n_ffs_on,
                        const DetffBenchOptions& options,
                        const process::Tech018& tech) {
  constexpr int kBles = 5;
  AMDREL_CHECK(n_ffs_on >= 0 && n_ffs_on <= kBles);
  Circuit c(tech);
  const double vdd_v = tech.vdd;
  NodeId vdd = c.node("vdd");
  NodeId clk = c.node("clk");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(vdd_v));
  ClockPlan clock = make_clock(options.clock_period, options.n_cycles, vdd_v);
  c.add_vsource("vclk", clk, kGround, clock.wave);

  NodeId en_on = c.node("en_on");
  NodeId en_off = c.node("en_off");
  c.add_vsource("ven_on", en_on, kGround, Waveform::dc(vdd_v));
  c.add_vsource("ven_off", en_off, kGround, Waveform::dc(0.0));

  // Driver chain isolating the source, then the root stage.
  NodeId drv = add_buffer_chain(c, "drv", vdd, clk, 2, 0.28, 2.0);
  NodeId root_out = c.node("root_out");
  if (clb_gated) {
    // CLB enable = "any FF on".
    NodeId nand_out = c.node("clbnand_out");
    add_nand2(c, "clbgate", vdd, drv, n_ffs_on > 0 ? en_on : en_off, nand_out,
              0.84);
    add_inverter(c, "clbinv", vdd, nand_out, root_out, 0.84);
  } else {
    NodeId inv_out = c.node("rootinv_out");
    add_inverter(c, "root1", vdd, drv, inv_out, 0.84);
    add_inverter(c, "root2", vdd, inv_out, root_out, 0.84);
  }

  // Local clock wire: kBles segments of 6 µm metal-3 (min width, min
  // spacing), π model per segment; one BLE tap at each segment end.
  const auto wire = tech.wire(process::WireWidth::kMinimum,
                              process::WireSpacing::kMinimum);
  const double seg_um = 6.0;

  // FF clock-pin capacitance measured from a reference instance.
  double c_ffpin;
  {
    Circuit probe(tech);
    NodeId pvdd = probe.node("vdd");
    probe.add_vsource("vdd", pvdd, kGround, Waveform::dc(vdd_v));
    NodeId pd = probe.node("d"), pclk = probe.node("clk"), pq = probe.node("q");
    add_detff(probe, "ff", pvdd, DetffKind::kLlopis1, pd, pclk, pq);
    c_ffpin = detff_clock_pin_cap(probe, "ff", pclk);
  }

  NodeId prev = root_out;
  for (int b = 0; b < kBles; ++b) {
    NodeId tap = c.node("tap" + std::to_string(b));
    c.add_resistor("rw" + std::to_string(b), prev, tap,
                   wire.r_per_um * seg_um);
    const double cw = wire.c_per_um * seg_um;
    c.add_cap_to_ground(prev, cw / 2);
    c.add_cap_to_ground(tap, cw / 2);

    const bool on = b < n_ffs_on;
    NodeId bout = c.node("bgate" + std::to_string(b));
    NodeId bclk = c.node("bclk" + std::to_string(b));
    add_nand2(c, "blegate" + std::to_string(b), vdd, tap, on ? en_on : en_off,
              bout, 0.28);
    add_inverter(c, "bleinv" + std::to_string(b), vdd, bout, bclk, 0.28);
    c.add_cap_to_ground(bclk, c_ffpin);
    prev = tap;
  }

  TransientSim sim(c, options.solver);
  TransientOptions topt;
  topt.t_stop = (options.n_cycles + 0.5) * options.clock_period;
  topt.dt = options.dt;
  topt.record = false;
  auto res = sim.run(topt);
  return res.energy_from("vdd") / options.n_cycles;
}

}  // namespace

std::vector<ClbClockEnergy> measure_clb_clock_gating(
    const DetffBenchOptions& options, const process::Tech018& tech) {
  const int n_on_cases[] = {0, 1, 5};
  std::vector<ClbClockEnergy> rows(std::size(n_on_cases));
  // 3 conditions x {single, gated} = 6 independent testbench runs.
  parallel_for(
      2 * rows.size(),
      [&](std::size_t i) {
        const std::size_t row = i / 2;
        const bool gated = (i % 2) != 0;
        const int n_on = n_on_cases[row];
        const double e = clb_clock_energy(gated, n_on, options, tech);
        rows[row].n_ffs_on = n_on;
        (gated ? rows[row].gated_clock_j : rows[row].single_clock_j) = e;
      },
      static_cast<std::size_t>(options.n_threads));
  return rows;
}

}  // namespace amdrel::cells

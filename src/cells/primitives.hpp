#pragma once
// Transistor-level cell primitives used to assemble the paper's experiment
// circuits (inverters, NAND, transmission gates, the two tri-state inverter
// types of Fig. 3, and tapered buffer chains).
//
// All builders append devices to an existing spice::Circuit under a name
// prefix and return the nodes a caller needs. Widths are in µm; the
// process minimum contacted width is 0.28 µm.

#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace amdrel::cells {

using spice::Circuit;
using spice::NodeId;

/// Default P/N width ratio compensating the mobility gap.
constexpr double kPnRatio = 2.0;

struct InverterPorts {
  NodeId in, out;
};

/// Static CMOS inverter. wn is the NMOS width; PMOS is wn*kPnRatio unless
/// wp is given explicitly.
InverterPorts add_inverter(Circuit& c, const std::string& prefix, NodeId vdd,
                           NodeId in, NodeId out, double wn, double wp = 0.0);

struct Nand2Ports {
  NodeId a, b, out;
};

/// Static CMOS 2-input NAND.
Nand2Ports add_nand2(Circuit& c, const std::string& prefix, NodeId vdd,
                     NodeId a, NodeId b, NodeId out, double wn, double wp = 0.0);

/// Transmission gate between `a` and `b`; on when en=1 (enb must be its
/// complement).
void add_tgate(Circuit& c, const std::string& prefix, NodeId a, NodeId b,
               NodeId en, NodeId enb, double wn, double wp = 0.0);

/// NMOS-only pass transistor between `a` and `b`, gate on `en`.
void add_pass_nmos(Circuit& c, const std::string& prefix, NodeId a, NodeId b,
                   NodeId en, double w);

/// The two tri-state inverter flavours of the paper's Fig. 3. Both drive
/// `out` with ~in when en=1 / enb=0 and float it otherwise; they differ in
/// whether the clocked devices sit next to the output or next to the rails,
/// which changes the parasitic charge on the internal series nodes.
enum class TriStateType { kClockedAtOutput, kClockedAtRails };

void add_tristate_inverter(Circuit& c, const std::string& prefix, NodeId vdd,
                           NodeId in, NodeId out, NodeId en, NodeId enb,
                           TriStateType type, double wn, double wp = 0.0);

/// Weak keeper: two cross-coupled inverters between `a` and its complement
/// node (created internally). Drawn long (default l = 6·Lmin) so normal
/// drivers overpower it.
void add_keeper(Circuit& c, const std::string& prefix, NodeId vdd, NodeId a,
                double l_um = 1.08);

/// Tapered buffer chain (n_stages inverters, taper factor per stage).
/// Returns the output node. n_stages >= 1; even counts buffer, odd invert.
NodeId add_buffer_chain(Circuit& c, const std::string& prefix, NodeId vdd,
                        NodeId in, int n_stages, double w_first,
                        double taper = 3.0);

/// Counts devices added under a prefix (test helper).
int count_devices_with_prefix(const Circuit& c, const std::string& prefix);

}  // namespace amdrel::cells

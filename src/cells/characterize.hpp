#pragma once
// Measurement harnesses for the paper's circuit experiments.
//
// Each function builds a self-contained testbench, runs the transient
// simulator and extracts the quantities the paper reports.

#include <vector>

#include "cells/detff.hpp"
#include "process/tech018.hpp"
#include "spice/transient.hpp"

namespace amdrel::cells {

/// Table-1 row: total energy over the Fig-4 input sequence, worst-case
/// clock-edge→Q delay over all edge/data combinations, and their product.
struct DetffMetrics {
  DetffKind kind;
  double energy_j;       ///< total supply energy over the stimulus [J]
  double delay_s;        ///< worst-case CLK→Q [s]
  double edp;            ///< energy·delay [J·s]
  int transistors;       ///< device count
  double area_um2;       ///< layout-area estimate
  bool functional;       ///< Q tracked D at every clock edge
};

struct DetffBenchOptions {
  double clock_period = 2e-9;  ///< [s]
  int n_cycles = 4;            ///< clock cycles in the stimulus
  double load_fF = 20.0;       ///< capacitive load on Q (BLE mux + feedback)
  double dt = 2e-12;           ///< simulator step
  /// MNA backend (kDense is the correctness oracle, ~5x slower).
  spice::MnaSolver solver = spice::MnaSolver::kSparse;
  /// Worker threads for the sweep harnesses (characterize_all_detffs,
  /// measure_*_clock_gating); each testbench run is independent. 1 = serial,
  /// 0 = hardware concurrency. Results are index-ordered, so the output is
  /// identical for any thread count.
  int n_threads = 1;
};

DetffMetrics characterize_detff(
    DetffKind kind, const DetffBenchOptions& options = {},
    const process::Tech018& tech = process::default_tech());

/// Runs all five variants (Table 1).
std::vector<DetffMetrics> characterize_all_detffs(
    const DetffBenchOptions& options = {},
    const process::Tech018& tech = process::default_tech());

/// Table-2 row: average supply energy per clock cycle of one BLE's clock
/// path + DETFF, for the plain inverter chain (Fig 5a) or the NAND gated
/// clock (Fig 5b) with the given enable level.
struct BleClockEnergy {
  double single_clock_j;     ///< Fig 5a, per cycle
  double gated_enabled_j;    ///< Fig 5b, EN=1, per cycle
  double gated_disabled_j;   ///< Fig 5b, EN=0, per cycle
};

BleClockEnergy measure_ble_clock_gating(
    const DetffBenchOptions& options = {},
    const process::Tech018& tech = process::default_tech());

/// Table-3 rows: energy per clock cycle of the CLB local clock network
/// (root driver + local wire + 5 BLE clock-gating stages + FF clock pins)
/// for single vs CLB-gated clock, under a given number of enabled FFs.
struct ClbClockEnergy {
  int n_ffs_on;
  double single_clock_j;
  double gated_clock_j;
};

std::vector<ClbClockEnergy> measure_clb_clock_gating(
    const DetffBenchOptions& options = {},
    const process::Tech018& tech = process::default_tech());

}  // namespace amdrel::cells

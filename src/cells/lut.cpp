#include "cells/lut.hpp"

#include <cmath>

#include "cells/primitives.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"

namespace amdrel::cells {

using spice::Circuit;
using spice::kGround;
using spice::MosType;
using spice::NodeId;
using spice::TransientOptions;
using spice::TransientSim;
using spice::Waveform;

LutPorts add_lut(Circuit& c, const std::string& prefix, NodeId vdd, int k,
                 std::uint32_t truth_table) {
  AMDREL_CHECK(k >= 1 && k <= 5);
  const double w = c.tech().w_min_um;

  LutPorts ports;
  for (int i = 0; i < k; ++i) {
    NodeId in = c.node(prefix + ".in" + std::to_string(i));
    NodeId inb = c.node(prefix + ".inb" + std::to_string(i));
    add_inverter(c, prefix + ".cinv" + std::to_string(i), vdd, in, inb, w);
    ports.inputs.push_back(in);
    ports.inputs_b.push_back(inb);
  }

  // Leaves: memory cells as static rail ties.
  const int n_leaves = 1 << k;
  std::vector<NodeId> level;
  for (int i = 0; i < n_leaves; ++i) {
    const bool bit = (truth_table >> i) & 1;
    level.push_back(bit ? vdd : kGround);
  }

  // Mux tree: level j collapses pairs differing in input j (LSB first).
  for (int j = 0; j < k; ++j) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < level.size(); i += 2) {
      NodeId m = c.node(prefix + ".m" + std::to_string(j) + "_" +
                        std::to_string(i / 2));
      // input j = 0 selects level[i], = 1 selects level[i+1].
      c.add_mosfet(prefix + ".t" + std::to_string(j) + "_" +
                       std::to_string(i),
                   MosType::kNmos, level[i], ports.inputs_b[static_cast<std::size_t>(j)], m, w);
      c.add_mosfet(prefix + ".t" + std::to_string(j) + "_" +
                       std::to_string(i + 1),
                   MosType::kNmos, level[i + 1], ports.inputs[static_cast<std::size_t>(j)], m, w);
      next.push_back(m);
    }
    level = std::move(next);
  }
  NodeId tree_out = level[0];

  // Output: level-restoring buffer (inverter + weak PMOS feedback pulling
  // the degraded pass-transistor '1' back to the rail) + output inverter.
  NodeId inv1 = c.node(prefix + ".inv1");
  add_inverter(c, prefix + ".obuf1", vdd, tree_out, inv1, w);
  c.add_mosfet(prefix + ".restore", MosType::kPmos, tree_out, inv1, vdd, w,
               /*l_um=*/1.0);
  ports.out = c.node(prefix + ".out");
  add_inverter(c, prefix + ".obuf2", vdd, inv1, ports.out, 2 * w);
  return ports;
}

LutMetrics characterize_lut4(const process::Tech018& tech) {
  // XOR-style truth table: output toggles on every input change — the
  // worst case for energy, the standard case for delay.
  std::uint32_t tt = 0;
  for (int i = 0; i < 16; ++i) {
    int ones = __builtin_popcount(static_cast<unsigned>(i));
    if (ones & 1) tt |= (1u << i);
  }

  Circuit c(tech);
  NodeId vdd = c.node("vdd");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(tech.vdd));
  LutPorts lut = add_lut(c, "lut", vdd, 4, tt);

  // Drive input 3 (deepest from the leaves → worst delay); others static.
  const double period = 4e-9;
  const double ramp = 50e-12;
  c.add_vsource("vin", lut.inputs[3], kGround,
                Waveform::pulse(0, tech.vdd, period / 4, ramp, ramp,
                                period / 2 - ramp, period));
  for (int i = 0; i < 3; ++i) {
    c.add_vsource("vk" + std::to_string(i), lut.inputs[static_cast<std::size_t>(i)], kGround,
                  Waveform::dc(0.0));
  }
  c.add_capacitor("cl", lut.out, kGround, 10e-15);

  TransientSim sim(c);
  TransientOptions topt;
  topt.t_stop = 2 * period;
  topt.dt = 2e-12;
  auto res = sim.run(topt);

  const double t_rise_in = period / 4 + ramp / 2 + period;
  const double t_fall_in = 3 * period / 4 + ramp / 2 + period;
  // With i3 the only toggling input and an odd-parity table, out follows i3
  // inverted or not depending on the static inputs (here: out = i3 parity →
  // rises with i3).
  double d1 = res.delay_from(t_rise_in, lut.out, tech.vdd / 2, true);
  double d2 = res.delay_from(t_fall_in, lut.out, tech.vdd / 2, false);
  AMDREL_CHECK_MSG(d1 > 0 && d2 > 0, "LUT output did not toggle");

  LutMetrics m{};
  m.delay_s = std::max(d1, d2);
  // Two output toggles per period; second period only (settled).
  m.energy_per_toggle_j = res.energy_from("vdd") / 2.0 / 2.0;
  m.input_cap_f =
      tech.gate_cap(tech.nmos, tech.w_min_um) * 8 +  // tree gates on in3...
      tech.gate_cap(tech.nmos, tech.w_min_um) * 2;   // ...plus the c-inverter
  return m;
}

}  // namespace amdrel::cells

#include "cells/primitives.hpp"

#include "util/error.hpp"

namespace amdrel::cells {

using spice::kGround;
using spice::MosType;

InverterPorts add_inverter(Circuit& c, const std::string& prefix, NodeId vdd,
                           NodeId in, NodeId out, double wn, double wp) {
  if (wp <= 0) wp = wn * kPnRatio;
  c.add_mosfet(prefix + ".mp", MosType::kPmos, out, in, vdd, wp);
  c.add_mosfet(prefix + ".mn", MosType::kNmos, out, in, kGround, wn);
  return {in, out};
}

Nand2Ports add_nand2(Circuit& c, const std::string& prefix, NodeId vdd,
                     NodeId a, NodeId b, NodeId out, double wn, double wp) {
  if (wp <= 0) wp = wn * kPnRatio;
  // Parallel PMOS pull-up, series NMOS pull-down (a at the bottom).
  c.add_mosfet(prefix + ".mpa", MosType::kPmos, out, a, vdd, wp);
  c.add_mosfet(prefix + ".mpb", MosType::kPmos, out, b, vdd, wp);
  NodeId mid = c.new_node();
  c.add_mosfet(prefix + ".mnb", MosType::kNmos, out, b, mid, 2.0 * wn);
  c.add_mosfet(prefix + ".mna", MosType::kNmos, mid, a, kGround, 2.0 * wn);
  return {a, b, out};
}

void add_tgate(Circuit& c, const std::string& prefix, NodeId a, NodeId b,
               NodeId en, NodeId enb, double wn, double wp) {
  if (wp <= 0) wp = wn * kPnRatio;
  c.add_mosfet(prefix + ".mn", MosType::kNmos, a, en, b, wn);
  c.add_mosfet(prefix + ".mp", MosType::kPmos, a, enb, b, wp);
}

void add_pass_nmos(Circuit& c, const std::string& prefix, NodeId a, NodeId b,
                   NodeId en, double w) {
  c.add_mosfet(prefix + ".mn", MosType::kNmos, a, en, b, w);
}

void add_tristate_inverter(Circuit& c, const std::string& prefix, NodeId vdd,
                           NodeId in, NodeId out, NodeId en, NodeId enb,
                           TriStateType type, double wn, double wp) {
  if (wp <= 0) wp = wn * kPnRatio;
  NodeId pmid = c.new_node();
  NodeId nmid = c.new_node();
  if (type == TriStateType::kClockedAtOutput) {
    // VDD - P(in) - pmid - P(enb) - out ; out - N(en) - nmid - N(in) - GND
    c.add_mosfet(prefix + ".mpd", MosType::kPmos, pmid, in, vdd, wp);
    c.add_mosfet(prefix + ".mpc", MosType::kPmos, out, enb, pmid, wp);
    c.add_mosfet(prefix + ".mnc", MosType::kNmos, out, en, nmid, wn);
    c.add_mosfet(prefix + ".mnd", MosType::kNmos, nmid, in, kGround, wn);
  } else {
    // VDD - P(enb) - pmid - P(in) - out ; out - N(in) - nmid - N(en) - GND
    c.add_mosfet(prefix + ".mpc", MosType::kPmos, pmid, enb, vdd, wp);
    c.add_mosfet(prefix + ".mpd", MosType::kPmos, out, in, pmid, wp);
    c.add_mosfet(prefix + ".mnd", MosType::kNmos, out, in, nmid, wn);
    c.add_mosfet(prefix + ".mnc", MosType::kNmos, nmid, en, kGround, wn);
  }
}

void add_keeper(Circuit& c, const std::string& prefix, NodeId vdd, NodeId a,
                double l_um) {
  NodeId ab = c.node(prefix + ".x");
  const double w = 0.28;
  const double l = l_um;  // long channel → weak
  c.add_mosfet(prefix + ".k1p", MosType::kPmos, ab, a, vdd, w * kPnRatio, l);
  c.add_mosfet(prefix + ".k1n", MosType::kNmos, ab, a, kGround, w, l);
  c.add_mosfet(prefix + ".k2p", MosType::kPmos, a, ab, vdd, w * kPnRatio, l);
  c.add_mosfet(prefix + ".k2n", MosType::kNmos, a, ab, kGround, w, l);
}

NodeId add_buffer_chain(Circuit& c, const std::string& prefix, NodeId vdd,
                        NodeId in, int n_stages, double w_first, double taper) {
  AMDREL_CHECK(n_stages >= 1);
  NodeId cur = in;
  double w = w_first;
  for (int i = 0; i < n_stages; ++i) {
    NodeId next = c.node(prefix + ".s" + std::to_string(i));
    add_inverter(c, prefix + ".inv" + std::to_string(i), vdd, cur, next, w);
    cur = next;
    w *= taper;
  }
  return cur;
}

int count_devices_with_prefix(const Circuit& c, const std::string& prefix) {
  int n = 0;
  for (const auto& m : c.mosfets()) {
    if (m.name.rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

}  // namespace amdrel::cells

#pragma once
// The paper's Fig-2 LUT: a K-input look-up table implemented as an NMOS
// pass-transistor multiplexer tree whose select lines are the LUT inputs
// and whose leaves are the configuration memory cells (S0..S_{2^K-1}).
// Minimum-size devices throughout, per the paper's energy exploration.

#include <cstdint>
#include <string>
#include <vector>

#include "process/tech018.hpp"
#include "spice/circuit.hpp"

namespace amdrel::cells {

struct LutPorts {
  std::vector<spice::NodeId> inputs;      ///< IN1..INK
  std::vector<spice::NodeId> inputs_b;    ///< complements (internally buffered)
  spice::NodeId out;                      ///< buffered output
};

/// Instantiates a K-input LUT configured with `truth_table` (bit i = output
/// for input pattern i, input 0 = LSB selector). Memory cells are modelled
/// as rail ties (an SRAM cell holds a static level). Includes the output
/// level-restorer and buffer.
LutPorts add_lut(spice::Circuit& c, const std::string& prefix,
                 spice::NodeId vdd, int k, std::uint32_t truth_table);

/// Characterized LUT figures used by the FPGA power model.
struct LutMetrics {
  double delay_s;          ///< worst input→output delay
  double energy_per_toggle_j;  ///< average supply energy per output toggle
  double input_cap_f;      ///< capacitance of one select input
};

LutMetrics characterize_lut4(
    const process::Tech018& tech = process::default_tech());

}  // namespace amdrel::cells

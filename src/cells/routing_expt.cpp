#include "cells/routing_expt.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "cells/primitives.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"

namespace amdrel::cells {

using spice::Circuit;
using spice::kGround;
using spice::MosType;
using spice::NodeId;
using spice::TransientOptions;
using spice::TransientSim;
using spice::Waveform;

namespace {

/// Area charged per routing switch for its SRAM configuration cell [µm²]
/// (6T cell in 0.18 µm).
constexpr double kSramCellArea = 8.0;

constexpr double kRamp = 50e-12;

/// Adds the junction capacitance an off-state pass switch of width w hangs
/// on `node` (drain diffusion of the off device).
void add_off_switch_stub(Circuit& c, NodeId node, double w_um) {
  const auto& tech = c.tech();
  c.add_cap_to_ground(node, tech.junction_cap(tech.nmos, w_um));
}

struct BuiltExperiment {
  Circuit circuit;
  NodeId out;
  double switch_area = 0.0;
  int n_config_cells = 0;
  int n_segments = 0;
};

BuiltExperiment build(const RoutingExptOptions& options,
                      const process::Tech018& tech, double period) {
  const int n_segments = options.n_segments;
  const auto wire = tech.wire(options.wire_width, options.wire_spacing);
  const double w_sw = options.switch_width_x * tech.w_min_um;
  const double vdd_v = tech.vdd;

  BuiltExperiment b{Circuit(tech), 0, 0.0, 0, n_segments};
  Circuit& c = b.circuit;
  NodeId vdd = c.node("vdd");
  NodeId in = c.node("in");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(vdd_v));
  c.add_vsource("vin", in, kGround,
                Waveform::pulse(0, vdd_v, period / 4, kRamp, kRamp,
                                period / 2 - kRamp, period));

  // CLB output buffer: 2-stage tapered driver.
  NodeId drv = add_buffer_chain(c, "drv", vdd, in, 2, 1.12, 6.0);

  // Output-pin pass transistor onto the first track (same size as routing
  // switches, per the paper).
  NodeId track0 = c.node("track0");
  c.add_mosfet("opin", MosType::kNmos, drv, vdd, track0, w_sw);
  b.switch_area += tech.transistor_area_um2(w_sw);
  ++b.n_config_cells;

  // Build the chain of segments.
  NodeId seg_head = track0;
  NodeId tail = track0;
  for (int s = 0; s < n_segments; ++s) {
    if (s > 0) {
      // Routing switch joining the previous segment to this one.
      NodeId head = c.node("track" + std::to_string(s));
      if (options.style == SwitchStyle::kPassTransistor) {
        c.add_mosfet("sw" + std::to_string(s), MosType::kNmos, tail, vdd, head,
                     w_sw);
        b.switch_area += tech.transistor_area_um2(w_sw);
        ++b.n_config_cells;
      } else {
        // Pair of two-stage tri-state buffers, one per direction; only the
        // forward one is enabled. First stage: minimum-width inverter
        // (logic threshold adjustment, §3.3.2); second: tri-state of the
        // swept width.
        const std::string p = "buf" + std::to_string(s);
        NodeId mid = c.node(p + ".mid");
        add_inverter(c, p + ".in", vdd, tail, mid, tech.w_min_um);
        add_tristate_inverter(c, p + ".out", vdd, mid, head, vdd, kGround,
                              TriStateType::kClockedAtOutput, w_sw);
        NodeId rmid = c.node(p + ".rmid");
        add_inverter(c, p + ".rin", vdd, head, rmid, tech.w_min_um);
        add_tristate_inverter(c, p + ".rout", vdd, rmid, tail, kGround, vdd,
                              TriStateType::kClockedAtOutput, w_sw);
        b.switch_area +=
            2 * (2 * tech.transistor_area_um2(tech.w_min_um) +
                 2 * tech.transistor_area_um2(w_sw) +
                 2 * tech.transistor_area_um2(w_sw * kPnRatio));
        b.n_config_cells += 2;
      }
      seg_head = head;
    }

    // Wire of this segment: one RC π per spanned tile. With Fc = 1 each
    // CLB pin touches a single track, so one wire sees one output-pin
    // switch and one connection-box switch per segment (not per tile).
    NodeId prev = seg_head;
    for (int t = 0; t < options.wire_length; ++t) {
      NodeId next = c.node("w" + std::to_string(s) + "_" + std::to_string(t));
      const double tile_um = tech.clb_tile_span_um;
      c.add_resistor("rw" + std::to_string(s) + "_" + std::to_string(t), prev,
                     next, wire.r_per_um * tile_um);
      const double cw = wire.c_per_um * tile_um;
      c.add_cap_to_ground(prev, cw / 2);
      c.add_cap_to_ground(next, cw / 2);
      prev = next;
    }
    tail = prev;
    add_off_switch_stub(c, seg_head, w_sw);  // CLB output pin (off)
    add_off_switch_stub(c, tail, w_sw);      // connection box (off)
    b.switch_area += 2 * tech.transistor_area_um2(w_sw);
    b.n_config_cells += 2;

    // Disjoint switch box at the segment end: Fs=3 → two additional off
    // switches hang on the wire end (the third is the on-path switch).
    add_off_switch_stub(c, tail, w_sw);
    add_off_switch_stub(c, tail, w_sw);
    b.switch_area += 2 * tech.transistor_area_um2(w_sw);
    b.n_config_cells += 2;
  }

  // Receiver: connection-box pass transistor into the CLB input buffer,
  // with a weak level-restoring PMOS recovering the degraded pass-
  // transistor '1' (standard island-style input circuitry).
  NodeId rx_in = c.node("rx_in");
  c.add_mosfet("cbox", MosType::kNmos, tail, vdd, rx_in, w_sw);
  b.switch_area += tech.transistor_area_um2(w_sw);
  ++b.n_config_cells;
  NodeId rx1 = c.node("rx1");
  add_inverter(c, "rxinv1", vdd, rx_in, rx1, 0.56);
  // Drawn long so the worst-case pull-down path (minimum-width switches in
  // series) still overpowers it.
  c.add_mosfet("rxrestore", MosType::kPmos, rx_in, rx1, vdd, 0.28,
               /*l_um=*/1.44);
  b.out = c.node("rx_out");
  add_inverter(c, "rxinv2", vdd, rx1, b.out, 1.12);
  return b;
}

}  // namespace

RoutingExptResult run_routing_experiment(const RoutingExptOptions& options,
                                         const process::Tech018& tech) {
  AMDREL_CHECK(options.n_segments >= 1);
  AMDREL_CHECK(options.wire_length >= 1);
  AMDREL_CHECK(options.switch_width_x >= 1.0);

  // Slow configurations (minimum-width switches on long wires) need a wider
  // stimulus period to settle; stretch and retry until the output switches.
  double period = options.period;
  double d_rise = -1, d_fall = -1, energy = 0, area = 0;
  for (int attempt = 0; attempt < 4; ++attempt, period *= 3) {
    BuiltExperiment b = build(options, tech, period);

    TransientSim sim(b.circuit, options.solver);
    TransientOptions topt;
    topt.t_stop = 2.0 * period;
    topt.dt = std::max(options.dt, period / 4000.0);
    topt.record = true;
    auto res = sim.run(topt);

    // Input edges (mid-swing) in the second cycle.
    const double t_rise_in = period / 4 + kRamp / 2 + period;
    const double t_fall_in = 3 * period / 4 + kRamp / 2 + period;
    // The receiver chain is non-inverting end to end.
    d_rise = res.delay_from(t_rise_in, b.out, tech.vdd / 2, true);
    d_fall = res.delay_from(t_fall_in, b.out, tech.vdd / 2, false);
    energy = res.energy_from("vdd") / 2.0;  // per cycle

    const auto wire = tech.wire(options.wire_width, options.wire_spacing);
    area = b.switch_area + kSramCellArea * b.n_config_cells +
           wire.pitch_um * options.wire_length * tech.clb_tile_span_um *
               b.n_segments;
    if (d_rise > 0 && d_fall > 0) break;
  }
  AMDREL_CHECK_MSG(d_rise > 0 && d_fall > 0,
                   "routing experiment: output did not switch");

  RoutingExptResult r{};
  r.delay_s = std::max(d_rise, d_fall);
  r.energy_j = energy;
  r.area_um2 = area;
  r.eda = r.delay_s * r.energy_j * r.area_um2;
  return r;
}

}  // namespace amdrel::cells

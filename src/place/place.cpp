#include "place/place.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace amdrel::place {

using netlist::kNoSignal;
using netlist::Network;
using netlist::SignalId;

namespace {

/// VPR's net-fanout correction factor q(n) (Cheng's RISA table, as used
/// by VPR's bounding-box cost).
double fanout_q(int n_pins) {
  static const double kQ[] = {1.0,    1.0,    1.0,    1.0828, 1.1536, 1.2206,
                              1.2823, 1.3385, 1.3991, 1.4493, 1.4974};
  if (n_pins <= 10) return kQ[n_pins >= 1 ? n_pins : 1];
  // Linear extrapolation beyond 10 pins, as VPR does.
  return 1.4974 + 0.02616 * (n_pins - 10);
}

/// Per-net bounding box with VPR-style edge counts: how many pins sit on
/// each of the four edges. A pin move updates the box in O(1) unless it
/// leaves an edge it was the last pin on, which forces an O(pins) rebuild.
struct NetBox {
  int xmin = 0, xmax = 0, ymin = 0, ymax = 0;
  int n_xmin = 0, n_xmax = 0, n_ymin = 0, n_ymax = 0;
};

}  // namespace

Placement::Placement(const pack::PackedNetlist& packed,
                     const arch::ArchSpec& spec, std::uint64_t placement_seed,
                     int nx, int ny)
    : packed_(&packed), spec_(&spec) {
  build_blocks_and_nets();
  if (nx > 0 && ny > 0) {
    // Grid override: same legality rules, caller-chosen aspect ratio.
    AMDREL_CHECK_MSG(
        static_cast<long long>(nx) * ny >=
            static_cast<long long>(packed_->clusters().size()),
        "grid override too small for the packed clusters");
    AMDREL_CHECK_MSG(2 * (nx + ny) * spec_->io_per_tile >=
                         static_cast<int>(pad_block_.size()),
                     "grid override perimeter too small for the IO pads");
    nx_ = nx;
    ny_ = ny;
  }
  initial_place(placement_seed);
}

void Placement::build_blocks_and_nets() {
  const Network& net = packed_->network();

  // Identify clock signals: latch clocks are global.
  std::set<SignalId> clocks;
  for (const auto& l : net.latches()) {
    if (l.clock != kNoSignal) clocks.insert(l.clock);
  }

  cluster_block_.clear();
  for (std::size_t ci = 0; ci < packed_->clusters().size(); ++ci) {
    cluster_block_.push_back(static_cast<int>(blocks_.size()));
    blocks_.push_back(Block{BlockKind::kClb, static_cast<int>(ci), kNoSignal,
                            "clb" + std::to_string(ci)});
  }
  for (SignalId s : net.inputs()) {
    if (clocks.count(s)) continue;  // global clock needs no routed pad net
    pad_block_.emplace(s, static_cast<int>(blocks_.size()));
    blocks_.push_back(Block{BlockKind::kInputPad,
                            static_cast<int>(pad_block_.size()) - 1, s,
                            net.signal_name(s)});
  }
  for (SignalId s : net.outputs()) {
    if (pad_block_.count(s)) continue;  // signal both PI and PO: one pad
    pad_block_.emplace(s, static_cast<int>(blocks_.size()));
    blocks_.push_back(Block{BlockKind::kOutputPad,
                            static_cast<int>(pad_block_.size()) - 1, s,
                            net.signal_name(s) + "_pad"});
  }

  // Grid size.
  auto grid = arch::size_grid(*spec_, static_cast<int>(packed_->clusters().size()),
                              static_cast<int>(pad_block_.size()));
  nx_ = grid.nx;
  ny_ = grid.ny;

  // Nets: signal → source block + sink blocks.
  // Source: producing cluster or input pad. Sinks: consuming clusters
  // (via cluster input lists) and output pads.
  std::map<SignalId, Net> by_signal;
  auto net_for = [&](SignalId s) -> Net& {
    auto it = by_signal.find(s);
    if (it == by_signal.end()) {
      it = by_signal.emplace(s, Net{s, -1, {}}).first;
    }
    return it->second;
  };
  for (std::size_t ci = 0; ci < packed_->clusters().size(); ++ci) {
    const auto& c = packed_->clusters()[ci];
    for (SignalId s : c.output_signals) {
      net_for(s).source = cluster_block_[ci];
    }
    for (SignalId s : c.input_signals) {
      if (clocks.count(s)) continue;
      net_for(s).sinks.push_back(cluster_block_[ci]);
    }
  }
  for (const auto& [s, b] : pad_block_) {
    if (blocks_[static_cast<std::size_t>(b)].kind == BlockKind::kInputPad) {
      net_for(s).source = b;
    } else {
      net_for(s).sinks.push_back(b);
    }
    // A PI that is also a PO: pad is both; handled by the source above.
    if (net.is_output(s) &&
        blocks_[static_cast<std::size_t>(b)].kind == BlockKind::kInputPad) {
      net_for(s).sinks.push_back(b);
    }
  }
  for (auto& [s, n] : by_signal) {
    if (n.source < 0 || n.sinks.empty()) continue;  // internal-only signal
    nets_.push_back(std::move(n));
  }

  block_nets_.assign(blocks_.size(), {});
  for (std::size_t ni = 0; ni < nets_.size(); ++ni) {
    std::map<int, int> members;  // block → pin multiplicity on this net
    ++members[nets_[ni].source];
    for (int b : nets_[ni].sinks) ++members[b];
    for (const auto& [b, pins] : members) {
      block_nets_[static_cast<std::size_t>(b)].push_back(
          BlockNet{static_cast<int>(ni), pins});
    }
  }

  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    name_block_.emplace(blocks_[b].name, static_cast<int>(b));
  }
}

std::vector<Loc> Placement::legal_clb_locs() const {
  std::vector<Loc> out;
  for (int x = 1; x <= nx_; ++x) {
    for (int y = 1; y <= ny_; ++y) out.push_back(Loc{x, y, 0});
  }
  return out;
}

std::vector<Loc> Placement::legal_io_locs() const {
  std::vector<Loc> out;
  for (int sub = 0; sub < spec_->io_per_tile; ++sub) {
    for (int x = 1; x <= nx_; ++x) {
      out.push_back(Loc{x, 0, sub});
      out.push_back(Loc{x, ny_ + 1, sub});
    }
    for (int y = 1; y <= ny_; ++y) {
      out.push_back(Loc{0, y, sub});
      out.push_back(Loc{nx_ + 1, y, sub});
    }
  }
  return out;
}

void Placement::initial_place(std::uint64_t seed) {
  Rng rng(seed);
  auto clb_locs = legal_clb_locs();
  auto io_locs = legal_io_locs();
  rng.shuffle(clb_locs);
  rng.shuffle(io_locs);
  locs_.assign(blocks_.size(), Loc{});
  std::size_t ci = 0, ii = 0;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].kind == BlockKind::kClb) {
      AMDREL_CHECK(ci < clb_locs.size());
      locs_[b] = clb_locs[ci++];
    } else {
      AMDREL_CHECK(ii < io_locs.size());
      locs_[b] = io_locs[ii++];
    }
  }
}

int Placement::block_of_cluster(int cluster) const {
  return cluster_block_[static_cast<std::size_t>(cluster)];
}

int Placement::block_of_pad(SignalId s) const {
  auto it = pad_block_.find(s);
  AMDREL_CHECK_MSG(it != pad_block_.end(), "signal has no pad");
  return it->second;
}

int Placement::block_by_name(const std::string& name) const {
  auto it = name_block_.find(name);
  return it == name_block_.end() ? -1 : it->second;
}

void Placement::set_location(int block, const Loc& loc) {
  AMDREL_CHECK(block >= 0 && block < static_cast<int>(blocks_.size()));
  locs_[static_cast<std::size_t>(block)] = loc;
}

double Placement::net_cost(const Net& net) const {
  int xmin = 1 << 30, xmax = -1, ymin = 1 << 30, ymax = -1;
  auto touch = [&](int b) {
    const Loc& l = locs_[static_cast<std::size_t>(b)];
    xmin = std::min(xmin, l.x);
    xmax = std::max(xmax, l.x);
    ymin = std::min(ymin, l.y);
    ymax = std::max(ymax, l.y);
  };
  touch(net.source);
  for (int b : net.sinks) touch(b);
  const int pins = 1 + static_cast<int>(net.sinks.size());
  return fanout_q(pins) * ((xmax - xmin) + (ymax - ymin));
}

double Placement::total_cost() const {
  double c = 0;
  for (const auto& n : nets_) c += net_cost(n);
  return c;
}

Placement::AnnealStats Placement::anneal(const AnnealOptions& options) {
  Rng rng(options.seed);
  AnnealStats stats;
  stats.initial_cost = total_cost();
  obs::Span span("place.anneal");

  // Block lists by type for move selection (locked blocks excluded: they
  // are never picked, and propose_and_apply rejects swaps onto them).
  std::vector<int> clbs, ios;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (options.movable != nullptr && !(*options.movable)[b]) continue;
    (blocks_[b].kind == BlockKind::kClb ? clbs : ios).push_back(
        static_cast<int>(b));
  }
  if (clbs.empty() && ios.empty()) {
    stats.final_cost = stats.initial_cost;
    validate();
    return stats;
  }

  // Occupancy map: location → block (or -1).
  auto loc_key = [&](const Loc& l) {
    return (l.x * (ny_ + 2) + l.y) * spec_->io_per_tile + l.sub;
  };
  std::vector<int> occupant(
      static_cast<std::size_t>((nx_ + 2) * (ny_ + 2) * spec_->io_per_tile),
      -1);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    occupant[static_cast<std::size_t>(loc_key(locs_[b]))] = static_cast<int>(b);
  }

  auto clb_locs = legal_clb_locs();
  auto io_locs = legal_io_locs();

  const int n_blocks = static_cast<int>(clbs.size() + ios.size());
  const long long moves_per_t = std::max<long long>(
      32, static_cast<long long>(options.inner_num *
                                 std::pow(n_blocks, 4.0 / 3.0)));

  // Initial temperature: 20 × stddev of random-move deltas (VPR).
  double cost = stats.initial_cost;
  const double rlim_cap =
      options.rlim_max > 0
          ? std::min(options.rlim_max, static_cast<double>(std::max(nx_, ny_)))
          : static_cast<double>(std::max(nx_, ny_));
  double rlim = rlim_cap;

  const std::size_t n_nets = nets_.size();

  // --- Incremental cost state -------------------------------------------
  // Cached bbox (with edge counts) and cost per net, plus flat CSR copies
  // of the block→net and net→pin-block adjacency so the hot loop walks
  // contiguous ints instead of chasing vector-of-vector pointers.
  std::vector<double> net_q(n_nets);
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    net_q[ni] = fanout_q(1 + static_cast<int>(nets_[ni].sinks.size()));
  }
  std::vector<NetBox> box(n_nets);
  std::vector<double> cached_cost(n_nets, 0.0);

  // block → {net, pin multiplicity} (CSR).
  std::vector<int> bn_off(blocks_.size() + 1, 0);
  std::vector<int> bn_net, bn_pins;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    bn_off[b + 1] = bn_off[b] + static_cast<int>(block_nets_[b].size());
    for (const BlockNet& bn : block_nets_[b]) {
      bn_net.push_back(bn.net);
      bn_pins.push_back(bn.pins);
    }
  }
  // net → pin blocks, multiplicity expanded (CSR).
  std::vector<int> np_off(n_nets + 1, 0);
  std::vector<int> np_blk;
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    np_off[ni + 1] = np_off[ni] + 1 + static_cast<int>(nets_[ni].sinks.size());
    np_blk.push_back(nets_[ni].source);
    for (int s : nets_[ni].sinks) np_blk.push_back(s);
  }
  // SoA copy of the block locations: the bbox rebuilds touch only x and
  // y, and two packed int arrays halve the memory traffic of chasing
  // 12-byte Loc structs. locs_ stays authoritative; both are updated at
  // every apply/revert.
  std::vector<int> lx(blocks_.size()), ly(blocks_.size());
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    lx[b] = locs_[b].x;
    ly[b] = locs_[b].y;
  }

  // Nets up to this many pins skip edge-count bookkeeping entirely: a
  // branchless min/max rebuild over the flat pin list is cheaper than
  // maintaining counts, and almost every net in a LUT netlist qualifies.
  constexpr int kSmallNet = 10;
  std::vector<char> net_small(n_nets, 0);
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    net_small[ni] = (np_off[ni + 1] - np_off[ni] <= kSmallNet) ? 1 : 0;
  }

  // Per-move scratch: affected nets land in a sequential buffer (proposal
  // box + cost); an epoch-marked slot array replaces a per-move std::set
  // (a net is "in" the scratch iff its epoch matches the current move's).
  struct Touched {
    int ni = 0;
    char rebuilt = 0;  ///< big nets only: counts already rebuilt this move
    double cost = 0;
    NetBox nb;
  };
  std::vector<Touched> touched;
  touched.reserve(64);
  std::vector<int> net_epoch(n_nets, 0), net_slot(n_nets, 0);
  int move_epoch = 0;
  std::vector<double> oracle_before;  ///< oracle path's per-net old costs
  oracle_before.reserve(64);

  auto box_from_scratch = [&](int ni) {
    const Net& net = nets_[static_cast<std::size_t>(ni)];
    NetBox bx;
    bx.xmin = bx.ymin = 1 << 30;
    bx.xmax = bx.ymax = -1;
    auto touch = [&](int b) {
      const int tx = lx[static_cast<std::size_t>(b)];
      const int ty = ly[static_cast<std::size_t>(b)];
      if (tx < bx.xmin) {
        bx.xmin = tx;
        bx.n_xmin = 1;
      } else if (tx == bx.xmin) {
        ++bx.n_xmin;
      }
      if (tx > bx.xmax) {
        bx.xmax = tx;
        bx.n_xmax = 1;
      } else if (tx == bx.xmax) {
        ++bx.n_xmax;
      }
      if (ty < bx.ymin) {
        bx.ymin = ty;
        bx.n_ymin = 1;
      } else if (ty == bx.ymin) {
        ++bx.n_ymin;
      }
      if (ty > bx.ymax) {
        bx.ymax = ty;
        bx.n_ymax = 1;
      } else if (ty == bx.ymax) {
        ++bx.n_ymax;
      }
    };
    touch(net.source);
    for (int b : net.sinks) touch(b);
    return bx;
  };
  // Count-free rebuild for small nets: four min/max per pin, no branches.
  // Edge counts stay unset — small nets never take the O(1) update path.
  auto mini_box = [&](std::size_t ni) {
    const int* p = &np_blk[static_cast<std::size_t>(np_off[ni])];
    const int* end = &np_blk[0] + np_off[ni + 1];
    NetBox bx;
    bx.xmin = bx.xmax = lx[static_cast<std::size_t>(*p)];
    bx.ymin = bx.ymax = ly[static_cast<std::size_t>(*p)];
    for (++p; p != end; ++p) {
      const int tx = lx[static_cast<std::size_t>(*p)];
      const int ty = ly[static_cast<std::size_t>(*p)];
      bx.xmin = std::min(bx.xmin, tx);
      bx.xmax = std::max(bx.xmax, tx);
      bx.ymin = std::min(bx.ymin, ty);
      bx.ymax = std::max(bx.ymax, ty);
    }
    return bx;
  };
  auto box_cost = [&](const NetBox& bx, int ni) {
    return net_q[static_cast<std::size_t>(ni)] *
           ((bx.xmax - bx.xmin) + (bx.ymax - bx.ymin));
  };

  // O(1) bbox update for one pin move. Returns false when the pin left an
  // edge it was the last pin on — the box must then be rebuilt from
  // scratch (locs_ already hold every moved pin's new location, so the
  // rebuild covers the whole move and later pin updates are skipped).
  auto update_box = [](NetBox& bx, const Loc& oldl, const Loc& newl) {
    if (newl.x != oldl.x) {
      if (newl.x > oldl.x) {
        if (oldl.x == bx.xmin) {
          if (bx.n_xmin == 1) return false;
          --bx.n_xmin;
        }
        if (newl.x > bx.xmax) {
          bx.xmax = newl.x;
          bx.n_xmax = 1;
        } else if (newl.x == bx.xmax) {
          ++bx.n_xmax;
        }
      } else {
        if (oldl.x == bx.xmax) {
          if (bx.n_xmax == 1) return false;
          --bx.n_xmax;
        }
        if (newl.x < bx.xmin) {
          bx.xmin = newl.x;
          bx.n_xmin = 1;
        } else if (newl.x == bx.xmin) {
          ++bx.n_xmin;
        }
      }
    }
    if (newl.y != oldl.y) {
      if (newl.y > oldl.y) {
        if (oldl.y == bx.ymin) {
          if (bx.n_ymin == 1) return false;
          --bx.n_ymin;
        }
        if (newl.y > bx.ymax) {
          bx.ymax = newl.y;
          bx.n_ymax = 1;
        } else if (newl.y == bx.ymax) {
          ++bx.n_ymax;
        }
      } else {
        if (oldl.y == bx.ymax) {
          if (bx.n_ymax == 1) return false;
          --bx.n_ymax;
        }
        if (newl.y < bx.ymin) {
          bx.ymin = newl.y;
          bx.n_ymin = 1;
        } else if (newl.y == bx.ymin) {
          ++bx.n_ymin;
        }
      }
    }
    return true;
  };

  if (options.incremental) {
    for (std::size_t ni = 0; ni < n_nets; ++ni) {
      box[ni] = box_from_scratch(static_cast<int>(ni));
      cached_cost[ni] = box_cost(box[ni], static_cast<int>(ni));
    }
  }

  auto propose_and_apply = [&](double temperature, bool always_accept,
                               double* delta_out) -> bool {
    // Pick a random block; find a partner location within rlim.
    bool move_clb = !clbs.empty() && (ios.empty() || rng.next_bool(0.7));
    const std::vector<int>& group = move_clb ? clbs : ios;
    int b = group[static_cast<std::size_t>(rng.next_below(group.size()))];
    const Loc from = locs_[static_cast<std::size_t>(b)];

    Loc to;
    if (move_clb) {
      const int r = std::max(1, static_cast<int>(rlim));
      to.x = std::clamp(from.x + rng.next_int(-r, r), 1, nx_);
      to.y = std::clamp(from.y + rng.next_int(-r, r), 1, ny_);
      to.sub = 0;
    } else {
      to = io_locs[static_cast<std::size_t>(rng.next_below(io_locs.size()))];
    }
    if (to == from) return false;
    int other = occupant[static_cast<std::size_t>(loc_key(to))];
    if (other >= 0 && blocks_[static_cast<std::size_t>(other)].kind !=
                          blocks_[static_cast<std::size_t>(b)].kind) {
      // IO↔CLB swaps are illegal; CLB moves only land on CLB tiles by
      // construction, so this triggers only when pads share coordinates.
      return false;
    }
    if (other >= 0 && options.movable != nullptr &&
        !(*options.movable)[static_cast<std::size_t>(other)]) {
      return false;  // would displace a locked block
    }

    double delta = 0;
    if (options.incremental) {
      // Apply locations first: a from-scratch rebuild mid-update must see
      // every moved pin at its new spot.
      locs_[static_cast<std::size_t>(b)] = to;
      lx[static_cast<std::size_t>(b)] = to.x;
      ly[static_cast<std::size_t>(b)] = to.y;
      if (other >= 0) {
        locs_[static_cast<std::size_t>(other)] = from;
        lx[static_cast<std::size_t>(other)] = from.x;
        ly[static_cast<std::size_t>(other)] = from.y;
      }

      ++move_epoch;
      touched.clear();
      auto move_pins = [&](int blk, const Loc& oldl, const Loc& newl) {
        const int lo = bn_off[static_cast<std::size_t>(blk)];
        const int hi = bn_off[static_cast<std::size_t>(blk) + 1];
        for (int e = lo; e < hi; ++e) {
          const std::size_t ni = static_cast<std::size_t>(bn_net[
              static_cast<std::size_t>(e)]);
          if (net_epoch[ni] == move_epoch) {
            if (net_small[ni]) continue;  // mini rebuild already saw locs_
            Touched& t = touched[static_cast<std::size_t>(net_slot[ni])];
            const int pins = bn_pins[static_cast<std::size_t>(e)];
            for (int k = 0; k < pins && !t.rebuilt; ++k) {
              if (!update_box(t.nb, oldl, newl)) {
                t.nb = box_from_scratch(static_cast<int>(ni));
                t.rebuilt = 1;
              }
            }
            continue;
          }
          net_epoch[ni] = move_epoch;
          net_slot[ni] = static_cast<int>(touched.size());
          touched.emplace_back();
          Touched& t = touched.back();
          t.ni = static_cast<int>(ni);
          if (net_small[ni]) {
            // locs_ already hold every moved pin: one rebuild is final.
            t.nb = mini_box(ni);
          } else {
            t.nb = box[ni];
            const int pins = bn_pins[static_cast<std::size_t>(e)];
            for (int k = 0; k < pins && !t.rebuilt; ++k) {
              if (!update_box(t.nb, oldl, newl)) {
                t.nb = box_from_scratch(static_cast<int>(ni));
                t.rebuilt = 1;
              }
            }
          }
        }
      };
      move_pins(b, from, to);
      if (other >= 0) move_pins(other, to, from);
      for (Touched& t : touched) {
        t.cost = box_cost(t.nb, t.ni);
      }
      // Sum per-net deltas in ascending net id order (a merge walk over
      // the two blocks' sorted net lists). The oracle path sums the same
      // bit-identical per-net differences in the same order, so the two
      // modes accept the same moves, consume the same rng stream, and
      // anneal along bit-identical trajectories.
      {
        int ea = bn_off[static_cast<std::size_t>(b)];
        const int ea_end = bn_off[static_cast<std::size_t>(b) + 1];
        int eb = other >= 0 ? bn_off[static_cast<std::size_t>(other)] : 0;
        const int eb_end =
            other >= 0 ? bn_off[static_cast<std::size_t>(other) + 1] : 0;
        constexpr int kEnd = std::numeric_limits<int>::max();
        while (ea < ea_end || eb < eb_end) {
          const int na = ea < ea_end
                             ? bn_net[static_cast<std::size_t>(ea)] : kEnd;
          const int nb = eb < eb_end
                             ? bn_net[static_cast<std::size_t>(eb)] : kEnd;
          const int ni = na < nb ? na : nb;
          if (na == ni) ++ea;
          if (nb == ni) ++eb;
          const std::size_t i = static_cast<std::size_t>(ni);
          delta += touched[static_cast<std::size_t>(net_slot[i])].cost -
                   cached_cost[i];
        }
      }
    } else {
      // Oracle path: recompute every affected net's full bbox cost before
      // and after the move, per net in ascending net id order (matching
      // the incremental path's summation exactly — see above).
      std::set<int> affected_set;
      for (const BlockNet& bn : block_nets_[static_cast<std::size_t>(b)]) {
        affected_set.insert(bn.net);
      }
      if (other >= 0) {
        for (const BlockNet& bn :
             block_nets_[static_cast<std::size_t>(other)]) {
          affected_set.insert(bn.net);
        }
      }
      oracle_before.clear();
      for (int ni : affected_set) {
        oracle_before.push_back(net_cost(nets_[static_cast<std::size_t>(ni)]));
      }
      locs_[static_cast<std::size_t>(b)] = to;
      lx[static_cast<std::size_t>(b)] = to.x;
      ly[static_cast<std::size_t>(b)] = to.y;
      if (other >= 0) {
        locs_[static_cast<std::size_t>(other)] = from;
        lx[static_cast<std::size_t>(other)] = from.x;
        ly[static_cast<std::size_t>(other)] = from.y;
      }
      std::size_t k = 0;
      for (int ni : affected_set) {
        delta += net_cost(nets_[static_cast<std::size_t>(ni)]) -
                 oracle_before[k++];
      }
    }
    *delta_out = delta;

    bool accept =
        always_accept || delta <= 0 ||
        (temperature > 0 && rng.next_double() < std::exp(-delta / temperature));
    if (accept) {
      if (options.incremental) {
        for (const Touched& t : touched) {
          box[static_cast<std::size_t>(t.ni)] = t.nb;
          cached_cost[static_cast<std::size_t>(t.ni)] = t.cost;
        }
      }
      occupant[static_cast<std::size_t>(loc_key(to))] = b;
      occupant[static_cast<std::size_t>(loc_key(from))] = other;
      cost += delta;
      return true;
    }
    // Revert.
    locs_[static_cast<std::size_t>(b)] = from;
    lx[static_cast<std::size_t>(b)] = from.x;
    ly[static_cast<std::size_t>(b)] = from.y;
    if (other >= 0) {
      locs_[static_cast<std::size_t>(other)] = to;
      lx[static_cast<std::size_t>(other)] = to.x;
      ly[static_cast<std::size_t>(other)] = to.y;
    }
    return false;
  };

  // Estimate T0.
  double sum = 0, sum2 = 0;
  int samples = 0;
  for (int i = 0; i < std::min(200, 10 * n_blocks); ++i) {
    double delta = 0;
    if (propose_and_apply(0, /*always_accept=*/true, &delta)) {
      sum += delta;
      sum2 += delta * delta;
      ++samples;
    }
  }
  double t = 1.0;
  if (samples > 1) {
    double var = (sum2 - sum * sum / samples) / (samples - 1);
    t = 20.0 * std::sqrt(std::max(var, 1e-9));
  }
  cost = total_cost();  // re-sync after the shuffling sample moves

  const double exit_t =
      0.005 * cost / std::max<std::size_t>(1, nets_.size());
  while (t > exit_t && cost > 1e-9) {
    long long accepted = 0;
    for (long long m = 0; m < moves_per_t; ++m) {
      double delta = 0;
      if (propose_and_apply(t, false, &delta)) ++accepted;
      ++stats.moves;
    }
    stats.accepted += accepted;
    ++stats.temperatures;
    if (options.incremental) {
      // Bound float drift of the running incremental cost: once per
      // temperature, recompute from scratch, assert agreement, resync.
      const double scratch = total_cost();
      AMDREL_CHECK_MSG(
          std::abs(cost - scratch) <= 1e-6 * std::max(1.0, scratch),
          "incremental placement cost drifted from scratch recompute");
      cost = scratch;
    }
    const double alpha_rate =
        static_cast<double>(accepted) / static_cast<double>(moves_per_t);
    // VPR's adaptive cooling.
    double alpha;
    if (alpha_rate > 0.96) alpha = 0.5;
    else if (alpha_rate > 0.8) alpha = 0.9;
    else if (alpha_rate > 0.15) alpha = 0.95;
    else alpha = 0.8;
    t *= alpha;
    // Window adaptation toward 44% acceptance.
    rlim = std::clamp(rlim * (1.0 - 0.44 + alpha_rate), 1.0, rlim_cap);
    if (obs::enabled()) {
      obs::point("place.temperature",
                 {{"t", t},
                  {"cost", cost},
                  {"accept_rate", alpha_rate},
                  {"rlim", rlim}});
    }
    if (!options.quiet) {
      log_info() << "T=" << t << " cost=" << cost << " acc=" << alpha_rate
                 << " rlim=" << rlim;
    }
  }
  stats.final_cost = total_cost();
  if (span.active()) {
    span.metric("temperatures", static_cast<double>(stats.temperatures));
    span.metric("moves", static_cast<double>(stats.moves));
    span.metric("accepted", static_cast<double>(stats.accepted));
    span.metric("initial_cost", stats.initial_cost);
    span.metric("final_cost", stats.final_cost);
  }
  static obs::Counter& c_moves = obs::counter("place.moves");
  static obs::Counter& c_accepted = obs::counter("place.accepted");
  static obs::Counter& c_anneals = obs::counter("place.anneals");
  c_moves.add(static_cast<std::uint64_t>(stats.moves));
  c_accepted.add(static_cast<std::uint64_t>(stats.accepted));
  c_anneals.add(1);
  validate();
  return stats;
}

void Placement::validate() const {
  std::set<std::tuple<int, int, int>> used;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const Loc& l = locs_[b];
    if (blocks_[b].kind == BlockKind::kClb) {
      AMDREL_CHECK_MSG(l.x >= 1 && l.x <= nx_ && l.y >= 1 && l.y <= ny_,
                       "CLB off-grid");
    } else {
      const bool on_ring = (l.x == 0 || l.x == nx_ + 1) !=
                           (l.y == 0 || l.y == ny_ + 1);
      AMDREL_CHECK_MSG(on_ring, "IO pad not on the perimeter ring");
      AMDREL_CHECK_MSG(l.sub >= 0 && l.sub < spec_->io_per_tile,
                       "bad pad sub-slot");
    }
    auto key = std::make_tuple(l.x, l.y, l.sub);
    AMDREL_CHECK_MSG(used.insert(key).second, "two blocks share a location");
  }
}

netlist::Network reconstruct_network(const Placement& placement) {
  const pack::PackedNetlist& packed = placement.packed();
  const netlist::Network& src = packed.network();
  netlist::Network out(src.name());
  const auto sig = [&](SignalId s) {
    return out.get_or_add_signal(src.signal_name(s));
  };
  // Global clocks are not placed as pads; re-add them as inputs first so
  // the PI set matches the source network.
  std::set<SignalId> clocks;
  for (const auto& l : src.latches()) {
    if (l.clock != kNoSignal) clocks.insert(l.clock);
  }
  for (const SignalId s : src.inputs()) {
    if (clocks.count(s) != 0) out.add_input(sig(s));
  }
  std::set<int> placed_clusters;
  std::set<SignalId> output_pads;
  for (const Block& block : placement.blocks()) {
    switch (block.kind) {
      case BlockKind::kInputPad:
        out.add_input(sig(block.signal));
        break;
      case BlockKind::kOutputPad:
        output_pads.insert(block.signal);  // emitted in source order below
        break;
      case BlockKind::kClb: {
        AMDREL_CHECK_MSG(placed_clusters.insert(block.index).second,
                         "cluster placed twice");
        const pack::Cluster& cluster =
            packed.clusters()[static_cast<std::size_t>(block.index)];
        for (const int bi : cluster.bles) {
          const pack::Ble& ble =
              packed.bles()[static_cast<std::size_t>(bi)];
          if (ble.lut_gate >= 0) {
            const netlist::Gate& g =
                src.gates()[static_cast<std::size_t>(ble.lut_gate)];
            std::vector<SignalId> inputs;
            inputs.reserve(ble.inputs.size());
            for (const SignalId s : ble.inputs) inputs.push_back(sig(s));
            const SignalId lut_out =
                ble.latch >= 0
                    ? src.latches()[static_cast<std::size_t>(ble.latch)].d
                    : ble.output;
            out.add_gate(g.name, g.table, std::move(inputs), sig(lut_out));
          }
          if (ble.latch >= 0) {
            const netlist::Latch& l =
                src.latches()[static_cast<std::size_t>(ble.latch)];
            const SignalId d = ble.lut_gate >= 0 ? l.d : ble.inputs.at(0);
            out.add_latch(l.name, sig(d), sig(ble.output),
                          ble.clock == kNoSignal ? kNoSignal
                                                 : sig(ble.clock),
                          l.init);
          }
        }
        break;
      }
    }
  }
  AMDREL_CHECK_MSG(placed_clusters.size() == packed.clusters().size(),
                   "placement lost a cluster");
  for (const SignalId s : src.outputs()) {
    AMDREL_CHECK_MSG(output_pads.count(s) != 0 || clocks.count(s) != 0,
                     "placement lost an output pad");
    out.add_output(sig(s));
  }
  out.validate();
  return out;
}

}  // namespace amdrel::place

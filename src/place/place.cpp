#include "place/place.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace amdrel::place {

using netlist::kNoSignal;
using netlist::Network;
using netlist::SignalId;

namespace {

/// VPR's net-fanout correction factor q(n) (Cheng's RISA table, as used
/// by VPR's bounding-box cost).
double fanout_q(int n_pins) {
  static const double kQ[] = {1.0,    1.0,    1.0,    1.0828, 1.1536, 1.2206,
                              1.2823, 1.3385, 1.3991, 1.4493, 1.4974};
  if (n_pins <= 10) return kQ[n_pins >= 1 ? n_pins : 1];
  // Linear extrapolation beyond 10 pins, as VPR does.
  return 1.4974 + 0.02616 * (n_pins - 10);
}

}  // namespace

Placement::Placement(const pack::PackedNetlist& packed,
                     const arch::ArchSpec& spec)
    : packed_(&packed), spec_(&spec) {
  build_blocks_and_nets();
  initial_place(1);
}

void Placement::build_blocks_and_nets() {
  const Network& net = packed_->network();

  // Identify clock signals: latch clocks are global.
  std::set<SignalId> clocks;
  for (const auto& l : net.latches()) {
    if (l.clock != kNoSignal) clocks.insert(l.clock);
  }

  cluster_block_.clear();
  for (std::size_t ci = 0; ci < packed_->clusters().size(); ++ci) {
    cluster_block_.push_back(static_cast<int>(blocks_.size()));
    blocks_.push_back(Block{BlockKind::kClb, static_cast<int>(ci), kNoSignal,
                            "clb" + std::to_string(ci)});
  }
  for (SignalId s : net.inputs()) {
    if (clocks.count(s)) continue;  // global clock needs no routed pad net
    pad_block_.emplace(s, static_cast<int>(blocks_.size()));
    blocks_.push_back(Block{BlockKind::kInputPad,
                            static_cast<int>(pad_block_.size()) - 1, s,
                            net.signal_name(s)});
  }
  for (SignalId s : net.outputs()) {
    if (pad_block_.count(s)) continue;  // signal both PI and PO: one pad
    pad_block_.emplace(s, static_cast<int>(blocks_.size()));
    blocks_.push_back(Block{BlockKind::kOutputPad,
                            static_cast<int>(pad_block_.size()) - 1, s,
                            net.signal_name(s) + "_pad"});
  }

  // Grid size.
  auto grid = arch::size_grid(*spec_, static_cast<int>(packed_->clusters().size()),
                              static_cast<int>(pad_block_.size()));
  nx_ = grid.nx;
  ny_ = grid.ny;

  // Nets: signal → source block + sink blocks.
  // Source: producing cluster or input pad. Sinks: consuming clusters
  // (via cluster input lists) and output pads.
  std::map<SignalId, Net> by_signal;
  auto net_for = [&](SignalId s) -> Net& {
    auto it = by_signal.find(s);
    if (it == by_signal.end()) {
      it = by_signal.emplace(s, Net{s, -1, {}}).first;
    }
    return it->second;
  };
  for (std::size_t ci = 0; ci < packed_->clusters().size(); ++ci) {
    const auto& c = packed_->clusters()[ci];
    for (SignalId s : c.output_signals) {
      net_for(s).source = cluster_block_[ci];
    }
    for (SignalId s : c.input_signals) {
      if (clocks.count(s)) continue;
      net_for(s).sinks.push_back(cluster_block_[ci]);
    }
  }
  for (const auto& [s, b] : pad_block_) {
    if (blocks_[static_cast<std::size_t>(b)].kind == BlockKind::kInputPad) {
      net_for(s).source = b;
    } else {
      net_for(s).sinks.push_back(b);
    }
    // A PI that is also a PO: pad is both; handled by the source above.
    if (net.is_output(s) &&
        blocks_[static_cast<std::size_t>(b)].kind == BlockKind::kInputPad) {
      net_for(s).sinks.push_back(b);
    }
  }
  for (auto& [s, n] : by_signal) {
    if (n.source < 0 || n.sinks.empty()) continue;  // internal-only signal
    nets_.push_back(std::move(n));
  }

  block_nets_.assign(blocks_.size(), {});
  for (std::size_t ni = 0; ni < nets_.size(); ++ni) {
    std::set<int> members(nets_[ni].sinks.begin(), nets_[ni].sinks.end());
    members.insert(nets_[ni].source);
    for (int b : members) {
      block_nets_[static_cast<std::size_t>(b)].push_back(static_cast<int>(ni));
    }
  }
}

std::vector<Loc> Placement::legal_clb_locs() const {
  std::vector<Loc> out;
  for (int x = 1; x <= nx_; ++x) {
    for (int y = 1; y <= ny_; ++y) out.push_back(Loc{x, y, 0});
  }
  return out;
}

std::vector<Loc> Placement::legal_io_locs() const {
  std::vector<Loc> out;
  for (int sub = 0; sub < spec_->io_per_tile; ++sub) {
    for (int x = 1; x <= nx_; ++x) {
      out.push_back(Loc{x, 0, sub});
      out.push_back(Loc{x, ny_ + 1, sub});
    }
    for (int y = 1; y <= ny_; ++y) {
      out.push_back(Loc{0, y, sub});
      out.push_back(Loc{nx_ + 1, y, sub});
    }
  }
  return out;
}

void Placement::initial_place(std::uint64_t seed) {
  Rng rng(seed);
  auto clb_locs = legal_clb_locs();
  auto io_locs = legal_io_locs();
  rng.shuffle(clb_locs);
  rng.shuffle(io_locs);
  locs_.assign(blocks_.size(), Loc{});
  std::size_t ci = 0, ii = 0;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].kind == BlockKind::kClb) {
      AMDREL_CHECK(ci < clb_locs.size());
      locs_[b] = clb_locs[ci++];
    } else {
      AMDREL_CHECK(ii < io_locs.size());
      locs_[b] = io_locs[ii++];
    }
  }
}

int Placement::block_of_cluster(int cluster) const {
  return cluster_block_[static_cast<std::size_t>(cluster)];
}

int Placement::block_of_pad(SignalId s) const {
  auto it = pad_block_.find(s);
  AMDREL_CHECK_MSG(it != pad_block_.end(), "signal has no pad");
  return it->second;
}

int Placement::block_by_name(const std::string& name) const {
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].name == name) return static_cast<int>(b);
  }
  return -1;
}

void Placement::set_location(int block, const Loc& loc) {
  AMDREL_CHECK(block >= 0 && block < static_cast<int>(blocks_.size()));
  locs_[static_cast<std::size_t>(block)] = loc;
}

double Placement::net_cost(const Net& net) const {
  int xmin = 1 << 30, xmax = -1, ymin = 1 << 30, ymax = -1;
  auto touch = [&](int b) {
    const Loc& l = locs_[static_cast<std::size_t>(b)];
    xmin = std::min(xmin, l.x);
    xmax = std::max(xmax, l.x);
    ymin = std::min(ymin, l.y);
    ymax = std::max(ymax, l.y);
  };
  touch(net.source);
  for (int b : net.sinks) touch(b);
  const int pins = 1 + static_cast<int>(net.sinks.size());
  return fanout_q(pins) * ((xmax - xmin) + (ymax - ymin));
}

double Placement::total_cost() const {
  double c = 0;
  for (const auto& n : nets_) c += net_cost(n);
  return c;
}

Placement::AnnealStats Placement::anneal(const AnnealOptions& options) {
  Rng rng(options.seed);
  AnnealStats stats;
  stats.initial_cost = total_cost();

  // Block lists by type for move selection.
  std::vector<int> clbs, ios;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    (blocks_[b].kind == BlockKind::kClb ? clbs : ios).push_back(
        static_cast<int>(b));
  }

  // Occupancy map: location → block (or -1).
  auto loc_key = [&](const Loc& l) {
    return (l.x * (ny_ + 2) + l.y) * spec_->io_per_tile + l.sub;
  };
  std::vector<int> occupant(
      static_cast<std::size_t>((nx_ + 2) * (ny_ + 2) * spec_->io_per_tile),
      -1);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    occupant[static_cast<std::size_t>(loc_key(locs_[b]))] = static_cast<int>(b);
  }

  auto clb_locs = legal_clb_locs();
  auto io_locs = legal_io_locs();

  const int n_blocks = static_cast<int>(blocks_.size());
  const long long moves_per_t = std::max<long long>(
      32, static_cast<long long>(options.inner_num *
                                 std::pow(n_blocks, 4.0 / 3.0)));

  // Initial temperature: 20 × stddev of random-move deltas (VPR).
  double cost = stats.initial_cost;
  double rlim = std::max(nx_, ny_);

  auto cost_of_nets = [&](const std::vector<int>& net_ids) {
    double c = 0;
    for (int ni : net_ids) c += net_cost(nets_[static_cast<std::size_t>(ni)]);
    return c;
  };

  auto propose_and_apply = [&](double temperature, bool always_accept,
                               double* delta_out) -> bool {
    // Pick a random block; find a partner location within rlim.
    bool move_clb = !clbs.empty() && (ios.empty() || rng.next_bool(0.7));
    const std::vector<int>& group = move_clb ? clbs : ios;
    int b = group[static_cast<std::size_t>(rng.next_below(group.size()))];
    const Loc from = locs_[static_cast<std::size_t>(b)];

    Loc to;
    if (move_clb) {
      const int r = std::max(1, static_cast<int>(rlim));
      to.x = std::clamp(from.x + rng.next_int(-r, r), 1, nx_);
      to.y = std::clamp(from.y + rng.next_int(-r, r), 1, ny_);
      to.sub = 0;
    } else {
      to = io_locs[static_cast<std::size_t>(rng.next_below(io_locs.size()))];
    }
    if (to == from) return false;
    int other = occupant[static_cast<std::size_t>(loc_key(to))];
    if (other >= 0 && blocks_[static_cast<std::size_t>(other)].kind !=
                          blocks_[static_cast<std::size_t>(b)].kind) {
      // IO↔CLB swaps are illegal; CLB moves only land on CLB tiles by
      // construction, so this triggers only when pads share coordinates.
      return false;
    }

    // Affected nets.
    std::set<int> affected(block_nets_[static_cast<std::size_t>(b)].begin(),
                           block_nets_[static_cast<std::size_t>(b)].end());
    if (other >= 0) {
      affected.insert(block_nets_[static_cast<std::size_t>(other)].begin(),
                      block_nets_[static_cast<std::size_t>(other)].end());
    }
    std::vector<int> affected_v(affected.begin(), affected.end());
    const double before = cost_of_nets(affected_v);

    locs_[static_cast<std::size_t>(b)] = to;
    if (other >= 0) locs_[static_cast<std::size_t>(other)] = from;
    const double after = cost_of_nets(affected_v);
    const double delta = after - before;
    *delta_out = delta;

    bool accept =
        always_accept || delta <= 0 ||
        (temperature > 0 && rng.next_double() < std::exp(-delta / temperature));
    if (accept) {
      occupant[static_cast<std::size_t>(loc_key(to))] = b;
      occupant[static_cast<std::size_t>(loc_key(from))] = other;
      cost += delta;
      return true;
    }
    // Revert.
    locs_[static_cast<std::size_t>(b)] = from;
    if (other >= 0) locs_[static_cast<std::size_t>(other)] = to;
    return false;
  };

  // Estimate T0.
  double sum = 0, sum2 = 0;
  int samples = 0;
  for (int i = 0; i < std::min(200, 10 * n_blocks); ++i) {
    double delta = 0;
    if (propose_and_apply(0, /*always_accept=*/true, &delta)) {
      sum += delta;
      sum2 += delta * delta;
      ++samples;
    }
  }
  double t = 1.0;
  if (samples > 1) {
    double var = (sum2 - sum * sum / samples) / (samples - 1);
    t = 20.0 * std::sqrt(std::max(var, 1e-9));
  }
  cost = total_cost();  // re-sync after the shuffling sample moves

  const double exit_t =
      0.005 * cost / std::max<std::size_t>(1, nets_.size());
  while (t > exit_t && cost > 1e-9) {
    long long accepted = 0;
    for (long long m = 0; m < moves_per_t; ++m) {
      double delta = 0;
      if (propose_and_apply(t, false, &delta)) ++accepted;
      ++stats.moves;
    }
    stats.accepted += accepted;
    ++stats.temperatures;
    const double alpha_rate =
        static_cast<double>(accepted) / static_cast<double>(moves_per_t);
    // VPR's adaptive cooling.
    double alpha;
    if (alpha_rate > 0.96) alpha = 0.5;
    else if (alpha_rate > 0.8) alpha = 0.9;
    else if (alpha_rate > 0.15) alpha = 0.95;
    else alpha = 0.8;
    t *= alpha;
    // Window adaptation toward 44% acceptance.
    rlim = std::clamp(rlim * (1.0 - 0.44 + alpha_rate), 1.0,
                      static_cast<double>(std::max(nx_, ny_)));
    if (!options.quiet) {
      log_info() << "T=" << t << " cost=" << cost << " acc=" << alpha_rate
                 << " rlim=" << rlim;
    }
  }
  stats.final_cost = total_cost();
  validate();
  return stats;
}

void Placement::validate() const {
  std::set<std::tuple<int, int, int>> used;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const Loc& l = locs_[b];
    if (blocks_[b].kind == BlockKind::kClb) {
      AMDREL_CHECK_MSG(l.x >= 1 && l.x <= nx_ && l.y >= 1 && l.y <= ny_,
                       "CLB off-grid");
    } else {
      const bool on_ring = (l.x == 0 || l.x == nx_ + 1) !=
                           (l.y == 0 || l.y == ny_ + 1);
      AMDREL_CHECK_MSG(on_ring, "IO pad not on the perimeter ring");
      AMDREL_CHECK_MSG(l.sub >= 0 && l.sub < spec_->io_per_tile,
                       "bad pad sub-slot");
    }
    auto key = std::make_tuple(l.x, l.y, l.sub);
    AMDREL_CHECK_MSG(used.insert(key).second, "two blocks share a location");
  }
}

}  // namespace amdrel::place

#pragma once
// VPR-style placement: adaptive simulated annealing over an island-style
// grid, bounding-box wirelength cost (the paper's flow uses VPR 4.30).
//
// Coordinates follow VPR's convention: CLBs occupy (1..nx, 1..ny); IO pads
// live on the perimeter ring (x==0, x==nx+1, y==0 or y==ny+1), several per
// tile. Clock nets are global (not placed-for / not routed).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "pack/pack.hpp"

namespace amdrel::place {

struct Loc {
  int x = 0;
  int y = 0;
  int sub = 0;  ///< pad slot within an IO tile (0 for CLBs)
  bool operator==(const Loc& o) const {
    return x == o.x && y == o.y && sub == o.sub;
  }
};

/// A placeable block: one packed cluster, or one IO pad (a primary input
/// or primary output of the netlist).
enum class BlockKind { kClb, kInputPad, kOutputPad };

struct Block {
  BlockKind kind;
  int index;                  ///< cluster index, or PI/PO position
  netlist::SignalId signal;   ///< pad signal (pads only)
  std::string name;
};

/// A placed design: blocks, their locations, and the inter-block nets.
class Placement {
 public:
  /// `placement_seed` seeds the random initial placement (multi-seed
  /// placement gives each attempt its own so the anneals start apart).
  /// `nx`/`ny` override the automatic square grid sizing when > 0 (e.g.
  /// non-square RR-graph tests); the override must still fit the design.
  Placement(const pack::PackedNetlist& packed, const arch::ArchSpec& spec,
            std::uint64_t placement_seed = 1, int nx = 0, int ny = 0);

  const pack::PackedNetlist& packed() const { return *packed_; }
  const arch::ArchSpec& spec() const { return *spec_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }

  const std::vector<Block>& blocks() const { return blocks_; }
  const Loc& location(int block) const {
    return locs_[static_cast<std::size_t>(block)];
  }
  /// Block index of a cluster / of the pad for a PI or PO signal.
  int block_of_cluster(int cluster) const;
  int block_of_pad(netlist::SignalId s) const;
  /// Block index by display name (-1 if absent).
  int block_by_name(const std::string& name) const;
  /// Overrides a block's location (validate() afterwards to check).
  void set_location(int block, const Loc& loc);

  /// Inter-block nets (source block + sink blocks), clocks excluded.
  struct Net {
    netlist::SignalId signal;
    int source = -1;
    std::vector<int> sinks;
  };
  const std::vector<Net>& nets() const { return nets_; }

  /// Half-perimeter wirelength of one net / of the whole placement,
  /// with VPR's fanout correction factor q(n).
  double net_cost(const Net& net) const;
  double total_cost() const;

  /// Runs the annealer (called by `place`); also used by tests directly.
  struct AnnealOptions {
    std::uint64_t seed = 1;
    double inner_num = 10.0;   ///< moves per block per temperature
    bool quiet = true;
    /// Incremental bounding-box cost updates (VPR-style edge counts).
    /// false = recompute every affected net's bbox per move — slow, kept
    /// as the correctness oracle for the incremental path.
    bool incremental = true;
    /// ECO: per-block movability mask (indexed by block id). Blocks
    /// outside the mask keep their locations bit-for-bit: they are never
    /// picked, and swaps that would displace one are rejected. nullptr =
    /// every block is movable.
    const std::vector<char>* movable = nullptr;
    /// Cap on the annealer's move-radius window (rlim); <= 0 = the grid
    /// dimension. ECO uses a small cap for radius-limited local moves.
    double rlim_max = -1.0;
  };
  struct AnnealStats {
    double initial_cost = 0;
    double final_cost = 0;
    int temperatures = 0;
    long long moves = 0;
    long long accepted = 0;
  };
  AnnealStats anneal(const AnnealOptions& options);

  /// Checks no two blocks share a location and all locations are legal.
  void validate() const;

  /// Every legal CLB / IO-pad location on this grid, in deterministic
  /// scan order (public so the ECO engine can assign freed slots).
  std::vector<Loc> legal_clb_locs() const;
  std::vector<Loc> legal_io_locs() const;

 private:
  void build_blocks_and_nets();
  void initial_place(std::uint64_t seed);

  const pack::PackedNetlist* packed_;
  const arch::ArchSpec* spec_;
  int nx_ = 1, ny_ = 1;
  std::vector<Block> blocks_;
  std::vector<Loc> locs_;
  std::vector<Net> nets_;
  std::map<netlist::SignalId, int> pad_block_;
  std::map<std::string, int> name_block_;
  std::vector<int> cluster_block_;
  // Net membership per block for incremental cost updates. A block can pin
  // the same net more than once (e.g. a pad that is both the net's source
  // and a sink); `pins` keeps that multiplicity for bbox edge counts.
  struct BlockNet {
    int net = 0;
    int pins = 1;
  };
  std::vector<std::vector<BlockNet>> block_nets_;
};

/// Rebuilds a Network from the placement's block list: logic from each
/// placed CLB's BLEs, primary inputs/outputs from the placed IO pads
/// (plus the unplaced global clock inputs). A cluster or pad lost or
/// duplicated by placement shows up as a validation or equivalence
/// failure against the mapped network.
netlist::Network reconstruct_network(const Placement& placement);

}  // namespace amdrel::place

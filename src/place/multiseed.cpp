#include "place/multiseed.hpp"

#include <mutex>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace amdrel::place {

MultiSeedResult place_multi_seed(const pack::PackedNetlist& packed,
                                 const arch::ArchSpec& spec,
                                 const MultiSeedOptions& options) {
  AMDREL_CHECK(options.n_seeds >= 1);

  struct Attempt {
    std::unique_ptr<Placement> placement;
    Placement::AnnealStats stats;
    std::uint64_t seed;
  };
  std::vector<Attempt> attempts(static_cast<std::size_t>(options.n_seeds));

  ThreadPool pool(options.n_threads);
  pool.parallel_for(static_cast<std::size_t>(options.n_seeds),
                    [&](std::size_t i) {
                      Attempt& a = attempts[i];
                      a.seed = options.base_seed + i;
                      // Seed the initial placement too: otherwise every
                      // attempt anneals from the same starting point and
                      // the seeds explore far less of the solution space.
                      a.placement =
                          std::make_unique<Placement>(packed, spec, a.seed);
                      Placement::AnnealOptions aopt = options.anneal;
                      aopt.seed = a.seed;
                      a.stats = a.placement->anneal(aopt);
                    });

  // Pick the winner first (lowest cost, earliest seed on ties), then take
  // the worst over the losers — the old interleaved update dropped early
  // attempts from `worst_cost` depending on which attempt won.
  std::size_t best_i = 0;
  for (std::size_t i = 1; i < attempts.size(); ++i) {
    if (attempts[i].stats.final_cost < attempts[best_i].stats.final_cost) {
      best_i = i;
    }
  }
  MultiSeedResult result;
  result.worst_cost = attempts[best_i].stats.final_cost;
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    if (i == best_i) continue;
    result.worst_cost = std::max(result.worst_cost, attempts[i].stats.final_cost);
  }
  result.best = std::move(attempts[best_i].placement);
  result.best_stats = attempts[best_i].stats;
  result.best_seed = attempts[best_i].seed;
  return result;
}

}  // namespace amdrel::place

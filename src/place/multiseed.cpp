#include "place/multiseed.hpp"

#include <mutex>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace amdrel::place {

MultiSeedResult place_multi_seed(const pack::PackedNetlist& packed,
                                 const arch::ArchSpec& spec,
                                 const MultiSeedOptions& options) {
  AMDREL_CHECK(options.n_seeds >= 1);

  struct Attempt {
    std::unique_ptr<Placement> placement;
    Placement::AnnealStats stats;
    std::uint64_t seed;
  };
  std::vector<Attempt> attempts(static_cast<std::size_t>(options.n_seeds));

  ThreadPool pool(options.n_threads);
  pool.parallel_for(static_cast<std::size_t>(options.n_seeds),
                    [&](std::size_t i) {
                      Attempt& a = attempts[i];
                      a.seed = options.base_seed + i;
                      a.placement = std::make_unique<Placement>(packed, spec);
                      Placement::AnnealOptions aopt = options.anneal;
                      aopt.seed = a.seed;
                      a.stats = a.placement->anneal(aopt);
                    });

  MultiSeedResult result;
  for (auto& a : attempts) {
    if (result.best == nullptr ||
        a.stats.final_cost < result.best_stats.final_cost) {
      if (result.best != nullptr) {
        result.worst_cost =
            std::max(result.worst_cost, result.best_stats.final_cost);
      }
      result.best = std::move(a.placement);
      result.best_stats = a.stats;
      result.best_seed = a.seed;
    } else {
      result.worst_cost = std::max(result.worst_cost, a.stats.final_cost);
    }
  }
  return result;
}

}  // namespace amdrel::place

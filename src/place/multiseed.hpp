#pragma once
// Multi-seed parallel placement: anneal several independently-seeded
// placements on a thread pool and keep the best (a standard way to spend
// cores for QoR; each seed is deterministic, the winner selection too).

#include <memory>

#include "place/place.hpp"

namespace amdrel::place {

struct MultiSeedOptions {
  int n_seeds = 4;
  std::uint64_t base_seed = 1;
  std::size_t n_threads = 0;  ///< 0 = hardware concurrency
  Placement::AnnealOptions anneal;
};

struct MultiSeedResult {
  std::unique_ptr<Placement> best;
  Placement::AnnealStats best_stats;
  std::uint64_t best_seed = 0;
  double worst_cost = 0.0;  ///< cost of the losing seed (spread indicator)
};

MultiSeedResult place_multi_seed(const pack::PackedNetlist& packed,
                                 const arch::ArchSpec& spec,
                                 const MultiSeedOptions& options = {});

}  // namespace amdrel::place

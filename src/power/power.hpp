#pragma once
// PowerModel — dynamic / short-circuit / leakage power estimation for the
// placed-and-routed design (after Poon–Yan–Wilton's flexible FPGA power
// model, the tool the paper's flow integrates).
//
// Switching activities come from random-vector simulation of the mapped
// netlist; capacitances from the routing usage and the 0.18 µm process
// substitute; CLB-internal energies from the transistor-level cell
// characterization (src/cells). The clock network term models the paper's
// BLE- and CLB-level clock gating, which is what Tables 2–3 motivate.

#include <string>

#include "route/pathfinder.hpp"

namespace amdrel::power {

struct PowerOptions {
  double clock_hz = 100e6;
  int sim_cycles = 256;     ///< random-vector simulation length
  std::uint64_t seed = 1;
  double input_activity = 0.5;  ///< PI toggle probability per cycle
};

struct PowerReport {
  // Averages in watts at the given clock.
  double logic_w = 0.0;      ///< LUTs + local interconnect
  double routing_w = 0.0;    ///< global wires + switches
  double clock_w = 0.0;      ///< clock network incl. gating
  double short_circuit_w = 0.0;
  double leakage_w = 0.0;
  double total_w = 0.0;

  /// Same design without clock gating (for gating-benefit reports).
  double clock_ungated_w = 0.0;

  std::string summary() const;
};

PowerReport estimate_power(const pack::PackedNetlist& packed,
                           const place::Placement& placement,
                           const route::RrGraph& graph,
                           const route::RouteResult& routing,
                           const arch::ArchSpec& spec,
                           const PowerOptions& options = {});

}  // namespace amdrel::power

#include "power/power.hpp"

#include <algorithm>
#include <map>

#include "netlist/simulate.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "process/tech018.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace amdrel::power {

using netlist::kNoSignal;
using netlist::SignalId;
using route::RrType;

namespace {

// Cell energies per output toggle [J], consistent with the transistor-level
// characterization in src/cells (0.18 µm substitute process).
constexpr double kLutEnergyPerToggle = 95e-15;
constexpr double kLocalMuxEnergyPerToggle = 18e-15;
constexpr double kFfEnergyPerClock = 120e-15;      // DETFF internal, active
constexpr double kFfClockPinCap = 3.5e-15;         // clock pin load [F]
constexpr double kBleGateEnergyPerClock = 9e-15;   // gating NAND+inv, active
constexpr double kBleGateIdleEnergy = 2e-15;       // gated off
constexpr double kClbClockWireCap = 7e-15;         // local clock network [F]
constexpr double kClbGateOverheadPerClock = 8e-15; // CLB NAND stage, active
constexpr double kLeakPerTransistor = 25e-12;      // [W] at 1.8 V
constexpr int kTransistorsPerBle = 120;            // LUT+FF+muxes estimate
constexpr int kTransistorsPerSwitch = 1;

}  // namespace

std::string PowerReport::summary() const {
  return strprintf(
      "total %.3f mW = logic %.3f + routing %.3f + clock %.3f "
      "(ungated %.3f) + short-circuit %.3f + leakage %.3f",
      total_w * 1e3, logic_w * 1e3, routing_w * 1e3, clock_w * 1e3,
      clock_ungated_w * 1e3, short_circuit_w * 1e3, leakage_w * 1e3);
}

PowerReport estimate_power(const pack::PackedNetlist& packed,
                           const place::Placement& placement,
                           const route::RrGraph& graph,
                           const route::RouteResult& routing,
                           const arch::ArchSpec& spec,
                           const PowerOptions& options) {
  const auto& net = packed.network();
  obs::Span span("power.estimate");
  const auto& tech = process::default_tech();
  const double vdd2 = tech.vdd * tech.vdd;
  const double f = options.clock_hz;

  // ---- switching activity via random-vector simulation ----
  netlist::Simulator sim(net);
  Rng rng(options.seed);
  for (int cycle = 0; cycle < options.sim_cycles; ++cycle) {
    for (SignalId s : net.inputs()) {
      // Keep current value with (1 - input_activity), else random flip.
      if (rng.next_bool(options.input_activity)) {
        sim.set_input(s, rng.next_bool());
      }
    }
    sim.propagate();
    sim.step_clock();
  }
  // Toggle rate per clock cycle for every signal.
  std::vector<double> activity(static_cast<std::size_t>(net.num_signals()),
                               0.0);
  for (SignalId s = 0; s < net.num_signals(); ++s) {
    activity[static_cast<std::size_t>(s)] =
        static_cast<double>(sim.toggle_counts()[static_cast<std::size_t>(s)]) /
        options.sim_cycles;
  }

  PowerReport report;

  // ---- logic power: LUT + local crossbar per toggling BLE output ----
  for (const auto& b : packed.bles()) {
    const double a = activity[static_cast<std::size_t>(b.output)];
    if (b.lut_gate >= 0) {
      report.logic_w += a * kLutEnergyPerToggle * f;
    }
    // Each LUT input toggling drives one 17:1 local mux path.
    for (SignalId in : b.inputs) {
      report.logic_w +=
          activity[static_cast<std::size_t>(in)] * kLocalMuxEnergyPerToggle * f;
    }
  }

  // ---- routing power: capacitance of used wires/switches × activity ----
  for (std::size_t ni = 0; ni < routing.routes.size(); ++ni) {
    const auto& route = routing.routes[ni];
    if (route.nodes.empty()) continue;
    const SignalId sig = placement.nets()[ni].signal;
    const double a = activity[static_cast<std::size_t>(sig)];
    double c_net = 0.0;
    for (int id : route.nodes) {
      const RrType t = graph.node_type(id);
      if (t == RrType::kChanX || t == RrType::kChanY) {
        c_net += spec.c_wire_tile + spec.c_switch;
      } else if (t == RrType::kIpin) {
        c_net += spec.c_switch;
      }
    }
    report.routing_w += 0.5 * c_net * vdd2 * a * f;
  }

  // ---- clock power with BLE + CLB gating ----
  // FF enable activity: a register whose D differs from Q captures; we
  // approximate the enable duty as the D-input activity (a FF whose input
  // never toggles is gated off).
  double clock_gated = 0.0, clock_ungated = 0.0;
  for (const auto& c : packed.clusters()) {
    int n_ffs = 0;
    double duty_sum = 0.0;
    for (int bi : c.bles) {
      const auto& b = packed.bles()[static_cast<std::size_t>(bi)];
      if (b.latch < 0) continue;
      ++n_ffs;
      const auto& l = net.latches()[static_cast<std::size_t>(b.latch)];
      const double duty =
          std::min(1.0, activity[static_cast<std::size_t>(l.d)]);
      duty_sum += duty;
      // Per-FF: gating stage + FF clock pin + FF internal.
      const double e_pin = kFfClockPinCap * vdd2;
      clock_gated += f * (duty * (kBleGateEnergyPerClock + e_pin +
                                  kFfEnergyPerClock) +
                          (1 - duty) * kBleGateIdleEnergy);
      clock_ungated += f * (e_pin + kFfEnergyPerClock +
                            kBleGateEnergyPerClock);
    }
    if (n_ffs > 0) {
      const double clb_duty =
          spec.gated_clock_clb ? std::min(1.0, duty_sum) : 1.0;
      const double e_wire = kClbClockWireCap * vdd2;
      clock_gated += f * clb_duty * (e_wire + kClbGateOverheadPerClock);
      clock_ungated += f * e_wire;
    }
  }
  report.clock_w = spec.gated_clock_ble ? clock_gated : clock_ungated;
  report.clock_ungated_w = clock_ungated;

  // ---- short-circuit: the standard 10% adder on switching power ----
  report.short_circuit_w =
      0.10 * (report.logic_w + report.routing_w + report.clock_w);

  // ---- leakage: transistor-count based ----
  long long transistors = 0;
  transistors += static_cast<long long>(packed.clusters().size()) * spec.n *
                 kTransistorsPerBle;
  transistors += graph.num_edges() * kTransistorsPerSwitch;
  report.leakage_w = static_cast<double>(transistors) * kLeakPerTransistor;

  report.total_w = report.logic_w + report.routing_w + report.clock_w +
                   report.short_circuit_w + report.leakage_w;
  static obs::Counter& c_steps = obs::counter("power.integration_steps");
  static obs::Counter& c_runs = obs::counter("power.estimates");
  c_steps.add(static_cast<std::uint64_t>(options.sim_cycles));
  c_runs.add(1);
  if (span.active()) {
    span.metric("integration_steps", options.sim_cycles);
    span.metric("power_mw", report.total_w * 1e3);
  }
  return report;
}

}  // namespace amdrel::power

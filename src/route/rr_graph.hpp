#pragma once
// Routing-resource graph for the island-style architecture: channel wire
// segments (length = segment_length), disjoint switch boxes (Fs=3),
// connection boxes with Fc_in/Fc_out, CLB pins and IO pads.

#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "place/place.hpp"

namespace amdrel::route {

enum class RrType { kOpin, kIpin, kSink, kChanX, kChanY };

struct RrNode {
  RrType type;
  int x = 0, y = 0;      ///< tile (tracks: the low corner of the segment)
  int track = -1;        ///< channel track index (wires only)
  int pin = -1;          ///< pin index (pins only)
  int block = -1;        ///< placement block (pins/sinks only)
  int capacity = 1;
  double base_cost = 1.0;
  std::vector<int> out_edges;  ///< adjacent node ids
};

/// Builds the RR graph for a placed design; node ids are stable.
class RrGraph {
 public:
  RrGraph(const place::Placement& placement, const arch::ArchSpec& spec,
          int channel_width);

  const std::vector<RrNode>& nodes() const { return nodes_; }
  int channel_width() const { return width_; }

  /// Source node (an OPIN) of each placement net / its sink nodes.
  int opin_of_net(int net_index) const;
  const std::vector<int>& sinks_of_net(int net_index) const;

  std::string stats() const;

 private:
  void build();
  int add_node(RrNode node);
  int chanx_id(int x, int y, int t) const;
  int chany_id(int x, int y, int t) const;

  const place::Placement* placement_;
  const arch::ArchSpec* spec_;
  int width_;
  int nx_, ny_;
  std::vector<RrNode> nodes_;
  std::vector<int> chanx_base_, chany_base_;
  std::vector<int> net_opin_;
  std::vector<std::vector<int>> net_sinks_;
};

}  // namespace amdrel::route

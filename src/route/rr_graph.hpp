#pragma once
// Routing-resource graph for the island-style architecture: channel wire
// segments (length = segment_length), disjoint switch boxes (Fs=3),
// connection boxes with Fc_in/Fc_out, CLB pins and IO pads.
//
// Two representations share one stable node-id layout:
//
//  * dedup (default): the fabric is perfectly regular, so tiles are
//    classified into a small set of patterns (corner/edge/interior wire
//    boundary classes × block kinds, keyed on Fs, Fc_in/Fc_out and the
//    channel width) and each unique pattern's edge template is built
//    once. Node attributes and adjacency are *stamped* per tile with
//    pure id arithmetic on demand — nothing per-node is materialized,
//    so a million-LUT fabric costs O(patterns + blocks) memory.
//  * dense (`RrOptions::dedup = false`): the original per-node build
//    with a heap-allocated out-edge vector per node, kept as the
//    bit-identical oracle for A/B tests.
//
// Node ids, per-node out-edge order, and every derived artifact
// (routing result, bitstream bytes) are identical between the two.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "place/place.hpp"

namespace amdrel::route {

enum class RrType { kOpin, kIpin, kSink, kChanX, kChanY };

struct RrNode {
  RrType type;
  int x = 0, y = 0;      ///< tile (tracks: the low corner of the segment)
  int track = -1;        ///< channel track index (wires only)
  int pin = -1;          ///< pin index (pins only)
  int block = -1;        ///< placement block (pins/sinks only)
  int capacity = 1;
  double base_cost = 1.0;
  std::vector<int> out_edges;  ///< adjacent node ids
};

struct RrOptions {
  /// Tile-pattern deduplicated build (see file comment). false = the
  /// dense per-node oracle build, bit-identical by construction.
  bool dedup = true;
};

/// The placement-independent half of the dedup representation: switch-box
/// wire-leg templates per boundary class and the connection-box tap
/// tables. These depend only on (cluster_inputs, N, Fc_in, Fc_out, pad
/// subs, W) — not on which design is placed where — so every RrGraph
/// built for the same architecture and channel width references one
/// immutable copy through shared(). This is the cross-job RR template
/// cache of the amdrel_serve daemon: 64 concurrent sessions on the
/// default arch stamp their fabrics from a single table set instead of
/// rebuilding it per job.
struct RrPatternTemplates {
  struct Leg {
    bool horizontal;
    std::int8_t dx, dy;
  };
  /// Wire switch-box legs per (orientation, boundary signature).
  std::vector<Leg> legs[2][16];
  /// CLB input pins p (ascending) tapping track t from side s, [s*W+t].
  std::vector<std::vector<int>> clb_taps;
  /// Sorted track list per CLB output pin / input-pad sub.
  std::vector<std::vector<int>> clb_opin_tracks;
  std::vector<std::vector<int>> pad_out_tracks;
  /// Output-pad sub taps track t, at [sub * W + t] / tap count per sub.
  std::vector<char> pad_in_has;
  std::vector<int> pad_in_count;
  /// Resident-size estimate of the tables (the template part of
  /// RrGraph::bytes_est()).
  std::int64_t bytes_est = 0;

  /// Uncached build — the reference the cache must match bit-for-bit.
  /// `max_sub` is the largest pad sub-position in use (-1 when the
  /// placement has no pads).
  static RrPatternTemplates build(const arch::ArchSpec& spec, int width,
                                  int max_sub);
  /// Returns the process-wide cached template set for this architecture
  /// and width, building it on first use. Thread-safe (mutex-guarded
  /// map); the returned object is immutable and safely shared across
  /// graphs and threads. Cache hits/misses land on the
  /// rr.tmpl_cache_hits / rr.tmpl_cache_misses registry counters.
  static std::shared_ptr<const RrPatternTemplates> shared(
      const arch::ArchSpec& spec, int width, int max_sub);
  /// Entries currently cached / drop them all (tests).
  static std::size_t cache_size();
  static void clear_cache();
};

/// Builds the RR graph for a placed design; node ids are stable.
class RrGraph {
 public:
  RrGraph(const place::Placement& placement, const arch::ArchSpec& spec,
          int channel_width, const RrOptions& options = {});

  bool dedup() const { return dedup_; }
  int channel_width() const { return width_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int num_nodes() const { return n_nodes_; }
  /// Wire node ids occupy [0, wire_count()); block pins/sinks follow.
  int wire_count() const { return wire_count_; }
  std::int64_t num_edges() const { return n_edges_; }

  // ---- O(1)-ish per-node attribute accessors (both representations) ----
  RrType node_type(int id) const;
  int node_x(int id) const;
  int node_y(int id) const;
  int node_track(int id) const;
  int node_pin(int id) const;
  int node_block(int id) const;
  int node_capacity(int id) const;
  double node_base_cost(int id) const;
  /// Materialized copy of one node's attributes. `out_edges` is always
  /// left empty — use `append_out_edges` for adjacency.
  RrNode node_info(int id) const;

  /// Appends `id`'s out-edges in the canonical (dense-build) order.
  void append_out_edges(int id, std::vector<int>* out) const;
  bool has_edge(int from, int to) const;

  /// Bulk-fills the router's flat SoA mirror (null pointers skipped).
  void fill_soa(std::vector<signed char>* type, std::vector<short>* x,
                std::vector<short>* y, std::vector<short>* cap,
                std::vector<double>* base_cost) const;

  /// Node id from structural coordinates; -1 when outside the fabric.
  /// chanx: x in 1..nx, y in 0..ny; chany: x in 0..nx, y in 1..ny.
  int find_chan(RrType type, int x, int y, int track) const;
  /// Node id of a block's pin/sink by (type, pin field) — the pin field
  /// as stored on the node (-1 for sinks, pad sub for pad pins). -1 when
  /// the block has no such node.
  int find_block_node(int block, RrType type, int pin) const;

  /// Source node (an OPIN) of each placement net / its sink nodes.
  int opin_of_net(int net_index) const;
  const std::vector<int>& sinks_of_net(int net_index) const;

  /// Dense node table — only valid when built with `dedup = false`.
  const std::vector<RrNode>& nodes() const;

  /// Unique tile patterns backing the dedup build (0 in dense mode).
  int unique_patterns() const { return unique_patterns_; }
  /// Estimated resident bytes of this graph representation.
  std::int64_t bytes_est() const { return bytes_est_; }
  std::string stats() const;

  /// Node-id space for a fabric, computed in 64-bit and checked against
  /// the 32-bit id range (throws on overflow). `block_nodes` = total
  /// pin/sink nodes across all blocks.
  static std::int64_t checked_node_count(std::int64_t nx, std::int64_t ny,
                                         std::int64_t channel_width,
                                         std::int64_t block_nodes);

 private:
  // One unique switch-box wire pattern: the same-track legs a wire of
  // one boundary class carries, as (orientation, dx, dy) deltas resolved
  // to node ids at stamp time. Signature bits (chanx): x==1, x==nx<<1,
  // y==0<<2, y==ny<<3; (chany): x==0, x==nx<<1, y==1<<2, y==ny<<3.
  using Leg = RrPatternTemplates::Leg;

  void build_common_tables();
  void build_dense();
  void build_dedup();
  void build_net_terminals();
  void count_dedup_edges();

  int chanx_id(int x, int y, int t) const {
    return (y * nx_ + (x - 1)) * width_ + t;
  }
  int chany_id(int x, int y, int t) const {
    return chanx_total_ + (x * ny_ + (y - 1)) * width_ + t;
  }
  int chan_id(bool horizontal, int x, int y, int t) const {
    return horizontal ? chanx_id(x, y, t) : chany_id(x, y, t);
  }
  /// Channel segment on `side` (0..3) of tile (x, y) — see dense build.
  int adjacent_chan(int x, int y, int side, int t) const;
  int pad_wire(const place::Loc& loc, int t) const;
  int wire_signature(bool horizontal, int x, int y) const;
  /// Decodes a wire id; returns false for block-node ids.
  bool decode_wire(int id, bool* horizontal, int* x, int* y, int* t) const;
  /// Block index owning a block-node id (binary search on block_base_).
  int block_of_id(int id) const;
  int clb_block_at(int x, int y) const;
  void append_wire_taps(bool horizontal, int x, int y, int t,
                        std::vector<int>* out) const;
  void append_out_edges_dedup(int id, std::vector<int>* out) const;
  std::vector<int> pin_tracks(int pin, int n_tracks) const;

  const place::Placement* placement_;
  const arch::ArchSpec* spec_;
  int width_;
  int nx_, ny_;
  bool dedup_ = true;
  int n_nodes_ = 0;
  int wire_count_ = 0;
  int chanx_total_ = 0;  ///< chanx wires; chany ids start here
  std::int64_t n_edges_ = 0;
  int unique_patterns_ = 0;
  std::int64_t bytes_est_ = 0;

  // Block-node id layout: node ids of block `b` are
  // [block_base_[b], block_base_[b+1]); within a CLB: sink, I ipins,
  // N opins; input pad: opin; output pad: sink, ipin.
  std::vector<int> block_base_;

  // ---- dedup pattern tables (null in dense mode) ----
  // Shared immutable template set (legs / connection-box taps); see
  // RrPatternTemplates. One copy per (arch, W) across all live graphs.
  std::shared_ptr<const RrPatternTemplates> tmpl_;
  // CLB block at core tile (x, y), -1 when empty; [x * (ny_+2) + y].
  std::vector<int> clb_at_;
  // Pad blocks per perimeter tile, CSR over sorted tile keys.
  std::vector<std::int64_t> pad_tile_key_;  ///< sorted x*(ny_+2)+y
  std::vector<int> pad_tile_off_;
  std::vector<int> pad_tile_block_;  ///< block ids, ascending per tile

  // ---- dense representation (empty in dedup mode) ----
  std::vector<RrNode> nodes_;

  std::vector<int> net_opin_;
  std::vector<std::vector<int>> net_sinks_;
};

}  // namespace amdrel::route

#include "route/route_files.hpp"

#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::route {

using place::Loc;
using place::Placement;

void write_place_file(const Placement& placement, std::ostream& out) {
  out << "Netlist file: " << placement.packed().network().name()
      << "  Architecture: " << placement.spec().name << "\n";
  out << "Array size: " << placement.nx() << " x " << placement.ny()
      << " logic blocks\n\n";
  out << "#block name\tx\ty\tsubblk\tblock number\n";
  out << "#----------\t--\t--\t------\t------------\n";
  for (std::size_t b = 0; b < placement.blocks().size(); ++b) {
    const Loc& l = placement.location(static_cast<int>(b));
    out << placement.blocks()[b].name << "\t" << l.x << "\t" << l.y << "\t"
        << l.sub << "\t#" << b << "\n";
  }
}

std::string write_place_string(const Placement& placement) {
  std::ostringstream out;
  write_place_file(placement, out);
  return out.str();
}

void read_place_file(std::istream& in, Placement* placement,
                     const std::string& filename) {
  AMDREL_CHECK(placement != nullptr);
  std::string line;
  int lineno = 0;
  int applied = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    auto tokens = split_ws(line);
    if (tokens.empty()) continue;
    // Header lines contain ':' tokens; skip them.
    if (line.find(':') != std::string::npos) continue;
    if (tokens.size() < 4) {
      throw ParseError(filename, lineno, "expected 'name x y subblk'");
    }
    int block = placement->block_by_name(tokens[0]);
    if (block < 0) {
      throw ParseError(filename, lineno, "unknown block: " + tokens[0]);
    }
    Loc loc;
    loc.x = std::stoi(tokens[1]);
    loc.y = std::stoi(tokens[2]);
    loc.sub = std::stoi(tokens[3]);
    placement->set_location(block, loc);
    ++applied;
  }
  if (applied == 0) throw ParseError(filename, lineno, "no placements found");
  placement->validate();
}

void read_place_string(const std::string& text, Placement* placement) {
  std::istringstream in(text);
  read_place_file(in, placement);
}

namespace {

const char* rr_type_name(RrType type) {
  switch (type) {
    case RrType::kOpin: return "OPIN";
    case RrType::kIpin: return "IPIN";
    case RrType::kSink: return "SINK";
    case RrType::kChanX: return "CHANX";
    case RrType::kChanY: return "CHANY";
  }
  return "?";
}

}  // namespace

void write_route_file(const RrGraph& graph, const Placement& placement,
                      const RouteResult& routing, std::ostream& out) {
  out << "Routing of " << placement.packed().network().name() << " at W="
      << graph.channel_width() << (routing.success ? "" : " (FAILED)")
      << "\n\n";
  const auto& net_list = placement.nets();
  for (std::size_t ni = 0; ni < routing.routes.size(); ++ni) {
    const auto& route = routing.routes[ni];
    out << "Net " << ni << " ("
        << placement.packed().network().signal_name(net_list[ni].signal)
        << ")\n";
    if (route.nodes.empty()) {
      out << "  (global or unrouted)\n\n";
      continue;
    }
    for (std::size_t k = 0; k < route.nodes.size(); ++k) {
      const RrNode n = graph.node_info(route.nodes[k]);
      out << "  " << (route.parent[k] < 0 ? "root " : "     ")
          << rr_type_name(n.type) << " (" << n.x << "," << n.y << ")";
      if (n.track >= 0) out << " track " << n.track;
      if (n.pin >= 0) out << " pin " << n.pin;
      if (route.parent[k] >= 0) out << "  from node " << route.parent[k];
      out << "\n";
    }
    out << "\n";
  }
}

std::string write_route_string(const RrGraph& graph,
                               const Placement& placement,
                               const RouteResult& routing) {
  std::ostringstream out;
  write_route_file(graph, placement, routing, out);
  return out.str();
}

}  // namespace amdrel::route

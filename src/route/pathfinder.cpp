#include "route/pathfinder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace amdrel::route {

namespace {

struct HeapEntry {
  double cost;        // path cost + A* estimate
  double path_cost;   // actual accumulated cost
  int node;
  int from;           // predecessor node id (-1 for tree nodes)
  bool operator>(const HeapEntry& o) const { return cost > o.cost; }
};

/// Manhattan-distance lower bound from node to the target sink tile,
/// scaled by the cheapest positive node cost in the graph: every hop on a
/// path costs at least `min_step_cost`, so this never overestimates and
/// A* (at astar_fac <= 1) stays admissible even though IPINs are cheaper
/// than wire nodes.
double expected_cost(const RrNode& n, const RrNode& sink,
                     double min_step_cost) {
  return min_step_cost *
         (std::abs(n.x - sink.x) + std::abs(n.y - sink.y));
}

}  // namespace

RouteResult route_all(const RrGraph& graph, const place::Placement& placement,
                      const RouteOptions& options) {
  const auto& nodes = graph.nodes();
  const int n_nodes = static_cast<int>(nodes.size());
  const int n_nets = static_cast<int>(placement.nets().size());

  RouteResult result;
  result.routes.assign(static_cast<std::size_t>(n_nets), NetRoute{});

  std::vector<int> occupancy(static_cast<std::size_t>(n_nodes), 0);
  std::vector<double> history(static_cast<std::size_t>(n_nodes), 0.0);
  // Per-net set of used nodes (for rip-up).
  std::vector<std::vector<int>> net_nodes(static_cast<std::size_t>(n_nets));

  double pres_fac = options.first_iter_pres_fac;

  auto node_cost = [&](int id, double pres) {
    const RrNode& n = nodes[static_cast<std::size_t>(id)];
    double cost = n.base_cost + history[static_cast<std::size_t>(id)];
    const int over = occupancy[static_cast<std::size_t>(id)] + 1 - n.capacity;
    if (over > 0) cost *= (1.0 + over * pres);
    return cost;
  };

  // Cheapest positive per-node cost, for the admissible A* lower bound
  // (sinks are free, so only positive costs bound a hop from below).
  double min_step_cost = 1.0;
  for (const RrNode& n : nodes) {
    if (n.base_cost > 0.0) min_step_cost = std::min(min_step_cost, n.base_cost);
  }

  // Scratch buffers for Dijkstra.
  std::vector<double> best_cost(static_cast<std::size_t>(n_nodes), 0.0);
  std::vector<int> visit_mark(static_cast<std::size_t>(n_nodes), -1);
  std::vector<int> pred(static_cast<std::size_t>(n_nodes), -1);
  int visit_token = 0;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    bool any_overuse = false;

    for (int ni = 0; ni < n_nets; ++ni) {
      const auto& sinks = graph.sinks_of_net(ni);
      if (sinks.empty()) continue;
      const int source = graph.opin_of_net(ni);

      // Rip up this net.
      for (int id : net_nodes[static_cast<std::size_t>(ni)]) {
        --occupancy[static_cast<std::size_t>(id)];
      }
      net_nodes[static_cast<std::size_t>(ni)].clear();

      // Route tree: start with the source.
      std::vector<int> tree_nodes{source};
      std::map<int, int> tree_parent;  // node id → parent node id (-1 root)
      tree_parent[source] = -1;

      std::set<int> remaining(sinks.begin(), sinks.end());
      bool net_ok = true;
      while (!remaining.empty()) {
        // Dijkstra from the whole tree to the nearest remaining sink.
        ++visit_token;
        std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                            std::greater<HeapEntry>>
            heap;
        // A* target: the remaining sink nearest the current route tree —
        // the sink this wavefront is most likely to reach first, which
        // keeps the estimate tight instead of steering toward an
        // arbitrary (possibly far) sink.
        int target_for_astar = *remaining.begin();
        int best_d = std::numeric_limits<int>::max();
        for (int s : remaining) {
          const RrNode& sn = nodes[static_cast<std::size_t>(s)];
          for (int id : tree_nodes) {
            const RrNode& tn = nodes[static_cast<std::size_t>(id)];
            const int d = std::abs(tn.x - sn.x) + std::abs(tn.y - sn.y);
            if (d < best_d) {
              best_d = d;
              target_for_astar = s;
            }
          }
        }
        const RrNode& tgt = nodes[static_cast<std::size_t>(target_for_astar)];

        for (int id : tree_nodes) {
          const double est =
              options.astar_fac *
              expected_cost(nodes[static_cast<std::size_t>(id)], tgt,
                            min_step_cost);
          heap.push(HeapEntry{est, 0.0, id, -1});
        }

        int found_sink = -1;
        while (!heap.empty()) {
          HeapEntry e = heap.top();
          heap.pop();
          if (visit_mark[static_cast<std::size_t>(e.node)] == visit_token &&
              best_cost[static_cast<std::size_t>(e.node)] <= e.path_cost) {
            continue;
          }
          visit_mark[static_cast<std::size_t>(e.node)] = visit_token;
          best_cost[static_cast<std::size_t>(e.node)] = e.path_cost;
          pred[static_cast<std::size_t>(e.node)] = e.from;

          const RrNode& n = nodes[static_cast<std::size_t>(e.node)];
          if (n.type == RrType::kSink) {
            if (remaining.count(e.node)) {
              found_sink = e.node;
              break;
            }
            continue;  // someone else's sink: don't expand through it
          }
          for (int next : n.out_edges) {
            if (visit_mark[static_cast<std::size_t>(next)] == visit_token &&
                best_cost[static_cast<std::size_t>(next)] <= e.path_cost) {
              continue;
            }
            // Never route through another block's IPIN chain: an IPIN only
            // leads to its sink, so expanding it is harmless but wasteful;
            // skip IPINs whose sink is not wanted.
            const RrNode& nn = nodes[static_cast<std::size_t>(next)];
            if (nn.type == RrType::kIpin) {
              bool wanted = false;
              for (int oe : nn.out_edges) {
                if (remaining.count(oe)) {
                  wanted = true;
                  break;
                }
              }
              if (!wanted) continue;
            }
            const double c = e.path_cost + node_cost(next, pres_fac);
            const double est =
                c + options.astar_fac * expected_cost(nn, tgt, min_step_cost);
            heap.push(HeapEntry{est, c, next, e.node});
          }
        }
        if (found_sink < 0) {
          net_ok = false;
          break;
        }
        // Trace back; add path to tree.
        remaining.erase(found_sink);
        int cur = found_sink;
        std::vector<int> path;
        while (cur != -1 && tree_parent.find(cur) == tree_parent.end()) {
          path.push_back(cur);
          cur = pred[static_cast<std::size_t>(cur)];
        }
        AMDREL_CHECK_MSG(cur != -1, "trace-back lost the route tree");
        int attach = cur;
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
          tree_parent[*it] = attach;
          tree_nodes.push_back(*it);
          attach = *it;
        }
      }

      if (!net_ok) {
        // Leave the net unrouted this iteration; it stays overused next
        // round. Record nothing.
        result.routes[static_cast<std::size_t>(ni)] = NetRoute{};
        // Routing failed even with congestion pricing: fatal only if the
        // graph simply has no path (first iteration, no congestion).
        if (iter == 1) {
          result.success = false;
          result.message =
              strprintf("net %d has no path in the RR graph", ni);
          return result;
        }
        any_overuse = true;
        continue;
      }

      // Commit occupancy.
      NetRoute route;
      std::map<int, int> index_of;
      for (int id : tree_nodes) {
        index_of[id] = static_cast<int>(route.nodes.size());
        route.nodes.push_back(id);
        ++occupancy[static_cast<std::size_t>(id)];
      }
      route.parent.assign(route.nodes.size(), -1);
      for (std::size_t k = 0; k < route.nodes.size(); ++k) {
        int p = tree_parent[route.nodes[k]];
        route.parent[k] = (p < 0) ? -1 : index_of[p];
      }
      net_nodes[static_cast<std::size_t>(ni)] = route.nodes;
      result.routes[static_cast<std::size_t>(ni)] = std::move(route);
    }

    // Check for overuse; update history.
    int overused = 0;
    for (int id = 0; id < n_nodes; ++id) {
      const int over = occupancy[static_cast<std::size_t>(id)] -
                       nodes[static_cast<std::size_t>(id)].capacity;
      if (over > 0) {
        ++overused;
        history[static_cast<std::size_t>(id)] += options.acc_fac * over;
      }
    }
    if (!options.quiet) {
      log_info() << "pathfinder iter " << iter << ": " << overused
                 << " overused nodes";
    }
    if (overused == 0 && !any_overuse) {
      result.success = true;
      result.iterations = iter;
      for (const auto& r : result.routes) {
        for (int id : r.nodes) {
          const auto t = nodes[static_cast<std::size_t>(id)].type;
          if (t == RrType::kChanX || t == RrType::kChanY) {
            ++result.total_wire_nodes;
          }
        }
      }
      return result;
    }
    pres_fac *= options.pres_fac_mult;
  }
  result.success = false;
  result.iterations = options.max_iterations;
  result.message = "congestion did not resolve";
  return result;
}

int minimum_channel_width(const place::Placement& placement,
                          const arch::ArchSpec& spec, RouteResult* result,
                          const RouteOptions& options, int w_min, int w_max) {
  // Find an upper bound that routes.
  int lo = w_min, hi = w_max;
  RouteResult best;
  int best_w = -1;
  {
    int w = std::max(w_min, spec.channel_width);
    for (;; w *= 2) {
      if (w > w_max) break;
      RrGraph graph(placement, spec, w);
      RouteResult r = route_all(graph, placement, options);
      if (r.success) {
        best = std::move(r);
        best_w = w;
        hi = w;
        break;
      }
      lo = w + 1;
    }
  }
  if (best_w < 0) {
    // Nothing routed up to w_max.
    if (result != nullptr) *result = RouteResult{};
    return -1;
  }
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    RrGraph graph(placement, spec, mid);
    RouteResult r = route_all(graph, placement, options);
    if (r.success) {
      best = std::move(r);
      best_w = mid;
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (result != nullptr) *result = std::move(best);
  return best_w;
}

void verify_routing(const RrGraph& graph, const place::Placement& placement,
                    const RouteResult& result) {
  AMDREL_CHECK_MSG(result.success, "verify_routing on a failed result");
  const auto& nodes = graph.nodes();
  std::vector<int> occupancy(nodes.size(), 0);
  for (std::size_t ni = 0; ni < result.routes.size(); ++ni) {
    const NetRoute& r = result.routes[ni];
    const auto& sinks = graph.sinks_of_net(static_cast<int>(ni));
    if (sinks.empty()) continue;
    AMDREL_CHECK_MSG(!r.nodes.empty(), "net has no route");
    // Tree structure: parent[0] == -1; all others valid.
    AMDREL_CHECK(r.parent.size() == r.nodes.size());
    AMDREL_CHECK_MSG(r.parent[0] == -1, "route tree root has a parent");
    AMDREL_CHECK_MSG(r.nodes[0] == graph.opin_of_net(static_cast<int>(ni)),
                     "route tree does not start at the net's OPIN");
    std::set<int> in_tree(r.nodes.begin(), r.nodes.end());
    for (std::size_t k = 1; k < r.nodes.size(); ++k) {
      const int p = r.parent[k];
      AMDREL_CHECK_MSG(p >= 0 && p < static_cast<int>(k + 1), "bad parent");
      // Parent must actually be adjacent in the RR graph.
      const auto& pn = nodes[static_cast<std::size_t>(r.nodes[static_cast<std::size_t>(p)])];
      bool adjacent =
          std::find(pn.out_edges.begin(), pn.out_edges.end(), r.nodes[k]) !=
          pn.out_edges.end();
      AMDREL_CHECK_MSG(adjacent, "route uses a non-existent RR edge");
    }
    for (int s : sinks) {
      AMDREL_CHECK_MSG(in_tree.count(s), "route misses a sink");
    }
    for (int id : r.nodes) ++occupancy[static_cast<std::size_t>(id)];
  }
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    AMDREL_CHECK_MSG(occupancy[id] <= nodes[id].capacity,
                     "RR node over capacity after routing");
  }
  (void)placement;
}

}  // namespace amdrel::route

#include "route/pathfinder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace amdrel::route {

namespace {

struct HeapEntry {
  double cost;        // path cost + A* estimate
  int node;
};

/// Min-heap order for std::push_heap/std::pop_heap.
bool heap_later(const HeapEntry& a, const HeapEntry& b) {
  return a.cost > b.cost;
}

/// Per-tile mean wire history, used to warm-start a probe at one channel
/// width from the congestion map of another (track counts differ between
/// widths, so history transfers per (type, x, y) tile, not per node).
struct SpatialHistory {
  int ny_stride = 0;                    ///< y-extent of the location grid
  std::vector<double> chanx, chany;     ///< mean history per (x, y)
  bool empty() const { return chanx.empty() && chany.empty(); }
  std::size_t cell(int x, int y) const {
    return static_cast<std::size_t>(x * ny_stride + y);
  }
};

SpatialHistory extract_spatial_history(const RrGraph& graph,
                                       const std::vector<double>& history) {
  SpatialHistory s;
  // Only wires carry history, and wire coordinates span (0..nx, 0..ny).
  const int max_x = graph.nx(), max_y = graph.ny();
  s.ny_stride = max_y + 1;
  const std::size_t cells = static_cast<std::size_t>((max_x + 1) * (max_y + 1));
  s.chanx.assign(cells, 0.0);
  s.chany.assign(cells, 0.0);
  std::vector<int> cnt_x(cells, 0), cnt_y(cells, 0);
  const int wires = graph.wire_count();
  for (int id = 0; id < wires; ++id) {
    const std::size_t c = s.cell(graph.node_x(id), graph.node_y(id));
    if (graph.node_type(id) == RrType::kChanX) {
      s.chanx[c] += history[static_cast<std::size_t>(id)];
      ++cnt_x[c];
    } else {
      s.chany[c] += history[static_cast<std::size_t>(id)];
      ++cnt_y[c];
    }
  }
  for (std::size_t c = 0; c < cells; ++c) {
    if (cnt_x[c] > 0) s.chanx[c] /= cnt_x[c];
    if (cnt_y[c] > 0) s.chany[c] /= cnt_y[c];
  }
  return s;
}

std::vector<double> history_from_spatial(const SpatialHistory& s,
                                         const RrGraph& graph, double scale) {
  std::vector<double> history(static_cast<std::size_t>(graph.num_nodes()),
                              0.0);
  if (s.empty() || scale <= 0.0) return history;
  const std::size_t cells = s.chanx.size();
  const int wires = graph.wire_count();
  for (int id = 0; id < wires; ++id) {
    const int y = graph.node_y(id);
    if (y >= s.ny_stride) continue;
    const std::size_t c = s.cell(graph.node_x(id), y);
    if (c >= cells) continue;
    history[static_cast<std::size_t>(id)] =
        scale * (graph.node_type(id) == RrType::kChanX ? s.chanx[c]
                                                       : s.chany[c]);
  }
  return history;
}

/// One PathFinder run over a fixed RR graph. All per-node state lives in
/// flat vectors keyed by RR node id; the per-net tree/sink sets of the
/// original implementation are epoch-marked slices of those vectors, so
/// the iteration loop allocates nothing after construction.
class PathFinder {
 public:
  PathFinder(const RrGraph& graph, const place::Placement& placement,
             const RouteOptions& options)
      : graph_(&graph),
        options_(&options),
        n_nodes_(graph.num_nodes()),
        n_nets_(static_cast<int>(placement.nets().size())) {
    const std::size_t nn = static_cast<std::size_t>(n_nodes_);
    occupancy_.assign(nn, 0);
    history_.assign(nn, 0.0);
    net_nodes_.assign(static_cast<std::size_t>(n_nets_), {});
    best_cost_.assign(nn, 0.0);
    visit_mark_.assign(nn, 0);
    done_mark_.assign(nn, 0);
    pred_.assign(nn, -1);
    tree_mark_.assign(nn, 0);
    tree_parent_.assign(nn, -1);
    tree_index_.assign(nn, -1);
    sink_mark_.assign(nn, 0);
    reroute_.assign(static_cast<std::size_t>(n_nets_), 1);

    // Flat SoA mirror of the RR graph. The wavefront touches the type,
    // coordinates, capacity, cost and edges of thousands of nodes per
    // sink; packed parallel arrays keep that loop in cache. The CSR edge
    // list is materialized lazily per fixed-size id region on first
    // touch, so fabric the wavefronts never reach costs ~0 bytes.
    graph.fill_soa(&type_, &x_, &y_, &cap_, &base_hist_);
    regions_.assign((nn + kRegionSize - 1) >> kRegionShift, Region{});

    min_step_cost_ = 1.0;
    for (std::size_t i = 0; i < nn; ++i) {
      if (base_hist_[i] > 0.0) {
        min_step_cost_ = std::min(min_step_cost_, base_hist_[i]);
      }
    }
    astar_mult_ = options.astar_fac * min_step_cost_;
  }

  /// ECO warm start: pre-commits `seeds[ni]` (tree + occupancy) for every
  /// net whose `dirty` flag is clear, and exempts those nets from the
  /// first routing pass. Must be called before run().
  void seed(const std::vector<NetRoute>& seeds,
            const std::vector<char>& dirty) {
    AMDREL_CHECK(static_cast<int>(seeds.size()) == n_nets_);
    AMDREL_CHECK(static_cast<int>(dirty.size()) == n_nets_);
    seeds_ = &seeds;
    for (int ni = 0; ni < n_nets_; ++ni) {
      const std::size_t i = static_cast<std::size_t>(ni);
      if (dirty[i] || seeds[i].nodes.empty()) continue;
      net_nodes_[i] = seeds[i].nodes;
      for (int id : seeds[i].nodes) ++occupancy_[static_cast<std::size_t>(id)];
      reroute_[i] = 0;
    }
  }

  RouteResult run(const std::vector<double>* initial_history) {
    obs::Span span("route.pathfinder");
    RouteResult result = run_impl(initial_history);
    result.nets_rerouted = rerouted_nets_;
    if (span.active()) {
      span.metric("iterations", result.iterations);
      span.metric("ripups", static_cast<double>(ripups_));
      span.metric("overused", last_overused_);
      span.metric("wire_nodes", result.total_wire_nodes);
      span.metric("success", result.success ? 1.0 : 0.0);
    }
    static obs::Counter& c_iters = obs::counter("route.iterations");
    static obs::Counter& c_ripups = obs::counter("route.ripups");
    c_iters.add(static_cast<std::uint64_t>(result.iterations));
    c_ripups.add(static_cast<std::uint64_t>(ripups_));
    return result;
  }

  const std::vector<double>& history() const { return history_; }

 private:
  RouteResult run_impl(const std::vector<double>* initial_history) {
    if (initial_history != nullptr) {
      AMDREL_CHECK(initial_history->size() == history_.size());
      history_ = *initial_history;
      // base_hist_ still holds the pristine base costs here (the ctor
      // filled it and nothing ran yet), so add the history on top.
      for (int id = 0; id < n_nodes_; ++id) {
        base_hist_[static_cast<std::size_t>(id)] +=
            history_[static_cast<std::size_t>(id)];
      }
    }
    RouteResult result;
    result.routes.assign(static_cast<std::size_t>(n_nets_), NetRoute{});
    net_touched_.assign(static_cast<std::size_t>(n_nets_), 0);
    if (seeds_ != nullptr) {
      for (int ni = 0; ni < n_nets_; ++ni) {
        const std::size_t i = static_cast<std::size_t>(ni);
        if (!reroute_[i] && !net_nodes_[i].empty()) {
          result.routes[i] = (*seeds_)[i];
        }
      }
    }

    double pres_fac = options_->first_iter_pres_fac;
    int best_overused = std::numeric_limits<int>::max();
    int best_overused_iter = 0;
    over_hist_.clear();
    for (int iter = 1; iter <= options_->max_iterations; ++iter) {
      if (options_->cancel != nullptr &&
          options_->cancel->load(std::memory_order_relaxed)) {
        result.success = false;
        result.iterations = iter - 1;
        result.message = "cancelled";
        return result;
      }
      bool any_unrouted = false;
      for (int ni = 0; ni < n_nets_; ++ni) {
        if (graph_->sinks_of_net(ni).empty()) continue;
        if (!reroute_[static_cast<std::size_t>(ni)]) continue;
        if (!net_touched_[static_cast<std::size_t>(ni)]) {
          net_touched_[static_cast<std::size_t>(ni)] = 1;
          ++rerouted_nets_;
        }
        rip_up(ni);
        if (route_net(ni, pres_fac)) {
          commit(ni, &result.routes[static_cast<std::size_t>(ni)]);
        } else {
          result.routes[static_cast<std::size_t>(ni)] = NetRoute{};
          // spare_only blocks full nodes, so "no path" means "no spare
          // capacity here", not "the graph cannot connect this net" —
          // leave the net unrouted and let the caller negotiate for it.
          if (iter == 1 && !options_->spare_only) {
            // No path even with congestion only priced, not blocked: the
            // graph simply cannot connect this net.
            result.success = false;
            result.message =
                strprintf("net %d has no path in the RR graph", ni);
            return result;
          }
          any_unrouted = true;
        }
      }

      // Check for overuse; update history (and the cached base+history
      // cost the wavefront prices nodes with).
      int overused = 0;
      for (int id = 0; id < n_nodes_; ++id) {
        const std::size_t i = static_cast<std::size_t>(id);
        const int over = occupancy_[i] - cap_[i];
        if (over > 0) {
          ++overused;
          history_[i] += options_->acc_fac * over;
          base_hist_[i] += options_->acc_fac * over;
        }
      }
      last_overused_ = overused;
      if (!options_->quiet) {
        log_info() << "pathfinder iter " << iter << ": " << overused
                   << " overused nodes";
      }
      if (obs::enabled()) {
        obs::point("route.iteration",
                   {{"iter", static_cast<double>(iter)},
                    {"overused", static_cast<double>(overused)}});
      }
      if (overused == 0 && !any_unrouted) {
        result.success = true;
        result.iterations = iter;
        constexpr signed char kCx = static_cast<signed char>(RrType::kChanX);
        constexpr signed char kCy = static_cast<signed char>(RrType::kChanY);
        for (const auto& r : result.routes) {
          for (int id : r.nodes) {
            const signed char t = type_[static_cast<std::size_t>(id)];
            if (t == kCx || t == kCy) {
              ++result.total_wire_nodes;
            }
          }
        }
        return result;
      }
      // Stagnation / projection abort: congestion that stops shrinking —
      // or shrinks too slowly to reach zero within the iteration budget —
      // will not resolve; give the caller the early "no".
      if (overused < best_overused) {
        best_overused = overused;
        best_overused_iter = iter;
      }
      if (options_->incremental && options_->stall_window > 0) {
        over_hist_.push_back(overused);
        const int lb = options_->stall_window;
        bool hopeless = iter - best_overused_iter >= lb;
        if (!hopeless && iter > lb) {
          const double slope =
              static_cast<double>(
                  over_hist_[static_cast<std::size_t>(iter - 1 - lb)] -
                  overused) /
              lb;
          // 15% slack: a late-phase speed-up (pres_fac growth) can beat a
          // linear projection; a wrongly aborted feasible width costs the
          // caller one extra oracle probe, never the result.
          hopeless = slope > 0.0 && iter + overused / slope >
                                        1.15 * options_->max_iterations;
        }
        if (hopeless) {
          result.success = false;
          result.iterations = iter;
          result.message = "congestion stalled";
          return result;
        }
      }
      pres_fac *= options_->pres_fac_mult;
      mark_nets_to_reroute(iter + 1);
    }
    result.success = false;
    result.iterations = options_->max_iterations;
    result.message = "congestion did not resolve";
    return result;
  }

  double node_cost(int id, double pres) const {
    const std::size_t i = static_cast<std::size_t>(id);
    double cost = base_hist_[i];
    const int over = occupancy_[i] + 1 - cap_[i];
    if (over > 0) cost *= (1.0 + over * pres);
    return cost;
  }

  void rip_up(int ni) {
    if (!net_nodes_[static_cast<std::size_t>(ni)].empty()) ++ripups_;
    for (int id : net_nodes_[static_cast<std::size_t>(ni)]) {
      --occupancy_[static_cast<std::size_t>(id)];
    }
    net_nodes_[static_cast<std::size_t>(ni)].clear();
  }

  void commit(int ni, NetRoute* route) {
    route->nodes = tree_nodes_;
    route->parent.assign(tree_nodes_.size(), -1);
    for (std::size_t k = 0; k < tree_nodes_.size(); ++k) {
      const int p = tree_parent_[static_cast<std::size_t>(tree_nodes_[k])];
      route->parent[k] = (p < 0) ? -1 : tree_index_[static_cast<std::size_t>(p)];
    }
    for (int id : tree_nodes_) ++occupancy_[static_cast<std::size_t>(id)];
    net_nodes_[static_cast<std::size_t>(ni)] = route->nodes;
  }

  /// Congestion-driven selection: only nets whose committed tree touches
  /// an overused node (or that are still unrouted) go around again.
  /// Every `refresh_interval` iterations everything reroutes: legal nets
  /// sitting on a congested net's only escape path never show up as
  /// overused themselves, so a periodic full re-negotiation is what keeps
  /// the incremental router's achievable channel width at the oracle's.
  void mark_nets_to_reroute(int next_iter) {
    if (!options_->incremental ||
        next_iter % options_->refresh_interval == 0) {
      std::fill(reroute_.begin(), reroute_.end(), 1);
      return;
    }
    for (int ni = 0; ni < n_nets_; ++ni) {
      const auto& tree = net_nodes_[static_cast<std::size_t>(ni)];
      if (graph_->sinks_of_net(ni).empty()) {
        reroute_[static_cast<std::size_t>(ni)] = 0;
        continue;
      }
      char again = tree.empty() ? 1 : 0;
      for (std::size_t k = 0; !again && k < tree.size(); ++k) {
        const std::size_t id = static_cast<std::size_t>(tree[k]);
        if (occupancy_[id] > cap_[id]) again = 1;
      }
      reroute_[static_cast<std::size_t>(ni)] = again;
    }
  }

  void add_tree_node(int id, int parent) {
    tree_mark_[static_cast<std::size_t>(id)] = net_token_;
    tree_parent_[static_cast<std::size_t>(id)] = parent;
    tree_index_[static_cast<std::size_t>(id)] =
        static_cast<int>(tree_nodes_.size());
    tree_nodes_.push_back(id);
    // Maintain the per-sink nearest-tree-node distance incrementally (the
    // original rescanned tree × sinks before every wavefront).
    const int tx = x_[static_cast<std::size_t>(id)];
    const int ty = y_[static_cast<std::size_t>(id)];
    for (std::size_t k = 0; k < sink_x_.size(); ++k) {
      if (sink_done_[k]) continue;
      const int d = std::abs(tx - sink_x_[k]) + std::abs(ty - sink_y_[k]);
      if (d < sink_dist_[k]) sink_dist_[k] = d;
    }
  }

  bool route_net(int ni, double pres_fac) {
    const auto& sinks = graph_->sinks_of_net(ni);
    const int source = graph_->opin_of_net(ni);

    ++net_token_;
    const std::size_t n_sinks = sinks.size();
    sink_x_.assign(n_sinks, 0);
    sink_y_.assign(n_sinks, 0);
    sink_dist_.assign(n_sinks, std::numeric_limits<int>::max());
    sink_done_.assign(n_sinks, 0);
    for (std::size_t k = 0; k < n_sinks; ++k) {
      const std::size_t s = static_cast<std::size_t>(sinks[k]);
      sink_x_[k] = x_[s];
      sink_y_[k] = y_[s];
      sink_mark_[s] = net_token_;
    }
    tree_nodes_.clear();
    add_tree_node(source, -1);

    constexpr signed char kSinkT = static_cast<signed char>(RrType::kSink);
    constexpr signed char kIpinT = static_cast<signed char>(RrType::kIpin);

    std::size_t routed = 0;
    while (routed < n_sinks) {
      // A* target: the remaining sink nearest the current route tree —
      // the sink this wavefront is most likely to reach first, which
      // keeps the estimate tight instead of steering toward an
      // arbitrary (possibly far) sink.
      std::size_t target_k = 0;
      int best_d = std::numeric_limits<int>::max();
      for (std::size_t k = 0; k < n_sinks; ++k) {
        if (!sink_done_[k] && sink_dist_[k] < best_d) {
          best_d = sink_dist_[k];
          target_k = k;
        }
      }
      const int tx = sink_x_[target_k];
      const int ty = sink_y_[target_k];

      // Wavefront with push-time relaxation: tentative cost and
      // predecessor are recorded when a node is pushed, so a node enters
      // the heap only when the new path improves on its best known cost,
      // and heap entries carry just the sort key. A node finalizes at
      // its first pop; a later cheaper arrival (possible because the
      // directed estimate overweights distance at astar_fac > 1) clears
      // the finalized flag so the node expands again.
      ++visit_token_;
      heap_.clear();
      for (int id : tree_nodes_) {
        const std::size_t i = static_cast<std::size_t>(id);
        visit_mark_[i] = visit_token_;
        done_mark_[i] = 0;
        best_cost_[i] = 0.0;
        pred_[i] = -1;
        heap_.push_back(HeapEntry{
            astar_mult_ * (std::abs(x_[i] - tx) + std::abs(y_[i] - ty)),
            id});
      }
      std::make_heap(heap_.begin(), heap_.end(), heap_later);

      int found_sink = -1;
      while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_later);
        const int u = heap_.back().node;
        heap_.pop_back();
        const std::size_t ui = static_cast<std::size_t>(u);
        if (done_mark_[ui] == visit_token_) continue;
        done_mark_[ui] = visit_token_;

        if (type_[ui] == kSinkT) {
          if (sink_mark_[ui] == net_token_) {
            found_sink = u;
            break;
          }
          continue;  // someone else's sink: don't expand through it
        }
        const double pc = best_cost_[ui];
        const Region& ru = region(u >> kRegionShift);
        const int lu = u & (kRegionSize - 1);
        const int e_end = ru.off[static_cast<std::size_t>(lu + 1)];
        for (int e = ru.off[static_cast<std::size_t>(lu)]; e < e_end; ++e) {
          const int next = ru.dst[static_cast<std::size_t>(e)];
          const std::size_t vi = static_cast<std::size_t>(next);
          // Never route through another block's IPIN chain: an IPIN only
          // leads to its sink, so expanding it is harmless but wasteful;
          // skip IPINs whose sink is not wanted.
          if (type_[vi] == kIpinT) {
            const Region& rv = region(next >> kRegionShift);
            const int lv = next & (kRegionSize - 1);
            bool wanted = false;
            for (int oe = rv.off[static_cast<std::size_t>(lv)];
                 oe < rv.off[static_cast<std::size_t>(lv + 1)]; ++oe) {
              if (sink_mark_[static_cast<std::size_t>(
                      rv.dst[static_cast<std::size_t>(oe)])] == net_token_) {
                wanted = true;
                break;
              }
            }
            if (!wanted) continue;
          }
          if (options_->spare_only && occupancy_[vi] >= cap_[vi]) {
            continue;  // full node is an obstacle, not a price
          }
          const double c = pc + node_cost(next, pres_fac);
          if (visit_mark_[vi] == visit_token_ && best_cost_[vi] <= c) {
            continue;
          }
          visit_mark_[vi] = visit_token_;
          done_mark_[vi] = 0;
          best_cost_[vi] = c;
          pred_[vi] = u;
          heap_.push_back(HeapEntry{
              c + astar_mult_ * (std::abs(x_[vi] - tx) + std::abs(y_[vi] - ty)),
              next});
          std::push_heap(heap_.begin(), heap_.end(), heap_later);
        }
      }
      if (found_sink < 0) return false;

      // Trace back; add path to tree.
      sink_mark_[static_cast<std::size_t>(found_sink)] = 0;
      for (std::size_t k = 0; k < n_sinks; ++k) {
        if (!sink_done_[k] && sinks[k] == found_sink) {
          sink_done_[k] = 1;
          ++routed;
        }
      }
      path_.clear();
      int cur = found_sink;
      while (cur != -1 &&
             tree_mark_[static_cast<std::size_t>(cur)] != net_token_) {
        path_.push_back(cur);
        cur = pred_[static_cast<std::size_t>(cur)];
      }
      AMDREL_CHECK_MSG(cur != -1, "trace-back lost the route tree");
      int attach = cur;
      for (auto it = path_.rbegin(); it != path_.rend(); ++it) {
        add_tree_node(*it, attach);
        attach = *it;
      }
    }
    return true;
  }

  const RrGraph* graph_;
  const RouteOptions* options_;
  int n_nodes_ = 0;
  int n_nets_ = 0;
  const std::vector<NetRoute>* seeds_ = nullptr;  ///< ECO warm-start trees
  std::vector<char> net_touched_;  ///< seeded runs: net was ever rerouted
  int rerouted_nets_ = 0;   ///< distinct nets the wavefront routed
  long long ripups_ = 0;    ///< committed trees torn up (obs)
  int last_overused_ = 0;   ///< overused count of the last iteration (obs)
  double min_step_cost_ = 1.0;
  double astar_mult_ = 1.0;   ///< astar_fac × min_step_cost (A* estimate)

  // One lazily-materialized CSR block of the RR edge list: kRegionSize
  // consecutive node ids, built from the graph's pattern stamps on the
  // first wavefront touch. Regions the routing never reaches stay empty.
  struct Region {
    std::vector<int> off;  ///< local CSR offsets (size + 1 when built)
    std::vector<int> dst;  ///< edge targets (global node ids)
  };
  static constexpr int kRegionShift = 12;
  static constexpr int kRegionSize = 1 << kRegionShift;

  const Region& region(int r) {
    Region& reg = regions_[static_cast<std::size_t>(r)];
    if (reg.off.empty()) {
      const int lo = r << kRegionShift;
      const int hi = std::min(n_nodes_, lo + kRegionSize);
      reg.off.reserve(static_cast<std::size_t>(hi - lo) + 1);
      reg.off.push_back(0);
      for (int id = lo; id < hi; ++id) {
        graph_->append_out_edges(id, &reg.dst);
        reg.off.push_back(static_cast<int>(reg.dst.size()));
      }
      static obs::Counter& c_edges = obs::counter("rr.edges_materialized");
      c_edges.add(reg.dst.size());
    }
    return reg;
  }

  // Flat SoA mirror of the RR graph (see constructor).
  std::vector<signed char> type_;
  std::vector<short> x_, y_;
  std::vector<short> cap_;
  std::vector<double> base_hist_;  ///< base_cost + history, kept in sync
  std::vector<Region> regions_;    ///< lazy CSR edge blocks

  // Persistent per-node routing state.
  std::vector<int> occupancy_;
  std::vector<double> history_;
  std::vector<std::vector<int>> net_nodes_;  ///< committed tree per net
  std::vector<char> reroute_;                ///< nets to rip up this iteration

  // Wavefront scratch, epoch-marked by visit_token_.
  std::vector<double> best_cost_;  ///< best known path cost (set on push)
  std::vector<int> visit_mark_;    ///< node has a tentative cost this front
  std::vector<int> done_mark_;     ///< node was expanded this wavefront
  std::vector<int> pred_;
  int visit_token_ = 0;

  // Per-net tree scratch, epoch-marked by net_token_ (replaces the
  // per-net std::map tree_parent / std::set remaining / std::map index_of).
  std::vector<int> tree_mark_;
  std::vector<int> tree_parent_;  ///< parent node id (valid when marked)
  std::vector<int> tree_index_;   ///< index in tree_nodes_ (valid when marked)
  std::vector<int> sink_mark_;    ///< node is a still-unrouted sink of this net
  int net_token_ = 0;

  // Reused buffers (allocation-quiet inner loop).
  std::vector<HeapEntry> heap_;
  std::vector<int> path_;
  std::vector<int> tree_nodes_;
  std::vector<int> sink_x_, sink_y_;
  std::vector<int> sink_dist_;    ///< per-sink nearest tree-node distance
  std::vector<char> sink_done_;
  std::vector<int> over_hist_;    ///< overused count per iteration (abort)
};

RouteResult route_with_history(const RrGraph& graph,
                               const place::Placement& placement,
                               const RouteOptions& options,
                               const std::vector<double>* initial_history,
                               SpatialHistory* out_spatial) {
  PathFinder pf(graph, placement, options);
  RouteResult result = pf.run(initial_history);
  if (out_spatial != nullptr) {
    *out_spatial = extract_spatial_history(graph, pf.history());
  }
  return result;
}

/// True when the caller-provided cancellation flag is raised.
bool cancelled(const RouteOptions& options) {
  return options.cancel != nullptr &&
         options.cancel->load(std::memory_order_relaxed);
}

/// Records one probe verdict for the trace and the caller's cancellation
/// flag. Called on the search thread only (wave probes are consumed by
/// index after the wave joins), so verdict order is deterministic.
void note_probe(int width, const RouteResult& result, bool oracle,
                long long* probes) {
  ++*probes;
  static obs::Counter& c_probes = obs::counter("route.minw_probes");
  c_probes.add(1);
  if (obs::enabled()) {
    obs::point("route.minw_probe",
               {{"width", static_cast<double>(width)},
                {"success", result.success ? 1.0 : 0.0},
                {"iterations", static_cast<double>(result.iterations)},
                {"oracle", oracle ? 1.0 : 0.0}});
  }
}

void throw_if_cancelled(const RouteOptions& options) {
  if (cancelled(options)) {
    throw CancelledError("minimum channel width search cancelled");
  }
}

int minimum_channel_width_impl(const place::Placement& placement,
                               const arch::ArchSpec& spec,
                               RouteResult* result,
                               const RouteOptions& options, int w_min,
                               int w_max, long long* probes);

}  // namespace

RouteResult route_all(const RrGraph& graph, const place::Placement& placement,
                      const RouteOptions& options) {
  RouteResult result =
      route_with_history(graph, placement, options, nullptr, nullptr);
  if (cancelled(options)) throw CancelledError("routing cancelled");
  return result;
}

RouteResult route_seeded(const RrGraph& graph,
                         const place::Placement& placement,
                         const std::vector<NetRoute>& seeds,
                         const std::vector<char>& dirty,
                         const RouteOptions& options) {
  int n_dirty = 0;
  for (char d : dirty) n_dirty += d != 0;
  // The spare pass is worth one cheap iteration only for small edits: a
  // large dirty set (an edit that re-packed whole regions) almost never
  // fits in the spare capacity, and every failing net pays a full
  // exhaustive wavefront before giving up.
  const bool small_edit =
      n_dirty * 8 < static_cast<int>(dirty.size());

  // Pass 1 — spare capacity only: route the dirty nets with every full
  // node treated as a hard obstacle. The clean trees cannot be disturbed
  // and no overuse can form, so one iteration yields a legal tree for
  // every dirty net that fits in the spare capacity (the common case at a
  // channel width with headroom). Best-effort: a net with no spare path
  // is simply left unrouted for the negotiation pass below.
  if (small_edit) {
    RouteOptions spare = options;
    spare.incremental = true;
    spare.spare_only = true;
    spare.max_iterations = 1;
    PathFinder pf1(graph, placement, spare);
    pf1.seed(seeds, dirty);
    RouteResult r1 = pf1.run(nullptr);
    if (cancelled(spare)) throw CancelledError("routing cancelled");
    if (r1.success) return r1;
  }

  // Pass 2 — negotiate from the original seeds. Re-seeding from pass 1's
  // partial result is tempting but wrong: the spare-routed trees are
  // greedy first-come detours that consume exactly the capacity the
  // leftover nets needed, and negotiating around them converges worse
  // than re-deciding all dirty nets together. The seeds are a legal
  // overuse-free solution: route the dirty nets around it under
  // mid-schedule congestion pressure (a cold start would send them
  // straight through the clean trees; a fully-mature one makes contested
  // nets oscillate with no history to arbitrate), and never force a full
  // re-negotiation — a refresh would reroute every clean net and turn the
  // seeded run back into a cold one. Iterations touch only the handful of
  // contested nets, so a deeper budget is cheap.
  RouteOptions opts = options;
  opts.incremental = true;  // partial rip-up is the point of seeding
  opts.first_iter_pres_fac =
      options.first_iter_pres_fac *
      std::pow(options.pres_fac_mult, 4.0);
  // A steeper schedule than the cold router's: the few contested nets
  // oscillate until pressure breaks the tie, and each extra iteration
  // here is pure tail latency.
  opts.pres_fac_mult = options.pres_fac_mult * 1.25;
  opts.refresh_interval = std::numeric_limits<int>::max();
  opts.max_iterations = options.max_iterations * 2;
  PathFinder pf2(graph, placement, opts);
  pf2.seed(seeds, dirty);
  RouteResult result = pf2.run(nullptr);
  if (cancelled(opts)) throw CancelledError("routing cancelled");
  return result;
}

int minimum_channel_width(const place::Placement& placement,
                          const arch::ArchSpec& spec, RouteResult* result,
                          const RouteOptions& options, int w_min, int w_max) {
  obs::Span span("route.minw_search");
  RouteResult local;
  RouteResult* out = result != nullptr ? result : &local;
  long long probes = 0;
  const int width = minimum_channel_width_impl(placement, spec, out, options,
                                               w_min, w_max, &probes);
  if (span.active()) {
    span.metric("width", width);
    span.metric("probes", static_cast<double>(probes));
    span.metric("wire_nodes", out->total_wire_nodes);
  }
  return width;
}

namespace {

int minimum_channel_width_impl(const place::Placement& placement,
                               const arch::ArchSpec& spec,
                               RouteResult* result,
                               const RouteOptions& options, int w_min,
                               int w_max, long long* probes) {
  RouteResult best;
  int best_w = -1;

  // One cold oracle probe: full rip-up every iteration, whole budget.
  // This is the reference feasibility test; the incremental search below
  // always lets it have the last word on the final boundary.
  auto oracle_probe = [&](int w, RouteResult* out) {
    RrGraph graph(placement, spec, w, options.rr);
    RouteOptions full = options;
    full.incremental = false;
    full.stall_window = 0;
    *out = route_with_history(graph, placement, full, nullptr, nullptr);
    return out->success;
  };

  if (!options.incremental) {
    // Oracle path: sequential doubling then binary search, cold probes.
    int lo = w_min;
    for (int w = std::max(w_min, spec.channel_width); w <= w_max; w *= 2) {
      throw_if_cancelled(options);
      RouteResult r;
      const bool ok = oracle_probe(w, &r);
      note_probe(w, r, /*oracle=*/true, probes);
      if (ok) {
        best = std::move(r);
        best_w = w;
        break;
      }
      lo = w + 1;
    }
    if (best_w < 0) {
      if (result != nullptr) *result = RouteResult{};
      return -1;
    }
    int hi = best_w;
    while (lo < hi) {
      throw_if_cancelled(options);
      const int mid = (lo + hi) / 2;
      RouteResult r;
      const bool ok = oracle_probe(mid, &r);
      note_probe(mid, r, /*oracle=*/true, probes);
      if (ok) {
        best = std::move(r);
        best_w = mid;
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (result != nullptr) *result = std::move(best);
    return best_w;
  }

  // --- Incremental search ------------------------------------------------
  // Exploratory probes use the incremental router with a stagnation abort:
  // fast, but a weaker negotiator on borderline widths (it may fail where
  // the oracle routes). Its verdicts only steer the search; the final
  // boundary is re-established by cold oracle probes in the descent phase,
  // so any exploratory misjudgment costs time, never the result.
  ThreadPool pool(static_cast<std::size_t>(
      options.probe_threads < 0 ? 0 : options.probe_threads));
  constexpr std::size_t kWave = 3;
  SpatialHistory warm;

  RouteOptions explore = options;
  if (explore.stall_window <= 0) explore.stall_window = 10;
  auto explore_probe = [&](int w, const SpatialHistory* warm_in,
                           RouteResult* out, SpatialHistory* spatial_out) {
    RrGraph graph(placement, spec, w, options.rr);
    std::vector<double> init;
    if (warm_in != nullptr && !warm_in->empty() &&
        options.warm_start_fac > 0.0) {
      init = history_from_spatial(*warm_in, graph, options.warm_start_fac);
    }
    *out = route_with_history(graph, placement, explore,
                              init.empty() ? nullptr : &init, spatial_out);
    return out->success;
  };

  // Demand estimate: summed net bounding-box spans are a lower bound on
  // the wire segments any routing must use; divided by the number of wire
  // segments one track provides, that is a width the design cannot route
  // below. Empirically the achievable minimum sits at ~2x this bound, so
  // a conservative slice of it steers where probing starts: widths below
  // it are expensive deep-congestion probes that always fail. Like every
  // explorer belief, a wrong guess is repaired by the oracle descent.
  double demand = 0.0;
  for (const auto& net : placement.nets()) {
    if (net.sinks.empty()) continue;
    const place::Loc& s = placement.location(net.source);
    int x0 = s.x, x1 = s.x, y0 = s.y, y1 = s.y;
    for (int b : net.sinks) {
      const place::Loc& l = placement.location(b);
      x0 = std::min(x0, l.x);
      x1 = std::max(x1, l.x);
      y0 = std::min(y0, l.y);
      y1 = std::max(y1, l.y);
    }
    demand += std::max(1, (x1 - x0) + (y1 - y0));
  }
  const double track_cap =
      static_cast<double>(placement.nx()) * (placement.ny() + 1) +
      static_cast<double>(placement.ny()) * (placement.nx() + 1);
  const double u_lower = track_cap > 0.0 ? demand / track_cap : 0.0;

  // Doubling phase: find a feasible upper bound. Widths below 1.9x the
  // demand bound are skipped as predicted-infeasible. With spare workers
  // the probes run cold in fixed-size waves consumed by index; single-
  // threaded they run one by one with an early exit. Both pick the first
  // feasible width of the same fixed sequence, so the outcome is
  // identical for any thread count.
  //
  // The narrowing floor sits at 1.55x the demand bound: on routable
  // designs the achievable width lands at ~1.75-1.9x the bound, so the
  // binary search rarely wastes probes on deep-congestion widths. Like
  // the doubling skip, a too-high floor is repaired by the oracle
  // descent below, which walks past the floor freely.
  int lo = std::max(w_min - 1,            // highest width believed infeasible
                    static_cast<int>(1.55 * u_lower));
  std::vector<char> explorer_failed(static_cast<std::size_t>(w_max) + 2, 0);
  std::vector<int> widths;
  for (int w = std::max(w_min, spec.channel_width); w <= w_max; w *= 2) {
    if (static_cast<double>(w) < 1.9 * u_lower && w * 2 <= w_max) {
      lo = std::max(lo, w);
      continue;
    }
    widths.push_back(w);
  }
  if (pool.size() > 1) {
    for (std::size_t i0 = 0; i0 < widths.size() && best_w < 0; i0 += kWave) {
      throw_if_cancelled(options);
      const std::size_t n = std::min(kWave, widths.size() - i0);
      std::vector<RouteResult> probe(n);
      std::vector<SpatialHistory> spatial(n);
      pool.parallel_for(n, [&](std::size_t i) {
        explore_probe(widths[i0 + i], nullptr, &probe[i], &spatial[i]);
      });
      for (std::size_t i = 0; i < n; ++i) {
        note_probe(widths[i0 + i], probe[i], /*oracle=*/false, probes);
        if (probe[i].success) {
          best = std::move(probe[i]);
          best_w = widths[i0 + i];
          warm = std::move(spatial[i]);
          break;
        }
        lo = widths[i0 + i];
        explorer_failed[static_cast<std::size_t>(widths[i0 + i])] = 1;
      }
    }
  } else {
    for (int w : widths) {
      throw_if_cancelled(options);
      RouteResult r;
      SpatialHistory spatial;
      const bool ok = explore_probe(w, nullptr, &r, &spatial);
      note_probe(w, r, /*oracle=*/false, probes);
      if (ok) {
        best = std::move(r);
        best_w = w;
        warm = std::move(spatial);
        break;
      }
      lo = w;
      explorer_failed[static_cast<std::size_t>(w)] = 1;
    }
  }
  throw_if_cancelled(options);
  if (best_w < 0) {
    // Even the incremental router found nothing up to w_max; fall back to
    // the oracle's sequential search wholesale (it may still succeed
    // where the abort-happy explorer gave up).
    RouteOptions oracle = options;
    oracle.incremental = false;
    return minimum_channel_width_impl(placement, spec, result, oracle, w_min,
                                      w_max, probes);
  }

  // Narrowing phase: binary search, each probe warm-started from the
  // current best width's congestion history (per-tile means — track
  // counts differ between widths). The probe sequence is deterministic,
  // so the warm-start chain is too.
  int hi = best_w;
  while (hi - lo >= 2) {
    throw_if_cancelled(options);
    const int mid = lo + (hi - lo) / 2;
    RouteResult r;
    SpatialHistory spatial;
    const bool ok = explore_probe(mid, &warm, &r, &spatial);
    note_probe(mid, r, /*oracle=*/false, probes);
    if (ok) {
      best = std::move(r);
      best_w = mid;
      warm = std::move(spatial);
      hi = mid;
    } else {
      lo = mid;
      explorer_failed[static_cast<std::size_t>(mid)] = 1;
    }
  }

  // Oracle confirmation: the explorer's verdicts only steered the search;
  // the boundary is re-established with cold full-budget oracle probes so
  // the returned width is exactly the oracle's. Failing probes cost the
  // whole iteration budget while near-boundary successes converge fast,
  // so the walk starts at the bottom of the consecutive run of
  // explorer-failed width just below the explorer's best — the most
  // likely spot for the oracle boundary when the abort false-failed a
  // feasible width — and lets the probes pick the direction: down while
  // the oracle routes (reclaiming widths the explorer gave up on), up
  // from the first failure to the first width the oracle can route.
  // Starting only one step down keeps a genuinely-infeasible run of
  // explorer failures from dragging the walk into a chain of
  // full-budget failing probes. Under monotone feasibility the returned
  // width is exactly the width the cold oracle search would return.
  int start_w = best_w;
  if (start_w - 1 >= w_min &&
      explorer_failed[static_cast<std::size_t>(start_w - 1)]) {
    --start_w;
  }
  throw_if_cancelled(options);
  RouteResult probe_r;
  const bool start_ok = oracle_probe(start_w, &probe_r);
  note_probe(start_w, probe_r, /*oracle=*/true, probes);
  if (start_ok) {
    best = std::move(probe_r);
    best_w = start_w;
    for (int w = start_w - 1; w >= w_min; --w) {
      throw_if_cancelled(options);
      RouteResult r;
      const bool ok = oracle_probe(w, &r);
      note_probe(w, r, /*oracle=*/true, probes);
      if (!ok) break;
      best = std::move(r);
      best_w = w;
    }
  } else {
    for (int w = start_w + 1; w <= w_max; ++w) {
      throw_if_cancelled(options);
      RouteResult r;
      const bool ok = oracle_probe(w, &r);
      note_probe(w, r, /*oracle=*/true, probes);
      if (ok) {
        best = std::move(r);
        best_w = w;
        break;
      }
      // Keep the explorer's legal routing if the oracle never catches up.
    }
  }
  throw_if_cancelled(options);

  if (result != nullptr) *result = std::move(best);
  return best_w;
}

}  // namespace

void verify_routing(const RrGraph& graph, const place::Placement& placement,
                    const RouteResult& result) {
  AMDREL_CHECK_MSG(result.success, "verify_routing on a failed result");
  const int n_nodes = graph.num_nodes();
  std::vector<int> occupancy(static_cast<std::size_t>(n_nodes), 0);
  for (std::size_t ni = 0; ni < result.routes.size(); ++ni) {
    const NetRoute& r = result.routes[ni];
    const auto& sinks = graph.sinks_of_net(static_cast<int>(ni));
    if (sinks.empty()) continue;
    AMDREL_CHECK_MSG(!r.nodes.empty(), "net has no route");
    // Tree structure: parent[0] == -1; all others valid.
    AMDREL_CHECK(r.parent.size() == r.nodes.size());
    AMDREL_CHECK_MSG(r.parent[0] == -1, "route tree root has a parent");
    AMDREL_CHECK_MSG(r.nodes[0] == graph.opin_of_net(static_cast<int>(ni)),
                     "route tree does not start at the net's OPIN");
    std::set<int> in_tree(r.nodes.begin(), r.nodes.end());
    for (std::size_t k = 1; k < r.nodes.size(); ++k) {
      const int p = r.parent[k];
      AMDREL_CHECK_MSG(p >= 0 && p < static_cast<int>(k + 1), "bad parent");
      // Parent must actually be adjacent in the RR graph.
      AMDREL_CHECK_MSG(
          graph.has_edge(r.nodes[static_cast<std::size_t>(p)], r.nodes[k]),
          "route uses a non-existent RR edge");
    }
    for (int s : sinks) {
      AMDREL_CHECK_MSG(in_tree.count(s), "route misses a sink");
    }
    for (int id : r.nodes) ++occupancy[static_cast<std::size_t>(id)];
  }
  for (int id = 0; id < n_nodes; ++id) {
    // Capacity decode is per-id work; untouched nodes (capacity >= 1)
    // cannot be over.
    if (occupancy[static_cast<std::size_t>(id)] <= 1) continue;
    AMDREL_CHECK_MSG(
        occupancy[static_cast<std::size_t>(id)] <= graph.node_capacity(id),
        "RR node over capacity after routing");
  }
  (void)placement;
}

}  // namespace amdrel::route

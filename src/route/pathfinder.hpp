#pragma once
// PathFinder negotiated-congestion routing (VPR's router) plus the
// channel-width binary search used for minimum-W experiments.

#include <atomic>
#include <string>
#include <vector>

#include "route/rr_graph.hpp"

namespace amdrel::route {

struct RouteOptions {
  /// RR-graph representation for graphs this router builds itself
  /// (`minimum_channel_width` probes). Graphs passed in by the caller
  /// carry their own options.
  RrOptions rr;
  int max_iterations = 40;
  double first_iter_pres_fac = 0.5;
  double pres_fac_mult = 1.6;
  double acc_fac = 1.0;          ///< history cost increment
  double astar_fac = 1.2;        ///< expected-cost weight (A*)
  bool quiet = true;
  /// Congestion-driven incremental rerouting: after the first iteration,
  /// rip up and reroute only nets that touch overused RR nodes (legal nets
  /// keep their trees and occupancy). Also enables the warm-started,
  /// wave-parallel minimum-channel-width search. false = the full
  /// rip-up-everything oracle with a sequential cold-start width search.
  bool incremental = true;
  /// Incremental mode: every Nth iteration rips up and reroutes all nets,
  /// not just congestion-touching ones, so legal nets blocking the only
  /// escape path of a congested net still re-negotiate.
  int refresh_interval = 8;
  /// Incremental mode: give up early when the overused-node count has not
  /// improved for this many iterations (0 = run all max_iterations).
  /// `minimum_channel_width` enables this for its exploratory probes so
  /// clearly-infeasible widths cost a handful of iterations, not the full
  /// budget; the final oracle confirmation never aborts early.
  int stall_window = 0;
  /// Scale applied to the per-tile wire history transferred from the last
  /// successful probe width in `minimum_channel_width` (incremental only).
  /// The final width is always re-established by cold oracle probes, so
  /// the warm start only affects how fast the search narrows, never what
  /// it returns.
  double warm_start_fac = 0.5;
  /// Treat nodes at capacity as hard obstacles instead of pricing their
  /// overuse: the wavefront never expands into a full node, so any
  /// solution found is overuse-free by construction (and a net with no
  /// path through the spare capacity fails outright instead of stealing
  /// resources). `route_seeded` uses this for its first pass, where the
  /// seeded clean trees must not move.
  bool spare_only = false;
  /// Worker threads for the parallel probe waves of
  /// `minimum_channel_width` (0 = hardware concurrency). Probe waves have
  /// a fixed size and are consumed by index, so the search result never
  /// depends on the thread count.
  int probe_threads = 0;
  /// Cooperative cancellation flag (not owned; may be set from another
  /// thread). Checked once per PathFinder iteration and once per min-W
  /// probe: when it reads true, `route_all` and `minimum_channel_width`
  /// throw CancelledError from the calling thread instead of returning a
  /// result. nullptr = never cancelled.
  const std::atomic<bool>* cancel = nullptr;
};

/// The routing of one net: a tree of RR nodes (parent edges).
struct NetRoute {
  std::vector<int> nodes;              ///< all nodes used (tree order)
  std::vector<int> parent;             ///< parent[i] index into `nodes`, -1=root
};

struct RouteResult {
  bool success = false;
  int iterations = 0;
  std::vector<NetRoute> routes;        ///< per placement-net
  int total_wire_nodes = 0;            ///< wire segments used
  int nets_rerouted = 0;               ///< nets the wavefront actually routed
  std::string message;
};

/// Routes all placement nets on the given RR graph.
RouteResult route_all(const RrGraph& graph, const place::Placement& placement,
                      const RouteOptions& options = {});

/// ECO warm start: routes with per-net seed trees from a previous compile.
/// Nets whose `dirty` flag is clear and whose seed is non-empty start
/// committed (tree + occupancy) and skip the first routing pass; the
/// normal congestion-driven negotiation still rips any of them up if a
/// dirty net needs their resources. `seeds`/`dirty` are indexed by
/// placement-net, in this graph's node ids. Always runs the incremental
/// (partial rip-up) scheduler.
RouteResult route_seeded(const RrGraph& graph,
                         const place::Placement& placement,
                         const std::vector<NetRoute>& seeds,
                         const std::vector<char>& dirty,
                         const RouteOptions& options = {});

/// Binary-searches the minimum channel width that routes successfully.
/// Returns the width and fills `result` with the routing at that width.
int minimum_channel_width(const place::Placement& placement,
                          const arch::ArchSpec& spec, RouteResult* result,
                          const RouteOptions& options = {}, int w_min = 4,
                          int w_max = 128);

/// Verifies a successful result: every net's tree is connected, reaches
/// all its sinks, and no RR node exceeds its capacity. Throws on failure.
void verify_routing(const RrGraph& graph, const place::Placement& placement,
                    const RouteResult& result);

}  // namespace amdrel::route

#include "route/rr_graph.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::route {

using place::BlockKind;
using place::Loc;
using place::Placement;

RrGraph::RrGraph(const Placement& placement, const arch::ArchSpec& spec,
                 int channel_width)
    : placement_(&placement),
      spec_(&spec),
      width_(channel_width),
      nx_(placement.nx()),
      ny_(placement.ny()) {
  AMDREL_CHECK(width_ >= 1);
  build();
}

int RrGraph::add_node(RrNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

// chanx segments: x in 1..nx, y in 0..ny (channel between rows y and y+1).
int RrGraph::chanx_id(int x, int y, int t) const {
  AMDREL_CHECK(x >= 1 && x <= nx_ && y >= 0 && y <= ny_ && t >= 0 &&
               t < width_);
  return chanx_base_[static_cast<std::size_t>(y * nx_ + (x - 1))] + t;
}

// chany segments: x in 0..nx, y in 1..ny.
int RrGraph::chany_id(int x, int y, int t) const {
  AMDREL_CHECK(x >= 0 && x <= nx_ && y >= 1 && y <= ny_ && t >= 0 &&
               t < width_);
  return chany_base_[static_cast<std::size_t>(x * ny_ + (y - 1))] + t;
}

void RrGraph::build() {
  const Placement& pl = *placement_;
  const arch::ArchSpec& spec = *spec_;

  // Node count is known up front: wires for every channel position plus
  // pins per block. Reserving once keeps the build from repeatedly
  // moving RrNodes (each owns an edge vector) as nodes_ grows.
  const std::size_t n_wires =
      static_cast<std::size_t>((ny_ + 1) * nx_ + (nx_ + 1) * ny_) *
      static_cast<std::size_t>(width_);
  nodes_.reserve(n_wires +
                 pl.blocks().size() *
                     static_cast<std::size_t>(spec.cluster_inputs() + spec.n + 2));

  // ---- wire nodes ----
  chanx_base_.assign(static_cast<std::size_t>((ny_ + 1) * nx_), -1);
  for (int y = 0; y <= ny_; ++y) {
    for (int x = 1; x <= nx_; ++x) {
      chanx_base_[static_cast<std::size_t>(y * nx_ + (x - 1))] =
          static_cast<int>(nodes_.size());
      for (int t = 0; t < width_; ++t) {
        RrNode n;
        n.type = RrType::kChanX;
        n.x = x;
        n.y = y;
        n.track = t;
        n.base_cost = 1.0;
        n.out_edges.reserve(8);  // 6 switch-box legs + pin taps
        add_node(std::move(n));
      }
    }
  }
  chany_base_.assign(static_cast<std::size_t>((nx_ + 1) * ny_), -1);
  for (int x = 0; x <= nx_; ++x) {
    for (int y = 1; y <= ny_; ++y) {
      chany_base_[static_cast<std::size_t>(x * ny_ + (y - 1))] =
          static_cast<int>(nodes_.size());
      for (int t = 0; t < width_; ++t) {
        RrNode n;
        n.type = RrType::kChanY;
        n.x = x;
        n.y = y;
        n.track = t;
        n.base_cost = 1.0;
        n.out_edges.reserve(8);  // 6 switch-box legs + pin taps
        add_node(std::move(n));
      }
    }
  }

  auto connect2 = [&](int a, int b) {
    nodes_[static_cast<std::size_t>(a)].out_edges.push_back(b);
    nodes_[static_cast<std::size_t>(b)].out_edges.push_back(a);
  };

  // ---- disjoint switch boxes (Fs = 3): same-track connections ----
  for (int x = 0; x <= nx_; ++x) {
    for (int y = 0; y <= ny_; ++y) {
      for (int t = 0; t < width_; ++t) {
        const int left = (x >= 1) ? chanx_id(x, y, t) : -1;
        const int right = (x + 1 <= nx_) ? chanx_id(x + 1, y, t) : -1;
        const int below = (y >= 1) ? chany_id(x, y, t) : -1;
        const int above = (y + 1 <= ny_) ? chany_id(x, y + 1, t) : -1;
        if (left >= 0 && right >= 0) connect2(left, right);
        if (below >= 0 && above >= 0) connect2(below, above);
        if (left >= 0 && below >= 0) connect2(left, below);
        if (left >= 0 && above >= 0) connect2(left, above);
        if (right >= 0 && below >= 0) connect2(right, below);
        if (right >= 0 && above >= 0) connect2(right, above);
      }
    }
  }

  // Track selection for a pin: a staggered Fc window.
  const int fc_in_tracks =
      std::max(1, static_cast<int>(std::lround(spec.fc_in * width_)));
  const int fc_out_tracks =
      std::max(1, static_cast<int>(std::lround(spec.fc_out * width_)));
  auto pin_tracks = [&](int pin, int n_tracks) {
    std::vector<int> tracks;
    for (int k = 0; k < n_tracks; ++k) {
      tracks.push_back((pin + k) % width_);
    }
    std::sort(tracks.begin(), tracks.end());
    tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());
    return tracks;
  };

  // Channel segments adjacent to tile (x, y): {chanx below, chanx above,
  // chany left, chany right}; side = pin % 4 picks one.
  auto adjacent_wire = [&](int x, int y, int side, int t) -> int {
    switch (side) {
      case 0: return chanx_id(x, y - 1, t);  // below
      case 1: return chanx_id(x, y, t);      // above
      case 2: return chany_id(x - 1, y, t);  // left
      default: return chany_id(x, y, t);     // right
    }
  };

  // ---- per-block pins ----
  const auto& blocks = pl.blocks();
  std::vector<int> block_sink(blocks.size(), -1);
  std::vector<std::vector<int>> block_opins(blocks.size());

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const auto& blk = blocks[bi];
    const Loc& loc = pl.location(static_cast<int>(bi));
    if (blk.kind == BlockKind::kClb) {
      const int n_in = spec.cluster_inputs();
      const int n_out = spec.n;
      // SINK (capacity I).
      RrNode sink;
      sink.type = RrType::kSink;
      sink.x = loc.x;
      sink.y = loc.y;
      sink.block = static_cast<int>(bi);
      sink.capacity = n_in;
      sink.base_cost = 0.0;
      const int sink_id = add_node(std::move(sink));
      block_sink[bi] = sink_id;
      // IPINs.
      for (int p = 0; p < n_in; ++p) {
        RrNode ipin;
        ipin.type = RrType::kIpin;
        ipin.x = loc.x;
        ipin.y = loc.y;
        ipin.pin = p;
        ipin.block = static_cast<int>(bi);
        ipin.base_cost = 0.95;
        const int ipin_id = add_node(std::move(ipin));
        nodes_[static_cast<std::size_t>(ipin_id)].out_edges.push_back(sink_id);
        const int side = p % 4;
        for (int t : pin_tracks(p, fc_in_tracks)) {
          const int wire = adjacent_wire(loc.x, loc.y, side, t);
          nodes_[static_cast<std::size_t>(wire)].out_edges.push_back(ipin_id);
        }
      }
      // OPINs.
      for (int p = 0; p < n_out; ++p) {
        RrNode opin;
        opin.type = RrType::kOpin;
        opin.x = loc.x;
        opin.y = loc.y;
        opin.pin = p;
        opin.block = static_cast<int>(bi);
        opin.base_cost = 1.0;
        const int opin_id = add_node(std::move(opin));
        block_opins[bi].push_back(opin_id);
        const int side = (p + 1) % 4;
        for (int t : pin_tracks(p + n_in, fc_out_tracks)) {
          const int wire = adjacent_wire(loc.x, loc.y, side, t);
          nodes_[static_cast<std::size_t>(opin_id)].out_edges.push_back(wire);
        }
      }
    } else {
      // IO pad: the channel bordering the core.
      auto pad_wire = [&](int t) -> int {
        if (loc.y == 0) return chanx_id(loc.x, 0, t);
        if (loc.y == ny_ + 1) return chanx_id(loc.x, ny_, t);
        if (loc.x == 0) return chany_id(0, loc.y, t);
        return chany_id(nx_, loc.y, t);
      };
      if (blk.kind == BlockKind::kInputPad) {
        RrNode opin;
        opin.type = RrType::kOpin;
        opin.x = loc.x;
        opin.y = loc.y;
        opin.pin = loc.sub;
        opin.block = static_cast<int>(bi);
        const int opin_id = add_node(std::move(opin));
        block_opins[bi].push_back(opin_id);
        for (int t : pin_tracks(loc.sub, fc_out_tracks)) {
          nodes_[static_cast<std::size_t>(opin_id)].out_edges.push_back(
              pad_wire(t));
        }
      } else {
        RrNode sink;
        sink.type = RrType::kSink;
        sink.x = loc.x;
        sink.y = loc.y;
        sink.block = static_cast<int>(bi);
        sink.capacity = 1;
        sink.base_cost = 0.0;
        const int sink_id = add_node(std::move(sink));
        block_sink[bi] = sink_id;
        RrNode ipin;
        ipin.type = RrType::kIpin;
        ipin.x = loc.x;
        ipin.y = loc.y;
        ipin.pin = loc.sub;
        ipin.block = static_cast<int>(bi);
        ipin.base_cost = 0.95;
        const int ipin_id = add_node(std::move(ipin));
        nodes_[static_cast<std::size_t>(ipin_id)].out_edges.push_back(sink_id);
        for (int t : pin_tracks(loc.sub, fc_in_tracks)) {
          nodes_[static_cast<std::size_t>(pad_wire(t))].out_edges.push_back(
              ipin_id);
        }
      }
    }
  }

  // ---- net terminals ----
  const auto& nets = pl.nets();
  net_opin_.assign(nets.size(), -1);
  net_sinks_.assign(nets.size(), {});

  // Cluster output pin slot per signal: index within output_signals.
  for (std::size_t ni = 0; ni < nets.size(); ++ni) {
    const auto& net = nets[ni];
    const auto& src_blk = blocks[static_cast<std::size_t>(net.source)];
    if (src_blk.kind == BlockKind::kClb) {
      const auto& cluster =
          pl.packed().clusters()[static_cast<std::size_t>(src_blk.index)];
      // OPIN p is hard-wired to BLE slot p's output (matches the CLB
      // structure and the bitstream decoder's interpretation).
      int slot = -1;
      for (std::size_t k = 0; k < cluster.bles.size(); ++k) {
        const auto& ble =
            pl.packed().bles()[static_cast<std::size_t>(cluster.bles[k])];
        if (ble.output == net.signal) {
          slot = static_cast<int>(k);
          break;
        }
      }
      AMDREL_CHECK_MSG(slot >= 0, "net source not among cluster outputs");
      AMDREL_CHECK(slot < static_cast<int>(block_opins[static_cast<std::size_t>(net.source)].size()));
      net_opin_[ni] =
          block_opins[static_cast<std::size_t>(net.source)][static_cast<std::size_t>(slot)];
    } else {
      net_opin_[ni] =
          block_opins[static_cast<std::size_t>(net.source)][0];
    }
    for (int sink_blk : net.sinks) {
      if (sink_blk == net.source) continue;  // PI==PO degenerate
      const int sid = block_sink[static_cast<std::size_t>(sink_blk)];
      AMDREL_CHECK_MSG(sid >= 0, "sink block has no sink node");
      net_sinks_[ni].push_back(sid);
    }
  }
}

int RrGraph::opin_of_net(int net_index) const {
  return net_opin_[static_cast<std::size_t>(net_index)];
}

const std::vector<int>& RrGraph::sinks_of_net(int net_index) const {
  return net_sinks_[static_cast<std::size_t>(net_index)];
}

std::string RrGraph::stats() const {
  int wires = 0, pins = 0, sinks = 0;
  std::size_t edges = 0;
  for (const auto& n : nodes_) {
    if (n.type == RrType::kChanX || n.type == RrType::kChanY) ++wires;
    else if (n.type == RrType::kSink) ++sinks;
    else ++pins;
    edges += n.out_edges.size();
  }
  return strprintf("%d nodes (%d wires, %d pins, %d sinks), %zu edges, W=%d",
                   static_cast<int>(nodes_.size()), wires, pins, sinks, edges,
                   width_);
}

}  // namespace amdrel::route

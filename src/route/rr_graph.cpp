#include "route/rr_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::route {

using place::BlockKind;
using place::Loc;
using place::Placement;

namespace {

/// Pin/sink nodes a block contributes (see block_base_ layout).
int block_node_count(BlockKind kind, const arch::ArchSpec& spec) {
  switch (kind) {
    case BlockKind::kClb: return 1 + spec.cluster_inputs() + spec.n;
    case BlockKind::kInputPad: return 1;
    case BlockKind::kOutputPad: return 2;
  }
  return 0;
}

/// Connection-box tap tracks of pin class `pin`: n_tracks consecutive
/// tracks starting at pin (mod W), deduplicated ascending.
std::vector<int> pin_tracks_for(int pin, int n_tracks, int width) {
  std::vector<int> tracks;
  for (int k = 0; k < n_tracks; ++k) {
    tracks.push_back((pin + k) % width);
  }
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());
  return tracks;
}

std::mutex& tmpl_cache_mutex() {
  static std::mutex m;
  return m;
}

/// Process-wide template cache. Leaked intentionally (never destroyed) so
/// shared() stays safe during static destruction of other objects.
std::unordered_map<std::string, std::shared_ptr<const RrPatternTemplates>>&
tmpl_cache() {
  static auto* cache = new std::unordered_map<
      std::string, std::shared_ptr<const RrPatternTemplates>>();
  return *cache;
}

}  // namespace

RrPatternTemplates RrPatternTemplates::build(const arch::ArchSpec& spec,
                                             int width, int max_sub) {
  RrPatternTemplates tpl;
  const int n_in = spec.cluster_inputs();
  const int n_out = spec.n;

  // ---- connection-box tap tables (one per pin class, not per tile) ----
  const int fc_in_tracks =
      std::max(1, static_cast<int>(std::lround(spec.fc_in * width)));
  const int fc_out_tracks =
      std::max(1, static_cast<int>(std::lround(spec.fc_out * width)));

  tpl.clb_taps.assign(static_cast<std::size_t>(4 * width), {});
  for (int p = 0; p < n_in; ++p) {
    const int side = p % 4;
    for (int t : pin_tracks_for(p, fc_in_tracks, width)) {
      tpl.clb_taps[static_cast<std::size_t>(side * width + t)].push_back(p);
    }
  }
  tpl.clb_opin_tracks.resize(static_cast<std::size_t>(n_out));
  for (int p = 0; p < n_out; ++p) {
    tpl.clb_opin_tracks[static_cast<std::size_t>(p)] =
        pin_tracks_for(p + n_in, fc_out_tracks, width);
  }
  tpl.pad_out_tracks.resize(static_cast<std::size_t>(max_sub + 1));
  tpl.pad_in_has.assign(static_cast<std::size_t>((max_sub + 1) * width), 0);
  tpl.pad_in_count.assign(static_cast<std::size_t>(max_sub + 1), 0);
  for (int sub = 0; sub <= max_sub; ++sub) {
    tpl.pad_out_tracks[static_cast<std::size_t>(sub)] =
        pin_tracks_for(sub, fc_out_tracks, width);
    const auto in_tracks = pin_tracks_for(sub, fc_in_tracks, width);
    tpl.pad_in_count[static_cast<std::size_t>(sub)] =
        static_cast<int>(in_tracks.size());
    for (int t : in_tracks) {
      tpl.pad_in_has[static_cast<std::size_t>(sub * width + t)] = 1;
    }
  }

  // ---- switch-box leg templates per (orientation, boundary class) ----
  // Leg order reproduces the dense build's push order exactly: the SB at
  // the wire's low end writes first (the SB loop runs x-major), then the
  // SB at its high end; within one SB the pair order is (L,R), (B,A),
  // (L,B), (L,A), (R,B), (R,A).
  for (int sig = 0; sig < 16; ++sig) {
    const bool x1 = (sig & 1) != 0, xn = (sig & 2) != 0;
    const bool y0 = (sig & 4) != 0, yn = (sig & 8) != 0;
    auto& hx = tpl.legs[1][sig];
    hx.clear();
    if (!x1) hx.push_back({true, -1, 0});
    if (!y0) hx.push_back({false, -1, 0});
    if (!yn) hx.push_back({false, -1, 1});
    if (!xn) hx.push_back({true, 1, 0});
    if (!y0) hx.push_back({false, 0, 0});
    if (!yn) hx.push_back({false, 0, 1});
    // chany: bits are x==0, x==nx, y==1, y==ny.
    const bool x0 = x1, y1 = y0;
    auto& hy = tpl.legs[0][sig];
    hy.clear();
    if (!y1) hy.push_back({false, 0, -1});
    if (!x0) hy.push_back({true, 0, -1});
    if (!xn) hy.push_back({true, 1, -1});
    if (!yn) hy.push_back({false, 0, 1});
    if (!x0) hy.push_back({true, 0, 0});
    if (!xn) hy.push_back({true, 1, 0});
  }

  // Template part of the graph's resident-size estimate; the per-graph
  // part (block/tile lookups) is added in build_dedup. The per-vector
  // formulas must not change independently of build_dedup's — the sum is
  // QoR-gated at 0% tolerance (scripts/qor_baseline.json rr_scale).
  std::int64_t bytes = 0;
  for (const auto& v : tpl.clb_taps) bytes += 24 + 4 * static_cast<std::int64_t>(v.size());
  for (const auto& v : tpl.clb_opin_tracks) bytes += 24 + 4 * static_cast<std::int64_t>(v.size());
  for (const auto& v : tpl.pad_out_tracks) bytes += 24 + 4 * static_cast<std::int64_t>(v.size());
  bytes += static_cast<std::int64_t>(tpl.pad_in_has.size()) +
           static_cast<std::int64_t>(tpl.pad_in_count.size()) * 4;
  for (int h = 0; h < 2; ++h) {
    for (int s = 0; s < 16; ++s) {
      bytes += 24 + 3 * static_cast<std::int64_t>(tpl.legs[h][s].size());
    }
  }
  tpl.bytes_est = bytes;
  return tpl;
}

std::shared_ptr<const RrPatternTemplates> RrPatternTemplates::shared(
    const arch::ArchSpec& spec, int width, int max_sub) {
  // Everything build() reads participates in the key (cluster_inputs()
  // is a function of k and n).
  const std::string key =
      strprintf("k%d.n%d.fi%.17g.fo%.17g.w%d.s%d", spec.k, spec.n,
                spec.fc_in, spec.fc_out, width, max_sub);
  static obs::Counter& c_hits = obs::counter("rr.tmpl_cache_hits");
  static obs::Counter& c_misses = obs::counter("rr.tmpl_cache_misses");
  std::lock_guard<std::mutex> lock(tmpl_cache_mutex());
  auto& slot = tmpl_cache()[key];
  if (slot) {
    c_hits.add(1);
    return slot;
  }
  c_misses.add(1);
  slot = std::make_shared<const RrPatternTemplates>(
      build(spec, width, max_sub));
  return slot;
}

std::size_t RrPatternTemplates::cache_size() {
  std::lock_guard<std::mutex> lock(tmpl_cache_mutex());
  return tmpl_cache().size();
}

void RrPatternTemplates::clear_cache() {
  std::lock_guard<std::mutex> lock(tmpl_cache_mutex());
  tmpl_cache().clear();
}

std::int64_t RrGraph::checked_node_count(std::int64_t nx, std::int64_t ny,
                                         std::int64_t channel_width,
                                         std::int64_t block_nodes) {
  const std::int64_t wires =
      ((ny + 1) * nx + (nx + 1) * ny) * channel_width;
  const std::int64_t total = wires + block_nodes;
  AMDREL_CHECK_MSG(
      total >= 0 &&
          total <= static_cast<std::int64_t>(
                       std::numeric_limits<std::int32_t>::max()),
      strprintf("RR node-id space overflows 32-bit ids: %lldx%lld grid at "
                "W=%lld needs %lld ids",
                static_cast<long long>(nx), static_cast<long long>(ny),
                static_cast<long long>(channel_width),
                static_cast<long long>(total)));
  return total;
}

RrGraph::RrGraph(const Placement& placement, const arch::ArchSpec& spec,
                 int channel_width, const RrOptions& options)
    : placement_(&placement),
      spec_(&spec),
      width_(channel_width),
      nx_(placement.nx()),
      ny_(placement.ny()),
      dedup_(options.dedup) {
  AMDREL_CHECK(width_ >= 1);
  build_common_tables();
  if (dedup_) {
    build_dedup();
  } else {
    build_dense();
  }
  build_net_terminals();

  static obs::Counter& c_nodes = obs::counter("rr.nodes");
  static obs::Counter& c_patterns = obs::counter("rr.unique_patterns");
  static obs::Counter& c_bytes = obs::counter("rr.bytes_est");
  c_nodes.add(static_cast<std::uint64_t>(n_nodes_));
  c_patterns.add(static_cast<std::uint64_t>(unique_patterns_));
  c_bytes.add(static_cast<std::uint64_t>(bytes_est_));
}

std::vector<int> RrGraph::pin_tracks(int pin, int n_tracks) const {
  return pin_tracks_for(pin, n_tracks, width_);
}

int RrGraph::adjacent_chan(int x, int y, int side, int t) const {
  switch (side) {
    case 0: return chanx_id(x, y - 1, t);  // below
    case 1: return chanx_id(x, y, t);      // above
    case 2: return chany_id(x - 1, y, t);  // left
    default: return chany_id(x, y, t);     // right
  }
}

int RrGraph::pad_wire(const Loc& loc, int t) const {
  if (loc.y == 0) return chanx_id(loc.x, 0, t);
  if (loc.y == ny_ + 1) return chanx_id(loc.x, ny_, t);
  if (loc.x == 0) return chany_id(0, loc.y, t);
  return chany_id(nx_, loc.y, t);
}

int RrGraph::wire_signature(bool horizontal, int x, int y) const {
  if (horizontal) {
    return (x == 1 ? 1 : 0) | (x == nx_ ? 2 : 0) | (y == 0 ? 4 : 0) |
           (y == ny_ ? 8 : 0);
  }
  return (x == 0 ? 1 : 0) | (x == nx_ ? 2 : 0) | (y == 1 ? 4 : 0) |
         (y == ny_ ? 8 : 0);
}

bool RrGraph::decode_wire(int id, bool* horizontal, int* x, int* y,
                          int* t) const {
  if (id >= wire_count_) return false;
  if (id < chanx_total_) {
    *horizontal = true;
    const int q = id / width_;
    *t = id % width_;
    *x = q % nx_ + 1;
    *y = q / nx_;
  } else {
    *horizontal = false;
    const int j = id - chanx_total_;
    const int q = j / width_;
    *t = j % width_;
    *x = q / ny_;
    *y = q % ny_ + 1;
  }
  return true;
}

int RrGraph::block_of_id(int id) const {
  const auto it =
      std::upper_bound(block_base_.begin(), block_base_.end(), id);
  return static_cast<int>(it - block_base_.begin()) - 1;
}

int RrGraph::clb_block_at(int x, int y) const {
  if (x < 1 || x > nx_ || y < 1 || y > ny_) return -1;
  return clb_at_[static_cast<std::size_t>(x * (ny_ + 2) + y)];
}

void RrGraph::build_common_tables() {
  const Placement& pl = *placement_;
  const auto& blocks = pl.blocks();

  chanx_total_ = (ny_ + 1) * nx_ * width_;
  std::int64_t block_nodes = 0;
  for (const auto& blk : blocks) {
    block_nodes += block_node_count(blk.kind, *spec_);
  }
  n_nodes_ = static_cast<int>(
      checked_node_count(nx_, ny_, width_, block_nodes));
  wire_count_ = ((ny_ + 1) * nx_ + (nx_ + 1) * ny_) * width_;

  block_base_.resize(blocks.size() + 1);
  int next = wire_count_;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    block_base_[bi] = next;
    next += block_node_count(blocks[bi].kind, *spec_);
  }
  block_base_[blocks.size()] = next;
  AMDREL_CHECK(next == n_nodes_);
}

void RrGraph::build_dedup() {
  const Placement& pl = *placement_;
  const auto& blocks = pl.blocks();

  // The leg / connection-box tables are placement-independent; fetch the
  // shared immutable copy for this (arch, W, pad subs) from the
  // process-wide cache (built on first use).
  int max_sub = -1;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    if (blocks[bi].kind != BlockKind::kClb) {
      max_sub = std::max(max_sub, pl.location(static_cast<int>(bi)).sub);
    }
  }
  tmpl_ = RrPatternTemplates::shared(*spec_, width_, max_sub);

  // ---- tile → block lookups ----
  clb_at_.assign(static_cast<std::size_t>((nx_ + 2) * (ny_ + 2)), -1);
  std::vector<std::pair<std::int64_t, int>> pad_tiles;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const Loc& loc = pl.location(static_cast<int>(bi));
    if (blocks[bi].kind == BlockKind::kClb) {
      clb_at_[static_cast<std::size_t>(loc.x * (ny_ + 2) + loc.y)] =
          static_cast<int>(bi);
    } else {
      pad_tiles.emplace_back(
          static_cast<std::int64_t>(loc.x) * (ny_ + 2) + loc.y,
          static_cast<int>(bi));
    }
  }
  std::stable_sort(pad_tiles.begin(), pad_tiles.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  pad_tile_key_.clear();
  pad_tile_off_.clear();
  pad_tile_block_.clear();
  for (std::size_t i = 0; i < pad_tiles.size(); ++i) {
    if (i == 0 || pad_tiles[i].first != pad_tiles[i - 1].first) {
      pad_tile_key_.push_back(pad_tiles[i].first);
      pad_tile_off_.push_back(static_cast<int>(pad_tile_block_.size()));
    }
    pad_tile_block_.push_back(pad_tiles[i].second);
  }
  pad_tile_off_.push_back(static_cast<int>(pad_tile_block_.size()));

  count_dedup_edges();

  // Resident-size estimate: the point of the dedup build is that this is
  // O(blocks + grid + patterns), independent of W × grid × fanout. The
  // template part is precomputed in RrPatternTemplates::build with the
  // same per-vector formulas, so the sum is byte-identical to the
  // pre-cache build (QoR-gated at 0% tolerance).
  std::int64_t bytes = tmpl_->bytes_est;
  bytes += static_cast<std::int64_t>(block_base_.size()) * 4;
  bytes += static_cast<std::int64_t>(clb_at_.size()) * 4;
  bytes += static_cast<std::int64_t>(pad_tile_key_.size()) * 8 +
           static_cast<std::int64_t>(pad_tile_off_.size()) * 4 +
           static_cast<std::int64_t>(pad_tile_block_.size()) * 4;
  bytes_est_ = bytes;
}

void RrGraph::count_dedup_edges() {
  // Switch-box edges: Σ over boundary classes legs(class) × positions ×
  // W — no per-wire work. Boundary classes along one axis collapse to at
  // most three (low edge, high edge, interior).
  struct C {
    int bits;
    std::int64_t cnt;
  };
  auto axis = [](int lo, int hi, int lo_bit, int hi_bit) {
    std::vector<C> cs;
    if (lo == hi) {
      cs.push_back({lo_bit | hi_bit, 1});
    } else {
      cs.push_back({lo_bit, 1});
      cs.push_back({hi_bit, 1});
      if (hi - lo > 1) cs.push_back({0, hi - lo - 1});
    }
    return cs;
  };
  n_edges_ = 0;
  int wire_patterns = 0;
  const auto cx_x = axis(1, nx_, 1, 2), cx_y = axis(0, ny_, 4, 8);
  for (const C& a : cx_x) {
    for (const C& b : cx_y) {
      n_edges_ += static_cast<std::int64_t>(
                      tmpl_->legs[1][a.bits | b.bits].size()) *
                  a.cnt * b.cnt * width_;
      ++wire_patterns;
    }
  }
  const auto cy_x = axis(0, nx_, 1, 2), cy_y = axis(1, ny_, 4, 8);
  for (const C& a : cy_x) {
    for (const C& b : cy_y) {
      n_edges_ += static_cast<std::int64_t>(
                      tmpl_->legs[0][a.bits | b.bits].size()) *
                  a.cnt * b.cnt * width_;
      ++wire_patterns;
    }
  }

  // Pin/tap edges per block kind.
  std::int64_t clb_in_taps = 0, clb_out = 0;
  for (const auto& v : tmpl_->clb_taps) clb_in_taps += static_cast<std::int64_t>(v.size());
  for (const auto& v : tmpl_->clb_opin_tracks) clb_out += static_cast<std::int64_t>(v.size());
  const auto& blocks = placement_->blocks();
  bool has_clb = false, has_in = false, has_out = false;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    switch (blocks[bi].kind) {
      case BlockKind::kClb:
        has_clb = true;
        n_edges_ += spec_->cluster_inputs() + clb_in_taps + clb_out;
        break;
      case BlockKind::kInputPad: {
        has_in = true;
        const int sub = placement_->location(static_cast<int>(bi)).sub;
        n_edges_ += static_cast<std::int64_t>(
            tmpl_->pad_out_tracks[static_cast<std::size_t>(sub)].size());
        break;
      }
      case BlockKind::kOutputPad: {
        has_out = true;
        const int sub = placement_->location(static_cast<int>(bi)).sub;
        n_edges_ += 1 + tmpl_->pad_in_count[static_cast<std::size_t>(sub)];
        break;
      }
    }
  }
  unique_patterns_ = wire_patterns + (has_clb ? 1 : 0) + (has_in ? 1 : 0) +
                     (has_out ? 1 : 0);
}

void RrGraph::append_wire_taps(bool horizontal, int x, int y, int t,
                               std::vector<int>* out) const {
  // Candidate adjacent blocks, emitted in ascending block order — the
  // dense build appends taps in its global block loop, so per wire the
  // tap edges sort by block id (and by pin within one block).
  struct Cand {
    int block;
    int side;  ///< 0..3 = CLB connection-box side, 4 = output pad
  };
  Cand cands[8];
  int n_cands = 0;
  auto add_clb = [&](int tx, int ty, int side) {
    const int b = clb_block_at(tx, ty);
    if (b >= 0) cands[n_cands++] = {b, side};
  };
  auto add_pads = [&](int tx, int ty) {
    const std::int64_t key =
        static_cast<std::int64_t>(tx) * (ny_ + 2) + ty;
    const auto it =
        std::lower_bound(pad_tile_key_.begin(), pad_tile_key_.end(), key);
    if (it == pad_tile_key_.end() || *it != key) return;
    const std::size_t ti =
        static_cast<std::size_t>(it - pad_tile_key_.begin());
    for (int i = pad_tile_off_[ti]; i < pad_tile_off_[ti + 1]; ++i) {
      const int b = pad_tile_block_[static_cast<std::size_t>(i)];
      if (placement_->blocks()[static_cast<std::size_t>(b)].kind !=
          BlockKind::kOutputPad) {
        continue;
      }
      const int sub = placement_->location(b).sub;
      if (tmpl_->pad_in_has[static_cast<std::size_t>(sub * width_ + t)]) {
        cands[n_cands++] = {b, 4};
      }
    }
  };
  if (horizontal) {
    if (y >= 1) add_clb(x, y, 1);
    if (y + 1 <= ny_) add_clb(x, y + 1, 0);
    if (y == 0) add_pads(x, 0);
    if (y == ny_) add_pads(x, ny_ + 1);
  } else {
    if (x + 1 <= nx_) add_clb(x + 1, y, 2);
    if (x >= 1) add_clb(x, y, 3);
    if (x == 0) add_pads(0, y);
    if (x == nx_) add_pads(nx_ + 1, y);
  }
  // Insertion sort over the (at most 4-entry) fixed array; std::sort on a
  // raw C array trips GCC's -Warray-bounds analysis here.
  for (int i = 1; i < n_cands; ++i) {
    const Cand c = cands[i];
    int j = i - 1;
    while (j >= 0 && cands[j].block > c.block) {
      cands[j + 1] = cands[j];
      --j;
    }
    cands[j + 1] = c;
  }
  for (int i = 0; i < n_cands; ++i) {
    const int base = block_base_[static_cast<std::size_t>(cands[i].block)];
    if (cands[i].side == 4) {
      out->push_back(base + 1);  // output-pad IPIN
    } else {
      for (int p :
           tmpl_->clb_taps[static_cast<std::size_t>(cands[i].side * width_ + t)]) {
        out->push_back(base + 1 + p);
      }
    }
  }
}

void RrGraph::append_out_edges_dedup(int id, std::vector<int>* out) const {
  bool horizontal;
  int x, y, t;
  if (decode_wire(id, &horizontal, &x, &y, &t)) {
    const int sig = wire_signature(horizontal, x, y);
    for (const Leg& leg : tmpl_->legs[horizontal ? 1 : 0][sig]) {
      out->push_back(chan_id(leg.horizontal, x + leg.dx, y + leg.dy, t));
    }
    append_wire_taps(horizontal, x, y, t, out);
    return;
  }
  const int bi = block_of_id(id);
  const int off = id - block_base_[static_cast<std::size_t>(bi)];
  const auto& blk = placement_->blocks()[static_cast<std::size_t>(bi)];
  const Loc& loc = placement_->location(bi);
  const int n_in = spec_->cluster_inputs();
  switch (blk.kind) {
    case BlockKind::kClb:
      if (off == 0) return;  // SINK
      if (off <= n_in) {     // IPIN → SINK
        out->push_back(block_base_[static_cast<std::size_t>(bi)]);
        return;
      }
      {
        const int p = off - 1 - n_in;  // OPIN
        const int side = (p + 1) % 4;
        for (int t2 : tmpl_->clb_opin_tracks[static_cast<std::size_t>(p)]) {
          out->push_back(adjacent_chan(loc.x, loc.y, side, t2));
        }
      }
      return;
    case BlockKind::kInputPad:
      for (int t2 : tmpl_->pad_out_tracks[static_cast<std::size_t>(loc.sub)]) {
        out->push_back(pad_wire(loc, t2));
      }
      return;
    case BlockKind::kOutputPad:
      if (off == 1) {  // IPIN → SINK
        out->push_back(block_base_[static_cast<std::size_t>(bi)]);
      }
      return;
  }
}

void RrGraph::append_out_edges(int id, std::vector<int>* out) const {
  if (dedup_) {
    append_out_edges_dedup(id, out);
    return;
  }
  const auto& e = nodes_[static_cast<std::size_t>(id)].out_edges;
  out->insert(out->end(), e.begin(), e.end());
}

bool RrGraph::has_edge(int from, int to) const {
  if (!dedup_) {
    const auto& e = nodes_[static_cast<std::size_t>(from)].out_edges;
    return std::find(e.begin(), e.end(), to) != e.end();
  }
  thread_local std::vector<int> scratch;
  scratch.clear();
  append_out_edges_dedup(from, &scratch);
  return std::find(scratch.begin(), scratch.end(), to) != scratch.end();
}

// ---------------------------------------------------- node attributes --

RrType RrGraph::node_type(int id) const {
  if (!dedup_) return nodes_[static_cast<std::size_t>(id)].type;
  if (id < chanx_total_) return RrType::kChanX;
  if (id < wire_count_) return RrType::kChanY;
  const int bi = block_of_id(id);
  const int off = id - block_base_[static_cast<std::size_t>(bi)];
  switch (placement_->blocks()[static_cast<std::size_t>(bi)].kind) {
    case BlockKind::kClb:
      if (off == 0) return RrType::kSink;
      return off <= spec_->cluster_inputs() ? RrType::kIpin : RrType::kOpin;
    case BlockKind::kInputPad:
      return RrType::kOpin;
    case BlockKind::kOutputPad:
      return off == 0 ? RrType::kSink : RrType::kIpin;
  }
  return RrType::kSink;
}

RrNode RrGraph::node_info(int id) const {
  if (!dedup_) {
    const RrNode& src = nodes_[static_cast<std::size_t>(id)];
    RrNode n;
    n.type = src.type;
    n.x = src.x;
    n.y = src.y;
    n.track = src.track;
    n.pin = src.pin;
    n.block = src.block;
    n.capacity = src.capacity;
    n.base_cost = src.base_cost;
    return n;  // out_edges left empty in both modes
  }
  RrNode n;
  n.type = RrType::kSink;  // overwritten below; pre-set for -Wmaybe-uninitialized
  bool horizontal;
  int x, y, t;
  if (decode_wire(id, &horizontal, &x, &y, &t)) {
    n.type = horizontal ? RrType::kChanX : RrType::kChanY;
    n.x = x;
    n.y = y;
    n.track = t;
    n.base_cost = 1.0;
    return n;
  }
  const int bi = block_of_id(id);
  const int off = id - block_base_[static_cast<std::size_t>(bi)];
  const Loc& loc = placement_->location(bi);
  n.x = loc.x;
  n.y = loc.y;
  n.block = bi;
  const int n_in = spec_->cluster_inputs();
  switch (placement_->blocks()[static_cast<std::size_t>(bi)].kind) {
    case BlockKind::kClb:
      if (off == 0) {
        n.type = RrType::kSink;
        n.capacity = n_in;
        n.base_cost = 0.0;
      } else if (off <= n_in) {
        n.type = RrType::kIpin;
        n.pin = off - 1;
        n.base_cost = 0.95;
      } else {
        n.type = RrType::kOpin;
        n.pin = off - 1 - n_in;
        n.base_cost = 1.0;
      }
      break;
    case BlockKind::kInputPad:
      n.type = RrType::kOpin;
      n.pin = loc.sub;
      n.base_cost = 1.0;
      break;
    case BlockKind::kOutputPad:
      if (off == 0) {
        n.type = RrType::kSink;
        n.capacity = 1;
        n.base_cost = 0.0;
      } else {
        n.type = RrType::kIpin;
        n.pin = loc.sub;
        n.base_cost = 0.95;
      }
      break;
  }
  return n;
}

int RrGraph::node_x(int id) const {
  if (!dedup_) return nodes_[static_cast<std::size_t>(id)].x;
  bool h;
  int x, y, t;
  if (decode_wire(id, &h, &x, &y, &t)) return x;
  return placement_->location(block_of_id(id)).x;
}

int RrGraph::node_y(int id) const {
  if (!dedup_) return nodes_[static_cast<std::size_t>(id)].y;
  bool h;
  int x, y, t;
  if (decode_wire(id, &h, &x, &y, &t)) return y;
  return placement_->location(block_of_id(id)).y;
}

int RrGraph::node_track(int id) const {
  if (!dedup_) return nodes_[static_cast<std::size_t>(id)].track;
  bool h;
  int x, y, t;
  if (decode_wire(id, &h, &x, &y, &t)) return t;
  return -1;
}

int RrGraph::node_pin(int id) const {
  if (!dedup_) return nodes_[static_cast<std::size_t>(id)].pin;
  return node_info(id).pin;
}

int RrGraph::node_block(int id) const {
  if (!dedup_) return nodes_[static_cast<std::size_t>(id)].block;
  if (id < wire_count_) return -1;
  return block_of_id(id);
}

int RrGraph::node_capacity(int id) const {
  if (!dedup_) return nodes_[static_cast<std::size_t>(id)].capacity;
  if (id < wire_count_) return 1;
  const int bi = block_of_id(id);
  const int off = id - block_base_[static_cast<std::size_t>(bi)];
  const auto kind = placement_->blocks()[static_cast<std::size_t>(bi)].kind;
  if (off == 0 && kind == BlockKind::kClb) return spec_->cluster_inputs();
  return 1;
}

double RrGraph::node_base_cost(int id) const {
  if (!dedup_) return nodes_[static_cast<std::size_t>(id)].base_cost;
  if (id < wire_count_) return 1.0;
  switch (node_type(id)) {
    case RrType::kSink: return 0.0;
    case RrType::kIpin: return 0.95;
    default: return 1.0;
  }
}

void RrGraph::fill_soa(std::vector<signed char>* type, std::vector<short>* x,
                       std::vector<short>* y, std::vector<short>* cap,
                       std::vector<double>* base_cost) const {
  const std::size_t nn = static_cast<std::size_t>(n_nodes_);
  if (type != nullptr) type->resize(nn);
  if (x != nullptr) x->resize(nn);
  if (y != nullptr) y->resize(nn);
  if (cap != nullptr) cap->resize(nn);
  if (base_cost != nullptr) base_cost->resize(nn);
  if (!dedup_) {
    for (std::size_t i = 0; i < nn; ++i) {
      const RrNode& n = nodes_[i];
      if (type != nullptr) (*type)[i] = static_cast<signed char>(n.type);
      if (x != nullptr) (*x)[i] = static_cast<short>(n.x);
      if (y != nullptr) (*y)[i] = static_cast<short>(n.y);
      if (cap != nullptr) (*cap)[i] = static_cast<short>(n.capacity);
      if (base_cost != nullptr) (*base_cost)[i] = n.base_cost;
    }
    return;
  }
  // Wires, written in id order (chanx y-major, then chany x-major).
  std::size_t i = 0;
  constexpr signed char kCx = static_cast<signed char>(RrType::kChanX);
  constexpr signed char kCy = static_cast<signed char>(RrType::kChanY);
  for (int wy = 0; wy <= ny_; ++wy) {
    for (int wx = 1; wx <= nx_; ++wx) {
      for (int t = 0; t < width_; ++t, ++i) {
        if (type != nullptr) (*type)[i] = kCx;
        if (x != nullptr) (*x)[i] = static_cast<short>(wx);
        if (y != nullptr) (*y)[i] = static_cast<short>(wy);
        if (cap != nullptr) (*cap)[i] = 1;
        if (base_cost != nullptr) (*base_cost)[i] = 1.0;
      }
    }
  }
  for (int wx = 0; wx <= nx_; ++wx) {
    for (int wy = 1; wy <= ny_; ++wy) {
      for (int t = 0; t < width_; ++t, ++i) {
        if (type != nullptr) (*type)[i] = kCy;
        if (x != nullptr) (*x)[i] = static_cast<short>(wx);
        if (y != nullptr) (*y)[i] = static_cast<short>(wy);
        if (cap != nullptr) (*cap)[i] = 1;
        if (base_cost != nullptr) (*base_cost)[i] = 1.0;
      }
    }
  }
  const auto& blocks = placement_->blocks();
  const int n_in = spec_->cluster_inputs();
  auto put = [&](std::size_t j, RrType ty, const Loc& loc, int capacity,
                 double bc) {
    if (type != nullptr) (*type)[j] = static_cast<signed char>(ty);
    if (x != nullptr) (*x)[j] = static_cast<short>(loc.x);
    if (y != nullptr) (*y)[j] = static_cast<short>(loc.y);
    if (cap != nullptr) (*cap)[j] = static_cast<short>(capacity);
    if (base_cost != nullptr) (*base_cost)[j] = bc;
  };
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const Loc& loc = placement_->location(static_cast<int>(bi));
    std::size_t j = static_cast<std::size_t>(block_base_[bi]);
    switch (blocks[bi].kind) {
      case BlockKind::kClb:
        put(j++, RrType::kSink, loc, n_in, 0.0);
        for (int p = 0; p < n_in; ++p) put(j++, RrType::kIpin, loc, 1, 0.95);
        for (int p = 0; p < spec_->n; ++p) {
          put(j++, RrType::kOpin, loc, 1, 1.0);
        }
        break;
      case BlockKind::kInputPad:
        put(j, RrType::kOpin, loc, 1, 1.0);
        break;
      case BlockKind::kOutputPad:
        put(j, RrType::kSink, loc, 1, 0.0);
        put(j + 1, RrType::kIpin, loc, 1, 0.95);
        break;
    }
  }
}

int RrGraph::find_chan(RrType type, int x, int y, int track) const {
  if (track < 0 || track >= width_) return -1;
  if (type == RrType::kChanX) {
    if (x < 1 || x > nx_ || y < 0 || y > ny_) return -1;
    return chanx_id(x, y, track);
  }
  if (type == RrType::kChanY) {
    if (x < 0 || x > nx_ || y < 1 || y > ny_) return -1;
    return chany_id(x, y, track);
  }
  return -1;
}

int RrGraph::find_block_node(int block, RrType type, int pin) const {
  if (block < 0 ||
      block >= static_cast<int>(placement_->blocks().size())) {
    return -1;
  }
  const int base = block_base_[static_cast<std::size_t>(block)];
  const Loc& loc = placement_->location(block);
  const int n_in = spec_->cluster_inputs();
  switch (placement_->blocks()[static_cast<std::size_t>(block)].kind) {
    case BlockKind::kClb:
      if (type == RrType::kSink && pin == -1) return base;
      if (type == RrType::kIpin && pin >= 0 && pin < n_in) {
        return base + 1 + pin;
      }
      if (type == RrType::kOpin && pin >= 0 && pin < spec_->n) {
        return base + 1 + n_in + pin;
      }
      return -1;
    case BlockKind::kInputPad:
      return (type == RrType::kOpin && pin == loc.sub) ? base : -1;
    case BlockKind::kOutputPad:
      if (type == RrType::kSink && pin == -1) return base;
      if (type == RrType::kIpin && pin == loc.sub) return base + 1;
      return -1;
  }
  return -1;
}

// ------------------------------------------------------- dense oracle --

void RrGraph::build_dense() {
  const Placement& pl = *placement_;
  const arch::ArchSpec& spec = *spec_;

  // Node count is known up front: wires for every channel position plus
  // pins per block. Reserving once keeps the build from repeatedly
  // moving RrNodes (each owns an edge vector) as nodes_ grows.
  nodes_.reserve(static_cast<std::size_t>(n_nodes_));

  auto add_node = [&](RrNode node) {
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size()) - 1;
  };

  // ---- wire nodes ----
  for (int y = 0; y <= ny_; ++y) {
    for (int x = 1; x <= nx_; ++x) {
      for (int t = 0; t < width_; ++t) {
        RrNode n;
        n.type = RrType::kChanX;
        n.x = x;
        n.y = y;
        n.track = t;
        n.base_cost = 1.0;
        n.out_edges.reserve(8);  // 6 switch-box legs + pin taps
        add_node(std::move(n));
      }
    }
  }
  for (int x = 0; x <= nx_; ++x) {
    for (int y = 1; y <= ny_; ++y) {
      for (int t = 0; t < width_; ++t) {
        RrNode n;
        n.type = RrType::kChanY;
        n.x = x;
        n.y = y;
        n.track = t;
        n.base_cost = 1.0;
        n.out_edges.reserve(8);  // 6 switch-box legs + pin taps
        add_node(std::move(n));
      }
    }
  }

  auto connect2 = [&](int a, int b) {
    nodes_[static_cast<std::size_t>(a)].out_edges.push_back(b);
    nodes_[static_cast<std::size_t>(b)].out_edges.push_back(a);
  };

  // ---- disjoint switch boxes (Fs = 3): same-track connections ----
  for (int x = 0; x <= nx_; ++x) {
    for (int y = 0; y <= ny_; ++y) {
      for (int t = 0; t < width_; ++t) {
        const int left = (x >= 1) ? chanx_id(x, y, t) : -1;
        const int right = (x + 1 <= nx_) ? chanx_id(x + 1, y, t) : -1;
        const int below = (y >= 1) ? chany_id(x, y, t) : -1;
        const int above = (y + 1 <= ny_) ? chany_id(x, y + 1, t) : -1;
        if (left >= 0 && right >= 0) connect2(left, right);
        if (below >= 0 && above >= 0) connect2(below, above);
        if (left >= 0 && below >= 0) connect2(left, below);
        if (left >= 0 && above >= 0) connect2(left, above);
        if (right >= 0 && below >= 0) connect2(right, below);
        if (right >= 0 && above >= 0) connect2(right, above);
      }
    }
  }

  // Track selection for a pin: a staggered Fc window.
  const int fc_in_tracks =
      std::max(1, static_cast<int>(std::lround(spec.fc_in * width_)));
  const int fc_out_tracks =
      std::max(1, static_cast<int>(std::lround(spec.fc_out * width_)));

  // ---- per-block pins ----
  const auto& blocks = pl.blocks();
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const auto& blk = blocks[bi];
    const Loc& loc = pl.location(static_cast<int>(bi));
    if (blk.kind == BlockKind::kClb) {
      const int n_in = spec.cluster_inputs();
      const int n_out = spec.n;
      // SINK (capacity I).
      RrNode sink;
      sink.type = RrType::kSink;
      sink.x = loc.x;
      sink.y = loc.y;
      sink.block = static_cast<int>(bi);
      sink.capacity = n_in;
      sink.base_cost = 0.0;
      const int sink_id = add_node(std::move(sink));
      // IPINs.
      for (int p = 0; p < n_in; ++p) {
        RrNode ipin;
        ipin.type = RrType::kIpin;
        ipin.x = loc.x;
        ipin.y = loc.y;
        ipin.pin = p;
        ipin.block = static_cast<int>(bi);
        ipin.base_cost = 0.95;
        const int ipin_id = add_node(std::move(ipin));
        nodes_[static_cast<std::size_t>(ipin_id)].out_edges.push_back(sink_id);
        const int side = p % 4;
        for (int t : pin_tracks(p, fc_in_tracks)) {
          const int wire = adjacent_chan(loc.x, loc.y, side, t);
          nodes_[static_cast<std::size_t>(wire)].out_edges.push_back(ipin_id);
        }
      }
      // OPINs.
      for (int p = 0; p < n_out; ++p) {
        RrNode opin;
        opin.type = RrType::kOpin;
        opin.x = loc.x;
        opin.y = loc.y;
        opin.pin = p;
        opin.block = static_cast<int>(bi);
        opin.base_cost = 1.0;
        const int opin_id = add_node(std::move(opin));
        const int side = (p + 1) % 4;
        for (int t : pin_tracks(p + n_in, fc_out_tracks)) {
          const int wire = adjacent_chan(loc.x, loc.y, side, t);
          nodes_[static_cast<std::size_t>(opin_id)].out_edges.push_back(wire);
        }
      }
    } else if (blk.kind == BlockKind::kInputPad) {
      RrNode opin;
      opin.type = RrType::kOpin;
      opin.x = loc.x;
      opin.y = loc.y;
      opin.pin = loc.sub;
      opin.block = static_cast<int>(bi);
      const int opin_id = add_node(std::move(opin));
      for (int t : pin_tracks(loc.sub, fc_out_tracks)) {
        nodes_[static_cast<std::size_t>(opin_id)].out_edges.push_back(
            pad_wire(loc, t));
      }
    } else {
      RrNode sink;
      sink.type = RrType::kSink;
      sink.x = loc.x;
      sink.y = loc.y;
      sink.block = static_cast<int>(bi);
      sink.capacity = 1;
      sink.base_cost = 0.0;
      const int sink_id = add_node(std::move(sink));
      RrNode ipin;
      ipin.type = RrType::kIpin;
      ipin.x = loc.x;
      ipin.y = loc.y;
      ipin.pin = loc.sub;
      ipin.block = static_cast<int>(bi);
      ipin.base_cost = 0.95;
      const int ipin_id = add_node(std::move(ipin));
      nodes_[static_cast<std::size_t>(ipin_id)].out_edges.push_back(sink_id);
      for (int t : pin_tracks(loc.sub, fc_in_tracks)) {
        nodes_[static_cast<std::size_t>(pad_wire(loc, t))].out_edges.push_back(
            ipin_id);
      }
    }
  }
  AMDREL_CHECK(static_cast<int>(nodes_.size()) == n_nodes_);

  n_edges_ = 0;
  std::int64_t bytes = 0;
  for (const auto& n : nodes_) {
    n_edges_ += static_cast<std::int64_t>(n.out_edges.size());
    bytes += static_cast<std::int64_t>(sizeof(RrNode)) +
             4 * static_cast<std::int64_t>(n.out_edges.capacity());
  }
  bytes_est_ = bytes;
  unique_patterns_ = 0;
}

void RrGraph::build_net_terminals() {
  const Placement& pl = *placement_;
  const auto& blocks = pl.blocks();
  const auto& nets = pl.nets();
  const int n_in = spec_->cluster_inputs();
  net_opin_.assign(nets.size(), -1);
  net_sinks_.assign(nets.size(), {});

  // Cluster output pin slot per signal: index within output_signals.
  for (std::size_t ni = 0; ni < nets.size(); ++ni) {
    const auto& net = nets[ni];
    const auto& src_blk = blocks[static_cast<std::size_t>(net.source)];
    const int src_base = block_base_[static_cast<std::size_t>(net.source)];
    if (src_blk.kind == BlockKind::kClb) {
      const auto& cluster =
          pl.packed().clusters()[static_cast<std::size_t>(src_blk.index)];
      // OPIN p is hard-wired to BLE slot p's output (matches the CLB
      // structure and the bitstream decoder's interpretation).
      int slot = -1;
      for (std::size_t k = 0; k < cluster.bles.size(); ++k) {
        const auto& ble =
            pl.packed().bles()[static_cast<std::size_t>(cluster.bles[k])];
        if (ble.output == net.signal) {
          slot = static_cast<int>(k);
          break;
        }
      }
      AMDREL_CHECK_MSG(slot >= 0, "net source not among cluster outputs");
      AMDREL_CHECK(slot < spec_->n);
      net_opin_[ni] = src_base + 1 + n_in + slot;
    } else {
      AMDREL_CHECK_MSG(src_blk.kind == BlockKind::kInputPad,
                       "net source is not a driver block");
      net_opin_[ni] = src_base;
    }
    for (int sink_blk : net.sinks) {
      if (sink_blk == net.source) continue;  // PI==PO degenerate
      const auto kind = blocks[static_cast<std::size_t>(sink_blk)].kind;
      AMDREL_CHECK_MSG(kind != BlockKind::kInputPad,
                       "sink block has no sink node");
      net_sinks_[ni].push_back(
          block_base_[static_cast<std::size_t>(sink_blk)]);
    }
  }

  bytes_est_ += static_cast<std::int64_t>(net_opin_.size()) * 4;
  for (const auto& v : net_sinks_) {
    bytes_est_ += 24 + 4 * static_cast<std::int64_t>(v.size());
  }
}

int RrGraph::opin_of_net(int net_index) const {
  return net_opin_[static_cast<std::size_t>(net_index)];
}

const std::vector<int>& RrGraph::sinks_of_net(int net_index) const {
  return net_sinks_[static_cast<std::size_t>(net_index)];
}

const std::vector<RrNode>& RrGraph::nodes() const {
  AMDREL_CHECK_MSG(!dedup_,
                   "RrGraph::nodes() requires the dense build "
                   "(RrOptions::dedup = false)");
  return nodes_;
}

std::string RrGraph::stats() const {
  int clbs = 0, outpads = 0;
  for (const auto& b : placement_->blocks()) {
    if (b.kind == BlockKind::kClb) ++clbs;
    else if (b.kind == BlockKind::kOutputPad) ++outpads;
  }
  const int sinks = clbs + outpads;
  const int pins = n_nodes_ - wire_count_ - sinks;
  return strprintf(
      "%d nodes (%d wires, %d pins, %d sinks), %lld edges, W=%d, %s, "
      "%d patterns, ~%lld KiB resident",
      n_nodes_, wire_count_, pins, sinks,
      static_cast<long long>(n_edges_), width_,
      dedup_ ? "dedup" : "dense", unique_patterns_,
      static_cast<long long>(bytes_est_ / 1024));
}

}  // namespace amdrel::route

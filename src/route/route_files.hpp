#pragma once
// VPR-style .place and .route text artifacts — the "Placement and routing
// file" the paper lists as DAGGER's input. Writers emit the classic
// formats; the .place reader allows re-loading a placement (e.g. for
// re-routing with a different channel width).

#include <iosfwd>
#include <string>

#include "route/pathfinder.hpp"

namespace amdrel::route {

/// Writes the placement in VPR 4.30 .place style:
///   netlist grid WxH
///   block_name  x  y  subblk  #index
void write_place_file(const place::Placement& placement, std::ostream& out);
std::string write_place_string(const place::Placement& placement);

/// Applies locations from a .place file onto a freshly built Placement
/// (matched by block name). Throws on unknown blocks or illegal spots.
void read_place_file(std::istream& in, place::Placement* placement,
                     const std::string& filename = "<place>");
void read_place_string(const std::string& text, place::Placement* placement);

/// Writes the routing in VPR .route style: one block per net with the
/// sequence of RR nodes (OPIN/CHANX/CHANY/IPIN/SINK with coordinates).
void write_route_file(const RrGraph& graph, const place::Placement& placement,
                      const RouteResult& routing, std::ostream& out);
std::string write_route_string(const RrGraph& graph,
                               const place::Placement& placement,
                               const RouteResult& routing);

}  // namespace amdrel::route

#pragma once
// Staged execution of the Fig. 11 tool chain: the paper's GUI exposes the
// flow as six stage buttons, and FlowSession is that surface as a library
// API. A session owns the stage artifacts (the fields of FlowResult) and
// runs the pipeline stage by stage, so a caller can stop after packing,
// inspect or dump the intermediate netlists, resume later, and abort a
// runaway minimum-channel-width search cooperatively.
//
// Determinism contract: a session run in any number of run_until/resume
// steps produces results bit-identical to the one-shot wrappers in
// flow/flow.hpp (same seed → same bitstream bytes, same stats). No state
// crosses stage boundaries except through FlowResult, and every stage is
// deterministic given FlowOptions.
//
// Observability: each executed stage is wrapped in an obs span named
// "flow.<stage>" carrying wall_s / peak_rss_kb metrics, and the hot
// kernels underneath emit their own spans and points (DESIGN.md §8).

#include <atomic>
#include <optional>
#include <string>

#include "eco/eco.hpp"
#include "flow/flow.hpp"
#include "obs/obs.hpp"

namespace amdrel::flow {

/// Lifecycle of a FlowSession.
enum class SessionState {
  kReady,      ///< stages remain and the session can run
  kCancelled,  ///< a cancel() request stopped the run; run_until resumes
  kFailed,     ///< a stage threw; the session is frozen at that stage
  kDone,       ///< all stages through kBitgen completed
};

struct JobSpec;  // flow/jobspec.hpp

class FlowSession {
 public:
  /// The unified entry point: one serializable job description (see
  /// flow/jobspec.hpp) resolved to whichever source it carries — inline
  /// BLIF/VHDL text, a design file, or a bench_gen circuit — with
  /// spec.arch_text (when set) parsed into the session's options. The
  /// daemon, CLI, benches and tests all construct sessions this way;
  /// the two constructors below are the underlying source-specific
  /// entries. Throws on an unresolvable source. Run with
  /// run_until(spec.until).
  explicit FlowSession(const JobSpec& spec);

  /// Network/BLIF entry point: stage kSynth records `network` as the
  /// synthesized design (the network is copied; the reference need not
  /// outlive the constructor).
  explicit FlowSession(const netlist::Network& network,
                       const FlowOptions& options = {});

  /// VHDL entry point: stage kSynth parses + synthesizes (DIVINER) and
  /// round-trips through EDIF (DRUID/E2FMT), with the usual equivalence
  /// check when options.verify_mode is not kOff.
  FlowSession(std::string vhdl_source, std::string top,
              const FlowOptions& options = {});

  FlowSession(const FlowSession&) = delete;
  FlowSession& operator=(const FlowSession&) = delete;

  /// Runs every pending stage up to and including `last`. Returns the
  /// session state afterwards: kDone / kReady on success, kCancelled if a
  /// cancel() request was observed (the request is consumed — calling
  /// run_until/resume again continues from the last completed stage).
  /// A stage failure marks the session kFailed and rethrows the stage's
  /// exception with the failing stage name and the per-stage wall times
  /// appended to the message (the exception type is preserved for the
  /// framework's Error hierarchy).
  SessionState run_until(Stage last);

  /// Runs every remaining stage: run_until(Stage::kBitgen).
  SessionState resume() { return run_until(Stage::kBitgen); }

  /// ECO: incrementally recompiles an edited entry network against this
  /// session's completed artifacts (requires state() == kDone; see
  /// src/eco). On success the session's artifacts are replaced by the
  /// edited design's implementation, the recompiled bitstream is proven
  /// equivalent to `edited` per options().verify_mode, and kDone is
  /// returned; eco_stats()/eco_metrics() report what was reused. On a
  /// cancel() the attempt is discarded and kCancelled is returned with
  /// the session unchanged (still kDone, base artifacts intact); a
  /// verification or stage failure also leaves the base artifacts intact
  /// and rethrows.
  SessionState resume_with_edit(const netlist::Network& edited,
                                eco::EcoStats* stats_out = nullptr);

  /// Requests cooperative cancellation. Safe to call from any thread (and
  /// from an obs::Sink callback). The running stage stops at its next
  /// cancellation point — between stages, per PathFinder iteration, and
  /// per min-W probe — discarding only the interrupted stage's partial
  /// work, so the session stays well-formed and resumable. A request that
  /// lands after the last cancellation point of the final requested stage
  /// is still observed: run_until reports kCancelled at exit (the work is
  /// complete — completed() shows it — and resume() continues normally).
  /// The release store pairs with the acquire exchanges in run_until, so
  /// writes made by the cancelling thread before cancel() are visible to
  /// the flow thread when it observes the request.
  void cancel() { cancel_requested_.store(true, std::memory_order_release); }

  SessionState state() const { return state_; }
  /// The next stage run_until would execute (nullopt once kDone).
  std::optional<Stage> next_stage() const;
  /// True when `stage` has completed in this session.
  bool completed(Stage stage) const {
    return static_cast<int>(stage) < next_;
  }
  const StageMetrics& metrics(Stage stage) const {
    return result_.metrics(stage);
  }
  /// Wall time / counters of the last resume_with_edit call (ran == false
  /// until one completes), and its reuse statistics.
  const StageMetrics& eco_metrics() const { return eco_metrics_; }
  const eco::EcoStats& eco_stats() const { return eco_stats_; }

  const FlowOptions& options() const { return options_; }

  /// Attaches a job-scoped trace context (obs::TraceContext) the session
  /// carries onto whichever thread executes run_until / resume /
  /// resume_with_edit: the context is installed for the duration of the
  /// call (obs::ScopedContext), so every stage span and kernel point the
  /// run emits lands in the context's sink tagged with its trace id —
  /// falling back to the process-global sink when null (the default, and
  /// the unchanged standalone-CLI behavior). The context is borrowed: it
  /// must outlive the session or be cleared before it is destroyed. The
  /// compile daemon installs one context per job so 64-way concurrent
  /// jobs each write their own attributable trace (DESIGN.md §8.1).
  void set_trace_context(const obs::TraceContext* ctx) { trace_ctx_ = ctx; }
  const obs::TraceContext* trace_context() const { return trace_ctx_; }

  /// The stage artifacts produced so far. Fields owned by stages that have
  /// not run yet are default-initialized (null unique_ptrs, empty stats).
  const FlowResult& result() const { return result_; }
  /// Moves the artifacts out (the terminal operation of the one-shot
  /// wrappers). The session must not be used afterwards.
  FlowResult take_result() { return std::move(result_); }

 private:
  void add_qor_span_metrics(Stage stage, obs::Span& span) const;
  /// Equivalence barrier between a reference network and a stage's result,
  /// honoring options_.verify_mode. `legacy_random_point` marks the three
  /// historical random-vector check sites (EDIF round-trip, LUT mapping,
  /// bitstream decode), which are the only ones kRandom runs; the formal
  /// modes verify every call site. Throws InfeasibleError on a proven
  /// mismatch (with the counterexample) and Error when the formal proof
  /// is inconclusive within budget. SAT effort lands on the registry's
  /// verify.* counters, so it folds into the stage's StageMetrics.
  /// `register_map`, when non-empty, pins the sequential matching
  /// (flow::fabric_register_map) — required for fabric-decode hand-offs
  /// on designs with enough identical-signature FFs to defeat guessing.
  void verify_handoff(
      const std::string& handoff, const netlist::Network& ref,
      const netlist::Network& impl, bool legacy_random_point,
      const std::vector<std::pair<std::string, std::string>>& register_map =
          {});
  void run_stage(Stage stage);
  void run_synth();
  void run_map();
  void run_pack();
  void run_place();
  void run_route();
  void run_power();
  void run_bitgen();
  /// "stage 'route' failed (synth 0.001s, ..., route 0.84s): " prefix for
  /// rethrown stage errors.
  std::string stage_context(Stage stage) const;

  FlowOptions options_;
  FlowResult result_;
  std::string vhdl_source_;  ///< VHDL entry only
  std::string top_;          ///< VHDL entry only
  netlist::Network entry_network_;  ///< network entry only
  bool from_vhdl_ = false;

  int next_ = 0;  ///< index of the next stage to run
  SessionState state_ = SessionState::kReady;
  std::atomic<bool> cancel_requested_{false};
  const obs::TraceContext* trace_ctx_ = nullptr;  ///< borrowed, may be null
  StageMetrics eco_metrics_;
  eco::EcoStats eco_stats_;
};

}  // namespace amdrel::flow

#pragma once
// flow::JobSpec — one serializable description of a compile job.
//
// Before this existed, "what to run" was smeared across three places:
// FlowOptions (the library knobs), per-binary CLI flag loops
// (--verify/--seed/--rr-dedup/--trace/--metrics/--threads copied into
// amdrel_cli and every bench), and the input source (a Network reference
// or VHDL string picked by constructor overload). A JobSpec consolidates
// all of it into one first-class struct with a JSON round-trip, so the
// amdrel_serve daemon, amdrel_cli, the benches and the tests share a
// single entry-point contract: build a JobSpec, hand it to
// FlowSession(JobSpec), run_until(spec.until).
//
// The JSON schema (DESIGN.md §13.2) mirrors the struct field-for-field;
// job_spec_from_json rejects unknown keys so client typos fail loudly
// instead of silently compiling the wrong thing.

#include <string>

#include "bench_gen/bench_gen.hpp"
#include "flow/flow.hpp"
#include "obs/obs.hpp"
#include "util/json.hpp"

namespace amdrel::flow {

/// Scheduling class of a job in the amdrel_serve priority queue.
enum class JobPriority : int { kLow = 0, kNormal = 1, kHigh = 2 };
const char* job_priority_name(JobPriority priority);
JobPriority parse_job_priority(const std::string& name);

struct JobSpec {
  // ---- identity / scheduling (consumed by amdrel_serve) ----
  std::string label;  ///< client-chosen job label, echoed in replies
  JobPriority priority = JobPriority::kNormal;

  // ---- input source (exactly one kind) ----
  enum class Source : int {
    kNone = 0,  ///< invalid — a runnable spec must pick a source
    kBlif,      ///< `text` holds BLIF
    kVhdl,      ///< `text` holds VHDL; `top` names the entity
    kFile,      ///< `path` names a design file, loaded by extension
    kBenchGen,  ///< `bench` (+ `bench_edits`) generates the circuit
  };
  Source source = Source::kNone;
  std::string text;  ///< inline design text (kBlif / kVhdl)
  std::string path;  ///< design path: .vhd/.vhdl/.edif/.bit/BLIF (kFile)
  std::string top = "top";     ///< VHDL top entity (kVhdl / .vhd files)
  bench_gen::BenchSpec bench;  ///< kBenchGen generator parameters
  int bench_edits = 0;  ///< perturb the generated circuit (ECO workloads)

  // ---- what to run ----
  Stage until = Stage::kBitgen;  ///< last stage to execute
  FlowOptions options;           ///< the library knobs, unchanged

  /// Architecture as DUTYS text; when non-empty it is parsed into
  /// options.arch before the run (amdrel_serve caches the elaborated
  /// ArchSpec keyed on this text, so concurrent jobs share one copy).
  std::string arch_text;

  // ---- result shaping (serve protocol) ----
  bool return_bitstream = false;  ///< include bitstream hex in the reply

  /// True when a source has been chosen (the spec can be run).
  bool runnable() const { return source != Source::kNone; }
};

/// JSON ⇄ JobSpec. from_json throws Error on unknown keys, type
/// mismatches, or out-of-range values; only "source" is mandatory
/// (everything else defaults as the struct does).
JobSpec job_spec_from_json(const util::Json& json);
JobSpec parse_job_spec_json(const std::string& text);
util::Json job_spec_to_json(const JobSpec& spec);

/// Materializes the entry network of a non-VHDL spec: parses inline
/// BLIF, loads `path` by extension, or runs bench_gen (+ perturb).
/// kVhdl specs go through FlowSession's VHDL path instead (the EDIF
/// round-trip is part of the synth stage); calling this on one throws.
netlist::Network resolve_job_network(const JobSpec& spec);

/// FNV-1a 64-bit of a byte buffer as 16 lowercase hex digits — the
/// bitstream fingerprint in serve replies and `amdrel_cli job` output
/// (same constants as bitgen::HashSink, so a streamed hash matches).
std::string fnv1a64_hex(const std::vector<std::uint8_t>& bytes);

/// The shared job-result payload of the serve protocol (`result` reply)
/// and `amdrel_cli job`: executed-stage metrics (wall_s / peak_rss_kb /
/// counter deltas), the QoR summary, and — when bitgen ran — the
/// bitstream fingerprint plus hex bytes when spec.return_bitstream.
util::Json job_result_to_json(const JobSpec& spec, const FlowResult& result);

// ---------------------------------------------------------------------
// Shared command-line layer: every binary (amdrel_cli, amdrel_serve,
// all benches) strips the same flags with the same spellings, instead
// of the per-binary copies this replaced.

/// Process-level runtime settings that are not part of the job itself.
struct JobRuntime {
  std::string trace;    ///< --trace FILE: obs JSONL trace
  std::string metrics;  ///< --metrics FILE: registry snapshot on exit
  bool progress = false;  ///< --progress: TextSink spans on stderr
  int threads = 0;        ///< --threads N (0 = hardware concurrency)
  bool dense_mna = false;  ///< --dense: dense MNA oracle (SPICE benches)
};

/// A parsed command line: the job description plus runtime settings.
struct JobSpecCli {
  JobSpec spec;
  JobRuntime runtime;
  /// True when --verify / --seed was given explicitly — lets a driver
  /// with a different default (e.g. flow_qor verifies 'both') keep it
  /// unless the user overrode.
  bool verify_given = false;
  bool seed_given = false;
};

/// Strips every shared flag out of argv (compacting it in place, argv[0]
/// untouched) and returns the parsed result. Flags handled here:
///   --trace FILE --progress --metrics FILE --threads N --dense
///   --rr-dedup --rr-dense --verify MODE --seed N
///   --priority low|normal|high --until STAGE
/// Anything unrecognised stays in argv for the caller (positional
/// arguments, binary-specific flags). Throws Error on malformed values.
JobSpecCli parse_job_spec(int* argc, char** argv);

/// Attaches the sink requested by --trace / --progress for the guard's
/// lifetime (--trace wins when both are present; one sink per process).
obs::ScopedSink install_runtime_trace(const JobRuntime& runtime);

/// Writes the --metrics registry snapshot when the guard leaves scope
/// (normal or error exit); no-op when the flag was not given.
struct RuntimeMetricsGuard {
  std::string path;
  RuntimeMetricsGuard() = default;
  explicit RuntimeMetricsGuard(const JobRuntime& runtime)
      : path(runtime.metrics) {}
  ~RuntimeMetricsGuard();
};

}  // namespace amdrel::flow

#pragma once
// The complete design flow of the paper's Fig. 11 (and the six GUI stages
// of Fig. 12), as a library: VHDL → synthesis (DIVINER) → EDIF →
// DRUID/E2FMT → BLIF → SIS-role optimization + LUT mapping → T-VPack
// packing → DUTYS architecture → VPR-role place & route → PowerModel →
// DAGGER bitstream, with equivalence verification at each handoff.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "arch/arch.hpp"
#include "bitgen/bitstream.hpp"
#include "lint/lint.hpp"
#include "util/error.hpp"
#include "netlist/network.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "power/power.hpp"
#include "route/pathfinder.hpp"
#include "route/rr_graph.hpp"
#include "synth/lutmap.hpp"
#include "timing/timing.hpp"

namespace amdrel::flow {

/// The stages of the Fig. 11 tool chain, in execution order. `kSynth`
/// covers VHDL parsing + DIVINER synthesis + the EDIF round-trip (for a
/// network/BLIF entry point it just records the input network); `kPower`
/// covers the PowerModel and static timing analysis, which run after P&R.
enum class Stage : int {
  kSynth = 0,
  kMap,
  kPack,
  kPlace,
  kRoute,
  kPower,
  kBitgen,
};
inline constexpr int kNumStages = 7;

/// Short lower-case stage name ("synth", "map", ..., "bitgen").
const char* stage_name(Stage stage);
/// Parses a stage name ("synth" ... "bitgen"); throws Error otherwise.
Stage parse_stage(const std::string& name);

/// A FlowSession stage threw: the failing stage travels as a
/// machine-readable enum (stage()) so services can report structured
/// errors, in addition to the historical name-prefixed message. Thrown
/// by FlowSession::run_until; derives from Error so existing handlers
/// keep working unchanged.
class StageError : public Error {
 public:
  StageError(Stage stage, const std::string& what)
      : Error(what), stage_(stage) {}
  Stage stage() const { return stage_; }

 private:
  Stage stage_;
};

/// Stage-enum-carrying variant of InfeasibleError (lint barrier hits,
/// unroutable designs, proven equivalence failures), the same way.
class StageInfeasibleError : public InfeasibleError {
 public:
  StageInfeasibleError(Stage stage, const std::string& what)
      : InfeasibleError(what), stage_(stage) {}
  Stage stage() const { return stage_; }

 private:
  Stage stage_;
};

/// Wall time, memory footprint and work counters of one executed stage.
struct StageMetrics {
  bool ran = false;       ///< stage executed to completion
  double wall_s = 0.0;    ///< stage wall-clock time [s]
  long peak_rss_kb = 0;   ///< process peak RSS when the stage finished [kB]
  /// Metrics-registry counter deltas attributed to this stage (name →
  /// increment while the stage ran), name-sorted; only counters that
  /// actually moved are recorded. See obs/metrics.hpp.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  /// Delta for one registry counter (0 when the stage did not bump it).
  std::uint64_t counter(const std::string& name) const {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    return 0;
  }
};

/// How stage hand-offs are equivalence-verified (FlowOptions::verify_mode).
enum class VerifyMode : int {
  kOff = 0,  ///< no equivalence checking
  kRandom,   ///< random-vector simulation at the legacy check points
  kFormal,   ///< SAT-based proof of all seven hand-offs (src/verify)
  kBoth,     ///< random vectors plus the formal proof
};
/// Lower-case mode name ("off", "random", "formal", "both").
const char* verify_mode_name(VerifyMode mode);
/// Parses a verify mode name; throws Error on anything else.
VerifyMode parse_verify_mode(const std::string& name);

struct FlowOptions {
  arch::ArchSpec arch;
  std::uint64_t seed = 1;
  /// Equivalence verification at stage hand-offs. kRandom (the default)
  /// runs the fast random-vector checks at the legacy points (EDIF
  /// round-trip, LUT mapping, bitstream decode). kFormal / kBoth prove
  /// every hand-off — synth round-trip, mapping, packing, placement,
  /// routing (via an in-memory fabric decode), power-analysis inputs and
  /// the final bitstream — with the SAT-based checker in src/verify.
  VerifyMode verify_mode = VerifyMode::kRandom;
  std::uint64_t verify_seed = 1;      ///< seeds random vectors + SAT sweeps
  double verify_time_limit_s = 60.0;  ///< formal wall budget per hand-off
  /// Run the lint/invariant barriers after every stage (netlist lint on
  /// the mapped design, RR-graph lint, post-pack/place/route/bitgen
  /// checks). Error-severity findings abort the flow with an
  /// InfeasibleError carrying the full report; warnings accumulate in
  /// FlowResult::lint.
  bool check_invariants = true;
  bool search_min_channel_width = false;
  /// Tile-pattern deduplicated RR graph (O(patterns) memory; the
  /// default). false rebuilds the dense per-node oracle representation.
  bool rr_dedup = true;
  power::PowerOptions power;
  /// Write per-stage artifacts (EDIF/BLIF/net/arch/bitstream) here if set.
  std::string artifact_dir;
};

/// Everything the flow produced; stages mirror the GUI's six steps.
struct FlowResult {
  /// The architecture the design was implemented on. Heap-held because
  /// the packed netlist, placement and RR graph reference it — it must
  /// outlive them and stay at a stable address across moves.
  std::unique_ptr<arch::ArchSpec> arch;
  // Stage 2: synthesis.
  netlist::Network synthesized;     ///< gate-level network (DIVINER)
  // Stage 3: format translation + LUT mapping. Heap-held: the packed
  // netlist (and everything downstream) keeps pointers into it, so its
  // address must survive moves of this result object.
  std::unique_ptr<netlist::Network> mapped;  ///< K-LUT network
  synth::LutMapStats map_stats;
  // Stage 5a: packing.
  std::unique_ptr<pack::PackedNetlist> packed;
  // Stage 5b: placement.
  std::unique_ptr<place::Placement> placement;
  place::Placement::AnnealStats place_stats;
  // Stage 5c: routing.
  std::unique_ptr<route::RrGraph> rr_graph;
  route::RouteResult routing;
  int channel_width = 0;
  // Stage 4 (runs after P&R in practice): power estimation.
  power::PowerReport power;
  // Timing.
  timing::TimingReport timing;
  // Stage 6: FPGA programming file.
  bitgen::Bitstream bitstream;
  std::vector<std::uint8_t> bitstream_bytes;
  /// Diagnostics from the per-stage lint barriers (check_invariants).
  lint::Report lint;
  /// Wall time / peak RSS per executed stage, indexed by Stage.
  std::array<StageMetrics, kNumStages> stage_metrics{};

  const StageMetrics& metrics(Stage stage) const {
    return stage_metrics[static_cast<std::size_t>(stage)];
  }

  std::string report() const;  ///< multi-line human-readable summary
};

/// DEPRECATED: construct a flow::JobSpec and run it through
/// flow::FlowSession (flow/jobspec.hpp) — the daemon, CLI and tests all
/// share that one entry-point contract. Kept as a thin wrapper over
/// FlowSession(JobSpec) for source compatibility; a one-shot run and a
/// staged run with the same options and seed produce bit-identical
/// results.
FlowResult run_flow_from_vhdl(const std::string& vhdl_source,
                              const std::string& top,
                              const FlowOptions& options = {});

/// DEPRECATED: thin wrapper over FlowSession(JobSpec) for the BLIF /
/// network entry point, like run_flow_from_vhdl.
FlowResult run_flow_from_network(const netlist::Network& network,
                                 const FlowOptions& options = {});

/// Ground-truth register correspondence between the mapped netlist and
/// the decoded fabric: packing pins each FF to a BLE slot, placement
/// pins the cluster to a tile, and those coordinates are exactly the
/// name the fabric decoder gives the FF's Q output ("clbX_Y_bS"). Feed
/// to verify::EquivOptions::register_map so sequential matching against
/// bitgen::decode_to_network output is pinned instead of guessed.
/// Requires result.mapped / result.packed / result.placement.
std::vector<std::pair<std::string, std::string>> fabric_register_map(
    const netlist::Network& mapped, const pack::PackedNetlist& packed,
    const place::Placement& placement);
std::vector<std::pair<std::string, std::string>> fabric_register_map(
    const FlowResult& result);

}  // namespace amdrel::flow

#include "flow/jobspec.hpp"

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "bitgen/bitstream.hpp"
#include "netlist/blif.hpp"
#include "netlist/edif.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "vhdl/synth.hpp"

namespace amdrel::flow {

namespace {

const char* kSourceNames[] = {"none", "blif", "vhdl", "file", "bench_gen"};

const char* source_name(JobSpec::Source source) {
  return kSourceNames[static_cast<int>(source)];
}

JobSpec::Source parse_source(const std::string& name) {
  if (name == "blif") return JobSpec::Source::kBlif;
  if (name == "vhdl") return JobSpec::Source::kVhdl;
  if (name == "file") return JobSpec::Source::kFile;
  if (name == "bench_gen") return JobSpec::Source::kBenchGen;
  throw Error("unknown job source '" + name +
              "' (expected blif, vhdl, file or bench_gen)");
}

std::vector<std::uint8_t> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open: " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

int checked_int(const util::Json& v, const char* what) {
  const std::int64_t i = v.as_int();
  if (i < INT32_MIN || i > INT32_MAX) {
    throw Error(std::string(what) + ": out of int range");
  }
  return static_cast<int>(i);
}

std::uint64_t checked_u64(const util::Json& v, const char* what) {
  const std::int64_t i = v.as_int();
  if (i < 0) throw Error(std::string(what) + ": must be non-negative");
  return static_cast<std::uint64_t>(i);
}

bench_gen::BenchSpec bench_from_json(const util::Json& json) {
  bench_gen::BenchSpec spec;
  for (const std::string& key : json.keys()) {
    const util::Json& v = json.at(key);
    if (key == "name") spec.name = v.as_string();
    else if (key == "gates") spec.n_gates = checked_int(v, "bench.gates");
    else if (key == "latches") spec.n_latches = checked_int(v, "bench.latches");
    else if (key == "inputs") spec.n_inputs = checked_int(v, "bench.inputs");
    else if (key == "outputs") spec.n_outputs = checked_int(v, "bench.outputs");
    else if (key == "locality") spec.locality = v.as_number();
    else if (key == "window") spec.window = checked_int(v, "bench.window");
    else if (key == "seed") spec.seed = checked_u64(v, "bench.seed");
    else throw Error("job spec: unknown bench key '" + key + "'");
  }
  return spec;
}

util::Json bench_to_json(const bench_gen::BenchSpec& spec) {
  util::Json obj = util::Json::make_object();
  obj.set("name", spec.name);
  obj.set("gates", spec.n_gates);
  obj.set("latches", spec.n_latches);
  obj.set("inputs", spec.n_inputs);
  obj.set("outputs", spec.n_outputs);
  obj.set("locality", util::Json::make_number(spec.locality));
  obj.set("window", spec.window);
  obj.set("seed", spec.seed);
  return obj;
}

void options_from_json(const util::Json& json, FlowOptions* options) {
  for (const std::string& key : json.keys()) {
    const util::Json& v = json.at(key);
    if (key == "seed") options->seed = checked_u64(v, "options.seed");
    else if (key == "verify") options->verify_mode = parse_verify_mode(v.as_string());
    else if (key == "verify_seed") options->verify_seed = checked_u64(v, "options.verify_seed");
    else if (key == "verify_time_limit_s") options->verify_time_limit_s = v.as_number();
    else if (key == "check_invariants") options->check_invariants = v.as_bool();
    else if (key == "search_min_channel_width") options->search_min_channel_width = v.as_bool();
    else if (key == "rr_dedup") options->rr_dedup = v.as_bool();
    else if (key == "artifact_dir") options->artifact_dir = v.as_string();
    else throw Error("job spec: unknown options key '" + key + "'");
  }
}

util::Json options_to_json(const FlowOptions& options) {
  util::Json obj = util::Json::make_object();
  obj.set("seed", options.seed);
  obj.set("verify", verify_mode_name(options.verify_mode));
  obj.set("verify_seed", options.verify_seed);
  obj.set("verify_time_limit_s",
          util::Json::make_number(options.verify_time_limit_s));
  obj.set("check_invariants", options.check_invariants);
  obj.set("search_min_channel_width", options.search_min_channel_width);
  obj.set("rr_dedup", options.rr_dedup);
  if (!options.artifact_dir.empty()) {
    obj.set("artifact_dir", options.artifact_dir);
  }
  return obj;
}

}  // namespace

const char* job_priority_name(JobPriority priority) {
  switch (priority) {
    case JobPriority::kLow: return "low";
    case JobPriority::kNormal: return "normal";
    case JobPriority::kHigh: return "high";
  }
  return "?";
}

JobPriority parse_job_priority(const std::string& name) {
  if (name == "low") return JobPriority::kLow;
  if (name == "normal") return JobPriority::kNormal;
  if (name == "high") return JobPriority::kHigh;
  throw Error("unknown job priority '" + name +
              "' (expected low, normal or high)");
}

JobSpec job_spec_from_json(const util::Json& json) {
  if (!json.is_object()) throw Error("job spec: expected a JSON object");
  JobSpec spec;
  for (const std::string& key : json.keys()) {
    const util::Json& v = json.at(key);
    if (key == "label") spec.label = v.as_string();
    else if (key == "priority") spec.priority = parse_job_priority(v.as_string());
    else if (key == "source") spec.source = parse_source(v.as_string());
    else if (key == "text") spec.text = v.as_string();
    else if (key == "path") spec.path = v.as_string();
    else if (key == "top") spec.top = v.as_string();
    else if (key == "bench") spec.bench = bench_from_json(v);
    else if (key == "bench_edits") spec.bench_edits = checked_int(v, "bench_edits");
    else if (key == "until") spec.until = parse_stage(v.as_string());
    else if (key == "options") options_from_json(v, &spec.options);
    else if (key == "arch") spec.arch_text = v.as_string();
    else if (key == "return_bitstream") spec.return_bitstream = v.as_bool();
    else throw Error("job spec: unknown key '" + key + "'");
  }
  if (!spec.runnable()) throw Error("job spec: missing 'source'");
  switch (spec.source) {
    case JobSpec::Source::kBlif:
    case JobSpec::Source::kVhdl:
      if (spec.text.empty()) {
        throw Error(strprintf("job spec: source '%s' needs 'text'",
                              source_name(spec.source)));
      }
      break;
    case JobSpec::Source::kFile:
      if (spec.path.empty()) throw Error("job spec: source 'file' needs 'path'");
      break;
    case JobSpec::Source::kBenchGen:
    case JobSpec::Source::kNone:
      break;
  }
  return spec;
}

JobSpec parse_job_spec_json(const std::string& text) {
  return job_spec_from_json(util::parse_json(text));
}

util::Json job_spec_to_json(const JobSpec& spec) {
  util::Json obj = util::Json::make_object();
  if (!spec.label.empty()) obj.set("label", spec.label);
  obj.set("priority", job_priority_name(spec.priority));
  obj.set("source", source_name(spec.source));
  switch (spec.source) {
    case JobSpec::Source::kBlif:
      obj.set("text", spec.text);
      break;
    case JobSpec::Source::kVhdl:
      obj.set("text", spec.text);
      obj.set("top", spec.top);
      break;
    case JobSpec::Source::kFile:
      obj.set("path", spec.path);
      obj.set("top", spec.top);
      break;
    case JobSpec::Source::kBenchGen:
      obj.set("bench", bench_to_json(spec.bench));
      if (spec.bench_edits > 0) obj.set("bench_edits", spec.bench_edits);
      break;
    case JobSpec::Source::kNone:
      break;
  }
  obj.set("until", stage_name(spec.until));
  obj.set("options", options_to_json(spec.options));
  if (!spec.arch_text.empty()) obj.set("arch", spec.arch_text);
  if (spec.return_bitstream) obj.set("return_bitstream", true);
  return obj;
}

netlist::Network resolve_job_network(const JobSpec& spec) {
  switch (spec.source) {
    case JobSpec::Source::kBlif:
      return netlist::read_blif_string(spec.text);
    case JobSpec::Source::kVhdl:
      throw Error(
          "resolve_job_network: VHDL sources synthesize inside the flow's "
          "synth stage (construct a FlowSession from the JobSpec instead)");
    case JobSpec::Source::kFile: {
      const std::string& path = spec.path;
      if (ends_with(path, ".vhd") || ends_with(path, ".vhdl")) {
        throw Error(
            "resolve_job_network: VHDL sources synthesize inside the "
            "flow's synth stage (construct a FlowSession instead)");
      }
      if (ends_with(path, ".edif")) return netlist::read_edif_file(path);
      if (ends_with(path, ".bit")) {
        return bitgen::decode_to_network(
            bitgen::deserialize(read_binary_file(path)));
      }
      return netlist::read_blif_file(path);
    }
    case JobSpec::Source::kBenchGen: {
      netlist::Network net = bench_gen::generate(spec.bench);
      if (spec.bench_edits > 0) {
        // The CLI's historical --edit split: a third of the edits each as
        // truth-table flips, rewires and added LUTs (rounded that way).
        bench_gen::EditSpec edit;
        edit.flips = (spec.bench_edits + 2) / 3;
        edit.rewires = (spec.bench_edits + 1) / 3;
        edit.added_luts = spec.bench_edits / 3;
        edit.seed = spec.bench.seed + 1;
        net = bench_gen::perturb(net, edit);
      }
      return net;
    }
    case JobSpec::Source::kNone:
      break;
  }
  throw Error("resolve_job_network: job spec has no source");
}

std::string fnv1a64_hex(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return strprintf("%016llx", static_cast<unsigned long long>(h));
}

util::Json job_result_to_json(const JobSpec& spec, const FlowResult& result) {
  util::Json obj = util::Json::make_object();
  if (!spec.label.empty()) obj.set("label", spec.label);
  obj.set("until", stage_name(spec.until));

  util::Json stages = util::Json::make_object();
  for (int s = 0; s < kNumStages; ++s) {
    const Stage stage = static_cast<Stage>(s);
    const StageMetrics& m = result.metrics(stage);
    if (!m.ran) continue;
    util::Json sm = util::Json::make_object();
    sm.set("wall_s", util::Json::make_number(m.wall_s));
    // obs::peak_rss_kb() is process-wide and monotone, not per-stage or
    // per-job — under a concurrent daemon it reads as "peak RSS of the
    // whole process so far", so the key says exactly that (DESIGN.md §13).
    sm.set("process_peak_rss_kb", static_cast<std::int64_t>(m.peak_rss_kb));
    if (!m.counters.empty()) {
      util::Json counters = util::Json::make_object();
      for (const auto& [name, delta] : m.counters) {
        counters.set(name, static_cast<std::int64_t>(delta));
      }
      sm.set("counters", std::move(counters));
    }
    stages.set(stage_name(stage), std::move(sm));
  }
  obj.set("stages", std::move(stages));

  if (result.metrics(Stage::kMap).ran) {
    obj.set("luts", result.map_stats.luts);
    obj.set("depth", result.map_stats.depth);
  }
  if (result.metrics(Stage::kRoute).ran) {
    obj.set("channel_width", result.channel_width);
    obj.set("wires", result.routing.total_wire_nodes);
  }
  if (result.metrics(Stage::kPower).ran) {
    obj.set("power_mw", util::Json::make_number(result.power.total_w * 1e3));
    obj.set("critical_path_ns",
            util::Json::make_number(result.timing.critical_path_s * 1e9));
  }
  if (result.metrics(Stage::kBitgen).ran) {
    obj.set("config_bits",
            static_cast<std::int64_t>(result.bitstream.config_bits()));
    obj.set("bitstream_bytes",
            static_cast<std::int64_t>(result.bitstream_bytes.size()));
    obj.set("bitstream_fnv", fnv1a64_hex(result.bitstream_bytes));
    if (spec.return_bitstream) {
      std::string hex;
      hex.reserve(result.bitstream_bytes.size() * 2);
      static const char* kDigits = "0123456789abcdef";
      for (const std::uint8_t b : result.bitstream_bytes) {
        hex.push_back(kDigits[b >> 4]);
        hex.push_back(kDigits[b & 0xf]);
      }
      obj.set("bitstream_hex", std::move(hex));
    }
  }
  return obj;
}

JobSpecCli parse_job_spec(int* argc, char** argv) {
  JobSpecCli cli;
  int out = 1;
  const int n = *argc;
  auto value = [&](int* i, const char* flag) -> const char* {
    if (*i + 1 >= n) throw Error(std::string(flag) + ": missing value");
    return argv[++*i];
  };
  for (int i = 1; i < n; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--trace") == 0) {
      cli.runtime.trace = value(&i, a);
    } else if (std::strcmp(a, "--metrics") == 0) {
      cli.runtime.metrics = value(&i, a);
    } else if (std::strcmp(a, "--progress") == 0) {
      cli.runtime.progress = true;
    } else if (std::strcmp(a, "--threads") == 0) {
      cli.runtime.threads = parse_int(value(&i, a), "--threads");
      if (cli.runtime.threads < 0) cli.runtime.threads = 0;
    } else if (std::strcmp(a, "--dense") == 0) {
      cli.runtime.dense_mna = true;
    } else if (std::strcmp(a, "--rr-dedup") == 0) {
      cli.spec.options.rr_dedup = true;  // the default
    } else if (std::strcmp(a, "--rr-dense") == 0) {
      cli.spec.options.rr_dedup = false;  // dense per-node oracle RR graph
    } else if (std::strcmp(a, "--verify") == 0) {
      cli.spec.options.verify_mode = parse_verify_mode(value(&i, a));
      cli.verify_given = true;
    } else if (std::strcmp(a, "--seed") == 0) {
      cli.spec.options.seed = parse_u64(value(&i, a), "--seed");
      cli.seed_given = true;
    } else if (std::strcmp(a, "--priority") == 0) {
      cli.spec.priority = parse_job_priority(value(&i, a));
    } else if (std::strcmp(a, "--until") == 0) {
      cli.spec.until = parse_stage(value(&i, a));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return cli;
}

obs::ScopedSink install_runtime_trace(const JobRuntime& runtime) {
  if (!runtime.trace.empty()) {
    return obs::ScopedSink(std::make_unique<obs::JsonlSink>(runtime.trace));
  }
  if (runtime.progress) {
    return obs::ScopedSink(std::make_unique<obs::TextSink>());
  }
  return obs::ScopedSink();
}

RuntimeMetricsGuard::~RuntimeMetricsGuard() {
  if (path.empty()) return;
  try {
    obs::write_metrics_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  }
}

}  // namespace amdrel::flow

#include "flow/session.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "flow/jobspec.hpp"
#include "lint/flow_rules.hpp"
#include "lint/netlist_rules.hpp"
#include "lint/rr_rules.hpp"
#include "netlist/blif.hpp"
#include "netlist/edif.hpp"
#include "netlist/simulate.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "route/route_files.hpp"
#include "synth/lutmap.hpp"
#include "synth/opt.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "verify/equiv.hpp"
#include "vhdl/synth.hpp"

namespace amdrel::flow {

namespace {

using Clock = std::chrono::steady_clock;

const char* kStageNames[kNumStages] = {"synth",  "map",   "pack", "place",
                                       "route",  "power", "bitgen"};
const char* kStageSpans[kNumStages] = {
    "flow.synth", "flow.map",   "flow.pack",  "flow.place",
    "flow.route", "flow.power", "flow.bitgen"};

void write_artifact(const std::string& dir, const std::string& name,
                    const std::string& content) {
  if (dir.empty()) return;
  std::filesystem::create_directories(dir);
  std::ofstream out(dir + "/" + name);
  if (!out) throw Error("cannot write artifact: " + dir + "/" + name);
  out << content;
}

bool wants_random(VerifyMode mode) {
  return mode == VerifyMode::kRandom || mode == VerifyMode::kBoth;
}
bool wants_formal(VerifyMode mode) {
  return mode == VerifyMode::kFormal || mode == VerifyMode::kBoth;
}

/// Invariant barrier: error-severity findings stop the flow right at the
/// broken hand-off, with the whole report (not just the first failure).
void barrier(const lint::Report& report, const std::string& stage) {
  if (report.has_errors()) {
    throw InfeasibleError("invariant check failed after " + stage + ":\n" +
                          report.to_text());
  }
}

/// Registry counter increments between two snapshots, name-sorted (the
/// snapshots are name-sorted already); zero deltas are dropped.
std::vector<std::pair<std::string, std::uint64_t>> counter_deltas(
    const obs::MetricsSnapshot& before, const obs::MetricsSnapshot& after) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& c : after.counters) {
    const std::uint64_t d = c.value - before.counter(c.name);
    if (d > 0) out.emplace_back(c.name, d);
  }
  return out;
}

}  // namespace

const char* stage_name(Stage stage) {
  return kStageNames[static_cast<int>(stage)];
}

const char* verify_mode_name(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kOff: return "off";
    case VerifyMode::kRandom: return "random";
    case VerifyMode::kFormal: return "formal";
    case VerifyMode::kBoth: return "both";
  }
  return "?";
}

Stage parse_stage(const std::string& name) {
  for (int s = 0; s < kNumStages; ++s) {
    if (name == kStageNames[s]) return static_cast<Stage>(s);
  }
  throw Error("unknown flow stage '" + name +
              "' (expected synth, map, pack, place, route, power or bitgen)");
}

VerifyMode parse_verify_mode(const std::string& name) {
  if (name == "off") return VerifyMode::kOff;
  if (name == "random") return VerifyMode::kRandom;
  if (name == "formal") return VerifyMode::kFormal;
  if (name == "both") return VerifyMode::kBoth;
  throw Error("unknown verify mode '" + name +
              "' (expected off, random, formal or both)");
}

void FlowSession::verify_handoff(
    const std::string& handoff, const netlist::Network& ref,
    const netlist::Network& impl, bool legacy_random_point,
    const std::vector<std::pair<std::string, std::string>>& register_map) {
  const VerifyMode mode = options_.verify_mode;
  if (wants_random(mode) &&
      (legacy_random_point || mode == VerifyMode::kBoth)) {
    static obs::Counter& c_random = obs::counter("verify.random_checks");
    auto r = netlist::check_equivalence(ref, impl, 4, 48,
                                        options_.verify_seed);
    c_random.add(1);
    AMDREL_CHECK_MSG(r.equivalent, "equivalence lost at stage '" + handoff +
                                       "': " + r.message);
  }
  if (!wants_formal(mode)) return;
  static obs::Counter& c_formal = obs::counter("verify.formal_checks");
  static obs::Counter& c_vars = obs::counter("verify.sat_vars");
  static obs::Counter& c_clauses = obs::counter("verify.sat_clauses");
  static obs::Counter& c_conflicts = obs::counter("verify.sat_conflicts");
  static obs::Counter& c_decisions = obs::counter("verify.sat_decisions");
  static obs::Counter& c_props = obs::counter("verify.sat_propagations");
  static obs::Counter& c_us = obs::counter("verify.sat_us");
  obs::Span span("verify.formal");
  verify::EquivOptions eopt;
  eopt.seed = options_.verify_seed;
  eopt.time_limit_s = options_.verify_time_limit_s;
  eopt.register_map = register_map;
  const verify::EquivResult res = verify::prove_equivalence(ref, impl, eopt);
  c_formal.add(1);
  c_vars.add(static_cast<std::uint64_t>(res.stats.vars));
  c_clauses.add(static_cast<std::uint64_t>(res.stats.clauses));
  c_conflicts.add(res.stats.conflicts);
  c_decisions.add(res.stats.decisions);
  c_props.add(res.stats.propagations);
  c_us.add(static_cast<std::uint64_t>(res.stats.wall_s * 1e6));
  if (span.active()) {
    span.metric("sat_vars", static_cast<double>(res.stats.vars));
    span.metric("sat_clauses", static_cast<double>(res.stats.clauses));
    span.metric("sat_conflicts", static_cast<double>(res.stats.conflicts));
    span.metric("proved_outputs", static_cast<double>(res.proved_outputs));
    span.metric("merged_points", static_cast<double>(res.merged_points));
  }
  if (res.status == verify::EquivStatus::kNotEquivalent) {
    std::string msg = "formal equivalence lost at stage '" + handoff +
                      "': " + res.message;
    if (res.cex.has_value()) msg += "\n" + res.cex->to_text();
    throw InfeasibleError(msg);
  }
  if (res.status == verify::EquivStatus::kUnknown) {
    throw Error("formal equivalence inconclusive at stage '" + handoff +
                "': " + res.message);
  }
}

FlowSession::FlowSession(const netlist::Network& network,
                         const FlowOptions& options)
    : options_(options), entry_network_(network) {}

FlowSession::FlowSession(const JobSpec& spec) : options_(spec.options) {
  if (!spec.arch_text.empty()) {
    options_.arch = arch::read_arch_string(spec.arch_text);
  }
  const bool vhdl_file =
      spec.source == JobSpec::Source::kFile &&
      (ends_with(spec.path, ".vhd") || ends_with(spec.path, ".vhdl"));
  if (spec.source == JobSpec::Source::kVhdl || vhdl_file) {
    // VHDL synthesizes inside the synth stage (EDIF round-trip included),
    // exactly like the string constructor.
    if (vhdl_file) {
      std::ifstream in(spec.path);
      if (!in) throw Error("cannot open: " + spec.path);
      std::ostringstream ss;
      ss << in.rdbuf();
      vhdl_source_ = ss.str();
    } else {
      vhdl_source_ = spec.text;
    }
    top_ = spec.top;
    from_vhdl_ = true;
    return;
  }
  entry_network_ = resolve_job_network(spec);
}

FlowSession::FlowSession(std::string vhdl_source, std::string top,
                         const FlowOptions& options)
    : options_(options),
      vhdl_source_(std::move(vhdl_source)),
      top_(std::move(top)),
      from_vhdl_(true) {}

std::optional<Stage> FlowSession::next_stage() const {
  if (next_ >= kNumStages) return std::nullopt;
  return static_cast<Stage>(next_);
}

std::string FlowSession::stage_context(Stage stage) const {
  std::string times;
  for (int s = 0; s < kNumStages; ++s) {
    const StageMetrics& m = result_.stage_metrics[static_cast<std::size_t>(s)];
    if (m.wall_s <= 0.0 && !m.ran) continue;
    if (!times.empty()) times += ", ";
    times += strprintf("%s %.3fs", kStageNames[s], m.wall_s);
  }
  std::string msg =
      "flow stage '" + std::string(stage_name(stage)) + "' failed";
  if (!times.empty()) msg += " (" + times + ")";
  return msg + ": ";
}

SessionState FlowSession::run_until(Stage last) {
  AMDREL_CHECK_MSG(state_ != SessionState::kFailed,
                   "run_until on a failed FlowSession");
  // Carry the job-scoped trace context (if any) onto this thread for the
  // duration of the run: every stage span and kernel point below routes
  // to the context's sink under its trace id. Null = global sink.
  obs::ScopedContext trace_scope(trace_ctx_);
  state_ = SessionState::kReady;
  while (next_ <= static_cast<int>(last) && next_ < kNumStages) {
    if (cancel_requested_.exchange(false, std::memory_order_acq_rel)) {
      state_ = SessionState::kCancelled;
      return state_;
    }
    const Stage stage = static_cast<Stage>(next_);
    StageMetrics& m = result_.stage_metrics[static_cast<std::size_t>(next_)];
    const obs::MetricsSnapshot before = obs::snapshot_metrics();
    // The span shares the stage's wall-clock endpoints (t0 and the
    // freeze_duration(t1) below), so the traced duration equals
    // StageMetrics::wall_s exactly — sink I/O, the registry snapshot,
    // and QoR metric folding are excluded from both measurements.
    const auto t0 = Clock::now();
    obs::Span span(kStageSpans[next_], t0);
    try {
      run_stage(stage);
    } catch (const CancelledError&) {
      // The interrupted stage discarded its partial work (stage bodies
      // commit their artifacts only on success), so the session stays
      // well-formed at the previous boundary. Consume the request.
      m.wall_s += std::chrono::duration<double>(Clock::now() - t0).count();
      cancel_requested_.exchange(false, std::memory_order_acq_rel);
      state_ = SessionState::kCancelled;
      return state_;
    } catch (const InfeasibleError& e) {
      m.wall_s += std::chrono::duration<double>(Clock::now() - t0).count();
      state_ = SessionState::kFailed;
      throw StageInfeasibleError(stage, stage_context(stage) + e.what());
    } catch (const Error& e) {
      m.wall_s += std::chrono::duration<double>(Clock::now() - t0).count();
      state_ = SessionState::kFailed;
      throw StageError(stage, stage_context(stage) + e.what());
    }
    m.ran = true;
    const auto t1 = Clock::now();
    m.wall_s += std::chrono::duration<double>(t1 - t0).count();
    span.freeze_duration(t1);
    m.peak_rss_kb = obs::peak_rss_kb();
    m.counters = counter_deltas(before, obs::snapshot_metrics());
    span.metric("wall_s", m.wall_s);
    span.metric("peak_rss_kb", static_cast<double>(m.peak_rss_kb));
    if (span.active()) {
      for (const auto& [name, value] : m.counters) {
        // Counter names are registry literals but m.counters owns copies;
        // result_ outlives the span, so the c_str pointers stay valid.
        span.metric(name.c_str(), static_cast<double>(value));
      }
      add_qor_span_metrics(stage, span);
    }
    ++next_;
  }
  if (next_ >= kNumStages) state_ = SessionState::kDone;
  // A cancel that landed after the final requested stage's last
  // cancellation point (e.g. from a sink callback on that stage's end
  // span) used to be silently dropped here: the loop exited without
  // re-checking the flag and a later run_until was spuriously cancelled
  // by the stale request. Observe and consume it now — the completed
  // work is kept (completed() reflects it) and the caller sees
  // kCancelled unless the whole flow finished, where there is nothing
  // left to cancel.
  if (cancel_requested_.exchange(false, std::memory_order_acq_rel) &&
      state_ != SessionState::kDone) {
    state_ = SessionState::kCancelled;
  }
  return state_;
}

/// Per-stage quality-of-results metrics on the flow.<stage> span, so a
/// trace alone (amdrel_cli trace-report) reconstructs the QoR summary
/// without the FlowResult object.
void FlowSession::add_qor_span_metrics(Stage stage, obs::Span& span) const {
  switch (stage) {
    case Stage::kSynth:
      span.metric("gates",
                  static_cast<double>(result_.synthesized.gates().size()));
      return;
    case Stage::kMap:
      span.metric("luts", result_.map_stats.luts);
      span.metric("depth", result_.map_stats.depth);
      return;
    case Stage::kPack:
      span.metric("clbs",
                  static_cast<double>(result_.packed->clusters().size()));
      return;
    case Stage::kPlace:
      span.metric("place_cost", result_.place_stats.final_cost);
      return;
    case Stage::kRoute:
      span.metric("channel_width", result_.channel_width);
      span.metric("wire_nodes", result_.routing.total_wire_nodes);
      span.metric("rr_nodes",
                  static_cast<double>(result_.rr_graph->num_nodes()));
      span.metric("rr_patterns",
                  static_cast<double>(result_.rr_graph->unique_patterns()));
      span.metric("rr_bytes_est",
                  static_cast<double>(result_.rr_graph->bytes_est()));
      return;
    case Stage::kPower:
      span.metric("critical_path_ns", result_.timing.critical_path_s * 1e9);
      span.metric("power_mw", result_.power.total_w * 1e3);
      return;
    case Stage::kBitgen:
      span.metric("bitstream_bytes",
                  static_cast<double>(result_.bitstream_bytes.size()));
      span.metric("config_bits",
                  static_cast<double>(result_.bitstream.config_bits()));
      return;
  }
}

void FlowSession::run_stage(Stage stage) {
  switch (stage) {
    case Stage::kSynth: run_synth(); return;
    case Stage::kMap: run_map(); return;
    case Stage::kPack: run_pack(); return;
    case Stage::kPlace: run_place(); return;
    case Stage::kRoute: run_route(); return;
    case Stage::kPower: run_power(); return;
    case Stage::kBitgen: run_bitgen(); return;
  }
}

void FlowSession::run_synth() {
  result_.arch = std::make_unique<arch::ArchSpec>(options_.arch);
  static obs::Counter& c_gates = obs::counter("synth.gates");
  if (!from_vhdl_) {
    result_.synthesized = std::move(entry_network_);
    if (wants_formal(options_.verify_mode)) {
      // Network entry has no EDIF round-trip; prove the BLIF writer/parser
      // pair instead so the synth hand-off is still covered. The artifact
      // itself stays the entry network.
      const netlist::Network round_trip = netlist::read_blif_string(
          netlist::write_blif_string(result_.synthesized));
      verify_handoff("BLIF round-trip (E2FMT)", result_.synthesized,
                     round_trip, /*legacy_random_point=*/false);
    }
    c_gates.add(result_.synthesized.gates().size());
    return;
  }
  // Stage 1-2: parse + synthesize (VHDL Parser + DIVINER). DIVINER emits
  // EDIF; DRUID/E2FMT normalize it to BLIF. Exercise the actual format
  // conversions so the file formats stay honest.
  netlist::Network synthesized = vhdl::synthesize_vhdl(vhdl_source_, top_);
  std::string edif = netlist::write_edif_string(synthesized);
  write_artifact(options_.artifact_dir, top_ + ".edif", edif);
  netlist::Network from_edif = netlist::read_edif_string(edif);
  verify_handoff("EDIF round-trip (DRUID/E2FMT)", synthesized, from_edif,
                 /*legacy_random_point=*/true);
  result_.synthesized = std::move(from_edif);
  c_gates.add(result_.synthesized.gates().size());
}

void FlowSession::run_map() {
  const arch::ArchSpec& aspec = *result_.arch;
  const netlist::Network& network = result_.synthesized;
  // SIS role: sweep + constant propagation, then LUT mapping.
  netlist::Network opt = synth::propagate_constants(network);
  synth::sweep_dead_logic(opt);
  result_.mapped = std::make_unique<netlist::Network>(synth::map_to_luts(
      opt, synth::LutMapOptions{aspec.k, 8}, &result_.map_stats));
  verify_handoff("LUT mapping (SIS)", network, *result_.mapped,
                 /*legacy_random_point=*/true);
  if (options_.check_invariants) {
    result_.lint.set_stage("mapping");
    lint::lint_network(*result_.mapped, &result_.lint);
    barrier(result_.lint, "LUT mapping");
  }
  write_artifact(options_.artifact_dir, network.name() + ".blif",
                 netlist::write_blif_string(*result_.mapped));
}

void FlowSession::run_pack() {
  const arch::ArchSpec& aspec = *result_.arch;
  // T-VPack.
  result_.packed =
      std::make_unique<pack::PackedNetlist>(*result_.mapped, aspec);
  if (options_.check_invariants) {
    result_.lint.set_stage("pack");
    lint::check_post_pack(*result_.packed, &result_.lint);
    barrier(result_.lint, "packing");
  }
  if (wants_formal(options_.verify_mode)) {
    verify_handoff("packing (T-VPack)", *result_.mapped,
                   pack::reconstruct_network(*result_.packed),
                   /*legacy_random_point=*/false);
  }
  write_artifact(options_.artifact_dir, result_.synthesized.name() + ".net",
                 pack::write_net_string(*result_.packed));
  // DUTYS architecture file.
  write_artifact(options_.artifact_dir, result_.synthesized.name() + ".arch",
                 arch::write_arch_string(aspec));
}

void FlowSession::run_place() {
  const arch::ArchSpec& aspec = *result_.arch;
  // VPR role: place.
  result_.placement =
      std::make_unique<place::Placement>(*result_.packed, aspec);
  place::Placement::AnnealOptions popt;
  popt.seed = options_.seed;
  result_.place_stats = result_.placement->anneal(popt);
  if (options_.check_invariants) {
    result_.lint.set_stage("place");
    lint::check_post_place(*result_.placement, &result_.lint);
    barrier(result_.lint, "placement");
  }
  if (wants_formal(options_.verify_mode)) {
    verify_handoff("placement (VPR)", *result_.mapped,
                   place::reconstruct_network(*result_.placement),
                   /*legacy_random_point=*/false);
  }
}

void FlowSession::run_route() {
  const arch::ArchSpec& aspec = *result_.arch;
  // VPR role: route. Built into locals and committed only on success, so a
  // cancelled or failed search leaves the session at the place boundary.
  route::RouteOptions ropt;
  ropt.cancel = &cancel_requested_;
  ropt.rr.dedup = options_.rr_dedup;
  std::unique_ptr<route::RrGraph> rr_graph;
  route::RouteResult routing;
  int channel_width = 0;
  if (options_.search_min_channel_width) {
    channel_width = route::minimum_channel_width(*result_.placement, aspec,
                                                 &routing, ropt);
    AMDREL_CHECK_MSG(channel_width > 0, "design is unroutable");
    rr_graph = std::make_unique<route::RrGraph>(*result_.placement, aspec,
                                                channel_width, ropt.rr);
  } else {
    channel_width = aspec.channel_width;
    rr_graph = std::make_unique<route::RrGraph>(*result_.placement, aspec,
                                                channel_width, ropt.rr);
    routing = route::route_all(*rr_graph, *result_.placement, ropt);
    AMDREL_CHECK_MSG(routing.success,
                     "unroutable at W=" + std::to_string(channel_width) +
                         ": " + routing.message);
  }
  route::verify_routing(*rr_graph, *result_.placement, routing);
  result_.rr_graph = std::move(rr_graph);
  result_.routing = std::move(routing);
  result_.channel_width = channel_width;
  if (options_.check_invariants) {
    result_.lint.set_stage("rr-graph");
    lint::lint_rr_graph(*result_.rr_graph, &result_.lint);
    result_.lint.set_stage("route");
    lint::check_post_route(*result_.rr_graph, result_.routing, &result_.lint);
    barrier(result_.lint, "routing");
  }
  write_artifact(options_.artifact_dir, result_.synthesized.name() + ".place",
                 route::write_place_string(*result_.placement));
  write_artifact(options_.artifact_dir, result_.synthesized.name() + ".route",
                 route::write_route_string(*result_.rr_graph,
                                           *result_.placement,
                                           result_.routing));
  if (wants_formal(options_.verify_mode)) {
    // The routed design has no netlist form of its own; interpret it
    // through the fabric (an in-memory bitstream decode) so a swapped or
    // misattributed route shows up as a functional difference.
    const bitgen::Bitstream bits = bitgen::generate_bitstream(
        *result_.packed, *result_.placement, *result_.rr_graph,
        result_.routing, aspec);
    verify_handoff("routing (VPR)", *result_.mapped,
                   bitgen::decode_to_network(bits),
                   /*legacy_random_point=*/false,
                   fabric_register_map(result_));
  }
}

void FlowSession::run_power() {
  const arch::ArchSpec& aspec = *result_.arch;
  // PowerModel + timing (stage 4 of the GUI; runs after P&R in practice).
  result_.power =
      power::estimate_power(*result_.packed, *result_.placement,
                            *result_.rr_graph, result_.routing, aspec,
                            options_.power);
  result_.timing =
      timing::analyze_timing(*result_.packed, *result_.placement,
                             *result_.rr_graph, result_.routing, aspec);
  if (wants_formal(options_.verify_mode)) {
    // Power/timing consume the packed structure; prove it transitively
    // against the original synthesized design (end-to-end across synth +
    // map + pack), so the analyses demonstrably model the entry netlist.
    verify_handoff("power analysis inputs (PowerModel)", result_.synthesized,
                   pack::reconstruct_network(*result_.packed),
                   /*legacy_random_point=*/false);
  }
}

SessionState FlowSession::resume_with_edit(const netlist::Network& edited,
                                           eco::EcoStats* stats_out) {
  AMDREL_CHECK_MSG(state_ == SessionState::kDone,
                   "resume_with_edit requires a completed session");
  obs::ScopedContext trace_scope(trace_ctx_);
  StageMetrics m;
  const obs::MetricsSnapshot before = obs::snapshot_metrics();
  const auto t0 = Clock::now();
  obs::Span span("flow.eco", t0);
  try {
    eco::EcoOptions eopt;
    eopt.seed = options_.seed;
    eopt.lutmap = synth::LutMapOptions{result_.arch->k, 8};
    eopt.route.cancel = &cancel_requested_;
    eopt.route.rr.dedup = options_.rr_dedup;
    eopt.power = options_.power;
    eco::EcoResult er = eco::recompile(
        edited, result_.synthesized, *result_.mapped, *result_.packed,
        *result_.placement, *result_.rr_graph, result_.routing,
        result_.channel_width, *result_.arch, eopt);
    // The same invariant barriers the full flow runs, over every
    // recompiled artifact; failures leave the base artifacts in place.
    if (options_.check_invariants) {
      result_.lint.set_stage("eco");
      lint::lint_network(*er.mapped, &result_.lint);
      lint::check_post_pack(*er.packed, &result_.lint);
      lint::check_post_place(*er.placement, &result_.lint);
      lint::lint_rr_graph(*er.rr_graph, &result_.lint);
      lint::check_post_route(*er.rr_graph, er.routing, &result_.lint);
      lint::check_post_bitgen(er.bitstream_bytes, *er.mapped, &result_.lint);
      barrier(result_.lint, "ECO recompile");
    }
    // The safety net: prove the recompiled bitstream implements the
    // edited netlist before committing anything.
    if (options_.verify_mode != VerifyMode::kOff) {
      bitgen::Bitstream reparsed = bitgen::deserialize(er.bitstream_bytes);
      // Latch Q names survive LUT mapping, so the map built from the
      // recompiled packing/placement pins `edited`'s registers too.
      verify_handoff("ECO recompile", edited,
                     bitgen::decode_to_network(reparsed),
                     /*legacy_random_point=*/true,
                     fabric_register_map(*er.mapped, *er.packed,
                                         *er.placement));
    }
    // Commit: the session now holds the edited design's implementation.
    entry_network_ = edited;
    result_.synthesized = edited;
    result_.mapped = std::move(er.mapped);
    result_.map_stats = er.map_stats;
    result_.packed = std::move(er.packed);
    result_.placement = std::move(er.placement);
    result_.place_stats = er.place_stats;
    result_.rr_graph = std::move(er.rr_graph);
    result_.routing = std::move(er.routing);
    result_.channel_width = er.channel_width;
    result_.power = er.power;
    result_.timing = er.timing;
    result_.bitstream = std::move(er.bitstream);
    result_.bitstream_bytes = std::move(er.bitstream_bytes);
    eco_stats_ = er.stats;
    if (stats_out != nullptr) *stats_out = er.stats;
  } catch (const CancelledError&) {
    m.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    eco_metrics_ = std::move(m);
    cancel_requested_.exchange(false, std::memory_order_acq_rel);
    return SessionState::kCancelled;
  } catch (const InfeasibleError& e) {
    throw InfeasibleError(std::string("ECO recompile failed: ") + e.what());
  } catch (const Error& e) {
    throw Error(std::string("ECO recompile failed: ") + e.what());
  }
  m.ran = true;
  const auto t1 = Clock::now();
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  span.freeze_duration(t1);
  m.peak_rss_kb = obs::peak_rss_kb();
  m.counters = counter_deltas(before, obs::snapshot_metrics());
  span.metric("wall_s", m.wall_s);
  span.metric("peak_rss_kb", static_cast<double>(m.peak_rss_kb));
  if (span.active()) {
    for (const auto& [name, value] : m.counters) {
      span.metric(name.c_str(), static_cast<double>(value));
    }
    span.metric("dirty_pct", eco_stats_.entry_diff.dirty_pct() * 100.0);
    span.metric("reuse_ratio", eco_stats_.reuse_ratio());
    span.metric("channel_width", result_.channel_width);
  }
  eco_metrics_ = std::move(m);
  return SessionState::kDone;
}

void FlowSession::run_bitgen() {
  const arch::ArchSpec& aspec = *result_.arch;
  // DAGGER.
  result_.bitstream =
      bitgen::generate_bitstream(*result_.packed, *result_.placement,
                                 *result_.rr_graph, result_.routing, aspec);
  result_.bitstream_bytes = bitgen::serialize(result_.bitstream);
  if (!options_.artifact_dir.empty()) {
    std::ofstream out(options_.artifact_dir + "/" +
                          result_.synthesized.name() + ".bit",
                      std::ios::binary);
    out.write(reinterpret_cast<const char*>(result_.bitstream_bytes.data()),
              static_cast<std::streamsize>(result_.bitstream_bytes.size()));
  }
  if (options_.check_invariants) {
    result_.lint.set_stage("bitgen");
    lint::check_post_bitgen(result_.bitstream_bytes, *result_.mapped,
                            &result_.lint);
    barrier(result_.lint, "bitstream generation");
  }
  if (options_.verify_mode != VerifyMode::kOff) {
    // The strongest check in the flow: interpret the serialized bitstream
    // back into a netlist and prove sequential equivalence with the
    // mapped design.
    bitgen::Bitstream reparsed =
        bitgen::deserialize(result_.bitstream_bytes);
    netlist::Network fabric = bitgen::decode_to_network(reparsed);
    verify_handoff("bitstream (DAGGER)", *result_.mapped, fabric,
                   /*legacy_random_point=*/true, fabric_register_map(result_));
  }
}

}  // namespace amdrel::flow

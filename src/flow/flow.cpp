#include "flow/flow.hpp"

#include <algorithm>
#include <sstream>

#include "flow/jobspec.hpp"
#include "flow/session.hpp"
#include "util/strings.hpp"

namespace amdrel::flow {

std::string FlowResult::report() const {
  std::ostringstream os;
  os << "=== AMDREL design flow report ===\n";
  os << "[2] synthesis   : " << synthesized.stats() << "\n";
  os << "[3] mapping     : " << mapped->stats() << " — " << map_stats.luts
     << " LUTs, depth " << map_stats.depth << "\n";
  if (packed) os << "[5a] packing    : " << packed->stats() << "\n";
  if (placement) {
    os << strprintf("[5b] placement  : %dx%d grid, cost %.1f → %.1f\n",
                    placement->nx(), placement->ny(),
                    place_stats.initial_cost, place_stats.final_cost);
  }
  os << strprintf("[5c] routing    : W=%d, %d iterations, %d wire segments\n",
                  channel_width, routing.iterations,
                  routing.total_wire_nodes);
  os << "[4] power       : " << power.summary() << "\n";
  os << strprintf("    timing      : critical path %.2f ns (fmax %.1f MHz)\n",
                  timing.critical_path_s * 1e9, timing.fmax_hz / 1e6);
  os << strprintf("[6] bitstream   : %lld config bits (%zu bytes serialized)\n",
                  bitstream.config_bits(), bitstream_bytes.size());
  std::string stages;
  long peak_kb = 0;
  for (int s = 0; s < kNumStages; ++s) {
    const StageMetrics& m = stage_metrics[static_cast<std::size_t>(s)];
    if (!m.ran) continue;
    if (!stages.empty()) stages += " | ";
    stages += strprintf("%s %.3fs", stage_name(static_cast<Stage>(s)),
                        m.wall_s);
    peak_kb = std::max(peak_kb, m.peak_rss_kb);
  }
  if (!stages.empty()) {
    os << "    stages      : " << stages;
    if (peak_kb > 0) os << strprintf("  (peak RSS %.1f MB)", peak_kb / 1024.0);
    os << "\n";
  }
  if (!lint.empty()) {
    os << strprintf("    lint        : %d error(s), %d warning(s), %d note(s)\n",
                    lint.count(lint::Severity::kError),
                    lint.count(lint::Severity::kWarning),
                    lint.count(lint::Severity::kInfo));
  }
  return os.str();
}

// Deprecated wrappers: both now route through the unified JobSpec entry
// point, so a one-shot call and a daemon-submitted job with the same
// description run exactly the same constructor path.
FlowResult run_flow_from_vhdl(const std::string& vhdl_source,
                              const std::string& top,
                              const FlowOptions& options) {
  JobSpec spec;
  spec.source = JobSpec::Source::kVhdl;
  spec.text = vhdl_source;
  spec.top = top;
  spec.options = options;
  FlowSession session(spec);
  session.run_until(spec.until);
  return session.take_result();
}

FlowResult run_flow_from_network(const netlist::Network& network,
                                 const FlowOptions& options) {
  // The network entry has no serializable form (it is an in-memory
  // object); it maps to the source-specific constructor directly.
  FlowSession session(network, options);
  session.resume();
  return session.take_result();
}

std::vector<std::pair<std::string, std::string>> fabric_register_map(
    const netlist::Network& mapped, const pack::PackedNetlist& packed,
    const place::Placement& placement) {
  std::vector<std::pair<std::string, std::string>> map;
  for (std::size_t ci = 0; ci < packed.clusters().size(); ++ci) {
    const pack::Cluster& cluster = packed.clusters()[ci];
    const place::Loc& loc = placement.location(
        placement.block_of_cluster(static_cast<int>(ci)));
    for (std::size_t slot = 0; slot < cluster.bles.size(); ++slot) {
      const pack::Ble& ble =
          packed.bles()[static_cast<std::size_t>(cluster.bles[slot])];
      if (ble.latch < 0) continue;
      map.emplace_back(
          mapped.signal_name(
              mapped.latches()[static_cast<std::size_t>(ble.latch)].q),
          strprintf("clb%d_%d_b%zu", loc.x, loc.y, slot));
    }
  }
  return map;
}

std::vector<std::pair<std::string, std::string>> fabric_register_map(
    const FlowResult& result) {
  if (!result.mapped || !result.packed || !result.placement) return {};
  return fabric_register_map(*result.mapped, *result.packed,
                             *result.placement);
}

}  // namespace amdrel::flow

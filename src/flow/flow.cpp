#include "flow/flow.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/flow_rules.hpp"
#include "lint/netlist_rules.hpp"
#include "lint/rr_rules.hpp"
#include "netlist/blif.hpp"
#include "netlist/edif.hpp"
#include "netlist/simulate.hpp"
#include "route/route_files.hpp"
#include "synth/lutmap.hpp"
#include "synth/opt.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "vhdl/synth.hpp"

namespace amdrel::flow {

namespace {

void write_artifact(const std::string& dir, const std::string& name,
                    const std::string& content) {
  if (dir.empty()) return;
  std::filesystem::create_directories(dir);
  std::ofstream out(dir + "/" + name);
  if (!out) throw Error("cannot write artifact: " + dir + "/" + name);
  out << content;
}

void check_equiv(const netlist::Network& a, const netlist::Network& b,
                 const std::string& stage) {
  auto r = netlist::check_equivalence(a, b, 4, 48);
  AMDREL_CHECK_MSG(r.equivalent,
                   "equivalence lost at stage '" + stage + "': " + r.message);
}

/// Invariant barrier: error-severity findings stop the flow right at the
/// broken hand-off, with the whole report (not just the first failure).
void barrier(const lint::Report& report, const std::string& stage) {
  if (report.has_errors()) {
    throw InfeasibleError("invariant check failed after " + stage + ":\n" +
                          report.to_text());
  }
}

}  // namespace

std::string FlowResult::report() const {
  std::ostringstream os;
  os << "=== AMDREL design flow report ===\n";
  os << "[2] synthesis   : " << synthesized.stats() << "\n";
  os << "[3] mapping     : " << mapped->stats() << " — " << map_stats.luts
     << " LUTs, depth " << map_stats.depth << "\n";
  if (packed) os << "[5a] packing    : " << packed->stats() << "\n";
  if (placement) {
    os << strprintf("[5b] placement  : %dx%d grid, cost %.1f → %.1f\n",
                    placement->nx(), placement->ny(),
                    place_stats.initial_cost, place_stats.final_cost);
  }
  os << strprintf("[5c] routing    : W=%d, %d iterations, %d wire segments\n",
                  channel_width, routing.iterations,
                  routing.total_wire_nodes);
  os << "[4] power       : " << power.summary() << "\n";
  os << strprintf("    timing      : critical path %.2f ns (fmax %.1f MHz)\n",
                  timing.critical_path_s * 1e9, timing.fmax_hz / 1e6);
  os << strprintf("[6] bitstream   : %lld config bits (%zu bytes serialized)\n",
                  bitstream.config_bits(), bitstream_bytes.size());
  if (!lint.empty()) {
    os << strprintf("    lint        : %d error(s), %d warning(s), %d note(s)\n",
                    lint.count(lint::Severity::kError),
                    lint.count(lint::Severity::kWarning),
                    lint.count(lint::Severity::kInfo));
  }
  return os.str();
}

FlowResult run_flow_from_vhdl(const std::string& vhdl_source,
                              const std::string& top,
                              const FlowOptions& options) {
  // Stage 1-2: parse + synthesize (VHDL Parser + DIVINER).
  netlist::Network synthesized = vhdl::synthesize_vhdl(vhdl_source, top);
  // DIVINER emits EDIF; DRUID/E2FMT normalize it to BLIF. Exercise the
  // actual format conversions so the file formats stay honest.
  std::string edif = netlist::write_edif_string(synthesized);
  write_artifact(options.artifact_dir, top + ".edif", edif);
  netlist::Network from_edif = netlist::read_edif_string(edif);
  if (options.verify_each_stage) {
    check_equiv(synthesized, from_edif, "EDIF round-trip (DRUID/E2FMT)");
  }
  return run_flow_from_network(from_edif, options);
}

FlowResult run_flow_from_network(const netlist::Network& network,
                                 const FlowOptions& options) {
  FlowResult result;
  result.arch = std::make_unique<arch::ArchSpec>(options.arch);
  const arch::ArchSpec& aspec = *result.arch;
  result.synthesized = network;

  // SIS role: sweep + constant propagation, then LUT mapping.
  netlist::Network opt = synth::propagate_constants(network);
  synth::sweep_dead_logic(opt);
  result.mapped = std::make_unique<netlist::Network>(synth::map_to_luts(
      opt, synth::LutMapOptions{aspec.k, 8}, &result.map_stats));
  if (options.verify_each_stage) {
    check_equiv(network, *result.mapped, "LUT mapping (SIS)");
  }
  if (options.check_invariants) {
    result.lint.set_stage("mapping");
    lint::lint_network(*result.mapped, &result.lint);
    barrier(result.lint, "LUT mapping");
  }
  write_artifact(options.artifact_dir, network.name() + ".blif",
                 netlist::write_blif_string(*result.mapped));

  // T-VPack.
  result.packed =
      std::make_unique<pack::PackedNetlist>(*result.mapped, aspec);
  if (options.check_invariants) {
    result.lint.set_stage("pack");
    lint::check_post_pack(*result.packed, &result.lint);
    barrier(result.lint, "packing");
  }
  write_artifact(options.artifact_dir, network.name() + ".net",
                 pack::write_net_string(*result.packed));
  // DUTYS architecture file.
  write_artifact(options.artifact_dir, network.name() + ".arch",
                 arch::write_arch_string(aspec));

  // VPR role: place.
  result.placement =
      std::make_unique<place::Placement>(*result.packed, aspec);
  place::Placement::AnnealOptions popt;
  popt.seed = options.seed;
  result.place_stats = result.placement->anneal(popt);
  if (options.check_invariants) {
    result.lint.set_stage("place");
    lint::check_post_place(*result.placement, &result.lint);
    barrier(result.lint, "placement");
  }

  // VPR role: route.
  if (options.search_min_channel_width) {
    result.channel_width = route::minimum_channel_width(
        *result.placement, aspec, &result.routing);
    AMDREL_CHECK_MSG(result.channel_width > 0, "design is unroutable");
    result.rr_graph = std::make_unique<route::RrGraph>(
        *result.placement, aspec, result.channel_width);
  } else {
    result.channel_width = aspec.channel_width;
    result.rr_graph = std::make_unique<route::RrGraph>(
        *result.placement, aspec, result.channel_width);
    result.routing = route::route_all(*result.rr_graph, *result.placement);
    AMDREL_CHECK_MSG(result.routing.success,
                     "unroutable at W=" + std::to_string(result.channel_width) +
                         ": " + result.routing.message);
  }
  route::verify_routing(*result.rr_graph, *result.placement, result.routing);
  if (options.check_invariants) {
    result.lint.set_stage("rr-graph");
    lint::lint_rr_graph(*result.rr_graph, &result.lint);
    result.lint.set_stage("route");
    lint::check_post_route(*result.rr_graph, result.routing, &result.lint);
    barrier(result.lint, "routing");
  }
  write_artifact(options.artifact_dir, network.name() + ".place",
                 route::write_place_string(*result.placement));
  write_artifact(options.artifact_dir, network.name() + ".route",
                 route::write_route_string(*result.rr_graph,
                                           *result.placement,
                                           result.routing));

  // PowerModel + timing.
  result.power =
      power::estimate_power(*result.packed, *result.placement,
                            *result.rr_graph, result.routing, aspec,
                            options.power);
  result.timing =
      timing::analyze_timing(*result.packed, *result.placement,
                             *result.rr_graph, result.routing, aspec);

  // DAGGER.
  result.bitstream =
      bitgen::generate_bitstream(*result.packed, *result.placement,
                                 *result.rr_graph, result.routing, aspec);
  result.bitstream_bytes = bitgen::serialize(result.bitstream);
  if (!options.artifact_dir.empty()) {
    std::ofstream out(options.artifact_dir + "/" + network.name() + ".bit",
                      std::ios::binary);
    out.write(reinterpret_cast<const char*>(result.bitstream_bytes.data()),
              static_cast<std::streamsize>(result.bitstream_bytes.size()));
  }
  if (options.check_invariants) {
    result.lint.set_stage("bitgen");
    lint::check_post_bitgen(result.bitstream_bytes, *result.mapped,
                            &result.lint);
    barrier(result.lint, "bitstream generation");
  }
  if (options.verify_each_stage) {
    // The strongest check in the flow: interpret the bitstream back into a
    // netlist and prove sequential equivalence with the mapped design.
    bitgen::Bitstream reparsed =
        bitgen::deserialize(result.bitstream_bytes);
    netlist::Network fabric = bitgen::decode_to_network(reparsed);
    check_equiv(*result.mapped, fabric, "bitstream (DAGGER)");
  }
  return result;
}

}  // namespace amdrel::flow

#include "verify/equiv.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "netlist/simulate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "verify/cnf.hpp"

namespace amdrel::verify {

namespace {

using netlist::Latch;
using netlist::LatchInit;
using netlist::Network;
using netlist::SignalId;
using Clock = std::chrono::steady_clock;

const char* kNextStatePrefix = "next-state(";

bool init_bit(LatchInit init) { return init == LatchInit::kOne; }

std::set<std::string> names_of(const Network& n,
                               const std::vector<SignalId>& sigs) {
  std::set<std::string> out;
  for (const SignalId s : sigs) out.insert(n.signal_name(s));
  return out;
}

/// Combinational evaluation of `net` from explicit leaf values (primary
/// inputs and latch Q signals); absent leaves default to 0. Returns the
/// full value vector indexed by SignalId.
std::vector<char> eval_combinational(
    const Network& net, const std::unordered_map<SignalId, bool>& leaves) {
  std::vector<char> values(static_cast<std::size_t>(net.num_signals()), 0);
  for (const auto& [s, v] : leaves) {
    values[static_cast<std::size_t>(s)] = v ? 1 : 0;
  }
  for (const int gi : net.topo_order()) {
    const auto& g = net.gates()[static_cast<std::size_t>(gi)];
    std::uint64_t row = 0;
    for (std::size_t i = 0; i < g.inputs.size(); ++i) {
      if (values[static_cast<std::size_t>(g.inputs[i])]) row |= 1ull << i;
    }
    values[static_cast<std::size_t>(g.output)] = g.table.get(row) ? 1 : 0;
  }
  return values;
}

/// Per-signal depth (0 at PIs / latch outputs, 1 + max(inputs) at gates).
std::vector<int> signal_depths(const Network& net) {
  std::vector<int> depth(static_cast<std::size_t>(net.num_signals()), 0);
  for (const int gi : net.topo_order()) {
    const auto& g = net.gates()[static_cast<std::size_t>(gi)];
    int d = 0;
    for (const SignalId in : g.inputs) {
      d = std::max(d, depth[static_cast<std::size_t>(in)]);
    }
    depth[static_cast<std::size_t>(g.output)] = d + 1;
  }
  return depth;
}

/// 64-bit-parallel evaluation of all signals from per-leaf pattern words.
void simulate_words(const Network& net,
                    const std::vector<std::uint64_t>& leaf_words,
                    std::vector<std::uint64_t>* words) {
  *words = leaf_words;
  for (const int gi : net.topo_order()) {
    const auto& g = net.gates()[static_cast<std::size_t>(gi)];
    std::uint64_t out = 0;
    for (int bit = 0; bit < 64; ++bit) {
      std::uint64_t row = 0;
      for (std::size_t i = 0; i < g.inputs.size(); ++i) {
        row |= ((words->at(static_cast<std::size_t>(g.inputs[i])) >> bit) &
                1ull)
               << i;
      }
      if (g.table.get(row)) out |= 1ull << bit;
    }
    (*words)[static_cast<std::size_t>(g.output)] = out;
  }
}

/// The name-sorted PI list shared by both networks (the interface check
/// has already passed).
std::vector<std::string> sorted_input_names(const Network& a) {
  const auto set = names_of(a, a.inputs());
  return {set.begin(), set.end()};
}

/// Sorted PI names in the transitive fanin of `root` — the matching
/// tiebreak signature for latches whose state signatures stay identical.
std::vector<std::string> cone_input_names(const Network& net, SignalId root) {
  std::vector<std::string> out;
  std::vector<char> visited(static_cast<std::size_t>(net.num_signals()), 0);
  std::vector<SignalId> stack{root};
  while (!stack.empty()) {
    const SignalId s = stack.back();
    stack.pop_back();
    if (visited[static_cast<std::size_t>(s)]) continue;
    visited[static_cast<std::size_t>(s)] = 1;
    if (net.is_input(s)) {
      out.push_back(net.signal_name(s));
      continue;
    }
    const int gi = net.driver_gate(s);
    if (gi >= 0) {
      for (const SignalId in :
           net.gates()[static_cast<std::size_t>(gi)].inputs) {
        stack.push_back(in);
      }
    }
    // Latch outputs are cut points: stop there.
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct LatchMatch {
  /// Uniquely determined pairs: (latch index in A, latch index in B).
  std::vector<std::pair<int, int>> pairs;
  /// Ambiguous signature buckets: the A latches could map to any
  /// permutation of the B latches (B pre-ordered by D-cone tiebreak so
  /// the identity assignment is the best guess).
  std::vector<std::pair<std::vector<int>, std::vector<int>>> groups;
  bool failed = false;
  std::string message;
  /// Set when lock-step simulation already distinguished an output.
  std::optional<Counterexample> sim_divergence;
};

/// Matches registers across the two networks by lock-step random
/// simulation signatures (doubling the cycle count while buckets stay
/// ambiguous), then by D-cone input support, then arbitrarily (flagged).
LatchMatch match_latches(const Network& a, const Network& b,
                         const EquivOptions& options) {
  LatchMatch match;
  if (a.latches().size() != b.latches().size()) {
    match.failed = true;
    match.message = strprintf("register counts differ (%zu vs %zu)",
                              a.latches().size(), b.latches().size());
    return match;
  }
  if (a.latches().empty()) return match;

  const std::vector<std::string> input_names = sorted_input_names(a);
  const int n_latches = static_cast<int>(a.latches().size());

  // Caller-supplied bijection (guided matching): if the hints pin every
  // latch on both sides consistently, prove that map directly — the
  // miters below still refute a wrong one.
  if (!options.register_map.empty()) {
    std::map<std::string, int> q_a, q_b;
    for (int i = 0; i < n_latches; ++i) {
      q_a[a.signal_name(a.latches()[static_cast<std::size_t>(i)].q)] = i;
      q_b[b.signal_name(b.latches()[static_cast<std::size_t>(i)].q)] = i;
    }
    std::vector<std::pair<int, int>> pinned;
    std::vector<char> used_a(static_cast<std::size_t>(n_latches), 0);
    std::vector<char> used_b(static_cast<std::size_t>(n_latches), 0);
    for (const auto& [na, nb] : options.register_map) {
      const auto ia = q_a.find(na), ib = q_b.find(nb);
      if (ia == q_a.end() || ib == q_b.end()) continue;
      if (used_a[static_cast<std::size_t>(ia->second)] ||
          used_b[static_cast<std::size_t>(ib->second)]) {
        pinned.clear();  // inconsistent map: fall back to matching
        break;
      }
      used_a[static_cast<std::size_t>(ia->second)] = 1;
      used_b[static_cast<std::size_t>(ib->second)] = 1;
      pinned.emplace_back(ia->second, ib->second);
    }
    if (static_cast<int>(pinned.size()) == n_latches) {
      match.pairs = std::move(pinned);
      return match;
    }
  }

  // Fast path: register output names survive every flow stage except
  // fabric decode, and an identical Q-name set pins the bijection exactly.
  {
    std::map<std::string, int> q_of_b;
    for (int i = 0; i < n_latches; ++i) {
      q_of_b[b.signal_name(b.latches()[static_cast<std::size_t>(i)].q)] = i;
    }
    bool all_named = static_cast<int>(q_of_b.size()) == n_latches;
    for (int i = 0; all_named && i < n_latches; ++i) {
      const auto it = q_of_b.find(
          a.signal_name(a.latches()[static_cast<std::size_t>(i)].q));
      if (it == q_of_b.end()) {
        all_named = false;
      } else {
        match.pairs.emplace_back(i, it->second);
      }
    }
    if (all_named) return match;
    match.pairs.clear();
  }

  using Signature = std::vector<std::uint64_t>;
  std::vector<Signature> sig_a(static_cast<std::size_t>(n_latches));
  std::vector<Signature> sig_b(static_cast<std::size_t>(n_latches));

  int cycles = options.signature_cycles;
  for (int attempt = 0; attempt < 4; ++attempt, cycles *= 2) {
    for (auto& s : sig_a) s.assign(static_cast<std::size_t>(cycles + 63) / 64, 0);
    for (auto& s : sig_b) s.assign(static_cast<std::size_t>(cycles + 63) / 64, 0);
    netlist::Simulator sim_a(a), sim_b(b);
    Rng rng(options.seed + static_cast<std::uint64_t>(attempt));
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (int i = 0; i < n_latches; ++i) {
        if (sim_a.value(a.latches()[static_cast<std::size_t>(i)].q)) {
          sig_a[static_cast<std::size_t>(i)][static_cast<std::size_t>(cycle / 64)] |=
              1ull << (cycle % 64);
        }
        if (sim_b.value(b.latches()[static_cast<std::size_t>(i)].q)) {
          sig_b[static_cast<std::size_t>(i)][static_cast<std::size_t>(cycle / 64)] |=
              1ull << (cycle % 64);
        }
      }
      std::vector<std::pair<std::string, bool>> cycle_inputs;
      for (const auto& name : input_names) {
        const bool v = rng.next_bool();
        cycle_inputs.emplace_back(name, v);
        sim_a.set_input_by_name(name, v);
        sim_b.set_input_by_name(name, v);
      }
      sim_a.propagate();
      sim_b.propagate();
      for (const SignalId out : a.outputs()) {
        const std::string& name = a.signal_name(out);
        const bool va = sim_a.value(out);
        const bool vb = sim_b.value(b.find_signal(name));
        if (va != vb) {
          Counterexample cex;
          cex.inputs = std::move(cycle_inputs);
          for (const auto& latch : a.latches()) {
            cex.registers.emplace_back(latch.name, sim_a.value(latch.q));
          }
          cex.diverging_output = name;
          cex.value_a = va;
          cex.value_b = vb;
          match.sim_divergence = std::move(cex);
          match.failed = true;
          match.message = strprintf(
              "output '%s' differs in lock-step simulation at cycle %d",
              name.c_str(), cycle);
          return match;
        }
      }
      sim_a.step_clock();
      sim_b.step_clock();
    }

    // Bucket by signature and match.
    std::map<Signature, std::vector<int>> buckets_a, buckets_b;
    for (int i = 0; i < n_latches; ++i) {
      buckets_a[sig_a[static_cast<std::size_t>(i)]].push_back(i);
      buckets_b[sig_b[static_cast<std::size_t>(i)]].push_back(i);
    }
    bool mismatch = false, ambiguous = false;
    for (const auto& [sig, in_a] : buckets_a) {
      const auto it = buckets_b.find(sig);
      if (it == buckets_b.end() || it->second.size() != in_a.size()) {
        mismatch = true;
        break;
      }
      if (in_a.size() > 1) ambiguous = true;
    }
    if (mismatch) {
      if (attempt < 3) continue;  // more cycles may separate them
      match.failed = true;
      match.message =
          "register state signatures do not correspond under lock-step "
          "simulation";
      return match;
    }
    if (!ambiguous || attempt == 3) {
      // Final matching. Multi-latch buckets stay ambiguous: they are
      // returned as groups and the caller enumerates the in-bucket
      // permutations (any trace-consistent bijection proving UNSAT is a
      // valid proof). The D-cone tiebreak only pre-orders the B side so
      // the first permutation tried is the most likely one.
      match.pairs.clear();
      match.groups.clear();
      for (const auto& [sig, in_a] : buckets_a) {
        const auto& in_b = buckets_b[sig];
        if (in_a.size() == 1) {
          match.pairs.emplace_back(in_a[0], in_b[0]);
          continue;
        }
        std::vector<int> ordered_b;
        std::vector<int> rest_b = in_b;
        for (const int ia : in_a) {
          const auto support_a = cone_input_names(
              a, a.latches()[static_cast<std::size_t>(ia)].d);
          std::size_t chosen = 0;
          for (std::size_t k = 0; k < rest_b.size(); ++k) {
            if (cone_input_names(
                    b, b.latches()[static_cast<std::size_t>(rest_b[k])].d) ==
                support_a) {
              chosen = k;
              break;
            }
          }
          ordered_b.push_back(rest_b[chosen]);
          rest_b.erase(rest_b.begin() + static_cast<std::ptrdiff_t>(chosen));
        }
        match.groups.emplace_back(in_a, std::move(ordered_b));
      }
      return match;
    }
  }
  return match;  // unreachable: the loop always returns by attempt 3
}

/// One internal equivalence candidate for SAT sweeping.
struct SweepEntry {
  int depth = 0;
  int net = 0;  ///< 0 = A, 1 = B
  SignalId signal = netlist::kNoSignal;
  Var var = -1;
  bool negated = false;  ///< signature was canonicalized by complement
};

struct Obligation {
  std::string label;
  Var var_a = -1;
  Var var_b = -1;
};

Var ensure_var(Solver* solver, SignalVars* vars, SignalId s) {
  Var v = vars->of(s);
  if (v < 0) {
    v = solver->new_var();
    vars->bind(s, v);
  }
  return v;
}

}  // namespace

const char* equiv_status_name(EquivStatus s) {
  switch (s) {
    case EquivStatus::kEquivalent: return "equivalent";
    case EquivStatus::kNotEquivalent: return "not-equivalent";
    case EquivStatus::kUnknown: return "unknown";
  }
  return "?";
}

std::string Counterexample::to_text() const {
  std::ostringstream os;
  os << "counterexample: output '" << diverging_output << "' = "
     << (value_a ? 1 : 0) << " vs " << (value_b ? 1 : 0) << " under";
  bool first = true;
  for (const auto& [name, value] : inputs) {
    os << (first ? " " : ", ") << name << "=" << (value ? 1 : 0);
    first = false;
  }
  for (const auto& [name, value] : registers) {
    os << (first ? " " : ", ") << name << ".Q=" << (value ? 1 : 0);
    first = false;
  }
  if (!care_inputs.empty()) {
    os << " (essential: ";
    for (std::size_t i = 0; i < care_inputs.size(); ++i) {
      if (i) os << ", ";
      os << care_inputs[i];
    }
    os << ")";
  }
  return os.str();
}

class EquivChecker {
 public:
  EquivChecker(const Network& a, const Network& b, const EquivOptions& options)
      : a_(a), b_(b), options_(options) {}

  EquivResult run() {
    const auto t0 = Clock::now();
    deadline_ =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(options_.time_limit_s));
    EquivResult result = check();
    result.seed = options_.seed;
    result.stats = agg_stats_;
    result.stats.wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return result;
  }

 private:
  EquivResult check() {
    EquivResult result;
    // ---- interface ----
    if (names_of(a_, a_.inputs()) != names_of(b_, b_.inputs())) {
      result.status = EquivStatus::kNotEquivalent;
      result.message = "primary input name sets differ";
      return result;
    }
    if (names_of(a_, a_.outputs()) != names_of(b_, b_.outputs())) {
      result.status = EquivStatus::kNotEquivalent;
      result.message = "primary output name sets differ";
      return result;
    }

    // ---- register matching / reset states ----
    LatchMatch match = match_latches(a_, b_, options_);
    if (match.failed) {
      if (match.sim_divergence.has_value()) {
        result.status = EquivStatus::kNotEquivalent;
        result.cex = std::move(match.sim_divergence);
      } else {
        result.status = EquivStatus::kUnknown;
      }
      result.message = match.message;
      return result;
    }
    // ---- candidate bijections: fixed pairs × in-bucket permutations ----
    // Any trace-consistent bijection proving every miter UNSAT is a valid
    // equivalence proof, so ambiguity is resolved by enumeration. Beyond
    // the cap only the best-guess pairing is tried and a SAT answer
    // degrades to "unknown" instead of claiming non-equivalence.
    constexpr std::uint64_t kMaxBijections = 16;
    std::uint64_t total = 1;
    for (const auto& [ga, gb] : match.groups) {
      for (std::size_t k = 2; k <= ga.size() && total <= kMaxBijections; ++k) {
        total *= k;
      }
      if (total > kMaxBijections) break;
    }
    const bool capped = total > kMaxBijections;
    std::vector<std::vector<std::pair<int, int>>> candidates;
    candidates.push_back(match.pairs);
    for (const auto& [ga, gb] : match.groups) {
      std::vector<int> order(gb.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<int>(i);
      }
      std::vector<std::vector<std::pair<int, int>>> expanded;
      do {
        for (const auto& base : candidates) {
          auto cur = base;
          for (std::size_t i = 0; i < ga.size(); ++i) {
            cur.emplace_back(ga[i],
                             gb[static_cast<std::size_t>(order[i])]);
          }
          expanded.push_back(std::move(cur));
        }
      } while (!capped && std::next_permutation(order.begin(), order.end()));
      candidates = std::move(expanded);
    }
    result.matched_registers = static_cast<int>(candidates.front().size());

    std::optional<EquivResult> refuted;
    for (const auto& pairs : candidates) {
      EquivResult attempt = result;
      const EquivStatus st = prove_with_pairs(pairs, &attempt);
      if (st == EquivStatus::kEquivalent || st == EquivStatus::kUnknown) {
        return attempt;
      }
      if (!refuted.has_value()) refuted = std::move(attempt);
    }
    EquivResult final_result = std::move(*refuted);
    if (capped) {
      final_result.status = EquivStatus::kUnknown;
      final_result.message =
          "miter satisfiable under the best-guess register matching, but "
          "the ambiguity was too large to enumerate; random-vector "
          "verification recommended";
      final_result.cex.reset();
    } else if (candidates.size() > 1) {
      final_result.message += strprintf(
          " (all %zu trace-consistent register pairings refuted)",
          candidates.size());
    }
    return final_result;
  }

  /// Proves the combinational cut under one concrete register bijection
  /// with a fresh solver. kEquivalent / kNotEquivalent are definitive for
  /// this bijection; kUnknown means budget exhaustion (give up overall).
  EquivStatus prove_with_pairs(const std::vector<std::pair<int, int>>& pairs,
                               EquivResult* result) {
    solver_ = Solver();
    pi_vars_.clear();
    reg_vars_.clear();
    latch_b_of_a_.clear();

    for (const auto& [ia, ib] : pairs) {
      const Latch& la = a_.latches()[static_cast<std::size_t>(ia)];
      const Latch& lb = b_.latches()[static_cast<std::size_t>(ib)];
      if (init_bit(la.init) != init_bit(lb.init)) {
        result->status = EquivStatus::kNotEquivalent;
        result->message = strprintf(
            "reset states differ: latch '%s' inits to %d, '%s' to %d",
            la.name.c_str(), init_bit(la.init) ? 1 : 0, lb.name.c_str(),
            init_bit(lb.init) ? 1 : 0);
        return result->status;
      }
    }

    // ---- encode the miter over shared leaves ----
    resize_signal_vars(a_, &vars_a_);
    resize_signal_vars(b_, &vars_b_);
    for (const SignalId s : a_.inputs()) {
      const Var v = solver_.new_var();
      vars_a_.bind(s, v);
      const SignalId sb = b_.find_signal(a_.signal_name(s));
      vars_b_.bind(sb, v);
      pi_vars_.emplace_back(a_.signal_name(s), v);
    }
    std::sort(pi_vars_.begin(), pi_vars_.end());
    for (const auto& [ia, ib] : pairs) {
      const Latch& la = a_.latches()[static_cast<std::size_t>(ia)];
      const Latch& lb = b_.latches()[static_cast<std::size_t>(ib)];
      const Var v = solver_.new_var();
      vars_a_.bind(la.q, v);
      vars_b_.bind(lb.q, v);
      reg_vars_.emplace_back(la.name, v);
      latch_b_of_a_[ia] = ib;
    }
    encode_network(a_, &solver_, &vars_a_);
    encode_network(b_, &solver_, &vars_b_);

    // ---- proof obligations: POs, then next-state functions ----
    std::vector<Obligation> obligations;
    for (const auto& name : names_of(a_, a_.outputs())) {
      obligations.push_back(
          {name, ensure_var(&solver_, &vars_a_, a_.find_signal(name)),
           ensure_var(&solver_, &vars_b_, b_.find_signal(name))});
    }
    for (const auto& [ia, ib] : pairs) {
      const Latch& la = a_.latches()[static_cast<std::size_t>(ia)];
      const Latch& lb = b_.latches()[static_cast<std::size_t>(ib)];
      obligations.push_back({std::string(kNextStatePrefix) + la.name + ")",
                             ensure_var(&solver_, &vars_a_, la.d),
                             ensure_var(&solver_, &vars_b_, lb.d)});
    }

    // ---- SAT sweeping ----
    result->merged_points = sweep();

    // ---- output miters ----
    solver_.set_conflict_budget(options_.conflict_limit);
    solver_.set_deadline(deadline_);
    result->proved_outputs = 0;
    for (const Obligation& ob : obligations) {
      for (const int phase : {0, 1}) {
        const Solver::Result r = solver_.solve(
            {mk_lit(ob.var_a, phase == 1), mk_lit(ob.var_b, phase == 0)});
        if (r == Solver::Result::kUnknown) {
          result->status = EquivStatus::kUnknown;
          result->message = strprintf(
              "budget exhausted proving '%s' (%llu conflicts so far)",
              ob.label.c_str(),
              static_cast<unsigned long long>(solver_.stats().conflicts));
          accumulate_stats();
          return result->status;
        }
        if (r == Solver::Result::kSat) {
          *result = found_counterexample(ob, std::move(*result));
          accumulate_stats();
          return result->status;
        }
      }
      ++result->proved_outputs;
    }
    result->status = EquivStatus::kEquivalent;
    result->message = strprintf(
        "%d output(s) and %d next-state function(s) proven equivalent",
        static_cast<int>(names_of(a_, a_.outputs()).size()),
        result->matched_registers);
    accumulate_stats();
    return result->status;
  }

  void accumulate_stats() {
    agg_stats_.vars = std::max(agg_stats_.vars, solver_.num_vars());
    agg_stats_.clauses = std::max(agg_stats_.clauses, solver_.num_clauses());
    const SolverStats& s = solver_.stats();
    agg_stats_.conflicts += s.conflicts;
    agg_stats_.decisions += s.decisions;
    agg_stats_.propagations += s.propagations;
    agg_stats_.restarts += s.restarts;
    agg_stats_.learned_clauses += s.learned_clauses;
    agg_stats_.solves += s.solves;
  }

  /// Simulation-guided internal-point merging: candidates with equal (or
  /// complementary) 64-bit signatures are proven pairwise under a small
  /// conflict budget and, when UNSAT, tied together with equality clauses.
  int sweep() {
    // Random pattern words per leaf solver var (shared leaves share
    // patterns by construction).
    Rng rng(options_.seed ^ 0x5eedf00dull);
    std::vector<std::vector<std::uint64_t>> leaf_words(
        static_cast<std::size_t>(options_.sim_words));
    for (auto& w : leaf_words) {
      w.assign(static_cast<std::size_t>(solver_.num_vars()), 0);
      for (auto& x : w) x = rng.next_u64();
    }
    const auto leaf_word = [&](int round, Var v) {
      return leaf_words[static_cast<std::size_t>(round)]
                       [static_cast<std::size_t>(v)];
    };

    // Signature per (net, signal): sim_words words, canonicalized.
    std::map<std::vector<std::uint64_t>, std::vector<SweepEntry>> buckets;
    const Network* nets[2] = {&a_, &b_};
    const SignalVars* vars[2] = {&vars_a_, &vars_b_};
    for (int ni = 0; ni < 2; ++ni) {
      const Network& net = *nets[ni];
      const std::vector<int> depth = signal_depths(net);
      std::vector<std::vector<std::uint64_t>> words(
          static_cast<std::size_t>(options_.sim_words));
      for (int round = 0; round < options_.sim_words; ++round) {
        std::vector<std::uint64_t> leaves(
            static_cast<std::size_t>(net.num_signals()), 0);
        for (SignalId s = 0; s < net.num_signals(); ++s) {
          const Var v = vars[ni]->of(s);
          if (v >= 0 && net.driver_gate(s) < 0) {
            leaves[static_cast<std::size_t>(s)] = leaf_word(round, v);
          }
        }
        simulate_words(net, leaves, &words[static_cast<std::size_t>(round)]);
      }
      for (SignalId s = 0; s < net.num_signals(); ++s) {
        const Var v = vars[ni]->of(s);
        if (v < 0) continue;
        std::vector<std::uint64_t> sig(
            static_cast<std::size_t>(options_.sim_words));
        for (int round = 0; round < options_.sim_words; ++round) {
          sig[static_cast<std::size_t>(round)] =
              words[static_cast<std::size_t>(round)]
                   [static_cast<std::size_t>(s)];
        }
        SweepEntry e{depth[static_cast<std::size_t>(s)], ni, s, v, false};
        if (sig[0] & 1ull) {
          for (auto& x : sig) x = ~x;
          e.negated = true;
        }
        buckets[sig].push_back(e);
      }
    }

    // Prove within buckets, shallow cones first.
    std::vector<std::vector<SweepEntry>*> work;
    for (auto& [sig, entries] : buckets) {
      if (entries.size() < 2) continue;
      std::sort(entries.begin(), entries.end(),
                [](const SweepEntry& x, const SweepEntry& y) {
                  return std::tie(x.depth, x.net, x.signal) <
                         std::tie(y.depth, y.net, y.signal);
                });
      work.push_back(&entries);
    }
    std::sort(work.begin(), work.end(),
              [](const auto* x, const auto* y) {
                return std::tie(x->front().depth, x->front().net,
                                x->front().signal) <
                       std::tie(y->front().depth, y->front().net,
                                y->front().signal);
              });

    int merged = 0;
    solver_.set_conflict_budget(options_.sweep_conflict_limit);
    solver_.set_deadline(deadline_);
    for (auto* entries : work) {
      const SweepEntry& rep = entries->front();
      for (std::size_t i = 1; i < entries->size(); ++i) {
        if (Clock::now() >= deadline_) return merged;
        const SweepEntry& e = (*entries)[i];
        if (e.var == rep.var) continue;  // already the same variable
        const bool complement = (e.negated != rep.negated);
        // rep == e (xor complement) iff both difference phases are UNSAT.
        const Solver::Result r1 = solver_.solve(
            {mk_lit(rep.var, false), mk_lit(e.var, !complement)});
        if (r1 != Solver::Result::kUnsat) continue;
        const Solver::Result r2 = solver_.solve(
            {mk_lit(rep.var, true), mk_lit(e.var, complement)});
        if (r2 != Solver::Result::kUnsat) continue;
        add_equal(&solver_, rep.var, e.var, complement);
        ++merged;
      }
    }
    return merged;
  }

  EquivResult found_counterexample(const Obligation& ob, EquivResult result) {
    // Extract the distinguishing assignment from the model.
    std::vector<std::pair<std::string, bool>> inputs, registers;
    for (const auto& [name, v] : pi_vars_) {
      inputs.emplace_back(name, solver_.model_value(v));
    }
    for (const auto& [name, v] : reg_vars_) {
      registers.emplace_back(name, solver_.model_value(v));
    }

    const auto diverges = [&](const std::vector<std::pair<std::string, bool>>& in,
                              const std::vector<std::pair<std::string, bool>>& regs,
                              bool* va, bool* vb) {
      return replay_diverges(ob, in, regs, va, vb);
    };

    bool va = false, vb = false;
    if (!diverges(inputs, registers, &va, &vb)) {
      result.status = EquivStatus::kUnknown;
      result.message =
          "internal error: model does not replay through simulation";
      return result;
    }

    // Minimize: canonicalize non-essential leaves to 0, then record the
    // leaves whose value the divergence actually depends on.
    const auto minimize = [&](std::vector<std::pair<std::string, bool>>* vec) {
      for (auto& [name, value] : *vec) {
        if (!value) continue;
        value = false;
        bool xa = false, xb = false;
        if (!diverges(inputs, registers, &xa, &xb)) value = true;
      }
    };
    minimize(&inputs);
    minimize(&registers);
    Counterexample cex;
    cex.inputs = inputs;
    cex.registers = registers;
    for (auto& [name, value] : cex.inputs) {
      value = !value;
      bool xa = false, xb = false;
      const bool still = replay_diverges(ob, cex.inputs, cex.registers, &xa, &xb);
      value = !value;
      if (!still) cex.care_inputs.push_back(name);
    }
    replay_diverges(ob, cex.inputs, cex.registers, &va, &vb);
    cex.diverging_output = ob.label;
    cex.value_a = va;
    cex.value_b = vb;
    result.status = EquivStatus::kNotEquivalent;
    result.message = "miter satisfiable at '" + ob.label + "'";
    result.cex = std::move(cex);
    return result;
  }

  /// Replays an assignment through both networks (two-value simulation of
  /// the combinational cut) and reports whether `ob` diverges.
  bool replay_diverges(const Obligation& ob,
                       const std::vector<std::pair<std::string, bool>>& inputs,
                       const std::vector<std::pair<std::string, bool>>& registers,
                       bool* va, bool* vb) {
    std::unordered_map<SignalId, bool> leaves_a, leaves_b;
    for (const auto& [name, value] : inputs) {
      leaves_a[a_.find_signal(name)] = value;
      leaves_b[b_.find_signal(name)] = value;
    }
    for (const auto& [ia, ib] : latch_b_of_a_) {
      const Latch& la = a_.latches()[static_cast<std::size_t>(ia)];
      const Latch& lb = b_.latches()[static_cast<std::size_t>(ib)];
      for (const auto& [name, value] : registers) {
        if (name == la.name) {
          leaves_a[la.q] = value;
          leaves_b[lb.q] = value;
          break;
        }
      }
    }
    const std::vector<char> values_a = eval_combinational(a_, leaves_a);
    const std::vector<char> values_b = eval_combinational(b_, leaves_b);

    SignalId sa = netlist::kNoSignal, sb = netlist::kNoSignal;
    if (ob.label.rfind(kNextStatePrefix, 0) == 0) {
      const std::string latch_name =
          ob.label.substr(std::string(kNextStatePrefix).size(),
                          ob.label.size() -
                              std::string(kNextStatePrefix).size() - 1);
      for (const auto& [ia, ib] : latch_b_of_a_) {
        const Latch& la = a_.latches()[static_cast<std::size_t>(ia)];
        if (la.name == latch_name) {
          sa = la.d;
          sb = b_.latches()[static_cast<std::size_t>(ib)].d;
          break;
        }
      }
    } else {
      sa = a_.find_signal(ob.label);
      sb = b_.find_signal(ob.label);
    }
    AMDREL_CHECK(sa != netlist::kNoSignal && sb != netlist::kNoSignal);
    *va = values_a[static_cast<std::size_t>(sa)] != 0;
    *vb = values_b[static_cast<std::size_t>(sb)] != 0;
    return *va != *vb;
  }

  const Network& a_;
  const Network& b_;
  EquivOptions options_;
  Clock::time_point deadline_;
  Solver solver_;
  SatStats agg_stats_;  ///< summed over all candidate-bijection attempts
  SignalVars vars_a_, vars_b_;
  std::vector<std::pair<std::string, Var>> pi_vars_;
  std::vector<std::pair<std::string, Var>> reg_vars_;  ///< by A latch name
  std::map<int, int> latch_b_of_a_;
};

EquivResult prove_equivalence(const Network& a, const Network& b,
                              const EquivOptions& options) {
  return EquivChecker(a, b, options).run();
}

std::string EquivResult::to_text() const {
  std::ostringstream os;
  os << "formal: " << equiv_status_name(status);
  if (!message.empty()) os << " — " << message;
  os << "\n";
  if (cex.has_value()) os << cex->to_text() << "\n";
  os << strprintf(
      "sat: %d vars, %d clauses, %llu conflicts, %llu decisions, %llu "
      "propagations, %llu learned, %llu restarts, %llu solves, %d merges, "
      "%.3f s (seed %llu)\n",
      stats.vars, stats.clauses,
      static_cast<unsigned long long>(stats.conflicts),
      static_cast<unsigned long long>(stats.decisions),
      static_cast<unsigned long long>(stats.propagations),
      static_cast<unsigned long long>(stats.learned_clauses),
      static_cast<unsigned long long>(stats.restarts),
      static_cast<unsigned long long>(stats.solves), merged_points,
      stats.wall_s, static_cast<unsigned long long>(seed));
  return os.str();
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << strprintf("\\u%04x", c);
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string EquivResult::to_json() const {
  std::ostringstream os;
  os << "{\"status\":\"" << equiv_status_name(status) << "\",\"message\":";
  json_escape(os, message);
  os << ",\"seed\":" << seed << ",\"matched_registers\":" << matched_registers
     << ",\"proved_outputs\":" << proved_outputs
     << ",\"merged_points\":" << merged_points << ",\"sat\":{\"vars\":"
     << stats.vars << ",\"clauses\":" << stats.clauses
     << ",\"conflicts\":" << stats.conflicts
     << ",\"decisions\":" << stats.decisions
     << ",\"propagations\":" << stats.propagations
     << ",\"restarts\":" << stats.restarts
     << ",\"learned\":" << stats.learned_clauses
     << ",\"solves\":" << stats.solves
     << ",\"wall_s\":" << strprintf("%.6f", stats.wall_s) << "}";
  if (cex.has_value()) {
    os << ",\"counterexample\":{\"diverging_output\":";
    json_escape(os, cex->diverging_output);
    os << ",\"value_a\":" << (cex->value_a ? "true" : "false")
       << ",\"value_b\":" << (cex->value_b ? "true" : "false")
       << ",\"inputs\":{";
    for (std::size_t i = 0; i < cex->inputs.size(); ++i) {
      if (i) os << ",";
      json_escape(os, cex->inputs[i].first);
      os << ":" << (cex->inputs[i].second ? "true" : "false");
    }
    os << "},\"registers\":{";
    for (std::size_t i = 0; i < cex->registers.size(); ++i) {
      if (i) os << ",";
      json_escape(os, cex->registers[i].first);
      os << ":" << (cex->registers[i].second ? "true" : "false");
    }
    os << "},\"care_inputs\":[";
    for (std::size_t i = 0; i < cex->care_inputs.size(); ++i) {
      if (i) os << ",";
      json_escape(os, cex->care_inputs[i]);
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

}  // namespace amdrel::verify

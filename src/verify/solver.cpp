#include "verify/solver.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace amdrel::verify {

namespace {

constexpr double kVarDecay = 1.0 / 0.95;
constexpr double kClauseDecay = 1.0 / 0.999;
constexpr double kRescaleLimit = 1e100;
constexpr int kRestartBase = 100;  ///< conflicts per Luby unit

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::uint64_t luby(std::uint64_t i) {
  // Find the finite subsequence containing index i and its size.
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return 1ull << seq;
}

}  // namespace

Solver::Solver() = default;
Solver::~Solver() = default;

Var Solver::new_var() {
  const Var v = num_vars();
  watches_.emplace_back();
  watches_.emplace_back();
  assigns_.push_back(0);
  model_.push_back(0);
  polarity_.push_back(0);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  heap_index_.push_back(-1);
  seen_.push_back(0);
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  AMDREL_CHECK_MSG(trail_lim_.empty(), "add_clause during search");
  // Normalize: sort, drop duplicates, detect tautologies and lits already
  // decided at the root level.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  out.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit l = lits[i];
    AMDREL_CHECK_MSG(var_of(l) < num_vars(), "literal for unknown var");
    if (i + 1 < lits.size() && lits[i + 1] == negate(l)) return true;  // taut
    if (!out.empty() && out.back() == l) continue;
    const signed char v = value_lit(l);
    if (v == 1) return true;   // satisfied at root
    if (v == -1) continue;     // falsified at root: drop
    out.push_back(l);
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], -1);
    if (propagate() != -1) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const int ci = static_cast<int>(clauses_.size());
  clauses_.push_back(Clause{std::move(out), 0.0, false});
  attach_clause(ci);
  ++n_problem_clauses_;
  return true;
}

void Solver::attach_clause(int ci) {
  const Clause& c = clauses_[static_cast<std::size_t>(ci)];
  watches_[static_cast<std::size_t>(negate(c.lits[0]))].push_back(ci);
  watches_[static_cast<std::size_t>(negate(c.lits[1]))].push_back(ci);
}

void Solver::enqueue(Lit l, int reason) {
  const Var v = var_of(l);
  assigns_[static_cast<std::size_t>(v)] = is_negated(l) ? -1 : 1;
  level_[static_cast<std::size_t>(v)] =
      static_cast<int>(trail_lim_.size());
  reason_[static_cast<std::size_t>(v)] = reason;
  trail_.push_back(l);
}

int Solver::propagate() {
  while (propagate_head_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[static_cast<std::size_t>(propagate_head_++)];
    ++stats_.propagations;
    // Clauses watching ~p: p just became true, so the watch on ~p must
    // move or the clause is unit/conflicting.
    std::vector<int>& ws = watches_[static_cast<std::size_t>(p)];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
      const int ci = ws[wi];
      Clause& c = clauses_[static_cast<std::size_t>(ci)];
      const Lit false_lit = negate(p);
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      // c.lits[1] == false_lit now.
      if (value_lit(c.lits[0]) == 1) {
        ws[keep++] = ci;  // satisfied by the other watch
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value_lit(c.lits[k]) != -1) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<std::size_t>(negate(c.lits[1]))].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[keep++] = ci;
      if (value_lit(c.lits[0]) == -1) {
        // Conflict: keep the remaining watches, return the clause.
        for (std::size_t k = wi + 1; k < ws.size(); ++k) ws[keep++] = ws[k];
        ws.resize(keep);
        propagate_head_ = static_cast<int>(trail_.size());
        return ci;
      }
      enqueue(c.lits[0], ci);
    }
    ws.resize(keep);
  }
  return -1;
}

void Solver::bump_var(Var v) {
  double& a = activity_[static_cast<std::size_t>(v)];
  a += var_inc_;
  if (a > kRescaleLimit) {
    for (double& x : activity_) x *= 1e-100;
    var_inc_ *= 1e-100;
  }
  const int hi = heap_index_[static_cast<std::size_t>(v)];
  if (hi >= 0) heap_percolate_up(hi);
}

void Solver::bump_clause(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > kRescaleLimit) {
    for (Clause& cl : clauses_) {
      if (cl.learnt) cl.activity *= 1e-100;
    }
    clause_inc_ *= 1e-100;
  }
}

void Solver::decay_activities() {
  var_inc_ *= kVarDecay;
  clause_inc_ *= kClauseDecay;
}

/// First-UIP conflict analysis: resolves the conflict clause backwards
/// along the trail until exactly one literal of the current decision level
/// remains; that literal (asserted on backjump) comes first in `learnt`.
void Solver::analyze(int conflict, std::vector<Lit>* learnt,
                     int* backtrack_level) {
  learnt->clear();
  learnt->push_back(kUndefLit);  // slot for the asserting literal
  const int current_level = static_cast<int>(trail_lim_.size());
  int counter = 0;
  Lit p = kUndefLit;
  int index = static_cast<int>(trail_.size()) - 1;
  int ci = conflict;
  do {
    Clause& c = clauses_[static_cast<std::size_t>(ci)];
    if (c.learnt) bump_clause(c);
    const std::size_t start = (p == kUndefLit) ? 0 : 1;
    for (std::size_t k = start; k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const Var v = var_of(q);
      if (seen_[static_cast<std::size_t>(v)] ||
          level_[static_cast<std::size_t>(v)] == 0) {
        continue;
      }
      seen_[static_cast<std::size_t>(v)] = 1;
      bump_var(v);
      if (level_[static_cast<std::size_t>(v)] >= current_level) {
        ++counter;
      } else {
        learnt->push_back(q);
      }
    }
    // Next literal of the current level to resolve on.
    while (!seen_[static_cast<std::size_t>(var_of(
        trail_[static_cast<std::size_t>(index)]))]) {
      --index;
    }
    p = trail_[static_cast<std::size_t>(index)];
    seen_[static_cast<std::size_t>(var_of(p))] = 0;
    ci = reason_[static_cast<std::size_t>(var_of(p))];
    --counter;
    --index;
  } while (counter > 0);
  (*learnt)[0] = negate(p);

  // Backtrack level = highest level among the other literals; move that
  // literal to the second watch position.
  *backtrack_level = 0;
  for (std::size_t k = 1; k < learnt->size(); ++k) {
    const int lvl = level_[static_cast<std::size_t>(var_of((*learnt)[k]))];
    if (lvl > *backtrack_level) {
      *backtrack_level = lvl;
      std::swap((*learnt)[1], (*learnt)[k]);
    }
  }
  for (const Lit l : *learnt) seen_[static_cast<std::size_t>(var_of(l))] = 0;
}

void Solver::cancel_until(int level) {
  if (static_cast<int>(trail_lim_.size()) <= level) return;
  const int bound = trail_lim_[static_cast<std::size_t>(level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Var v = var_of(trail_[static_cast<std::size_t>(i)]);
    polarity_[static_cast<std::size_t>(v)] =
        static_cast<char>(assigns_[static_cast<std::size_t>(v)] == 1);
    assigns_[static_cast<std::size_t>(v)] = 0;
    reason_[static_cast<std::size_t>(v)] = -1;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(static_cast<std::size_t>(bound));
  trail_lim_.resize(static_cast<std::size_t>(level));
  propagate_head_ = bound;
}

Lit Solver::pick_branch_lit() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (assigns_[static_cast<std::size_t>(v)] == 0) {
      return mk_lit(v, polarity_[static_cast<std::size_t>(v)] == 0);
    }
  }
  return kUndefLit;
}

/// Drops the less-active half of the learnt clauses (keeping binary
/// clauses and current reasons) and rebuilds the watch lists.
void Solver::reduce_learnts() {
  std::vector<double> acts;
  for (const Clause& c : clauses_) {
    if (c.learnt && c.lits.size() > 2) acts.push_back(c.activity);
  }
  if (acts.size() < 2) return;
  std::nth_element(acts.begin(), acts.begin() + acts.size() / 2, acts.end());
  const double median = acts[acts.size() / 2];

  std::vector<char> is_reason(clauses_.size(), 0);
  for (const int r : reason_) {
    if (r >= 0) is_reason[static_cast<std::size_t>(r)] = 1;
  }
  std::vector<int> remap(clauses_.size(), -1);
  std::size_t out = 0;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    Clause& c = clauses_[i];
    const bool drop = c.learnt && c.lits.size() > 2 && !is_reason[i] &&
                      c.activity < median;
    if (drop) continue;
    remap[i] = static_cast<int>(out);
    if (out != i) clauses_[out] = std::move(c);
    ++out;
  }
  clauses_.resize(out);
  for (int& r : reason_) {
    if (r >= 0) r = remap[static_cast<std::size_t>(r)];
  }
  rebuild_watches();
}

void Solver::rebuild_watches() {
  for (auto& w : watches_) w.clear();
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    attach_clause(static_cast<int>(i));
  }
}

Solver::Result Solver::solve(const std::vector<Lit>& assumptions) {
  ++stats_.solves;
  if (!ok_) return Result::kUnsat;
  AMDREL_CHECK(trail_lim_.empty());
  std::uint64_t conflicts_this_solve = 0;
  std::uint64_t restart_seq = 0;
  std::uint64_t restart_limit = kRestartBase * luby(restart_seq);
  std::uint64_t conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  const auto out_of_budget = [&]() {
    if (conflict_budget_ > 0 && conflicts_this_solve >= conflict_budget_) {
      return true;
    }
    return has_deadline_ && (conflicts_this_solve % 256 == 0) &&
           std::chrono::steady_clock::now() >= deadline_;
  };

  for (;;) {
    const int conflict = propagate();
    if (conflict != -1) {
      ++stats_.conflicts;
      ++conflicts_this_solve;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        ok_ = false;  // conflict with no decisions: globally unsat
        return Result::kUnsat;
      }
      int backtrack_level = 0;
      analyze(conflict, &learnt, &backtrack_level);
      cancel_until(backtrack_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], -1);
      } else {
        const int ci = static_cast<int>(clauses_.size());
        clauses_.push_back(Clause{learnt, clause_inc_, true});
        attach_clause(ci);
        ++stats_.learned_clauses;
        enqueue(learnt[0], ci);
      }
      decay_activities();
      if (stats_.learned_clauses > 0 &&
          stats_.learned_clauses % learnt_limit_ == 0) {
        reduce_learnts();
      }
      if (out_of_budget()) {
        cancel_until(0);
        return Result::kUnknown;
      }
      continue;
    }
    if (conflicts_since_restart >= restart_limit &&
        static_cast<int>(trail_lim_.size()) >
            static_cast<int>(assumptions.size())) {
      ++stats_.restarts;
      ++restart_seq;
      restart_limit = kRestartBase * luby(restart_seq);
      conflicts_since_restart = 0;
      // Keep the assumption prefix (the first assumptions.size() levels
      // are assumption decisions or their dummy placeholders).
      cancel_until(static_cast<int>(assumptions.size()));
      continue;
    }
    // Next decision: assumptions first, then VSIDS.
    Lit next = kUndefLit;
    while (static_cast<std::size_t>(trail_lim_.size()) <
           assumptions.size()) {
      const Lit a = assumptions[trail_lim_.size()];
      const signed char v = value_lit(a);
      if (v == 1) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));  // dummy level
        continue;
      }
      if (v == -1) {
        cancel_until(0);
        return Result::kUnsat;  // assumptions contradict the formula
      }
      next = a;
      break;
    }
    if (next == kUndefLit) {
      next = pick_branch_lit();
      if (next == kUndefLit) {
        // All variables assigned: model found.
        model_ = assigns_;
        cancel_until(0);
        return Result::kSat;
      }
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(next, -1);
  }
}

// ---- indexed max-heap over activity_ ----

void Solver::heap_insert(Var v) {
  heap_index_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_percolate_up(static_cast<int>(heap_.size()) - 1);
}

void Solver::heap_percolate_up(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const double a = activity_[static_cast<std::size_t>(v)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    const Var pv = heap_[static_cast<std::size_t>(parent)];
    if (activity_[static_cast<std::size_t>(pv)] >= a) break;
    heap_[static_cast<std::size_t>(i)] = pv;
    heap_index_[static_cast<std::size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_index_[static_cast<std::size_t>(v)] = i;
}

void Solver::heap_percolate_down(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const double a = activity_[static_cast<std::size_t>(v)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<std::size_t>(
            heap_[static_cast<std::size_t>(child + 1)])] >
            activity_[static_cast<std::size_t>(
                heap_[static_cast<std::size_t>(child)])]) {
      ++child;
    }
    const Var cv = heap_[static_cast<std::size_t>(child)];
    if (a >= activity_[static_cast<std::size_t>(cv)]) break;
    heap_[static_cast<std::size_t>(i)] = cv;
    heap_index_[static_cast<std::size_t>(cv)] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_index_[static_cast<std::size_t>(v)] = i;
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_index_[static_cast<std::size_t>(top)] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_index_[static_cast<std::size_t>(last)] = 0;
    heap_percolate_down(0);
  }
  return top;
}

}  // namespace amdrel::verify

#include "verify/cnf.hpp"

#include "util/error.hpp"

namespace amdrel::verify {

namespace {

using netlist::Gate;
using netlist::Network;
using netlist::SignalId;
using netlist::TruthTable;

Var var_for(SignalVars* vars, Solver* solver, SignalId s) {
  Var& v = vars->var[static_cast<std::size_t>(s)];
  if (v < 0) v = solver->new_var();
  return v;
}

/// One clause per row of the (support-restricted) table: "inputs == row
/// implies output == table(row)", written as a disjunction.
int encode_gate(const Gate& gate, Solver* solver, SignalVars* vars) {
  // Restrict to the support so unused LUT pins do not double the rows.
  TruthTable table = gate.table;
  std::vector<Var> inputs;
  inputs.reserve(gate.inputs.size());
  for (int i = 0; i < static_cast<int>(gate.inputs.size()); ++i) {
    if (gate.table.depends_on(i)) {
      inputs.push_back(var_for(vars, solver, gate.inputs[i]));
    }
  }
  for (int i = static_cast<int>(gate.inputs.size()) - 1; i >= 0; --i) {
    if (!gate.table.depends_on(i)) table = table.cofactor(i, false);
  }
  AMDREL_CHECK(static_cast<std::size_t>(table.n_inputs()) == inputs.size());

  const Var out = var_for(vars, solver, gate.output);
  int added = 0;
  std::vector<Lit> clause;
  for (std::uint64_t row = 0; row < table.n_rows(); ++row) {
    clause.clear();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      // Literal satisfied when input i differs from its value in `row`.
      clause.push_back(mk_lit(inputs[i], (row >> i) & 1));
    }
    clause.push_back(mk_lit(out, !table.get(row)));
    solver->add_clause(clause);
    ++added;
  }
  return added;
}

}  // namespace

void resize_signal_vars(const Network& net, SignalVars* vars) {
  vars->var.assign(static_cast<std::size_t>(net.num_signals()), -1);
}

int encode_network(const Network& net, Solver* solver, SignalVars* vars) {
  AMDREL_CHECK(vars->var.size() ==
               static_cast<std::size_t>(net.num_signals()));
  // Leaves first, so unbound PIs / latch outputs get stable variables.
  for (const SignalId s : net.inputs()) var_for(vars, solver, s);
  for (const auto& latch : net.latches()) var_for(vars, solver, latch.q);
  int clauses = 0;
  for (const int gi : net.topo_order()) {
    clauses += encode_gate(net.gates()[static_cast<std::size_t>(gi)], solver,
                           vars);
  }
  return clauses;
}

void add_equal(Solver* solver, Var a, Var b, bool complement) {
  solver->add_clause({mk_lit(a, false), mk_lit(b, !complement)});
  solver->add_clause({mk_lit(a, true), mk_lit(b, complement)});
}

}  // namespace amdrel::verify

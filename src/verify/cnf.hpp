#pragma once
// Tseitin encoding of netlist::Network combinational logic into CNF.
//
// Every signal of the network gets a solver variable; each gate
// contributes one clause per row of its support-restricted truth table
// (inputs the function does not depend on are cofactored away first, so a
// K-LUT wired with unused pins costs 2^support rows, not 2^K). Cone
// leaves — primary inputs and latch Q outputs — can be pre-bound to
// existing variables, which is how the equivalence checker shares PI and
// cut-point variables between the two sides of a miter.

#include <vector>

#include "netlist/network.hpp"
#include "verify/solver.hpp"

namespace amdrel::verify {

/// SignalId → solver variable map for one encoded network (-1 = none).
struct SignalVars {
  std::vector<Var> var;

  Var of(netlist::SignalId s) const {
    return var[static_cast<std::size_t>(s)];
  }
  /// Pre-binds `s` to an existing solver variable (before encoding).
  void bind(netlist::SignalId s, Var v) {
    var[static_cast<std::size_t>(s)] = v;
  }
};

/// Encodes all gates of `net` into `solver`. `vars` must be sized by
/// resize_for(); leaves without a pre-bound variable get fresh ones.
/// Returns the number of clauses added.
int encode_network(const netlist::Network& net, Solver* solver,
                   SignalVars* vars);

/// Sizes (or clears) `vars` for `net`.
void resize_signal_vars(const netlist::Network& net, SignalVars* vars);

/// Adds clauses asserting a == b (or a == !b when `complement`).
void add_equal(Solver* solver, Var a, Var b, bool complement = false);

}  // namespace amdrel::verify

#pragma once
// Small CDCL SAT solver for the formal equivalence checker.
//
// A classic conflict-driven clause-learning core in the MiniSat lineage:
// two-literal watching, VSIDS-style variable activities kept in an
// indexed max-heap, first-UIP clause learning with activity-guided
// learnt-database reduction, Luby restarts and phase saving. Solves are
// incremental (the clause database only grows between calls) and take
// assumption literals, which is how the equivalence checker activates one
// miter output at a time while reusing everything learnt so far.
//
// Budgets: a per-solve conflict limit and a wall-clock deadline, both
// optional; an exhausted budget yields kUnknown and leaves the solver
// usable for further solve() calls.

#include <chrono>
#include <cstdint>
#include <vector>

namespace amdrel::verify {

using Var = int;
/// Literal encoding: lit = 2*var + (negated ? 1 : 0).
using Lit = int;
constexpr Lit kUndefLit = -1;

inline Lit mk_lit(Var v, bool negated = false) {
  return 2 * v + (negated ? 1 : 0);
}
inline Lit negate(Lit l) { return l ^ 1; }
inline Var var_of(Lit l) { return l >> 1; }
inline bool is_negated(Lit l) { return (l & 1) != 0; }

/// Cumulative search-effort counters (across all solve() calls).
struct SolverStats {
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t solves = 0;
};

class Solver {
 public:
  enum class Result { kSat, kUnsat, kUnknown };

  Solver();
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;
  Solver(Solver&&) = default;
  Solver& operator=(Solver&&) = default;

  Var new_var();
  int num_vars() const { return static_cast<int>(activity_.size()); }
  int num_clauses() const { return n_problem_clauses_; }

  /// Adds a problem clause. Returns false if the formula became
  /// unsatisfiable at the root level (the solver stays in that state).
  bool add_clause(std::vector<Lit> lits);

  /// Solves the formula under the given assumption literals. kUnsat means
  /// unsatisfiable *under the assumptions* (or globally, if none given).
  Result solve(const std::vector<Lit>& assumptions = {});

  /// Model value of `v` after a kSat result.
  bool model_value(Var v) const {
    return model_[static_cast<std::size_t>(v)] == 1;
  }

  /// Per-solve conflict budget (0 = unlimited).
  void set_conflict_budget(std::uint64_t max_conflicts) {
    conflict_budget_ = max_conflicts;
  }
  /// Absolute wall-clock deadline for all further solving (optional).
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void clear_deadline() { has_deadline_ = false; }

  const SolverStats& stats() const { return stats_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
  };

  // Assignment values: 0 = unassigned, 1 = true, -1 = false.
  signed char value_lit(Lit l) const {
    signed char v = assigns_[static_cast<std::size_t>(var_of(l))];
    return is_negated(l) ? static_cast<signed char>(-v) : v;
  }

  void enqueue(Lit l, int reason);
  int propagate();  ///< returns conflicting clause index, -1 if none
  void analyze(int conflict, std::vector<Lit>* learnt, int* backtrack_level);
  void cancel_until(int level);
  Lit pick_branch_lit();
  void attach_clause(int ci);
  void rebuild_watches();
  void reduce_learnts();
  void bump_var(Var v);
  void bump_clause(Clause& c);
  void decay_activities();

  // Indexed max-heap over variable activities.
  void heap_insert(Var v);
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);
  Var heap_pop();
  bool heap_contains(Var v) const {
    return heap_index_[static_cast<std::size_t>(v)] >= 0;
  }

  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  ///< per literal: clause indices
  std::vector<signed char> assigns_;       ///< per var
  std::vector<signed char> model_;
  std::vector<char> polarity_;             ///< saved phases
  std::vector<int> level_;                 ///< per var decision level
  std::vector<int> reason_;                ///< per var clause index, -1
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  int propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<int> heap_index_;

  std::vector<char> seen_;  ///< scratch for analyze()

  bool ok_ = true;  ///< false once root-level unsat
  int n_problem_clauses_ = 0;
  std::uint64_t learnt_limit_ = 8192;  ///< reduce_learnts() threshold

  std::uint64_t conflict_budget_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;

  SolverStats stats_;
};

}  // namespace amdrel::verify

#pragma once
// Formal (SAT-based) equivalence checking between two networks.
//
// Combinational designs are proven directly: both networks are Tseitin-
// encoded over shared primary-input variables and every primary-output
// pair is proven equal with two assumption-activated miter solves.
// Sequential designs are cut at the register boundary: latches are
// matched across the two networks (simulation signatures over lock-step
// random runs, refined until unique, with a D-cone-support tiebreak),
// matched Q pairs become shared pseudo-inputs, and the proof obligations
// extend to every matched pair's next-state (D) function. Unsatisfiable
// miters for any register bijection with matching reset states prove
// sequential equivalence; a satisfiable miter yields a counterexample
// that is minimized and replayed through the two-value simulator before
// the pair is declared non-equivalent.
//
// Before the output miters run, a SAT-sweeping pass merges internal
// equivalence candidates (64-bit parallel random simulation signatures,
// conflict-limited pairwise proofs in topological order), which keeps
// structurally different netlists — e.g. pre- vs post-LUT-mapping —
// tractable for the CDCL core.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "netlist/network.hpp"
#include "verify/solver.hpp"

namespace amdrel::verify {

/// Size and effort numbers of one equivalence proof attempt.
struct SatStats {
  int vars = 0;
  int clauses = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t solves = 0;
  double wall_s = 0.0;
};

enum class EquivStatus {
  kEquivalent,     ///< every miter proven UNSAT
  kNotEquivalent,  ///< a replay-confirmed counterexample exists
  kUnknown,        ///< budget exhausted or register matching unresolved
};
const char* equiv_status_name(EquivStatus s);

/// A distinguishing input assignment for the combinational cut: primary
/// inputs plus (for sequential designs) one state bit per matched
/// register pair. Minimized: non-care inputs are canonicalized to 0 and
/// listed out of `care_inputs`.
struct Counterexample {
  std::vector<std::pair<std::string, bool>> inputs;     ///< PI name → value
  std::vector<std::pair<std::string, bool>> registers;  ///< latch name → Q
  std::vector<std::string> care_inputs;  ///< inputs the divergence needs
  std::string diverging_output;  ///< PO name or "next-state(<latch>)"
  bool value_a = false;          ///< the two sides' values at divergence
  bool value_b = false;

  std::string to_text() const;
};

struct EquivOptions {
  double time_limit_s = 60.0;           ///< whole-proof wall budget
  std::uint64_t conflict_limit = 0;     ///< per output miter (0 = none)
  std::uint64_t sweep_conflict_limit = 2000;  ///< per sweep candidate
  int sim_words = 8;        ///< 64-bit pattern words for sweep signatures
  int signature_cycles = 64;  ///< base lock-step cycles for FF matching
  std::uint64_t seed = 1;
  /// Known register correspondences: (side-A Q name, side-B Q name)
  /// pairs. When they pin every latch on both sides, signature matching
  /// is skipped and this bijection is proven directly — guided
  /// sequential equivalence, for callers (e.g. the flow proving against
  /// a decoded fabric) that know the placement-derived FF mapping. A
  /// wrong map still refutes; a partial or stale map is ignored.
  std::vector<std::pair<std::string, std::string>> register_map;
};

struct EquivResult {
  EquivStatus status = EquivStatus::kUnknown;
  std::string message;       ///< one-line verdict / failure reason
  std::uint64_t seed = 0;    ///< RNG seed the check ran with (reproducibility)
  SatStats stats;
  int matched_registers = 0;
  int proved_outputs = 0;    ///< output + next-state pairs proven UNSAT
  int merged_points = 0;     ///< internal pairs merged by SAT sweeping
  std::optional<Counterexample> cex;

  bool equivalent() const { return status == EquivStatus::kEquivalent; }
  std::string to_text() const;
  std::string to_json() const;
};

/// Proves (or refutes) sequential equivalence of `a` and `b` at the
/// register boundary. Inputs/outputs are matched by name, like
/// netlist::check_equivalence.
EquivResult prove_equivalence(const netlist::Network& a,
                              const netlist::Network& b,
                              const EquivOptions& options = {});

}  // namespace amdrel::verify

#include "bitgen/bitstream.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace amdrel::bitgen {

using netlist::kNoSignal;
using netlist::LatchInit;
using netlist::Network;
using netlist::SignalId;
using netlist::TruthTable;
using place::BlockKind;
using route::RrNode;
using route::RrType;

long long Bitstream::config_bits() const {
  long long bits = 0;
  const int lut_bits_n = 1 << k;
  const int sel_bits = 6;  // enough for I + N + "unused"
  for (const auto& clb : clbs) {
    bits += 1;  // CLB clock enable
    bits += static_cast<long long>(clb.bles.size()) *
            (lut_bits_n + 3 + k * sel_bits);
  }
  bits += static_cast<long long>(wire_switches.size() +
                                 opin_switches.size() + ipin_switches.size());
  return bits;
}

namespace {

WireRef wire_of(const RrNode& n) {
  WireRef w;
  w.horizontal = n.type == RrType::kChanX;
  w.x = n.x;
  w.y = n.y;
  w.track = n.track;
  return w;
}

// Walks every routed edge and classifies the switch it configures, in
// the canonical order: nets ascending, tree order within a net,
// wire-wire switches deduplicated to their first occurrence. Repeated
// scans therefore yield identical sequences — the streaming emitter
// relies on that. Fills the per-cluster signal→IPIN map if requested.
template <typename WwFn, typename OpFn, typename IpFn>
void scan_switches(const place::Placement& placement,
                   const route::RrGraph& graph,
                   const route::RouteResult& routing,
                   std::map<int, std::map<SignalId, int>>* ipin_of, WwFn&& ww,
                   OpFn&& op, IpFn&& ip) {
  std::set<std::tuple<bool, int, int, int, bool, int, int, int>> seen_ww;
  for (std::size_t ni = 0; ni < routing.routes.size(); ++ni) {
    const auto& route = routing.routes[ni];
    const SignalId sig = placement.nets()[ni].signal;
    for (std::size_t kk = 1; kk < route.nodes.size(); ++kk) {
      const RrNode child = graph.node_info(route.nodes[kk]);
      const RrNode parent = graph.node_info(
          route.nodes[static_cast<std::size_t>(route.parent[kk])]);
      const bool child_wire =
          child.type == RrType::kChanX || child.type == RrType::kChanY;
      const bool parent_wire =
          parent.type == RrType::kChanX || parent.type == RrType::kChanY;
      if (parent_wire && child_wire) {
        WireWireSwitch sw{wire_of(parent), wire_of(child)};
        if (sw.b < sw.a) std::swap(sw.a, sw.b);
        auto key = std::tuple_cat(sw.a.key(), sw.b.key());
        if (seen_ww.insert(key).second) ww(sw);
      } else if (parent.type == RrType::kOpin && child_wire) {
        const auto& loc = placement.location(parent.block);
        op(OpinSwitch{loc.x, loc.y, parent.pin, wire_of(child)});
      } else if (parent_wire && child.type == RrType::kIpin) {
        const auto& loc = placement.location(child.block);
        ip(IpinSwitch{wire_of(parent), loc.x, loc.y, child.pin});
        if (ipin_of != nullptr &&
            placement.blocks()[static_cast<std::size_t>(child.block)].kind ==
                BlockKind::kClb) {
          (*ipin_of)[child.block][sig] = child.pin;
        }
      }
      // IPIN→SINK edges carry no configuration.
    }
  }
}

// Global clock: the latch clock signal (paper fabric: one clock/CLB).
std::string detect_clock(const Network& net) {
  std::set<SignalId> clocks;
  for (const auto& l : net.latches()) {
    if (l.clock != kNoSignal) clocks.insert(l.clock);
  }
  AMDREL_CHECK_MSG(clocks.size() <= 1,
                   "bitstream supports a single global clock");
  return clocks.empty() ? std::string() : net.signal_name(*clocks.begin());
}

// One CLB's configuration frame — the only per-tile state either
// emission path (materialized or streaming) ever holds.
ClbConfig make_clb_config(
    const pack::PackedNetlist& packed, const place::Placement& placement,
    const arch::ArchSpec& spec, int ci,
    const std::map<int, std::map<SignalId, int>>& ipin_of) {
  const Network& net = packed.network();
  const auto& cluster = packed.clusters()[static_cast<std::size_t>(ci)];
  const int block = placement.block_of_cluster(ci);
  const auto& loc = placement.location(block);
  ClbConfig clb;
  clb.x = loc.x;
  clb.y = loc.y;
  clb.bles.resize(static_cast<std::size_t>(spec.n));

  // BLE slot of each intra-cluster signal (for feedback selects).
  std::map<SignalId, int> slot_of;
  for (std::size_t s = 0; s < cluster.bles.size(); ++s) {
    slot_of[packed.bles()[static_cast<std::size_t>(cluster.bles[s])].output] =
        static_cast<int>(s);
  }

  for (std::size_t s = 0; s < cluster.bles.size(); ++s) {
    const auto& ble = packed.bles()[static_cast<std::size_t>(cluster.bles[s])];
    BleConfig& cfg = clb.bles[s];
    cfg.used = true;
    cfg.input_sel.assign(static_cast<std::size_t>(spec.k), -1);

    // LUT function: the mapped LUT, or a route-through for FF-only BLEs.
    TruthTable tt = TruthTable::identity();
    std::vector<SignalId> lut_inputs = ble.inputs;
    if (ble.lut_gate >= 0) {
      tt = net.gates()[static_cast<std::size_t>(ble.lut_gate)].table;
    }
    AMDREL_CHECK(static_cast<int>(lut_inputs.size()) <= spec.k);
    // Expand to K inputs (don't-care padding).
    while (tt.n_inputs() < spec.k) tt = tt.extend(tt.n_inputs() + 1);
    cfg.lut_bits = 0;
    for (std::uint64_t row = 0; row < tt.n_rows(); ++row) {
      if (tt.get(row)) cfg.lut_bits |= 1u << row;
    }
    for (std::size_t i = 0; i < lut_inputs.size(); ++i) {
      const SignalId in = lut_inputs[i];
      auto fb = slot_of.find(in);
      if (fb != slot_of.end()) {
        cfg.input_sel[i] = spec.cluster_inputs() + fb->second;
      } else {
        static const std::map<SignalId, int> kNoPins;
        auto pm = ipin_of.find(block);
        const auto& pin_map = pm == ipin_of.end() ? kNoPins : pm->second;
        auto it = pin_map.find(in);
        AMDREL_CHECK_MSG(it != pin_map.end(),
                         "cluster input signal was not routed to a pin: " +
                             net.signal_name(in));
        cfg.input_sel[i] = it->second;
      }
    }
    if (ble.latch >= 0) {
      const auto& l = net.latches()[static_cast<std::size_t>(ble.latch)];
      cfg.use_ff = true;
      cfg.ff_init = l.init == LatchInit::kOne;
      cfg.clock_enable = true;
      clb.clb_clock_enable = true;
    }
  }
  return clb;
}

}  // namespace

Bitstream generate_bitstream(const pack::PackedNetlist& packed,
                             const place::Placement& placement,
                             const route::RrGraph& graph,
                             const route::RouteResult& routing,
                             const arch::ArchSpec& spec) {
  AMDREL_CHECK_MSG(routing.success, "cannot generate bitstream: unrouted");
  AMDREL_CHECK_MSG(spec.k <= 5, "bitstream frame format supports K <= 5");
  obs::Span span("bitgen.generate");
  const Network& net = packed.network();

  Bitstream bs;
  bs.design = net.name();
  bs.nx = placement.nx();
  bs.ny = placement.ny();
  bs.channel_width = graph.channel_width();
  bs.k = spec.k;
  bs.n = spec.n;
  bs.cluster_inputs = spec.cluster_inputs();
  bs.clock_name = detect_clock(net);

  // ---- pads ----
  for (std::size_t bi = 0; bi < placement.blocks().size(); ++bi) {
    const auto& blk = placement.blocks()[bi];
    if (blk.kind == BlockKind::kClb) continue;
    const auto& loc = placement.location(static_cast<int>(bi));
    PadConfig pad;
    pad.x = loc.x;
    pad.y = loc.y;
    pad.sub = loc.sub;
    pad.is_input = blk.kind == BlockKind::kInputPad;
    pad.signal = net.signal_name(blk.signal);
    bs.pads.push_back(std::move(pad));
  }

  // ---- routing switches + per-cluster signal→IPIN map ----
  // ipin_of[cluster block][signal] = input pin index carrying it.
  std::map<int, std::map<SignalId, int>> ipin_of;
  scan_switches(
      placement, graph, routing, &ipin_of,
      [&](const WireWireSwitch& s) { bs.wire_switches.push_back(s); },
      [&](const OpinSwitch& s) { bs.opin_switches.push_back(s); },
      [&](const IpinSwitch& s) { bs.ipin_switches.push_back(s); });

  // ---- CLB frames ----
  for (std::size_t ci = 0; ci < packed.clusters().size(); ++ci) {
    bs.clbs.push_back(
        make_clb_config(packed, placement, spec, static_cast<int>(ci),
                        ipin_of));
  }
  const std::uint64_t switches = bs.wire_switches.size() +
                                 bs.opin_switches.size() +
                                 bs.ipin_switches.size();
  static obs::Counter& c_switches = obs::counter("bitgen.switches");
  static obs::Counter& c_bits = obs::counter("bitgen.config_bits");
  c_switches.add(switches);
  c_bits.add(static_cast<std::uint64_t>(bs.config_bits()));
  if (span.active()) {
    span.metric("switches", static_cast<double>(switches));
    span.metric("config_bits", static_cast<double>(bs.config_bits()));
    span.metric("clbs", static_cast<double>(bs.clbs.size()));
  }
  return bs;
}

// --------------------------------------------------------- serialization --

void FileSink::put(const std::uint8_t* data, std::size_t n) {
  if (n == 0) return;
  AMDREL_CHECK_MSG(std::fwrite(data, 1, n, file_) == n,
                   "bitstream file write failed");
}

namespace {

/// Buffered little-endian writer over a BitSink.
class ByteWriter {
 public:
  explicit ByteWriter(BitSink* sink) : sink_(sink) { buf_.reserve(kBufSize); }
  ~ByteWriter() { flush(); }
  void u8(std::uint8_t v) {
    if (buf_.size() == kBufSize) flush();
    buf_.push_back(v);
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    for (char c : s) u8(static_cast<std::uint8_t>(c));
  }
  void flush() {
    if (!buf_.empty()) {
      sink_->write(buf_.data(), buf_.size());
      buf_.clear();
    }
  }

 private:
  static constexpr std::size_t kBufSize = 1 << 16;
  BitSink* sink_;
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(&bytes) {}
  std::uint8_t u8() {
    AMDREL_CHECK_MSG(pos_ < bytes_->size(), "bitstream truncated");
    return (*bytes_)[pos_++];
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::string str() {
    std::uint32_t n = u32();
    AMDREL_CHECK_MSG(pos_ + n <= bytes_->size(), "bitstream truncated");
    std::string s(reinterpret_cast<const char*>(bytes_->data() + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  const std::vector<std::uint8_t>* bytes_;
  std::size_t pos_ = 0;
};

constexpr std::uint32_t kMagic = 0x4c444d41;  // "AMDL"

void put_wire(ByteWriter& w, const WireRef& wire) {
  w.u8(wire.horizontal ? 1 : 0);
  w.i32(wire.x);
  w.i32(wire.y);
  w.i32(wire.track);
}

WireRef get_wire(ByteReader& r) {
  WireRef w;
  w.horizontal = r.u8() != 0;
  w.x = r.i32();
  w.y = r.i32();
  w.track = r.i32();
  return w;
}

void put_header(ByteWriter& w, const std::string& design, int nx, int ny,
                int channel_width, int k, int n, int cluster_inputs,
                const std::string& clock_name) {
  w.u32(kMagic);
  w.str(design);
  w.i32(nx);
  w.i32(ny);
  w.i32(channel_width);
  w.i32(k);
  w.i32(n);
  w.i32(cluster_inputs);
  w.str(clock_name);
}

void put_pad(ByteWriter& w, const PadConfig& p) {
  w.i32(p.x);
  w.i32(p.y);
  w.i32(p.sub);
  w.u8(p.is_input ? 1 : 0);
  w.str(p.signal);
}

void put_clb(ByteWriter& w, const ClbConfig& clb) {
  w.i32(clb.x);
  w.i32(clb.y);
  w.u8(clb.clb_clock_enable ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(clb.bles.size()));
  for (const auto& b : clb.bles) {
    w.u8(b.used ? 1 : 0);
    w.u32(b.lut_bits);
    w.u8(b.use_ff ? 1 : 0);
    w.u8(b.ff_init ? 1 : 0);
    w.u8(b.clock_enable ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(b.input_sel.size()));
    for (int sel : b.input_sel) w.i32(sel);
  }
}

void put_ww(ByteWriter& w, const WireWireSwitch& s) {
  put_wire(w, s.a);
  put_wire(w, s.b);
}

void put_op(ByteWriter& w, const OpinSwitch& s) {
  w.i32(s.x);
  w.i32(s.y);
  w.i32(s.pin);
  put_wire(w, s.wire);
}

void put_ip(ByteWriter& w, const IpinSwitch& s) {
  put_wire(w, s.wire);
  w.i32(s.x);
  w.i32(s.y);
  w.i32(s.pin);
}

}  // namespace

void serialize_to(const Bitstream& bs, BitSink* sink) {
  AMDREL_CHECK(sink != nullptr);
  obs::Span span("bitgen.serialize");
  const std::uint64_t start = sink->bytes_written();
  {
    ByteWriter w(sink);
    put_header(w, bs.design, bs.nx, bs.ny, bs.channel_width, bs.k, bs.n,
               bs.cluster_inputs, bs.clock_name);
    w.u32(static_cast<std::uint32_t>(bs.pads.size()));
    for (const auto& p : bs.pads) put_pad(w, p);
    w.u32(static_cast<std::uint32_t>(bs.clbs.size()));
    for (const auto& clb : bs.clbs) put_clb(w, clb);
    w.u32(static_cast<std::uint32_t>(bs.wire_switches.size()));
    for (const auto& s : bs.wire_switches) put_ww(w, s);
    w.u32(static_cast<std::uint32_t>(bs.opin_switches.size()));
    for (const auto& s : bs.opin_switches) put_op(w, s);
    w.u32(static_cast<std::uint32_t>(bs.ipin_switches.size()));
    for (const auto& s : bs.ipin_switches) put_ip(w, s);
  }
  const std::uint64_t bytes = sink->bytes_written() - start;
  static obs::Counter& c_bytes = obs::counter("bitgen.bytes");
  c_bytes.add(bytes);
  if (span.active()) {
    span.metric("bytes", static_cast<double>(bytes));
  }
}

std::vector<std::uint8_t> serialize(const Bitstream& bs) {
  VectorSink sink;
  serialize_to(bs, &sink);
  return sink.take();
}

void stream_bitstream(const pack::PackedNetlist& packed,
                      const place::Placement& placement,
                      const route::RrGraph& graph,
                      const route::RouteResult& routing,
                      const arch::ArchSpec& spec, BitSink* sink) {
  AMDREL_CHECK_MSG(routing.success, "cannot generate bitstream: unrouted");
  AMDREL_CHECK_MSG(spec.k <= 5, "bitstream frame format supports K <= 5");
  AMDREL_CHECK(sink != nullptr);
  obs::Span span("bitgen.stream");
  const Network& net = packed.network();
  const std::uint64_t start = sink->bytes_written();

  // Count pass: section sizes plus the signal→IPIN map CLB frames need.
  std::uint32_t n_ww = 0, n_op = 0, n_ip = 0;
  std::map<int, std::map<SignalId, int>> ipin_of;
  scan_switches(placement, graph, routing, &ipin_of,
                [&](const WireWireSwitch&) { ++n_ww; },
                [&](const OpinSwitch&) { ++n_op; },
                [&](const IpinSwitch&) { ++n_ip; });

  ByteWriter w(sink);
  put_header(w, net.name(), placement.nx(), placement.ny(),
             graph.channel_width(), spec.k, spec.n, spec.cluster_inputs(),
             detect_clock(net));

  std::uint32_t n_pads = 0;
  for (const auto& blk : placement.blocks()) {
    n_pads += blk.kind != BlockKind::kClb;
  }
  w.u32(n_pads);
  for (std::size_t bi = 0; bi < placement.blocks().size(); ++bi) {
    const auto& blk = placement.blocks()[bi];
    if (blk.kind == BlockKind::kClb) continue;
    const auto& loc = placement.location(static_cast<int>(bi));
    PadConfig pad;
    pad.x = loc.x;
    pad.y = loc.y;
    pad.sub = loc.sub;
    pad.is_input = blk.kind == BlockKind::kInputPad;
    pad.signal = net.signal_name(blk.signal);
    put_pad(w, pad);
  }

  // CLB frames, one tile at a time.
  w.u32(static_cast<std::uint32_t>(packed.clusters().size()));
  for (std::size_t ci = 0; ci < packed.clusters().size(); ++ci) {
    put_clb(w, make_clb_config(packed, placement, spec,
                               static_cast<int>(ci), ipin_of));
  }

  // Switch sections: one emit pass per section, canonical scan order.
  auto drop_ww = [](const WireWireSwitch&) {};
  auto drop_op = [](const OpinSwitch&) {};
  auto drop_ip = [](const IpinSwitch&) {};
  w.u32(n_ww);
  scan_switches(placement, graph, routing, nullptr,
                [&](const WireWireSwitch& s) { put_ww(w, s); }, drop_op,
                drop_ip);
  w.u32(n_op);
  scan_switches(placement, graph, routing, nullptr, drop_ww,
                [&](const OpinSwitch& s) { put_op(w, s); }, drop_ip);
  w.u32(n_ip);
  scan_switches(placement, graph, routing, nullptr, drop_ww, drop_op,
                [&](const IpinSwitch& s) { put_ip(w, s); });
  w.flush();

  const std::uint64_t bytes = sink->bytes_written() - start;
  static obs::Counter& c_switches = obs::counter("bitgen.switches");
  static obs::Counter& c_bytes = obs::counter("bitgen.bytes");
  c_switches.add(n_ww + n_op + n_ip);
  c_bytes.add(bytes);
  if (span.active()) {
    span.metric("bytes", static_cast<double>(bytes));
    span.metric("switches", static_cast<double>(n_ww + n_op + n_ip));
  }
}

Bitstream deserialize(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  AMDREL_CHECK_MSG(r.u32() == kMagic, "not an AMDREL bitstream");
  Bitstream bs;
  bs.design = r.str();
  bs.nx = r.i32();
  bs.ny = r.i32();
  bs.channel_width = r.i32();
  bs.k = r.i32();
  bs.n = r.i32();
  bs.cluster_inputs = r.i32();
  bs.clock_name = r.str();

  const std::uint32_t n_pads = r.u32();
  for (std::uint32_t i = 0; i < n_pads; ++i) {
    PadConfig p;
    p.x = r.i32();
    p.y = r.i32();
    p.sub = r.i32();
    p.is_input = r.u8() != 0;
    p.signal = r.str();
    bs.pads.push_back(std::move(p));
  }
  const std::uint32_t n_clbs = r.u32();
  for (std::uint32_t i = 0; i < n_clbs; ++i) {
    ClbConfig clb;
    clb.x = r.i32();
    clb.y = r.i32();
    clb.clb_clock_enable = r.u8() != 0;
    const std::uint32_t n_bles = r.u32();
    for (std::uint32_t j = 0; j < n_bles; ++j) {
      BleConfig b;
      b.used = r.u8() != 0;
      b.lut_bits = r.u32();
      b.use_ff = r.u8() != 0;
      b.ff_init = r.u8() != 0;
      b.clock_enable = r.u8() != 0;
      const std::uint32_t n_sel = r.u32();
      for (std::uint32_t s = 0; s < n_sel; ++s) b.input_sel.push_back(r.i32());
      clb.bles.push_back(std::move(b));
    }
    bs.clbs.push_back(std::move(clb));
  }
  const std::uint32_t n_ww = r.u32();
  for (std::uint32_t i = 0; i < n_ww; ++i) {
    WireWireSwitch s;
    s.a = get_wire(r);
    s.b = get_wire(r);
    bs.wire_switches.push_back(s);
  }
  const std::uint32_t n_op = r.u32();
  for (std::uint32_t i = 0; i < n_op; ++i) {
    OpinSwitch s;
    s.x = r.i32();
    s.y = r.i32();
    s.pin = r.i32();
    s.wire = get_wire(r);
    bs.opin_switches.push_back(s);
  }
  const std::uint32_t n_ip = r.u32();
  for (std::uint32_t i = 0; i < n_ip; ++i) {
    IpinSwitch s;
    s.wire = get_wire(r);
    s.x = r.i32();
    s.y = r.i32();
    s.pin = r.i32();
    bs.ipin_switches.push_back(s);
  }
  return bs;
}

// ------------------------------------------------------- fabric decoding --

Network decode_to_network(const Bitstream& bs) {
  Network net(bs.design + "_decoded");

  // Union-find over wire segments to recover net connectivity.
  std::map<WireRef, int> wire_ids;
  auto wire_id = [&](const WireRef& w) {
    auto it = wire_ids.find(w);
    if (it != wire_ids.end()) return it->second;
    int id = static_cast<int>(wire_ids.size());
    wire_ids.emplace(w, id);
    return id;
  };
  std::vector<int> parent;
  std::function<int(int)> find = [&](int a) {
    while (parent[static_cast<std::size_t>(a)] != a) {
      parent[static_cast<std::size_t>(a)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(a)])];
      a = parent[static_cast<std::size_t>(a)];
    }
    return a;
  };
  auto ensure = [&](int id) {
    while (static_cast<int>(parent.size()) <= id) {
      parent.push_back(static_cast<int>(parent.size()));
    }
  };
  auto unite = [&](int a, int b) {
    ensure(std::max(a, b));
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(a)] = b;
  };
  for (const auto& s : bs.wire_switches) {
    int a = wire_id(s.a), b = wire_id(s.b);
    ensure(std::max(a, b));
    unite(a, b);
  }
  // Make sure isolated wires referenced only by pin switches exist.
  for (const auto& s : bs.opin_switches) ensure(wire_id(s.wire));
  for (const auto& s : bs.ipin_switches) ensure(wire_id(s.wire));

  // ---- create PIs and clock ----
  std::map<std::string, SignalId> pi_signal;
  for (const auto& pad : bs.pads) {
    if (!pad.is_input) continue;
    SignalId s = net.add_signal(pad.signal);
    net.add_input(s);
    pi_signal[pad.signal] = s;
  }
  SignalId clock = kNoSignal;
  if (!bs.clock_name.empty()) {
    auto it = pi_signal.find(bs.clock_name);
    if (it != pi_signal.end()) {
      clock = it->second;
    } else {
      clock = net.add_signal(bs.clock_name);
      net.add_input(clock);
    }
  }

  // ---- BLE output signals per tile ----
  std::map<std::pair<int, int>, const ClbConfig*> clb_at;
  for (const auto& clb : bs.clbs) clb_at[{clb.x, clb.y}] = &clb;
  std::map<std::tuple<int, int, int>, SignalId> ble_out;  // (x, y, slot)
  for (const auto& clb : bs.clbs) {
    for (std::size_t s = 0; s < clb.bles.size(); ++s) {
      if (!clb.bles[s].used) continue;
      ble_out[{clb.x, clb.y, static_cast<int>(s)}] = net.add_signal(
          "clb" + std::to_string(clb.x) + "_" + std::to_string(clb.y) + "_b" +
          std::to_string(s));
    }
  }

  // ---- driver signal per wire component ----
  std::map<int, SignalId> comp_driver;
  for (const auto& s : bs.opin_switches) {
    SignalId driver = kNoSignal;
    const bool is_core = s.x >= 1 && s.x <= bs.nx && s.y >= 1 && s.y <= bs.ny;
    if (is_core) {
      auto it = ble_out.find({s.x, s.y, s.pin});
      AMDREL_CHECK_MSG(it != ble_out.end(),
                       "bitstream routes from an unused BLE output");
      driver = it->second;
    } else {
      // Input pad at (x, y, sub=pin).
      driver = kNoSignal;
      for (const auto& pad : bs.pads) {
        if (pad.is_input && pad.x == s.x && pad.y == s.y && pad.sub == s.pin) {
          driver = pi_signal.at(pad.signal);
          break;
        }
      }
      AMDREL_CHECK_MSG(driver != kNoSignal,
                       "bitstream routes from an unconfigured pad");
    }
    const int comp = find(wire_id(s.wire));
    auto [it, inserted] = comp_driver.emplace(comp, driver);
    AMDREL_CHECK_MSG(inserted || it->second == driver,
                     "two drivers on one routing component");
  }

  // ---- signal arriving at each (tile, input pin) ----
  std::map<std::tuple<int, int, int>, SignalId> at_ipin;
  for (const auto& s : bs.ipin_switches) {
    const int comp = find(wire_id(s.wire));
    auto it = comp_driver.find(comp);
    AMDREL_CHECK_MSG(it != comp_driver.end(),
                     "routing component has no driver");
    at_ipin[{s.x, s.y, s.pin}] = it->second;
  }

  // ---- constant-0 for unused LUT inputs ----
  SignalId const0 = kNoSignal;
  auto get_const0 = [&]() {
    if (const0 == kNoSignal) {
      const0 = net.add_signal("fabric_const0");
      net.add_gate("fabric_const0_drv", TruthTable::constant(false), {},
                   const0);
    }
    return const0;
  };

  // ---- instantiate BLEs ----
  for (const auto& clb : bs.clbs) {
    for (std::size_t slot = 0; slot < clb.bles.size(); ++slot) {
      const BleConfig& b = clb.bles[slot];
      if (!b.used) continue;
      SignalId out = ble_out.at({clb.x, clb.y, static_cast<int>(slot)});

      std::vector<SignalId> ins;
      TruthTable tt(bs.k);
      for (std::uint64_t row = 0; row < tt.n_rows(); ++row) {
        tt.set(row, (b.lut_bits >> row) & 1);
      }
      for (int i = 0; i < bs.k; ++i) {
        const int sel = b.input_sel[static_cast<std::size_t>(i)];
        if (sel < 0) {
          ins.push_back(get_const0());
        } else if (sel < bs.cluster_inputs) {
          auto it = at_ipin.find({clb.x, clb.y, sel});
          AMDREL_CHECK_MSG(it != at_ipin.end(),
                           "LUT input selects an unrouted cluster pin");
          ins.push_back(it->second);
        } else {
          const int fb = sel - bs.cluster_inputs;
          auto it = ble_out.find({clb.x, clb.y, fb});
          AMDREL_CHECK_MSG(it != ble_out.end(),
                           "LUT input selects an unused BLE feedback");
          ins.push_back(it->second);
        }
      }

      const std::string base = net.signal_name(out);
      if (b.use_ff) {
        SignalId d = net.add_signal(base + "_d");
        net.add_gate(base + "_lut", tt, std::move(ins), d);
        net.add_latch(base + "_ff", d, out, clock,
                      b.ff_init ? LatchInit::kOne : LatchInit::kZero);
      } else {
        net.add_gate(base + "_lut", tt, std::move(ins), out);
      }
    }
  }

  // ---- primary outputs from output pads ----
  for (const auto& pad : bs.pads) {
    if (pad.is_input) continue;
    auto it = at_ipin.find({pad.x, pad.y, pad.sub});
    AMDREL_CHECK_MSG(it != at_ipin.end(),
                     "output pad not reached by routing: " + pad.signal);
    SignalId po = net.add_signal(pad.signal);
    net.add_gate(pad.signal + "_obuf", TruthTable::identity(), {it->second},
                 po);
    net.add_output(po);
  }

  net.validate();
  return net;
}

}  // namespace amdrel::bitgen

#pragma once
// DAGGER — FPGA configuration bitstream generation and verification.
//
// The bitstream captures everything the fabric needs: per-CLB frames (LUT
// contents, FF usage/init, BLE clock enables, local crossbar selects), IO
// pad assignments, and the enabled routing switches identified by their
// structural coordinates (track/tile), so a decoder needs only the
// architecture — not the CAD database — to reconstruct the configuration.
//
// `decode_to_network` rebuilds a gate-level netlist from a bitstream; the
// flow uses it for bit-exact sequential equivalence against the mapped
// netlist (a ground-truth check on packing, placement, routing and
// bitstream generation together).

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "netlist/network.hpp"
#include "route/pathfinder.hpp"

namespace amdrel::bitgen {

/// A wire segment in structural coordinates.
struct WireRef {
  bool horizontal = true;  ///< chanx vs chany
  int x = 0, y = 0, track = 0;
  auto key() const { return std::tuple(horizontal, x, y, track); }
  bool operator<(const WireRef& o) const { return key() < o.key(); }
  bool operator==(const WireRef& o) const { return key() == o.key(); }
};

/// Routing switch kinds (what a configuration bit turns on).
struct WireWireSwitch {  // switch-box pass transistor
  WireRef a, b;
};
struct OpinSwitch {  // output pin / input pad onto a track
  int x = 0, y = 0, pin = 0;
  WireRef wire;
};
struct IpinSwitch {  // track into an input pin / output pad
  WireRef wire;
  int x = 0, y = 0, pin = 0;
};

struct BleConfig {
  bool used = false;
  std::uint32_t lut_bits = 0;    ///< 2^K truth-table bits
  bool use_ff = false;
  bool ff_init = false;          ///< state after global clear
  bool clock_enable = false;     ///< BLE-level gated clock
  std::vector<int> input_sel;    ///< K entries: 0..I-1 = cluster input pin,
                                 ///< I..I+N-1 = BLE feedback, -1 = unused
};

struct ClbConfig {
  int x = 0, y = 0;
  std::vector<BleConfig> bles;   ///< N entries
  bool clb_clock_enable = false;
};

struct PadConfig {
  int x = 0, y = 0, sub = 0;
  bool is_input = false;
  std::string signal;            ///< user signal name (pad constraints)
};

struct Bitstream {
  std::string design;
  int nx = 0, ny = 0;
  int channel_width = 0;
  int k = 4, n = 5, cluster_inputs = 12;
  std::string clock_name;        ///< global clock net ("" if none)

  std::vector<PadConfig> pads;
  std::vector<ClbConfig> clbs;
  std::vector<WireWireSwitch> wire_switches;
  std::vector<OpinSwitch> opin_switches;
  std::vector<IpinSwitch> ipin_switches;

  /// Total configuration bits (frame accounting for reports).
  long long config_bits() const;
};

/// Generates the bitstream from a routed design.
Bitstream generate_bitstream(const pack::PackedNetlist& packed,
                             const place::Placement& placement,
                             const route::RrGraph& graph,
                             const route::RouteResult& routing,
                             const arch::ArchSpec& spec);

/// Destination for serialized bitstream bytes. Writes arrive in chunks;
/// the sink never sees the whole artifact at once, so a fixed-size sink
/// (file, hash) keeps bitstream emission O(1) in design size.
class BitSink {
 public:
  virtual ~BitSink() = default;
  void write(const std::uint8_t* data, std::size_t n) {
    bytes_ += n;
    put(data, n);
  }
  std::uint64_t bytes_written() const { return bytes_; }

 protected:
  virtual void put(const std::uint8_t* data, std::size_t n) = 0;

 private:
  std::uint64_t bytes_ = 0;
};

/// Accumulates the bytes in memory (the classic serialize result).
class VectorSink : public BitSink {
 public:
  const std::vector<std::uint8_t>& bytes() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 protected:
  void put(const std::uint8_t* data, std::size_t n) override {
    out_.insert(out_.end(), data, data + n);
  }

 private:
  std::vector<std::uint8_t> out_;
};

/// Writes to an open stdio stream (not owned; caller closes).
class FileSink : public BitSink {
 public:
  explicit FileSink(std::FILE* file) : file_(file) {}

 protected:
  void put(const std::uint8_t* data, std::size_t n) override;

 private:
  std::FILE* file_;
};

/// FNV-1a 64-bit digest of the byte stream — a constant-memory stand-in
/// for the artifact in equality checks and benchmarks.
class HashSink : public BitSink {
 public:
  std::uint64_t hash() const { return hash_; }

 protected:
  void put(const std::uint8_t* data, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= data[i];
      hash_ *= 1099511628211ull;
    }
  }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

/// Binary serialization (the actual .bit artifact).
std::vector<std::uint8_t> serialize(const Bitstream& bitstream);
void serialize_to(const Bitstream& bitstream, BitSink* sink);
Bitstream deserialize(const std::vector<std::uint8_t>& bytes);

/// Generates and serializes in one streaming pass: frames and switch
/// records are emitted tile-by-tile through `sink` without ever
/// materializing the Bitstream or its switch lists. Byte-identical to
/// `serialize(generate_bitstream(...))`.
void stream_bitstream(const pack::PackedNetlist& packed,
                      const place::Placement& placement,
                      const route::RrGraph& graph,
                      const route::RouteResult& routing,
                      const arch::ArchSpec& spec, BitSink* sink);

/// Reconstructs a gate-level netlist from the bitstream alone (fabric
/// interpretation). PI/PO names come from the pad table + clock name.
netlist::Network decode_to_network(const Bitstream& bitstream);

}  // namespace amdrel::bitgen

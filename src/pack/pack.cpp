#include "pack/pack.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::pack {

using netlist::kNoSignal;
using netlist::Network;
using netlist::SignalId;

PackedNetlist::PackedNetlist(const Network& network,
                             const arch::ArchSpec& spec)
    : PackedNetlist(network, spec, static_cast<const PackHints*>(nullptr)) {}

PackedNetlist::PackedNetlist(const Network& network, const arch::ArchSpec& spec,
                             const PackHints& hints)
    : PackedNetlist(network, spec, &hints) {}

PackedNetlist::PackedNetlist(const Network& network,
                             const arch::ArchSpec& spec,
                             const PackHints* hints)
    : network_(&network), spec_(&spec) {
  for (const auto& g : network.gates()) {
    AMDREL_CHECK_MSG(g.table.n_inputs() <= spec.k,
                     "gate wider than K; run the LUT mapper first: " + g.name);
  }
  obs::Span span("pack.cluster");
  form_bles();
  pack_clusters(hints);
  validate();
  static obs::Counter& c_bles = obs::counter("pack.bles");
  static obs::Counter& c_clusters = obs::counter("pack.clusters");
  static obs::Counter& c_absorbed = obs::counter("pack.absorbed");
  static obs::Counter& c_rollbacks = obs::counter("pack.rollbacks");
  c_bles.add(bles_.size());
  c_clusters.add(clusters_.size());
  c_absorbed.add(absorbed_nets_);
  c_rollbacks.add(rollbacks_);
  if (span.active()) {
    span.metric("bles", static_cast<double>(bles_.size()));
    span.metric("clusters", static_cast<double>(clusters_.size()));
    span.metric("absorbed", static_cast<double>(absorbed_nets_));
    span.metric("rollbacks", static_cast<double>(rollbacks_));
  }
}

void PackedNetlist::form_bles() {
  const Network& net = *network_;
  // Fanout count per signal (gates + latches + POs).
  std::vector<int> fanout(static_cast<std::size_t>(net.num_signals()), 0);
  for (const auto& g : net.gates()) {
    for (SignalId in : g.inputs) ++fanout[static_cast<std::size_t>(in)];
  }
  for (const auto& l : net.latches()) {
    ++fanout[static_cast<std::size_t>(l.d)];
  }
  for (SignalId s : net.outputs()) ++fanout[static_cast<std::size_t>(s)];

  std::vector<int> gate_of(static_cast<std::size_t>(net.num_signals()), -1);
  for (std::size_t gi = 0; gi < net.gates().size(); ++gi) {
    gate_of[static_cast<std::size_t>(net.gates()[gi].output)] =
        static_cast<int>(gi);
  }

  std::vector<char> gate_used(net.gates().size(), 0);

  // FF+LUT pairing: latch D driven by a LUT whose only fanout is this FF,
  // and the LUT output is not itself a primary output.
  for (std::size_t li = 0; li < net.latches().size(); ++li) {
    const auto& l = net.latches()[li];
    Ble ble;
    ble.latch = static_cast<int>(li);
    ble.output = l.q;
    ble.clock = l.clock;
    int src = gate_of[static_cast<std::size_t>(l.d)];
    if (src >= 0 && fanout[static_cast<std::size_t>(l.d)] == 1 &&
        !net.is_output(l.d)) {
      ble.lut_gate = src;
      gate_used[static_cast<std::size_t>(src)] = 1;
      ble.inputs = net.gates()[static_cast<std::size_t>(src)].inputs;
    } else {
      // FF alone: the BLE's LUT is a route-through; D is the single input.
      ble.inputs = {l.d};
    }
    bles_.push_back(std::move(ble));
  }
  // Remaining LUTs occupy BLEs without a FF.
  for (std::size_t gi = 0; gi < net.gates().size(); ++gi) {
    if (gate_used[gi]) continue;
    const auto& g = net.gates()[gi];
    Ble ble;
    ble.lut_gate = static_cast<int>(gi);
    ble.output = g.output;
    ble.inputs = g.inputs;
    bles_.push_back(std::move(ble));
  }
}

void PackedNetlist::pack_clusters(const PackHints* hints) {
  const Network& net = *network_;
  const int capacity = spec_->n;
  const int max_inputs = spec_->cluster_inputs();

  // Signal → producing BLE (if any).
  std::vector<int> producer(static_cast<std::size_t>(net.num_signals()), -1);
  for (std::size_t bi = 0; bi < bles_.size(); ++bi) {
    producer[static_cast<std::size_t>(bles_[bi].output)] =
        static_cast<int>(bi);
  }
  // Signal → consuming BLEs.
  std::vector<std::vector<int>> consumers(
      static_cast<std::size_t>(net.num_signals()));
  for (std::size_t bi = 0; bi < bles_.size(); ++bi) {
    for (SignalId in : bles_[bi].inputs) {
      consumers[static_cast<std::size_t>(in)].push_back(static_cast<int>(bi));
    }
  }

  ble_cluster_.assign(bles_.size(), -1);
  std::vector<char> clustered(bles_.size(), 0);

  // Working cluster state.
  struct Work {
    std::vector<int> members;
    std::set<SignalId> internal_outputs;
    std::set<SignalId> external_inputs;
    SignalId clock = kNoSignal;
  };

  auto can_add = [&](const Work& w, int bi) {
    const Ble& b = bles_[static_cast<std::size_t>(bi)];
    if (static_cast<int>(w.members.size()) >= capacity) return false;
    if (b.clock != kNoSignal && w.clock != kNoSignal && b.clock != w.clock) {
      ++rollbacks_;
      return false;
    }
    // Recompute external inputs with b added.
    std::set<SignalId> ext = w.external_inputs;
    ext.erase(b.output);  // b's output becomes internal
    for (SignalId in : b.inputs) {
      if (w.internal_outputs.count(in) || in == b.output) continue;
      ext.insert(in);
    }
    if (static_cast<int>(ext.size()) > max_inputs) {
      ++rollbacks_;
      return false;
    }
    return true;
  };

  auto add_to = [&](Work& w, int bi) {
    const Ble& b = bles_[static_cast<std::size_t>(bi)];
    for (SignalId in : b.inputs) {
      if (w.internal_outputs.count(in)) ++absorbed_nets_;
    }
    if (w.external_inputs.count(b.output)) ++absorbed_nets_;
    w.members.push_back(bi);
    w.internal_outputs.insert(b.output);
    w.external_inputs.erase(b.output);
    for (SignalId in : b.inputs) {
      if (!w.internal_outputs.count(in)) w.external_inputs.insert(in);
    }
    if (b.clock != kNoSignal) w.clock = b.clock;
    clustered[static_cast<std::size_t>(bi)] = 1;
  };

  // Attraction: nets shared with the cluster.
  auto attraction = [&](const Work& w, int bi) {
    const Ble& b = bles_[static_cast<std::size_t>(bi)];
    int score = 0;
    for (SignalId in : b.inputs) {
      if (w.internal_outputs.count(in)) score += 2;  // absorbs a net
      if (w.external_inputs.count(in)) score += 1;   // shares an input
    }
    if (w.external_inputs.count(b.output)) score += 2;
    return score;
  };

  // ECO hint pre-pass: recreate previous clusters all-or-nothing, in hint
  // order and with their original slot order, before greedy packing sees
  // the netlist. A hint fails cleanly (rollback, BLEs stay free) when a
  // named BLE is gone, already taken, or the constraints no longer hold.
  if (hints != nullptr) {
    std::map<std::string, int> ble_by_output;
    for (std::size_t bi = 0; bi < bles_.size(); ++bi) {
      ble_by_output[net.signal_name(bles_[bi].output)] = static_cast<int>(bi);
    }
    hint_cluster_.assign(hints->clusters.size(), -1);
    for (std::size_t hi = 0; hi < hints->clusters.size(); ++hi) {
      std::vector<int> members;
      members.reserve(hints->clusters[hi].size());
      bool ok = !hints->clusters[hi].empty();
      for (const std::string& name : hints->clusters[hi]) {
        auto it = ble_by_output.find(name);
        if (it == ble_by_output.end() ||
            clustered[static_cast<std::size_t>(it->second)]) {
          ok = false;
          break;
        }
        members.push_back(it->second);
      }
      if (ok) {
        Work w;
        for (int bi : members) {
          if (!w.members.empty() && !can_add(w, bi)) {
            ok = false;
            break;
          }
          add_to(w, bi);
        }
        if (ok) {
          Cluster cluster;
          cluster.bles = w.members;
          cluster.clock = w.clock;
          cluster.input_signals.assign(w.external_inputs.begin(),
                                       w.external_inputs.end());
          for (int bi : w.members) {
            ble_cluster_[static_cast<std::size_t>(bi)] =
                static_cast<int>(clusters_.size());
          }
          hint_cluster_[hi] = static_cast<int>(clusters_.size());
          clusters_.push_back(std::move(cluster));
        } else {
          for (int bi : w.members) clustered[static_cast<std::size_t>(bi)] = 0;
        }
      }
    }
  }

  // Seed order: most inputs first (T-VPack's unconnected-seed heuristic).
  std::vector<int> seeds(bles_.size());
  for (std::size_t i = 0; i < bles_.size(); ++i) seeds[i] = static_cast<int>(i);
  std::sort(seeds.begin(), seeds.end(), [&](int a, int b) {
    return bles_[static_cast<std::size_t>(a)].inputs.size() >
           bles_[static_cast<std::size_t>(b)].inputs.size();
  });

  for (int seed : seeds) {
    if (clustered[static_cast<std::size_t>(seed)]) continue;
    Work w;
    add_to(w, seed);
    // Grow greedily by attraction.
    while (static_cast<int>(w.members.size()) < capacity) {
      int best = -1;
      int best_score = -1;
      // Candidates: BLEs touching the cluster's nets, else any unclustered.
      std::set<int> cand;
      for (SignalId s : w.internal_outputs) {
        for (int c : consumers[static_cast<std::size_t>(s)]) cand.insert(c);
      }
      for (SignalId s : w.external_inputs) {
        int p = producer[static_cast<std::size_t>(s)];
        if (p >= 0) cand.insert(p);
        for (int c : consumers[static_cast<std::size_t>(s)]) cand.insert(c);
      }
      for (int c : cand) {
        if (clustered[static_cast<std::size_t>(c)]) continue;
        if (!can_add(w, c)) continue;
        int score = attraction(w, c);
        if (score > best_score) {
          best_score = score;
          best = c;
        }
      }
      if (best < 0) {
        // Fill with any packable unclustered BLE (T-VPack fills clusters).
        for (std::size_t c = 0; c < bles_.size(); ++c) {
          if (clustered[c]) continue;
          if (can_add(w, static_cast<int>(c))) {
            best = static_cast<int>(c);
            break;
          }
        }
      }
      if (best < 0) break;
      add_to(w, best);
    }

    Cluster cluster;
    cluster.bles = w.members;
    cluster.clock = w.clock;
    cluster.input_signals.assign(w.external_inputs.begin(),
                                 w.external_inputs.end());
    for (int bi : w.members) {
      ble_cluster_[static_cast<std::size_t>(bi)] =
          static_cast<int>(clusters_.size());
    }
    clusters_.push_back(std::move(cluster));
  }

  // Output signals: BLE outputs consumed outside the cluster or by POs.
  std::vector<std::set<SignalId>> outs(clusters_.size());
  for (std::size_t ci = 0; ci < clusters_.size(); ++ci) {
    for (int bi : clusters_[ci].bles) {
      const Ble& b = bles_[static_cast<std::size_t>(bi)];
      bool leaves = net.is_output(b.output);
      for (int consumer : consumers[static_cast<std::size_t>(b.output)]) {
        if (ble_cluster_[static_cast<std::size_t>(consumer)] !=
            static_cast<int>(ci)) {
          leaves = true;
          break;
        }
      }
      if (leaves) outs[ci].insert(b.output);
    }
    clusters_[ci].output_signals.assign(outs[ci].begin(), outs[ci].end());
  }
}

void PackedNetlist::validate() const {
  const Network& net = *network_;
  std::vector<int> gate_seen(net.gates().size(), 0);
  std::vector<int> latch_seen(net.latches().size(), 0);
  for (const Ble& b : bles_) {
    if (b.lut_gate >= 0) ++gate_seen[static_cast<std::size_t>(b.lut_gate)];
    if (b.latch >= 0) ++latch_seen[static_cast<std::size_t>(b.latch)];
    AMDREL_CHECK_MSG(b.lut_gate >= 0 || b.latch >= 0, "empty BLE");
    AMDREL_CHECK_MSG(static_cast<int>(b.inputs.size()) <= spec_->k,
                     "BLE with more inputs than K");
  }
  for (int c : gate_seen) AMDREL_CHECK_MSG(c == 1, "LUT not packed exactly once");
  for (int c : latch_seen) AMDREL_CHECK_MSG(c == 1, "FF not packed exactly once");

  std::vector<int> ble_seen(bles_.size(), 0);
  for (const Cluster& c : clusters_) {
    AMDREL_CHECK_MSG(static_cast<int>(c.bles.size()) <= spec_->n,
                     "cluster exceeds N BLEs");
    AMDREL_CHECK_MSG(
        static_cast<int>(c.input_signals.size()) <= spec_->cluster_inputs(),
        "cluster exceeds I inputs");
    std::set<SignalId> clocks;
    for (int bi : c.bles) {
      ++ble_seen[static_cast<std::size_t>(bi)];
      const Ble& b = bles_[static_cast<std::size_t>(bi)];
      if (b.clock != kNoSignal) clocks.insert(b.clock);
    }
    AMDREL_CHECK_MSG(clocks.size() <= 1, "cluster with multiple clocks");
  }
  for (int c : ble_seen) AMDREL_CHECK_MSG(c == 1, "BLE not clustered exactly once");
}

std::string PackedNetlist::stats() const {
  int used_bles = static_cast<int>(bles_.size());
  int cap = static_cast<int>(clusters_.size()) * spec_->n;
  return strprintf("%d BLEs in %d clusters (N=%d, K=%d, I=%d, %.0f%% full)",
                   used_bles, static_cast<int>(clusters_.size()), spec_->n,
                   spec_->k, spec_->cluster_inputs(),
                   cap ? 100.0 * used_bles / cap : 0.0);
}

void write_net_file(const PackedNetlist& packed, std::ostream& out) {
  const Network& net = packed.network();
  out << "# T-VPack style clustered netlist\n";
  out << ".model " << net.name() << "\n";
  for (SignalId s : net.inputs()) {
    out << ".input " << net.signal_name(s) << "\n";
  }
  for (SignalId s : net.outputs()) {
    out << ".output " << net.signal_name(s) << "\n";
  }
  for (std::size_t ci = 0; ci < packed.clusters().size(); ++ci) {
    const Cluster& c = packed.clusters()[ci];
    out << ".clb cluster" << ci << "\n";
    out << " pins:";
    for (SignalId s : c.input_signals) out << " " << net.signal_name(s);
    out << "\n outputs:";
    for (SignalId s : c.output_signals) out << " " << net.signal_name(s);
    out << "\n";
    if (c.clock != kNoSignal) {
      out << " clock: " << net.signal_name(c.clock) << "\n";
    }
    for (int bi : c.bles) {
      const Ble& b = packed.bles()[static_cast<std::size_t>(bi)];
      out << " ble " << net.signal_name(b.output) << " lut="
          << (b.lut_gate >= 0 ? net.gates()[static_cast<std::size_t>(b.lut_gate)].name
                              : std::string("-"))
          << " ff="
          << (b.latch >= 0 ? net.latches()[static_cast<std::size_t>(b.latch)].name
                           : std::string("-"))
          << "\n";
    }
  }
  out << ".end\n";
}

std::string write_net_string(const PackedNetlist& packed) {
  std::ostringstream out;
  write_net_file(packed, out);
  return out.str();
}

netlist::Network reconstruct_network(const PackedNetlist& packed) {
  const netlist::Network& src = packed.network();
  netlist::Network out(src.name());
  const auto sig = [&](SignalId s) {
    return out.get_or_add_signal(src.signal_name(s));
  };
  for (const SignalId s : src.inputs()) out.add_input(sig(s));
  for (const Cluster& cluster : packed.clusters()) {
    for (const int bi : cluster.bles) {
      const Ble& ble = packed.bles()[static_cast<std::size_t>(bi)];
      if (ble.lut_gate >= 0) {
        const netlist::Gate& g =
            src.gates()[static_cast<std::size_t>(ble.lut_gate)];
        AMDREL_CHECK_MSG(ble.inputs.size() == g.inputs.size(),
                         "BLE input arity disagrees with its LUT");
        std::vector<SignalId> inputs;
        inputs.reserve(ble.inputs.size());
        for (const SignalId s : ble.inputs) inputs.push_back(sig(s));
        // A latched BLE's external output is the FF Q; the LUT then
        // drives the FF's D signal internally.
        const SignalId lut_out =
            ble.latch >= 0
                ? src.latches()[static_cast<std::size_t>(ble.latch)].d
                : ble.output;
        out.add_gate(g.name, g.table, std::move(inputs), sig(lut_out));
      }
      if (ble.latch >= 0) {
        const netlist::Latch& l =
            src.latches()[static_cast<std::size_t>(ble.latch)];
        const SignalId d = ble.lut_gate >= 0 ? l.d : ble.inputs.at(0);
        out.add_latch(l.name, sig(d), sig(ble.output),
                      ble.clock == kNoSignal ? kNoSignal : sig(ble.clock),
                      l.init);
      }
    }
  }
  for (const SignalId s : src.outputs()) out.add_output(sig(s));
  out.validate();
  return out;
}

}  // namespace amdrel::pack

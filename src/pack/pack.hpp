#pragma once
// T-VPack — BLE formation and greedy cluster packing.
//
// Takes a K-LUT network (from the mapper) and groups LUT/FF pairs into
// Basic Logic Elements, then packs BLEs into clusters of N respecting the
// paper's CLB: at most I = (K/2)(N+1) distinct external inputs and one
// clock per cluster. Attraction = number of shared nets (the classic
// T-VPack criterion).

#include <cstdint>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "netlist/network.hpp"

namespace amdrel::pack {

/// One BLE: an optional LUT and an optional FF (at least one present).
struct Ble {
  int lut_gate = -1;    ///< index into network.gates(), -1 if none
  int latch = -1;       ///< index into network.latches(), -1 if none
  netlist::SignalId output = netlist::kNoSignal;  ///< BLE output signal
  std::vector<netlist::SignalId> inputs;          ///< LUT inputs (or FF D)
  netlist::SignalId clock = netlist::kNoSignal;
};

/// One packed cluster (CLB).
struct Cluster {
  std::vector<int> bles;                          ///< indices into bles()
  std::vector<netlist::SignalId> input_signals;   ///< external inputs used
  std::vector<netlist::SignalId> output_signals;  ///< signals leaving
  netlist::SignalId clock = netlist::kNoSignal;
};

/// ECO reuse hints: clusters from a previous packing, named by the BLE
/// output signals in slot order. Each hint is all-or-nothing — if every
/// named BLE exists in the new netlist, is still unclustered and the
/// cluster satisfies the N/I/clock constraints, it is recreated with the
/// same slot order (so per-slot OPIN wiring survives); otherwise the hint
/// is dropped and those BLEs fall back to greedy packing.
struct PackHints {
  std::vector<std::vector<std::string>> clusters;
};

class PackedNetlist {
 public:
  PackedNetlist(const netlist::Network& network, const arch::ArchSpec& spec);

  /// Packs with reuse hints; hint_cluster() reports which hints survived.
  PackedNetlist(const netlist::Network& network, const arch::ArchSpec& spec,
                const PackHints& hints);

  const netlist::Network& network() const { return *network_; }
  const arch::ArchSpec& spec() const { return *spec_; }
  const std::vector<Ble>& bles() const { return bles_; }
  const std::vector<Cluster>& clusters() const { return clusters_; }

  /// Cluster index containing each BLE.
  int cluster_of_ble(int ble) const { return ble_cluster_[static_cast<std::size_t>(ble)]; }

  /// For the hints constructor: hint index → recreated cluster index, or
  /// -1 where the hint could not be applied. Empty without hints.
  const std::vector<int>& hint_cluster() const { return hint_cluster_; }

  /// Statistics line for reports.
  std::string stats() const;

  /// Packing-effort tallies (also published to the metrics registry as
  /// pack.absorbed / pack.rollbacks).
  std::uint64_t absorbed_nets() const { return absorbed_nets_; }
  std::uint64_t rollbacks() const { return rollbacks_; }

  /// Verifies every cluster obeys N/I/clock constraints and that every
  /// LUT and FF of the network is packed exactly once. Throws on failure.
  void validate() const;

 private:
  PackedNetlist(const netlist::Network& network, const arch::ArchSpec& spec,
                const PackHints* hints);

  void form_bles();
  void pack_clusters(const PackHints* hints);

  const netlist::Network* network_;
  const arch::ArchSpec* spec_;
  std::vector<Ble> bles_;
  std::vector<Cluster> clusters_;
  std::vector<int> ble_cluster_;
  std::vector<int> hint_cluster_;
  std::uint64_t absorbed_nets_ = 0;  ///< nets internalised during growth
  std::uint64_t rollbacks_ = 0;      ///< candidate adds rejected by can_add
};

/// Writes the packed netlist in a T-VPack-style .net text format.
void write_net_file(const PackedNetlist& packed, std::ostream& out);
std::string write_net_string(const PackedNetlist& packed);

/// Rebuilds a Network from the packed cluster/BLE structure alone (BLE
/// input/output/clock signals; LUT truth tables looked up by gate index).
/// Signal names are preserved, so the result can be checked for
/// equivalence against the mapped network — a lost FF, a dropped BLE or a
/// miswired BLE input shows up as non-equivalence.
netlist::Network reconstruct_network(const PackedNetlist& packed);

}  // namespace amdrel::pack

#include "bench_gen/bench_gen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace amdrel::bench_gen {

using netlist::kNoSignal;
using netlist::LatchInit;
using netlist::Network;
using netlist::SignalId;
using netlist::TruthTable;

namespace {

// prefix+index without ostream/temporary-concatenation churn — the
// generator emits millions of names on giant tiers.
std::string idx_name(const char* prefix, int i) {
  char buf[32];
  const int len = std::snprintf(buf, sizeof buf, "%s%d", prefix, i);
  return std::string(buf, static_cast<std::size_t>(len));
}

}  // namespace

Network generate(const BenchSpec& spec) {
  AMDREL_CHECK(spec.n_inputs >= 1 && spec.n_outputs >= 1 && spec.n_gates >= 1);
  Rng rng(spec.seed);
  Network net(spec.name);
  // Size everything up front: one allocation per table, O(n) overall.
  const int clk_signals = spec.n_latches > 0 ? 1 : 0;
  net.reserve(spec.n_inputs + clk_signals + spec.n_latches + spec.n_gates +
                  spec.n_outputs,
              spec.n_gates + spec.n_outputs, spec.n_latches);

  std::vector<SignalId> pool;  // candidate fanin signals, creation order
  pool.reserve(static_cast<std::size_t>(spec.n_inputs + spec.n_latches +
                                        spec.n_gates));
  for (int i = 0; i < spec.n_inputs; ++i) {
    SignalId s = net.add_signal(idx_name("pi", i));
    net.add_input(s);
    pool.push_back(s);
  }
  SignalId clk = kNoSignal;
  if (spec.n_latches > 0) {
    clk = net.add_signal("clk");
    net.add_input(clk);
  }
  std::vector<SignalId> latch_q;
  latch_q.reserve(static_cast<std::size_t>(spec.n_latches));
  for (int i = 0; i < spec.n_latches; ++i) {
    SignalId q = net.add_signal(idx_name("ff", i));
    latch_q.push_back(q);
    pool.push_back(q);
  }

  // Locality-biased fanin pick: prefer recently created signals.
  auto pick_fanin = [&]() -> SignalId {
    const std::size_t n = pool.size();
    if (rng.next_double() < spec.locality) {
      // Geometric-ish window over the most recent quarter, capped at the
      // spec's absolute window (see BenchSpec::window).
      std::size_t window = std::max<std::size_t>(4, n / 4);
      if (spec.window > 0) {
        window = std::min(window, static_cast<std::size_t>(spec.window));
      }
      std::size_t back = rng.next_below(std::min(window, n));
      return pool[n - 1 - back];
    }
    return pool[static_cast<std::size_t>(rng.next_below(n))];
  };

  // Random nontrivial 2-input functions.
  auto random_tt2 = [&]() {
    for (;;) {
      std::uint64_t bits = rng.next_below(16);
      TruthTable t = TruthTable::from_bits(2, bits);
      if (!t.is_constant() && t.depends_on(0) && t.depends_on(1)) return t;
    }
  };

  std::vector<SignalId> gate_outs;
  gate_outs.reserve(static_cast<std::size_t>(spec.n_gates));
  for (int i = 0; i < spec.n_gates; ++i) {
    SignalId a = pick_fanin();
    SignalId b = pick_fanin();
    int guard = 0;
    while (b == a && ++guard < 10) b = pick_fanin();
    SignalId out = net.add_signal(idx_name("n", i));
    if (a == b) {
      net.add_gate(idx_name("g", i), TruthTable::inverter(), {a}, out);
    } else {
      net.add_gate(idx_name("g", i), random_tt2(), {a, b}, out);
    }
    pool.push_back(out);
    gate_outs.push_back(out);
  }

  // Latch D inputs from late gates (keeps sequential depth interesting).
  for (int i = 0; i < spec.n_latches; ++i) {
    SignalId d = gate_outs[static_cast<std::size_t>(
        rng.next_below(gate_outs.size()))];
    net.add_latch(idx_name("ff", i), d, latch_q[static_cast<std::size_t>(i)],
                  clk, rng.next_bool() ? LatchInit::kOne : LatchInit::kZero);
  }

  // Outputs from the last gates (plus random earlier picks).
  for (int i = 0; i < spec.n_outputs; ++i) {
    SignalId src;
    if (i < static_cast<int>(gate_outs.size())) {
      src = gate_outs[gate_outs.size() - 1 - static_cast<std::size_t>(i)];
    } else {
      src = gate_outs[static_cast<std::size_t>(rng.next_below(gate_outs.size()))];
    }
    SignalId po = net.add_signal(idx_name("po", i));
    net.add_gate(idx_name("obuf", i), TruthTable::identity(), {src}, po);
    net.add_output(po);
  }

  net.validate();
  return net;
}

netlist::Network perturb(const netlist::Network& base, const EditSpec& spec) {
  Rng rng(spec.seed);
  Network net = base;
  const int n_gates = static_cast<int>(net.gates().size());
  AMDREL_CHECK_MSG(n_gates > 0, "cannot perturb a gate-free network");

  // Safe rewire sources: PIs and latch outputs (never a clock) — feeding
  // a gate from one of these can never create a combinational cycle.
  std::vector<SignalId> safe_sources;
  {
    std::vector<char> is_clock;
    is_clock.assign(static_cast<std::size_t>(net.num_signals()), 0);
    for (const auto& l : net.latches()) {
      if (l.clock != kNoSignal) is_clock[static_cast<std::size_t>(l.clock)] = 1;
    }
    for (SignalId s : net.inputs()) {
      if (!is_clock[static_cast<std::size_t>(s)]) safe_sources.push_back(s);
    }
    for (const auto& l : net.latches()) safe_sources.push_back(l.q);
  }

  // Random nontrivial table of the same arity, different from `old`.
  auto retune = [&](const TruthTable& old) {
    const int k = old.n_inputs();
    for (;;) {
      std::uint64_t bits = rng.next_below(1ull << (1 << k));
      TruthTable t = TruthTable::from_bits(k, bits);
      if (t.is_constant() || t == old) continue;
      bool full = true;
      for (int i = 0; i < k; ++i) full = full && t.depends_on(i);
      if (full) return t;
    }
  };

  for (int i = 0; i < spec.flips; ++i) {
    netlist::Gate& g = net.gate(static_cast<int>(rng.next_below(
        static_cast<std::size_t>(n_gates))));
    g.table = retune(g.table);
  }

  for (int i = 0; i < spec.rewires && !safe_sources.empty(); ++i) {
    netlist::Gate& g = net.gate(static_cast<int>(rng.next_below(
        static_cast<std::size_t>(n_gates))));
    const std::size_t slot = rng.next_below(g.inputs.size());
    SignalId repl = kNoSignal;
    for (int guard = 0; guard < 32; ++guard) {
      SignalId cand = safe_sources[static_cast<std::size_t>(
          rng.next_below(safe_sources.size()))];
      if (std::find(g.inputs.begin(), g.inputs.end(), cand) ==
          g.inputs.end()) {
        repl = cand;
        break;
      }
    }
    if (repl != kNoSignal) g.inputs[slot] = repl;
  }

  for (int i = 0; i < spec.added_luts; ++i) {
    // Splice: new_sig = old_out XOR pi, then retarget one gate-consumer of
    // old_out to new_sig. Both fanins of the new gate already exist, and
    // the consumer was downstream of old_out before, so no cycle forms.
    std::vector<std::pair<int, std::size_t>> consumers;  // (gate, slot)
    const netlist::Gate& src = net.gates()[rng.next_below(
        static_cast<std::size_t>(n_gates))];
    const SignalId old_out = src.output;
    for (int gi = 0; gi < static_cast<int>(net.gates().size()); ++gi) {
      const auto& ins = net.gates()[static_cast<std::size_t>(gi)].inputs;
      for (std::size_t k = 0; k < ins.size(); ++k) {
        if (ins[k] == old_out) consumers.emplace_back(gi, k);
      }
    }
    if (consumers.empty() || safe_sources.empty()) continue;
    const auto [ci, slot] =
        consumers[static_cast<std::size_t>(rng.next_below(consumers.size()))];
    const SignalId pi = safe_sources[static_cast<std::size_t>(
        rng.next_below(safe_sources.size()))];
    std::string name = "eco_add" + std::to_string(i);
    while (net.find_signal(name) != kNoSignal) name += "_";
    const SignalId fresh = net.add_signal(name);
    net.add_gate(name, TruthTable::from_bits(2, 0b0110), {old_out, pi}, fresh);
    net.gate(ci).inputs[slot] = fresh;
  }

  net.validate();
  return net;
}

std::vector<BenchSpec> mcnc_like_suite() {
  // Sizes loosely follow the LGSynth93 range the paper's tools target.
  std::vector<BenchSpec> suite;
  auto add = [&](const char* name, int pi, int po, int gates, int ffs,
                 std::uint64_t seed) {
    BenchSpec s;
    s.name = name;
    s.n_inputs = pi;
    s.n_outputs = po;
    s.n_gates = gates;
    s.n_latches = ffs;
    s.seed = seed;
    suite.push_back(s);
  };
  add("syn_ex5p", 8, 28, 350, 0, 11);
  add("syn_misex", 14, 14, 500, 0, 12);
  add("syn_alu4", 14, 8, 800, 0, 13);
  add("syn_apex4", 9, 19, 900, 0, 14);
  add("syn_tseng", 52, 30, 600, 128, 15);
  add("syn_dsip", 36, 28, 900, 224, 16);
  add("syn_s298", 4, 6, 1200, 8, 17);
  add("syn_bigseq", 16, 16, 1600, 96, 18);
  return suite;
}

}  // namespace amdrel::bench_gen

#pragma once
// Deterministic synthetic benchmark-circuit generator.
//
// Substitutes for the MCNC LGSynth93 suite the paper's tool flow targets
// (not redistributable / not available offline — see DESIGN.md §1).
// Generates random combinational/sequential logic with locality-biased
// connectivity (Rent's-rule-like structure), in the size range of the
// classic MCNC benchmarks.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/network.hpp"

namespace amdrel::bench_gen {

struct BenchSpec {
  std::string name = "synth";
  int n_inputs = 8;
  int n_outputs = 8;
  int n_gates = 100;        ///< combinational gate count (2-input)
  int n_latches = 0;        ///< registers (adds a "clk" input when > 0)
  double locality = 0.8;    ///< 0..1: preference for nearby fanins
  /// Absolute cap on the local-fanin window (signals), 0 = n/4 relative.
  /// A relative window makes routing demand grow with circuit size
  /// (Rent exponent -> 1); giant-fabric tiers set an absolute window so
  /// channel width stays bounded as the design scales.
  int window = 0;
  std::uint64_t seed = 1;
};

/// Generates a valid, fully driven network per the spec.
netlist::Network generate(const BenchSpec& spec);

/// A fixed suite of MCNC-like benchmarks (small → large), deterministic.
std::vector<BenchSpec> mcnc_like_suite();

/// A deterministic small edit applied to a generated circuit — the ECO
/// workload model (interactive iteration touches ~1% of a design).
struct EditSpec {
  int flips = 0;       ///< truth-table retunes (same wiring, new function)
  int rewires = 0;     ///< swap one gate fanin to another existing signal
  int added_luts = 0;  ///< new gates spliced into an existing net
  std::uint64_t seed = 1;
};

/// Returns a copy of `base` with the requested edits applied. Primary
/// inputs/outputs and latch count are preserved, no combinational cycles
/// are introduced, and the result passes Network::validate().
netlist::Network perturb(const netlist::Network& base, const EditSpec& spec);

}  // namespace amdrel::bench_gen

#pragma once
// Static timing analysis over the placed-and-routed design.
//
// Net delays come from Elmore analysis of each routed RR tree using the
// architecture's switch/wire R and C (themselves derived from the paper's
// 0.18 µm circuit experiments); block delays (LUT, local crossbar, DETFF)
// come from the architecture file.

#include <map>
#include <string>
#include <vector>

#include "route/pathfinder.hpp"

namespace amdrel::timing {

/// Per-net, per-sink routed delay [s].
struct NetDelays {
  /// delay[sink block id] for each sink of the net.
  std::map<int, double> to_block;
};

/// Elmore delays of every routed net.
std::vector<NetDelays> compute_net_delays(const route::RrGraph& graph,
                                          const place::Placement& placement,
                                          const route::RouteResult& routing,
                                          const arch::ArchSpec& spec);

struct TimingReport {
  double critical_path_s = 0.0;   ///< longest register/PI → register/PO path
  double fmax_hz = 0.0;
  std::vector<std::string> critical_path;  ///< signal names along the path
  double max_net_delay_s = 0.0;
};

/// Full STA: arrival-time propagation over the packed netlist with routed
/// net delays.
TimingReport analyze_timing(const pack::PackedNetlist& packed,
                            const place::Placement& placement,
                            const route::RrGraph& graph,
                            const route::RouteResult& routing,
                            const arch::ArchSpec& spec);

}  // namespace amdrel::timing

#include "timing/timing.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace amdrel::timing {

using netlist::kNoSignal;
using netlist::SignalId;
using route::RrNode;
using route::RrType;

std::vector<NetDelays> compute_net_delays(const route::RrGraph& graph,
                                          const place::Placement& /*placement*/,
                                          const route::RouteResult& routing,
                                          const arch::ArchSpec& spec) {
  std::vector<NetDelays> out(routing.routes.size());

  for (std::size_t ni = 0; ni < routing.routes.size(); ++ni) {
    const auto& route = routing.routes[ni];
    if (route.nodes.empty()) continue;
    const std::size_t n = route.nodes.size();

    // Children lists.
    std::vector<std::vector<int>> children(n);
    for (std::size_t k = 1; k < n; ++k) {
      children[static_cast<std::size_t>(route.parent[k])].push_back(
          static_cast<int>(k));
    }

    // Edge R into node k and node capacitance of k.
    auto edge_r = [&](std::size_t k) {
      const RrType t = graph.node_type(route.nodes[k]);
      if (t == RrType::kChanX || t == RrType::kChanY) {
        // Reached through a routing pass switch + the wire's resistance.
        return spec.r_switch + spec.r_wire_tile;
      }
      if (t == RrType::kIpin) return spec.r_switch;
      return 0.0;
    };
    auto node_c = [&](std::size_t k) {
      const RrType t = graph.node_type(route.nodes[k]);
      if (t == RrType::kChanX || t == RrType::kChanY) {
        return spec.c_wire_tile + spec.c_switch;
      }
      if (t == RrType::kIpin) return spec.c_switch;
      return 0.0;
    };

    // Subtree capacitance (post-order via reverse index order: children
    // always have larger indices than parents by construction).
    std::vector<double> c_sub(n, 0.0);
    for (std::size_t k = n; k-- > 0;) {
      c_sub[k] = node_c(k);
      for (int c : children[k]) c_sub[k] += c_sub[static_cast<std::size_t>(c)];
    }
    // Elmore delay: pre-order accumulation.
    std::vector<double> delay(n, 0.0);
    for (std::size_t k = 1; k < n; ++k) {
      delay[k] = delay[static_cast<std::size_t>(route.parent[k])] +
                 edge_r(k) * c_sub[k];
    }
    // Record per-sink delays.
    for (std::size_t k = 0; k < n; ++k) {
      if (graph.node_type(route.nodes[k]) == RrType::kSink) {
        auto& slot = out[ni].to_block[graph.node_block(route.nodes[k])];
        slot = std::max(slot, delay[k]);
      }
    }
  }
  return out;
}

TimingReport analyze_timing(const pack::PackedNetlist& packed,
                            const place::Placement& placement,
                            const route::RrGraph& graph,
                            const route::RouteResult& routing,
                            const arch::ArchSpec& spec) {
  const auto& net = packed.network();
  obs::Span span("timing.analyze");
  std::uint64_t arcs = 0;  // input→output edges evaluated, batched below
  auto net_delays = compute_net_delays(graph, placement, routing, spec);

  // Map signal → (placement net index) and signal → producing BLE.
  std::map<SignalId, int> pnet_of_signal;
  for (std::size_t ni = 0; ni < placement.nets().size(); ++ni) {
    pnet_of_signal[placement.nets()[ni].signal] = static_cast<int>(ni);
  }
  std::map<SignalId, int> ble_of_signal;
  for (std::size_t bi = 0; bi < packed.bles().size(); ++bi) {
    ble_of_signal[packed.bles()[bi].output] = static_cast<int>(bi);
  }

  // Routed delay of signal s to the cluster containing BLE bi (or to a pad
  // block). Intra-cluster feedback costs only the local mux.
  auto routed_delay = [&](SignalId s, int to_block) -> double {
    auto it = pnet_of_signal.find(s);
    if (it == pnet_of_signal.end()) return 0.0;  // intra-cluster net
    const auto& d = net_delays[static_cast<std::size_t>(it->second)];
    auto bit = d.to_block.find(to_block);
    if (bit == d.to_block.end()) return 0.0;
    return bit->second;
  };

  // Arrival time per signal (levelized over BLEs: topological on the
  // combinational BLE graph; FF outputs and PIs are level 0).
  std::map<SignalId, double> arrival;
  std::vector<std::string> crit_name_of;
  std::map<SignalId, SignalId> crit_pred;

  for (SignalId s : net.inputs()) arrival[s] = spec.t_io;
  for (const auto& b : packed.bles()) {
    if (b.latch >= 0) arrival[b.output] = spec.t_ff_clk_q;
  }

  // Combinational BLEs in topological order of the LUT network.
  double worst = 0.0;
  SignalId worst_sig = kNoSignal;

  auto ble_arrival = [&](const pack::Ble& b) -> double {
    const int cluster = packed.cluster_of_ble(
        static_cast<int>(&b - packed.bles().data()));
    const int to_block = placement.block_of_cluster(cluster);
    double t = 0.0;
    SignalId pred = kNoSignal;
    for (SignalId in : b.inputs) {
      ++arcs;
      auto it = arrival.find(in);
      double a = (it != arrival.end()) ? it->second : 0.0;
      a += routed_delay(in, to_block);
      a += spec.t_local_mux;
      if (a > t) {
        t = a;
        pred = in;
      }
    }
    if (b.lut_gate >= 0) t += spec.t_lut;
    if (pred != kNoSignal) crit_pred[b.output] = pred;
    return t;
  };

  // Evaluate combinational BLEs in gate topological order; registered BLE
  // outputs are already fixed at t_ff_clk_q, but their D-input arrival
  // still constrains the clock period (register-to-register paths).
  std::map<SignalId, double> d_arrival;  // arrival at FF D inputs
  for (int gi : net.topo_order()) {
    SignalId out = net.gates()[static_cast<std::size_t>(gi)].output;
    auto it = ble_of_signal.find(out);
    if (it == ble_of_signal.end()) continue;  // LUT inside a registered BLE
    const pack::Ble& b = packed.bles()[static_cast<std::size_t>(it->second)];
    if (b.latch >= 0) continue;  // registered BLE output: fixed arrival
    arrival[out] = ble_arrival(b);
  }
  // Register D inputs (the LUT inside a registered BLE, or the route-through).
  for (const auto& b : packed.bles()) {
    if (b.latch < 0) continue;
    double t = ble_arrival(b) + spec.t_ff_setup;
    d_arrival[b.output] = t;
    if (t > worst) {
      worst = t;
      worst_sig = b.output;
    }
  }
  // Primary outputs.
  for (SignalId po : net.outputs()) {
    ++arcs;
    auto it = arrival.find(po);
    double a = (it != arrival.end()) ? it->second : 0.0;
    int pad = placement.block_of_pad(po);
    a += routed_delay(po, pad) + spec.t_io;
    if (a > worst) {
      worst = a;
      worst_sig = po;
    }
  }

  TimingReport report;
  report.critical_path_s = worst;
  report.fmax_hz = worst > 0 ? 1.0 / worst : 0.0;
  for (const auto& nd : net_delays) {
    for (const auto& [blk, d] : nd.to_block) {
      report.max_net_delay_s = std::max(report.max_net_delay_s, d);
    }
  }
  // Reconstruct the critical path names.
  SignalId cur = worst_sig;
  int guard = 0;
  while (cur != kNoSignal && guard++ < 10000) {
    report.critical_path.push_back(net.signal_name(cur));
    auto it = crit_pred.find(cur);
    if (it == crit_pred.end()) break;
    cur = it->second;
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  static obs::Counter& c_arcs = obs::counter("timing.arcs");
  static obs::Counter& c_runs = obs::counter("timing.analyses");
  c_arcs.add(arcs);
  c_runs.add(1);
  if (span.active()) {
    span.metric("arcs", static_cast<double>(arcs));
    span.metric("critical_path_ns", report.critical_path_s * 1e9);
  }
  return report;
}

}  // namespace amdrel::timing

#pragma once
// BLIF (Berkeley Logic Interchange Format) reader/writer — the format SIS
// consumes and produces, and the input to T-VPack in the paper's flow.
//
// Supported subset: .model/.inputs/.outputs/.names (SOP cover with '-'
// don't-cares, on-set and off-set covers)/.latch/.end, plus comments and
// line continuations. One model per file.

#include <iosfwd>
#include <string>

#include "netlist/network.hpp"

namespace amdrel::netlist {

Network read_blif(std::istream& in, const std::string& filename = "<blif>");
Network read_blif_file(const std::string& path);
Network read_blif_string(const std::string& text);

void write_blif(const Network& network, std::ostream& out);
std::string write_blif_string(const Network& network);
void write_blif_file(const Network& network, const std::string& path);

}  // namespace amdrel::netlist

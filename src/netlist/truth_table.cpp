#include "netlist/truth_table.hpp"

#include "util/error.hpp"

namespace amdrel::netlist {
namespace {

std::size_t words_for(int n_inputs) {
  const std::uint64_t rows = 1ull << n_inputs;
  return static_cast<std::size_t>((rows + 63) / 64);
}

}  // namespace

TruthTable::TruthTable(int n_inputs) : n_inputs_(n_inputs) {
  AMDREL_CHECK(n_inputs >= 0 && n_inputs <= 16);
  words_.assign(words_for(n_inputs), 0);
}

TruthTable TruthTable::from_bits(int n_inputs, std::uint64_t bits) {
  AMDREL_CHECK(n_inputs >= 0 && n_inputs <= 6);
  TruthTable t(n_inputs);
  const std::uint64_t mask =
      (n_inputs == 6) ? ~0ull : ((1ull << (1 << n_inputs)) - 1);
  t.words_[0] = bits & mask;
  return t;
}

TruthTable TruthTable::constant(bool value) {
  TruthTable t(0);
  t.words_[0] = value ? 1 : 0;
  return t;
}

TruthTable TruthTable::identity() { return from_bits(1, 0b10); }
TruthTable TruthTable::inverter() { return from_bits(1, 0b01); }

TruthTable TruthTable::and_n(int n, bool negate_out) {
  AMDREL_CHECK(n >= 1);
  TruthTable t(n);
  for (std::uint64_t row = 0; row < t.n_rows(); ++row) {
    bool v = (row == t.n_rows() - 1);
    t.set(row, v != negate_out);
  }
  return t;
}

TruthTable TruthTable::or_n(int n, bool negate_out) {
  AMDREL_CHECK(n >= 1);
  TruthTable t(n);
  for (std::uint64_t row = 0; row < t.n_rows(); ++row) {
    bool v = (row != 0);
    t.set(row, v != negate_out);
  }
  return t;
}

TruthTable TruthTable::xor_n(int n, bool negate_out) {
  AMDREL_CHECK(n >= 1);
  TruthTable t(n);
  for (std::uint64_t row = 0; row < t.n_rows(); ++row) {
    bool v = (__builtin_popcountll(row) & 1) != 0;
    t.set(row, v != negate_out);
  }
  return t;
}

TruthTable TruthTable::mux2() {
  // Inputs (0=sel, 1=a, 2=b): out = sel ? b : a.
  TruthTable t(3);
  for (std::uint64_t row = 0; row < 8; ++row) {
    bool sel = row & 1, a = row & 2, b = row & 4;
    t.set(row, sel ? b : a);
  }
  return t;
}

bool TruthTable::get(std::uint64_t row) const {
  AMDREL_CHECK(row < n_rows());
  return (words_[static_cast<std::size_t>(row >> 6)] >> (row & 63)) & 1;
}

void TruthTable::set(std::uint64_t row, bool value) {
  AMDREL_CHECK(row < n_rows());
  std::uint64_t& w = words_[static_cast<std::size_t>(row >> 6)];
  const std::uint64_t bit = 1ull << (row & 63);
  if (value) {
    w |= bit;
  } else {
    w &= ~bit;
  }
}

bool TruthTable::is_constant() const {
  const bool first = get(0);
  for (std::uint64_t row = 1; row < n_rows(); ++row) {
    if (get(row) != first) return false;
  }
  return true;
}

bool TruthTable::constant_value() const { return get(0); }

bool TruthTable::depends_on(int input) const {
  AMDREL_CHECK(input >= 0 && input < n_inputs_);
  const std::uint64_t stride = 1ull << input;
  for (std::uint64_t row = 0; row < n_rows(); ++row) {
    if (row & stride) continue;
    if (get(row) != get(row | stride)) return true;
  }
  return false;
}

TruthTable TruthTable::cofactor(int input, bool value) const {
  AMDREL_CHECK(input >= 0 && input < n_inputs_);
  TruthTable t(n_inputs_ - 1);
  for (std::uint64_t row = 0; row < t.n_rows(); ++row) {
    // Insert `value` at position `input`.
    const std::uint64_t lo = row & ((1ull << input) - 1);
    const std::uint64_t hi = (row >> input) << (input + 1);
    const std::uint64_t full =
        hi | (static_cast<std::uint64_t>(value) << input) | lo;
    t.set(row, get(full));
  }
  return t;
}

TruthTable TruthTable::permute(const std::vector<int>& perm) const {
  AMDREL_CHECK(static_cast<int>(perm.size()) == n_inputs_);
  TruthTable t(n_inputs_);
  for (std::uint64_t row = 0; row < n_rows(); ++row) {
    std::uint64_t old_row = 0;
    for (int j = 0; j < n_inputs_; ++j) {
      if ((row >> j) & 1) old_row |= 1ull << perm[static_cast<std::size_t>(j)];
    }
    t.set(row, get(old_row));
  }
  return t;
}

TruthTable TruthTable::extend(int n) const {
  AMDREL_CHECK(n >= n_inputs_ && n <= 16);
  TruthTable t(n);
  const std::uint64_t base = 1ull << n_inputs_;
  for (std::uint64_t row = 0; row < t.n_rows(); ++row) {
    t.set(row, get(row % base));
  }
  return t;
}

TruthTable TruthTable::invert() const {
  TruthTable t(n_inputs_);
  for (std::uint64_t row = 0; row < n_rows(); ++row) t.set(row, !get(row));
  return t;
}

bool TruthTable::operator==(const TruthTable& other) const {
  if (n_inputs_ != other.n_inputs_) return false;
  for (std::uint64_t row = 0; row < n_rows(); ++row) {
    if (get(row) != other.get(row)) return false;
  }
  return true;
}

std::string TruthTable::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out;
  const std::uint64_t rows = n_rows();
  for (std::uint64_t start = 0; start < rows; start += 4) {
    int nibble = 0;
    for (int b = 0; b < 4 && start + b < rows; ++b) {
      if (get(start + b)) nibble |= 1 << b;
    }
    out.insert(out.begin(), digits[nibble]);
  }
  return out;
}

}  // namespace amdrel::netlist

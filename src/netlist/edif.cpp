#include "netlist/edif.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::netlist {
namespace {

// ---------------------------------------------------------------- S-expr --

struct SExpr {
  // Either an atom (leaf) or a list.
  std::string atom;
  std::vector<SExpr> items;
  bool is_atom = false;

  const std::string& head() const {
    static const std::string empty;
    if (items.empty() || !items[0].is_atom) return empty;
    return items[0].atom;
  }
  /// First child list whose head equals `name` (nullptr if none).
  const SExpr* child(const std::string& name) const {
    for (const auto& it : items) {
      if (!it.is_atom && iequals(it.head(), name)) return &it;
    }
    return nullptr;
  }
  /// All child lists whose head equals `name`.
  std::vector<const SExpr*> children(const std::string& name) const {
    std::vector<const SExpr*> out;
    for (const auto& it : items) {
      if (!it.is_atom && iequals(it.head(), name)) out.push_back(&it);
    }
    return out;
  }
  /// Second element as atom (typical "(name value...)" accessor).
  std::string arg() const {
    if (items.size() >= 2 && items[1].is_atom) return items[1].atom;
    return "";
  }
};

class SExprParser {
 public:
  SExprParser(std::istream& in, std::string filename)
      : in_(in), file_(std::move(filename)) {}

  SExpr parse() {
    skip_ws();
    SExpr e = parse_one();
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError(file_, line_, msg);
  }

  int get() {
    int c = in_.get();
    if (c == '\n') ++line_;
    return c;
  }
  int peek() { return in_.peek(); }

  void skip_ws() {
    for (;;) {
      int c = peek();
      if (c == EOF) return;
      if (std::isspace(c)) {
        get();
        continue;
      }
      return;
    }
  }

  SExpr parse_one() {
    skip_ws();
    int c = peek();
    if (c == EOF) fail("unexpected end of file");
    if (c == '(') {
      get();
      SExpr list;
      for (;;) {
        skip_ws();
        c = peek();
        if (c == EOF) fail("unterminated list");
        if (c == ')') {
          get();
          return list;
        }
        list.items.push_back(parse_one());
      }
    }
    if (c == ')') fail("unexpected ')'");
    // Atom (possibly quoted string).
    SExpr atom;
    atom.is_atom = true;
    if (c == '"') {
      get();
      for (;;) {
        int d = get();
        if (d == EOF) fail("unterminated string");
        if (d == '"') break;
        atom.atom.push_back(static_cast<char>(d));
      }
    } else {
      while (peek() != EOF && !std::isspace(peek()) && peek() != '(' &&
             peek() != ')') {
        atom.atom.push_back(static_cast<char>(get()));
      }
    }
    return atom;
  }

  std::istream& in_;
  std::string file_;
  int line_ = 1;
};

// ---------------------------------------------------------- cell library --

struct StdCell {
  const char* name;
  TruthTable (*make)();
};

TruthTable make_inv() { return TruthTable::inverter(); }
TruthTable make_buf() { return TruthTable::identity(); }
TruthTable make_and2() { return TruthTable::and_n(2); }
TruthTable make_or2() { return TruthTable::or_n(2); }
TruthTable make_nand2() { return TruthTable::and_n(2, true); }
TruthTable make_nor2() { return TruthTable::or_n(2, true); }
TruthTable make_xor2() { return TruthTable::xor_n(2); }
TruthTable make_xnor2() { return TruthTable::xor_n(2, true); }
TruthTable make_and3() { return TruthTable::and_n(3); }
TruthTable make_or3() { return TruthTable::or_n(3); }
TruthTable make_mux2() { return TruthTable::mux2(); }

const StdCell kStdCells[] = {
    {"INV", make_inv},     {"BUF", make_buf},   {"AND2", make_and2},
    {"OR2", make_or2},     {"NAND2", make_nand2}, {"NOR2", make_nor2},
    {"XOR2", make_xor2},   {"XNOR2", make_xnor2}, {"AND3", make_and3},
    {"OR3", make_or3},     {"MUX2", make_mux2},
};

/// Finds a standard cell matching the truth table; returns nullptr if none.
const StdCell* match_std_cell(const TruthTable& t) {
  for (const auto& cell : kStdCells) {
    if (cell.make() == t) return &cell;
  }
  return nullptr;
}

const StdCell* find_std_cell(const std::string& name) {
  for (const auto& cell : kStdCells) {
    if (iequals(cell.name, name)) return &cell;
  }
  return nullptr;
}

/// EDIF identifiers must start with a letter; escape others with '&'.
std::string edif_name(const std::string& raw) {
  std::string out;
  if (raw.empty() || !std::isalpha(static_cast<unsigned char>(raw[0]))) {
    out = "&";
  }
  for (char c : raw) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  return out;
}

}  // namespace

// -------------------------------------------------------------- writing --

void write_edif(const Network& network, std::ostream& out) {
  // Collect the cells used.
  struct UsedLut {
    std::string cell_name;
    const Gate* gate;
  };
  std::map<std::string, const Gate*> lut_cells;  // cell name → exemplar gate
  std::map<std::string, std::string> gate_cell;  // gate name → cell name
  bool uses_dff = !network.latches().empty();

  for (const auto& g : network.gates()) {
    if (const StdCell* cell = match_std_cell(g.table)) {
      gate_cell[g.name] = cell->name;
    } else {
      std::string cell_name =
          strprintf("LUT%d_%s", g.table.n_inputs(), g.table.to_hex().c_str());
      lut_cells.emplace(cell_name, &g);
      gate_cell[g.name] = cell_name;
    }
  }

  out << "(edif " << edif_name(network.name()) << "\n"
      << "  (edifVersion 2 0 0)\n  (edifLevel 0)\n"
      << "  (keywordMap (keywordLevel 0))\n"
      << "  (status (written (timeStamp 2004 1 1 0 0 0)"
      << " (program \"DIVINER\" (version \"1.0\"))))\n";

  // Primitive library.
  out << "  (library PRIMS (edifLevel 0) (technology (numberDefinition))\n";
  auto emit_prim = [&](const std::string& name,
                       const std::vector<std::string>& ins,
                       const std::vector<std::string>& outs,
                       const std::string& truth_prop) {
    out << "    (cell " << name << " (cellType GENERIC)\n"
        << "      (view netlist (viewType NETLIST)\n        (interface";
    for (const auto& p : ins) {
      out << " (port " << p << " (direction INPUT))";
    }
    for (const auto& p : outs) {
      out << " (port " << p << " (direction OUTPUT))";
    }
    out << ")";
    if (!truth_prop.empty()) {
      out << "\n        (property truth (string \"" << truth_prop << "\"))";
    }
    out << "))\n";
  };
  std::set<std::string> emitted;
  for (const auto& [gname, cname] : gate_cell) {
    if (!emitted.insert(cname).second) continue;
    auto lut_it = lut_cells.find(cname);
    if (lut_it != lut_cells.end()) {
      std::vector<std::string> ins;
      for (int i = 0; i < lut_it->second->table.n_inputs(); ++i) {
        ins.push_back("I" + std::to_string(i));
      }
      emit_prim(cname, ins, {"O"},
                strprintf("%d:%s", lut_it->second->table.n_inputs(),
                          lut_it->second->table.to_hex().c_str()));
    } else {
      const StdCell* cell = find_std_cell(cname);
      AMDREL_CHECK(cell != nullptr);
      int n = cell->make().n_inputs();
      std::vector<std::string> ins;
      for (int i = 0; i < n; ++i) ins.push_back("I" + std::to_string(i));
      emit_prim(cname, ins, {"O"}, "");
    }
  }
  if (uses_dff) emit_prim("DFF", {"D", "C"}, {"Q"}, "");
  out << "  )\n";

  // Design library.
  out << "  (library DESIGNS (edifLevel 0) (technology (numberDefinition))\n"
      << "    (cell " << edif_name(network.name()) << " (cellType GENERIC)\n"
      << "      (view netlist (viewType NETLIST)\n"
      << "        (interface\n";
  for (SignalId s : network.inputs()) {
    out << "          (port " << edif_name(network.signal_name(s))
        << " (direction INPUT))\n";
  }
  for (SignalId s : network.outputs()) {
    out << "          (port " << edif_name(network.signal_name(s))
        << " (direction OUTPUT))\n";
  }
  out << "        )\n        (contents\n";

  // Instances.
  for (const auto& g : network.gates()) {
    out << "          (instance " << edif_name("g_" + g.name)
        << " (viewRef netlist (cellRef " << gate_cell[g.name]
        << " (libraryRef PRIMS))))\n";
  }
  for (const auto& l : network.latches()) {
    out << "          (instance " << edif_name("l_" + l.name)
        << " (viewRef netlist (cellRef DFF (libraryRef PRIMS))))\n";
  }

  // Nets: one per signal, joining the driver port and all sink ports.
  for (SignalId s = 0; s < network.num_signals(); ++s) {
    std::vector<std::string> refs;
    // Driver.
    if (network.is_input(s)) {
      refs.push_back("(portRef " + edif_name(network.signal_name(s)) + ")");
    }
    for (const auto& g : network.gates()) {
      if (g.output == s) {
        refs.push_back("(portRef O (instanceRef " + edif_name("g_" + g.name) +
                       "))");
      }
      for (std::size_t i = 0; i < g.inputs.size(); ++i) {
        if (g.inputs[i] == s) {
          refs.push_back("(portRef I" + std::to_string(i) +
                         " (instanceRef " + edif_name("g_" + g.name) + "))");
        }
      }
    }
    for (const auto& l : network.latches()) {
      if (l.q == s) {
        refs.push_back("(portRef Q (instanceRef " + edif_name("l_" + l.name) +
                       "))");
      }
      if (l.d == s) {
        refs.push_back("(portRef D (instanceRef " + edif_name("l_" + l.name) +
                       "))");
      }
      if (l.clock == s) {
        refs.push_back("(portRef C (instanceRef " + edif_name("l_" + l.name) +
                       "))");
      }
    }
    if (network.is_output(s)) {
      refs.push_back("(portRef " + edif_name(network.signal_name(s)) + ")");
    }
    if (refs.size() < 2 && !network.is_output(s) && !network.is_input(s)) {
      // Dangling internal net: skip.
      if (refs.empty()) continue;
    }
    out << "          (net " << edif_name(network.signal_name(s))
        << " (joined";
    for (const auto& r : refs) out << " " << r;
    out << "))\n";
  }
  out << "        )))\n  )\n"
      << "  (design " << edif_name(network.name()) << " (cellRef "
      << edif_name(network.name()) << " (libraryRef DESIGNS)))\n)\n";
}

std::string write_edif_string(const Network& network) {
  std::ostringstream out;
  write_edif(network, out);
  return out.str();
}

void write_edif_file(const Network& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write EDIF file: " + path);
  write_edif(network, out);
}

// -------------------------------------------------------------- reading --

Network read_edif(std::istream& in, const std::string& filename) {
  SExprParser parser(in, filename);
  SExpr root = parser.parse();
  if (root.is_atom || !iequals(root.head(), "edif")) {
    throw ParseError(filename, 1, "not an EDIF file");
  }

  Network net(root.arg());

  // Index primitive cells: name → (n_inputs, truth table or std cell).
  struct PrimInfo {
    TruthTable table;
    bool is_dff = false;
  };
  std::map<std::string, PrimInfo> prims;

  const SExpr* design_cell = nullptr;

  for (const SExpr* lib : root.children("library")) {
    for (const SExpr* cell : lib->children("cell")) {
      const std::string cell_name = cell->arg();
      const SExpr* view = cell->child("view");
      if (view == nullptr) continue;
      const SExpr* contents = view->child("contents");
      if (contents != nullptr && !contents->items.empty() &&
          contents->items.size() > 1) {
        // A cell with contents = the design.
        design_cell = cell;
        continue;
      }
      // Primitive.
      PrimInfo info;
      if (iequals(cell_name, "DFF")) {
        info.is_dff = true;
        prims[cell_name] = info;
        continue;
      }
      const SExpr* prop = view->child("property");
      bool have_truth = false;
      if (prop != nullptr && iequals(prop->arg(), "truth")) {
        const SExpr* str = prop->child("string");
        if (str != nullptr) {
          // Format "N:hex".
          auto parts = split_char(str->arg(), ':');
          if (parts.size() == 2) {
            int n = std::stoi(parts[0]);
            TruthTable t(n);
            // Parse hex, LSB nibble last character.
            const std::string& hex = parts[1];
            for (std::uint64_t row = 0; row < t.n_rows(); ++row) {
              std::size_t nibble_index = static_cast<std::size_t>(row / 4);
              if (nibble_index >= hex.size()) break;
              char c = hex[hex.size() - 1 - nibble_index];
              int v = std::isdigit(static_cast<unsigned char>(c))
                          ? c - '0'
                          : 10 + (std::tolower(c) - 'a');
              t.set(row, (v >> (row % 4)) & 1);
            }
            info.table = t;
            have_truth = true;
          }
        }
      }
      if (!have_truth) {
        const StdCell* std_cell = find_std_cell(cell_name);
        if (std_cell != nullptr) {
          info.table = std_cell->make();
        } else {
          // Unknown primitive without truth table: skip (DRUID drops
          // vendor-specific helper cells).
          continue;
        }
      }
      prims[cell_name] = info;
    }
  }
  if (design_cell == nullptr) {
    throw ParseError(filename, 1, "no design cell with contents found");
  }

  const SExpr* view = design_cell->child("view");
  const SExpr* interface = view->child("interface");
  const SExpr* contents = view->child("contents");
  AMDREL_CHECK(interface != nullptr && contents != nullptr);

  std::vector<std::pair<std::string, bool>> ports;  // name, is_input
  for (const SExpr* port : interface->children("port")) {
    const SExpr* dir = port->child("direction");
    bool is_input =
        dir == nullptr || iequals(dir->items.size() > 1 ? dir->items[1].atom
                                                        : "",
                                  "INPUT");
    // direction may appear as (direction INPUT): items[1] atom.
    if (dir != nullptr && dir->items.size() > 1 && dir->items[1].is_atom) {
      is_input = iequals(dir->items[1].atom, "INPUT");
    }
    ports.push_back({port->arg(), is_input});
  }

  // Instances.
  struct Inst {
    std::string cell;
  };
  std::map<std::string, Inst> instances;
  for (const SExpr* inst : contents->children("instance")) {
    const SExpr* view_ref = inst->child("viewRef");
    const SExpr* cell_ref =
        view_ref != nullptr ? view_ref->child("cellRef") : nullptr;
    if (cell_ref == nullptr) continue;
    instances[inst->arg()] = Inst{cell_ref->arg()};
  }

  // Nets → connectivity: for each instance port, which net.
  std::map<std::string, std::map<std::string, std::string>> inst_pins;
  std::map<std::string, std::string> top_port_net;  // port name → net name
  for (const SExpr* n : contents->children("net")) {
    const std::string net_name = n->arg();
    const SExpr* joined = n->child("joined");
    if (joined == nullptr) continue;
    for (const SExpr* pr : joined->children("portRef")) {
      const std::string port_name = pr->arg();
      const SExpr* ir = pr->child("instanceRef");
      if (ir == nullptr) {
        top_port_net[port_name] = net_name;
      } else {
        inst_pins[ir->arg()][port_name] = net_name;
      }
    }
  }

  // Build the network: signals are nets.
  for (const auto& [port, is_input] : ports) {
    auto it = top_port_net.find(port);
    const std::string net_name = it != top_port_net.end() ? it->second : port;
    SignalId s = net.get_or_add_signal(net_name);
    if (is_input) {
      net.add_input(s);
    } else {
      net.add_output(s);
    }
  }
  for (const auto& [iname, inst] : instances) {
    auto prim_it = prims.find(inst.cell);
    if (prim_it == prims.end()) {
      throw ParseError(filename, 1, "instance of unknown cell: " + inst.cell);
    }
    const auto& pins = inst_pins[iname];
    auto pin = [&](const std::string& p) -> SignalId {
      auto it = pins.find(p);
      if (it == pins.end()) return kNoSignal;
      return net.get_or_add_signal(it->second);
    };
    if (prim_it->second.is_dff) {
      SignalId d = pin("D"), q = pin("Q"), c = pin("C");
      if (d == kNoSignal || q == kNoSignal) {
        throw ParseError(filename, 1, "DFF with unconnected D/Q: " + iname);
      }
      net.add_latch(iname, d, q, c, LatchInit::kZero);
    } else {
      const TruthTable& t = prim_it->second.table;
      std::vector<SignalId> ins;
      for (int i = 0; i < t.n_inputs(); ++i) {
        SignalId s = pin("I" + std::to_string(i));
        if (s == kNoSignal) {
          throw ParseError(filename, 1,
                           "unconnected input I" + std::to_string(i) +
                               " on instance " + iname);
        }
        ins.push_back(s);
      }
      SignalId o = pin("O");
      if (o == kNoSignal) {
        throw ParseError(filename, 1, "unconnected output on " + iname);
      }
      net.add_gate(iname, t, std::move(ins), o);
    }
  }
  return net;
}

Network read_edif_string(const std::string& text) {
  std::istringstream in(text);
  return read_edif(in);
}

Network read_edif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open EDIF file: " + path);
  return read_edif(in, path);
}

}  // namespace amdrel::netlist

#include "netlist/blif.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::netlist {
namespace {

struct Cover {
  std::string output;
  std::vector<std::string> inputs;
  std::vector<std::pair<std::string, char>> cubes;  // (input pattern, out)
  int line = 0;
};

TruthTable cover_to_table(const Cover& cover, const std::string& file) {
  const int n = static_cast<int>(cover.inputs.size());
  if (n > 16) {
    throw ParseError(file, cover.line,
                     "gate '" + cover.output + "' has too many inputs (" +
                         std::to_string(n) + " > 16)");
  }
  // Decide polarity: all cube outputs must agree (standard BLIF).
  bool on_set = true;
  if (!cover.cubes.empty()) {
    on_set = cover.cubes.front().second == '1';
    for (const auto& [pat, out] : cover.cubes) {
      if ((out == '1') != on_set) {
        throw ParseError(file, cover.line,
                         "mixed on-set/off-set cover for '" + cover.output +
                             "'");
      }
    }
  } else {
    // Empty cover = constant 0 (".names x" with no cubes).
    on_set = true;
  }

  TruthTable t(n);
  for (std::uint64_t row = 0; row < t.n_rows(); ++row) {
    bool covered = false;
    for (const auto& [pat, out] : cover.cubes) {
      bool match = true;
      for (int i = 0; i < n; ++i) {
        const char c = pat[static_cast<std::size_t>(i)];
        const bool bit = (row >> i) & 1;
        if (c == '-') continue;
        if ((c == '1') != bit) {
          match = false;
          break;
        }
      }
      if (match) {
        covered = true;
        break;
      }
    }
    t.set(row, on_set ? covered : !covered);
  }
  return t;
}

}  // namespace

Network read_blif(std::istream& in, const std::string& filename) {
  Network net;
  bool saw_model = false, saw_end = false;
  std::vector<std::string> input_names, output_names;
  std::vector<Cover> covers;
  struct RawLatch {
    std::string d, q, clock;
    LatchInit init;
    int line;
  };
  std::vector<RawLatch> raw_latches;

  std::string line;
  std::string pending;
  int lineno = 0;
  int first_pending_line = 0;
  int open_cover = -1;  // index into covers (stable across reallocation)

  auto flush_pending = [&]() { pending.clear(); };

  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments.
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Handle continuations.
    std::string t = trim(line);
    if (!t.empty() && t.back() == '\\') {
      if (pending.empty()) first_pending_line = lineno;
      pending += t.substr(0, t.size() - 1) + " ";
      continue;
    }
    std::string full = pending + t;
    int at_line = pending.empty() ? lineno : first_pending_line;
    flush_pending();
    if (full.empty()) continue;

    auto tokens = split_ws(full);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];

    if (head == ".model") {
      if (tokens.size() >= 2) net.set_name(tokens[1]);
      saw_model = true;
      open_cover = -1;
    } else if (head == ".inputs") {
      input_names.insert(input_names.end(), tokens.begin() + 1, tokens.end());
      open_cover = -1;
    } else if (head == ".outputs") {
      output_names.insert(output_names.end(), tokens.begin() + 1,
                          tokens.end());
      open_cover = -1;
    } else if (head == ".names") {
      if (tokens.size() < 2) {
        throw ParseError(filename, at_line, ".names needs an output");
      }
      Cover c;
      c.output = tokens.back();
      c.inputs.assign(tokens.begin() + 1, tokens.end() - 1);
      c.line = at_line;
      covers.push_back(std::move(c));
      open_cover = static_cast<int>(covers.size()) - 1;
    } else if (head == ".latch") {
      // .latch <input> <output> [<type> <control>] [<init>]
      if (tokens.size() < 3) {
        throw ParseError(filename, at_line, ".latch needs input and output");
      }
      RawLatch l;
      l.d = tokens[1];
      l.q = tokens[2];
      l.init = LatchInit::kDontCare;
      std::size_t idx = 3;
      if (tokens.size() >= 5 &&
          (tokens[3] == "re" || tokens[3] == "fe" || tokens[3] == "ah" ||
           tokens[3] == "al" || tokens[3] == "as")) {
        l.clock = tokens[4];
        idx = 5;
      }
      if (tokens.size() > idx) {
        const std::string& init = tokens[idx];
        if (init == "0") l.init = LatchInit::kZero;
        else if (init == "1") l.init = LatchInit::kOne;
        else l.init = LatchInit::kDontCare;
      }
      l.line = at_line;
      raw_latches.push_back(std::move(l));
      open_cover = -1;
    } else if (head == ".end") {
      saw_end = true;
      open_cover = -1;
      break;
    } else if (head[0] == '.') {
      // Unknown directive (e.g. .clock, .default_input_arrival): ignored but
      // closes any open cover.
      open_cover = -1;
    } else {
      // Cube line for the open cover.
      if (open_cover < 0) {
        throw ParseError(filename, at_line, "cube outside .names: " + full);
      }
      Cover& oc = covers[static_cast<std::size_t>(open_cover)];
      if (oc.inputs.empty()) {
        // Constant: single column "1" or "0".
        if (tokens.size() != 1 || (tokens[0] != "0" && tokens[0] != "1")) {
          throw ParseError(filename, at_line, "bad constant cube: " + full);
        }
        oc.cubes.push_back({"", tokens[0][0]});
      } else {
        if (tokens.size() != 2 || tokens[0].size() != oc.inputs.size()) {
          throw ParseError(filename, at_line, "bad cube: " + full);
        }
        for (char c : tokens[0]) {
          if (c != '0' && c != '1' && c != '-') {
            throw ParseError(filename, at_line, "bad cube literal: " + full);
          }
        }
        if (tokens[1] != "0" && tokens[1] != "1") {
          throw ParseError(filename, at_line, "bad cube output: " + full);
        }
        oc.cubes.push_back({tokens[0], tokens[1][0]});
      }
    }
  }
  if (!saw_model) throw ParseError(filename, 1, "missing .model");
  (void)saw_end;  // .end is optional in practice

  for (const auto& name : input_names) {
    net.add_input(net.get_or_add_signal(name));
  }
  for (const auto& c : covers) {
    std::vector<SignalId> ins;
    ins.reserve(c.inputs.size());
    for (const auto& n : c.inputs) ins.push_back(net.get_or_add_signal(n));
    SignalId out = net.get_or_add_signal(c.output);
    net.add_gate(c.output, cover_to_table(c, filename), std::move(ins), out);
  }
  for (const auto& l : raw_latches) {
    SignalId d = net.get_or_add_signal(l.d);
    SignalId q = net.get_or_add_signal(l.q);
    SignalId clk = l.clock.empty() || l.clock == "NIL"
                       ? kNoSignal
                       : net.get_or_add_signal(l.clock);
    net.add_latch(l.q, d, q, clk, l.init);
  }
  for (const auto& name : output_names) {
    SignalId s = net.find_signal(name);
    if (s == kNoSignal) {
      throw ParseError(filename, lineno, "undriven output: " + name);
    }
    net.add_output(s);
  }
  return net;
}

Network read_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open BLIF file: " + path);
  return read_blif(in, path);
}

Network read_blif_string(const std::string& text) {
  std::istringstream in(text);
  return read_blif(in);
}

void write_blif(const Network& network, std::ostream& out) {
  out << ".model " << network.name() << "\n";
  out << ".inputs";
  for (SignalId s : network.inputs()) out << " " << network.signal_name(s);
  out << "\n.outputs";
  for (SignalId s : network.outputs()) out << " " << network.signal_name(s);
  out << "\n";
  for (const auto& l : network.latches()) {
    out << ".latch " << network.signal_name(l.d) << " "
        << network.signal_name(l.q);
    if (l.clock != kNoSignal) {
      out << " re " << network.signal_name(l.clock);
    }
    switch (l.init) {
      case LatchInit::kZero: out << " 0"; break;
      case LatchInit::kOne: out << " 1"; break;
      case LatchInit::kDontCare: out << " 2"; break;
    }
    out << "\n";
  }
  for (const auto& g : network.gates()) {
    out << ".names";
    for (SignalId s : g.inputs) out << " " << network.signal_name(s);
    out << " " << network.signal_name(g.output) << "\n";
    // Emit the on-set minterms (or "0"-cover if the on-set is everything
    // but small off-set... keep it simple: on-set minterms; constant-1 uses
    // the empty-pattern form).
    if (g.table.n_inputs() == 0) {
      if (g.table.constant_value()) out << "1\n";
      // constant 0: no cubes
    } else {
      for (std::uint64_t row = 0; row < g.table.n_rows(); ++row) {
        if (!g.table.get(row)) continue;
        std::string pat(static_cast<std::size_t>(g.table.n_inputs()), '0');
        for (int i = 0; i < g.table.n_inputs(); ++i) {
          if ((row >> i) & 1) pat[static_cast<std::size_t>(i)] = '1';
        }
        out << pat << " 1\n";
      }
    }
  }
  out << ".end\n";
}

std::string write_blif_string(const Network& network) {
  std::ostringstream out;
  write_blif(network, out);
  return out.str();
}

void write_blif_file(const Network& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write BLIF file: " + path);
  write_blif(network, out);
}

}  // namespace amdrel::netlist

#include "netlist/simulate.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::netlist {

Simulator::Simulator(const Network& network) : net_(&network) {
  topo_ = network.topo_order();
  values_.assign(static_cast<std::size_t>(network.num_signals()), 0);
  prev_values_ = values_;
  toggles_.assign(values_.size(), 0);
  reset();
}

void Simulator::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  for (const auto& l : net_->latches()) {
    values_[static_cast<std::size_t>(l.q)] = (l.init == LatchInit::kOne);
  }
  first_propagate_ = true;
}

void Simulator::set_input(SignalId s, bool value) {
  AMDREL_CHECK_MSG(net_->is_input(s), "not a primary input");
  values_[static_cast<std::size_t>(s)] = value;
}

void Simulator::set_input_by_name(const std::string& name, bool value) {
  SignalId s = net_->find_signal(name);
  AMDREL_CHECK_MSG(s != kNoSignal, "unknown input: " + name);
  set_input(s, value);
}

void Simulator::propagate() {
  for (int gi : topo_) {
    const Gate& g = net_->gates()[static_cast<std::size_t>(gi)];
    std::uint64_t row = 0;
    for (std::size_t i = 0; i < g.inputs.size(); ++i) {
      if (values_[static_cast<std::size_t>(g.inputs[i])]) row |= 1ull << i;
    }
    values_[static_cast<std::size_t>(g.output)] = g.table.get(row);
  }
  if (!first_propagate_) {
    for (std::size_t s = 0; s < values_.size(); ++s) {
      if (values_[s] != prev_values_[s]) ++toggles_[s];
    }
  }
  prev_values_ = values_;
  first_propagate_ = false;
}

void Simulator::step_clock() {
  // Capture all D values first (simultaneous update).
  std::vector<char> captured;
  captured.reserve(net_->latches().size());
  for (const auto& l : net_->latches()) {
    captured.push_back(values_[static_cast<std::size_t>(l.d)]);
  }
  for (std::size_t i = 0; i < net_->latches().size(); ++i) {
    values_[static_cast<std::size_t>(net_->latches()[i].q)] = captured[i];
  }
}

bool Simulator::value(SignalId s) const {
  AMDREL_CHECK(s >= 0 && s < net_->num_signals());
  return values_[static_cast<std::size_t>(s)];
}

bool Simulator::output(std::size_t index) const {
  AMDREL_CHECK(index < net_->outputs().size());
  return value(net_->outputs()[index]);
}

EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    int n_runs, int n_cycles,
                                    std::uint64_t seed) {
  EquivalenceResult r;

  // Match I/O by name.
  auto names_of = [](const Network& n, const std::vector<SignalId>& sigs) {
    std::set<std::string> out;
    for (SignalId s : sigs) out.insert(n.signal_name(s));
    return out;
  };
  auto in_a = names_of(a, a.inputs()), in_b = names_of(b, b.inputs());
  auto out_a = names_of(a, a.outputs()), out_b = names_of(b, b.outputs());
  if (in_a != in_b) {
    r.message = "primary input name sets differ";
    return r;
  }
  if (out_a != out_b) {
    r.message = "primary output name sets differ";
    return r;
  }

  Simulator sim_a(a), sim_b(b);
  Rng rng(seed);
  for (int run = 0; run < n_runs; ++run) {
    sim_a.reset();
    sim_b.reset();
    for (int cycle = 0; cycle < n_cycles; ++cycle) {
      for (const auto& name : in_a) {
        bool v = rng.next_bool();
        sim_a.set_input_by_name(name, v);
        sim_b.set_input_by_name(name, v);
      }
      sim_a.propagate();
      sim_b.propagate();
      for (const auto& name : out_a) {
        bool va = sim_a.value(a.find_signal(name));
        bool vb = sim_b.value(b.find_signal(name));
        if (va != vb) {
          r.message = strprintf("output '%s' differs at run %d cycle %d (%d vs %d)",
                                name.c_str(), run, cycle, va ? 1 : 0,
                                vb ? 1 : 0);
          return r;
        }
      }
      sim_a.step_clock();
      sim_b.step_clock();
    }
  }
  r.equivalent = true;
  return r;
}

}  // namespace amdrel::netlist

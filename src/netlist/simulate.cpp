#include "netlist/simulate.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::netlist {

Simulator::Simulator(const Network& network) : net_(&network) {
  const std::vector<int> topo = network.topo_order();
  flat_.reserve(topo.size());
  for (int gi : topo) {
    const Gate& g = network.gates()[static_cast<std::size_t>(gi)];
    FlatGate fg;
    fg.output = g.output;
    fg.in_begin = static_cast<std::uint32_t>(flat_inputs_.size());
    for (SignalId s : g.inputs) flat_inputs_.push_back(s);
    fg.in_end = static_cast<std::uint32_t>(flat_inputs_.size());
    fg.words = g.table.words().data();
    flat_.push_back(fg);
  }
  values_.assign(static_cast<std::size_t>(network.num_signals()), 0);
  prev_values_ = values_;
  is_input_.assign(values_.size(), 0);
  for (SignalId s : network.inputs()) {
    is_input_[static_cast<std::size_t>(s)] = 1;
  }
  toggles_.assign(values_.size(), 0);
  reset();
}

void Simulator::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  for (const auto& l : net_->latches()) {
    values_[static_cast<std::size_t>(l.q)] = (l.init == LatchInit::kOne);
  }
  first_propagate_ = true;
}

void Simulator::set_input(SignalId s, bool value) {
  AMDREL_CHECK_MSG(s >= 0 && static_cast<std::size_t>(s) < is_input_.size() &&
                       is_input_[static_cast<std::size_t>(s)],
                   "not a primary input");
  values_[static_cast<std::size_t>(s)] = value;
}

void Simulator::set_input_by_name(const std::string& name, bool value) {
  SignalId s = net_->find_signal(name);
  AMDREL_CHECK_MSG(s != kNoSignal, "unknown input: " + name);
  set_input(s, value);
}

void Simulator::propagate() {
  const char* v = values_.data();
  const int* ins = flat_inputs_.data();
  for (const FlatGate& g : flat_) {
    std::uint64_t row = 0;
    for (std::uint32_t i = g.in_begin; i < g.in_end; ++i) {
      row |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(v[ins[i]]) & 1u)
             << (i - g.in_begin);
    }
    values_[static_cast<std::size_t>(g.output)] =
        static_cast<char>((g.words[row >> 6] >> (row & 63)) & 1);
  }
  if (track_toggles_) {
    if (!first_propagate_) {
      for (std::size_t s = 0; s < values_.size(); ++s) {
        if (values_[s] != prev_values_[s]) ++toggles_[s];
      }
    }
    prev_values_ = values_;
  }
  first_propagate_ = false;
}

void Simulator::step_clock() {
  // Capture all D values first (simultaneous update).
  std::vector<char> captured;
  captured.reserve(net_->latches().size());
  for (const auto& l : net_->latches()) {
    captured.push_back(values_[static_cast<std::size_t>(l.d)]);
  }
  for (std::size_t i = 0; i < net_->latches().size(); ++i) {
    values_[static_cast<std::size_t>(net_->latches()[i].q)] = captured[i];
  }
}

bool Simulator::value(SignalId s) const {
  AMDREL_CHECK(s >= 0 && s < net_->num_signals());
  return values_[static_cast<std::size_t>(s)];
}

bool Simulator::output(std::size_t index) const {
  AMDREL_CHECK(index < net_->outputs().size());
  return value(net_->outputs()[index]);
}

EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    int n_runs, int n_cycles,
                                    std::uint64_t seed) {
  EquivalenceResult r;

  // Match I/O by name.
  auto names_of = [](const Network& n, const std::vector<SignalId>& sigs) {
    std::set<std::string> out;
    for (SignalId s : sigs) out.insert(n.signal_name(s));
    return out;
  };
  auto in_a = names_of(a, a.inputs()), in_b = names_of(b, b.inputs());
  auto out_a = names_of(a, a.outputs()), out_b = names_of(b, b.outputs());
  if (in_a != in_b) {
    r.message = "primary input name sets differ";
    return r;
  }
  if (out_a != out_b) {
    r.message = "primary output name sets differ";
    return r;
  }

  // Resolve the name matching once; the cycle loop then works purely on
  // signal ids (a by-name lookup per input per cycle dominates the whole
  // check on small designs).
  std::vector<std::pair<SignalId, SignalId>> in_ids, out_ids;
  in_ids.reserve(in_a.size());
  out_ids.reserve(out_a.size());
  for (const auto& name : in_a) {
    in_ids.emplace_back(a.find_signal(name), b.find_signal(name));
  }
  for (const auto& name : out_a) {
    out_ids.emplace_back(a.find_signal(name), b.find_signal(name));
  }

  Simulator sim_a(a), sim_b(b);
  sim_a.set_track_toggles(false);
  sim_b.set_track_toggles(false);
  Rng rng(seed);
  for (int run = 0; run < n_runs; ++run) {
    sim_a.reset();
    sim_b.reset();
    for (int cycle = 0; cycle < n_cycles; ++cycle) {
      for (const auto& [ia, ib] : in_ids) {
        bool v = rng.next_bool();
        sim_a.set_input(ia, v);
        sim_b.set_input(ib, v);
      }
      sim_a.propagate();
      sim_b.propagate();
      for (std::size_t oi = 0; oi < out_ids.size(); ++oi) {
        bool va = sim_a.value(out_ids[oi].first);
        bool vb = sim_b.value(out_ids[oi].second);
        if (va != vb) {
          const auto& name = *std::next(out_a.begin(),
                                        static_cast<long>(oi));
          r.message = strprintf("output '%s' differs at run %d cycle %d (%d vs %d)",
                                name.c_str(), run, cycle, va ? 1 : 0,
                                vb ? 1 : 0);
          return r;
        }
      }
      sim_a.step_clock();
      sim_b.step_clock();
    }
  }
  r.equivalent = true;
  return r;
}

}  // namespace amdrel::netlist

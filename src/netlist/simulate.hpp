#pragma once
// Cycle-accurate two-valued simulation of a Network, plus random-vector
// (sequential) equivalence checking between two networks with matching
// primary input/output names. Used to verify every transformation in the
// CAD flow (synthesis, mapping, packing, bitstream).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/network.hpp"
#include "util/rng.hpp"

namespace amdrel::netlist {

class Simulator {
 public:
  explicit Simulator(const Network& network);

  /// Resets latches to their init values (don't-care → 0).
  void reset();

  /// Sets primary input `s` for the current cycle.
  void set_input(SignalId s, bool value);
  void set_input_by_name(const std::string& name, bool value);

  /// Recomputes all combinational logic from current inputs + latch state.
  void propagate();

  /// Clock edge: latches capture D (call after propagate()).
  void step_clock();

  bool value(SignalId s) const;
  bool output(std::size_t index) const;

  /// Per-signal toggle counters (for activity estimation): number of value
  /// changes observed across propagate() calls.
  const std::vector<std::uint64_t>& toggle_counts() const { return toggles_; }

  /// Toggle counting costs two full passes over the value array per
  /// propagate(); callers that only compare outputs (equivalence checks)
  /// can switch it off.
  void set_track_toggles(bool on) { track_toggles_ = on; }

 private:
  /// One gate of the flattened evaluation order: inputs are a slice of
  /// `flat_inputs_`, the table a pointer into the gate's own words (the
  /// network outlives the simulator). Avoids the indirections and
  /// per-call bounds checks of Gate/TruthTable in the propagate loop.
  struct FlatGate {
    int output;
    std::uint32_t in_begin;
    std::uint32_t in_end;
    const std::uint64_t* words;
  };

  const Network* net_;
  std::vector<FlatGate> flat_;      ///< topological order
  std::vector<int> flat_inputs_;
  std::vector<char> values_;
  std::vector<char> prev_values_;
  std::vector<char> is_input_;      ///< by SignalId
  std::vector<std::uint64_t> toggles_;
  bool track_toggles_ = true;
  bool first_propagate_ = true;
};

/// Result of an equivalence check.
struct EquivalenceResult {
  bool equivalent = false;
  std::string message;  ///< failure description (first mismatch)
};

/// Compares two networks over `n_cycles` cycles × `n_runs` random stimulus
/// sequences. Inputs/outputs are matched by NAME (order-independent);
/// both must expose the same input and output name sets.
EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    int n_runs = 8, int n_cycles = 64,
                                    std::uint64_t seed = 1);

}  // namespace amdrel::netlist

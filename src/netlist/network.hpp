#pragma once
// Generic gate-level logic network — the common currency of the CAD flow.
//
// Combinational nodes are gates with explicit truth tables (so the same
// structure represents synthesized logic, SIS-optimized logic and mapped
// K-LUTs). Sequential elements are D-latches clocked on a named clock
// (the paper's FPGA registers everything in DETFFs; at the netlist level
// that is a plain edge-triggered register).

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/truth_table.hpp"

namespace amdrel::netlist {

using SignalId = int;
constexpr SignalId kNoSignal = -1;

enum class LatchInit { kZero, kOne, kDontCare };

struct Gate {
  std::string name;
  TruthTable table;
  std::vector<SignalId> inputs;  ///< table input i = inputs[i]
  SignalId output = kNoSignal;
};

struct Latch {
  std::string name;
  SignalId d = kNoSignal;
  SignalId q = kNoSignal;
  SignalId clock = kNoSignal;   ///< kNoSignal = single implicit clock
  LatchInit init = LatchInit::kZero;
};

class Network {
 public:
  explicit Network(std::string name = "top");

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Pre-sizes the signal/gate/latch tables (generators building giant
  /// networks call this once up front to avoid rehash/regrow churn).
  void reserve(int signals, int gates = 0, int latches = 0);

  // --- signals ---
  SignalId add_signal(const std::string& name);   ///< unique name enforced
  SignalId get_or_add_signal(const std::string& name);
  SignalId find_signal(const std::string& name) const;  ///< kNoSignal if none
  const std::string& signal_name(SignalId s) const;
  int num_signals() const { return static_cast<int>(signal_names_.size()); }

  // --- structure ---
  void add_input(SignalId s);
  void add_output(SignalId s);
  /// Adds a gate; `inputs.size()` must equal `table.n_inputs()`.
  int add_gate(const std::string& name, TruthTable table,
               std::vector<SignalId> inputs, SignalId output);
  int add_latch(const std::string& name, SignalId d, SignalId q,
                SignalId clock = kNoSignal, LatchInit init = LatchInit::kZero);

  const std::vector<SignalId>& inputs() const { return inputs_; }
  const std::vector<SignalId>& outputs() const { return outputs_; }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<Latch>& latches() const { return latches_; }
  Gate& gate(int i) { return gates_[static_cast<std::size_t>(i)]; }
  Latch& latch(int i) { return latches_[static_cast<std::size_t>(i)]; }

  bool is_input(SignalId s) const;
  bool is_output(SignalId s) const;

  /// Index of the gate driving `s`, -1 if none.
  int driver_gate(SignalId s) const;
  /// Index of the latch whose q is `s`, -1 if none.
  int driver_latch(SignalId s) const;

  /// Gate indices in topological order (inputs/latch outputs first).
  /// Throws InfeasibleError on a combinational cycle.
  std::vector<int> topo_order() const;

  /// Structural sanity: every gate input driven (by PI, latch or gate),
  /// no signal driven twice, arities consistent. Throws on violation.
  void validate() const;

  /// Basic statistics line for reports.
  std::string stats() const;

 private:
  std::string name_;
  std::vector<std::string> signal_names_;
  std::unordered_map<std::string, SignalId> signal_ids_;
  std::vector<SignalId> inputs_;
  std::vector<SignalId> outputs_;
  std::vector<Gate> gates_;
  std::vector<Latch> latches_;
};

}  // namespace amdrel::netlist

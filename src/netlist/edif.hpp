#pragma once
// EDIF 2.0.0 netlist reader/writer.
//
// In the paper's flow DIVINER emits a commercial-format EDIF netlist,
// DRUID normalizes it and E2FMT translates it to BLIF. Here the writer
// plays DIVINER's output side (standard-cell instances: INV/AND2/.../DFF,
// plus LUT cells carrying their truth table as a property), the reader +
// `Network` conversion plays DRUID+E2FMT (tolerant parse of the subset,
// normalization to the generic gate network that the rest of the flow
// consumes).

#include <iosfwd>
#include <string>

#include "netlist/network.hpp"

namespace amdrel::netlist {

/// Writes the network as EDIF 2.0.0. Gates whose truth table matches a
/// standard cell (INV, BUF, AND2.., OR2.., NAND2.., NOR2.., XOR2.., MUX2)
/// are emitted as that cell; anything else becomes a LUT cell with a
/// "truth" property.
void write_edif(const Network& network, std::ostream& out);
std::string write_edif_string(const Network& network);
void write_edif_file(const Network& network, const std::string& path);

/// Parses the EDIF subset back into a Network (DRUID + E2FMT).
Network read_edif(std::istream& in, const std::string& filename = "<edif>");
Network read_edif_string(const std::string& text);
Network read_edif_file(const std::string& path);

}  // namespace amdrel::netlist

#include "netlist/network.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::netlist {

Network::Network(std::string name) : name_(std::move(name)) {}

void Network::reserve(int signals, int gates, int latches) {
  signal_names_.reserve(static_cast<std::size_t>(signals));
  signal_ids_.reserve(static_cast<std::size_t>(signals));
  gates_.reserve(static_cast<std::size_t>(gates));
  latches_.reserve(static_cast<std::size_t>(latches));
}

SignalId Network::add_signal(const std::string& name) {
  AMDREL_CHECK_MSG(signal_ids_.find(name) == signal_ids_.end(),
                   "duplicate signal: " + name);
  SignalId id = static_cast<SignalId>(signal_names_.size());
  signal_names_.push_back(name);
  signal_ids_.emplace(name, id);
  return id;
}

SignalId Network::get_or_add_signal(const std::string& name) {
  auto it = signal_ids_.find(name);
  if (it != signal_ids_.end()) return it->second;
  return add_signal(name);
}

SignalId Network::find_signal(const std::string& name) const {
  auto it = signal_ids_.find(name);
  return it == signal_ids_.end() ? kNoSignal : it->second;
}

const std::string& Network::signal_name(SignalId s) const {
  AMDREL_CHECK(s >= 0 && s < num_signals());
  return signal_names_[static_cast<std::size_t>(s)];
}

void Network::add_input(SignalId s) {
  AMDREL_CHECK(s >= 0 && s < num_signals());
  inputs_.push_back(s);
}

void Network::add_output(SignalId s) {
  AMDREL_CHECK(s >= 0 && s < num_signals());
  outputs_.push_back(s);
}

int Network::add_gate(const std::string& name, TruthTable table,
                      std::vector<SignalId> inputs, SignalId output) {
  AMDREL_CHECK_MSG(static_cast<int>(inputs.size()) == table.n_inputs(),
                   "gate arity mismatch: " + name);
  AMDREL_CHECK(output >= 0 && output < num_signals());
  gates_.push_back(Gate{name, std::move(table), std::move(inputs), output});
  return static_cast<int>(gates_.size()) - 1;
}

int Network::add_latch(const std::string& name, SignalId d, SignalId q,
                       SignalId clock, LatchInit init) {
  AMDREL_CHECK(d >= 0 && q >= 0);
  latches_.push_back(Latch{name, d, q, clock, init});
  return static_cast<int>(latches_.size()) - 1;
}

bool Network::is_input(SignalId s) const {
  return std::find(inputs_.begin(), inputs_.end(), s) != inputs_.end();
}

bool Network::is_output(SignalId s) const {
  return std::find(outputs_.begin(), outputs_.end(), s) != outputs_.end();
}

int Network::driver_gate(SignalId s) const {
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (gates_[i].output == s) return static_cast<int>(i);
  }
  return -1;
}

int Network::driver_latch(SignalId s) const {
  for (std::size_t i = 0; i < latches_.size(); ++i) {
    if (latches_[i].q == s) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> Network::topo_order() const {
  // Kahn's algorithm over gate→gate dependencies.
  const int n = static_cast<int>(gates_.size());
  std::vector<int> gate_of_signal(static_cast<std::size_t>(num_signals()), -1);
  for (int g = 0; g < n; ++g) {
    gate_of_signal[static_cast<std::size_t>(
        gates_[static_cast<std::size_t>(g)].output)] = g;
  }
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> fanout(static_cast<std::size_t>(n));
  for (int g = 0; g < n; ++g) {
    for (SignalId in : gates_[static_cast<std::size_t>(g)].inputs) {
      int src = gate_of_signal[static_cast<std::size_t>(in)];
      if (src >= 0) {
        fanout[static_cast<std::size_t>(src)].push_back(g);
        ++indegree[static_cast<std::size_t>(g)];
      }
    }
  }
  std::vector<int> ready;
  for (int g = 0; g < n; ++g) {
    if (indegree[static_cast<std::size_t>(g)] == 0) ready.push_back(g);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    int g = ready.back();
    ready.pop_back();
    order.push_back(g);
    for (int next : fanout[static_cast<std::size_t>(g)]) {
      if (--indegree[static_cast<std::size_t>(next)] == 0) ready.push_back(next);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    throw InfeasibleError("combinational cycle in network '" + name_ + "'");
  }
  return order;
}

void Network::validate() const {
  std::vector<int> drivers(static_cast<std::size_t>(num_signals()), 0);
  for (SignalId s : inputs_) ++drivers[static_cast<std::size_t>(s)];
  for (const auto& g : gates_) ++drivers[static_cast<std::size_t>(g.output)];
  for (const auto& l : latches_) ++drivers[static_cast<std::size_t>(l.q)];
  for (SignalId s = 0; s < num_signals(); ++s) {
    AMDREL_CHECK_MSG(drivers[static_cast<std::size_t>(s)] <= 1,
                     "signal driven multiple times: " + signal_name(s));
  }
  auto check_driven = [&](SignalId s, const std::string& ctx) {
    AMDREL_CHECK_MSG(drivers[static_cast<std::size_t>(s)] == 1,
                     "undriven signal " + signal_name(s) + " used by " + ctx);
  };
  for (const auto& g : gates_) {
    AMDREL_CHECK_MSG(static_cast<int>(g.inputs.size()) == g.table.n_inputs(),
                     "gate arity mismatch: " + g.name);
    for (SignalId in : g.inputs) check_driven(in, "gate " + g.name);
  }
  for (const auto& l : latches_) check_driven(l.d, "latch " + l.name);
  for (SignalId s : outputs_) check_driven(s, "primary output");
  topo_order();  // throws on combinational cycles
}

std::string Network::stats() const {
  return strprintf("%s: %d PI, %d PO, %d gates, %d latches, %d signals",
                   name_.c_str(), static_cast<int>(inputs_.size()),
                   static_cast<int>(outputs_.size()),
                   static_cast<int>(gates_.size()),
                   static_cast<int>(latches_.size()), num_signals());
}

}  // namespace amdrel::netlist

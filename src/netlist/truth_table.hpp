#pragma once
// Truth tables for logic gates / LUTs, up to 16 inputs.

#include <cstdint>
#include <string>
#include <vector>

namespace amdrel::netlist {

/// Dense truth table: bit `i` is the output for input pattern `i`
/// (input 0 is the least significant selector bit).
class TruthTable {
 public:
  TruthTable() : n_inputs_(0), words_(1, 0) {}
  explicit TruthTable(int n_inputs);
  /// Builds from the low 2^n bits of `bits` (n_inputs <= 6).
  static TruthTable from_bits(int n_inputs, std::uint64_t bits);

  static TruthTable constant(bool value);
  static TruthTable identity();                 ///< 1-input buffer
  static TruthTable inverter();
  static TruthTable and_n(int n, bool negate_out = false);
  static TruthTable or_n(int n, bool negate_out = false);
  static TruthTable xor_n(int n, bool negate_out = false);
  /// 2:1 mux: inputs (sel, a, b) → sel ? b : a.
  static TruthTable mux2();

  int n_inputs() const { return n_inputs_; }
  std::uint64_t n_rows() const { return 1ull << n_inputs_; }

  bool get(std::uint64_t row) const;
  void set(std::uint64_t row, bool value);

  /// Evaluates with the given input bits (bit i of `inputs` = input i).
  bool eval(std::uint64_t inputs) const { return get(inputs); }

  bool is_constant() const;
  bool constant_value() const;  ///< valid when is_constant()

  /// True if the function actually depends on input `i`.
  bool depends_on(int input) const;

  /// Returns the table with input `i` fixed to `value` (one fewer input).
  TruthTable cofactor(int input, bool value) const;

  /// Returns the table with inputs permuted: new input j = old input
  /// `perm[j]`. perm.size() == n_inputs().
  TruthTable permute(const std::vector<int>& perm) const;

  /// Extends to `n` inputs (new inputs are don't-cares appended at the top).
  TruthTable extend(int n) const;

  /// Inverts the output.
  TruthTable invert() const;

  bool operator==(const TruthTable& other) const;

  /// Hex string, LSB nibble first row group (for dumps/tests).
  std::string to_hex() const;

  /// Raw table words (bit r of word r/64 = output for row r). For hot
  /// evaluation loops that index the bits directly (simulation).
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  int n_inputs_;
  std::vector<std::uint64_t> words_;
};

}  // namespace amdrel::netlist

#!/usr/bin/env bash
# Lint self-check: runs `amdrel_cli lint` over the seeded-defect fixtures
# and asserts each reports its expected rule ID with a nonzero exit, and
# that the clean fixtures pass with exit 0. Usage:
#   scripts/lint-selfcheck.sh [path/to/amdrel_cli]
set -uo pipefail
cd "$(dirname "$0")/.."

CLI="${1:-build/examples/amdrel_cli}"
FIXTURES=tests/fixtures
fail=0

expect_defect() {  # <fixture> <rule-id>
  local out rc
  out=$("$CLI" lint "$FIXTURES/$1" 2>&1)
  rc=$?
  if [[ $rc -eq 0 ]]; then
    echo "FAIL: $1 exited 0, expected nonzero"; fail=1
  elif ! grep -q "$2" <<< "$out"; then
    echo "FAIL: $1 did not report $2:"; echo "$out"; fail=1
  else
    echo "ok: $1 -> $2 (exit $rc)"
  fi
}

expect_clean() {  # <fixture> [top]
  local out rc
  out=$("$CLI" lint "$FIXTURES/$1" ${2:+"$2"} 2>&1)
  rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "FAIL: $1 exited $rc, expected 0:"; echo "$out"; fail=1
  else
    echo "ok: $1 clean (exit 0)"
  fi
}

expect_defect defect_comb_loop.blif NL001
expect_defect defect_double_driven.blif NL002
expect_defect defect_floating_input.blif NL003
expect_clean clean_small.blif
expect_clean traffic_light.vhd traffic

exit $fail

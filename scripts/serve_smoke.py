#!/usr/bin/env python3
"""CI smoke test for the amdrel_serve daemon (DESIGN.md §13).

Starts the daemon on an ephemeral port with per-job tracing enabled,
submits N concurrent bench_gen jobs over the newline-delimited JSON
protocol (one connection per job, mixed priorities), waits for every
result, and checks each bitstream fingerprint byte-for-byte against a
single-shot `amdrel_cli job` run of the identical JobSpec. Then exercises
the observability surface: `stats` must census every job, `events` must
stream each job's submitted/started/done transitions, `trace` must return
a complete per-job spool tagged with that job's trace id, and `metrics`
must serve both the JSON registry snapshot and Prometheus text
exposition. Finishes with a protocol sanity poke (malformed line answers
an error, not a hangup) and a drain shutdown, asserting the daemon
exits 0.

With --artifacts DIR the script leaves behind (for CI upload):
  metrics.json        the registry + per-job metrics reply
  metrics.prom        the Prometheus text exposition
  job-<id>.jsonl      one per-job trace spool fetched over the wire
  serve_latency.json  a QoR-capture-style latency record
                      ({"bench": "serve_latency", ...}) that
                      qor_compare.py reports informationally

Usage: serve_smoke.py <amdrel_serve> <amdrel_cli> [--jobs N]
                      [--artifacts DIR]
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading


def job_spec(i):
    spec = {
        "source": "bench_gen",
        "label": f"smoke-{i}",
        "priority": ["high", "normal", "low"][i % 3],
        "bench": {
            "gates": 40 + (i % 4) * 15,
            "latches": 2 + i % 3,
            "inputs": 8,
            "outputs": 6,
            "seed": 500 + i,
        },
    }
    if i % 4 == 0:
        spec["return_bitstream"] = True
    return spec


def request(port, payload):
    """One request line on a fresh connection; returns the parsed reply."""
    with socket.create_connection(("127.0.0.1", port), timeout=120) as sock:
        sock.sendall((json.dumps(payload) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                raise RuntimeError("daemon hung up mid-reply")
            buf += chunk
        return json.loads(buf)


def run_job_via_daemon(port, spec, results, ids, i):
    """submit + blocking result wait, one connection per job."""
    with socket.create_connection(("127.0.0.1", port), timeout=300) as sock:
        f = sock.makefile("rwb")

        def rpc(payload):
            f.write((json.dumps(payload) + "\n").encode())
            f.flush()
            return json.loads(f.readline())

        submitted = rpc({"cmd": "submit", "job": spec})
        assert submitted["ok"], submitted
        ids[i] = submitted["id"]
        result = rpc(
            {"cmd": "result", "id": submitted["id"], "wait": True,
             "timeout_s": 300})
        assert result["ok"] and result["state"] == "done", result
        assert result["queue_wait_s"] >= 0, result
        assert result["run_wall_s"] > 0, result
        results[i] = result


def check_observability(port, ids, n_jobs, artifacts):
    """stats / events / trace / metrics assertions + artifact drops."""
    stats = request(port, {"cmd": "stats"})
    assert stats["ok"], stats
    assert stats["jobs"]["submitted"] == n_jobs, stats["jobs"]
    assert stats["jobs"]["done"] == n_jobs, stats["jobs"]
    assert stats["queue_wait_s"]["count"] >= n_jobs, stats["queue_wait_s"]
    assert stats["run_wall_s"]["count"] >= n_jobs, stats["run_wall_s"]
    print(f"stats: {n_jobs} jobs done, run_wall_s p95 "
          f"{stats['run_wall_s'].get('p95', 0):.3f}s", flush=True)

    # The event stream carries each job's lifecycle in order.
    events = request(port, {"cmd": "events", "limit": 0})
    assert events["ok"], events
    by_job = {}
    for e in events["events"]:
        if e.get("id"):
            by_job.setdefault(e["id"], []).append(e["kind"])
    for jid in ids:
        assert by_job.get(jid) == ["submitted", "started", "done"], (
            jid, by_job.get(jid))
    print(f"events: {len(events['events'])} buffered, "
          f"lifecycles complete", flush=True)

    # Per-job trace spool: complete, and pure (only this job's trace id).
    trace = request(port, {"cmd": "trace", "id": ids[0]})
    assert trace["ok"] and trace["complete"], trace.get("error", trace)
    want = f"job-{ids[0]}"
    lines = [l for l in trace["trace_jsonl"].splitlines() if l]
    assert lines, "empty trace spool"
    for line in lines:
        event = json.loads(line)
        assert event.get("trace") == want, line
    roots = [l for l in lines
             if json.loads(l).get("name") == "serve.job"]
    assert len(roots) == 2, roots  # one begin + one end, exactly one job
    print(f"trace: job {ids[0]} spool has {len(lines)} events, "
          f"all tagged {want}", flush=True)

    metrics = request(port, {"cmd": "metrics"})
    assert metrics["ok"], metrics
    assert metrics["server"]["jobs_finished"] == n_jobs, metrics["server"]
    prom = request(port, {"cmd": "metrics", "format": "prometheus"})
    assert prom["ok"] and prom["format"] == "prometheus", prom
    assert "amdrel_serve_jobs_submitted" in prom["text"], prom["text"][:500]
    assert "amdrel_serve_run_wall_s_count" in prom["text"], prom["text"][:500]

    if artifacts:
        os.makedirs(artifacts, exist_ok=True)
        with open(os.path.join(artifacts, "metrics.json"), "w") as f:
            json.dump(metrics, f, indent=2)
        with open(os.path.join(artifacts, "metrics.prom"), "w") as f:
            f.write(prom["text"])
        with open(os.path.join(artifacts, f"job-{ids[0]}.jsonl"), "w") as f:
            f.write(trace["trace_jsonl"])
    return stats


def write_latency_capture(path, stats, results):
    """A QoR-capture-style record qor_compare.py reports informationally."""
    capture = {
        "bench": "serve_latency",
        "jobs": len(results),
        "queue_wait_s": stats["queue_wait_s"],
        "run_wall_s": stats["run_wall_s"],
        "per_job": [
            {"id": r["id"], "queue_wait_s": r["queue_wait_s"],
             "run_wall_s": r["run_wall_s"]}
            for r in results
        ],
    }
    with open(path, "w") as f:
        json.dump(capture, f, indent=2)
    print(f"serve-latency capture -> {path}", flush=True)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("serve_bin")
    parser.add_argument("cli_bin")
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--artifacts", default="")
    args = parser.parse_args()

    trace_dir = tempfile.mkdtemp(prefix="serve_smoke_traces.")
    daemon = subprocess.Popen(
        [args.serve_bin, "--port", "0", "--workers", "4",
         "--trace-dir", trace_dir],
        stdout=subprocess.PIPE, text=True)
    try:
        banner = daemon.stdout.readline().strip()
        assert banner.startswith("listening on "), banner
        port = int(banner.split()[-1])
        print(f"daemon up on port {port} (traces in {trace_dir})",
              flush=True)

        specs = [job_spec(i) for i in range(args.jobs)]
        results = [None] * args.jobs
        ids = [None] * args.jobs
        threads = [
            threading.Thread(target=run_job_via_daemon,
                             args=(port, specs[i], results, ids, i))
            for i in range(args.jobs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Byte-identity: the daemon's bitstream must match a standalone
        # single-shot run of the same JobSpec.
        keys = ["bitstream_fnv", "bitstream_bytes", "config_bits",
                "channel_width", "luts"]
        for i, (spec, reply) in enumerate(zip(specs, results)):
            got = reply["result"]
            single = json.loads(subprocess.run(
                [args.cli_bin, "job", "-"], input=json.dumps(spec),
                capture_output=True, text=True, check=True).stdout)
            for key in keys + (["bitstream_hex"]
                               if spec.get("return_bitstream") else []):
                assert got.get(key) == single.get(key), (
                    f"job {i}: {key} mismatch: daemon={got.get(key)!r} "
                    f"single-shot={single.get(key)!r}")
            print(f"job {i}: bitstream {got['bitstream_fnv']} "
                  f"({got['bitstream_bytes']} bytes) matches", flush=True)

        stats = check_observability(port, ids, args.jobs, args.artifacts)
        if args.artifacts:
            write_latency_capture(
                os.path.join(args.artifacts, "serve_latency.json"),
                stats, results)

        # Protocol sanity: malformed input answers an error reply.
        with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
            s.sendall(b"definitely not json\n")
            reply = json.loads(s.makefile("rb").readline())
            assert reply["ok"] is False and reply["reason"] == "bad_request", \
                reply

        # Drain shutdown: daemon must exit 0 on its own.
        request(port, {"cmd": "shutdown"})
        assert daemon.wait(timeout=60) == 0, daemon.returncode
        print(f"OK: {args.jobs} concurrent jobs byte-identical, "
              "observability verified, clean shutdown", flush=True)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    sys.exit(main())
